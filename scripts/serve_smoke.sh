#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of `cachepart serve` over real HTTP.
#
# Starts the service against a persistent cache dir, submits one
# single-machine scenario and one fleet example twice each, and asserts
# the memoization contract end to end:
#   * the warm resubmission reports zero new simulations;
#   * its report bytes are identical to the cold run's;
#   * the served report matches what the CLI prints for the same spec.
# The server is then restarted on the same cache dir and fed the same
# specs again — the disk store must carry the results across processes
# (zero simulations again, disk hits this time).
#
# Usage: scripts/serve_smoke.sh [path-to-cachepart-binary]
set -euo pipefail

BIN=${1:-./cachepart}
WORK=$(mktemp -d)
SCENARIO=examples/scenarios/latency-3batch.json
FLEET=examples/scenarios/fleet-utility-50.json

SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

start_server() {
  "$BIN" serve -addr 127.0.0.1:0 -quick -cache-dir "$WORK/store" 2>"$WORK/serve.log" &
  SERVER_PID=$!
  BASE=""
  for _ in $(seq 1 100); do
    BASE=$(sed -n 's#.*listening on \(http://[0-9.:]*\).*#\1#p' "$WORK/serve.log")
    if [ -n "$BASE" ] && curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
      return
    fi
    sleep 0.1
  done
  echo "FAIL: server did not come up" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=""
  grep -q "drained" "$WORK/serve.log" || {
    echo "FAIL: server did not log a clean drain" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  }
}

# submit_and_fetch SPEC OUT — POST the spec, poll the run to
# completion, and write the report envelope to OUT. The run's id is
# left in RUN_ID for follow-up endpoint checks.
submit_and_fetch() {
  local spec=$1 out=$2 report_url submit
  submit=$(curl -fsS -X POST --data-binary @"$spec" "$BASE/v1/runs")
  report_url=$(echo "$submit" | jq -r .report_url)
  RUN_ID=$(echo "$submit" | jq -r .id)
  for _ in $(seq 1 600); do
    local code
    code=$(curl -sS -o "$out" -w '%{http_code}' "$BASE$report_url")
    case "$code" in
      200) return ;;
      202) sleep 0.1 ;;
      *) echo "FAIL: $report_url answered $code" >&2; cat "$out" >&2; exit 1 ;;
    esac
  done
  echo "FAIL: run never finished: $report_url" >&2
  exit 1
}

# check_pair LABEL COLD WARM — warm envelope must report zero new
# simulations and carry byte-identical report text.
check_pair() {
  local label=$1 cold=$2 warm=$3
  local sims
  sims=$(jq -r .stats.simulations "$warm")
  if [ "$sims" != "0" ]; then
    echo "FAIL: $label warm run reported $sims simulations (want 0)" >&2
    exit 1
  fi
  if ! diff <(jq -r .report "$cold") <(jq -r .report "$warm") >/dev/null; then
    echo "FAIL: $label warm report diverged from cold report" >&2
    exit 1
  fi
  echo "ok: $label warm run — 0 sims, byte-identical report"
}

start_server

# Cold + warm submissions through the first server process.
submit_and_fetch "$SCENARIO" "$WORK/scenario-cold.json"
submit_and_fetch "$SCENARIO" "$WORK/scenario-warm.json"
submit_and_fetch "$FLEET"    "$WORK/fleet-cold.json"
submit_and_fetch "$FLEET"    "$WORK/fleet-warm.json"
check_pair "scenario (memo)" "$WORK/scenario-cold.json" "$WORK/scenario-warm.json"
check_pair "fleet (memo)"    "$WORK/fleet-cold.json"    "$WORK/fleet-warm.json"

# The last submitted run's trace: Chrome trace_event JSON with a
# non-empty event list rooted at the run span.
curl -fsS "$BASE/v1/runs/$RUN_ID/trace" >"$WORK/trace.json"
EVENTS=$(jq '.traceEvents | length' "$WORK/trace.json")
if [ "$EVENTS" -eq 0 ]; then
  echo "FAIL: trace for $RUN_ID holds no events" >&2
  exit 1
fi
jq -e '.traceEvents | map(select(.name == "run")) | length == 1' "$WORK/trace.json" >/dev/null \
  || { echo "FAIL: trace for $RUN_ID is not cut to one run span" >&2; exit 1; }
echo "ok: trace endpoint served $EVENTS events for $RUN_ID"

# /metrics carries the observability families: per-phase engine
# accounting and the run-duration/queue-wait histograms.
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
for want in \
  'cachepart_run_duration_seconds_bucket{' \
  'cachepart_run_duration_seconds_count{' \
  'cachepart_run_queue_wait_seconds_bucket{le=' \
  'cachepart_engine_phase_seconds_total{phase=' \
  'cachepart_engine_phase_runs_total{phase=' \
  'cachepart_engine_queue_depth ' \
  'cachepart_engine_active_workers '; do
  grep -qF "$want" "$WORK/metrics.txt" || {
    echo "FAIL: /metrics missing $want" >&2
    cat "$WORK/metrics.txt" >&2
    exit 1
  }
done
echo "ok: /metrics exposes histogram and phase families"

# The access log ties every request to a run id (id=- for unscoped).
grep -qE "POST /v1/runs 202 .* id=run-" "$WORK/serve.log" || {
  echo "FAIL: access log carries no run id for the submission" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
echo "ok: access log carries run ids"

# The served report must be the CLI's report for the same spec.
"$BIN" scenario run "$SCENARIO" -quick -json | jq -r .report >"$WORK/scenario-cli.txt"
"$BIN" fleet    run "$FLEET"    -quick -json | jq -r .report >"$WORK/fleet-cli.txt"
diff <(jq -r .report "$WORK/scenario-cold.json") "$WORK/scenario-cli.txt" \
  || { echo "FAIL: served scenario report diverged from CLI" >&2; exit 1; }
diff <(jq -r .report "$WORK/fleet-cold.json") "$WORK/fleet-cli.txt" \
  || { echo "FAIL: served fleet report diverged from CLI" >&2; exit 1; }
echo "ok: served reports match CLI output"

# Restart on the same cache dir: the disk store must serve everything.
stop_server
start_server
submit_and_fetch "$SCENARIO" "$WORK/scenario-disk.json"
submit_and_fetch "$FLEET"    "$WORK/fleet-disk.json"
check_pair "scenario (disk)" "$WORK/scenario-cold.json" "$WORK/scenario-disk.json"
check_pair "fleet (disk)"    "$WORK/fleet-cold.json"    "$WORK/fleet-disk.json"
for f in "$WORK/scenario-disk.json" "$WORK/fleet-disk.json"; do
  if [ "$(jq -r .stats.disk_hits "$f")" = "0" ]; then
    echo "FAIL: restarted server reported no disk hits for $f" >&2
    exit 1
  fi
done
echo "ok: restarted server served both specs from the disk store"

stop_server
echo "serve smoke passed"
