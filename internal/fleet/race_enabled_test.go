//go:build race

package fleet

// raceEnabled mirrors the -race build flag for tests whose assertions
// (allocation counts) are only stable without the detector.
const raceEnabled = true
