package fleet

import (
	"strings"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/sched"
)

// testScale keeps fleet tests affordable; it is the CLI's -quick
// scale, so the golden file and the smoke runs agree by construction.
const testScale = sched.QuickScale

func testDef() *Def {
	return &Def{
		Machines: 6,
		Duration: 0.1,
		Seed:     "test",
		Arrivals: []loadgen.RequestClass{
			{App: "429.mcf", Rate: 300},
			{App: "xalan", Process: loadgen.ProcBursty, Rate: 500, BurstSeconds: 0.01},
		},
		Backlog: []loadgen.BatchDef{
			{App: "canneal", Count: 4, Iterations: 30},
			{App: "ferret", Count: 3, Iterations: 30},
		},
	}
}

func TestFleetParallelismByteIdentical(t *testing.T) {
	def := testDef()
	var outs []string
	for _, par := range []int{1, 8} {
		r := sched.New(sched.Options{Scale: testScale, Parallelism: par})
		rep, err := Run(r, "par-test", def)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, rep.String())
	}
	if outs[0] != outs[1] {
		t.Errorf("fleet report differs between parallelism 1 and 8\n--- p1 ---\n%s\n--- p8 ---\n%s", outs[0], outs[1])
	}
}

func TestFleetDynamicParallelismByteIdentical(t *testing.T) {
	// The dynamic partition mode runs non-memoizable controller
	// episodes through the batch workers; their results must still be
	// order-independent.
	def := testDef()
	def.Partition = PartDynamic
	var outs []string
	for _, par := range []int{1, 8} {
		r := sched.New(sched.Options{Scale: testScale, Parallelism: par})
		rep, err := Run(r, "dyn-par-test", def)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, rep.String())
	}
	if outs[0] != outs[1] {
		t.Errorf("dynamic fleet report differs between parallelism 1 and 8\n--- p1 ---\n%s\n--- p8 ---\n%s", outs[0], outs[1])
	}
}

func TestFleetRunShape(t *testing.T) {
	r := sched.New(sched.Options{Scale: testScale})
	rep, err := Run(r, "shape", testDef())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("want 3 policy results, got %d", len(rep.Results))
	}
	byPol := map[PolicyName]PolicyResult{}
	for _, pr := range rep.Results {
		byPol[pr.Policy] = pr
		if pr.MachinesUsed < 1 || pr.MachinesUsed > 6 {
			t.Errorf("%s: machines used %d out of range", pr.Policy, pr.MachinesUsed)
		}
		if pr.P99 < pr.P95 || pr.P95 < pr.P50 || pr.P50 < 1-1e-9 {
			t.Errorf("%s: inconsistent percentiles p50=%v p95=%v p99=%v", pr.Policy, pr.P50, pr.P95, pr.P99)
		}
		if pr.Makespan <= 0 || pr.ActiveSocketJ <= 0 || pr.ED2 <= 0 {
			t.Errorf("%s: degenerate accounting %+v", pr.Policy, pr)
		}
		if pr.DrainSeconds <= 0 {
			t.Errorf("%s: backlog never drained", pr.Policy)
		}
		if pr.Utilization <= 0 || pr.Utilization > 1 {
			t.Errorf("%s: utilization %v out of range", pr.Policy, pr.Utilization)
		}
		if pr.FleetSocketJ < pr.ActiveSocketJ {
			t.Errorf("%s: fleet energy below active energy", pr.Policy)
		}
	}
	spread, pack := byPol[SpreadIdle], byPol[PackPartition]
	if spread.Colocated != 0 {
		t.Errorf("spread-idle co-located %d requests", spread.Colocated)
	}
	if pack.Colocated == 0 {
		t.Error("pack-partition never co-located")
	}
	if pack.MachinesUsed >= spread.MachinesUsed {
		t.Errorf("pack used %d machines, spread %d — consolidation failed",
			pack.MachinesUsed, spread.MachinesUsed)
	}
	if pack.ActiveSocketJ >= spread.ActiveSocketJ {
		t.Errorf("pack energy %.1f J not below spread %.1f J",
			pack.ActiveSocketJ, spread.ActiveSocketJ)
	}
}

func TestFleetSharedVsBiasedPartition(t *testing.T) {
	// Under the shared partition mode co-located requests run
	// unprotected; the biased mode's protective split must never make
	// the co-located tail worse than shared's for the same trace.
	def := &Def{
		Machines: 2,
		Duration: 0.05,
		Seed:     "modes",
		Policies: []PolicyName{UtilTarget}, // force co-location
		Arrivals: []loadgen.RequestClass{{App: "429.mcf", Rate: 150}},
		Backlog:  []loadgen.BatchDef{{App: "canneal", Count: 2, Iterations: 200}},
	}
	r := sched.New(sched.Options{Scale: testScale})
	biased, err := Run(r, "biased", def)
	if err != nil {
		t.Fatal(err)
	}
	shared := *def
	shared.Partition = PartShared
	sharedRep, err := Run(r, "shared", &shared)
	if err != nil {
		t.Fatal(err)
	}
	if b, s := biased.Results[0].P99, sharedRep.Results[0].P99; b > s+1e-9 {
		t.Errorf("biased p99 %.4f worse than shared %.4f", b, s)
	}
}

func TestFleetValidation(t *testing.T) {
	bad := []*Def{
		{Machines: 0, Duration: 1, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
		{Machines: 1, Duration: 0, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
		{Machines: 1, Duration: 1},
		{Machines: 1, Duration: 1, Arrivals: []loadgen.RequestClass{{App: "nope", Rate: 1}}},
		{Machines: 1, Duration: 1, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: -1}}},
		{Machines: 1, Duration: 1, Cores: 3, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
		{Machines: 1, Duration: 1, Backlog: []loadgen.BatchDef{{App: "nope"}}},
		{Machines: 1, Duration: 1, SlowdownLimit: 0.5, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
		{Machines: 1, Duration: 1, UtilTarget: 2, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
		{Machines: 1, Duration: 1, Policies: []PolicyName{"warp"}, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
		{Machines: 1, Duration: 1, Policies: []PolicyName{SpreadIdle, SpreadIdle}, Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
		{Machines: 1, Duration: 1, Partition: "warp", Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 1}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, d)
		}
	}
	if err := testDef().Validate(); err != nil {
		t.Errorf("valid def rejected: %v", err)
	}
}

func TestFleetDescribe(t *testing.T) {
	out, err := Describe("d", testDef())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"6 machines", "429.mcf", "spread-idle, pack-partition, util-target"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe output missing %q:\n%s", want, out)
		}
	}
}

func TestFleetBacklogOnly(t *testing.T) {
	// A pure drain fleet (no arrivals) must run and report drain time.
	def := &Def{
		Machines: 3,
		Duration: 0.05,
		Backlog:  []loadgen.BatchDef{{App: "ferret", Count: 6, Iterations: 20}},
	}
	r := sched.New(sched.Options{Scale: testScale})
	rep, err := Run(r, "drain-only", def)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Results {
		if pr.DrainSeconds <= 0 {
			t.Errorf("%s: no drain time", pr.Policy)
		}
		if pr.P99 != 0 {
			t.Errorf("%s: p99 %v with no requests", pr.Policy, pr.P99)
		}
	}
}

func TestSpreadNeverColocatesUnderLoad(t *testing.T) {
	// Saturate a 2-machine pool: one machine holds a long-lived batch
	// resident, the other takes every request. spread-idle must queue
	// behind the resident-free machine rather than co-locate — the
	// never-co-locate baseline holds under load, not just when idle
	// machines are plentiful.
	def := &Def{
		Machines:   2,
		Duration:   0.05,
		Seed:       "saturate",
		BatchWidth: 1,
		Policies:   []PolicyName{SpreadIdle},
		Arrivals:   []loadgen.RequestClass{{App: "429.mcf", Rate: 2000}},
		Backlog:    []loadgen.BatchDef{{App: "canneal", Count: 1, Iterations: 500}},
	}
	r := sched.New(sched.Options{Scale: testScale})
	rep, err := Run(r, "saturate", def)
	if err != nil {
		t.Fatal(err)
	}
	pr := rep.Results[0]
	if pr.Colocated != 0 {
		t.Errorf("spread-idle co-located %d requests under saturation", pr.Colocated)
	}
	if pr.P99 <= 1 {
		t.Errorf("saturated pool shows no queueing (p99 %.3f)", pr.P99)
	}
}

// TestFleetRejectsExplicitPartition: fleet episodes declare no per-job
// way ranges, so the explicit policy cannot be expressed — it must be
// rejected by name rather than silently running as shared.
func TestFleetRejectsExplicitPartition(t *testing.T) {
	def := testDef()
	def.Partition = "explicit"
	err := def.Validate()
	if err == nil || !strings.Contains(err.Error(), "explicit needs per-job way ranges") {
		t.Fatalf("explicit partition mode: err %v", err)
	}
}

// TestFleetBadPolicyParamsErrorNotPanic: assoc-dependent param errors
// (utility min_ways too large for the 12-way LLC) pass name-level
// validation but must surface as a descriptive Run error once the
// platform is known — never a mid-run panic after simulation work.
func TestFleetBadPolicyParamsErrorNotPanic(t *testing.T) {
	def := testDef()
	def.Partition = PartUtility
	def.PartitionParams = []byte(`{"min_ways": 7}`)
	if err := def.Validate(); err != nil {
		t.Fatalf("Validate cannot know the geometry yet: %v", err)
	}
	r := sched.New(sched.Options{Scale: testScale})
	_, err := Run(r, "bad-params", def)
	if err == nil || !strings.Contains(err.Error(), "utility policy cannot give 2 jobs 7 way(s) each of 12") {
		t.Fatalf("bad params: err %v", err)
	}
}

// TestFleetBiasedRuleDefault: the fleet's biased mode keeps its
// protective foreground rule even when a params block is present but
// rule-less — only an explicit rule may override it.
func TestFleetBiasedRuleDefault(t *testing.T) {
	for _, params := range []string{"", "{}"} {
		def := testDef()
		def.Partition = PartBiased
		if params != "" {
			def.PartitionParams = []byte(params)
		}
		p, err := def.policy()
		if err != nil {
			t.Fatalf("params %q: %v", params, err)
		}
		if p.KeyParams() != "rule=foreground" {
			t.Errorf("params %q: biased resolved as %s{%s}, want the protective rule",
				params, p.Name(), p.KeyParams())
		}
	}
	def := testDef()
	def.Partition = PartBiased
	def.PartitionParams = []byte(`{"rule": "background"}`)
	p, err := def.policy()
	if err != nil {
		t.Fatal(err)
	}
	if p.KeyParams() != "" {
		t.Errorf("explicit background rule overridden: %s{%s}", p.Name(), p.KeyParams())
	}
}
