package fleet

import (
	"testing"

	"repro/internal/loadgen"
	"repro/internal/sched"
)

// allocDef builds an event-loop stress fleet scaled by dur: arrivals
// grow linearly with duration while machines, classes, and timeline
// length stay fixed, so comparing allocation counts at two durations
// isolates the per-event cost.
func allocDef(dur float64) *Def {
	return &Def{
		Machines: 4,
		Duration: dur,
		Seed:     "alloc",
		Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 2000}},
		Backlog:  []loadgen.BatchDef{{App: "ferret", Count: 3, Iterations: 20}},
		Events: []Event{
			{At: 0.005, Kind: EvMachineDown, Machine: 3},
			{At: 0.01, Kind: EvMachineUp, Machine: 3},
		},
	}
}

// simAllocs measures allocations of one full episode (sim construction
// plus the event loop) over the prebuilt oracle.
func simAllocs(t *testing.T, r *sched.Runner, def *Def, arrivals []loadgen.Arrival, backlog []loadgen.BatchItem, o *oracle) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		s := newSim(def, o, PackPartition, arrivals, backlog)
		s.run()
	})
}

// TestSimRunAllocationFree pins the event loop's allocation behavior:
// the per-event cost must be zero. Setup allocations (machine array,
// request states, the preallocated heap) are inherently per-episode,
// so the pin compares a short trace against one with ~8x the events —
// the allocation counts must match, proving nothing in the loop
// allocates per event. The typed heap (no container/heap interface
// boxing), the requeued head index, and the preallocated heap backing
// are what this buys.
func TestSimRunAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	r := sched.New(sched.Options{Scale: testScale})
	episode := func(dur float64) float64 {
		def := allocDef(dur)
		if err := def.Validate(); err != nil {
			t.Fatal(err)
		}
		arrivals, err := loadgen.ArrivalsScaled(def.Arrivals, def.Duration, def.seed(), def.scalePoints())
		if err != nil {
			t.Fatal(err)
		}
		backlog, err := loadgen.Backlog(def.Backlog)
		if err != nil {
			t.Fatal(err)
		}
		o, err := buildOracle(r, def, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(arrivals) < 10 {
			t.Fatalf("degenerate trace: %d arrivals at duration %g", len(arrivals), dur)
		}
		t.Logf("duration %g: %d arrivals", dur, len(arrivals))
		return simAllocs(t, r, def, arrivals, backlog, o)
	}
	short := episode(0.02)
	long := episode(0.16)
	// Identical setup shape at both durations; only the event count
	// differs. A couple of allocations of slack absorb incidental
	// amortized growth (machine FIFO queues under heavier load).
	if long > short+4 {
		t.Errorf("event loop allocates per event: %.1f allocs on the short trace, %.1f on the ~8x trace", short, long)
	}
}
