package fleet_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// loadChurn parses the shipped churn example and sanity-checks that it
// still exercises the event machinery the test exists for.
func loadChurn(t *testing.T) *scenario.Scenario {
	t.Helper()
	s, err := scenario.ParseFile(filepath.Join("..", "..", "examples", "scenarios", "fleet-churn-50.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsFleet() || len(s.Fleet.Events) == 0 {
		t.Fatal("fleet-churn-50.json lost its fleet block or event timeline")
	}
	counts := s.Fleet.EventCounts()
	if counts.Failures == 0 || counts.Drains == 0 || counts.Ups == 0 || counts.LoadScales == 0 {
		t.Fatalf("churn example no longer mixes failures, drains, ups, and load scales: %+v", counts)
	}
	if s.Fleet.Hysteresis == 0 {
		t.Fatal("churn example no longer declares hysteresis")
	}
	return s
}

// TestFleetChurn50Golden pins the shipped churn example at quick scale:
// the full report — including the per-policy robustness table with
// time-to-recover and SLO-violation-minutes — must stay byte-identical.
// Regenerate (only for an intentional model change) with:
//
//	go test ./internal/fleet -run TestFleetChurn50Golden -update-golden
func TestFleetChurn50Golden(t *testing.T) {
	s := loadChurn(t)
	r := sched.New(sched.Options{Scale: quickScale})
	rep, err := fleet.Run(r, s.Name, s.Fleet)
	if err != nil {
		t.Fatal(err)
	}

	// The robustness shape the example exists to demonstrate: every
	// policy has jobs displaced, and the policies differ in how they
	// recover — the idle-heavy pool re-places instantly while the
	// tightly packed one queues evictees and accrues SLO damage.
	var slowest, worstSLO float64
	for _, pr := range rep.Results {
		if pr.Evicted == 0 {
			t.Errorf("%s: machine events displaced no jobs", pr.Policy)
		}
		if pr.Lost+pr.Migrated == 0 {
			t.Errorf("%s: no jobs recorded lost or migrated", pr.Policy)
		}
		if pr.RecoverSeconds < 0 || pr.RecoverSeconds > s.Fleet.Duration {
			t.Errorf("%s: time-to-recover %.4f outside [0, %.2fs]",
				pr.Policy, pr.RecoverSeconds, s.Fleet.Duration)
		}
		if pr.PeakReplace == 0 {
			t.Errorf("%s: peak re-placement backlog is zero despite a failure", pr.Policy)
		}
		if pr.SLOViolationMin < 0 {
			t.Errorf("%s: negative SLO-violation-minutes %.4f", pr.Policy, pr.SLOViolationMin)
		}
		slowest = max(slowest, pr.RecoverSeconds)
		worstSLO = max(worstSLO, pr.SLOViolationMin)
	}
	if slowest == 0 {
		t.Error("every policy recovered instantly — the example no longer shows a recovery gap")
	}
	if worstSLO == 0 {
		t.Error("no policy accrued SLO-violation-minutes — the example no longer shows SLO damage")
	}

	got := rep.String()
	path := filepath.Join("testdata", "fleet_churn50_quick.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("churn output drifted from golden\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestChurnByteIdentity is the determinism contract under churn: for
// both the exact and the auto oracle tier, the churn example's report
// is byte-identical at parallelism 1 vs 8 and across a cold and a warm
// persistent store — eviction, re-placement, and hysteresis must not
// depend on worker scheduling or cache state.
func TestChurnByteIdentity(t *testing.T) {
	s := loadChurn(t)
	for _, tier := range []fleet.Fidelity{fleet.FidelityExact, fleet.FidelityAuto} {
		t.Run(string(tier), func(t *testing.T) {
			def := *s.Fleet
			def.Fidelity = tier
			run := func(opt sched.Options) string {
				opt.Scale = quickScale
				rep, err := fleet.Run(sched.New(opt), s.Name, &def)
				if err != nil {
					t.Fatal(err)
				}
				return rep.String()
			}
			base := run(sched.Options{Parallelism: 1})
			if par8 := run(sched.Options{Parallelism: 8}); par8 != base {
				t.Errorf("par 8 diverged from par 1\n--- par1 ---\n%s\n--- par8 ---\n%s", base, par8)
			}
			dir := t.TempDir()
			if cold := run(sched.Options{Parallelism: 4, CacheDir: dir}); cold != base {
				t.Errorf("cold cache run diverged\n--- base ---\n%s\n--- cold ---\n%s", base, cold)
			}
			if warm := run(sched.Options{Parallelism: 4, CacheDir: dir}); warm != base {
				t.Errorf("warm cache run diverged\n--- base ---\n%s\n--- warm ---\n%s", base, warm)
			}
		})
	}
}
