package fleet_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sched"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// quickScale is the CLI's -quick scale, so the golden file is exactly
// what `cachepart fleet run -quick` prints for the shipped example
// (minus the host-time footer).
const quickScale = sched.QuickScale

// TestFleet50Golden pins the shipped 50-machine consolidation example
// at quick scale and asserts the acceptance shape the fleet exists to
// demonstrate: pack-with-partition-check serves the identical trace on
// fewer machines than spread-idle at (near-)equal p99.
//
// Regenerate (only for an intentional model change) with:
//
//	go test ./internal/fleet -run TestFleet50Golden -update-golden
func TestFleet50Golden(t *testing.T) {
	s, err := scenario.ParseFile(filepath.Join("..", "..", "examples", "scenarios", "fleet-consolidation-50.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsFleet() {
		t.Fatal("fleet-consolidation-50.json lost its fleet block")
	}
	r := sched.New(sched.Options{Scale: quickScale})
	rep, err := fleet.Run(r, s.Name, s.Fleet)
	if err != nil {
		t.Fatal(err)
	}

	byPol := map[fleet.PolicyName]fleet.PolicyResult{}
	for _, pr := range rep.Results {
		byPol[pr.Policy] = pr
	}
	spread, ok1 := byPol[fleet.SpreadIdle]
	pack, ok2 := byPol[fleet.PackPartition]
	if !ok1 || !ok2 {
		t.Fatal("example no longer compares spread-idle and pack-partition")
	}
	if pack.MachinesUsed >= spread.MachinesUsed {
		t.Errorf("pack-partition used %d machines, spread-idle %d — consolidation failed",
			pack.MachinesUsed, spread.MachinesUsed)
	}
	// "Equal p99": the partition check bounds the co-located tail to a
	// few percent of spread's never-co-located baseline.
	if pack.P99 > spread.P99*1.05 {
		t.Errorf("pack-partition p99 %.3f not within 5%% of spread-idle %.3f", pack.P99, spread.P99)
	}
	if pack.ActiveSocketJ >= spread.ActiveSocketJ {
		t.Errorf("pack-partition energy %.1f J not below spread-idle %.1f J",
			pack.ActiveSocketJ, spread.ActiveSocketJ)
	}

	got := rep.String()
	path := filepath.Join("testdata", "fleet50_quick.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("fleet output drifted from golden\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestFleetMega10kGolden pins the shipped 10,000-machine example — the
// auto fidelity tier's flagship — at quick scale: the full fleet run
// must complete and its report must stay byte-identical, including the
// fidelity line accounting for every co-location as predicted or
// re-simulated. Regenerate with -update-golden.
func TestFleetMega10kGolden(t *testing.T) {
	s, err := scenario.ParseFile(filepath.Join("..", "..", "examples", "scenarios", "fleet-mega-10k.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Fleet.EffectiveFidelity(); got != fleet.FidelityAuto {
		t.Fatalf("example declares fidelity %q, want auto", got)
	}
	if s.Fleet.Machines != 10000 {
		t.Fatalf("example declares %d machines, want 10000", s.Fleet.Machines)
	}
	r := sched.New(sched.Options{Scale: quickScale})
	rep, err := fleet.Run(r, s.Name, s.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fidelity != fleet.FidelityAuto {
		t.Errorf("report fidelity %q, want auto", rep.Fidelity)
	}
	if rep.PairsPredicted+rep.PairsResimulated == 0 {
		t.Error("auto tier accounted for no co-locations")
	}

	got := rep.String()
	path := filepath.Join("testdata", "fleet_mega10k_quick.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("fleet output drifted from golden\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestFleetUtility50 pins the shipped utility-partitioning example's
// acceptance shape: the same trace under the utility policy
// consolidates onto fewer machines than under a shared LLC — because
// shared co-locations blow the 10% request-slowdown budget and get
// rejected, while utility-partitioned ones pass — at a p99 within the
// declared limit.
func TestFleetUtility50(t *testing.T) {
	s, err := scenario.ParseFile(filepath.Join("..", "..", "examples", "scenarios", "fleet-utility-50.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Fleet.Partition != fleet.PartUtility {
		t.Fatalf("example declares partition %q, want utility", s.Fleet.Partition)
	}
	// One runner for both modes: the alone baselines simulate once.
	r := sched.New(sched.Options{Scale: quickScale})
	util, err := fleet.Run(r, s.Name, s.Fleet)
	if err != nil {
		t.Fatal(err)
	}
	sharedDef := *s.Fleet
	sharedDef.Partition = fleet.PartShared
	shared, err := fleet.Run(r, s.Name+"-shared", &sharedDef)
	if err != nil {
		t.Fatal(err)
	}

	pick := func(rep *fleet.Report, pol fleet.PolicyName) fleet.PolicyResult {
		for _, pr := range rep.Results {
			if pr.Policy == pol {
				return pr
			}
		}
		t.Fatalf("%s: no %s result", rep.Name, pol)
		return fleet.PolicyResult{}
	}
	up := pick(util, fleet.PackPartition)
	sp := pick(shared, fleet.PackPartition)

	if up.MachinesUsed >= sp.MachinesUsed {
		t.Errorf("utility pack-partition used %d machines, shared %d — utility should consolidate harder",
			up.MachinesUsed, sp.MachinesUsed)
	}
	if limit := s.Fleet.SlowdownLimit; up.P99 > limit {
		t.Errorf("utility pack-partition p99 %.3f exceeds the declared limit %.2f", up.P99, limit)
	}
	if up.Rejects != 0 {
		t.Errorf("utility co-locations were rejected %d times; the curves should pass the check", up.Rejects)
	}
	if sp.Rejects == 0 {
		t.Error("shared co-locations all passed the check — the example no longer demonstrates the contrast")
	}
	if up.Colocated == 0 {
		t.Error("utility pack-partition never co-located")
	}
	if up.Reallocations == 0 {
		t.Error("utility policy reported no reallocations — is the decision loop attached?")
	}
}
