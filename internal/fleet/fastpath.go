package fleet

import (
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/workload"
)

// probeAloneMix is the profiling run of the fast tiers: the canonical
// alone-half mix with the MRC monitor attached. The monitor is
// shadow-only, so the run's timing/energy fields are byte-identical to
// aloneMix's — the fast tiers' alone baselines are exact — while the
// ProbeKey gives the run a memo/disk key that can never alias the
// unprobed mix (or another model version).
func (h halfMixes) probeAloneMix(app *workload.Profile) sched.MixSpec {
	mix := h.aloneMix(app)
	mix.Setup = model.ProbeSetup()
	mix.ProbeKey = model.ProbeKey()
	return mix
}

// buildFast fills the oracle's tables under the fast or auto tier: one
// profiling run per distinct application, MRC+CPI predictions for
// every co-location, and — under auto — exact re-simulation of the
// borderline pairs whose predicted request slowdown lands within the
// fleet's fast_margin of slowdown_limit (the band where an analytic
// error could flip a pack-partition admission decision).
func (o *oracle) buildFast(r *sched.Runner, d *Def, h halfMixes, pol partition.Policy,
	searcher partition.Searcher, fgs, bgs []string, apps map[string]*workload.Profile,
	assoc int, fid Fidelity, span obs.SpanID) error {
	o.fid = fid

	var specs []sched.Spec
	probeAt := map[string]int{}
	var order []string
	for _, name := range append(append([]string{}, fgs...), bgs...) {
		if _, dup := probeAt[name]; dup {
			continue
		}
		probeAt[name] = len(specs)
		order = append(order, name)
		specs = append(specs, h.probeAloneMix(apps[name]))
	}
	results := r.RunBatchIn(sched.BatchInfo{Span: span, Phase: "probe"}, specs)

	// "predict" covers the analytic work that replaces simulation:
	// building MRC profiles from the probes and pricing every pair.
	p0 := time.Now()
	psp := r.Tracer().Start("predict", span, obs.Int("profiles", len(order)))
	profiles := map[string]*model.Profile{}
	for _, name := range order {
		res := results[probeAt[name]]
		o.alone[name] = alonePerf{
			Seconds: res.Jobs[0].Seconds,
			SocketW: watts(res.Energy.SocketJoules, res.WindowSeconds),
			WallW:   watts(res.Energy.WallJoules, res.WindowSeconds),
		}
		p, err := model.NewProfile(name, apps[name].MLP, res, 0, o.cfg)
		if err != nil {
			psp.End()
			return err
		}
		profiles[name] = p
	}

	est := model.NewEstimator(o.cfg)
	for _, fg := range fgs {
		for _, bg := range bgs {
			o.pair[pairKey(fg, bg)] = predictPair(est, pol, searcher, profiles[fg], profiles[bg], assoc)
			o.predicted++
		}
	}
	psp.End(obs.Int("pairs", o.predicted))
	r.AddPhase("predict", time.Since(p0))

	if fid != FidelityAuto {
		return nil
	}

	// Auto: re-simulate the borderline pairs exactly, in the same spec
	// order the exact tier would have planned them.
	limit, margin := d.slowdownLimit(), d.fastMargin()
	var exact []sched.Spec
	exactAt := map[string]int{}
	for _, fg := range fgs {
		for _, bg := range bgs {
			key := pairKey(fg, bg)
			diff := o.pair[key].FgSlowdown - limit
			if diff < 0 {
				diff = -diff
			}
			if diff > margin {
				continue
			}
			exactAt[key] = len(exact)
			exact = append(exact, pairSpecs(r, h, apps[fg], apps[bg], pol, searcher, assoc)...)
		}
	}
	if len(exact) == 0 {
		return nil
	}
	exactRes := r.RunBatchIn(sched.BatchInfo{Span: span, Phase: "resim"}, exact)
	for _, fg := range fgs {
		for _, bg := range bgs {
			key := pairKey(fg, bg)
			at, ok := exactAt[key]
			if !ok {
				continue
			}
			o.pair[key] = harvestPair(exactRes, at, pol, searcher, assoc, o.alone[fg].Seconds)
			o.predicted--
			o.resimmed++
		}
	}
	return nil
}

// predictPair forecasts one co-location under the partition policy,
// mirroring the exact tier's dispatch: a Searcher picks over predicted
// candidates with its own selection rule, an online policy gets the
// split that maximizes combined predicted hit rate (the utility
// objective), and an offline policy is priced at its static split —
// or at the LRU-competition equilibrium when it leaves the cache
// shared.
func predictPair(est *model.Estimator, pol partition.Policy, searcher partition.Searcher,
	fg, bg *model.Profile, assoc int) pairPerf {
	var pred model.PairPrediction
	var fgWays int
	switch {
	case searcher != nil:
		cands := make([]partition.Candidate, assoc-1)
		preds := make([]model.PairPrediction, assoc-1)
		for w := 1; w < assoc; w++ {
			p := est.PredictPair(fg, bg, float64(w), float64(assoc-w))
			preds[w-1] = p
			cands[w-1] = partition.Candidate{
				FgWays:       w,
				FgSlowdown:   p.FgSlowdown,
				BgThroughput: p.BgRate * p.FgSeconds,
			}
		}
		pick := searcher.Pick(cands)
		pred, fgWays = preds[pick], cands[pick].FgWays
	case pol.Online():
		best, bestVal := assoc/2, -1.0
		for w := 1; w < assoc; w++ {
			v := fg.HitRatePerSec(float64(w)) + bg.HitRatePerSec(float64(assoc-w))
			if v > bestVal {
				best, bestVal = w, v
			}
		}
		pred, fgWays = est.PredictPair(fg, bg, float64(best), float64(assoc-best)), best
	default:
		fgW, bgW := partition.PairWays(pol, assoc)
		if fgW == 0 && bgW == 0 {
			wf, wb := est.SharedWays(fg, bg)
			pred, fgWays = est.PredictPair(fg, bg, wf, wb), 0
		} else {
			pred, fgWays = est.PredictPair(fg, bg, float64(fgW), float64(bgW)), fgW
		}
	}
	return pairPerf{
		FgSeconds:  pred.FgSeconds,
		FgSlowdown: pred.FgSlowdown,
		BgRate:     pred.BgRate,
		FgWays:     fgWays,
		SocketW:    pred.SocketW,
		WallW:      pred.WallW,
	}
}
