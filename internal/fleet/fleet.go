// Package fleet is the datacenter layer above the single-machine run
// layer: a deterministic discrete-event simulator of N machines under
// open-loop load. A loadgen trace delivers latency requests and a
// batch backlog; a consolidation policy decides, request by request,
// which machine serves each one and whether co-locating it with batch
// work is acceptable; and every service time, throughput rate, and
// power level in the fleet comes from full single-machine simulations
// executed through the sched engine — fanned across its worker pool
// and deduplicated against the same memo keys the experiment drivers
// use. The fleet report aggregates what the paper's argument is about:
// tail request slowdown (p50/p95/p99), machines used, utilization, and
// energy, per consolidation policy over the identical arrival trace.
package fleet

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/loadgen"
	"repro/internal/partition"
	"repro/internal/workload"
)

// PolicyName names a consolidation policy — the rule that assigns
// arriving latency requests and queued batch items to machines.
type PolicyName string

const (
	// SpreadIdle is the conservative baseline: latency requests go to
	// the least-recently-used fully idle machine and batch work only
	// runs on machines with no latency traffic, so nothing is ever
	// co-located. Best responsiveness, most machines.
	SpreadIdle PolicyName = "spread-idle"
	// PackPartition consolidates: requests prefer machines already
	// running batch work, but a co-location is accepted only if the
	// protective partition search (partition.PickForForeground over
	// the way sweep) predicts request slowdown within the fleet's
	// slowdown_limit. The paper's policy, fleet-scale.
	PackPartition PolicyName = "pack-partition"
	// UtilTarget is the naive packer: requests fill the busiest
	// machine below the utilization target with no partition check —
	// the consolidation strawman whose tail latency the partition
	// check exists to fix.
	UtilTarget PolicyName = "util-target"
)

// Policies returns every policy in presentation order (the default
// policy block of a fleet scenario).
func Policies() []PolicyName {
	return []PolicyName{SpreadIdle, PackPartition, UtilTarget}
}

// PartitionMode names the partition policy of co-located machines: any
// policy in the partition registry. The legacy mode constants below
// remain the common choices; dispatch is entirely through the policy
// interface, so a newly registered policy (e.g. utility) works in
// fleet scenarios with no fleet-layer change.
type PartitionMode string

const (
	// PartShared leaves co-located machines unpartitioned.
	PartShared PartitionMode = "shared"
	// PartBiased gives the request the protective static split found
	// by the exhaustive way search (the default). In the fleet the
	// biased policy defaults to its foreground-protective rule
	// (partition.PickForForeground) unless partition_params overrides.
	PartBiased PartitionMode = "biased"
	// PartDynamic attaches the §6 online controller to every
	// co-location episode.
	PartDynamic PartitionMode = "dynamic"
	// PartUtility runs UCP-style utility partitioning per episode.
	PartUtility PartitionMode = "utility"
)

// Fidelity selects the oracle's simulation tier: how the per-pair
// co-location numbers the event loop consumes are obtained. The alone
// baselines are cycle-accurate in every tier.
type Fidelity string

const (
	// FidelityExact (the default) simulates every co-location
	// cycle-accurately — way sweeps, online episodes, static splits.
	FidelityExact Fidelity = "exact"
	// FidelityFast predicts every co-location analytically from MRC
	// profiles (internal/model): one profiling run per application,
	// no pair simulations.
	FidelityFast Fidelity = "fast"
	// FidelityAuto screens every co-location with the fast tier and
	// re-simulates exactly only the borderline ones, whose predicted
	// request slowdown lands within fast_margin of slowdown_limit.
	FidelityAuto Fidelity = "auto"
)

// ParseFidelity resolves a fidelity name ("" = exact) or returns the
// one-line error the CLI and server surface for an unknown value.
func ParseFidelity(s string) (Fidelity, error) {
	switch Fidelity(s) {
	case "", FidelityExact:
		return FidelityExact, nil
	case FidelityFast:
		return FidelityFast, nil
	case FidelityAuto:
		return FidelityAuto, nil
	}
	return "", fmt.Errorf("fleet: unknown fidelity %q (want exact, fast, or auto)", s)
}

// Def is the fleet block of a scenario file: the machine pool, the
// open-loop load, and the consolidation policies to compare over it.
type Def struct {
	// Machines is the pool size.
	Machines int `json:"machines"`
	// Cores overrides the per-machine core count (0 = the runner's
	// platform template; must be even — each machine splits into a
	// latency half and a batch half, the paper's §5 placement).
	Cores int `json:"cores,omitempty"`
	// Duration is the arrival-trace length in simulated seconds;
	// the run itself continues until all accepted work drains.
	Duration float64 `json:"duration"`
	// Seed names the trace's rng streams (default "fleet").
	Seed string `json:"seed,omitempty"`
	// Policies lists the consolidation policies to evaluate on the
	// identical trace (default: all of them).
	Policies []PolicyName `json:"policies,omitempty"`
	// Partition is the LLC policy of co-located machines: any
	// registered partition policy name (default biased, in its
	// foreground-protective form).
	Partition PartitionMode `json:"partition,omitempty"`
	// PartitionParams optionally parameterizes the partition policy
	// (the scenario layer's policy params block).
	PartitionParams json.RawMessage `json:"partition_params,omitempty"`
	// SlowdownLimit is pack-partition's acceptance threshold: a
	// co-location is accepted only if the partition-protected request
	// slowdown stays within it (default 1.15).
	SlowdownLimit float64 `json:"slowdown_limit,omitempty"`
	// UtilTarget is util-target's fill threshold in [0,1]: machines
	// at or above it are not packed further (default 0.75).
	UtilTarget float64 `json:"util_target,omitempty"`
	// BatchWidth caps the backlog items resident across the fleet at
	// once — the operator's drain-parallelism knob (default:
	// machines/4, at least 1).
	BatchWidth int `json:"batch_width,omitempty"`
	// Fidelity selects the oracle tier: exact (default), fast, or auto.
	Fidelity Fidelity `json:"fidelity,omitempty"`
	// FastMargin is auto's screening band around slowdown_limit: a
	// co-location predicted within it is re-simulated exactly
	// (default 0.05).
	FastMargin float64 `json:"fast_margin,omitempty"`
	// Arrivals declares the open-loop latency request streams.
	Arrivals []loadgen.RequestClass `json:"arrivals,omitempty"`
	// Backlog declares the batch-job queue drained across the fleet.
	Backlog []loadgen.BatchDef `json:"backlog,omitempty"`
	// Events is the deterministic timeline the run replays: machine
	// failures and maintenance drains, recoveries, mid-run batch
	// arrivals/departures, and load spikes. Empty means the static
	// always-healthy fleet of an event-free run.
	Events []Event `json:"events,omitempty"`
	// Hysteresis is the power-up hold-down in simulated seconds: a
	// machine returning to service is skipped by placement (except as
	// a last resort) until the hold expires, so a flapping machine
	// cannot churn placements (default 0 = immediately eligible).
	Hysteresis float64 `json:"hysteresis,omitempty"`
}

func (d *Def) seed() string {
	if d.Seed == "" {
		return "fleet"
	}
	return d.Seed
}

func (d *Def) policies() []PolicyName {
	if len(d.Policies) == 0 {
		return Policies()
	}
	return d.Policies
}

func (d *Def) partition() PartitionMode {
	if d.Partition == "" {
		return PartBiased
	}
	return d.Partition
}

// policy resolves the fleet's partition mode through the registry. The
// biased default keeps its historical fleet meaning — the protective
// Figure 13 rule — unless partition_params picks another.
func (d *Def) policy() (partition.Policy, error) {
	params := d.PartitionParams
	if d.partition() == PartBiased {
		// The fleet's biased default is the protective Figure 13 rule;
		// inject it whenever the params block does not pick one itself
		// (an empty or rule-less block must not silently flip to the
		// background rule). Malformed params pass through untouched so
		// the factory reports them.
		var m map[string]json.RawMessage
		if len(params) == 0 || json.Unmarshal(params, &m) == nil {
			if m == nil {
				m = map[string]json.RawMessage{}
			}
			if _, ok := m["rule"]; !ok {
				m["rule"] = json.RawMessage(`"foreground"`)
				if enc, err := json.Marshal(m); err == nil {
					params = enc
				}
			}
		}
	}
	name := string(d.partition())
	p, err := partition.New(name, params)
	if err != nil {
		for _, n := range partition.Names() {
			if n == name { // known policy, bad params
				return nil, fmt.Errorf("fleet: partition mode %s: %w", name, err)
			}
		}
		return nil, fmt.Errorf("fleet: unknown partition mode %q (registered: %s)",
			name, strings.Join(partition.Names(), ", "))
	}
	// Every co-location episode is the two-job pair shape; reject
	// policies whose shape rules cannot hold there. Assoc is not known
	// until the oracle resolves the platform, so assoc-dependent rules
	// are re-checked there through checkEpisodeShape.
	if err := p.CheckMix(episodeSnapshot(0)); err != nil {
		return nil, fmt.Errorf("fleet: partition mode %s: %w", d.partition(), err)
	}
	if name == "explicit" {
		// Explicit takes per-job declared way ranges; fleet episodes
		// declare none, so the mode would silently run as shared.
		return nil, fmt.Errorf("fleet: partition mode explicit needs per-job way ranges, which fleet episodes cannot declare (use shared, fair, biased, dynamic, or utility)")
	}
	return p, nil
}

// episodeSnapshot is the co-location episode's shape as the policy
// layer sees it: a latency request over a batch occupant. assoc 0 =
// platform not yet known.
func episodeSnapshot(assoc int) *partition.Snapshot {
	return &partition.Snapshot{Assoc: assoc, Jobs: []partition.JobView{{Latency: true}, {}}}
}

// checkEpisodeShape re-validates the partition policy against the real
// LLC geometry once the oracle has resolved the platform — the fleet
// analogue of the scenario planner's plan-time CheckMix, turning bad
// assoc-dependent params (e.g. utility min_ways too large) into a
// descriptive error instead of a mid-run panic.
func (d *Def) checkEpisodeShape(p partition.Policy, assoc int) error {
	if err := p.CheckMix(episodeSnapshot(assoc)); err != nil {
		return fmt.Errorf("fleet: partition mode %s: %w", d.partition(), err)
	}
	return nil
}

func (d *Def) slowdownLimit() float64 {
	if d.SlowdownLimit == 0 {
		return 1.15
	}
	return d.SlowdownLimit
}

func (d *Def) utilTarget() float64 {
	if d.UtilTarget == 0 {
		return 0.75
	}
	return d.UtilTarget
}

// fidelity resolves the effective tier, treating an unset field as
// exact; Validate rejects unknown names before any run reaches here.
func (d *Def) fidelity() Fidelity {
	if f, err := ParseFidelity(string(d.Fidelity)); err == nil {
		return f
	}
	return d.Fidelity
}

// EffectiveFidelity exposes the resolved tier (the envelope echoes it).
func (d *Def) EffectiveFidelity() Fidelity { return d.fidelity() }

func (d *Def) fastMargin() float64 {
	if d.FastMargin == 0 {
		return 0.05
	}
	return d.FastMargin
}

// Validate checks everything that does not depend on the platform:
// pool shape, known applications, policies, partition mode, and
// threshold ranges.
func (d *Def) Validate() error {
	if d.Machines < 1 {
		return fmt.Errorf("fleet: needs at least one machine, got %d", d.Machines)
	}
	if d.Cores < 0 || d.Cores%2 != 0 {
		return fmt.Errorf("fleet: cores must be a positive even count (latency half + batch half), got %d", d.Cores)
	}
	if d.Duration <= 0 {
		return fmt.Errorf("fleet: trace duration must be positive, got %v", d.Duration)
	}
	if len(d.Arrivals) == 0 && len(d.Backlog) == 0 {
		return fmt.Errorf("fleet: no arrivals and no backlog — nothing to run")
	}
	for i := range d.Arrivals {
		c := &d.Arrivals[i]
		if _, err := workload.ByName(c.App); err != nil {
			return fmt.Errorf("fleet: arrival class %d: %w", i, err)
		}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("fleet: arrival class %d: %w", i, err)
		}
	}
	for i, b := range d.Backlog {
		if _, err := workload.ByName(b.App); err != nil {
			return fmt.Errorf("fleet: backlog %d: %w", i, err)
		}
		if b.Count < 0 {
			return fmt.Errorf("fleet: backlog %d (%s): negative count", i, b.App)
		}
	}
	seen := map[PolicyName]bool{}
	for _, p := range d.policies() {
		switch p {
		case SpreadIdle, PackPartition, UtilTarget:
		default:
			return fmt.Errorf("fleet: unknown policy %q (want spread-idle, pack-partition, or util-target)", p)
		}
		if seen[p] {
			return fmt.Errorf("fleet: policy %s listed twice", p)
		}
		seen[p] = true
	}
	if _, err := d.policy(); err != nil {
		return err
	}
	if d.SlowdownLimit < 0 || (d.SlowdownLimit > 0 && d.SlowdownLimit < 1) {
		return fmt.Errorf("fleet: slowdown_limit must be >= 1, got %v", d.SlowdownLimit)
	}
	if d.UtilTarget < 0 || d.UtilTarget > 1 {
		return fmt.Errorf("fleet: util_target must be in [0,1], got %v", d.UtilTarget)
	}
	if d.BatchWidth < 0 {
		return fmt.Errorf("fleet: negative batch_width")
	}
	if _, err := ParseFidelity(string(d.Fidelity)); err != nil {
		return err
	}
	if d.FastMargin < 0 {
		return fmt.Errorf("fleet: fast_margin must be >= 0, got %v", d.FastMargin)
	}
	return d.validateEvents()
}

// fgApps returns the distinct latency applications in class order.
func (d *Def) fgApps() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range d.Arrivals {
		if !seen[c.App] {
			seen[c.App] = true
			out = append(out, c.App)
		}
	}
	return out
}

// bgApps returns the distinct batch applications in backlog order.
func (d *Def) bgApps() []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range d.Backlog {
		if !seen[b.App] {
			seen[b.App] = true
			out = append(out, b.App)
		}
	}
	return out
}
