package fleet

import (
	"fmt"

	"repro/internal/loadgen"
	"repro/internal/workload"
)

// EventKind names one entry of a fleet definition's events timeline.
type EventKind string

const (
	// EvMachineDown takes a machine out of service at the event time.
	// Without drain it is a failure: the active request and everything
	// queued behind it are evicted into the re-placement queue and a
	// resident batch item restarts from its full iteration count. With
	// drain it is planned maintenance: queued requests and the resident
	// migrate immediately with their progress kept, the active request
	// finishes in place, and only then does the machine power down.
	EvMachineDown EventKind = "machine-down"
	// EvMachineUp returns a down (or draining) machine to service. The
	// machine re-enters placement only after the fleet's hysteresis
	// hold-down expires, so a flapping machine cannot churn placements.
	EvMachineUp EventKind = "machine-up"
	// EvBatchArrival appends Count batch items (App x Iterations each)
	// to the backlog at the event time — a mid-run job arrival.
	EvBatchArrival EventKind = "batch-arrival"
	// EvBatchCancel removes up to Count not-yet-placed items of App
	// from the backlog tail — a mid-run job departure. Items already
	// resident on a machine keep running.
	EvBatchCancel EventKind = "batch-cancel"
	// EvLoadScale multiplies every arrival class's instantaneous rate
	// by Factor from the event time onward (until the next load-scale).
	EvLoadScale EventKind = "load-scale"
)

// Event is one entry of the deterministic fleet timeline. Which fields
// apply depends on Kind: machine events use Machine (and Drain),
// batch events use App/Count/Iterations, and load-scale uses Factor.
type Event struct {
	// At is the event time in simulated seconds from trace start.
	At float64 `json:"at"`
	// Kind is machine-down, machine-up, batch-arrival, batch-cancel,
	// or load-scale.
	Kind EventKind `json:"kind"`
	// Machine indexes the pool for machine-down/machine-up.
	Machine int `json:"machine,omitempty"`
	// Drain marks a machine-down as planned maintenance (graceful
	// migration) rather than a failure.
	Drain bool `json:"drain,omitempty"`
	// App names the batch application of batch-arrival/batch-cancel.
	App string `json:"app,omitempty"`
	// Count is the number of items arriving or cancelled (default 1).
	Count int `json:"count,omitempty"`
	// Iterations sizes each arriving item in application runs
	// (default 1), exactly like a backlog entry's.
	Iterations int `json:"iterations,omitempty"`
	// Factor is load-scale's rate multiplier (must be positive).
	Factor float64 `json:"factor,omitempty"`
}

// validateEvents checks the timeline: non-negative, non-decreasing
// timestamps; known kinds; machine indices inside the declared pool; a
// causally ordered down/up state machine that never leaves the fleet
// without a live machine; known batch applications; positive scale
// factors.
func (d *Def) validateEvents() error {
	if d.Hysteresis < 0 {
		return fmt.Errorf("fleet: hysteresis must be >= 0, got %v", d.Hysteresis)
	}
	down := make([]bool, d.Machines)
	nDown := 0
	prev := 0.0
	for i, ev := range d.Events {
		if ev.At < 0 {
			return fmt.Errorf("fleet: event %d: negative timestamp %v", i, ev.At)
		}
		if ev.At < prev {
			return fmt.Errorf("fleet: event %d: timestamp %v before event %d at %v (timeline must be ordered)",
				i, ev.At, i-1, prev)
		}
		prev = ev.At
		if ev.Drain && ev.Kind != EvMachineDown {
			return fmt.Errorf("fleet: event %d: drain applies only to machine-down", i)
		}
		switch ev.Kind {
		case EvMachineDown, EvMachineUp:
			if ev.Machine < 0 || ev.Machine >= d.Machines {
				return fmt.Errorf("fleet: event %d: machine %d not in the declared pool of %d",
					i, ev.Machine, d.Machines)
			}
			if ev.Kind == EvMachineDown {
				if down[ev.Machine] {
					return fmt.Errorf("fleet: event %d: machine %d is already down", i, ev.Machine)
				}
				if nDown+1 >= d.Machines {
					return fmt.Errorf("fleet: event %d: machine-down would leave no machine up", i)
				}
				down[ev.Machine] = true
				nDown++
			} else {
				if !down[ev.Machine] {
					return fmt.Errorf("fleet: event %d: machine %d is not down", i, ev.Machine)
				}
				down[ev.Machine] = false
				nDown--
			}
		case EvBatchArrival:
			if _, err := workload.ByName(ev.App); err != nil {
				return fmt.Errorf("fleet: event %d: %w", i, err)
			}
			if ev.Count < 0 {
				return fmt.Errorf("fleet: event %d (%s): negative count", i, ev.App)
			}
			if ev.Iterations < 0 {
				return fmt.Errorf("fleet: event %d (%s): negative iterations", i, ev.App)
			}
		case EvBatchCancel:
			if _, err := workload.ByName(ev.App); err != nil {
				return fmt.Errorf("fleet: event %d: %w", i, err)
			}
			if ev.Count < 0 {
				return fmt.Errorf("fleet: event %d (%s): negative count", i, ev.App)
			}
		case EvLoadScale:
			if ev.Factor <= 0 {
				return fmt.Errorf("fleet: event %d: load-scale needs a positive factor, got %v", i, ev.Factor)
			}
		default:
			return fmt.Errorf("fleet: event %d: unknown event kind %q (want machine-down, machine-up, batch-arrival, batch-cancel, or load-scale)",
				i, ev.Kind)
		}
	}
	return nil
}

// scalePoints extracts the load-scale steps the arrival generator
// thins by; nil when the timeline has none.
func (d *Def) scalePoints() []loadgen.ScalePoint {
	var out []loadgen.ScalePoint
	for _, ev := range d.Events {
		if ev.Kind == EvLoadScale {
			out = append(out, loadgen.ScalePoint{At: ev.At, Factor: ev.Factor})
		}
	}
	return out
}

// eventApps returns the distinct batch-arrival applications of the
// timeline, in event order — the apps the oracle must price beyond the
// declared backlog's.
func (d *Def) eventApps() []string {
	var out []string
	seen := map[string]bool{}
	for _, ev := range d.Events {
		if ev.Kind == EvBatchArrival && !seen[ev.App] {
			seen[ev.App] = true
			out = append(out, ev.App)
		}
	}
	return out
}

// EventCounts is the per-kind tally of a definition's timeline — the
// envelope's events stats block reads it.
type EventCounts struct {
	Total         int
	Failures      int // machine-down without drain
	Drains        int // machine-down with drain
	Ups           int
	BatchArrivals int
	BatchCancels  int
	LoadScales    int
}

// EventCounts tallies the timeline by kind.
func (d *Def) EventCounts() EventCounts {
	var c EventCounts
	c.Total = len(d.Events)
	for _, ev := range d.Events {
		switch ev.Kind {
		case EvMachineDown:
			if ev.Drain {
				c.Drains++
			} else {
				c.Failures++
			}
		case EvMachineUp:
			c.Ups++
		case EvBatchArrival:
			c.BatchArrivals++
		case EvBatchCancel:
			c.BatchCancels++
		case EvLoadScale:
			c.LoadScales++
		}
	}
	return c
}

// eventItems expands one batch-arrival event into backlog items, with
// Def = -(event index)-1 so item identity never collides with a
// declared backlog definition's.
func eventItems(ev Event, evIdx, nextIndex int) []loadgen.BatchItem {
	n, iters := ev.Count, ev.Iterations
	if n == 0 {
		n = 1
	}
	if iters == 0 {
		iters = 1
	}
	out := make([]loadgen.BatchItem, n)
	for k := 0; k < n; k++ {
		out[k] = loadgen.BatchItem{
			App: ev.App, Iterations: float64(iters),
			Def: -evIdx - 1, Seq: k, Index: nextIndex + k,
		}
	}
	return out
}
