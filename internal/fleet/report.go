package fleet

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadgen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tabtext"
)

// PolicyResult aggregates one consolidation policy's run over the
// shared trace.
type PolicyResult struct {
	Policy       PolicyName
	MachinesUsed int // machines that ever hosted work
	Colocated    int // requests served beside a batch resident
	Rejects      int // arrivals the partition check spilled off batch residents
	P50, P95     float64
	P99          float64 // request slowdown percentiles (response / alone service)
	MeanSlowdown float64
	Utilization  float64 // busy machine-seconds / (machines used x makespan)
	DrainSeconds float64 // when the last backlog item finished (0 = no backlog)
	Makespan     float64 // last event in the run
	// ActiveSocketJ/ActiveWallJ price only the machines the policy
	// used (the rest powered off) — the consolidation saving.
	ActiveSocketJ float64
	ActiveWallJ   float64
	// FleetSocketJ prices the whole pool powered for the makespan.
	FleetSocketJ  float64
	ED2           float64 // active socket energy x makespan^2
	Reallocations int     // dynamic-mode controller reallocations, summed

	// Robustness metrics (all zero on an event-free run).
	Evicted        int     // jobs displaced by machine events
	Lost           int     // evictions that lost in-progress work
	Migrated       int     // evictions that kept their progress
	PeakReplace    int     // peak re-placement backlog
	RecoverSeconds float64 // worst event -> all-its-evictees-re-placed gap
	// SLOViolationMin is the summed job-minutes of response time above
	// the slowdown limit: sum over requests of
	// max(0, response - limit x alone) / 60.
	SLOViolationMin float64
}

// Report is the outcome of one fleet run: the trace, the platform,
// and one PolicyResult per policy over the identical arrivals.
type Report struct {
	Name     string
	Def      *Def
	Cores    int
	Assoc    int
	Requests int
	ByClass  []int // arrivals per request class
	Backlog  int
	Width    int // effective batch width
	// Fidelity is the oracle tier the pair numbers came from; under
	// fast/auto, PairsPredicted/PairsResimulated account for every
	// co-location (exact keeps both zero).
	Fidelity         Fidelity
	PairsPredicted   int
	PairsResimulated int
	Results          []PolicyResult
}

// RunOpts configures how a fleet run executes; the zero value is the
// default everywhere.
type RunOpts struct {
	// Parent is the trace span the fleet's spans nest under (0 = root).
	Parent obs.SpanID
	// PolicyParallel caps how many policy episodes replay concurrently
	// (0 = min(policies, GOMAXPROCS), 1 = serial). Episodes share only
	// the read-only oracle, so the report is byte-identical at any
	// setting.
	PolicyParallel int
}

// policyWorkers resolves the episode worker count for n policies.
func (o RunOpts) policyWorkers(n int) int {
	w := o.PolicyParallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes a fleet definition on the runner: it generates the
// trace, fans every needed single-machine simulation through the
// engine as one batch, then replays the identical trace under each
// consolidation policy. Output is deterministic and byte-identical at
// any engine parallelism.
func Run(r *sched.Runner, name string, def *Def) (*Report, error) {
	return RunWith(r, name, def, RunOpts{})
}

// RunSpan is Run with the trace span the fleet's spans nest under
// (0 = root).
func RunSpan(r *sched.Runner, name string, def *Def, parent obs.SpanID) (*Report, error) {
	return RunWith(r, name, def, RunOpts{Parent: parent})
}

// RunWith is Run with explicit options. The span tree a traced fleet
// run produces is:
//
//	compile                 trace generation
//	oracle                  performance-oracle construction
//	  oracle-batch            exact tier: one batch of every sim
//	  probe-batch             fast/auto: reduced probe runs
//	  predict                 fast/auto: analytic pair prediction
//	  resim-batch             auto: borderline exact re-simulation
//	episode (per policy)    trace replay under one policy
//
// Episodes run concurrently up to RunOpts.PolicyParallel; each opens
// its own span under Parent, and Report.Results keeps presentation
// order regardless of completion order. Tracing changes nothing about
// the report.
func RunWith(r *sched.Runner, name string, def *Def, opts RunOpts) (*Report, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	parent := opts.Parent
	tr := r.Tracer()
	t0 := time.Now()
	csp := tr.Start("compile", parent)
	arrivals, err := loadgen.ArrivalsScaled(def.Arrivals, def.Duration, def.seed(), def.scalePoints())
	if err != nil {
		csp.End()
		return nil, err
	}
	backlog, err := loadgen.Backlog(def.Backlog)
	if err != nil {
		csp.End()
		return nil, err
	}
	csp.End(obs.Int("requests", len(arrivals)), obs.Int("backlog", len(backlog)))
	r.AddPhase("compile", time.Since(t0))

	o, err := buildOracle(r, def, parent)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Name: name, Def: def,
		Cores: o.cfg.Cores, Assoc: o.cfg.Hier.LLC.Assoc,
		Requests: len(arrivals), ByClass: make([]int, len(def.Arrivals)),
		Backlog: len(backlog), Width: def.batchWidth(),
		Fidelity: o.fid, PairsPredicted: o.predicted, PairsResimulated: o.resimmed,
	}
	for _, a := range arrivals {
		rep.ByClass[a.Class]++
	}

	pols := def.policies()
	results := make([]PolicyResult, len(pols))
	errs := make([]error, len(pols))
	runOne := func(i int) {
		results[i], errs[i] = runEpisode(r, def, o, pols[i], arrivals, backlog, parent)
	}
	if workers := opts.policyWorkers(len(pols)); workers <= 1 {
		for i := range pols {
			runOne(i)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
	} else {
		// Episodes share only def/o/arrivals/backlog, all read-only past
		// this point, so each is an independent serial replay. A panic in
		// an episode (a sim bug) must surface on the calling goroutine as
		// it would serially, so workers capture the first one and the
		// caller re-raises it after the barrier — the same discipline as
		// the engine's batch workers.
		var next atomic.Int64
		var wg sync.WaitGroup
		var aborted atomic.Bool
		var panicOnce sync.Once
		var panicked any
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						panicOnce.Do(func() { panicked = p })
						aborted.Store(true)
					}
				}()
				for !aborted.Load() {
					i := int(next.Add(1)) - 1
					if i >= len(pols) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
		// Report the failure of the earliest policy in presentation
		// order — the same error a serial sweep would have stopped on.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	rep.Results = results
	return rep, nil
}

// runEpisode replays the shared trace under one consolidation policy
// and aggregates its PolicyResult. Everything it reads — the
// definition, the oracle, the compiled arrivals and backlog — is
// immutable for the duration of the run, so concurrent episodes never
// share mutable state; the tracer and phase accounting are themselves
// concurrency-safe.
func runEpisode(r *sched.Runner, def *Def, o *oracle, pol PolicyName,
	arrivals []loadgen.Arrival, backlog []loadgen.BatchItem, parent obs.SpanID) (PolicyResult, error) {
	e0 := time.Now()
	esp := r.Tracer().Start("episode", parent, obs.String("policy", string(pol)))
	s := newSim(def, o, pol, arrivals, backlog)
	makespan := s.run()
	if s.nextItem < len(s.backlog) || s.requeuedLen() > 0 || s.drained != s.totalItems {
		esp.End()
		return PolicyResult{}, fmt.Errorf("fleet: policy %s stalled with %d of %d backlog items undrained",
			pol, s.totalItems-s.drained, s.totalItems)
	}
	pr := PolicyResult{
		Policy: pol, Rejects: s.rejects, Colocated: s.coloc,
		DrainSeconds: s.drainT, Makespan: makespan, Reallocations: s.reallocs,
		Evicted: s.evicted, Lost: s.lostJobs, Migrated: s.migrated,
		PeakReplace: s.peakRepl, RecoverSeconds: s.recoverMax,
	}
	limit := def.slowdownLimit()
	slow := make([]float64, 0, len(s.reqs))
	for i := range s.reqs {
		rq := &s.reqs[i]
		if !rq.done {
			esp.End()
			return PolicyResult{}, fmt.Errorf("fleet: policy %s left request %d unserved", pol, i)
		}
		resp := rq.finish - rq.arr.AtSeconds
		alone := o.alone[rq.arr.App].Seconds
		slow = append(slow, resp/alone)
		if excess := resp - limit*alone; excess > 0 {
			pr.SLOViolationMin += excess / 60
		}
	}
	if len(slow) > 0 {
		pr.P50 = stats.Percentile(slow, 50)
		pr.P95 = stats.Percentile(slow, 95)
		pr.P99 = stats.Percentile(slow, 99)
		pr.MeanSlowdown = stats.Mean(slow)
	}
	if makespan > 0 {
		var busy float64
		for mi := range s.machines {
			s.account(mi, makespan)
			m := &s.machines[mi]
			busy += m.busySec
			if m.used {
				pr.MachinesUsed++
				pr.ActiveSocketJ += m.socketJ
				pr.ActiveWallJ += m.wallJ
			}
		}
		pr.FleetSocketJ = pr.ActiveSocketJ +
			o.idleSocketW*makespan*float64(def.Machines-pr.MachinesUsed)
		if pr.MachinesUsed > 0 {
			pr.Utilization = busy / (float64(pr.MachinesUsed) * makespan)
		}
		pr.ED2 = pr.ActiveSocketJ * makespan * makespan
	}
	esp.End(obs.Int("machines", pr.MachinesUsed), obs.Int("coloc", pr.Colocated))
	r.AddPhase("episode", time.Since(e0))
	return pr, nil
}

// String renders the report as aligned text; byte-identical across
// engine parallelism settings.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== fleet: %s (%d machines x %d cores, %d-way LLC) ==\n",
		r.Name, r.Def.Machines, r.Cores, r.Assoc)
	fmt.Fprintf(&sb, "trace: %d requests over %.2f s (", r.Requests, r.Def.Duration)
	for i, c := range r.Def.Arrivals {
		if i > 0 {
			sb.WriteString(", ")
		}
		proc := c.Process
		if proc == "" {
			proc = loadgen.ProcPoisson
		}
		fmt.Fprintf(&sb, "%s %s %g/s: %d", c.App, proc, c.Rate, r.ByClass[i])
	}
	if len(r.Def.Arrivals) == 0 {
		sb.WriteString("none")
	}
	fmt.Fprintf(&sb, "); backlog %d items, width %d; partition %s; seed %q\n",
		r.Backlog, r.Width, r.Def.partition(), r.Def.seed())
	if len(r.Def.Events) > 0 {
		c := r.Def.EventCounts()
		fmt.Fprintf(&sb, "events: %d (%d failures, %d drains, %d ups, %d batch-arrivals, %d batch-cancels, %d load-scales)",
			c.Total, c.Failures, c.Drains, c.Ups, c.BatchArrivals, c.BatchCancels, c.LoadScales)
		if r.Def.Hysteresis > 0 {
			fmt.Fprintf(&sb, "; hysteresis %gs", r.Def.Hysteresis)
		}
		sb.WriteByte('\n')
	}
	if r.Fidelity != "" && r.Fidelity != FidelityExact {
		if r.Fidelity == FidelityAuto {
			fmt.Fprintf(&sb, "fidelity: auto (model %s, margin %g); co-locations: %d predicted, %d re-simulated\n",
				model.Version, r.Def.fastMargin(), r.PairsPredicted, r.PairsResimulated)
		} else {
			fmt.Fprintf(&sb, "fidelity: fast (model %s); co-locations: %d predicted, %d re-simulated\n",
				model.Version, r.PairsPredicted, r.PairsResimulated)
		}
	}

	rows := [][]string{{"policy", "mach", "coloc", "rej", "p50", "p95", "p99",
		"util%", "drain(s)", "mksp(s)", "socket(J)", "ED2(Js^2)"}}
	for _, pr := range r.Results {
		rows = append(rows, []string{
			string(pr.Policy),
			fmt.Sprintf("%d", pr.MachinesUsed),
			fmt.Sprintf("%d", pr.Colocated),
			fmt.Sprintf("%d", pr.Rejects),
			fmt.Sprintf("%.3f", pr.P50),
			fmt.Sprintf("%.3f", pr.P95),
			fmt.Sprintf("%.3f", pr.P99),
			fmt.Sprintf("%.1f", pr.Utilization*100),
			fmt.Sprintf("%.4f", pr.DrainSeconds),
			fmt.Sprintf("%.4f", pr.Makespan),
			fmt.Sprintf("%.1f", pr.ActiveSocketJ),
			fmt.Sprintf("%.4g", pr.ED2),
		})
	}
	tabtext.WriteAligned(&sb, rows)
	sb.WriteString("(mach = machines powered; socket/ED2 price those machines only;\n" +
		" p50/p95/p99 = request slowdown vs alone, queueing included)\n")
	if len(r.Def.Events) > 0 {
		rrows := [][]string{{"policy", "evict", "lost", "migr", "peakq", "recover(s)", "slo-viol(min)"}}
		for _, pr := range r.Results {
			rrows = append(rrows, []string{
				string(pr.Policy),
				fmt.Sprintf("%d", pr.Evicted),
				fmt.Sprintf("%d", pr.Lost),
				fmt.Sprintf("%d", pr.Migrated),
				fmt.Sprintf("%d", pr.PeakReplace),
				fmt.Sprintf("%.4f", pr.RecoverSeconds),
				fmt.Sprintf("%.4f", pr.SLOViolationMin),
			})
		}
		tabtext.WriteAligned(&sb, rrows)
		sb.WriteString("(evict = jobs displaced by machine events; recover = worst event-to-\n" +
			" all-re-placed gap; slo-viol = job-minutes above the slowdown limit)\n")
	}
	if pol, err := r.Def.policy(); err == nil && pol.Online() {
		label := string(r.Def.partition()) + " policy"
		if r.Def.partition() == PartDynamic {
			label = "dynamic controller"
		}
		for _, pr := range r.Results {
			fmt.Fprintf(&sb, "%s under %s: %d reallocations across %d co-located requests\n",
				label, pr.Policy, pr.Reallocations, pr.Colocated)
		}
	}
	return sb.String()
}

// Describe validates a definition and summarizes the load it would
// generate — the `fleet check` output. No simulations run.
func Describe(name string, def *Def) (string, error) {
	if err := def.Validate(); err != nil {
		return "", err
	}
	arrivals, err := loadgen.ArrivalsScaled(def.Arrivals, def.Duration, def.seed(), def.scalePoints())
	if err != nil {
		return "", err
	}
	backlog, err := loadgen.Backlog(def.Backlog)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: ok — %d machines, %d requests over %.2f s, backlog %d (width %d), partition %s\n",
		name, def.Machines, len(arrivals), def.Duration, len(backlog), def.batchWidth(), def.partition())
	if f := def.fidelity(); f != FidelityExact {
		if f == FidelityAuto {
			fmt.Fprintf(&sb, "  fidelity: auto (model %s, margin %g)\n", model.Version, def.fastMargin())
		} else {
			fmt.Fprintf(&sb, "  fidelity: fast (model %s)\n", model.Version)
		}
	}
	byClass := make([]int, len(def.Arrivals))
	for _, a := range arrivals {
		byClass[a.Class]++
	}
	for i := range def.Arrivals {
		c := &def.Arrivals[i]
		proc := c.Process
		if proc == "" {
			proc = loadgen.ProcPoisson
		}
		fmt.Fprintf(&sb, "  class %d: %-18s %-8s %6g req/s -> %d arrivals\n",
			i, c.App, proc, c.Rate, byClass[i])
	}
	for i, b := range def.Backlog {
		n := b.Count
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "  backlog %d: %-16s x%d\n", i, b.App, n)
	}
	for i, ev := range def.Events {
		switch ev.Kind {
		case EvMachineDown:
			label := "failure"
			if ev.Drain {
				label = "drain"
			}
			fmt.Fprintf(&sb, "  event %d: t=%-8g machine-down %d (%s)\n", i, ev.At, ev.Machine, label)
		case EvMachineUp:
			fmt.Fprintf(&sb, "  event %d: t=%-8g machine-up %d\n", i, ev.At, ev.Machine)
		case EvBatchArrival:
			n, iters := ev.Count, ev.Iterations
			if n == 0 {
				n = 1
			}
			if iters == 0 {
				iters = 1
			}
			fmt.Fprintf(&sb, "  event %d: t=%-8g batch-arrival %s x%d (iterations %d)\n", i, ev.At, ev.App, n, iters)
		case EvBatchCancel:
			n := ev.Count
			if n == 0 {
				n = 1
			}
			fmt.Fprintf(&sb, "  event %d: t=%-8g batch-cancel %s x%d\n", i, ev.At, ev.App, n)
		case EvLoadScale:
			fmt.Fprintf(&sb, "  event %d: t=%-8g load-scale x%g\n", i, ev.At, ev.Factor)
		}
	}
	if def.Hysteresis > 0 {
		fmt.Fprintf(&sb, "  hysteresis: %gs\n", def.Hysteresis)
	}
	fmt.Fprintf(&sb, "  policies: ")
	for i, p := range def.policies() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(string(p))
	}
	sb.WriteByte('\n')
	return sb.String(), nil
}
