package fleet

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

// loadFleetDef reads just the fleet block of a shipped example scenario.
// (The scenario package imports fleet, so this internal test parses the
// file directly.)
func loadFleetDef(t *testing.T, file string) *Def {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", file))
	if err != nil {
		t.Fatal(err)
	}
	var s struct {
		Name  string `json:"name"`
		Fleet *Def   `json:"fleet"`
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Fleet == nil {
		t.Fatalf("%s carries no fleet block", file)
	}
	return s.Fleet
}

// fastSlowdownTolerance pins the analytic tier's accuracy contract: the
// relative error of every predicted request slowdown against the exact
// simulation, across every co-location pair in every shipped fleet
// example. Loosening it needs a model change with a justification, not
// a bump.
const fastSlowdownTolerance = 0.15

// TestFastErrorBound validates the MRC+CPI predictions of every
// co-location pair the shipped fleet examples exercise against the
// exact tier, and logs the worst case so accuracy drift is visible in
// verbose runs even while within tolerance.
func TestFastErrorBound(t *testing.T) {
	files := []string{
		"fleet-consolidation-50.json",
		"fleet-utility-50.json",
		"fleet-diurnal.json",
		"fleet-batch-drain.json",
		"fleet-dynamic-8.json",
		"fleet-mega-10k.json",
	}
	// One runner for every def: alone baselines and repeated pairs
	// memoize across examples.
	r := sched.New(sched.Options{Scale: sched.QuickScale})
	var worst float64
	var worstAt string
	pairs := 0
	for _, file := range files {
		def := loadFleetDef(t, file)
		exactDef, fastDef := *def, *def
		exactDef.Fidelity, fastDef.Fidelity = FidelityExact, FidelityFast
		oe, err := buildOracle(r, &exactDef, 0)
		if err != nil {
			t.Fatalf("%s exact: %v", file, err)
		}
		of, err := buildOracle(r, &fastDef, 0)
		if err != nil {
			t.Fatalf("%s fast: %v", file, err)
		}
		if len(of.pair) != len(oe.pair) {
			t.Fatalf("%s: fast tier predicted %d pairs, exact simulated %d", file, len(of.pair), len(oe.pair))
		}
		for key, pe := range oe.pair {
			pf, ok := of.pair[key]
			if !ok {
				t.Fatalf("%s: fast tier missed pair %q", file, key)
			}
			rel := math.Abs(pf.FgSlowdown-pe.FgSlowdown) / pe.FgSlowdown
			name := file + "/" + strings.ReplaceAll(key, "\x00", "+")
			if rel > fastSlowdownTolerance {
				t.Errorf("%s: predicted slowdown %.4f vs exact %.4f — relative error %.3f exceeds %.2f",
					name, pf.FgSlowdown, pe.FgSlowdown, rel, fastSlowdownTolerance)
			}
			if rel > worst {
				worst, worstAt = rel, name
			}
			pairs++
		}
	}
	t.Logf("validated %d co-location pairs; worst relative slowdown error %.4f at %s", pairs, worst, worstAt)
}

// TestAutoWideMarginMatchesExact pins auto's degenerate contract: with
// a margin wide enough to make every co-location borderline, every pair
// is re-simulated and the report is byte-identical to the exact tier's
// except for the fidelity line — because probing runs are shadow-only
// and the re-simulations replay the exact tier's own specs.
func TestAutoWideMarginMatchesExact(t *testing.T) {
	def := loadFleetDef(t, "fleet-dynamic-8.json")
	// One runner: the exact run populates the memo the auto run's
	// re-simulations replay from.
	r := sched.New(sched.Options{Scale: sched.QuickScale})

	exactDef := *def
	exactDef.Fidelity = FidelityExact
	exact, err := Run(r, "wide-margin", &exactDef)
	if err != nil {
		t.Fatal(err)
	}

	autoDef := *def
	autoDef.Fidelity = FidelityAuto
	autoDef.FastMargin = 99
	auto, err := Run(r, "wide-margin", &autoDef)
	if err != nil {
		t.Fatal(err)
	}
	if auto.PairsResimulated == 0 || auto.PairsPredicted != 0 {
		t.Fatalf("margin 99 should re-simulate every pair: %d predicted, %d re-simulated",
			auto.PairsPredicted, auto.PairsResimulated)
	}

	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "fidelity:") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	got, want := strip(auto.String()), exact.String()
	if !strings.Contains(auto.String(), "fidelity: auto") {
		t.Error("auto report carries no fidelity line")
	}
	if got != want {
		t.Errorf("auto(margin 99) diverged from exact\n--- exact ---\n%s\n--- auto ---\n%s", want, got)
	}
}
