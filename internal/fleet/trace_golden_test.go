package fleet_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// TestFleetMega10kTraceGolden pins the span structure a traced
// fleet-mega-10k run produces at quick scale: names, nesting, and
// counts — never durations, which are wall-clock. The structure is
// deterministic because the engine plans the same batches in the same
// shape at any parallelism. Regenerate with -update-golden.
func TestFleetMega10kTraceGolden(t *testing.T) {
	s, err := scenario.ParseFile(filepath.Join("..", "..", "examples", "scenarios", "fleet-mega-10k.json"))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(0)
	r := sched.New(sched.Options{Scale: quickScale, Parallelism: 4, Tracer: tr})
	root := tr.Start("run", 0)
	if _, err := fleet.RunSpan(r, s.Name, s.Fleet, root.ID()); err != nil {
		t.Fatal(err)
	}
	root.End()

	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans; raise the limit so the structure is complete", tr.Dropped())
	}
	got := tr.Structure()
	path := filepath.Join("testdata", "fleet_mega10k_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace structure drifted from golden\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
