package fleet

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/workload"
)

// alonePerf is one application running alone on a machine's half —
// the request service-time baseline and the single-occupant power
// state.
type alonePerf struct {
	Seconds float64 // one run to completion
	SocketW float64 // socket watts while running
	WallW   float64 // wall watts while running
}

// pairPerf is a co-location: a latency request on the front half with
// a batch occupant looping on the back half, under the fleet's
// partition mode.
type pairPerf struct {
	FgSeconds  float64 // request service time co-located
	FgSlowdown float64 // FgSeconds / alone seconds
	BgRate     float64 // batch iterations per second while co-located
	FgWays     int     // protective split chosen (0 = unpartitioned)
	SocketW    float64 // socket watts while co-running
	WallW      float64
	Reallocs   int // dynamic-controller reallocations per episode
}

// oracle holds every simulation-derived number the event loop needs.
// It is built once per fleet run by fanning all required
// single-machine simulations through the sched engine as one batch:
// the way sweeps of the biased partition check, the alone baselines,
// and (in dynamic mode) one controller-driven episode per pair. All
// memoizable specs use the canonical mix shapes, so a fleet run
// deduplicates against pair/single runs any other driver has done.
type oracle struct {
	cfg      machine.Config
	override bool // cfg differs from the runner's template

	idleSocketW float64
	idleWallW   float64

	alone map[string]alonePerf
	pair  map[string]pairPerf

	// fid is the tier that built the pair table; predicted/resimmed
	// count its co-locations per source (both zero under exact).
	fid       Fidelity
	predicted int
	resimmed  int
}

func pairKey(fg, bg string) string { return fg + "\x00" + bg }

// halfMixes builds the canonical mix shapes on the fleet's platform.
type halfMixes struct {
	cfg      machine.Config
	override bool
}

func (h halfMixes) machine() *machine.Config {
	if !h.override {
		return nil
	}
	cfg := h.cfg
	return &cfg
}

// aloneMix is an application alone on the front half: the same shape
// (threads, slots, seed) as sched.AloneHalfSpec, so it shares that
// memo entry on the default platform.
func (h halfMixes) aloneMix(app *workload.Profile) sched.MixSpec {
	threads := sched.CapThreads(app, h.cfg.Cores/2*h.cfg.ThreadsPerCore)
	slots := make([]int, threads)
	for i := range slots {
		slots[i] = i
	}
	return sched.MixSpec{
		Jobs:    []sched.MixJob{{App: app, Threads: threads, Slots: slots, Seed: "single"}},
		Machine: h.machine(),
	}
}

// pairMix is the §5 pair on the fleet's platform: the request on the
// front cores, the batch occupant looping on the back cores, each
// bounded to the given way range ([0,0) = full cache). The w-split
// convention of the sweep — request in the low ways, occupant in the
// high ways — is splitRanges. Identical to sched.PairSpec's mix on the
// default platform.
func (h halfMixes) pairMix(fg, bg *workload.Profile, fgR, bgR [2]int) sched.MixSpec {
	half := h.cfg.Cores / 2
	frontCores := make([]int, half)
	backCores := make([]int, half)
	for i := 0; i < half; i++ {
		frontCores[i], backCores[i] = i, half+i
	}
	htPerHalf := half * h.cfg.ThreadsPerCore
	return sched.MixSpec{
		Jobs: []sched.MixJob{
			{App: fg, Threads: sched.CapThreads(fg, htPerHalf),
				Slots: h.cfg.SlotsForCores(frontCores...), Seed: "fg",
				WayFirst: fgR[0], WayLim: fgR[1]},
			{App: bg, Threads: sched.CapThreads(bg, htPerHalf),
				Slots: h.cfg.SlotsForCores(backCores...), Background: true,
				Seed: "bg", WayFirst: bgR[0], WayLim: bgR[1]},
		},
		Machine: h.machine(),
	}
}

// splitRanges is the sweep convention: request ways [0, w), occupant
// ways [w, assoc); w == 0 leaves the cache fully shared.
func splitRanges(w, assoc int) (fgR, bgR [2]int) {
	if w > 0 {
		fgR = [2]int{0, w}
		bgR = [2]int{w, assoc}
	}
	return fgR, bgR
}

// onlinePairMix is a co-location episode under an online policy: the
// shared-cache pair with the policy's decision loop attached, keyed by
// the policy's RunKey so episodes memoize and disk-cache without
// aliasing across policies.
func (h halfMixes) onlinePairMix(fg, bg *workload.Profile, pol partition.Policy, interval float64) sched.MixSpec {
	mix := h.pairMix(fg, bg, [2]int{}, [2]int{})
	mix.Setup = func(m *machine.Machine, jobs []*machine.Job) {
		partition.AttachLoop(m, []partition.LoopJob{
			{Job: jobs[0], Cores: jobs[0].Cores(), App: fg.Name, Latency: true},
			{Job: jobs[1], Cores: jobs[1].Cores(), App: bg.Name},
		}, pol, interval)
	}
	mix.PolicyKey = partition.RunKey(pol, interval, []bool{true, false})
	return mix
}

// buildOracle plans and executes every simulation the fleet run needs
// as one engine batch. Its work is traced under an "oracle" span below
// parent, with the exact tier's batch labeled "oracle" and the
// analytic tiers' probe/predict/resim structure under buildFast.
func buildOracle(r *sched.Runner, d *Def, parent obs.SpanID) (*oracle, error) {
	osp := r.Tracer().Start("oracle", parent,
		obs.String("fidelity", string(d.fidelity())),
		obs.String("partition", string(d.partition())))
	// End is idempotent: error paths end the span bare, the success
	// path ends it with pair-table attrs first.
	defer osp.End()
	cfg := r.MachineConfig()
	override := false
	if d.Cores > 0 && d.Cores != cfg.Cores {
		cfg, override = machine.DefaultWithCores(d.Cores), true
	}
	if cfg.Cores < 2 || cfg.Cores%2 != 0 {
		return nil, fmt.Errorf("fleet: machines need an even core count >= 2, got %d", cfg.Cores)
	}
	h := halfMixes{cfg: cfg, override: override}
	assoc := cfg.Hier.LLC.Assoc

	o := &oracle{
		cfg: cfg, override: override,
		idleSocketW: cfg.Energy.IdlePowerSocket(cfg.Cores),
		idleWallW:   cfg.Energy.IdlePowerWall(cfg.Cores),
		alone:       map[string]alonePerf{},
		pair:        map[string]pairPerf{},
		fid:         FidelityExact,
	}

	fgs, bgs := d.fgApps(), d.bgApps()
	// Timeline batch-arrivals can introduce apps the declared backlog
	// never mentions; the oracle must price them too. The exact tier
	// plans them as a separate "replace" batch so traces attribute the
	// recovery work; the analytic tiers just fold them into the pool.
	inBgs := map[string]bool{}
	for _, name := range bgs {
		inBgs[name] = true
	}
	var evBgs []string
	for _, name := range d.eventApps() {
		if !inBgs[name] {
			evBgs = append(evBgs, name)
		}
	}
	apps := map[string]*workload.Profile{}
	for _, name := range append(append(append([]string{}, fgs...), bgs...), evBgs...) {
		apps[name] = workload.MustByName(name)
	}

	// One batch: alone baselines for every app, then per (fg, bg) pair
	// either the full way sweep (biased), the shared co-run, or one
	// controller-driven episode (dynamic).
	var specs []sched.Spec
	aloneAt := map[string]int{}
	for _, name := range fgs {
		aloneAt[name] = len(specs)
		specs = append(specs, h.aloneMix(apps[name]))
	}
	for _, name := range bgs {
		if _, dup := aloneAt[name]; dup {
			continue
		}
		aloneAt[name] = len(specs)
		specs = append(specs, h.aloneMix(apps[name]))
	}

	// Per (fg, bg) pair, the specs the fleet's partition policy needs:
	// a Searcher sweeps every uneven split, an online policy runs one
	// loop-attached episode, and an offline policy runs the single
	// static split its Decide picks for the pair shape. All dispatch is
	// through the policy interface — a newly registered policy needs no
	// fleet change.
	pol, err := d.policy()
	if err != nil {
		return nil, err
	}
	if err := d.checkEpisodeShape(pol, assoc); err != nil {
		return nil, err
	}
	searcher, _ := pol.(partition.Searcher)

	if fid := d.fidelity(); fid != FidelityExact {
		// The analytic tiers replace the per-pair simulations with MRC
		// predictions (re-simulating borderline pairs under auto); the
		// alone baselines stay exact in every tier.
		if err := o.buildFast(r, d, h, pol, searcher, fgs, append(append([]string{}, bgs...), evBgs...), apps, assoc, fid, osp.ID()); err != nil {
			return nil, err
		}
		osp.End(obs.Int("alone", len(o.alone)), obs.Int("pairs", len(o.pair)))
		return o, nil
	}

	pairAt := map[string]int{} // first spec index of the pair's runs
	for _, fg := range fgs {
		for _, bg := range bgs {
			pairAt[pairKey(fg, bg)] = len(specs)
			specs = append(specs, pairSpecs(r, h, apps[fg], apps[bg], pol, searcher, assoc)...)
		}
	}

	results := r.RunBatchIn(sched.BatchInfo{Span: osp.ID(), Phase: "oracle"}, specs)

	for name, at := range aloneAt {
		res := results[at]
		o.alone[name] = alonePerf{
			Seconds: res.Jobs[0].Seconds,
			SocketW: watts(res.Energy.SocketJoules, res.WindowSeconds),
			WallW:   watts(res.Energy.WallJoules, res.WindowSeconds),
		}
	}

	for _, fg := range fgs {
		for _, bg := range bgs {
			key := pairKey(fg, bg)
			o.pair[key] = harvestPair(results, pairAt[key], pol, searcher, assoc, o.alone[fg].Seconds)
		}
	}

	// Event-only apps get their own "replace" batch: the alone baseline
	// (unless an arrival class already priced it) plus one pair per
	// request class, so re-placement after churn dedups against the
	// initial batch through the same memo keys.
	if len(evBgs) > 0 {
		var rspecs []sched.Spec
		evAloneAt := map[string]int{}
		for _, name := range evBgs {
			if _, have := aloneAt[name]; have {
				continue
			}
			evAloneAt[name] = len(rspecs)
			rspecs = append(rspecs, h.aloneMix(apps[name]))
		}
		evPairAt := map[string]int{}
		for _, fg := range fgs {
			for _, bg := range evBgs {
				evPairAt[pairKey(fg, bg)] = len(rspecs)
				rspecs = append(rspecs, pairSpecs(r, h, apps[fg], apps[bg], pol, searcher, assoc)...)
			}
		}
		rresults := r.RunBatchIn(sched.BatchInfo{Span: osp.ID(), Phase: "replace"}, rspecs)
		for name, at := range evAloneAt {
			res := rresults[at]
			o.alone[name] = alonePerf{
				Seconds: res.Jobs[0].Seconds,
				SocketW: watts(res.Energy.SocketJoules, res.WindowSeconds),
				WallW:   watts(res.Energy.WallJoules, res.WindowSeconds),
			}
		}
		for _, fg := range fgs {
			for _, bg := range evBgs {
				key := pairKey(fg, bg)
				o.pair[key] = harvestPair(rresults, evPairAt[key], pol, searcher, assoc, o.alone[fg].Seconds)
			}
		}
	}
	osp.End(obs.Int("alone", len(o.alone)), obs.Int("pairs", len(o.pair)))
	return o, nil
}

// pairSpecs returns the simulations one (fg, bg) co-location needs
// under the partition policy: a Searcher sweeps every uneven split, an
// online policy runs one loop-attached episode, and an offline policy
// runs the single static split its Decide picks for the pair shape.
// All dispatch is through the policy interface — a newly registered
// policy needs no fleet change.
func pairSpecs(r *sched.Runner, h halfMixes, fg, bg *workload.Profile, pol partition.Policy, searcher partition.Searcher, assoc int) []sched.Spec {
	switch {
	case searcher != nil:
		out := make([]sched.Spec, 0, assoc-1)
		for w := 1; w < assoc; w++ {
			fgR, bgR := splitRanges(w, assoc)
			out = append(out, h.pairMix(fg, bg, fgR, bgR))
		}
		return out
	case pol.Online():
		interval := partition.SamplingInterval(fg, r.Scale())
		return []sched.Spec{h.onlinePairMix(fg, bg, pol, interval)}
	default:
		fgW, bgW := partition.PairWays(pol, assoc)
		fgR, bgR := [2]int{}, [2]int{}
		if fgW > 0 || bgW > 0 {
			fgR = [2]int{0, fgW}
			bgR = [2]int{assoc - bgW, assoc}
		}
		return []sched.Spec{h.pairMix(fg, bg, fgR, bgR)}
	}
}

// harvestPair reads one pair's pairPerf out of the batch results,
// starting at the pair's first spec index.
func harvestPair(results []*machine.Result, at int, pol partition.Policy, searcher partition.Searcher, assoc int, fgAlone float64) pairPerf {
	var res *machine.Result
	var fgWays, reallocs int
	switch {
	case searcher != nil:
		// The policy's selection rule over the measured sweep;
		// the fleet default is the protective Figure 13 rule
		// (minimum request degradation, ties toward the larger
		// request share).
		cands := make([]partition.Candidate, assoc-1)
		for w := 1; w < assoc; w++ {
			sw := results[at+w-1]
			cands[w-1] = partition.Candidate{
				FgWays:       w,
				FgSlowdown:   sw.Jobs[0].Seconds / fgAlone,
				BgThroughput: sw.Jobs[1].Iterations,
			}
		}
		fgWays = cands[searcher.Pick(cands)].FgWays
		res = results[at+fgWays-1]
	case pol.Online():
		res = results[at]
		if tr := res.Partition; tr != nil {
			reallocs = tr.Reallocations
			if len(tr.FinalWays) > 0 {
				fgWays = tr.FinalWays[0]
			}
		}
	default:
		res = results[at]
		fgWays, _ = partition.PairWays(pol, assoc)
	}
	return pairPerf{
		FgSeconds:  res.Jobs[0].Seconds,
		FgSlowdown: res.Jobs[0].Seconds / fgAlone,
		BgRate:     rate(res.Jobs[1].Iterations, res.WindowSeconds),
		FgWays:     fgWays,
		SocketW:    watts(res.Energy.SocketJoules, res.WindowSeconds),
		WallW:      watts(res.Energy.WallJoules, res.WindowSeconds),
		Reallocs:   reallocs,
	}
}

// powerState returns the socket/wall power of a machine in the given
// occupancy state ("" = that half is empty).
func (o *oracle) powerState(fgApp, bgApp string) (socketW, wallW float64) {
	switch {
	case fgApp == "" && bgApp == "":
		return o.idleSocketW, o.idleWallW
	case fgApp != "" && bgApp != "":
		p := o.pair[pairKey(fgApp, bgApp)]
		return p.SocketW, p.WallW
	case fgApp != "":
		a := o.alone[fgApp]
		return a.SocketW, a.WallW
	default:
		a := o.alone[bgApp]
		return a.SocketW, a.WallW
	}
}

func watts(joules, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return joules / seconds
}

func rate(iters, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return iters / seconds
}
