package fleet

import (
	"container/heap"
	"math"

	"repro/internal/loadgen"
)

// The event loop. Each machine has two halves: a latency slot serving
// at most one request (FIFO queue behind it) and a batch slot hosting
// at most one resident backlog item. Requests are dispatched at
// arrival by the consolidation policy; their service time is fixed at
// dispatch from the oracle (alone, or co-located under the fleet's
// partition mode). Batch residents accrue iterations at the alone rate
// when the latency slot is empty and at the co-located rate while a
// request runs beside them. Everything downstream of the oracle is
// plain serial float arithmetic, so a fleet run is byte-identical at
// any engine parallelism.

const (
	evFgDone  = iota // a request completed (machine index)
	evBgDone         // a batch resident finished its item (machine index)
	evArrival        // a request arrived (trace index)
)

type event struct {
	t    float64
	kind int
	idx  int
	ver  int // bgDone staleness check
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	if h[a].kind != h[b].kind {
		return h[a].kind < h[b].kind
	}
	if h[a].idx != h[b].idx {
		return h[a].idx < h[b].idx
	}
	return h[a].ver < h[b].ver
}
func (h eventHeap) Swap(a, b int)                 { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)                   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any                     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (s *sim) push(t float64, kind, idx, ver int) { heap.Push(&s.events, event{t, kind, idx, ver}) }

// machState is one machine of the pool.
type machState struct {
	fgApp string // active request's application ("" = latency slot idle)
	fgReq int    // active request index
	queue []int  // waiting request indices, FIFO

	bgApp       string  // resident batch item's application ("" = none)
	bgRemaining float64 // iterations left
	bgRate      float64 // iterations per second at current occupancy
	bgVer       int

	used        bool
	latencyUsed bool
	lastFree    float64 // when the machine last became fully idle (LRU)

	accT    float64 // lazy-accounting timestamp
	socketJ float64
	wallJ   float64
	busySec float64
}

type reqState struct {
	arr    loadgen.Arrival
	finish float64
	done   bool
}

// sim is one policy's run over the shared trace.
type sim struct {
	def    *Def
	o      *oracle
	policy PolicyName

	machines []machState
	events   eventHeap
	reqs     []reqState
	backlog  []loadgen.BatchItem
	nextItem int // next backlog item to place
	resident int // batch residents currently placed
	maxBatch int // fleet-wide batch-width cap
	prefixK  int // util-target's static machine prefix

	drained  int
	drainT   float64
	lastT    float64
	rejects  int
	coloc    int
	reallocs int
}

func newSim(def *Def, o *oracle, policy PolicyName, arrivals []loadgen.Arrival, backlog []loadgen.BatchItem) *sim {
	s := &sim{
		def: def, o: o, policy: policy,
		machines: make([]machState, def.Machines),
		reqs:     make([]reqState, len(arrivals)),
		backlog:  backlog,
		maxBatch: def.batchWidth(),
	}
	for i := range s.machines {
		s.machines[i].lastFree = -1
		s.machines[i].fgReq = -1
	}
	for i, a := range arrivals {
		s.reqs[i] = reqState{arr: a}
		s.push(a.AtSeconds, evArrival, i, 0)
	}
	// util-target provisions a static machine prefix sized so the
	// latency load alone fills it to the target: K = ceil(erlangs/U).
	erlangs := 0.0
	for _, c := range def.Arrivals {
		erlangs += c.Rate * o.alone[c.App].Seconds
	}
	s.prefixK = int(math.Ceil(erlangs / def.utilTarget()))
	if s.prefixK < 1 {
		s.prefixK = 1
	}
	if s.prefixK > def.Machines {
		s.prefixK = def.Machines
	}
	return s
}

// account integrates energy and busy time on machine mi up to now and
// advances the batch resident's progress at the current rate.
func (s *sim) account(mi int, now float64) {
	m := &s.machines[mi]
	dt := now - m.accT
	if dt <= 0 {
		m.accT = now
		return
	}
	sw, ww := s.o.powerState(m.fgApp, m.bgApp)
	m.socketJ += sw * dt
	m.wallJ += ww * dt
	if m.fgApp != "" || m.bgApp != "" {
		m.busySec += dt
	}
	if m.bgApp != "" {
		m.bgRemaining -= m.bgRate * dt
		if m.bgRemaining < 0 {
			m.bgRemaining = 0
		}
	}
	m.accT = now
}

// setBgRate switches the resident's accrual rate (after account) and
// reschedules its completion event.
func (s *sim) setBgRate(mi int, rate, now float64) {
	m := &s.machines[mi]
	m.bgRate = rate
	m.bgVer++
	if rate > 0 {
		s.push(now+m.bgRemaining/rate, evBgDone, mi, m.bgVer)
	}
}

// dispatch starts request ri on machine mi at time now.
func (s *sim) dispatch(ri, mi int, now float64) {
	s.account(mi, now)
	m := &s.machines[mi]
	app := s.reqs[ri].arr.App
	m.fgApp, m.fgReq = app, ri
	m.used, m.latencyUsed = true, true

	service := s.o.alone[app].Seconds
	if m.bgApp != "" {
		p := s.o.pair[pairKey(app, m.bgApp)]
		service = p.FgSeconds
		s.coloc++
		s.reallocs += p.Reallocs
		s.setBgRate(mi, p.BgRate, now)
	}
	s.push(now+service, evFgDone, mi, 0)
}

func (s *sim) onFgDone(mi int, now float64) {
	s.account(mi, now)
	m := &s.machines[mi]
	r := &s.reqs[m.fgReq]
	r.finish, r.done = now, true
	m.fgApp, m.fgReq = "", -1
	if m.bgApp != "" {
		s.setBgRate(mi, s.o.aloneRate(m.bgApp), now)
	} else {
		m.lastFree = now
	}
	if len(m.queue) > 0 {
		ri := m.queue[0]
		m.queue = m.queue[1:]
		s.dispatch(ri, mi, now)
	}
}

func (s *sim) onBgDone(mi, ver int, now float64) {
	m := &s.machines[mi]
	if ver != m.bgVer {
		return // rate changed since this event was scheduled
	}
	s.account(mi, now)
	m.bgApp = ""
	m.bgRemaining = 0
	s.resident--
	s.drained++
	s.drainT = now
	if m.fgApp == "" {
		m.lastFree = now
	}
}

func (s *sim) onArrival(ri int, now float64) {
	mi, rejected := s.selectMachine(s.reqs[ri].arr.App)
	if rejected {
		s.rejects++
	}
	m := &s.machines[mi]
	if m.fgApp == "" {
		s.dispatch(ri, mi, now)
	} else {
		m.queue = append(m.queue, ri)
	}
}

// fgFree reports whether machine mi can start a request immediately.
func (s *sim) fgFree(mi int) bool {
	m := &s.machines[mi]
	return m.fgApp == "" && len(m.queue) == 0
}

// selectMachine applies the consolidation policy to an arriving
// request and returns the chosen machine (and, for pack-partition,
// whether any co-location was rejected by the partition check).
func (s *sim) selectMachine(app string) (int, bool) {
	switch s.policy {
	case SpreadIdle:
		// Fully idle machine, least-recently-used first; then the
		// shortest queue among resident-free machines. Machines hosting
		// a batch resident are avoided entirely — spread-idle is the
		// never-co-locate baseline — unless every machine has one
		// (batch_width >= machines, an operator choice).
		if mi := s.pickLRU(func(mi int) bool {
			return s.fgFree(mi) && s.machines[mi].bgApp == ""
		}); mi >= 0 {
			return mi, false
		}
		if mi := s.shortestQueueOK(func(mi int) bool {
			return s.machines[mi].bgApp == ""
		}); mi >= 0 {
			return mi, false
		}
		return s.shortestQueueOK(nil), false

	case PackPartition:
		// Prefer co-locating with a resident that passes the partition
		// check; then reuse an already-powered machine; then open a
		// fresh one; then the shortest queue among machines whose
		// resident (if any) passes the check, so the limit is honored
		// when the queued request eventually dispatches. Only a fleet
		// where every machine hosts a failing resident falls through to
		// an unchecked queue. An arrival counts as rejected only when
		// the check actually spilled it — it skipped a failing resident
		// and no passing resident took it.
		sawFailing := false
		limit := s.def.slowdownLimit()
		compatible := func(mi int) bool {
			bg := s.machines[mi].bgApp
			return bg == "" || s.o.pair[pairKey(app, bg)].FgSlowdown <= limit
		}
		for mi := range s.machines {
			m := &s.machines[mi]
			if !s.fgFree(mi) || m.bgApp == "" {
				continue
			}
			if s.o.pair[pairKey(app, m.bgApp)].FgSlowdown <= limit {
				return mi, false
			}
			sawFailing = true
		}
		rejected := sawFailing
		if mi := s.pickIndex(func(mi int) bool {
			return s.fgFree(mi) && s.machines[mi].bgApp == "" && s.machines[mi].used
		}); mi >= 0 {
			return mi, rejected
		}
		if mi := s.pickIndex(func(mi int) bool {
			return s.fgFree(mi) && s.machines[mi].bgApp == ""
		}); mi >= 0 {
			return mi, rejected
		}
		if mi := s.shortestQueueOK(compatible); mi >= 0 {
			return mi, rejected
		}
		return s.shortestQueueOK(nil), rejected

	default: // UtilTarget
		// Everything lands inside the statically provisioned prefix,
		// fullest machines first, with no partition check — the
		// strawman whose tail the check exists to protect.
		if mi := s.pickIndex(func(mi int) bool {
			return mi < s.prefixK && s.fgFree(mi) && s.machines[mi].bgApp != ""
		}); mi >= 0 {
			return mi, false
		}
		if mi := s.pickIndex(func(mi int) bool {
			return mi < s.prefixK && s.fgFree(mi)
		}); mi >= 0 {
			return mi, false
		}
		return s.shortestQueueOK(func(mi int) bool { return mi < s.prefixK }), false
	}
}

// pickIndex returns the lowest-index machine satisfying ok, or -1.
func (s *sim) pickIndex(ok func(int) bool) int {
	for mi := range s.machines {
		if ok(mi) {
			return mi
		}
	}
	return -1
}

// pickLRU returns the machine satisfying ok that has been idle
// longest (never-used machines first, by index), or -1.
func (s *sim) pickLRU(ok func(int) bool) int {
	best := -1
	for mi := range s.machines {
		if !ok(mi) {
			continue
		}
		if best < 0 || s.machines[mi].lastFree < s.machines[best].lastFree {
			best = mi
		}
	}
	return best
}

// shortestQueueOK returns the machine with the fewest waiting
// requests among those satisfying ok (nil = every machine), ties to
// the lowest index; -1 when none qualifies.
func (s *sim) shortestQueueOK(ok func(int) bool) int {
	best := -1
	for mi := range s.machines {
		if ok != nil && !ok(mi) {
			continue
		}
		if best < 0 || len(s.machines[mi].queue) < len(s.machines[best].queue) {
			best = mi
		}
	}
	return best
}

// placeBatch assigns queued backlog items to batch slots until the
// width cap or the eligible machines are exhausted. A batch slot only
// accepts work while the latency slot is idle — service times are
// fixed at dispatch, so a resident never appears under a running
// request.
func (s *sim) placeBatch(now float64) {
	for s.nextItem < len(s.backlog) && s.resident < s.maxBatch {
		eligible := func(mi int) bool {
			m := &s.machines[mi]
			return m.bgApp == "" && m.fgApp == "" && len(m.queue) == 0
		}
		var mi int
		switch s.policy {
		case SpreadIdle:
			// Keep batch away from latency traffic: machines that never
			// served a request first, least-recently-used within each
			// group.
			mi = s.pickLRU(func(mi int) bool { return eligible(mi) && !s.machines[mi].latencyUsed })
			if mi < 0 {
				mi = s.pickLRU(eligible)
			}
		case PackPartition:
			// Consolidate onto machines the fleet is already paying
			// for; open a fresh one only when none has a free slot.
			mi = s.pickIndex(func(mi int) bool { return eligible(mi) && s.machines[mi].used })
			if mi < 0 {
				mi = s.pickIndex(eligible)
			}
		default: // UtilTarget
			mi = s.pickIndex(func(mi int) bool { return mi < s.prefixK && eligible(mi) })
		}
		if mi < 0 {
			return
		}
		item := s.backlog[s.nextItem]
		s.nextItem++
		s.resident++
		s.account(mi, now)
		m := &s.machines[mi]
		m.bgApp = item.App
		m.bgRemaining = item.Iterations
		m.used = true
		s.setBgRate(mi, s.o.aloneRate(item.App), now)
	}
}

// run executes the event loop to completion and returns the last
// event time.
func (s *sim) run() float64 {
	s.placeBatch(0)
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.lastT = e.t
		switch e.kind {
		case evFgDone:
			s.onFgDone(e.idx, e.t)
		case evBgDone:
			s.onBgDone(e.idx, e.ver, e.t)
		case evArrival:
			s.onArrival(e.idx, e.t)
		}
		s.placeBatch(e.t)
	}
	return s.lastT
}

// aloneRate is the resident's iteration rate with the latency slot
// empty.
func (o *oracle) aloneRate(app string) float64 {
	sec := o.alone[app].Seconds
	if sec <= 0 {
		return 0
	}
	return 1 / sec
}

// batchWidth is the fleet-wide cap on concurrent batch residents
// (default: a quarter of the pool).
func (d *Def) batchWidth() int {
	if d.BatchWidth > 0 {
		return d.BatchWidth
	}
	w := d.Machines / 4
	if w < 1 {
		w = 1
	}
	return w
}
