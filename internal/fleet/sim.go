package fleet

import (
	"math"

	"repro/internal/loadgen"
)

// The event loop. Each machine has two halves: a latency slot serving
// at most one request (FIFO queue behind it) and a batch slot hosting
// at most one resident backlog item. Requests are dispatched at
// arrival by the consolidation policy; their service time is fixed at
// dispatch from the oracle (alone, or co-located under the fleet's
// partition mode). Batch residents accrue iterations at the alone rate
// when the latency slot is empty and at the co-located rate while a
// request runs beside them. Everything downstream of the oracle is
// plain serial float arithmetic, so a fleet run is byte-identical at
// any engine parallelism.

const (
	evFgDone  = iota // a request completed (machine index)
	evBgDone         // a batch resident finished its item (machine index)
	evArrival        // a request arrived (trace index)
	evFleet          // a timeline event fired (Def.Events index)
	evWake           // hysteresis hold expired (machine index); placement retry only
)

type event struct {
	t    float64
	kind int
	idx  int
	ver  int // fgDone/bgDone staleness check
}

// eventHeap is a hand-rolled binary min-heap of events. container/heap
// would box every Push/Pop operand in an interface — one heap
// allocation per event on the loop's hottest edge — so the sift
// routines are typed and the loop runs allocation-free (pinned by
// TestSimRunAllocationFree). Determinism does not depend on the heap's
// internal arrangement: eventLess is a strict total order (no two live
// events compare equal — arrival/timeline indices are distinct, and
// completion versions bump per schedule), so every pop returns the
// unique minimum whichever implementation manages the array.
type eventHeap []event

// eventLess orders events by time, then kind, then index, then
// version — the deterministic tie-break every golden depends on.
func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.idx != b.idx {
		return a.idx < b.idx
	}
	return a.ver < b.ver
}

func (h *eventHeap) push(e event) {
	a := append(*h, e)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(a[i], a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	*h = a
}

func (h *eventHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(a[r], a[c]) {
			c = r
		}
		if !eventLess(a[c], a[i]) {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	*h = a
	return top
}

func (s *sim) push(t float64, kind, idx, ver int) { s.events.push(event{t, kind, idx, ver}) }

// machState is one machine of the pool.
type machState struct {
	fgApp string // active request's application ("" = latency slot idle)
	fgReq int    // active request index
	fgVer int    // bumps per dispatch/eviction; voids stale fgDone events
	queue []int  // waiting request indices, FIFO

	bgApp       string            // resident batch item's application ("" = none)
	bgItem      loadgen.BatchItem // the resident item (valid while bgApp != "")
	bgRemaining float64           // iterations left
	bgRate      float64           // iterations per second at current occupancy
	bgVer       int

	down      bool    // out of service (failure, or a completed drain)
	draining  bool    // powering down once the active request completes
	holdUntil float64 // hysteresis: skipped by placement until then

	used        bool
	latencyUsed bool
	lastFree    float64 // when the machine last became fully idle (LRU)

	accT    float64 // lazy-accounting timestamp
	socketJ float64
	wallJ   float64
	busySec float64
}

type reqState struct {
	arr    loadgen.Arrival
	finish float64
	done   bool
	group  int // recovery group awaiting this request's re-placement (-1 = none)
}

// requeuedItem is an evicted batch item awaiting re-placement.
type requeuedItem struct {
	item  loadgen.BatchItem
	group int
}

// recGroup tracks one machine event's evictees: when the last one is
// re-placed, the group's time-to-recover is the gap since the event.
type recGroup struct {
	at          float64
	outstanding int
}

// sim is one policy's run over the shared trace.
type sim struct {
	def    *Def
	o      *oracle
	policy PolicyName

	machines []machState
	events   eventHeap
	reqs     []reqState
	backlog  []loadgen.BatchItem
	nextItem int // next backlog item to place
	resident int // batch residents currently placed
	maxBatch int // fleet-wide batch-width cap
	prefixK  int // util-target's static machine prefix

	// Churn state (all zero on an event-free run).
	timeline []Event // def.Events; heap evFleet events index it
	// requeued is the FIFO of evicted batch items awaiting re-placement,
	// consumed from reqHead instead of re-slicing so one buffer serves
	// the whole run; the slice resets to its start whenever it drains.
	requeued    []requeuedItem
	reqHead     int
	pendingReqs []int // evicted/arrived requests with no live machine (rare)
	pendScratch []int // swap buffer so draining pendingReqs never re-allocates
	totalItems  int   // backlog items that must drain (arrivals - cancels)
	itemSeq     int   // next global item index for event arrivals
	groups      []recGroup
	evicted     int
	lostJobs    int
	migrated    int
	pendingRepl int
	peakRepl    int
	recoverMax  float64

	drained  int
	drainT   float64
	lastT    float64
	rejects  int
	coloc    int
	reallocs int
}

func newSim(def *Def, o *oracle, policy PolicyName, arrivals []loadgen.Arrival, backlog []loadgen.BatchItem) *sim {
	// Size the heap for its worst concurrent population: every arrival
	// is pushed up front, plus the timeline, plus scheduled completions
	// and stale versions per machine. The slack keeps steady-state runs
	// from ever growing the array; a pathological run just grows it.
	heapCap := len(arrivals) + len(def.Events) + 4*def.Machines + 16
	s := &sim{
		def: def, o: o, policy: policy,
		machines: make([]machState, def.Machines),
		events:   make(eventHeap, 0, heapCap),
		reqs:     make([]reqState, len(arrivals)),
		// Each policy's sim owns its backlog: timeline events append to
		// and cancel from it, and the trace is shared across policies.
		backlog:  append([]loadgen.BatchItem(nil), backlog...),
		maxBatch: def.batchWidth(),
	}
	for i := range s.machines {
		s.machines[i].lastFree = -1
		s.machines[i].fgReq = -1
	}
	for i, a := range arrivals {
		s.reqs[i] = reqState{arr: a, group: -1}
		s.push(a.AtSeconds, evArrival, i, 0)
	}
	s.timeline = def.Events
	s.totalItems = len(backlog)
	s.itemSeq = len(backlog)
	for i := range s.timeline {
		// load-scale was consumed by trace generation; machine and
		// batch events fire inside the loop, after arrivals at equal t.
		if s.timeline[i].Kind != EvLoadScale {
			s.push(s.timeline[i].At, evFleet, i, 0)
		}
	}
	// util-target provisions a static machine prefix sized so the
	// latency load alone fills it to the target: K = ceil(erlangs/U).
	erlangs := 0.0
	for _, c := range def.Arrivals {
		erlangs += c.Rate * o.alone[c.App].Seconds
	}
	s.prefixK = int(math.Ceil(erlangs / def.utilTarget()))
	if s.prefixK < 1 {
		s.prefixK = 1
	}
	if s.prefixK > def.Machines {
		s.prefixK = def.Machines
	}
	return s
}

// account integrates energy and busy time on machine mi up to now and
// advances the batch resident's progress at the current rate.
func (s *sim) account(mi int, now float64) {
	m := &s.machines[mi]
	dt := now - m.accT
	if dt <= 0 {
		m.accT = now
		return
	}
	sw, ww := s.o.powerState(m.fgApp, m.bgApp)
	if m.down {
		sw, ww = 0, 0 // powered off: no idle draw while out of service
	}
	m.socketJ += sw * dt
	m.wallJ += ww * dt
	if m.fgApp != "" || m.bgApp != "" {
		m.busySec += dt
	}
	if m.bgApp != "" {
		m.bgRemaining -= m.bgRate * dt
		if m.bgRemaining < 0 {
			m.bgRemaining = 0
		}
	}
	m.accT = now
}

// setBgRate switches the resident's accrual rate (after account) and
// reschedules its completion event.
func (s *sim) setBgRate(mi int, rate, now float64) {
	m := &s.machines[mi]
	m.bgRate = rate
	m.bgVer++
	if rate > 0 {
		s.push(now+m.bgRemaining/rate, evBgDone, mi, m.bgVer)
	}
}

// dispatch starts request ri on machine mi at time now.
func (s *sim) dispatch(ri, mi int, now float64) {
	s.account(mi, now)
	m := &s.machines[mi]
	rq := &s.reqs[ri]
	if rq.group >= 0 {
		// An evicted request starting service is recovered.
		s.resolveReplace(rq.group, now)
		rq.group = -1
	}
	app := rq.arr.App
	m.fgApp, m.fgReq = app, ri
	m.fgVer++
	m.used, m.latencyUsed = true, true

	service := s.o.alone[app].Seconds
	if m.bgApp != "" {
		p := s.o.pair[pairKey(app, m.bgApp)]
		service = p.FgSeconds
		s.coloc++
		s.reallocs += p.Reallocs
		s.setBgRate(mi, p.BgRate, now)
	}
	s.push(now+service, evFgDone, mi, m.fgVer)
}

func (s *sim) onFgDone(mi, ver int, now float64) {
	m := &s.machines[mi]
	if ver != m.fgVer || m.fgApp == "" {
		return // the request was evicted by a failure; this completion is void
	}
	s.account(mi, now)
	r := &s.reqs[m.fgReq]
	r.finish, r.done = now, true
	m.fgApp, m.fgReq = "", -1
	if m.draining {
		// The deferred maintenance power-down: the queue and resident
		// were migrated at the drain event, so the machine is empty.
		m.draining = false
		m.down = true
		return
	}
	if m.bgApp != "" {
		s.setBgRate(mi, s.o.aloneRate(m.bgApp), now)
	} else {
		m.lastFree = now
	}
	if len(m.queue) > 0 {
		ri := m.queue[0]
		m.queue = m.queue[1:]
		s.dispatch(ri, mi, now)
	}
}

func (s *sim) onBgDone(mi, ver int, now float64) {
	m := &s.machines[mi]
	if ver != m.bgVer {
		return // rate changed since this event was scheduled
	}
	s.account(mi, now)
	m.bgApp = ""
	m.bgRemaining = 0
	s.resident--
	s.drained++
	s.drainT = now
	if m.fgApp == "" {
		m.lastFree = now
	}
}

func (s *sim) onArrival(ri int, now float64) {
	s.placeRequest(ri, now)
}

// placeRequest routes a request — arriving or evicted — through the
// consolidation policy. With no live machine at all (every machine
// down or draining, only possible mid-timeline) it pends until the
// next machine-up.
func (s *sim) placeRequest(ri int, now float64) {
	mi, rejected := s.selectMachine(s.reqs[ri].arr.App, now)
	if rejected {
		s.rejects++
	}
	if mi < 0 {
		s.pendingReqs = append(s.pendingReqs, ri)
		return
	}
	m := &s.machines[mi]
	if m.fgApp == "" {
		s.dispatch(ri, mi, now)
	} else {
		m.queue = append(m.queue, ri)
	}
}

// fgFree reports whether machine mi can start a request immediately.
func (s *sim) fgFree(mi int) bool {
	m := &s.machines[mi]
	return m.fgApp == "" && len(m.queue) == 0
}

// up reports whether machine mi is in service (not down, not
// draining). avail additionally requires the hysteresis hold to have
// expired — the predicate every preferred placement tier uses; up-but-
// held machines are a last resort only. On an event-free run both are
// always true, so every tier below behaves exactly as it did without a
// timeline.
func (s *sim) up(mi int) bool {
	m := &s.machines[mi]
	return !m.down && !m.draining
}

func (s *sim) avail(mi int, now float64) bool {
	return s.up(mi) && s.machines[mi].holdUntil <= now
}

// selectMachine applies the consolidation policy to an arriving
// request and returns the chosen machine (and, for pack-partition,
// whether any co-location was rejected by the partition check).
// -1 means no machine is in service at all.
func (s *sim) selectMachine(app string, now float64) (int, bool) {
	avail := func(mi int) bool { return s.avail(mi, now) }
	switch s.policy {
	case SpreadIdle:
		// Fully idle machine, least-recently-used first; then the
		// shortest queue among resident-free machines. Machines hosting
		// a batch resident are avoided entirely — spread-idle is the
		// never-co-locate baseline — unless every machine has one
		// (batch_width >= machines, an operator choice).
		if mi := s.pickLRU(func(mi int) bool {
			return avail(mi) && s.fgFree(mi) && s.machines[mi].bgApp == ""
		}); mi >= 0 {
			return mi, false
		}
		if mi := s.shortestQueueOK(func(mi int) bool {
			return avail(mi) && s.machines[mi].bgApp == ""
		}); mi >= 0 {
			return mi, false
		}
		if mi := s.shortestQueueOK(avail); mi >= 0 {
			return mi, false
		}
		return s.shortestQueueOK(s.up), false

	case PackPartition:
		// Prefer co-locating with a resident that passes the partition
		// check; then reuse an already-powered machine; then open a
		// fresh one; then the shortest queue among machines whose
		// resident (if any) passes the check, so the limit is honored
		// when the queued request eventually dispatches. Only a fleet
		// where every machine hosts a failing resident falls through to
		// an unchecked queue. An arrival counts as rejected only when
		// the check actually spilled it — it skipped a failing resident
		// and no passing resident took it.
		sawFailing := false
		limit := s.def.slowdownLimit()
		compatible := func(mi int) bool {
			bg := s.machines[mi].bgApp
			return bg == "" || s.o.pair[pairKey(app, bg)].FgSlowdown <= limit
		}
		for mi := range s.machines {
			m := &s.machines[mi]
			if !avail(mi) || !s.fgFree(mi) || m.bgApp == "" {
				continue
			}
			if s.o.pair[pairKey(app, m.bgApp)].FgSlowdown <= limit {
				return mi, false
			}
			sawFailing = true
		}
		rejected := sawFailing
		if mi := s.pickIndex(func(mi int) bool {
			return avail(mi) && s.fgFree(mi) && s.machines[mi].bgApp == "" && s.machines[mi].used
		}); mi >= 0 {
			return mi, rejected
		}
		if mi := s.pickIndex(func(mi int) bool {
			return avail(mi) && s.fgFree(mi) && s.machines[mi].bgApp == ""
		}); mi >= 0 {
			return mi, rejected
		}
		if mi := s.shortestQueueOK(func(mi int) bool {
			return avail(mi) && compatible(mi)
		}); mi >= 0 {
			return mi, rejected
		}
		if mi := s.shortestQueueOK(avail); mi >= 0 {
			return mi, rejected
		}
		return s.shortestQueueOK(s.up), rejected

	default: // UtilTarget
		// Everything lands inside the statically provisioned prefix,
		// fullest machines first, with no partition check — the
		// strawman whose tail the check exists to protect. A fully
		// down prefix spills outside it rather than stalling.
		if mi := s.pickIndex(func(mi int) bool {
			return mi < s.prefixK && avail(mi) && s.fgFree(mi) && s.machines[mi].bgApp != ""
		}); mi >= 0 {
			return mi, false
		}
		if mi := s.pickIndex(func(mi int) bool {
			return mi < s.prefixK && avail(mi) && s.fgFree(mi)
		}); mi >= 0 {
			return mi, false
		}
		if mi := s.shortestQueueOK(func(mi int) bool {
			return mi < s.prefixK && avail(mi)
		}); mi >= 0 {
			return mi, false
		}
		if mi := s.shortestQueueOK(avail); mi >= 0 {
			return mi, false
		}
		return s.shortestQueueOK(s.up), false
	}
}

// pickIndex returns the lowest-index machine satisfying ok, or -1.
func (s *sim) pickIndex(ok func(int) bool) int {
	for mi := range s.machines {
		if ok(mi) {
			return mi
		}
	}
	return -1
}

// pickLRU returns the machine satisfying ok that has been idle
// longest (never-used machines first, by index), or -1.
func (s *sim) pickLRU(ok func(int) bool) int {
	best := -1
	for mi := range s.machines {
		if !ok(mi) {
			continue
		}
		if best < 0 || s.machines[mi].lastFree < s.machines[best].lastFree {
			best = mi
		}
	}
	return best
}

// shortestQueueOK returns the machine with the fewest waiting
// requests among those satisfying ok (nil = every machine), ties to
// the lowest index; -1 when none qualifies.
func (s *sim) shortestQueueOK(ok func(int) bool) int {
	best := -1
	for mi := range s.machines {
		if ok != nil && !ok(mi) {
			continue
		}
		if best < 0 || len(s.machines[mi].queue) < len(s.machines[best].queue) {
			best = mi
		}
	}
	return best
}

// placeBatch assigns queued backlog items to batch slots until the
// width cap or the eligible machines are exhausted. A batch slot only
// accepts work while the latency slot is idle — service times are
// fixed at dispatch, so a resident never appears under a running
// request.
// requeuedLen is the number of evicted items still awaiting
// re-placement (the live window of the requeued buffer).
func (s *sim) requeuedLen() int { return len(s.requeued) - s.reqHead }

func (s *sim) placeBatch(now float64) {
	for (s.requeuedLen() > 0 || s.nextItem < len(s.backlog)) && s.resident < s.maxBatch {
		eligible := func(mi int) bool {
			m := &s.machines[mi]
			return s.avail(mi, now) && m.bgApp == "" && m.fgApp == "" && len(m.queue) == 0
		}
		var mi int
		switch s.policy {
		case SpreadIdle:
			// Keep batch away from latency traffic: machines that never
			// served a request first, least-recently-used within each
			// group.
			mi = s.pickLRU(func(mi int) bool { return eligible(mi) && !s.machines[mi].latencyUsed })
			if mi < 0 {
				mi = s.pickLRU(eligible)
			}
		case PackPartition:
			// Consolidate onto machines the fleet is already paying
			// for; open a fresh one only when none has a free slot.
			mi = s.pickIndex(func(mi int) bool { return eligible(mi) && s.machines[mi].used })
			if mi < 0 {
				mi = s.pickIndex(eligible)
			}
		default: // UtilTarget
			mi = s.pickIndex(func(mi int) bool { return mi < s.prefixK && eligible(mi) })
		}
		if mi < 0 {
			return
		}
		// Evicted items re-place ahead of the untouched backlog — they
		// were already in progress when their machine went away.
		var item loadgen.BatchItem
		group := -1
		if s.requeuedLen() > 0 {
			item, group = s.requeued[s.reqHead].item, s.requeued[s.reqHead].group
			s.reqHead++
			if s.reqHead == len(s.requeued) {
				s.requeued = s.requeued[:0]
				s.reqHead = 0
			}
		} else {
			item = s.backlog[s.nextItem]
			s.nextItem++
		}
		s.resident++
		s.account(mi, now)
		m := &s.machines[mi]
		m.bgApp = item.App
		m.bgItem = item
		m.bgRemaining = item.Iterations
		m.used = true
		if group >= 0 {
			s.resolveReplace(group, now)
		}
		s.setBgRate(mi, s.o.aloneRate(item.App), now)
	}
}

// run executes the event loop to completion and returns the last
// event time.
func (s *sim) run() float64 {
	s.placeBatch(0)
	for len(s.events) > 0 {
		e := s.events.pop()
		if e.kind != evWake {
			// Synthetic hysteresis wake-ups retry placement but are not
			// part of the run's observable timeline.
			s.lastT = e.t
		}
		switch e.kind {
		case evFgDone:
			s.onFgDone(e.idx, e.ver, e.t)
		case evBgDone:
			s.onBgDone(e.idx, e.ver, e.t)
		case evArrival:
			s.onArrival(e.idx, e.t)
		case evFleet:
			s.onFleetEvent(e.idx, e.t)
		}
		s.placeBatch(e.t)
	}
	return s.lastT
}

// addPending enrolls one evicted job in a recovery group and tracks
// the re-placement backlog's peak.
func (s *sim) addPending(g int) {
	s.groups[g].outstanding++
	s.pendingRepl++
	if s.pendingRepl > s.peakRepl {
		s.peakRepl = s.pendingRepl
	}
}

// resolveReplace marks one evicted job re-placed; when it was its
// group's last, the group's time-to-recover is final.
func (s *sim) resolveReplace(g int, now float64) {
	s.pendingRepl--
	gr := &s.groups[g]
	gr.outstanding--
	if gr.outstanding == 0 {
		if d := now - gr.at; d > s.recoverMax {
			s.recoverMax = d
		}
	}
}

// tagReq enrolls a request in a recovery group. A request evicted a
// second time moves to the newer event's group, settling its previous
// group's ledger at the re-eviction time.
func (s *sim) tagReq(ri, g int, now float64) {
	rq := &s.reqs[ri]
	if rq.group >= 0 {
		s.resolveReplace(rq.group, now)
	}
	rq.group = g
	s.addPending(g)
}

// onFleetEvent applies one timeline entry.
func (s *sim) onFleetEvent(i int, now float64) {
	ev := s.timeline[i]
	switch ev.Kind {
	case EvMachineDown:
		s.onMachineDown(ev, now)
	case EvMachineUp:
		s.onMachineUp(ev, now)
	case EvBatchArrival:
		items := eventItems(ev, i, s.itemSeq)
		s.itemSeq += len(items)
		s.backlog = append(s.backlog, items...)
		s.totalItems += len(items)
	case EvBatchCancel:
		n := ev.Count
		if n == 0 {
			n = 1
		}
		s.cancelItems(ev.App, n, now)
	}
}

// onMachineDown takes a machine out of service. A failure (no drain)
// loses in-progress work: the active request restarts elsewhere and a
// resident batch item restarts from its full iteration count. A drain
// migrates the queue and resident with progress kept, lets the active
// request finish in place, and powers down afterwards.
func (s *sim) onMachineDown(ev Event, now float64) {
	mi := ev.Machine
	s.account(mi, now)
	m := &s.machines[mi]
	g := -1
	group := func() int {
		if g < 0 {
			s.groups = append(s.groups, recGroup{at: now})
			g = len(s.groups) - 1
		}
		return g
	}
	if m.bgApp != "" {
		item := m.bgItem
		if ev.Drain {
			item.Iterations = m.bgRemaining
			s.migrated++
		} else {
			s.lostJobs++
		}
		s.evicted++
		s.requeued = append(s.requeued, requeuedItem{item: item, group: group()})
		s.addPending(group())
		m.bgApp, m.bgRemaining = "", 0
		m.bgVer++
		s.resident--
	}
	// Queued requests never started; they migrate without losing work
	// under failure and drain alike.
	moved := m.queue
	m.queue = nil
	for _, ri := range moved {
		s.evicted++
		s.migrated++
		s.tagReq(ri, group(), now)
	}
	act := -1
	if m.fgApp != "" {
		if ev.Drain {
			m.draining = true
		} else {
			act = m.fgReq
			m.fgVer++ // the scheduled completion is void
			m.fgApp, m.fgReq = "", -1
			s.evicted++
			s.lostJobs++
			s.tagReq(act, group(), now)
		}
	}
	if !m.draining {
		m.down = true
	}
	// Re-place through the active policy: the interrupted request
	// first, then the queue in FIFO order; placeBatch (called after
	// every event) re-places the requeued item.
	if act >= 0 {
		s.placeRequest(act, now)
	}
	for _, ri := range moved {
		s.placeRequest(ri, now)
	}
}

// onMachineUp returns a machine to service; the hysteresis hold keeps
// it out of preferred placement until the hold expires.
func (s *sim) onMachineUp(ev Event, now float64) {
	mi := ev.Machine
	s.account(mi, now)
	m := &s.machines[mi]
	if m.draining {
		m.draining = false // the drain had not completed; cancel the power-down
	} else {
		m.down = false
		if h := s.def.Hysteresis; h > 0 {
			m.holdUntil = now + h
			s.push(m.holdUntil, evWake, mi, 0)
		}
		m.lastFree = now
	}
	if len(s.pendingReqs) > 0 {
		// Swap in the scratch buffer rather than nil: placeRequest may
		// re-pend a request mid-drain, and it must land in a buffer that
		// does not alias the one being iterated.
		pend := s.pendingReqs
		s.pendingReqs = s.pendScratch[:0]
		for _, ri := range pend {
			s.placeRequest(ri, now)
		}
		s.pendScratch = pend[:0]
	}
}

// cancelItems removes up to n not-yet-placed items of app, newest
// first — the untouched backlog tail, then requeued evictees. Resident
// items keep running.
func (s *sim) cancelItems(app string, n int, now float64) {
	removed := 0
	for i := len(s.backlog) - 1; i >= s.nextItem && removed < n; i-- {
		if s.backlog[i].App != app {
			continue
		}
		s.backlog = append(s.backlog[:i], s.backlog[i+1:]...)
		removed++
	}
	for i := len(s.requeued) - 1; i >= s.reqHead && removed < n; i-- {
		if s.requeued[i].item.App != app {
			continue
		}
		if g := s.requeued[i].group; g >= 0 {
			s.resolveReplace(g, now)
		}
		s.requeued = append(s.requeued[:i], s.requeued[i+1:]...)
		removed++
	}
	s.totalItems -= removed
}

// aloneRate is the resident's iteration rate with the latency slot
// empty.
func (o *oracle) aloneRate(app string) float64 {
	sec := o.alone[app].Seconds
	if sec <= 0 {
		return 0
	}
	return 1 / sec
}

// batchWidth is the fleet-wide cap on concurrent batch residents
// (default: a quarter of the pool).
func (d *Def) batchWidth() int {
	if d.BatchWidth > 0 {
		return d.BatchWidth
	}
	w := d.Machines / 4
	if w < 1 {
		w = 1
	}
	return w
}
