package fleet

import (
	"testing"

	"repro/internal/sched"
)

// churnTestDef is testDef plus a machine-churn timeline, so the
// policy-parallel identity suite also covers eviction, re-placement,
// and the requeued-item buffer under concurrent episodes.
func churnTestDef() *Def {
	def := testDef()
	def.Hysteresis = 0.005
	def.Events = []Event{
		{At: 0.01, Kind: EvMachineDown, Machine: 1},
		{At: 0.02, Kind: EvBatchArrival, App: "ferret", Count: 2, Iterations: 10},
		{At: 0.025, Kind: EvMachineDown, Machine: 2, Drain: true},
		{At: 0.03, Kind: EvMachineUp, Machine: 1},
		{At: 0.04, Kind: EvBatchCancel, App: "canneal", Count: 1},
		{At: 0.05, Kind: EvMachineUp, Machine: 2},
	}
	return def
}

// TestPolicyParallelByteIdentical is the tentpole's zero-drift
// guarantee: a fleet report must be byte-identical whether policy
// episodes replay serially or concurrently, under the exact and auto
// oracle tiers, on quiet and churning fleets. (The engine-parallelism
// analogue is TestFleetParallelismByteIdentical; this pins the episode
// layer added above it.)
func TestPolicyParallelByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		def  func() *Def
	}{
		{"exact", testDef},
		{"exact-churn", churnTestDef},
		{"auto", func() *Def {
			def := testDef()
			def.Fidelity = FidelityAuto
			return def
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var outs []string
			for _, pp := range []int{1, 8} {
				r := sched.New(sched.Options{Scale: testScale})
				rep, err := RunWith(r, "pp-"+tc.name, tc.def(), RunOpts{PolicyParallel: pp})
				if err != nil {
					t.Fatal(err)
				}
				outs = append(outs, rep.String())
			}
			if outs[0] != outs[1] {
				t.Errorf("report differs between policy-parallel 1 and 8\n--- serial ---\n%s\n--- parallel ---\n%s",
					outs[0], outs[1])
			}
		})
	}
}

// TestPolicyParallelStoreByteIdentical runs the 1-vs-8 comparison
// against a persistent store, cold and warm: concurrent episodes above
// a disk-backed engine must neither corrupt the store nor read
// differently from it.
func TestPolicyParallelStoreByteIdentical(t *testing.T) {
	def := testDef()
	var outs []string
	for _, pp := range []int{1, 8} {
		dir := t.TempDir()
		for range 2 { // cold, then warm across a fresh runner
			r := sched.New(sched.Options{Scale: testScale, CacheDir: dir})
			rep, err := RunWith(r, "pp-store", def, RunOpts{PolicyParallel: pp})
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, rep.String())
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			t.Errorf("report %d differs across policy-parallel x cold/warm store\n--- first ---\n%s\n--- got ---\n%s",
				i, outs[0], outs[i])
		}
	}
}

// TestPolicyParallelEpisodePhase: the episode phase accounting must
// record one entry per policy regardless of how episodes were
// scheduled.
func TestPolicyParallelEpisodePhase(t *testing.T) {
	r := sched.New(sched.Options{Scale: testScale})
	if _, err := RunWith(r, "phase", testDef(), RunOpts{PolicyParallel: 8}); err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Stats().Phases {
		if p.Name == "episode" {
			if p.Count != 3 {
				t.Fatalf("episode phase count %d, want 3", p.Count)
			}
			return
		}
	}
	t.Fatal("no episode phase recorded")
}

// TestPolicyParallelError: a definition that stalls must surface the
// same error from the concurrent path as from the serial one.
func TestPolicyParallelError(t *testing.T) {
	def := testDef()
	def.Partition = PartUtility
	def.PartitionParams = []byte(`{"min_ways": 7}`) // rejected once the geometry is known
	var msgs []string
	for _, pp := range []int{1, 8} {
		r := sched.New(sched.Options{Scale: testScale})
		_, err := RunWith(r, "err", def, RunOpts{PolicyParallel: pp})
		if err == nil {
			t.Fatalf("policy-parallel %d: bad params accepted", pp)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error differs: serial %q, parallel %q", msgs[0], msgs[1])
	}
}
