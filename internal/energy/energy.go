// Package energy models the two power measurement channels of the paper
// (§2.2): the RAPL socket counters (cores + private caches + LLC) and a
// wall-socket meter with a constant platform overhead. The model is a
// static-plus-dynamic decomposition:
//
//	P_socket = P_uncore_static + Σ_cores P_active(+SMT) + E_events/t
//
// Race-to-halt (§4) is emergent: static and system power dominate, so
// any allocation that shortens runtime saves energy, and LLC capacity
// affects energy only through misses and runtime — matching the paper's
// observation that socket power does not change with cache allocation
// because the hardware cannot power-gate LLC ways.
package energy

// Params are the platform power/energy coefficients.
type Params struct {
	// Socket static power: uncore, ring, LLC arrays (not gateable).
	UncoreStaticWatts float64
	// Per-core power when at least one hyperthread is active.
	CoreActiveWatts float64
	// Additional power when the second hyperthread is also active.
	SMTExtraWatts float64
	// Per-core power when idle (clock-gated but not power-gated).
	CoreIdleWatts float64

	// Event energies (joules per event).
	L2AccessJ   float64
	LLCAccessJ  float64
	DRAMLineJ   float64 // per 64-byte DRAM transfer, socket side (I/O)
	DRAMDeviceJ float64 // per 64-byte DRAM transfer, DIMM side (wall only)

	// Wall channel: P_wall = P_socket*VRMOverhead + SystemBaseWatts.
	VRMOverhead     float64
	SystemBaseWatts float64
}

// DefaultParams returns coefficients calibrated to the paper's platform
// class: ~15 W idle socket, ~45-65 W loaded socket, ~35 W of
// non-socket system power at the wall.
func DefaultParams() Params {
	return Params{
		UncoreStaticWatts: 9.0,
		CoreActiveWatts:   4.8,
		SMTExtraWatts:     1.1,
		CoreIdleWatts:     0.6,
		L2AccessJ:         0.4e-9,
		LLCAccessJ:        1.2e-9,
		DRAMLineJ:         8e-9,
		DRAMDeviceJ:       20e-9,
		VRMOverhead:       1.10,
		SystemBaseWatts:   34.0,
	}
}

// Usage aggregates a run's activity for pricing. Core-seconds are
// integrated over the run: CoreActiveSec counts (core, second) pairs
// with ≥1 active thread, SMTActiveSec counts those with both threads
// active (these overlap: a dual-active core contributes to both).
type Usage struct {
	WallSeconds   float64 // duration of the measured window
	Cores         int     // cores in the socket
	CoreActiveSec float64 // Σ over cores of seconds with ≥1 active HT
	SMTActiveSec  float64 // Σ over cores of seconds with both HTs active
	L2Accesses    uint64
	LLCAccesses   uint64
	DRAMLines     uint64 // 64-byte transfers, reads + writebacks
}

// Add accumulates another usage window (for multi-segment runs).
func (u *Usage) Add(o Usage) {
	u.WallSeconds += o.WallSeconds
	if o.Cores > u.Cores {
		u.Cores = o.Cores
	}
	u.CoreActiveSec += o.CoreActiveSec
	u.SMTActiveSec += o.SMTActiveSec
	u.L2Accesses += o.L2Accesses
	u.LLCAccesses += o.LLCAccesses
	u.DRAMLines += o.DRAMLines
}

// Report holds the priced energy of a run, split the way the paper
// reports it.
type Report struct {
	SocketJoules float64 // RAPL package domain
	WallJoules   float64 // external meter
}

// Price computes socket and wall energy for a usage window.
func (p Params) Price(u Usage) Report {
	idleCoreSec := float64(u.Cores)*u.WallSeconds - u.CoreActiveSec
	if idleCoreSec < 0 {
		idleCoreSec = 0
	}
	socket := p.UncoreStaticWatts*u.WallSeconds +
		p.CoreActiveWatts*u.CoreActiveSec +
		p.SMTExtraWatts*u.SMTActiveSec +
		p.CoreIdleWatts*idleCoreSec +
		p.L2AccessJ*float64(u.L2Accesses) +
		p.LLCAccessJ*float64(u.LLCAccesses) +
		p.DRAMLineJ*float64(u.DRAMLines)
	wall := socket*p.VRMOverhead +
		p.SystemBaseWatts*u.WallSeconds +
		p.DRAMDeviceJ*float64(u.DRAMLines)
	return Report{SocketJoules: socket, WallJoules: wall}
}

// IdlePowerSocket returns socket power with all cores idle — the cost of
// holding the machine up between sequential runs (Figs 10-11 baseline).
func (p Params) IdlePowerSocket(cores int) float64 {
	return p.UncoreStaticWatts + p.CoreIdleWatts*float64(cores)
}

// IdlePowerWall returns wall power of the idle-but-awake machine.
func (p Params) IdlePowerWall(cores int) float64 {
	return p.IdlePowerSocket(cores)*p.VRMOverhead + p.SystemBaseWatts
}
