package energy

import (
	"testing"
	"testing/quick"
)

func TestIdleMachineEnergy(t *testing.T) {
	p := DefaultParams()
	u := Usage{WallSeconds: 10, Cores: 4}
	r := p.Price(u)
	wantSocket := (p.UncoreStaticWatts + 4*p.CoreIdleWatts) * 10
	if diff := r.SocketJoules - wantSocket; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("idle socket = %v, want %v", r.SocketJoules, wantSocket)
	}
	if r.WallJoules <= r.SocketJoules {
		t.Fatal("wall energy must exceed socket energy")
	}
}

func TestActiveCoresCostMore(t *testing.T) {
	p := DefaultParams()
	idle := p.Price(Usage{WallSeconds: 10, Cores: 4})
	busy := p.Price(Usage{WallSeconds: 10, Cores: 4, CoreActiveSec: 40, SMTActiveSec: 40})
	if busy.SocketJoules <= idle.SocketJoules {
		t.Fatal("fully active machine no more expensive than idle")
	}
}

func TestRaceToHalt(t *testing.T) {
	// The defining tradeoff of §4: a run that uses twice the cores but
	// finishes in half the time must consume less total energy, because
	// static and system power dominate.
	p := DefaultParams()
	slow := p.Price(Usage{WallSeconds: 100, Cores: 4, CoreActiveSec: 100, SMTActiveSec: 100})
	fast := p.Price(Usage{WallSeconds: 50, Cores: 4, CoreActiveSec: 100, SMTActiveSec: 100})
	if fast.SocketJoules >= slow.SocketJoules {
		t.Fatalf("race-to-halt violated on socket: fast=%v slow=%v",
			fast.SocketJoules, slow.SocketJoules)
	}
	if fast.WallJoules >= slow.WallJoules {
		t.Fatal("race-to-halt violated on wall")
	}
}

func TestEventEnergyCounted(t *testing.T) {
	p := DefaultParams()
	base := Usage{WallSeconds: 1, Cores: 4}
	withEvents := base
	withEvents.DRAMLines = 1_000_000
	d := p.Price(withEvents).SocketJoules - p.Price(base).SocketJoules
	want := p.DRAMLineJ * 1e6
	if diff := d - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("DRAM event energy = %v, want %v", d, want)
	}
}

func TestCacheAllocationDoesNotChangeSocketPower(t *testing.T) {
	// The paper: "Socket power does not change as a function of the
	// cache allocated" — energy differs only through events and time.
	p := DefaultParams()
	a := p.Price(Usage{WallSeconds: 10, Cores: 4, CoreActiveSec: 20})
	b := p.Price(Usage{WallSeconds: 10, Cores: 4, CoreActiveSec: 20})
	if a != b {
		t.Fatal("identical usage priced differently")
	}
}

func TestUsageAdd(t *testing.T) {
	a := Usage{WallSeconds: 1, Cores: 4, CoreActiveSec: 2, L2Accesses: 10, DRAMLines: 5}
	b := Usage{WallSeconds: 2, Cores: 4, SMTActiveSec: 1, LLCAccesses: 7, DRAMLines: 3}
	a.Add(b)
	if a.WallSeconds != 3 || a.CoreActiveSec != 2 || a.SMTActiveSec != 1 ||
		a.L2Accesses != 10 || a.LLCAccesses != 7 || a.DRAMLines != 8 {
		t.Fatalf("Add result: %+v", a)
	}
}

func TestIdlePowerHelpers(t *testing.T) {
	p := DefaultParams()
	if p.IdlePowerSocket(4) <= 0 {
		t.Fatal("idle socket power must be positive")
	}
	if p.IdlePowerWall(4) <= p.IdlePowerSocket(4) {
		t.Fatal("idle wall power must exceed socket power")
	}
}

func TestEnergyNonNegativeQuick(t *testing.T) {
	p := DefaultParams()
	if err := quick.Check(func(wall, act, smt uint16, l2, llc, dram uint32) bool {
		u := Usage{
			WallSeconds:   float64(wall),
			Cores:         4,
			CoreActiveSec: float64(act),
			SMTActiveSec:  float64(smt),
			L2Accesses:    uint64(l2),
			LLCAccesses:   uint64(llc),
			DRAMLines:     uint64(dram),
		}
		r := p.Price(u)
		return r.SocketJoules >= 0 && r.WallJoules >= r.SocketJoules
	}, nil); err != nil {
		t.Fatal(err)
	}
}
