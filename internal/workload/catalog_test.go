package workload

import "testing"

func TestCatalogValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestCatalogCoversThePaper(t *testing.T) {
	// §2.3: 13 PARSEC, 14 DaCapo, 12 SPEC, 4 parallel apps, 2 micros.
	want := map[string]int{
		SuitePARSEC:   13,
		SuiteDaCapo:   14,
		SuiteSPEC:     12,
		SuiteParallel: 4,
		SuiteMicro:    2,
	}
	for suite, n := range want {
		if got := len(BySuite(suite)); got != n {
			t.Errorf("suite %s has %d apps, want %d", suite, got, n)
		}
	}
	if got := len(All()); got != 45 {
		t.Errorf("catalog has %d apps, want 45", got)
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("429.mcf")
	if err != nil || p.Suite != SuiteSPEC {
		t.Fatalf("ByName(429.mcf) = %v, %v", p, err)
	}
	if _, err := ByName("doom3"); err == nil {
		t.Fatal("unknown app did not error")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName on unknown app did not panic")
		}
	}()
	MustByName("doom3")
}

func TestRepresentativesAreTable3(t *testing.T) {
	reps := Representatives()
	if len(reps) != 6 {
		t.Fatalf("%d representatives, want 6", len(reps))
	}
	want := []string{"429.mcf", "459.GemsFDTD", "ferret", "fop", "dedup", "batik"}
	for i, p := range reps {
		if p.Name != want[i] {
			t.Errorf("C%d = %s, want %s", i+1, p.Name, want[i])
		}
	}
}

func TestSequentialAppsAreSingleThreaded(t *testing.T) {
	for _, p := range BySuite(SuiteSPEC) {
		if p.MaxThreads != 1 {
			t.Errorf("%s: SPEC must be single-threaded", p.Name)
		}
		if p.SerialFrac != 1 {
			t.Errorf("%s: sequential app with SerialFrac %v", p.Name, p.SerialFrac)
		}
	}
	for _, p := range BySuite(SuiteMicro) {
		if p.MaxThreads != 1 {
			t.Errorf("%s: microbenchmarks are single-threaded", p.Name)
		}
	}
}

func TestMcfHasAlternatingPhases(t *testing.T) {
	p := MustByName("429.mcf")
	if len(p.Phases) != 6 {
		t.Fatalf("mcf has %d phases, want 6 (Figure 12)", len(p.Phases))
	}
	// Phases must alternate small/large working sets.
	for i := 0; i < len(p.Phases)-1; i++ {
		a, b := p.Phases[i].WorkingSetBytes, p.Phases[i+1].WorkingSetBytes
		if (a < b) == (i%2 == 1) {
			t.Fatalf("mcf phases %d,%d do not alternate: %d vs %d", i, i+1, a, b)
		}
	}
}

func TestPhaseAt(t *testing.T) {
	p := MustByName("429.mcf")
	first, idx := p.PhaseAt(0)
	if idx != 0 || first.WorkingSetBytes != p.Phases[0].WorkingSetBytes {
		t.Fatal("PhaseAt(0)")
	}
	_, last := p.PhaseAt(0.999)
	if last != len(p.Phases)-1 {
		t.Fatalf("PhaseAt(0.999) = phase %d", last)
	}
	_, over := p.PhaseAt(5)
	if over != len(p.Phases)-1 {
		t.Fatal("PhaseAt beyond 1 should clamp to last phase")
	}
	_, under := p.PhaseAt(-1)
	if under != 0 {
		t.Fatal("PhaseAt below 0 should clamp to first phase")
	}
}

func TestStreamUncachedIsPureStreaming(t *testing.T) {
	p := MustByName("stream_uncached")
	if p.Phases[0].StreamFrac != 1 {
		t.Fatal("stream_uncached must bypass the caches entirely")
	}
}

func TestWorkingSetCensus(t *testing.T) {
	// Sanity floor for the §3.2 census: a good share of the catalog has
	// nominal working sets at or under 1 MB. (The measured census in
	// EXPERIMENTS.md uses capacity-to-95%-performance, which also counts
	// the streaming codes as small.)
	small := 0
	for _, p := range All() {
		if p.MaxWorkingSet() <= 1<<20 {
			small++
		}
	}
	if small < 12 {
		t.Errorf("only %d apps with <=1MB nominal working sets", small)
	}
}

func TestMeanAPKIWeighting(t *testing.T) {
	p := &Profile{
		Name: "x", Instructions: 1, MaxThreads: 1,
		Phases: []Phase{
			{Frac: 0.5, WorkingSetBytes: 1, APKI: 10},
			{Frac: 0.5, WorkingSetBytes: 1, APKI: 30},
		},
	}
	if got := p.MeanAPKI(); got != 20 {
		t.Fatalf("MeanAPKI = %v", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []Profile{
		{Name: "", Instructions: 1, MaxThreads: 1, Phases: []Phase{{Frac: 1, WorkingSetBytes: 1}}},
		{Name: "a", Instructions: 0, MaxThreads: 1, Phases: []Phase{{Frac: 1, WorkingSetBytes: 1}}},
		{Name: "b", Instructions: 1, MaxThreads: 0, Phases: []Phase{{Frac: 1, WorkingSetBytes: 1}}},
		{Name: "c", Instructions: 1, MaxThreads: 1, SerialFrac: 2, Phases: []Phase{{Frac: 1, WorkingSetBytes: 1}}},
		{Name: "d", Instructions: 1, MaxThreads: 1},
		{Name: "e", Instructions: 1, MaxThreads: 1, Phases: []Phase{{Frac: 0.5, WorkingSetBytes: 1}}},
		{Name: "f", Instructions: 1, MaxThreads: 1, Phases: []Phase{{Frac: 1, WorkingSetBytes: 0}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q validated despite being malformed", p.Name)
		}
	}
}

func TestSortedNames(t *testing.T) {
	n := SortedNames()
	if len(n) != 45 {
		t.Fatalf("%d names", len(n))
	}
	for i := 1; i < len(n); i++ {
		if n[i-1] >= n[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestSuitesOrder(t *testing.T) {
	s := Suites()
	if len(s) != 5 || s[0] != SuitePARSEC || s[4] != SuiteMicro {
		t.Fatalf("Suites() = %v", s)
	}
}
