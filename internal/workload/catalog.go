package workload

import "repro/internal/trace"

// Size units for catalog readability.
const (
	kb = 1024
	mb = 1 << 20
)

// giga scales nominal instruction counts.
const giga = 1e9

// The catalog. Each entry's comment states the paper-published targets
// the parameters are calibrated against, in the form:
//
//	scalability (Table 1) / LLC utility (Table 2) / prefetch (Fig 3) /
//	bandwidth (Fig 4); ">10 LLC-APKI" marks Table 2 bold entries.
//
// Working-set sizes are chosen so the *measured* capacity demand
// (capacity needed to reach 95% of best performance, §3.2) reproduces
// the paper's census: 44% of applications under 1 MB, 78% under 3 MB.
// Streaming codes have huge nominal arrays but tiny measured demand —
// caching cannot help them, exactly as on the real machine.
var catalog = []Profile{

	// ------------------------------------------------------------------
	// PARSEC (13) — pthreads parallel suite, native inputs.
	// ------------------------------------------------------------------

	// high scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "blackscholes", Suite: SuitePARSEC,
		Instructions: 2.2 * giga, MaxThreads: 8,
		SerialFrac: 0.012, SyncOverhead: 0.004,
		MLP: 3.5, CPIScale: 0.85, WriteFrac: 0.25, SharedFrac: 0.05,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 8,
		Phases: flat(192*kb, 7, trace.PatternMix{Seq: 0.35, Stride: 0.1, Random: 0.55}),
	},
	// high scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "bodytrack", Suite: SuitePARSEC,
		Instructions: 2.6 * giga, MaxThreads: 8,
		SerialFrac: 0.03, SyncOverhead: 0.012,
		MLP: 3.0, CPIScale: 0.9, WriteFrac: 0.28, SharedFrac: 0.15,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 10,
		Phases: flat(640*kb, 8, trace.PatternMix{Seq: 0.3, Stride: 0.15, Random: 0.55}),
	},
	// saturated scal / saturated utility / pf-insensitive / bw-mild;
	// >10 LLC-APKI: the classic pointer-chasing LLC polluter and the
	// paper's example aggressor (slows canneal's co-runners).
	{
		Name: "canneal", Suite: SuitePARSEC,
		Instructions: 3.0 * giga, MaxThreads: 8,
		SerialFrac: 0.15, SyncOverhead: 0.12,
		MLP: 2.6, CPIScale: 1.1, WriteFrac: 0.3, SharedFrac: 0.5,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 8,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2400 * kb, APKI: 13,
			Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
			HotFrac: 0.55, HotPortion: 0.25,
		}},
	},
	// saturated scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "dedup", Suite: SuitePARSEC,
		Instructions: 2.4 * giga, MaxThreads: 8,
		SerialFrac: 0.12, SyncOverhead: 0.1,
		MLP: 2.8, CPIScale: 1.0, WriteFrac: 0.35, SharedFrac: 0.2,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 10,
		Phases: flat(768*kb, 8, trace.PatternMix{Seq: 0.4, Stride: 0.1, Random: 0.5}),
	},
	// high scal / saturated utility / pf-sensitive / bw-insensitive.
	{
		Name: "facesim", Suite: SuitePARSEC,
		Instructions: 3.4 * giga, MaxThreads: 8,
		SerialFrac: 0.02, SyncOverhead: 0.01,
		MLP: 4.0, CPIScale: 0.85, WriteFrac: 0.33, SharedFrac: 0.2,
		CodeFootprintBytes: 128 * kb, CodeRefPKI: 10,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2 * mb, APKI: 13,
			Mix:     trace.PatternMix{Seq: 0.55, Stride: 0.2, Random: 0.25},
			HotFrac: 0.65, HotPortion: 0.3,
		}},
	},
	// high scal / low utility / pf-insensitive / bw-insensitive.
	// Table 3: representative of cluster C3 (high scalability, low
	// cache utility).
	{
		Name: "ferret", Suite: SuitePARSEC,
		Instructions: 4.6 * giga, MaxThreads: 8,
		SerialFrac: 0.015, SyncOverhead: 0.006,
		MLP: 3.2, CPIScale: 0.95, WriteFrac: 0.27, SharedFrac: 0.15,
		CodeFootprintBytes: 128 * kb, CodeRefPKI: 12,
		Phases: flat(896*kb, 8, trace.PatternMix{Seq: 0.3, Stride: 0.1, Random: 0.6}),
	},
	// high scal / low utility / pf-insensitive / bw-SENSITIVE
	// (one of the two PARSEC bandwidth victims, Fig 4).
	{
		Name: "fluidanimate", Suite: SuitePARSEC,
		Instructions: 3.2 * giga, MaxThreads: 8,
		SerialFrac: 0.02, SyncOverhead: 0.008,
		MLP: 3.5, CPIScale: 0.9, WriteFrac: 0.38, SharedFrac: 0.25,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 8,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 24 * mb, APKI: 11,
			Mix:     trace.PatternMix{Seq: 0.5, Stride: 0.3, Random: 0.2},
			HotFrac: 0.4, HotPortion: 0.05,
		}},
	},
	// high scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "freqmine", Suite: SuitePARSEC,
		Instructions: 3.8 * giga, MaxThreads: 8,
		SerialFrac: 0.025, SyncOverhead: 0.01,
		MLP: 2.6, CPIScale: 1.0, WriteFrac: 0.3, SharedFrac: 0.2,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 10,
		Phases: flat(832*kb, 9, trace.PatternMix{Seq: 0.25, Stride: 0.1, Random: 0.65}),
	},
	// saturated scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "raytrace", Suite: SuitePARSEC,
		Instructions: 3.6 * giga, MaxThreads: 8,
		SerialFrac: 0.12, SyncOverhead: 0.1,
		MLP: 2.4, CPIScale: 0.95, WriteFrac: 0.2, SharedFrac: 0.3,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 9,
		Phases: flat(960*kb, 7, trace.PatternMix{Seq: 0.2, Stride: 0.15, Random: 0.65}),
	},
	// high scal / low utility / pf-sensitive / bw-SENSITIVE;
	// >10 LLC-APKI (streaming k-means over a large point set).
	{
		Name: "streamcluster", Suite: SuitePARSEC,
		Instructions: 3.0 * giga, MaxThreads: 8,
		SerialFrac: 0.02, SyncOverhead: 0.012,
		MLP: 5.0, CPIScale: 0.9, WriteFrac: 0.15, SharedFrac: 0.4,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 8,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 28 * mb, APKI: 13,
			Mix:     trace.PatternMix{Seq: 0.6, Stride: 0.2, Random: 0.2},
			HotFrac: 0.2, HotPortion: 0.04,
		}},
	},
	// high scal / low utility / pf-insensitive / bw-insensitive:
	// tiny working set, pure compute.
	{
		Name: "swaptions", Suite: SuitePARSEC,
		Instructions: 2.8 * giga, MaxThreads: 8,
		SerialFrac: 0.008, SyncOverhead: 0.003,
		MLP: 3.0, CPIScale: 0.8, WriteFrac: 0.22, SharedFrac: 0.02,
		CodeFootprintBytes: 48 * kb, CodeRefPKI: 6,
		Phases: flat(144*kb, 6, trace.PatternMix{Seq: 0.3, Stride: 0.2, Random: 0.5}),
	},
	// high scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "vips", Suite: SuitePARSEC,
		Instructions: 3.2 * giga, MaxThreads: 8,
		SerialFrac: 0.02, SyncOverhead: 0.009,
		MLP: 3.4, CPIScale: 0.9, WriteFrac: 0.33, SharedFrac: 0.1,
		CodeFootprintBytes: 160 * kb, CodeRefPKI: 12,
		Phases: flat(704*kb, 8, trace.PatternMix{Seq: 0.45, Stride: 0.15, Random: 0.4}),
	},
	// high scal / HIGH utility / pf-insensitive / bw-mild: the one
	// PARSEC code whose references keep rewarding extra LLC capacity.
	{
		Name: "x264", Suite: SuitePARSEC,
		Instructions: 3.4 * giga, MaxThreads: 8,
		SerialFrac: 0.03, SyncOverhead: 0.015,
		MLP: 2.8, CPIScale: 0.9, WriteFrac: 0.3, SharedFrac: 0.25,
		CodeFootprintBytes: 192 * kb, CodeRefPKI: 12,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5632 * kb, APKI: 12,
			Mix:     trace.PatternMix{Seq: 0.3, Stride: 0.25, Random: 0.45},
			HotFrac: 0.8, HotPortion: 0.85,
		}},
	},

	// ------------------------------------------------------------------
	// DaCapo 2009 (14) — managed (JVM) suite: large code footprints,
	// GC-limited scalability, moderate bandwidth demand.
	// ------------------------------------------------------------------

	// saturated scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "avrora", Suite: SuiteDaCapo,
		Instructions: 2.0 * giga, MaxThreads: 8,
		SerialFrac: 0.18, SyncOverhead: 0.14,
		MLP: 2.2, CPIScale: 1.3, WriteFrac: 0.3, SharedFrac: 0.25,
		CodeFootprintBytes: 384 * kb, CodeRefPKI: 24,
		Phases: flat(448*kb, 6, trace.PatternMix{Seq: 0.2, Stride: 0.1, Random: 0.7}),
	},
	// saturated scal / saturated utility / pf-insensitive /
	// bw-insensitive. Table 3: representative of cluster C6.
	{
		Name: "batik", Suite: SuiteDaCapo,
		Instructions: 1.6 * giga, MaxThreads: 8,
		SerialFrac: 0.16, SyncOverhead: 0.14,
		MLP: 2.5, CPIScale: 1.25, WriteFrac: 0.32, SharedFrac: 0.2,
		CodeFootprintBytes: 640 * kb, CodeRefPKI: 28,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 1600 * kb, APKI: 8,
			Mix:     trace.PatternMix{Seq: 0.25, Stride: 0.1, Random: 0.65},
			HotFrac: 0.7, HotPortion: 0.3,
		}},
	},
	// saturated scal / HIGH utility / pf-insensitive / bw-insensitive.
	{
		Name: "eclipse", Suite: SuiteDaCapo,
		Instructions: 3.6 * giga, MaxThreads: 8,
		SerialFrac: 0.16, SyncOverhead: 0.12,
		MLP: 2.5, CPIScale: 1.35, WriteFrac: 0.33, SharedFrac: 0.25,
		CodeFootprintBytes: 1536 * kb, CodeRefPKI: 34,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5632 * kb, APKI: 10,
			Mix:     trace.PatternMix{Seq: 0.15, Stride: 0.1, Random: 0.75},
			HotFrac: 0.78, HotPortion: 0.85,
		}},
	},
	// saturated scal / HIGH utility / pf-insensitive / bw-insensitive.
	// Table 3: representative of cluster C4 (cache-sensitive,
	// saturated scalability).
	{
		Name: "fop", Suite: SuiteDaCapo,
		Instructions: 1.2 * giga, MaxThreads: 8,
		SerialFrac: 0.15, SyncOverhead: 0.12,
		MLP: 2.0, CPIScale: 1.3, WriteFrac: 0.34, SharedFrac: 0.2,
		CodeFootprintBytes: 768 * kb, CodeRefPKI: 30,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5376 * kb, APKI: 9,
			Mix:     trace.PatternMix{Seq: 0.15, Stride: 0.1, Random: 0.75},
			HotFrac: 0.78, HotPortion: 0.85,
		}},
	},
	// LOW scal / saturated utility / pf-insensitive / bw-insensitive:
	// transactional database, lock-serialized.
	{
		Name: "h2", Suite: SuiteDaCapo,
		Instructions: 3.2 * giga, MaxThreads: 8,
		SerialFrac: 0.6, SyncOverhead: 0.15,
		MLP: 2.4, CPIScale: 1.35, WriteFrac: 0.38, SharedFrac: 0.35,
		CodeFootprintBytes: 896 * kb, CodeRefPKI: 30,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2200 * kb, APKI: 10,
			Mix:     trace.PatternMix{Seq: 0.1, Stride: 0.1, Random: 0.8},
			HotFrac: 0.65, HotPortion: 0.25,
		}},
	},
	// saturated scal / saturated utility / pf-insensitive /
	// bw-insensitive.
	{
		Name: "jython", Suite: SuiteDaCapo,
		Instructions: 2.8 * giga, MaxThreads: 8,
		SerialFrac: 0.18, SyncOverhead: 0.14,
		MLP: 2.0, CPIScale: 1.4, WriteFrac: 0.3, SharedFrac: 0.2,
		CodeFootprintBytes: 1024 * kb, CodeRefPKI: 36,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 1800 * kb, APKI: 7,
			Mix:     trace.PatternMix{Seq: 0.15, Stride: 0.1, Random: 0.75},
			HotFrac: 0.7, HotPortion: 0.3,
		}},
	},
	// saturated scal / saturated utility / pf-insensitive /
	// bw-insensitive.
	{
		Name: "luindex", Suite: SuiteDaCapo,
		Instructions: 1.8 * giga, MaxThreads: 8,
		SerialFrac: 0.2, SyncOverhead: 0.15,
		MLP: 2.2, CPIScale: 1.25, WriteFrac: 0.35, SharedFrac: 0.15,
		CodeFootprintBytes: 512 * kb, CodeRefPKI: 26,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 1400 * kb, APKI: 8,
			Mix:     trace.PatternMix{Seq: 0.3, Stride: 0.1, Random: 0.6},
			HotFrac: 0.7, HotPortion: 0.3,
		}},
	},
	// saturated scal / HIGH utility / pf-DEGRADED / bw-mild;
	// the paper's one prefetch-hurt application (Fig 3) and a listed
	// aggressor (Fig 8). Short-stride traffic mistrains the streamers,
	// so prefetch fills pollute its large, reuse-heavy heap.
	{
		Name: "lusearch", Suite: SuiteDaCapo,
		Instructions: 2.2 * giga, MaxThreads: 8,
		SerialFrac: 0.14, SyncOverhead: 0.1,
		MLP: 2.2, CPIScale: 1.3, WriteFrac: 0.32, SharedFrac: 0.25,
		CodeFootprintBytes: 640 * kb, CodeRefPKI: 28,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5376 * kb, APKI: 16,
			Mix:     trace.PatternMix{Random: 1},
			HotFrac: 0.8, HotPortion: 0.22,
			RepeatFrac: 0.35, HotStride: 4,
		}},
	},
	// high scal / HIGH utility / pf-insensitive / bw-insensitive.
	{
		Name: "pmd", Suite: SuiteDaCapo,
		Instructions: 2.6 * giga, MaxThreads: 8,
		SerialFrac: 0.05, SyncOverhead: 0.04,
		MLP: 2.0, CPIScale: 1.3, WriteFrac: 0.3, SharedFrac: 0.2,
		CodeFootprintBytes: 1024 * kb, CodeRefPKI: 32,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5632 * kb, APKI: 10,
			Mix:     trace.PatternMix{Seq: 0.1, Stride: 0.1, Random: 0.8},
			HotFrac: 0.76, HotPortion: 0.85,
		}},
	},
	// high scal / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "sunflow", Suite: SuiteDaCapo,
		Instructions: 2.8 * giga, MaxThreads: 8,
		SerialFrac: 0.02, SyncOverhead: 0.015,
		MLP: 2.8, CPIScale: 1.1, WriteFrac: 0.25, SharedFrac: 0.3,
		CodeFootprintBytes: 448 * kb, CodeRefPKI: 22,
		Phases: flat(832*kb, 7, trace.PatternMix{Seq: 0.2, Stride: 0.15, Random: 0.65}),
	},
	// high scal / saturated utility / pf-insensitive / bw-insensitive.
	// §3.2's example of saturated LLC utility.
	{
		Name: "tomcat", Suite: SuiteDaCapo,
		Instructions: 3.0 * giga, MaxThreads: 8,
		SerialFrac: 0.05, SyncOverhead: 0.035,
		MLP: 2.2, CPIScale: 1.3, WriteFrac: 0.33, SharedFrac: 0.3,
		CodeFootprintBytes: 1280 * kb, CodeRefPKI: 34,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2 * mb, APKI: 8,
			Mix:     trace.PatternMix{Seq: 0.15, Stride: 0.1, Random: 0.75},
			HotFrac: 0.7, HotPortion: 0.3,
		}},
	},
	// LOW scal / HIGH utility / pf-insensitive / bw-insensitive.
	{
		Name: "tradebeans", Suite: SuiteDaCapo,
		Instructions: 3.4 * giga, MaxThreads: 8,
		SerialFrac: 0.6, SyncOverhead: 0.15,
		MLP: 2.4, CPIScale: 1.35, WriteFrac: 0.36, SharedFrac: 0.35,
		CodeFootprintBytes: 1280 * kb, CodeRefPKI: 32,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5632 * kb, APKI: 9,
			Mix:     trace.PatternMix{Seq: 0.1, Stride: 0.1, Random: 0.8},
			HotFrac: 0.74, HotPortion: 0.85,
		}},
	},
	// LOW scal / saturated utility / pf-insensitive / bw-insensitive.
	{
		Name: "tradesoap", Suite: SuiteDaCapo,
		Instructions: 3.2 * giga, MaxThreads: 8,
		SerialFrac: 0.62, SyncOverhead: 0.15,
		MLP: 2.4, CPIScale: 1.35, WriteFrac: 0.35, SharedFrac: 0.35,
		CodeFootprintBytes: 1152 * kb, CodeRefPKI: 32,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2400 * kb, APKI: 8,
			Mix:     trace.PatternMix{Seq: 0.1, Stride: 0.1, Random: 0.8},
			HotFrac: 0.65, HotPortion: 0.25,
		}},
	},
	// high scal / HIGH utility / pf-insensitive / bw-insensitive.
	{
		Name: "xalan", Suite: SuiteDaCapo,
		Instructions: 2.4 * giga, MaxThreads: 8,
		SerialFrac: 0.03, SyncOverhead: 0.02,
		MLP: 2.2, CPIScale: 1.3, WriteFrac: 0.3, SharedFrac: 0.3,
		CodeFootprintBytes: 896 * kb, CodeRefPKI: 30,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5376 * kb, APKI: 10,
			Mix:     trace.PatternMix{Seq: 0.15, Stride: 0.1, Random: 0.75},
			HotFrac: 0.76, HotPortion: 0.85,
		}},
	},

	// ------------------------------------------------------------------
	// SPEC CPU2006 subset (12) — sequential; Phansalkar et al. subset
	// plus Jaleel's four LLC-stressing floating-point additions.
	// ------------------------------------------------------------------

	// sequential / saturated utility / pf-insensitive / bw-mild;
	// >10 LLC-APKI. Table 3: representative of cluster C1. Six
	// alternating low/high-MPKI phases reproduce Figure 12.
	{
		Name: "429.mcf", Suite: SuiteSPEC,
		Instructions: 5.6 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 2.5, CPIScale: 1.15, WriteFrac: 0.28,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 8,
		Phases: []Phase{
			{Frac: 0.17, WorkingSetBytes: 1400 * kb, APKI: 30,
				Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
				HotFrac: 0.7, HotPortion: 0.35},
			{Frac: 0.17, WorkingSetBytes: 9 * mb, APKI: 60,
				Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
				HotFrac: 0.92, HotPortion: 0.36},
			{Frac: 0.16, WorkingSetBytes: 1400 * kb, APKI: 30,
				Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
				HotFrac: 0.7, HotPortion: 0.35},
			{Frac: 0.17, WorkingSetBytes: 9 * mb, APKI: 60,
				Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
				HotFrac: 0.92, HotPortion: 0.36},
			{Frac: 0.16, WorkingSetBytes: 1400 * kb, APKI: 30,
				Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
				HotFrac: 0.7, HotPortion: 0.35},
			{Frac: 0.17, WorkingSetBytes: 9 * mb, APKI: 60,
				Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
				HotFrac: 0.92, HotPortion: 0.36},
		},
	},
	// sequential / low utility / pf-insensitive / bw-insensitive:
	// grid solver with a compact resident set per sweep.
	{
		Name: "436.cactusADM", Suite: SuiteSPEC,
		Instructions: 3.6 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 4.0, CPIScale: 0.85, WriteFrac: 0.3,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 6,
		Phases: flat(700*kb, 8, trace.PatternMix{Seq: 0.5, Stride: 0.3, Random: 0.2}),
	},
	// sequential / low utility / pf-sensitive / bw-SENSITIVE;
	// >10 LLC-APKI: streaming stencil sweeps, no cacheable reuse.
	{
		Name: "437.leslie3d", Suite: SuiteSPEC,
		Instructions: 3.8 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 5.0, CPIScale: 1.0, WriteFrac: 0.35,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 6,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 24 * mb, APKI: 20,
			Mix:     trace.PatternMix{Seq: 0.65, Stride: 0.25, Random: 0.1},
			HotFrac: 0.1, HotPortion: 0.02,
		}},
	},
	// sequential / low utility / pf-SENSITIVE / bw-SENSITIVE;
	// >10 LLC-APKI.
	{
		Name: "450.soplex", Suite: SuiteSPEC,
		Instructions: 3.4 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 4.0, CPIScale: 1.05, WriteFrac: 0.25,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 8,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 20 * mb, APKI: 22,
			Mix:     trace.PatternMix{Seq: 0.6, Stride: 0.25, Random: 0.15},
			HotFrac: 0.15, HotPortion: 0.03,
		}},
	},
	// sequential / low utility / pf-insensitive / bw-insensitive:
	// compute-bound ray tracer, tiny memory appetite.
	{
		Name: "453.povray", Suite: SuiteSPEC,
		Instructions: 3.0 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 3.0, CPIScale: 0.75, WriteFrac: 0.2,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 8,
		Phases: flat(160*kb, 6, trace.PatternMix{Seq: 0.25, Stride: 0.15, Random: 0.6}),
	},
	// sequential / low utility / pf-insensitive / bw-insensitive.
	{
		Name: "454.calculix", Suite: SuiteSPEC,
		Instructions: 3.2 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 3.5, CPIScale: 0.8, WriteFrac: 0.28,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 7,
		Phases: flat(320*kb, 8, trace.PatternMix{Seq: 0.4, Stride: 0.25, Random: 0.35}),
	},
	// sequential / low utility / pf-SENSITIVE / bw-SENSITIVE;
	// >10 LLC-APKI. Table 3: representative of cluster C2 (low
	// scalability, bandwidth- and prefetch-sensitive).
	{
		Name: "459.GemsFDTD", Suite: SuiteSPEC,
		Instructions: 3.0 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 5.0, CPIScale: 1.05, WriteFrac: 0.4,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 6,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 26 * mb, APKI: 22,
			Mix:     trace.PatternMix{Seq: 0.7, Stride: 0.2, Random: 0.1},
			HotFrac: 0.1, HotPortion: 0.02,
		}},
	},
	// sequential / low utility / pf-SENSITIVE / bw-SENSITIVE;
	// >10 LLC-APKI: pure sequential sweep, the ideal prefetch target.
	{
		Name: "462.libquantum", Suite: SuiteSPEC,
		Instructions: 3.2 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 4.0, CPIScale: 1.0, WriteFrac: 0.3,
		CodeFootprintBytes: 32 * kb, CodeRefPKI: 4,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 32 * mb, APKI: 28,
			Mix:     trace.PatternMix{Seq: 0.9, Stride: 0.08, Random: 0.02},
			HotFrac: 0.02, HotPortion: 0.01,
		}},
	},
	// sequential / low utility / pf-SENSITIVE / bw-SENSITIVE;
	// >10 LLC-APKI: Lattice-Boltzmann streaming, heavy stores.
	{
		Name: "470.lbm", Suite: SuiteSPEC,
		Instructions: 3.0 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 4.5, CPIScale: 1.0, WriteFrac: 0.5,
		CodeFootprintBytes: 32 * kb, CodeRefPKI: 4,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 30 * mb, APKI: 26,
			Mix:     trace.PatternMix{Seq: 0.85, Stride: 0.12, Random: 0.03},
			HotFrac: 0.03, HotPortion: 0.01,
		}},
	},
	// sequential / HIGH utility / pf-insensitive / bw-mild;
	// >10 LLC-APKI. §3.2's example of high LLC utility and a listed
	// aggressor (Fig 8).
	{
		Name: "471.omnetpp", Suite: SuiteSPEC,
		Instructions: 4.0 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 2.4, CPIScale: 1.2, WriteFrac: 0.33,
		CodeFootprintBytes: 192 * kb, CodeRefPKI: 14,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 6656 * kb, APKI: 30,
			Mix:     trace.PatternMix{Seq: 0.05, Stride: 0.05, Random: 0.9},
			HotFrac: 0.85, HotPortion: 0.85,
		}},
	},
	// sequential / saturated utility / pf-insensitive /
	// bw-insensitive.
	{
		Name: "473.astar", Suite: SuiteSPEC,
		Instructions: 3.6 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 2.2, CPIScale: 1.1, WriteFrac: 0.25,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 6,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 1800 * kb, APKI: 16,
			Mix:     trace.PatternMix{Seq: 0.1, Stride: 0.1, Random: 0.8},
			HotFrac: 0.8, HotPortion: 0.3,
		}},
	},
	// sequential / saturated utility / pf-insensitive / bw-mild;
	// >10 LLC-APKI.
	{
		Name: "482.sphinx3", Suite: SuiteSPEC,
		Instructions: 3.8 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 3.0, CPIScale: 1.0, WriteFrac: 0.22,
		CodeFootprintBytes: 128 * kb, CodeRefPKI: 10,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2600 * kb, APKI: 14,
			Mix:     trace.PatternMix{Seq: 0.3, Stride: 0.15, Random: 0.55},
			HotFrac: 0.65, HotPortion: 0.25,
		}},
	},

	// ------------------------------------------------------------------
	// Research parallel applications (4) — all memory-bandwidth-bound
	// on this platform (Fig 1c): parallel speedups limited by DRAM.
	// ------------------------------------------------------------------

	// saturated scal (bw-bound) / HIGH utility / pf-sensitive /
	// bw-SENSITIVE; aggressor. Browser layout-animation kernel.
	{
		Name: "browser_animation", Suite: SuiteParallel,
		Instructions: 2.8 * giga, MaxThreads: 8,
		SerialFrac: 0.05, SyncOverhead: 0.03,
		MLP: 3.5, CPIScale: 1.0, WriteFrac: 0.35, SharedFrac: 0.3,
		CodeFootprintBytes: 256 * kb, CodeRefPKI: 16,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 5376 * kb, APKI: 24,
			Mix:     trace.PatternMix{Seq: 0.5, Stride: 0.2, Random: 0.3},
			HotFrac: 0.72, HotPortion: 0.8,
		}},
	},
	// saturated scal (bw-bound) / HIGH utility / pf-mild /
	// bw-SENSITIVE. Graph500 breadth-first search (CSR layout).
	{
		Name: "g500_csr", Suite: SuiteParallel,
		Instructions: 2.6 * giga, MaxThreads: 8,
		SerialFrac: 0.06, SyncOverhead: 0.04,
		MLP: 2.2, CPIScale: 1.05, WriteFrac: 0.2, SharedFrac: 0.5,
		CodeFootprintBytes: 96 * kb, CodeRefPKI: 8,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 8 * mb, APKI: 24,
			Mix:     trace.PatternMix{Seq: 0.15, Stride: 0.05, Random: 0.8},
			HotFrac: 0.7, HotPortion: 0.72,
		}},
	},
	// LOW scal (bw-bound) / saturated utility / pf-sensitive /
	// bw-SENSITIVE; aggressor. Parallel speech decoder.
	{
		Name: "ParaDecoder", Suite: SuiteParallel,
		Instructions: 3.2 * giga, MaxThreads: 8,
		SerialFrac: 0.38, SyncOverhead: 0.1,
		MLP: 2.0, CPIScale: 1.1, WriteFrac: 0.3, SharedFrac: 0.45,
		CodeFootprintBytes: 256 * kb, CodeRefPKI: 14,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2800 * kb, APKI: 22,
			Mix:     trace.PatternMix{Seq: 0.4, Stride: 0.1, Random: 0.5},
			HotFrac: 0.6, HotPortion: 0.25,
		}},
	},
	// saturated scal (bw-bound) / saturated utility / pf-sensitive /
	// bw-SENSITIVE. Heat-transfer stencil over a regular grid.
	{
		Name: "stencilprobe", Suite: SuiteParallel,
		Instructions: 2.8 * giga, MaxThreads: 8,
		SerialFrac: 0.03, SyncOverhead: 0.02,
		MLP: 5.5, CPIScale: 0.9, WriteFrac: 0.4, SharedFrac: 0.2,
		CodeFootprintBytes: 64 * kb, CodeRefPKI: 6,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 2 * mb, APKI: 24,
			Mix:     trace.PatternMix{Seq: 0.7, Stride: 0.2, Random: 0.1},
			HotFrac: 0.55, HotPortion: 0.3,
		}},
	},

	// ------------------------------------------------------------------
	// Microbenchmarks (2).
	// ------------------------------------------------------------------

	// sequential / saturated utility / pf-sensitive / bw-mild:
	// sweeps arrays of growing size to map the hierarchy (phases walk
	// 16 KB → 12 MB).
	{
		Name: "ccbench", Suite: SuiteMicro,
		Instructions: 2.4 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 2.0, CPIScale: 1.0, WriteFrac: 0.0,
		CodeFootprintBytes: 32 * kb, CodeRefPKI: 3,
		Phases: []Phase{
			{Frac: 0.2, WorkingSetBytes: 16 * kb, APKI: 40,
				Mix: trace.PatternMix{Random: 1}, HotFrac: 0, HotPortion: 0.2},
			{Frac: 0.2, WorkingSetBytes: 128 * kb, APKI: 40,
				Mix: trace.PatternMix{Random: 1}, HotFrac: 0, HotPortion: 0.2},
			{Frac: 0.2, WorkingSetBytes: 1 * mb, APKI: 40,
				Mix: trace.PatternMix{Random: 1}, HotFrac: 0, HotPortion: 0.2},
			{Frac: 0.2, WorkingSetBytes: 4 * mb, APKI: 40,
				Mix: trace.PatternMix{Random: 1}, HotFrac: 0, HotPortion: 0.2},
			{Frac: 0.2, WorkingSetBytes: 12 * mb, APKI: 40,
				Mix: trace.PatternMix{Random: 1}, HotFrac: 0, HotPortion: 0.2},
		},
	},
	// sequential / low utility / pf-n.a. / bw-HOG: tagged non-temporal
	// loads/stores streaming straight to DRAM; the Fig 4 antagonist.
	{
		Name: "stream_uncached", Suite: SuiteMicro,
		Instructions: 2.6 * giga, MaxThreads: 1,
		SerialFrac: 1, MLP: 14.0, CPIScale: 0.6, WriteFrac: 0.5,
		CodeFootprintBytes: 16 * kb, CodeRefPKI: 2,
		Phases: []Phase{{
			Frac: 1, WorkingSetBytes: 64 * mb, APKI: 110,
			Mix:        trace.PatternMix{Seq: 1},
			StreamFrac: 1.0,
		}},
	},
}
