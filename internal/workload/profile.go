// Package workload defines the synthetic application catalog: a
// parameterized behavioral model for each of the 45 applications the
// paper studies (SPEC CPU2006 subset, DaCapo 2009, PARSEC, four research
// parallel applications, and two microbenchmarks).
//
// The paper ran the real binaries on real hardware; those binaries,
// inputs, and the prototype part are unavailable, so each application is
// substituted by a stochastic generator whose parameters are calibrated
// to land the application in the paper's published characterization:
// thread-scalability class (Table 1), LLC-utility class and
// accesses-per-kilo-instruction (Table 2), prefetcher sensitivity
// (Figure 3), and bandwidth sensitivity (Figure 4). DESIGN.md documents
// this substitution.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Suite names, matching the paper's grouping.
const (
	SuitePARSEC   = "PARSEC"
	SuiteDaCapo   = "DaCapo"
	SuiteSPEC     = "SPEC"
	SuiteParallel = "PAR"
	SuiteMicro    = "micro"
)

// Phase is one execution phase of an application: a fraction of the
// instruction stream with its own working set and access behavior.
// Applications with flat behavior have a single phase; 429.mcf's
// alternating low/high-MPKI phases (Figure 12) have six.
type Phase struct {
	Frac            float64 // fraction of the instruction stream
	WorkingSetBytes int     // per-application data working set
	APKI            float64 // L1D accesses per kilo-instruction
	Mix             trace.PatternMix
	StrideLines     int     // step for the stride pattern (lines)
	StreamFrac      float64 // non-temporal fraction (bypasses caches)
	HotFrac         float64 // reuse skew: probability of hot-subset access
	HotPortion      float64 // hot subset size as fraction of working set
	RepeatFrac      float64 // same-line re-read bursts (trains the DCU streamer)
	HotStride       int     // hot-line spacing (pollution-prone layouts > 1)
}

// Profile is the complete behavioral model of one application.
type Profile struct {
	Name  string
	Suite string

	// Instructions is the nominal dynamic instruction count at scale
	// 1.0. The scheduler multiplies it by the experiment scale.
	Instructions float64

	// MaxThreads caps the usable software threads (1 = sequential).
	MaxThreads int

	// SerialFrac is the Amdahl serial fraction, executed by thread 0.
	SerialFrac float64

	// SyncOverhead inflates each thread's parallel work by
	// 1 + SyncOverhead*(T-1), modeling barriers, locks, and (for the
	// managed suite) garbage-collection scaling bottlenecks.
	SyncOverhead float64

	// MLP is the memory-level parallelism: how many misses overlap.
	// Pointer-chasing codes sit near 1, streaming codes near 6-8.
	MLP float64

	// CPIScale multiplies the platform base CPI (ILP-rich float codes
	// below 1, branchy interpreters above).
	CPIScale float64

	WriteFrac  float64 // store fraction of data accesses
	SharedFrac float64 // fraction of accesses to the thread-shared region

	// CodeFootprintBytes and CodeRefPKI model the instruction side;
	// JIT-heavy managed applications have footprints well beyond L1I.
	CodeFootprintBytes int
	CodeRefPKI         float64

	Phases []Phase
}

// Validate checks internal consistency; the catalog test runs it on
// every entry.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile with empty name")
	}
	if p.Instructions <= 0 {
		return fmt.Errorf("workload %s: non-positive instruction count", p.Name)
	}
	if p.MaxThreads < 1 {
		return fmt.Errorf("workload %s: MaxThreads < 1", p.Name)
	}
	if p.SerialFrac < 0 || p.SerialFrac > 1 {
		return fmt.Errorf("workload %s: SerialFrac %v out of [0,1]", p.Name, p.SerialFrac)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", p.Name)
	}
	var total float64
	for i, ph := range p.Phases {
		if ph.Frac <= 0 {
			return fmt.Errorf("workload %s: phase %d has non-positive fraction", p.Name, i)
		}
		if ph.WorkingSetBytes <= 0 {
			return fmt.Errorf("workload %s: phase %d has non-positive working set", p.Name, i)
		}
		if ph.APKI < 0 {
			return fmt.Errorf("workload %s: phase %d has negative APKI", p.Name, i)
		}
		total += ph.Frac
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload %s: phase fractions sum to %v, want 1", p.Name, total)
	}
	return nil
}

// PhaseAt returns the phase covering instruction-progress fraction
// f ∈ [0,1) and the index of that phase.
func (p *Profile) PhaseAt(f float64) (Phase, int) {
	if f < 0 {
		f = 0
	}
	acc := 0.0
	for i, ph := range p.Phases {
		acc += ph.Frac
		if f < acc {
			return ph, i
		}
	}
	return p.Phases[len(p.Phases)-1], len(p.Phases) - 1
}

// MaxWorkingSet returns the largest per-phase working set.
func (p *Profile) MaxWorkingSet() int {
	m := 0
	for _, ph := range p.Phases {
		if ph.WorkingSetBytes > m {
			m = ph.WorkingSetBytes
		}
	}
	return m
}

// MeanAPKI returns the phase-weighted mean data APKI.
func (p *Profile) MeanAPKI() float64 {
	var s float64
	for _, ph := range p.Phases {
		s += ph.Frac * ph.APKI
	}
	return s
}

// flat builds the common single-phase profile body.
func flat(ws int, apki float64, mix trace.PatternMix) []Phase {
	return []Phase{{
		Frac:            1,
		WorkingSetBytes: ws,
		APKI:            apki,
		Mix:             mix,
		HotFrac:         0.6,
		HotPortion:      0.2,
	}}
}

// ByName returns the catalog profile with the given name.
func ByName(name string) (*Profile, error) {
	for i := range catalog {
		if catalog[i].Name == name {
			return &catalog[i], nil
		}
	}
	return nil, fmt.Errorf("workload: unknown application %q", name)
}

// MustByName is ByName for static names in experiments and examples.
func MustByName(name string) *Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns the full catalog in suite order (PARSEC, DaCapo, SPEC,
// parallel applications, microbenchmarks), the order the paper's
// figures use.
func All() []*Profile {
	out := make([]*Profile, len(catalog))
	for i := range catalog {
		out[i] = &catalog[i]
	}
	return out
}

// Names returns all application names in catalog order.
func Names() []string {
	ps := All()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// BySuite returns the catalog entries of one suite, in catalog order.
func BySuite(suite string) []*Profile {
	var out []*Profile
	for i := range catalog {
		if catalog[i].Suite == suite {
			out = append(out, &catalog[i])
		}
	}
	return out
}

// Suites returns the suite names in presentation order.
func Suites() []string {
	return []string{SuitePARSEC, SuiteDaCapo, SuiteSPEC, SuiteParallel, SuiteMicro}
}

// Representatives returns the six cluster representatives the paper
// selects in Table 3 (bold entries): C1=429.mcf, C2=459.GemsFDTD,
// C3=ferret, C4=fop, C5=dedup, C6=batik.
func Representatives() []*Profile {
	names := RepresentativeNames()
	out := make([]*Profile, len(names))
	for i, n := range names {
		out[i] = MustByName(n)
	}
	return out
}

// RepresentativeNames returns the Table 3 representative names in
// cluster order C1..C6.
func RepresentativeNames() []string {
	return []string{"429.mcf", "459.GemsFDTD", "ferret", "fop", "dedup", "batik"}
}

// SortedNames returns all application names sorted alphabetically
// (useful for deterministic map iteration in reports).
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
