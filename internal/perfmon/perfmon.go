// Package perfmon is the simulator's analogue of the paper's
// libpfm/perf_events layer (§2.2): it exposes per-job hardware counters
// as an event set that can be read at intervals, yielding the MPKI
// deltas that drive phase detection and the time series plotted in
// Figure 12.
package perfmon

import (
	"repro/internal/cache"
	"repro/internal/machine"
)

// EventSet tracks one job's counters and produces interval deltas.
type EventSet struct {
	m    *machine.Machine
	job  *machine.Job
	last machine.JobCounters
}

// Open attaches an event set to a job. The first ReadInterval returns
// the delta since Open.
func Open(m *machine.Machine, job *machine.Job) *EventSet {
	return &EventSet{m: m, job: job, last: m.ReadCounters(job)}
}

// ReadInterval returns the counter delta since the previous read (or
// since Open) and advances the reference point.
func (e *EventSet) ReadInterval() machine.JobCounters {
	cur := e.m.ReadCounters(e.job)
	d := cur.Sub(e.last)
	e.last = cur
	return d
}

// ReadTotal returns the cumulative counters without advancing the
// interval reference.
func (e *EventSet) ReadTotal() machine.JobCounters {
	return e.m.ReadCounters(e.job)
}

// UtilitySet tracks one job's marginal-utility curve: a shadow UMON
// (cache.UMON) observing the job's demand LLC accesses on every core
// it runs on. It is the utility policy's analogue of the MPKI event
// set — perfmon owns the monitor plumbing, the policy layer only sees
// the curve in its snapshot.
type UtilitySet struct {
	u *cache.UMON
}

// OpenUtility attaches a utility monitor to a job, sampling every
// 2^sampleShift-th LLC set. Monitors are shadow-only: attaching one
// never changes simulation results.
func OpenUtility(m *machine.Machine, job *machine.Job, sampleShift uint) *UtilitySet {
	h := m.Hierarchy()
	u := cache.NewUMON(h.LLC().Config(), sampleShift)
	for _, c := range job.Cores() {
		h.AttachUMON(c, u)
	}
	return &UtilitySet{u: u}
}

// Curve writes the cumulative utility curve into dst (allocating when
// nil or short) and returns it: dst[w-1] estimates the demand hits the
// job would have achieved with w LLC ways.
func (s *UtilitySet) Curve(dst []float64) []float64 { return s.u.Curve(dst) }

// Accesses returns the sampled demand accesses the monitor observed.
func (s *UtilitySet) Accesses() uint64 { return s.u.Accesses() }

// Misses returns the sampled demand misses (stack distance beyond the
// monitored associativity).
func (s *UtilitySet) Misses() uint64 { return s.u.Misses() }

// Sample is one point of a sampled counter time series.
type Sample struct {
	Seconds      float64 // simulated time of the reading
	Instructions float64 // cumulative instructions at the reading
	MPKI         float64 // interval LLC misses per kilo-instruction
	APKI         float64 // interval LLC accesses per kilo-instruction
	Ways         int     // LLC ways allocated at the reading (if tracked)
}

// Sampler records an MPKI time series for a job at a fixed simulated-
// time interval — the instrumentation behind Figure 12.
type Sampler struct {
	es      *EventSet
	samples []Sample
	ways    func() int
	total   float64
}

// NewSampler registers a sampling ticker on the machine. ways, if
// non-nil, is polled at each sample to record the current allocation.
func NewSampler(m *machine.Machine, job *machine.Job, intervalSeconds float64, ways func() int) *Sampler {
	s := &Sampler{es: Open(m, job), ways: ways}
	m.RegisterTicker(intervalSeconds, func(now float64) {
		d := s.es.ReadInterval()
		if d.Instructions <= 0 {
			return
		}
		s.total += d.Instructions
		smp := Sample{
			Seconds:      now,
			Instructions: s.total,
			MPKI:         d.MPKI(),
			APKI:         d.APKI(),
		}
		if s.ways != nil {
			smp.Ways = s.ways()
		}
		s.samples = append(s.samples, smp)
	})
	return s
}

// Samples returns the recorded series.
func (s *Sampler) Samples() []Sample { return s.samples }
