package perfmon

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func TestEventSetIntervals(t *testing.T) {
	m := machine.New(machine.Default())
	job := m.AddJob(machine.JobSpec{
		Profile: workload.MustByName("canneal"),
		Threads: 4, Slots: m.SlotsForCores(0, 1), Scale: 5e-4,
	})
	es := Open(m, job)
	var intervals []machine.JobCounters
	m.RegisterTicker(2e-5, func(now float64) {
		intervals = append(intervals, es.ReadInterval())
	})
	m.Run()
	if len(intervals) < 5 {
		t.Fatalf("only %d intervals", len(intervals))
	}
	var sum float64
	for _, d := range intervals {
		if d.Instructions < 0 {
			t.Fatal("negative interval")
		}
		sum += d.Instructions
	}
	total := es.ReadTotal()
	if sum > total.Instructions {
		t.Fatalf("interval sum %v exceeds total %v", sum, total.Instructions)
	}
	// ReadTotal must not advance the interval reference.
	first := es.ReadTotal()
	second := es.ReadTotal()
	if first != second {
		t.Fatal("ReadTotal advanced state")
	}
}

func TestSamplerSeries(t *testing.T) {
	m := machine.New(machine.Default())
	job := m.AddJob(machine.JobSpec{
		Profile: workload.MustByName("429.mcf"),
		Threads: 1, Slots: []int{0}, Scale: 1e-3,
	})
	ways := 7
	s := NewSampler(m, job, 2e-5, func() int { return ways })
	m.Run()
	samples := s.Samples()
	if len(samples) < 10 {
		t.Fatalf("only %d samples", len(samples))
	}
	prevT := -1.0
	prevI := -1.0
	for _, smp := range samples {
		if smp.Seconds <= prevT {
			t.Fatal("sample times not increasing")
		}
		if smp.Instructions <= prevI {
			t.Fatal("sample instructions not increasing")
		}
		if smp.Ways != 7 {
			t.Fatalf("ways callback not used: %d", smp.Ways)
		}
		if smp.MPKI < 0 || smp.APKI < smp.MPKI {
			t.Fatalf("inconsistent sample: %+v", smp)
		}
		prevT, prevI = smp.Seconds, smp.Instructions
	}
}

func TestSamplerSeesMcfPhases(t *testing.T) {
	// mcf's alternating working sets must appear as distinct MPKI
	// regimes in the sampled series (the substance of Figure 12).
	m := machine.New(machine.Default())
	job := m.AddJob(machine.JobSpec{
		Profile: workload.MustByName("429.mcf"),
		Threads: 1, Slots: []int{0}, Scale: 2e-3,
	})
	s := NewSampler(m, job, 2e-5, nil)
	m.Run()
	samples := s.Samples()
	if len(samples) < 20 {
		t.Skipf("too few samples (%d) to see phases", len(samples))
	}
	lo, hi := samples[0].MPKI, samples[0].MPKI
	for _, smp := range samples {
		if smp.MPKI < lo {
			lo = smp.MPKI
		}
		if smp.MPKI > hi {
			hi = smp.MPKI
		}
	}
	if hi < 2*lo+1 {
		t.Fatalf("no phase contrast in MPKI series: min %v max %v", lo, hi)
	}
}
