package sched

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// phaseByName indexes a Stats snapshot's phase list.
func phaseByName(st Stats) map[string]PhaseStat {
	m := make(map[string]PhaseStat, len(st.Phases))
	for _, p := range st.Phases {
		m[p.Name] = p
	}
	return m
}

// TestPhaseAccounting pins the measure-once contract: every simulation
// lands in exactly one phase, labeled by the submitting batch, and the
// per-phase seconds sum to BusySeconds exactly (same time.Now pair, no
// second measurement to drift).
func TestPhaseAccounting(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 4})
	app := workload.MustByName("ferret")

	r.RunBatchIn(BatchInfo{Phase: "probe"}, []Spec{
		SingleSpec{App: app, Threads: 1},
		SingleSpec{App: app, Threads: 2},
	})
	r.RunBatch([]Spec{SingleSpec{App: app, Threads: 4}}) // unlabeled -> "sim"
	r.RunSingle(SingleSpec{App: app, Threads: 8})        // outside any batch -> "sim"

	st := r.Stats()
	ph := phaseByName(st)
	if got := ph["probe"].Count; got != 2 {
		t.Errorf("probe phase count = %d, want 2", got)
	}
	if got := ph[PhaseSim].Count; got != 2 {
		t.Errorf("sim phase count = %d, want 2", got)
	}
	if got := ph["probe"].Count + ph[PhaseSim].Count; got != st.Simulations {
		t.Errorf("simulation phases count %d, want Simulations %d", got, st.Simulations)
	}
	// Same nanosecond totals underneath; the float sum may differ in the
	// last ulp from BusySeconds' single conversion.
	if sum := ph["probe"].Seconds + ph[PhaseSim].Seconds; sum < st.BusySeconds-1e-9 || sum > st.BusySeconds+1e-9 {
		t.Errorf("simulation phase seconds %v != BusySeconds %v (must share one measurement)",
			sum, st.BusySeconds)
	}
	// Queue wait: one entry per batched item (the direct RunSingle never
	// queued).
	if got := ph[PhaseQueueWait].Count; got != 3 {
		t.Errorf("queue-wait count = %d, want 3", got)
	}
	// Gauges are zero at rest.
	if st.QueueDepth != 0 || st.ActiveWorkers != 0 {
		t.Errorf("idle gauges: depth %d, workers %d", st.QueueDepth, st.ActiveWorkers)
	}

	// A warm replay of the first batch is all memo hits: no new
	// simulation phases, but the joins are not memo-wait either (the
	// flights are long finished — the memo-wait phase counts only
	// duplicate keys in flight; a replayed key hits the cache entry
	// directly).
	before := phaseByName(r.Stats())
	r.RunBatchIn(BatchInfo{Phase: "probe"}, []Spec{
		SingleSpec{App: app, Threads: 1},
		SingleSpec{App: app, Threads: 2},
	})
	after := phaseByName(r.Stats())
	if before["probe"].Count != after["probe"].Count {
		t.Errorf("warm replay grew the probe phase: %d -> %d",
			before["probe"].Count, after["probe"].Count)
	}
	if after[PhaseMemoWait].Count == 0 {
		t.Errorf("warm replay recorded no memo-wait joins")
	}
}

// TestPhaseDiskAccounting: with a persistent store attached, load and
// save probes show up as disk phases.
func TestPhaseDiskAccounting(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Scale: 5e-4, Parallelism: 2, CacheDir: dir})
	app := workload.MustByName("fop")
	r.RunBatch([]Spec{
		SingleSpec{App: app, Threads: 1},
		SingleSpec{App: app, Threads: 2},
	})
	ph := phaseByName(r.Stats())
	if ph[PhaseDiskLoad].Count != 2 || ph[PhaseDiskSave].Count != 2 {
		t.Errorf("disk phases after cold run: load %d save %d, want 2 and 2",
			ph[PhaseDiskLoad].Count, ph[PhaseDiskSave].Count)
	}

	// A second runner on the same directory loads instead of simulating.
	r2 := New(Options{Scale: 5e-4, Parallelism: 2, CacheDir: dir})
	r2.RunBatch([]Spec{SingleSpec{App: app, Threads: 1}})
	ph2 := phaseByName(r2.Stats())
	if ph2[PhaseDiskLoad].Count != 1 || ph2[PhaseDiskSave].Count != 0 {
		t.Errorf("disk phases after warm run: load %d save %d, want 1 and 0",
			ph2[PhaseDiskLoad].Count, ph2[PhaseDiskSave].Count)
	}
	if r2.Stats().Simulations != 0 {
		t.Errorf("warm runner simulated %d", r2.Stats().Simulations)
	}
}

// TestStatsDeltaPhases: Delta subtracts phases by name and drops the
// all-zero ones, so an envelope's per-run breakdown holds only the
// phases that run touched.
func TestStatsDeltaPhases(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 2})
	app := workload.MustByName("batik")
	r.RunBatchIn(BatchInfo{Phase: "probe"}, []Spec{SingleSpec{App: app, Threads: 1}})
	before := r.Stats()
	r.RunBatchIn(BatchInfo{Phase: "resim"}, []Spec{SingleSpec{App: app, Threads: 2}})
	d := r.Stats().Delta(before)

	ph := phaseByName(d)
	if _, ok := ph["probe"]; ok {
		t.Errorf("delta kept the untouched probe phase: %+v", d.Phases)
	}
	if got := ph["resim"].Count; got != 1 {
		t.Errorf("delta resim count = %d, want 1", got)
	}
	if got := ph[PhaseQueueWait].Count; got != 1 {
		t.Errorf("delta queue-wait count = %d, want 1", got)
	}
	if d.Simulations != 1 {
		t.Errorf("delta simulations = %d", d.Simulations)
	}
}

// TestTracerBatchSpans: a traced batch produces one batch span plus a
// simulate span per executed spec, nested under the caller's parent,
// and the simulate spans' durations equal the phase seconds exactly —
// the same single measurement feeds both.
func TestTracerBatchSpans(t *testing.T) {
	tr := obs.New(0)
	r := New(Options{Scale: 5e-4, Parallelism: 2, Tracer: tr})
	app := workload.MustByName("dedup")

	root := tr.Start("run", 0)
	r.RunBatchIn(BatchInfo{Span: root.ID(), Phase: "probe"}, []Spec{
		SingleSpec{App: app, Threads: 1},
		SingleSpec{App: app, Threads: 2},
	})
	root.End()

	recs := tr.Snapshot()
	byName := map[string][]obs.SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = append(byName[rec.Name], rec)
	}
	if len(byName["probe-batch"]) != 1 || len(byName["simulate"]) != 2 {
		t.Fatalf("span census: %d probe-batch, %d simulate", len(byName["probe-batch"]), len(byName["simulate"]))
	}
	batch := byName["probe-batch"][0]
	if batch.Parent != root.ID() {
		t.Errorf("batch span parent = %d, want root %d", batch.Parent, root.ID())
	}
	var simTotal time.Duration
	for _, s := range byName["simulate"] {
		if s.Parent != batch.ID {
			t.Errorf("simulate span parent = %d, want batch %d", s.Parent, batch.ID)
		}
		simTotal += s.Dur
	}
	ph := phaseByName(r.Stats())
	if got := time.Duration(ph["probe"].Seconds * float64(time.Second)); simTotal != got {
		// Seconds round-trips through float64; compare at nanosecond
		// granularity via the total instead.
		if d := simTotal - got; d < -time.Nanosecond || d > time.Nanosecond {
			t.Errorf("simulate span total %v != probe phase %v", simTotal, got)
		}
	}
}
