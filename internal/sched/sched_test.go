package sched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

func testRunner() *Runner { return New(Options{Scale: 5e-4}) }

func TestRunSingleBasics(t *testing.T) {
	r := testRunner()
	app := workload.MustByName("ferret")
	res := r.RunSingle(SingleSpec{App: app, Threads: 4})
	j := res.JobByName("ferret")
	if j.Seconds <= 0 || j.Threads != 4 {
		t.Fatalf("result: %+v", j)
	}
}

func TestRunSingleMemoized(t *testing.T) {
	r := testRunner()
	app := workload.MustByName("ferret")
	a := r.RunSingle(SingleSpec{App: app, Threads: 4})
	b := r.RunSingle(SingleSpec{App: app, Threads: 4})
	if a != b {
		t.Fatal("identical single runs not memoized")
	}
	c := r.RunSingle(SingleSpec{App: app, Threads: 2})
	if a == c {
		t.Fatal("different thread counts shared a cache entry")
	}
}

func TestDisableCache(t *testing.T) {
	r := New(Options{Scale: 5e-4, DisableCache: true})
	app := workload.MustByName("swaptions")
	a := r.RunSingle(SingleSpec{App: app, Threads: 1})
	b := r.RunSingle(SingleSpec{App: app, Threads: 1})
	if a == b {
		t.Fatal("cache disabled but results shared")
	}
	if a.JobByName("swaptions").Seconds != b.JobByName("swaptions").Seconds {
		t.Fatal("determinism lost")
	}
}

func TestWaysAffectSingle(t *testing.T) {
	r := testRunner()
	app := workload.MustByName("471.omnetpp")
	full := r.RunSingle(SingleSpec{App: app, Threads: 1}).JobByName(app.Name).Seconds
	one := r.RunSingle(SingleSpec{App: app, Threads: 1, Ways: 1}).JobByName(app.Name).Seconds
	if one <= full {
		t.Fatalf("direct-mapped half-MB LLC (%v) not slower than full (%v)", one, full)
	}
}

func TestPrefetchOverride(t *testing.T) {
	r := testRunner()
	app := workload.MustByName("462.libquantum")
	on := r.RunSingle(SingleSpec{App: app, Threads: 1}).JobByName(app.Name).Seconds
	off := prefetch.AllOff()
	offT := r.RunSingle(SingleSpec{App: app, Threads: 1, Prefetch: &off}).JobByName(app.Name).Seconds
	if on >= offT {
		t.Fatalf("prefetchers did not help the pure stream: on=%v off=%v", on, offT)
	}
}

func TestRunPairPlacement(t *testing.T) {
	r := testRunner()
	fg := workload.MustByName("canneal")
	bg := workload.MustByName("ferret")
	res := r.RunPair(PairSpec{Fg: fg, Bg: bg, Mode: BackgroundLoop})
	if len(res.Jobs) != 2 {
		t.Fatalf("%d jobs", len(res.Jobs))
	}
	fgJ, bgJ := res.JobByName("canneal"), res.JobByName("ferret")
	if fgJ.Background || !bgJ.Background {
		t.Fatal("background flags wrong")
	}
	if bgJ.Iterations <= 0 {
		t.Fatal("background made no progress")
	}
}

func TestPairPartitionValidation(t *testing.T) {
	r := testRunner()
	fg := workload.MustByName("fop")
	bg := workload.MustByName("batik")
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscribed partition accepted")
		}
	}()
	r.RunPair(PairSpec{Fg: fg, Bg: bg, FgWays: 8, BgWays: 8})
}

func TestPartitionProtectsForeground(t *testing.T) {
	// 429.mcf against a continuously-running canneal: the interference
	// is LLC capacity, so a biased partition must pull the foreground
	// back toward its alone time — the core claim of §5.2. (Bandwidth-
	// dominated pairs like canneal+streamcluster are NOT protected by
	// partitioning; the paper makes the same observation.)
	r := New(Options{Scale: 2e-3}) // interference needs warm caches
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("canneal")
	alone := r.AloneHalf(fg).JobByName(fg.Name).Seconds
	shared := r.RunPair(PairSpec{Fg: fg, Bg: bg, Mode: BackgroundLoop}).JobByName(fg.Name).Seconds
	part := r.RunPair(PairSpec{Fg: fg, Bg: bg, FgWays: 9, BgWays: 3, Mode: BackgroundLoop}).JobByName(fg.Name).Seconds
	if shared/alone < 1.1 {
		t.Fatalf("no interference to mitigate: shared/alone = %v", shared/alone)
	}
	if part >= shared*0.98 {
		t.Fatalf("partitioning did not help: partitioned=%v shared=%v", part, shared)
	}
}

func TestBothOnceMode(t *testing.T) {
	r := testRunner()
	fg := workload.MustByName("fop")
	bg := workload.MustByName("batik")
	res := r.RunPair(PairSpec{Fg: fg, Bg: bg, Mode: BothOnce})
	for _, j := range res.Jobs {
		if j.Background {
			t.Fatal("BothOnce ran a background job")
		}
		if j.Iterations != 1 {
			t.Fatalf("%s iterations = %v", j.Name, j.Iterations)
		}
	}
}

func TestAloneBaselines(t *testing.T) {
	r := testRunner()
	app := workload.MustByName("ferret")
	half := r.AloneHalf(app).JobByName(app.Name)
	whole := r.AloneWhole(app).JobByName(app.Name)
	if half.Threads != 4 || whole.Threads != 8 {
		t.Fatalf("baseline threads: half=%d whole=%d", half.Threads, whole.Threads)
	}
	if whole.Seconds >= half.Seconds {
		t.Fatal("scalable app not faster on the whole machine")
	}
}

func TestSetupHookRuns(t *testing.T) {
	r := testRunner()
	fg := workload.MustByName("fop")
	bg := workload.MustByName("batik")
	called := false
	r.RunPair(PairSpec{Fg: fg, Bg: bg, Mode: BackgroundLoop,
		Setup: func(m *machine.Machine, f, b *machine.Job) {
			called = true
			if f.Name() != "fop" || b.Name() != "batik" {
				t.Errorf("setup hook jobs: %s, %s", f.Name(), b.Name())
			}
		}})
	if !called {
		t.Fatal("setup hook not invoked")
	}
}
