package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

// BatchInfo annotates a batch for observability: Span is the trace
// span the batch's own span nests under, and Phase labels the
// simulations it runs (envelope/metrics phase name; "" means the
// generic "sim" phase). The zero value — what RunBatch passes — keeps
// the batch anonymous.
type BatchInfo struct {
	Span  obs.SpanID
	Phase string
}

// RunBatch executes all specs and returns their results in submission
// order, fanning the work across Options.Parallelism workers. Identical
// specs submitted together are deduplicated by the singleflight memo
// cache — one runs, the rest share its result — so drivers can submit a
// whole figure's sweep without tracking which runs overlap.
//
// Each batch spins up its own bounded worker set rather than sharing a
// runner-level pool, so nested batches (a driver batching pairs whose
// assembly calls partition.BestBiased, which batches its own sweep)
// can never deadlock waiting for each other's workers.
func (r *Runner) RunBatch(specs []Spec) []*machine.Result {
	return r.RunBatchIn(BatchInfo{}, specs)
}

// RunBatchIn is RunBatch with observability context: the batch opens a
// "<phase>-batch" span under info.Span, each executed simulation is
// recorded under it with info.Phase attribution, and the engine's
// queue-depth/queue-wait/worker-occupancy accounting brackets the
// batch. Results are identical to RunBatch's.
func (r *Runner) RunBatchIn(info BatchInfo, specs []Spec) []*machine.Result {
	out := make([]*machine.Result, len(specs))

	// Deduplicate memoizable specs by key before fanning out: a worker
	// that picked up a duplicate would otherwise park on the flight its
	// own batch just started, running the batch below Parallelism.
	// Each distinct work item runs once and fans its result out to
	// every submission slot that asked for it.
	type item struct {
		spec    Spec
		targets []int
	}
	var items []*item
	byKey := map[string]*item{}
	for i, s := range specs {
		key := ""
		if !r.opt.DisableCache {
			key = s.memoKey(r)
		}
		if key != "" {
			if it, ok := byKey[key]; ok {
				it.targets = append(it.targets, i)
				r.ctr.hits.Add(1)
				continue
			}
		}
		it := &item{spec: s, targets: []int{i}}
		if key != "" {
			byKey[key] = it
		}
		items = append(items, it)
	}

	fill := func(it *item, res *machine.Result) {
		for _, t := range it.targets {
			out[t] = res
		}
	}

	var batchSpan obs.Span
	if tr := r.opt.Tracer; tr != nil && len(items) > 0 {
		name := "batch"
		if info.Phase != "" {
			name = info.Phase + "-batch"
		}
		batchSpan = tr.Start(name, info.Span,
			obs.Int("specs", len(specs)), obs.Int("items", len(items)))
	}
	rc := runCtx{phase: info.Phase, parent: batchSpan.ID()}

	// Queue accounting: every distinct item is "queued" at submission
	// and leaves the queue when a worker claims it. The deferred
	// correction drains whatever an aborted (panicking) batch left
	// behind so the gauge cannot wedge above zero.
	submitted := time.Now()
	var claimed atomic.Int64
	r.ctr.queueDepth.Add(int64(len(items)))
	defer func() {
		r.ctr.queueDepth.Add(claimed.Load() - int64(len(items)))
	}()
	claim := func() {
		claimed.Add(1)
		r.ctr.queueDepth.Add(-1)
		r.ctr.addPhase(PhaseQueueWait, time.Since(submitted))
	}
	runOne := func(it *item) {
		claim()
		r.ctr.activeWorkers.Add(1)
		defer r.ctr.activeWorkers.Add(-1)
		fill(it, r.run(it.spec, rc))
	}

	workers := r.opt.parallelism()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, it := range items {
			runOne(it)
		}
		batchSpan.End()
		return out
	}
	// A panicking spec (an experiment-construction bug) must surface on
	// the submitting goroutine, as it would serially — not kill the
	// process from an unrecoverable worker goroutine. Workers capture
	// the first panic and stop claiming further work; the caller
	// re-raises it after the barrier.
	var next atomic.Int64
	var wg sync.WaitGroup
	var aborted atomic.Bool
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
					aborted.Store(true)
				}
			}()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				runOne(items[i])
			}
		}()
	}
	wg.Wait()
	batchSpan.End()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Sweep generates n specs and runs them as one batch, returning results
// in index order. It is RunBatch for the common "iterate a parameter"
// shape: Sweep(len(points), func(i int) Spec {...}).
func (r *Runner) Sweep(n int, gen func(i int) Spec) []*machine.Result {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = gen(i)
	}
	return r.RunBatch(specs)
}

// Warm submits specs for execution and discards the results. Drivers
// call it with a figure's full sweep up front: the simulations run in
// parallel, and the driver's sequential assembly then collects every
// value as a memo hit. Specs whose key is already cached (or in
// flight) are skipped without touching the hit counter — re-warming an
// overlapping sweep costs nothing and doesn't inflate the stats — as
// are non-memoizable specs, whose results could never be collected.
// (With DisableCache there is nothing to warm, so Warm is a no-op
// rather than running everything twice.)
func (r *Runner) Warm(specs []Spec) {
	if r.opt.DisableCache {
		return
	}
	var pending []Spec
	seen := map[string]bool{}
	for _, s := range specs {
		key := s.memoKey(r)
		if key == "" || seen[key] {
			continue
		}
		sh := &r.shards[shardFor(key)]
		sh.mu.Lock()
		_, cached := sh.cache[key]
		sh.mu.Unlock()
		if !cached {
			seen[key] = true
			pending = append(pending, s)
		}
	}
	r.RunBatch(pending)
}

// MemoShardSizes returns the entry count of each singleflight memo
// shard (length MemoShards). A roughly even spread is the health
// signal striping depends on; the serve /metrics endpoint exports it
// per shard. Safe to call while runs are in flight — each shard is
// read under its own lock, so the snapshot is per-shard consistent.
func (r *Runner) MemoShardSizes() []int {
	out := make([]int, MemoShards)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		out[i] = len(sh.cache)
		sh.mu.Unlock()
	}
	return out
}

// Stats is a snapshot of the engine's execution counters.
type Stats struct {
	// Parallelism is the effective worker count.
	Parallelism int
	// Simulations counts machine runs actually executed.
	Simulations uint64
	// MemoHits counts requests satisfied without a new simulation
	// (cached results and singleflight joins on in-flight runs).
	MemoHits uint64
	// DiskHits counts results loaded from the persistent store
	// (Options.CacheDir) instead of simulated. Disk hits are not also
	// memo hits: the first request for a key that lands on disk counts
	// here, later in-process requests for it count as memo hits.
	DiskHits uint64
	// BusySeconds is summed host time spent inside simulations; with
	// Simulations it sizes the work the memo cache and worker pool
	// saved. BusySeconds / elapsed wall time is the effective parallel
	// speedup over a serial engine.
	BusySeconds float64
	// Phases breaks engine time down by named phase (sorted by name):
	// simulation phases labeled by the submitting batch ("probe",
	// "oracle", "resim", plain "sim"), engine overheads ("memo-wait",
	// "disk-load", "disk-save", "queue-wait"), and upper-layer work
	// added through Runner.AddPhase ("compile", "predict", "episode").
	// Wall-clock attribution only — never an input to any result.
	Phases []PhaseStat
	// QueueDepth and ActiveWorkers are instantaneous gauges: batch
	// items awaiting a worker, and workers inside a simulation, at
	// snapshot time. Both are zero between batches.
	QueueDepth    int
	ActiveWorkers int
}

// PhaseStat is one phase's share of engine activity.
type PhaseStat struct {
	Name    string
	Count   uint64
	Seconds float64
}

// Delta returns the counter movement from before to s (Parallelism and
// the gauges carry over unchanged; phases subtract by name, dropping
// phases with no movement). CLI footers and the core session report
// per-run engine activity as deltas around a run.
func (s Stats) Delta(before Stats) Stats {
	prev := make(map[string]PhaseStat, len(before.Phases))
	for _, p := range before.Phases {
		prev[p.Name] = p
	}
	var phases []PhaseStat
	for _, p := range s.Phases {
		d := PhaseStat{
			Name:    p.Name,
			Count:   p.Count - prev[p.Name].Count,
			Seconds: p.Seconds - prev[p.Name].Seconds,
		}
		if d.Count > 0 || d.Seconds > 0 {
			phases = append(phases, d)
		}
	}
	return Stats{
		Parallelism:   s.Parallelism,
		Simulations:   s.Simulations - before.Simulations,
		MemoHits:      s.MemoHits - before.MemoHits,
		DiskHits:      s.DiskHits - before.DiskHits,
		BusySeconds:   s.BusySeconds - before.BusySeconds,
		Phases:        phases,
		QueueDepth:    s.QueueDepth,
		ActiveWorkers: s.ActiveWorkers,
	}
}

// Stats returns the runner's counters (shared ones, if Options.Counters
// linked several runners). Deltas around an experiment give
// per-experiment speedup: (busy after - busy before) / wall time. Every
// counter is read with an atomic load, so Stats is safe to call from
// any goroutine while runs are in flight — progress pollers (the serve
// status endpoint) read it concurrently with the worker pool.
func (r *Runner) Stats() Stats {
	return Stats{
		Parallelism:   r.opt.parallelism(),
		Simulations:   r.ctr.sims.Load(),
		MemoHits:      r.ctr.hits.Load(),
		DiskHits:      r.ctr.diskHits.Load(),
		BusySeconds:   time.Duration(r.ctr.busyNanos.Load()).Seconds(),
		Phases:        r.ctr.phaseStats(),
		QueueDepth:    int(r.ctr.queueDepth.Load()),
		ActiveWorkers: int(r.ctr.activeWorkers.Load()),
	}
}
