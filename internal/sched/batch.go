package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
)

// RunBatch executes all specs and returns their results in submission
// order, fanning the work across Options.Parallelism workers. Identical
// specs submitted together are deduplicated by the singleflight memo
// cache — one runs, the rest share its result — so drivers can submit a
// whole figure's sweep without tracking which runs overlap.
//
// Each batch spins up its own bounded worker set rather than sharing a
// runner-level pool, so nested batches (a driver batching pairs whose
// assembly calls partition.BestBiased, which batches its own sweep)
// can never deadlock waiting for each other's workers.
func (r *Runner) RunBatch(specs []Spec) []*machine.Result {
	out := make([]*machine.Result, len(specs))

	// Deduplicate memoizable specs by key before fanning out: a worker
	// that picked up a duplicate would otherwise park on the flight its
	// own batch just started, running the batch below Parallelism.
	// Each distinct work item runs once and fans its result out to
	// every submission slot that asked for it.
	type item struct {
		spec    Spec
		targets []int
	}
	var items []*item
	byKey := map[string]*item{}
	for i, s := range specs {
		key := ""
		if !r.opt.DisableCache {
			key = s.memoKey(r)
		}
		if key != "" {
			if it, ok := byKey[key]; ok {
				it.targets = append(it.targets, i)
				r.ctr.hits.Add(1)
				continue
			}
		}
		it := &item{spec: s, targets: []int{i}}
		if key != "" {
			byKey[key] = it
		}
		items = append(items, it)
	}

	fill := func(it *item, res *machine.Result) {
		for _, t := range it.targets {
			out[t] = res
		}
	}
	workers := r.opt.parallelism()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, it := range items {
			fill(it, r.Run(it.spec))
		}
		return out
	}
	// A panicking spec (an experiment-construction bug) must surface on
	// the submitting goroutine, as it would serially — not kill the
	// process from an unrecoverable worker goroutine. Workers capture
	// the first panic and stop claiming further work; the caller
	// re-raises it after the barrier.
	var next atomic.Int64
	var wg sync.WaitGroup
	var aborted atomic.Bool
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
					aborted.Store(true)
				}
			}()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				fill(items[i], r.Run(items[i].spec))
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Sweep generates n specs and runs them as one batch, returning results
// in index order. It is RunBatch for the common "iterate a parameter"
// shape: Sweep(len(points), func(i int) Spec {...}).
func (r *Runner) Sweep(n int, gen func(i int) Spec) []*machine.Result {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = gen(i)
	}
	return r.RunBatch(specs)
}

// Warm submits specs for execution and discards the results. Drivers
// call it with a figure's full sweep up front: the simulations run in
// parallel, and the driver's sequential assembly then collects every
// value as a memo hit. Specs whose key is already cached (or in
// flight) are skipped without touching the hit counter — re-warming an
// overlapping sweep costs nothing and doesn't inflate the stats — as
// are non-memoizable specs, whose results could never be collected.
// (With DisableCache there is nothing to warm, so Warm is a no-op
// rather than running everything twice.)
func (r *Runner) Warm(specs []Spec) {
	if r.opt.DisableCache {
		return
	}
	var pending []Spec
	seen := map[string]bool{}
	r.mu.Lock()
	for _, s := range specs {
		key := s.memoKey(r)
		if key == "" || seen[key] {
			continue
		}
		if _, ok := r.cache[key]; !ok {
			seen[key] = true
			pending = append(pending, s)
		}
	}
	r.mu.Unlock()
	r.RunBatch(pending)
}

// Stats is a snapshot of the engine's execution counters.
type Stats struct {
	// Parallelism is the effective worker count.
	Parallelism int
	// Simulations counts machine runs actually executed.
	Simulations uint64
	// MemoHits counts requests satisfied without a new simulation
	// (cached results and singleflight joins on in-flight runs).
	MemoHits uint64
	// DiskHits counts results loaded from the persistent store
	// (Options.CacheDir) instead of simulated. Disk hits are not also
	// memo hits: the first request for a key that lands on disk counts
	// here, later in-process requests for it count as memo hits.
	DiskHits uint64
	// BusySeconds is summed host time spent inside simulations; with
	// Simulations it sizes the work the memo cache and worker pool
	// saved. BusySeconds / elapsed wall time is the effective parallel
	// speedup over a serial engine.
	BusySeconds float64
}

// Delta returns the counter movement from before to s (Parallelism
// carries over unchanged). CLI footers and the core session report
// per-run engine activity as deltas around a run.
func (s Stats) Delta(before Stats) Stats {
	return Stats{
		Parallelism: s.Parallelism,
		Simulations: s.Simulations - before.Simulations,
		MemoHits:    s.MemoHits - before.MemoHits,
		DiskHits:    s.DiskHits - before.DiskHits,
		BusySeconds: s.BusySeconds - before.BusySeconds,
	}
}

// Stats returns the runner's counters (shared ones, if Options.Counters
// linked several runners). Deltas around an experiment give
// per-experiment speedup: (busy after - busy before) / wall time. Every
// counter is read with an atomic load, so Stats is safe to call from
// any goroutine while runs are in flight — progress pollers (the serve
// status endpoint) read it concurrently with the worker pool.
func (r *Runner) Stats() Stats {
	return Stats{
		Parallelism: r.opt.parallelism(),
		Simulations: r.ctr.sims.Load(),
		MemoHits:    r.ctr.hits.Load(),
		DiskHits:    r.ctr.diskHits.Load(),
		BusySeconds: time.Duration(r.ctr.busyNanos.Load()).Seconds(),
	}
}
