package sched

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestStatsPollDuringRun pins the progress-polling contract the serve
// status endpoint relies on: Stats may be read from any goroutine while
// a batch is executing on the worker pool. Under -race (CI's test job)
// this fails loudly if any counter read is not an atomic load.
func TestStatsPollDuringRun(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 4})
	app := workload.MustByName("ferret")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for {
			st := r.Stats()
			// Counters only move forward; a mid-run snapshot must never
			// regress an earlier one.
			if st.Simulations < last.Simulations || st.MemoHits < last.MemoHits ||
				st.DiskHits < last.DiskHits || st.BusySeconds < last.BusySeconds {
				t.Errorf("stats regressed mid-run: %+v after %+v", st, last)
				return
			}
			last = st
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	specs := make([]Spec, 0, 8)
	for threads := 1; threads <= 4; threads++ {
		for _, ways := range []int{0, 6} {
			specs = append(specs, SingleSpec{App: app, Threads: threads, Ways: ways})
		}
	}
	// Submit the batch twice: the second pass lands entirely on the memo
	// cache, so the poller also observes hit-counter movement.
	r.RunBatch(specs)
	r.RunBatch(specs)
	close(stop)
	wg.Wait()

	st := r.Stats()
	if st.Simulations == 0 || st.MemoHits == 0 {
		t.Fatalf("batch ran nothing: %+v", st)
	}
	if d := st.Delta(Stats{Simulations: 1}); d.Simulations != st.Simulations-1 {
		t.Fatalf("Delta arithmetic broken: %+v", d)
	}
}
