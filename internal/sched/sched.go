// Package sched runs consolidation scenarios on the simulated platform:
// general N-job mixes (MixSpec) pinned to disjoint cores, of which an
// application alone, a foreground/background pair, and a foreground
// with several background peers (the paper's taskset methodology,
// §2.1/§5) are the canonical shapes. It owns placement, scaling, and the
// experiment execution engine: a worker pool fans independent
// simulations across CPUs (Options.Parallelism, default GOMAXPROCS)
// while a singleflight-memoized result cache guarantees each distinct
// configuration is simulated exactly once, so experiment drivers can
// sweep large allocation spaces without re-simulating identical
// configurations.
//
// Every simulation is a pure function of its spec: machine.New builds a
// fresh platform per run, and all randomness comes from rng streams
// named by the spec (application, seed label, thread index). Parallel
// execution therefore produces byte-identical results to sequential
// execution — RunBatch returns results in submission order regardless
// of completion order, and sched's tests assert Parallelism 1 and 8
// agree exactly.
package sched

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// DefaultScale is the default instruction-count multiplier applied to
// the catalog's nominal counts. Experiments pass larger values for
// calibration-quality runs; benches pass smaller ones.
const DefaultScale = 2e-3

// QuickScale is the reduced instruction scale smoke runs share — the
// CLI's -quick flag and the scenario/fleet golden tests all use this
// one constant, so goldens stay exactly what a -quick run prints.
// Enough to exercise every policy and placement path in seconds, too
// little for publication-quality aggregates.
const QuickScale = 3e-4

// Options configure a runner.
type Options struct {
	// Machine is the platform template; zero value means machine.Default().
	Machine *machine.Config
	// Scale multiplies nominal instruction counts (0 = DefaultScale).
	Scale float64
	// DisableCache bypasses the memoized run cache (in-memory and disk).
	DisableCache bool
	// CacheDir, when non-empty, layers a persistent content-addressed
	// result store under the in-memory memo cache: results are written
	// as JSON records keyed by memo key + EngineVersion, and later
	// runners — including other processes — pointing at the same
	// directory skip those simulations entirely. The directory is
	// created if needed; an unusable directory panics at New (callers
	// pass user input through ValidateCacheDir for a graceful error).
	CacheDir string
	// Parallelism is the worker count RunBatch and Sweep fan
	// simulations across (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// Counters, if non-nil, is where this runner accumulates its
	// execution stats. Pass another runner's Counters() to report
	// several runners (e.g. an ablation's modified platforms) as one
	// engine. Nil means private counters.
	Counters *Counters
	// Tracer, if non-nil, receives a span per executed simulation and
	// per batch. Nil (the default) is a strict no-op: the hot path pays
	// one nil check and no timing ever influences results — memo keys,
	// reports, and goldens are identical with tracing on or off.
	Tracer *obs.Tracer
	// WarnLog receives non-fatal operational warnings — today only the
	// once-per-runner notice that persistent-store writes are failing
	// (full disk, revoked permissions). Nil means os.Stderr. Warnings
	// never influence results.
	WarnLog io.Writer
}

func (o Options) machineConfig() machine.Config {
	if o.Machine != nil {
		return *o.Machine
	}
	return machine.Default()
}

func (o Options) scale() float64 {
	if o.Scale > 0 {
		return o.Scale
	}
	return DefaultScale
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Spec is one runnable scenario. MixSpec is the general form — an
// arbitrary N-job mix — and SingleSpec, PairSpec, and MultiSpec are
// thin wrappers that build the canonical §5 mixes, so every spec type
// executes through one path and equivalent configurations share one
// memo entry. A spec fully determines its simulation — the machine is
// built fresh per run and every rng stream is named by spec fields — so
// running a spec is a pure function and results can be memoized and
// computed on any worker.
type Spec interface {
	// memoKey returns the memoization key, or "" when the run must not
	// be memoized (e.g. a Setup hook closing over external state).
	memoKey(r *Runner) string
	// execute builds a fresh machine and runs the scenario.
	execute(r *Runner) *machine.Result
}

// flight is one memo entry: a simulation that is running or finished.
// Waiters block on done; res is immutable once done is closed.
type flight struct {
	done chan struct{}
	res  *machine.Result
}

// Counters accumulates engine activity. Runners normally own a private
// set; pass one runner's Counters() to another's Options to account
// for both as one engine (the ablation studies do this so their
// private-platform runners show up in the shared footer).
type Counters struct {
	sims      atomic.Uint64 // simulations actually executed
	hits      atomic.Uint64 // memo lookups satisfied without a new run
	diskHits  atomic.Uint64 // results loaded from the persistent store
	busyNanos atomic.Int64  // summed host time inside simulations

	// Per-phase attribution: name -> *phaseAccum. A sync.Map keyed by
	// the handful of distinct phase names a process uses; steady-state
	// increments are a lock-free Load plus two atomic adds.
	phases sync.Map

	// Engine gauges: batch items submitted but not yet claimed, and
	// workers currently inside a simulation. Progress pollers (serve
	// /metrics) read them while batches are in flight.
	queueDepth    atomic.Int64
	activeWorkers atomic.Int64
}

// phaseAccum is one phase's counters.
type phaseAccum struct {
	count atomic.Uint64
	nanos atomic.Int64
}

// Phase names the engine itself accounts. Layers above add their own
// (scenario/fleet phases like "probe", "oracle", "resim", "compile",
// "predict", "episode") through Runner.AddPhase and batch labels.
const (
	// PhaseSim is unlabeled simulation time (runs outside any batch
	// phase).
	PhaseSim = "sim"
	// PhaseMemoWait is time spent joined on another caller's in-flight
	// run — the memo-contention signal.
	PhaseMemoWait = "memo-wait"
	// PhaseDiskLoad / PhaseDiskSave bound persistent-store I/O.
	PhaseDiskLoad = "disk-load"
	PhaseDiskSave = "disk-save"
	// PhaseQueueWait sums, per executed batch item, the delay between
	// batch submission and a worker claiming the item.
	PhaseQueueWait = "queue-wait"
)

func (c *Counters) phase(name string) *phaseAccum {
	if p, ok := c.phases.Load(name); ok {
		return p.(*phaseAccum)
	}
	p, _ := c.phases.LoadOrStore(name, &phaseAccum{})
	return p.(*phaseAccum)
}

func (c *Counters) addPhase(name string, d time.Duration) {
	p := c.phase(name)
	p.count.Add(1)
	p.nanos.Add(int64(d))
}

// phaseStats snapshots the per-phase accumulators, sorted by name.
func (c *Counters) phaseStats() []PhaseStat {
	var out []PhaseStat
	c.phases.Range(func(k, v any) bool {
		p := v.(*phaseAccum)
		out = append(out, PhaseStat{
			Name:    k.(string),
			Count:   p.count.Load(),
			Seconds: time.Duration(p.nanos.Load()).Seconds(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MemoShards is the number of lock stripes the in-memory singleflight
// cache is split across. One global mutex serializes every memo lookup
// once fleet oracles, policy episodes, and server runs overlap; keyed
// striping keeps lookups for distinct keys on distinct locks, so the
// memo-wait phase measures genuine singleflight joins rather than lock
// convoy. 32 comfortably exceeds any worker count the engine runs.
const MemoShards = 32

// memoShard is one stripe of the singleflight cache.
type memoShard struct {
	mu    sync.Mutex
	cache map[string]*flight
}

// shardFor maps a memo key to its stripe (inlined FNV-1a: memo keys
// are long and this runs on every cached lookup).
func shardFor(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h % MemoShards
}

// Runner executes scenarios. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Runner struct {
	opt   Options
	ctr   *Counters
	store *diskStore // nil without Options.CacheDir

	warnOnce sync.Once // gates the store-write warning to one line per runner

	shards [MemoShards]memoShard
}

// warnStoreWrite reports a failed persistent-store write, once per
// runner: the first failure explains the situation, repeats of what is
// almost certainly the same full disk or permission problem stay
// quiet, and the run itself continues unaffected.
func (r *Runner) warnStoreWrite(err error) {
	r.warnOnce.Do(func() {
		w := r.opt.WarnLog
		if w == nil {
			w = os.Stderr
		}
		fmt.Fprintf(w, "warning: sched: result store write failed (run continues, results not persisted): %v\n", err)
	})
}

// New builds a runner. An Options.CacheDir that cannot be created
// panics — validate user-supplied paths with ValidateCacheDir first.
func New(opt Options) *Runner {
	ctr := opt.Counters
	if ctr == nil {
		ctr = &Counters{}
	}
	r := &Runner{opt: opt, ctr: ctr}
	for i := range r.shards {
		r.shards[i].cache = make(map[string]*flight)
	}
	if opt.CacheDir != "" && !opt.DisableCache {
		store, err := newDiskStore(opt.CacheDir)
		if err != nil {
			panic(err.Error())
		}
		r.store = store
	}
	return r
}

// ValidateCacheDir checks that dir can serve as a persistent result
// store (creating it if needed), returning a descriptive error for CLI
// front ends to surface before they build a runner.
func ValidateCacheDir(dir string) error {
	_, err := newDiskStore(dir)
	return err
}

// Scale returns the effective instruction scale.
func (r *Runner) Scale() float64 { return r.opt.scale() }

// MachineConfig returns the platform template specs run on (the
// scenario compiler plans placements against it).
func (r *Runner) MachineConfig() machine.Config { return r.opt.machineConfig() }

// Parallelism returns the effective worker count.
func (r *Runner) Parallelism() int { return r.opt.parallelism() }

// Counters returns the runner's stat accumulator, shareable through
// Options.Counters.
func (r *Runner) Counters() *Counters { return r.ctr }

// Tracer returns the runner's tracer — nil when tracing is off, which
// every obs call site treats as a no-op.
func (r *Runner) Tracer() *obs.Tracer { return r.opt.Tracer }

// AddPhase attributes an already-measured duration to a named phase in
// the engine's per-phase accounting. Layers above the engine (scenario
// compile, fleet prediction, policy episodes) use it so their
// non-simulation work shows up next to simulation phases in Stats and
// envelopes. Timing recorded here never feeds back into results.
func (r *Runner) AddPhase(name string, d time.Duration) {
	r.ctr.addPhase(name, d)
}

// Run executes one spec through the singleflight memo cache: the first
// request for a key runs the simulation, concurrent requests for the
// same key wait for that one in-flight run, and later requests return
// the cached result. Non-memoizable specs always execute.
func (r *Runner) Run(s Spec) *machine.Result {
	return r.run(s, runCtx{})
}

// runCtx carries batch-level observability context down to the point
// a simulation executes: which phase it accounts under and which span
// its trace record nests in. The zero value (direct Run calls) means
// the generic "sim" phase and a root-level span.
type runCtx struct {
	phase  string
	parent obs.SpanID
}

func (r *Runner) run(s Spec, rc runCtx) *machine.Result {
	key := ""
	if !r.opt.DisableCache {
		key = s.memoKey(r)
	}
	if key == "" {
		return r.measure(s, rc)
	}
	sh := &r.shards[shardFor(key)]
	for {
		sh.mu.Lock()
		if f, ok := sh.cache[key]; ok {
			sh.mu.Unlock()
			r.ctr.hits.Add(1)
			t0 := time.Now()
			<-f.done
			r.ctr.addPhase(PhaseMemoWait, time.Since(t0))
			if f.res != nil {
				return f.res
			}
			// The run we joined panicked and its entry was evicted;
			// retry so this caller re-executes and observes the panic
			// itself rather than returning a nil result.
			continue
		}
		f := &flight{done: make(chan struct{})}
		sh.cache[key] = f
		sh.mu.Unlock()
		return r.runFlight(sh, key, f, s, rc)
	}
}

// runFlight executes the simulation owning a flight entry. If the spec
// panics (e.g. an invalid partition — an experiment-construction bug),
// the poisoned entry is evicted before waiters are released, so later
// requests for the key re-execute and panic too instead of
// deadlocking on a never-closed flight.
//
// The persistent store sits exactly here — under the in-memory map,
// inside the flight — so each key is consulted and written at most once
// per process, and concurrent requests for a key share one disk read
// the same way they share one simulation.
func (r *Runner) runFlight(sh *memoShard, key string, f *flight, s Spec, rc runCtx) *machine.Result {
	defer func() {
		if f.res == nil {
			sh.mu.Lock()
			delete(sh.cache, key)
			sh.mu.Unlock()
		}
		close(f.done)
	}()
	if r.store != nil {
		t0 := time.Now()
		res, ok := r.store.load(key)
		r.ctr.addPhase(PhaseDiskLoad, time.Since(t0))
		if ok {
			r.ctr.diskHits.Add(1)
			f.res = res
			return f.res
		}
	}
	f.res = r.measure(s, rc)
	if r.store != nil {
		t0 := time.Now()
		if err := r.store.save(key, f.res); err != nil {
			r.warnStoreWrite(err)
		}
		r.ctr.addPhase(PhaseDiskSave, time.Since(t0))
	}
	return f.res
}

// measure executes a spec and accounts for it in the runner stats.
// The simulation is timed exactly once; the same duration feeds the
// busy counter, the phase accumulator, and the trace record, so trace
// totals and Stats.Phases agree to the nanosecond.
func (r *Runner) measure(s Spec, rc runCtx) *machine.Result {
	t0 := time.Now()
	res := s.execute(r)
	d := time.Since(t0)
	r.ctr.busyNanos.Add(int64(d))
	r.ctr.sims.Add(1)
	phase := rc.phase
	if phase == "" {
		phase = PhaseSim
	}
	r.ctr.addPhase(phase, d)
	if tr := r.opt.Tracer; tr != nil {
		tr.Record("simulate", rc.parent, t0, d,
			obs.String("phase", phase), obs.String("apps", resultApps(res)))
	}
	return res
}

// resultApps names a result's jobs for span attribution ("mcf+ferret").
func resultApps(res *machine.Result) string {
	if res == nil || len(res.Jobs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := range res.Jobs {
		if i > 0 {
			sb.WriteByte('+')
		}
		sb.WriteString(res.Jobs[i].Name)
	}
	return sb.String()
}

// SingleSpec describes an application running alone. It is a thin
// wrapper over the general MixSpec: a one-job mix with pack placement
// from slot 0 and the first Ways LLC ways.
type SingleSpec struct {
	App     *workload.Profile
	Threads int // capped by the profile's MaxThreads
	Ways    int // LLC ways allocated to it (0 = all 12)
	// Prefetch overrides the platform prefetcher configuration.
	Prefetch *prefetch.Config
}

// toMix builds the scenario this spec denotes. Threads fill both
// hyperthreads of each core before the next core (the paper's
// assignment order).
func (s SingleSpec) toMix(r *Runner) MixSpec {
	threads := CapThreads(s.App, s.Threads)
	slots := make([]int, threads)
	for i := range slots {
		slots[i] = i // slot order = HT0/HT1 of core 0, then core 1, ...
	}
	if s.Ways < 0 || s.Ways > r.opt.machineConfig().Hier.LLC.Assoc {
		panic(fmt.Sprintf("sched: invalid single allocation of %d ways", s.Ways))
	}
	return MixSpec{
		Jobs: []MixJob{{
			App: s.App, Threads: threads, Slots: slots,
			Seed: "single", WayLim: s.Ways,
		}},
		Prefetch: s.Prefetch,
	}
}

func (s SingleSpec) memoKey(r *Runner) string { return s.toMix(r).memoKey(r) }

func (s SingleSpec) execute(r *Runner) *machine.Result { return s.toMix(r).execute(r) }

// RunSingle executes an application alone on the machine: threads fill
// both hyperthreads of each core before the next core (the paper's
// assignment order), and every core the app runs on gets the first Ways
// LLC ways. Results are memoized.
func (r *Runner) RunSingle(s SingleSpec) *machine.Result {
	return r.Run(s)
}

// PairMode selects how a foreground/background pair is run.
type PairMode int

const (
	// BackgroundLoop restarts the background job continuously; the run
	// ends when the foreground completes (Figs 8, 9, 12, 13).
	BackgroundLoop PairMode = iota
	// BothOnce runs both jobs exactly once; the run ends when both have
	// completed (Figs 10, 11 energy/throughput vs sequential).
	BothOnce
)

// PairSpec describes a co-scheduled foreground/background pair. The
// foreground is pinned to cores 0-1 (4 hyperthreads), the background to
// cores 2-3, matching §5's placement.
type PairSpec struct {
	Fg, Bg *workload.Profile
	// FgWays/BgWays give each side's LLC allocation. Both zero = fully
	// shared cache (no partitioning). Non-zero values must sum to at
	// most the LLC associativity; the masks are disjoint: the
	// foreground gets the low ways, the background the high ways.
	FgWays, BgWays int
	Mode           PairMode
	// Setup, if non-nil, runs after jobs are scheduled and before the
	// run starts; the dynamic partitioning controller hooks in here.
	// Runs with a Setup hook are not memoized (the hook may close over
	// external state), but they may still be batched: each batched run
	// gets its own machine, and RunBatch's completion barrier makes the
	// hook's writes visible to the caller.
	Setup func(m *machine.Machine, fg, bg *machine.Job)
	// PolicyKey declares the Setup hook a pure function of the pair and
	// this online-policy identity, making the run memoizable (see
	// MixSpec.PolicyKey).
	PolicyKey string
	// Prefetch overrides the platform prefetcher configuration.
	Prefetch *prefetch.Config
}

// toMix builds the scenario this spec denotes: a two-job pack-placed
// mix, the foreground in the low ways and the background in the high
// ways when a static split is given.
func (s PairSpec) toMix(r *Runner) MixSpec {
	cfg := r.opt.machineConfig()
	assoc := cfg.Hier.LLC.Assoc
	var fgFirst, fgLim, bgFirst, bgLim int
	switch {
	case s.FgWays == 0 && s.BgWays == 0:
		// Fully shared: both sides may replace anywhere.
	case s.FgWays > 0 && s.BgWays > 0 && s.FgWays+s.BgWays <= assoc:
		fgFirst, fgLim = 0, s.FgWays
		bgFirst, bgLim = assoc-s.BgWays, assoc
	default:
		panic(fmt.Sprintf("sched: invalid pair partition %d+%d ways of %d",
			s.FgWays, s.BgWays, assoc))
	}
	mix := MixSpec{
		Jobs: []MixJob{
			{App: s.Fg, Threads: CapThreads(s.Fg, 4), Slots: cfg.SlotsForCores(0, 1),
				Seed: "fg", WayFirst: fgFirst, WayLim: fgLim},
			{App: s.Bg, Threads: CapThreads(s.Bg, 4), Slots: cfg.SlotsForCores(2, 3),
				Background: s.Mode == BackgroundLoop,
				Seed:       "bg", WayFirst: bgFirst, WayLim: bgLim},
		},
		Prefetch: s.Prefetch,
	}
	if s.Setup != nil {
		setup := s.Setup
		mix.Setup = func(m *machine.Machine, jobs []*machine.Job) {
			setup(m, jobs[0], jobs[1])
		}
		mix.PolicyKey = s.PolicyKey
	}
	return mix
}

func (s PairSpec) memoKey(r *Runner) string { return s.toMix(r).memoKey(r) }

func (s PairSpec) execute(r *Runner) *machine.Result { return s.toMix(r).execute(r) }

// RunPair executes a pair scenario. Runs with a Setup hook are not
// memoized (the hook may close over external state).
func (r *Runner) RunPair(s PairSpec) *machine.Result {
	return r.Run(s)
}

// AloneHalf returns the foreground baseline of §5.1: the application
// alone on 2 cores / 4 hyperthreads with the full LLC.
func (r *Runner) AloneHalf(app *workload.Profile) *machine.Result {
	return r.RunSingle(AloneHalfSpec(app))
}

// AloneHalfSpec is the spec AloneHalf runs, exposed so drivers can
// batch the baseline together with the sweeps that normalize to it.
func AloneHalfSpec(app *workload.Profile) SingleSpec {
	return SingleSpec{App: app, Threads: 4}
}

// AloneWhole returns the sequential baseline of §5.3: the application
// alone on the whole machine (8 hyperthreads, full LLC).
func (r *Runner) AloneWhole(app *workload.Profile) *machine.Result {
	return r.RunSingle(AloneWholeSpec(app))
}

// AloneWholeSpec is the spec AloneWhole runs.
func AloneWholeSpec(app *workload.Profile) SingleSpec {
	return SingleSpec{App: app, Threads: 8}
}

// CapThreads returns want clamped to [1, p.MaxThreads] — the rule every
// spec applies to requested thread counts. Exported so experiment
// drivers planning batch sweeps derive the same operating points the
// engine will actually run.
func CapThreads(p *workload.Profile, want int) int {
	if want < 1 {
		want = 1
	}
	if want > p.MaxThreads {
		return p.MaxThreads
	}
	return want
}

// pfKey renders a prefetch override for memo keys. It is called per
// submitted spec (RunBatch dedup, Warm), so it avoids fmt: the output is
// the same "truefalse..." concatenation Sprintf("%v...") produced.
func pfKey(p *prefetch.Config) string {
	if p == nil {
		return "def"
	}
	var sb strings.Builder
	sb.Grow(20)
	sb.WriteString(strconv.FormatBool(p.DCUIP))
	sb.WriteString(strconv.FormatBool(p.DCUStreamer))
	sb.WriteString(strconv.FormatBool(p.MLCSpatial))
	sb.WriteString(strconv.FormatBool(p.MLCStreamer))
	return sb.String()
}
