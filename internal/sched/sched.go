// Package sched runs consolidation scenarios on the simulated platform:
// an application alone with a given thread count and LLC way allocation,
// or a foreground/background pair pinned to disjoint cores (the paper's
// taskset methodology, §2.1/§5). It owns placement, scaling, and a
// result cache so experiment drivers can sweep large allocation spaces
// without re-simulating identical configurations.
package sched

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// DefaultScale is the default instruction-count multiplier applied to
// the catalog's nominal counts. Experiments pass larger values for
// calibration-quality runs; benches pass smaller ones.
const DefaultScale = 2e-3

// Options configure a runner.
type Options struct {
	// Machine is the platform template; zero value means machine.Default().
	Machine *machine.Config
	// Scale multiplies nominal instruction counts (0 = DefaultScale).
	Scale float64
	// DisableCache bypasses the memoized run cache.
	DisableCache bool
}

func (o Options) machineConfig() machine.Config {
	if o.Machine != nil {
		return *o.Machine
	}
	return machine.Default()
}

func (o Options) scale() float64 {
	if o.Scale > 0 {
		return o.Scale
	}
	return DefaultScale
}

// Runner executes scenarios. The zero value is not usable; call New.
type Runner struct {
	opt Options

	mu    sync.Mutex
	cache map[string]*machine.Result
}

// New builds a runner.
func New(opt Options) *Runner {
	return &Runner{opt: opt, cache: make(map[string]*machine.Result)}
}

// Scale returns the effective instruction scale.
func (r *Runner) Scale() float64 { return r.opt.scale() }

// SingleSpec describes an application running alone.
type SingleSpec struct {
	App     *workload.Profile
	Threads int // capped by the profile's MaxThreads
	Ways    int // LLC ways allocated to it (0 = all 12)
	// Prefetch overrides the platform prefetcher configuration.
	Prefetch *prefetch.Config
}

// RunSingle executes an application alone on the machine: threads fill
// both hyperthreads of each core before the next core (the paper's
// assignment order), and every core the app runs on gets the first Ways
// LLC ways. Results are memoized.
func (r *Runner) RunSingle(s SingleSpec) *machine.Result {
	key := fmt.Sprintf("single|%s|t%d|w%d|pf%v|s%g",
		s.App.Name, s.Threads, s.Ways, pfKey(s.Prefetch), r.opt.scale())
	if res := r.cached(key); res != nil {
		return res
	}

	cfg := r.opt.machineConfig()
	if s.Prefetch != nil {
		cfg.Prefetch = *s.Prefetch
	}
	m := machine.New(cfg)

	threads := capThreads(s.App, s.Threads)
	slots := make([]int, threads)
	for i := range slots {
		slots[i] = i // slot order = HT0/HT1 of core 0, then core 1, ...
	}
	job := m.AddJob(machine.JobSpec{
		Profile: s.App,
		Threads: threads,
		Slots:   slots,
		Scale:   r.opt.scale(),
		Seed:    "single",
	})
	applyWays(m, job.Cores(), s.Ways)

	res := m.Run()
	r.store(key, res)
	return res
}

// PairMode selects how a foreground/background pair is run.
type PairMode int

const (
	// BackgroundLoop restarts the background job continuously; the run
	// ends when the foreground completes (Figs 8, 9, 12, 13).
	BackgroundLoop PairMode = iota
	// BothOnce runs both jobs exactly once; the run ends when both have
	// completed (Figs 10, 11 energy/throughput vs sequential).
	BothOnce
)

// PairSpec describes a co-scheduled foreground/background pair. The
// foreground is pinned to cores 0-1 (4 hyperthreads), the background to
// cores 2-3, matching §5's placement.
type PairSpec struct {
	Fg, Bg *workload.Profile
	// FgWays/BgWays give each side's LLC allocation. Both zero = fully
	// shared cache (no partitioning). Non-zero values must sum to at
	// most the LLC associativity; the masks are disjoint: the
	// foreground gets the low ways, the background the high ways.
	FgWays, BgWays int
	Mode           PairMode
	// Setup, if non-nil, runs after jobs are scheduled and before the
	// run starts; the dynamic partitioning controller hooks in here.
	Setup func(m *machine.Machine, fg, bg *machine.Job)
	// Prefetch overrides the platform prefetcher configuration.
	Prefetch *prefetch.Config
}

// RunPair executes a pair scenario. Runs with a Setup hook are not
// memoized (the hook may close over external state).
func (r *Runner) RunPair(s PairSpec) *machine.Result {
	key := ""
	if s.Setup == nil {
		key = fmt.Sprintf("pair|%s|%s|f%d|b%d|m%d|pf%v|s%g",
			s.Fg.Name, s.Bg.Name, s.FgWays, s.BgWays, s.Mode, pfKey(s.Prefetch), r.opt.scale())
		if res := r.cached(key); res != nil {
			return res
		}
	}

	cfg := r.opt.machineConfig()
	if s.Prefetch != nil {
		cfg.Prefetch = *s.Prefetch
	}
	m := machine.New(cfg)

	fgThreads := capThreads(s.Fg, 4)
	bgThreads := capThreads(s.Bg, 4)
	fg := m.AddJob(machine.JobSpec{
		Profile: s.Fg,
		Threads: fgThreads,
		Slots:   m.SlotsForCores(0, 1),
		Scale:   r.opt.scale(),
		Seed:    "fg",
	})
	bg := m.AddJob(machine.JobSpec{
		Profile:    s.Bg,
		Threads:    bgThreads,
		Slots:      m.SlotsForCores(2, 3),
		Background: s.Mode == BackgroundLoop,
		Scale:      r.opt.scale(),
		Seed:       "bg",
	})

	assoc := cfg.Hier.LLC.Assoc
	switch {
	case s.FgWays == 0 && s.BgWays == 0:
		// Fully shared: both sides may replace anywhere.
	case s.FgWays > 0 && s.BgWays > 0 && s.FgWays+s.BgWays <= assoc:
		fgMask := cache.MaskFirstN(s.FgWays)
		bgMask := cache.MaskRange(assoc-s.BgWays, assoc)
		for _, c := range fg.Cores() {
			m.Hierarchy().SetWayMask(c, fgMask)
		}
		for _, c := range bg.Cores() {
			m.Hierarchy().SetWayMask(c, bgMask)
		}
	default:
		panic(fmt.Sprintf("sched: invalid pair partition %d+%d ways of %d",
			s.FgWays, s.BgWays, assoc))
	}

	if s.Setup != nil {
		s.Setup(m, fg, bg)
	}

	res := m.Run()
	if key != "" {
		r.store(key, res)
	}
	return res
}

// AloneHalf returns the foreground baseline of §5.1: the application
// alone on 2 cores / 4 hyperthreads with the full LLC.
func (r *Runner) AloneHalf(app *workload.Profile) *machine.Result {
	return r.RunSingle(SingleSpec{App: app, Threads: 4})
}

// AloneWhole returns the sequential baseline of §5.3: the application
// alone on the whole machine (8 hyperthreads, full LLC).
func (r *Runner) AloneWhole(app *workload.Profile) *machine.Result {
	return r.RunSingle(SingleSpec{App: app, Threads: 8})
}

func capThreads(p *workload.Profile, want int) int {
	if want < 1 {
		want = 1
	}
	if want > p.MaxThreads {
		return p.MaxThreads
	}
	return want
}

// applyWays restricts each listed core's LLC replacement mask to the
// first n ways (0 = leave the full mask).
func applyWays(m *machine.Machine, cores []int, n int) {
	if n <= 0 {
		return
	}
	mask := cache.MaskFirstN(n)
	for _, c := range cores {
		m.Hierarchy().SetWayMask(c, mask)
	}
}

func (r *Runner) cached(key string) *machine.Result {
	if r.opt.DisableCache {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache[key]
}

func (r *Runner) store(key string, res *machine.Result) {
	if r.opt.DisableCache || key == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[key] = res
}

func pfKey(p *prefetch.Config) string {
	if p == nil {
		return "def"
	}
	return fmt.Sprintf("%v%v%v%v", p.DCUIP, p.DCUStreamer, p.MLCSpatial, p.MLCStreamer)
}
