package sched

import (
	"fmt"
	"strconv"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// MixJob is one job of a general N-job mix: an application instance
// with a validated slot placement, an LLC way range, and a role flag.
// The scenario layer compiles declarative job descriptions down to
// these; SingleSpec, PairSpec, and MultiSpec build them internally.
type MixJob struct {
	App *workload.Profile
	// Threads is the requested software-thread count; execution caps it
	// by the profile's parallelism (CapThreads).
	Threads int
	// Slots is the pinned hardware-thread slot list, in assignment
	// order. It must hold the capped thread count; extra entries extend
	// the reserved taskset region (bandwidth QoS follows it).
	Slots []int
	// Background marks a continuously-restarting job; at least one job
	// of a mix must be foreground or the run would never terminate.
	Background bool
	// Seed differentiates otherwise-identical job instances: it names
	// the job's rng streams, so two copies of an application with
	// different seeds execute distinct (but deterministic) traces.
	Seed string
	// WayFirst/WayLim bound the job's LLC replacement mask to ways
	// [WayFirst, WayLim). Both zero = the full cache. A non-empty range
	// must satisfy 0 <= WayFirst < WayLim <= associativity.
	WayFirst, WayLim int
}

// MixSpec is the general runnable scenario: N jobs on one platform.
// Every other spec type reduces to a MixSpec — the pair and multi
// shapes of §5 are two- and (1+N)-job mixes with pack placement — so
// the engine has exactly one execution path, and equivalent
// configurations deduplicate in the memo cache regardless of which
// spec type described them.
type MixSpec struct {
	Jobs []MixJob
	// Machine overrides the runner's platform template for this mix
	// (scenario files declaring a larger machine use this); nil keeps
	// the runner's configuration.
	Machine *machine.Config
	// Prefetch overrides the platform prefetcher configuration.
	Prefetch *prefetch.Config
	// Setup, if non-nil, runs after jobs are scheduled and before the
	// run starts (online partition policies attach their decision loop
	// here; profiling runs attach shadow monitors). Mixes with a Setup
	// hook are not memoized unless PolicyKey or ProbeKey is also set.
	Setup func(m *machine.Machine, jobs []*machine.Job)
	// PolicyKey names the online partition policy the Setup hook
	// attaches (partition.RunKey: policy name, canonical params, and
	// sampling interval). Setting it declares the hook a pure function
	// of the mix and this key, which makes the run memoizable — and
	// keys it so cached results can never alias across policies or
	// parameterizations. Leave empty for hooks that close over external
	// state (samplers, controller out-params): those runs always
	// execute.
	PolicyKey string
	// ProbeKey names the shadow monitor the Setup hook attaches
	// (model.ProbeKey: monitor kind, model version, sampling stride).
	// Like PolicyKey it declares the hook pure and makes the run
	// memoizable, with a key segment that guarantees probing runs never
	// alias unprobed runs — or runs probed under a different model
	// version — in the memo or the persistent store.
	ProbeKey string
}

// memoKey renders the canonical key: every input the execution depends
// on — platform, scale, prefetchers, and each job's identity, capped
// threads, placement, role, seed, and way range. Specs that reduce to
// the same mix therefore share one cache entry.
//
// Keys are built with strconv appends rather than fmt: RunBatch and
// Warm render one per submitted spec before any simulation runs, so key
// construction sits on the engine's warm path. The rendered text is
// unchanged from the fmt version (floats use the same shortest
// round-trip form as %g, bools the same true/false as %v); only the
// uncommon Machine-override branch still pays for reflection.
func (s MixSpec) memoKey(r *Runner) string {
	if s.Setup != nil && s.PolicyKey == "" && s.ProbeKey == "" {
		return ""
	}
	buf := make([]byte, 0, 192)
	buf = append(buf, "mix|s"...)
	buf = strconv.AppendFloat(buf, r.opt.scale(), 'g', -1, 64)
	buf = append(buf, "|pf"...)
	buf = append(buf, pfKey(s.Prefetch)...)
	buf = append(buf, "|m"...)
	if s.Machine != nil {
		buf = fmt.Appendf(buf, "%+v", *s.Machine)
	} else {
		buf = append(buf, "def"...)
	}
	for _, j := range s.Jobs {
		buf = append(buf, '|')
		buf = append(buf, j.App.Name...)
		buf = append(buf, "|t"...)
		buf = strconv.AppendInt(buf, int64(CapThreads(j.App, j.Threads)), 10)
		buf = append(buf, "|sl"...)
		for k, slot := range j.Slots {
			if k > 0 {
				buf = append(buf, '.')
			}
			buf = strconv.AppendInt(buf, int64(slot), 10)
		}
		// The seed is the one free-form field; length-prefix it so a
		// seed containing the key grammar cannot forge another mix's
		// key and poison the singleflight cache.
		buf = append(buf, "|bg"...)
		buf = strconv.AppendBool(buf, j.Background)
		buf = append(buf, "|sd"...)
		buf = strconv.AppendInt(buf, int64(len(j.Seed)), 10)
		buf = append(buf, ':')
		buf = append(buf, j.Seed...)
		buf = append(buf, "|w"...)
		buf = strconv.AppendInt(buf, int64(j.WayFirst), 10)
		buf = append(buf, '-')
		buf = strconv.AppendInt(buf, int64(j.WayLim), 10)
	}
	if s.PolicyKey != "" {
		// Length-prefixed like seeds: policy params are free-form, and
		// a forged params string must not be able to alias another key.
		buf = append(buf, "|pol"...)
		buf = strconv.AppendInt(buf, int64(len(s.PolicyKey)), 10)
		buf = append(buf, ':')
		buf = append(buf, s.PolicyKey...)
	}
	if s.ProbeKey != "" {
		buf = append(buf, "|prb"...)
		buf = strconv.AppendInt(buf, int64(len(s.ProbeKey)), 10)
		buf = append(buf, ':')
		buf = append(buf, s.ProbeKey...)
	}
	return string(buf)
}

// config returns the platform this mix runs on.
func (s MixSpec) config(r *Runner) machine.Config {
	cfg := r.opt.machineConfig()
	if s.Machine != nil {
		cfg = *s.Machine
	}
	if s.Prefetch != nil {
		cfg.Prefetch = *s.Prefetch
	}
	return cfg
}

// wayMask returns the job's LLC replacement mask, or ok=false for the
// full cache. Invalid ranges panic — mixes are validated at
// construction (scenario compile, legacy wrappers), so this is an
// engine-construction bug.
func (j MixJob) wayMask(assoc int) (cache.WayMask, bool) {
	if j.WayFirst == 0 && j.WayLim == 0 {
		return 0, false
	}
	if j.WayFirst < 0 || j.WayFirst >= j.WayLim || j.WayLim > assoc {
		panic(fmt.Sprintf("sched: job %s invalid way range [%d,%d) of %d",
			j.App.Name, j.WayFirst, j.WayLim, assoc))
	}
	return cache.MaskRange(j.WayFirst, j.WayLim), true
}

func (s MixSpec) execute(r *Runner) *machine.Result {
	if len(s.Jobs) == 0 {
		panic("sched: empty mix")
	}
	cfg := s.config(r)
	m := machine.New(cfg)

	jobs := make([]*machine.Job, len(s.Jobs))
	for i, j := range s.Jobs {
		job, err := m.AddJobChecked(machine.JobSpec{
			Profile:    j.App,
			Threads:    CapThreads(j.App, j.Threads),
			Slots:      j.Slots,
			Background: j.Background,
			Scale:      r.opt.scale(),
			Seed:       j.Seed,
		})
		if err != nil {
			panic("sched: " + err.Error())
		}
		jobs[i] = job
	}

	assoc := cfg.Hier.LLC.Assoc
	for i, j := range s.Jobs {
		if mask, ok := j.wayMask(assoc); ok {
			for _, c := range jobs[i].Cores() {
				m.Hierarchy().SetWayMask(c, mask)
			}
		}
	}

	if s.Setup != nil {
		s.Setup(m, jobs)
	}
	return m.Run()
}

// RunMix executes a general N-job mix. Results are memoized when no
// Setup hook is given.
func (r *Runner) RunMix(s MixSpec) *machine.Result {
	return r.Run(s)
}

// Key exposes the canonical memo key ("" when the mix is not
// memoizable) so callers above the engine — the scenario layer's
// determinism tests, cache inspection tooling — can observe dedup
// identity without running anything.
func (s MixSpec) Key(r *Runner) string { return s.memoKey(r) }
