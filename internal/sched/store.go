package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/machine"
)

// EngineVersion names the simulation semantics the persistent result
// store records were produced under. Every record is keyed by the hash
// of this string plus the spec's memo key, so bumping it (REQUIRED for
// any change that alters simulation output: timing model, cache
// behavior, workload catalog, rng naming, result shape) orphans all
// prior records rather than serving stale results. Records from other
// versions are ignored on load and left on disk, so several engine
// versions can share one cache directory during a migration.
const EngineVersion = "cachepart-engine-v5"

// diskStore is the persistent layer under the in-memory singleflight
// memo cache: content-addressed JSON records, one per simulated spec,
// shared by every process pointing Options.CacheDir at the same
// directory. Reads and writes of one key only ever happen inside that
// key's singleflight flight, so in-process races are impossible;
// cross-process writers are safe because records land via a temp file
// and an atomic rename, and any torn/foreign file fails decoding and is
// simply re-simulated.
//
// A striped in-memory index of record filenames — seeded by one
// ReadDir at open, extended on every save — lets load answer known
// misses without a filesystem call, so a cold fleet run against a
// fresh cache directory is not one failed stat per simulation. The
// index deliberately never learns about records another process
// writes after this store opened: such a key indexes as absent and is
// re-simulated, which by engine purity produces the identical result
// (and re-saves it). Correctness never depends on the index, only the
// syscall count does.
type diskStore struct {
	dir     string
	stripes [storeStripes]storeStripe
}

// storeStripes splits the present-key index the same way the memo map
// is striped, so concurrent flights touching the store do not convoy
// on one index lock.
const storeStripes = 16

type storeStripe struct {
	mu      sync.Mutex
	present map[string]bool // record filename -> exists on disk
}

// stripeFor maps a record filename (hex SHA-256) to its index stripe.
func (s *diskStore) stripeFor(name string) *storeStripe {
	// The name is a uniform hash; its first byte is stripe-quality
	// entropy on its own.
	return &s.stripes[name[0]%storeStripes]
}

// indexed reports whether the index saw the record at open or saved it
// since.
func (s *diskStore) indexed(name string) bool {
	st := s.stripeFor(name)
	st.mu.Lock()
	ok := st.present[name]
	st.mu.Unlock()
	return ok
}

// remember marks a record present after a successful save.
func (s *diskStore) remember(name string) {
	st := s.stripeFor(name)
	st.mu.Lock()
	st.present[name] = true
	st.mu.Unlock()
}

// diskRecord is the stored document. Version and Key are verified on
// load — the filename hash already encodes both, but storing them makes
// records self-describing and collision-proof.
type diskRecord struct {
	Version string          `json:"version"`
	Key     string          `json:"key"`
	Result  *machine.Result `json:"result"`
}

// newDiskStore opens (creating if needed) a result store rooted at
// dir and seeds the present-key index from one directory listing.
func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: result store: %w", err)
	}
	s := &diskStore{dir: dir}
	for i := range s.stripes {
		s.stripes[i].present = make(map[string]bool)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sched: result store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && filepath.Ext(name) == ".json" {
			s.stripeFor(name).present[name] = true
		}
	}
	return s, nil
}

// recordName maps a memo key to its record filename: the hex SHA-256
// of the engine version and the key. Keys contain workload names and
// free-form seeds, so hashing (rather than escaping) keeps filenames
// fixed-length and filesystem-safe.
func recordName(key string) string {
	sum := sha256.Sum256([]byte(EngineVersion + "\x00" + key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// load returns the stored result for key, or ok=false when absent,
// unreadable, or written by a different engine version. Load failures
// are never fatal: the caller just simulates.
func (s *diskStore) load(key string) (*machine.Result, bool) {
	name := recordName(key)
	if !s.indexed(name) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, false
	}
	var rec diskRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	if rec.Version != EngineVersion || rec.Key != key || rec.Result == nil {
		return nil, false
	}
	return rec.Result, true
}

// save persists a result, best-effort: a full disk or unwritable
// directory costs the cache, not the run — the returned error exists
// so the runner can warn once, never to fail anything. The temp-file +
// rename dance guarantees readers never observe a partial record.
func (s *diskStore) save(key string, res *machine.Result) error {
	data, err := json.Marshal(diskRecord{Version: EngineVersion, Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("encode record: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "rec-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	name := recordName(key)
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.remember(name)
	return nil
}
