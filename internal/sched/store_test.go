package sched

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

func storeSpec() Spec {
	return SingleSpec{App: workload.MustByName("429.mcf"), Threads: 2, Ways: 4}
}

// A fresh runner pointed at a warm cache directory must serve the run
// from disk — zero simulations — and return a result deeply equal to
// the simulated one (the CLI's cross-process replay guarantee).
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()

	r1 := New(Options{Scale: QuickScale, CacheDir: dir})
	want := r1.Run(storeSpec())
	if st := r1.Stats(); st.Simulations != 1 || st.DiskHits != 0 {
		t.Fatalf("cold run: %d sims, %d disk hits; want 1, 0", st.Simulations, st.DiskHits)
	}

	r2 := New(Options{Scale: QuickScale, CacheDir: dir})
	got := r2.Run(storeSpec())
	if st := r2.Stats(); st.Simulations != 0 || st.DiskHits != 1 {
		t.Fatalf("warm run: %d sims, %d disk hits; want 0, 1", st.Simulations, st.DiskHits)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk result differs from simulated result:\ngot  %+v\nwant %+v", got, want)
	}

	// Within one process the in-memory layer answers first: a repeat on
	// r2 is a memo hit, not a second disk read.
	r2.Run(storeSpec())
	if st := r2.Stats(); st.MemoHits != 1 || st.DiskHits != 1 {
		t.Fatalf("repeat: %d memo hits, %d disk hits; want 1, 1", st.MemoHits, st.DiskHits)
	}
}

// A cache directory that becomes unwritable mid-session must cost the
// cache, not the run: results stay correct, the runner warns exactly
// once on WarnLog, and no records land. (The directory is replaced
// with a plain file rather than chmod'd — tests may run as root, where
// permission bits do not bind.)
func TestDiskStoreWriteFailureWarnsAndContinues(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var warn bytes.Buffer
	r := New(Options{Scale: QuickScale, CacheDir: dir, WarnLog: &warn})

	// Sabotage every subsequent record write: the store's directory is
	// now a plain file, so CreateTemp inside it fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	want := New(Options{Scale: QuickScale}).Run(storeSpec())
	got := r.Run(storeSpec())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run with a failing store differs from a plain run:\ngot  %+v\nwant %+v", got, want)
	}
	if st := r.Stats(); st.Simulations != 1 {
		t.Fatalf("failing store: %d simulations, want 1", st.Simulations)
	}
	first := warn.String()
	if !strings.Contains(first, "result store write failed") {
		t.Fatalf("missing store-write warning, got %q", first)
	}
	if n := strings.Count(first, "\n"); n != 1 {
		t.Fatalf("warning is %d lines, want exactly 1: %q", n, first)
	}

	// A second failing write stays quiet: the warning is once per runner.
	r.Run(SingleSpec{App: workload.MustByName("ferret"), Threads: 2, Ways: 4})
	if warn.String() != first {
		t.Fatalf("second failure warned again:\n%q", warn.String())
	}
}

// Records from a different engine version must be ignored: the run
// re-simulates and overwrites rather than serving stale results.
func TestDiskStoreVersionGate(t *testing.T) {
	dir := t.TempDir()
	r1 := New(Options{Scale: QuickScale, CacheDir: dir})
	r1.Run(storeSpec())

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one record, got %v (err %v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec["version"] = "some-older-engine"
	tampered, _ := json.Marshal(rec)
	if err := os.WriteFile(files[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := New(Options{Scale: QuickScale, CacheDir: dir})
	r2.Run(storeSpec())
	if st := r2.Stats(); st.Simulations != 1 || st.DiskHits != 0 {
		t.Fatalf("stale-version record served: %d sims, %d disk hits; want 1, 0", st.Simulations, st.DiskHits)
	}
}

// A corrupt record (torn write, foreign file) must be survivable.
func TestDiskStoreCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	r1 := New(Options{Scale: QuickScale, CacheDir: dir})
	r1.Run(storeSpec())

	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("want one record, got %v", files)
	}
	if err := os.WriteFile(files[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := New(Options{Scale: QuickScale, CacheDir: dir})
	r2.Run(storeSpec())
	if st := r2.Stats(); st.Simulations != 1 || st.DiskHits != 0 {
		t.Fatalf("corrupt record not re-simulated: %+v", st)
	}
}

// DisableCache must bypass the disk layer entirely (no reads, no
// writes), like it bypasses the in-memory layer.
func TestDiskStoreDisabled(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Scale: QuickScale, CacheDir: dir, DisableCache: true})
	r.Run(storeSpec())
	files, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(files) != 0 {
		t.Fatalf("DisableCache wrote records: %v", files)
	}
}

// Scale participates in the memo key, so two scales must produce two
// distinct records in one directory.
func TestDiskStoreKeyedByScale(t *testing.T) {
	dir := t.TempDir()
	New(Options{Scale: QuickScale, CacheDir: dir}).Run(storeSpec())
	New(Options{Scale: 2 * QuickScale, CacheDir: dir}).Run(storeSpec())
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 2 {
		t.Fatalf("want 2 records for 2 scales, got %d", len(files))
	}
}

// A batch against a warm directory must be all disk hits regardless of
// parallelism, and return results identical to the cold batch.
func TestDiskStoreBatchParallel(t *testing.T) {
	dir := t.TempDir()
	app := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")
	var specs []Spec
	for w := 2; w <= 10; w += 2 {
		specs = append(specs, PairSpec{Fg: app, Bg: bg, FgWays: w, BgWays: 12 - w})
	}
	cold := New(Options{Scale: QuickScale, CacheDir: dir, Parallelism: 4}).RunBatch(specs)
	warmRunner := New(Options{Scale: QuickScale, CacheDir: dir, Parallelism: 4})
	warm := warmRunner.RunBatch(specs)
	if st := warmRunner.Stats(); st.Simulations != 0 || st.DiskHits != uint64(len(specs)) {
		t.Fatalf("warm batch: %d sims, %d disk hits; want 0, %d", st.Simulations, st.DiskHits, len(specs))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm batch results differ from cold batch")
	}
}
