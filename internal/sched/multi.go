package sched

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/workload"
)

// MultiSpec describes a foreground application co-scheduled with
// several continuously-running background instances — the "two or more
// copies of the background applications" configuration of §5.2 and the
// multi-peer scenario of §6.3. The foreground keeps cores 0-1; each
// background instance gets one core (2 hyperthreads) from core 2 up.
type MultiSpec struct {
	Fg *workload.Profile
	// Bgs run continuously, one per remaining core (at most Cores-2).
	Bgs []*workload.Profile
	// FgWays/BgWays optionally split the LLC: the foreground replaces
	// in the low ways, every background peer shares the remaining high
	// ways (peers contend within the background partition, §6.3).
	FgWays, BgWays int
	// Setup runs before the simulation starts; the dynamic controller
	// hooks in here. The bg argument receives the first background job
	// (the controller treats all peers as one partition).
	Setup func(m *machine.Machine, fg *machine.Job, bgs []*machine.Job)
}

// toMix builds the scenario this spec denotes: a (1+N)-job pack-placed
// mix where every background peer shares the high-way partition.
func (s MultiSpec) toMix(r *Runner) MixSpec {
	cfg := r.opt.machineConfig()
	maxBgs := cfg.Cores - 2
	if len(s.Bgs) == 0 || len(s.Bgs) > maxBgs {
		panic(fmt.Sprintf("sched: %d background jobs, platform fits 1..%d", len(s.Bgs), maxBgs))
	}
	assoc := cfg.Hier.LLC.Assoc
	var fgLim, bgFirst, bgLim int
	switch {
	case s.FgWays == 0 && s.BgWays == 0:
	case s.FgWays > 0 && s.BgWays > 0 && s.FgWays+s.BgWays <= assoc:
		fgLim = s.FgWays
		bgFirst, bgLim = assoc-s.BgWays, assoc
	default:
		panic(fmt.Sprintf("sched: invalid multi partition %d+%d of %d", s.FgWays, s.BgWays, assoc))
	}

	jobs := []MixJob{{App: s.Fg, Threads: CapThreads(s.Fg, 4),
		Slots: cfg.SlotsForCores(0, 1), Seed: "fg", WayLim: fgLim}}
	for i, bgProf := range s.Bgs {
		jobs = append(jobs, MixJob{
			App: bgProf, Threads: CapThreads(bgProf, 2),
			Slots: cfg.SlotsForCores(2 + i), Background: true,
			Seed: fmt.Sprintf("bg%d", i), WayFirst: bgFirst, WayLim: bgLim,
		})
	}
	mix := MixSpec{Jobs: jobs}
	if s.Setup != nil {
		setup := s.Setup
		mix.Setup = func(m *machine.Machine, mjobs []*machine.Job) {
			setup(m, mjobs[0], mjobs[1:])
		}
	}
	return mix
}

func (s MultiSpec) memoKey(r *Runner) string { return s.toMix(r).memoKey(r) }

func (s MultiSpec) execute(r *Runner) *machine.Result { return s.toMix(r).execute(r) }

// RunMulti executes a multi-background scenario. Results are memoized
// when no Setup hook is given.
func (r *Runner) RunMulti(s MultiSpec) *machine.Result {
	return r.Run(s)
}
