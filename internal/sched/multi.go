package sched

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/workload"
)

// MultiSpec describes a foreground application co-scheduled with
// several continuously-running background instances — the "two or more
// copies of the background applications" configuration of §5.2 and the
// multi-peer scenario of §6.3. The foreground keeps cores 0-1; each
// background instance gets one core (2 hyperthreads) from core 2 up.
type MultiSpec struct {
	Fg *workload.Profile
	// Bgs run continuously, one per remaining core (at most Cores-2).
	Bgs []*workload.Profile
	// FgWays/BgWays optionally split the LLC: the foreground replaces
	// in the low ways, every background peer shares the remaining high
	// ways (peers contend within the background partition, §6.3).
	FgWays, BgWays int
	// Setup runs before the simulation starts; the dynamic controller
	// hooks in here. The bg argument receives the first background job
	// (the controller treats all peers as one partition).
	Setup func(m *machine.Machine, fg *machine.Job, bgs []*machine.Job)
}

func (s MultiSpec) memoKey(r *Runner) string {
	if s.Setup != nil {
		return ""
	}
	key := fmt.Sprintf("multi|%s|f%d|b%d|s%g", s.Fg.Name, s.FgWays, s.BgWays, r.opt.scale())
	for _, bg := range s.Bgs {
		key += "|" + bg.Name
	}
	return key
}

func (s MultiSpec) execute(r *Runner) *machine.Result {
	cfg := r.opt.machineConfig()
	maxBgs := cfg.Cores - 2
	if len(s.Bgs) == 0 || len(s.Bgs) > maxBgs {
		panic(fmt.Sprintf("sched: %d background jobs, platform fits 1..%d", len(s.Bgs), maxBgs))
	}

	m := machine.New(cfg)
	fg := m.AddJob(machine.JobSpec{
		Profile: s.Fg,
		Threads: CapThreads(s.Fg, 4),
		Slots:   m.SlotsForCores(0, 1),
		Scale:   r.opt.scale(),
		Seed:    "fg",
	})
	var bgJobs []*machine.Job
	for i, bgProf := range s.Bgs {
		core := 2 + i
		bgJobs = append(bgJobs, m.AddJob(machine.JobSpec{
			Profile:    bgProf,
			Threads:    CapThreads(bgProf, 2),
			Slots:      m.SlotsForCores(core),
			Background: true,
			Scale:      r.opt.scale(),
			Seed:       fmt.Sprintf("bg%d", i),
		}))
	}

	assoc := cfg.Hier.LLC.Assoc
	switch {
	case s.FgWays == 0 && s.BgWays == 0:
	case s.FgWays > 0 && s.BgWays > 0 && s.FgWays+s.BgWays <= assoc:
		fgMask := cache.MaskFirstN(s.FgWays)
		bgMask := cache.MaskRange(assoc-s.BgWays, assoc)
		for _, c := range fg.Cores() {
			m.Hierarchy().SetWayMask(c, fgMask)
		}
		for _, bj := range bgJobs {
			for _, c := range bj.Cores() {
				m.Hierarchy().SetWayMask(c, bgMask)
			}
		}
	default:
		panic(fmt.Sprintf("sched: invalid multi partition %d+%d of %d", s.FgWays, s.BgWays, assoc))
	}

	if s.Setup != nil {
		s.Setup(m, fg, bgJobs)
	}
	return m.Run()
}

// RunMulti executes a multi-background scenario. Results are memoized
// when no Setup hook is given.
func (r *Runner) RunMulti(s MultiSpec) *machine.Result {
	return r.Run(s)
}
