package sched

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestMemoShardSpread: the FNV stripe hash must spread a realistic
// sweep's keys across shards — striping that degenerates to one shard
// would silently restore the global-mutex convoy this layer removes.
func TestMemoShardSpread(t *testing.T) {
	r := New(Options{Scale: QuickScale, Parallelism: 4})
	r.RunBatch(sweepSpecs())
	sizes := r.MemoShardSizes()
	if len(sizes) != MemoShards {
		t.Fatalf("MemoShardSizes length %d, want %d", len(sizes), MemoShards)
	}
	total, nonEmpty, max := 0, 0, 0
	for _, n := range sizes {
		total += n
		if n > 0 {
			nonEmpty++
		}
		if n > max {
			max = n
		}
	}
	if want := len(memoKeys(r)); total != want {
		t.Fatalf("shard sizes sum to %d, memo holds %d keys", total, want)
	}
	// ~15 distinct keys over 32 shards: collisions are fine, a single
	// shard hoarding most of the sweep is not.
	if nonEmpty < 2 || max > total/2+1 {
		t.Errorf("degenerate shard spread: %v", sizes)
	}
}

// TestShardedSingleflight: concurrent requests for one key must still
// collapse to a single simulation — sharding moved the flight map, not
// the singleflight guarantee.
func TestShardedSingleflight(t *testing.T) {
	r := New(Options{Scale: QuickScale, Parallelism: 8})
	spec := SingleSpec{App: workload.MustByName("429.mcf"), Threads: 2, Ways: 4}
	var wg sync.WaitGroup
	results := make([]any, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(spec)
		}(i)
	}
	wg.Wait()
	if st := r.Stats(); st.Simulations != 1 {
		t.Fatalf("%d simulations for one key across 16 goroutines, want 1", st.Simulations)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("goroutine %d saw a different result", i)
		}
	}
}

// TestDiskStoreIndexSkipsForeignWrites documents the present-key
// index's one semantic edge: a record another process writes after
// this store opened is invisible to the index, so the key re-simulates
// (identical result by purity) rather than reading the foreign record.
func TestDiskStoreIndexSkipsForeignWrites(t *testing.T) {
	dir := t.TempDir()
	// Open the reader first: its index snapshot sees an empty directory.
	reader := New(Options{Scale: QuickScale, CacheDir: dir})
	// A second process (second store) writes the record afterwards.
	writer := New(Options{Scale: QuickScale, CacheDir: dir})
	want := writer.Run(storeSpec())
	if files, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(files) != 1 {
		t.Fatalf("writer left %d records, want 1", len(files))
	}
	got := reader.Run(storeSpec())
	if st := reader.Stats(); st.DiskHits != 0 || st.Simulations != 1 {
		t.Fatalf("reader: %d disk hits, %d sims; want 0, 1 (index predates the record)",
			st.DiskHits, st.Simulations)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("re-simulated result differs from the stored one")
	}
}

// TestDiskStoreIndexSeededAtOpen: records present when the store opens
// must be indexed (one ReadDir) and served without simulation — the
// cross-process warm-start path.
func TestDiskStoreIndexSeededAtOpen(t *testing.T) {
	dir := t.TempDir()
	New(Options{Scale: QuickScale, CacheDir: dir}).Run(storeSpec())
	// Foreign junk in the directory must not confuse the index seed.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Scale: QuickScale, CacheDir: dir})
	warm.Run(storeSpec())
	if st := warm.Stats(); st.DiskHits != 1 || st.Simulations != 0 {
		t.Fatalf("warm open: %d disk hits, %d sims; want 1, 0", st.DiskHits, st.Simulations)
	}
}
