package sched

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// TestLegacySpecsShareMixCache: a PairSpec and the equivalent hand-built
// MixSpec must reduce to the same memo entry — the engine has one
// execution path and one key space.
func TestLegacySpecsShareMixCache(t *testing.T) {
	r := testRunner()
	fg := workload.MustByName("canneal")
	bg := workload.MustByName("ferret")
	cfg := machine.Default()

	pair := r.RunPair(PairSpec{Fg: fg, Bg: bg, FgWays: 8, BgWays: 4, Mode: BackgroundLoop})
	mix := r.RunMix(MixSpec{Jobs: []MixJob{
		{App: fg, Threads: 4, Slots: cfg.SlotsForCores(0, 1), Seed: "fg", WayFirst: 0, WayLim: 8},
		{App: bg, Threads: 4, Slots: cfg.SlotsForCores(2, 3), Background: true, Seed: "bg", WayFirst: 8, WayLim: 12},
	}})
	if pair != mix {
		t.Fatal("equivalent pair and mix specs did not share a memo entry")
	}
	st := r.Stats()
	if st.Simulations != 1 || st.MemoHits != 1 {
		t.Fatalf("sims=%d hits=%d, want 1 sim + 1 hit", st.Simulations, st.MemoHits)
	}
}

func TestMixNJobs(t *testing.T) {
	r := testRunner()
	cfg := machine.Default()
	mcf := workload.MustByName("429.mcf")
	apps := []string{"ferret", "dedup", "canneal"}

	// 1 latency-sensitive foreground + 3 looping batch peers, one core
	// each, fair 3-way... (fg 6 ways, peers 2 ways each of the rest).
	jobs := []MixJob{{App: mcf, Threads: 2, Slots: cfg.SlotsForCores(0), Seed: "fg", WayLim: 6}}
	for i, name := range apps {
		jobs = append(jobs, MixJob{
			App: workload.MustByName(name), Threads: 2,
			Slots: cfg.SlotsForCores(1 + i), Background: true,
			Seed: "bg" + string(rune('0'+i)), WayFirst: 6 + 2*i, WayLim: 8 + 2*i,
		})
	}
	res := r.RunMix(MixSpec{Jobs: jobs})
	if len(res.Jobs) != 4 {
		t.Fatalf("%d job results", len(res.Jobs))
	}
	if res.JobByName("429.mcf").Background {
		t.Fatal("foreground flagged background")
	}
	for _, name := range apps {
		j := res.JobByName(name)
		if !j.Background || j.Iterations <= 0 {
			t.Fatalf("peer %s: %+v", name, j)
		}
	}

	// Determinism: an identical mix on a fresh runner reproduces the
	// result exactly.
	res2 := New(Options{Scale: 5e-4}).RunMix(MixSpec{Jobs: jobs})
	if res.JobByName("429.mcf").Seconds != res2.JobByName("429.mcf").Seconds {
		t.Fatal("identical mixes diverged")
	}
}

func TestMixMachineOverride(t *testing.T) {
	big := machine.Default()
	big.Cores = 8
	big.Hier = machine.Default().Hier
	big.Hier.Cores = 8

	r := testRunner()
	app := workload.MustByName("swaptions")
	res := r.RunMix(MixSpec{
		Machine: &big,
		Jobs: []MixJob{{App: app, Threads: 8,
			Slots: big.SlotsForCores(0, 1, 2, 3), Seed: "single"}},
	})
	if res.JobByName("swaptions").Threads != 8 {
		t.Fatalf("threads = %d", res.JobByName("swaptions").Threads)
	}

	// The override must be part of the memo key: the same job list on
	// the default platform is a different configuration.
	def := r.RunMix(MixSpec{
		Jobs: []MixJob{{App: app, Threads: 8,
			Slots: machine.Default().SlotsForCores(0, 1, 2, 3), Seed: "single"}},
	})
	if def == res {
		t.Fatal("different platforms shared a memo entry")
	}
}

func TestMixInvalidPlacementPanics(t *testing.T) {
	r := testRunner()
	app := workload.MustByName("ferret")
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("overlapping mix placement accepted")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "already occupied") {
			t.Fatalf("panic %v, want slot-occupied error", p)
		}
	}()
	r.RunMix(MixSpec{Jobs: []MixJob{
		{App: app, Threads: 2, Slots: []int{0, 1}, Seed: "a"},
		{App: app, Threads: 2, Slots: []int{1, 2}, Seed: "b"},
	}})
}
