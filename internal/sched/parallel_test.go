package sched

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workload"
)

// sweepSpecs is a representative mixed sweep: thread points, way
// points, pair splits, and a multi-background run.
func sweepSpecs() []Spec {
	mcf := workload.MustByName("429.mcf")
	ferret := workload.MustByName("ferret")
	canneal := workload.MustByName("canneal")
	specs := []Spec{
		AloneHalfSpec(mcf),
		MultiSpec{Fg: mcf, Bgs: []*workload.Profile{ferret, ferret}},
	}
	for _, th := range []int{1, 2, 4, 8} {
		specs = append(specs, SingleSpec{App: ferret, Threads: th})
	}
	for _, w := range []int{2, 4, 6, 8} {
		specs = append(specs, SingleSpec{App: mcf, Threads: 1, Ways: w})
		specs = append(specs, PairSpec{Fg: mcf, Bg: canneal,
			FgWays: w, BgWays: 12 - w, Mode: BackgroundLoop})
	}
	return append(specs, PairSpec{Fg: canneal, Bg: ferret, Mode: BothOnce})
}

// memoKeys returns the sorted keys of a runner's memo cache, across
// all shards.
func memoKeys(r *Runner) []string {
	var keys []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for k := range sh.cache {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// TestParallelMatchesSerial is the engine's core guarantee: a sweep run
// with 1 worker and with 8 workers produces identical memo keys and
// identical machine.Result aggregates, element by element.
func TestParallelMatchesSerial(t *testing.T) {
	specs := sweepSpecs()
	serial := New(Options{Scale: 5e-4, Parallelism: 1})
	parallel := New(Options{Scale: 5e-4, Parallelism: 8})

	a := serial.RunBatch(specs)
	b := parallel.RunBatch(specs)

	if sk, pk := memoKeys(serial), memoKeys(parallel); !reflect.DeepEqual(sk, pk) {
		t.Fatalf("memo key sets differ:\nserial:   %v\nparallel: %v", sk, pk)
	}
	for i := range specs {
		if a[i] == nil || b[i] == nil {
			t.Fatalf("spec %d: missing result", i)
		}
		if !reflect.DeepEqual(*a[i], *b[i]) {
			t.Fatalf("spec %d (%T): results diverge\nserial:   %+v\nparallel: %+v",
				i, specs[i], *a[i], *b[i])
		}
	}
}

// TestSingleflight asserts that N concurrent requests for the same key
// run the simulation exactly once and all observe the same result.
func TestSingleflight(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 8})
	spec := SingleSpec{App: workload.MustByName("ferret"), Threads: 4}

	const n = 16
	results := make([]*machine.Result, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = r.RunSingle(spec)
		}(i)
	}
	close(start)
	wg.Wait()

	if sims := r.Stats().Simulations; sims != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want 1", n, sims)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("request %d got a different result object", i)
		}
	}
}

// TestRunBatchDedup asserts the batch API deduplicates identical specs
// submitted together: one simulation, shared by every slot.
func TestRunBatchDedup(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 4})
	spec := SingleSpec{App: workload.MustByName("fop"), Threads: 2}
	specs := make([]Spec, 10)
	for i := range specs {
		specs[i] = spec
	}
	out := r.RunBatch(specs)
	if sims := r.Stats().Simulations; sims != 1 {
		t.Fatalf("10 identical batched specs ran %d simulations, want 1", sims)
	}
	for i, res := range out {
		if res != out[0] {
			t.Fatalf("slot %d diverged", i)
		}
	}
}

// TestRunBatchOrder asserts results come back in submission order
// regardless of completion order.
func TestRunBatchOrder(t *testing.T) {
	apps := []string{"ferret", "fop", "batik", "dedup", "429.mcf"}
	r := New(Options{Scale: 5e-4, Parallelism: 8})
	specs := make([]Spec, len(apps))
	for i, name := range apps {
		specs[i] = SingleSpec{App: workload.MustByName(name), Threads: 2}
	}
	out := r.RunBatch(specs)
	for i, name := range apps {
		if got := out[i].Jobs[0].Name; got != name {
			t.Fatalf("slot %d: got %s, want %s", i, got, name)
		}
	}
}

// TestSetupHookNotMemoizedButBatchable: specs with Setup hooks must
// execute once per batch slot (no memoization) and still return in
// order.
func TestSetupHookNotMemoizedButBatchable(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 4})
	fg := workload.MustByName("fop")
	bg := workload.MustByName("batik")
	var mu sync.Mutex
	calls := 0
	spec := PairSpec{Fg: fg, Bg: bg, Mode: BackgroundLoop,
		Setup: func(m *machine.Machine, f, b *machine.Job) {
			mu.Lock()
			calls++
			mu.Unlock()
		}}
	out := r.RunBatch([]Spec{spec, spec, spec})
	if calls != 3 {
		t.Fatalf("setup hook ran %d times for 3 batched specs, want 3", calls)
	}
	if out[0] == out[1] || out[1] == out[2] {
		t.Fatal("non-memoizable runs shared a result object")
	}
}

// TestPanickedRunDoesNotPoisonCache: a memoizable spec that panics
// (here: an oversubscribed partition) must evict its in-flight entry,
// so a retry of the same key panics again instead of deadlocking on a
// never-closed flight.
func TestPanickedRunDoesNotPoisonCache(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 2})
	bad := PairSpec{Fg: workload.MustByName("fop"), Bg: workload.MustByName("batik"),
		FgWays: 8, BgWays: 8, Mode: BackgroundLoop}
	mustPanic := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		r.RunPair(bad)
		return
	}
	if !mustPanic() {
		t.Fatal("invalid partition accepted")
	}
	done := make(chan bool, 1)
	go func() { done <- mustPanic() }()
	select {
	case again := <-done:
		if !again {
			t.Fatal("retry of the panicked spec did not panic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retry of the panicked spec deadlocked on the poisoned flight")
	}
	if keys := memoKeys(r); len(keys) != 0 {
		t.Fatalf("poisoned entries left in cache: %v", keys)
	}
}

// TestRunBatchPropagatesPanic: a malformed spec in a batch must panic
// on the submitting goroutine (as it would serially), not kill the
// process from an unrecoverable worker goroutine.
func TestRunBatchPropagatesPanic(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 4})
	good := SingleSpec{App: workload.MustByName("ferret"), Threads: 2}
	bad := PairSpec{Fg: workload.MustByName("fop"), Bg: workload.MustByName("batik"),
		FgWays: 8, BgWays: 8, Mode: BackgroundLoop}
	defer func() {
		if recover() == nil {
			t.Fatal("batch containing a malformed spec did not panic")
		}
	}()
	r.RunBatch([]Spec{good, bad, good})
}

// TestWarmRespectsDisableCache: Warm is a no-op without a cache (it
// would otherwise run every simulation twice).
func TestWarmRespectsDisableCache(t *testing.T) {
	r := New(Options{Scale: 5e-4, DisableCache: true, Parallelism: 2})
	r.Warm([]Spec{SingleSpec{App: workload.MustByName("ferret"), Threads: 1}})
	if sims := r.Stats().Simulations; sims != 0 {
		t.Fatalf("Warm with DisableCache ran %d simulations", sims)
	}
}

// TestStatsAccounting: simulations, memo hits, and busy time line up
// with what a warm-then-reread pattern implies.
func TestStatsAccounting(t *testing.T) {
	r := New(Options{Scale: 5e-4, Parallelism: 2})
	spec := SingleSpec{App: workload.MustByName("dedup"), Threads: 2}
	r.Warm([]Spec{spec})
	r.RunSingle(spec)
	st := r.Stats()
	if st.Simulations != 1 || st.MemoHits != 1 {
		t.Fatalf("stats = %+v, want 1 sim and 1 hit", st)
	}
	if st.BusySeconds <= 0 {
		t.Fatal("no busy time recorded")
	}
	if st.Parallelism != 2 {
		t.Fatalf("parallelism = %d", st.Parallelism)
	}
}
