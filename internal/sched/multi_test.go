package sched

import (
	"testing"

	"repro/internal/workload"
)

func TestRunMultiTwoCopies(t *testing.T) {
	r := New(Options{Scale: 5e-4})
	fg := workload.MustByName("fop")
	bg := workload.MustByName("ferret")
	res := r.RunMulti(MultiSpec{Fg: fg, Bgs: []*workload.Profile{bg, bg}})
	if len(res.Jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(res.Jobs))
	}
	bgCount := 0
	for _, j := range res.Jobs {
		if j.Background {
			bgCount++
			if j.Iterations <= 0 {
				t.Fatal("background copy made no progress")
			}
		}
	}
	if bgCount != 2 {
		t.Fatalf("%d background jobs", bgCount)
	}
}

func TestRunMultiMoreCopiesMoreContention(t *testing.T) {
	r := New(Options{Scale: 2e-3})
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("canneal")
	one := r.RunMulti(MultiSpec{Fg: fg, Bgs: []*workload.Profile{bg}}).
		JobByName(fg.Name).Seconds
	two := r.RunMulti(MultiSpec{Fg: fg, Bgs: []*workload.Profile{bg, bg}}).
		JobByName(fg.Name).Seconds
	if two < one*0.98 {
		t.Fatalf("second background copy reduced interference: 1=%v 2=%v", one, two)
	}
}

func TestRunMultiPartition(t *testing.T) {
	r := New(Options{Scale: 5e-4})
	fg := workload.MustByName("fop")
	bg := workload.MustByName("ferret")
	res := r.RunMulti(MultiSpec{Fg: fg, Bgs: []*workload.Profile{bg, bg},
		FgWays: 8, BgWays: 4})
	if res.JobByName(fg.Name).Seconds <= 0 {
		t.Fatal("degenerate run")
	}
}

func TestRunMultiValidation(t *testing.T) {
	r := New(Options{Scale: 5e-4})
	fg := workload.MustByName("fop")
	bg := workload.MustByName("ferret")
	for _, bgs := range [][]*workload.Profile{
		{},           // none
		{bg, bg, bg}, // too many for 4 cores
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%d background jobs accepted", len(bgs))
				}
			}()
			r.RunMulti(MultiSpec{Fg: fg, Bgs: bgs})
		}()
	}
}

func TestRunMultiMemoized(t *testing.T) {
	r := New(Options{Scale: 5e-4})
	fg := workload.MustByName("fop")
	bg := workload.MustByName("ferret")
	a := r.RunMulti(MultiSpec{Fg: fg, Bgs: []*workload.Profile{bg}})
	b := r.RunMulti(MultiSpec{Fg: fg, Bgs: []*workload.Profile{bg}})
	if a != b {
		t.Fatal("multi runs not memoized")
	}
}
