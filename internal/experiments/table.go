package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid plus free-form
// notes (aggregates, paper comparisons).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends one row; the cell count must match the column count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
