package experiments

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// The calibration contract: spot-checks that key applications land in
// the paper's published classes at a meaningful scale. These run the
// heavier sweeps, so `go test -short` skips them.

func calCtx() *Context {
	// Quick scope (representatives) but the full 12-point capacity sweep:
	// utility classification needs fine way granularity.
	c := NewQuickContext(2e-3)
	c.WayPoints = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	return c
}

func TestCalibrationScalabilityClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check skipped in -short mode")
	}
	c := calCtx()
	expect := map[string]ScalabilityClass{
		"swaptions": ScalHigh, // PARSEC high scaler
		"ferret":    ScalHigh,
		"h2":        ScalLow, // lock-serialized DB (Table 1)
		"429.mcf":   ScalLow, // sequential
		"ccbench":   ScalLow, // single-threaded microbenchmark
	}
	for name, want := range expect {
		app := workload.MustByName(name)
		got := classifyScalability(c.SpeedupCurve(app))
		if got != want {
			t.Errorf("%s: scalability %s, want %s (Table 1)", name, got, want)
		}
	}
}

func TestCalibrationUtilityClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check skipped in -short mode")
	}
	c := calCtx()
	// Low-utility apps reach full performance with 1 MB (Table 2).
	for _, name := range []string{"swaptions", "blackscholes", "ferret", "462.libquantum"} {
		app := workload.MustByName(name)
		th := 4
		if app.MaxThreads < th {
			th = app.MaxThreads
		}
		curve := c.CapacityCurve(app, th)
		if cl := classifyUtility(curve, c.WayPoints); cl != UtilLow {
			t.Errorf("%s: utility %s, want low (Table 2)", name, cl)
		}
	}
	// High-utility apps keep improving to the top of the range.
	app := workload.MustByName("471.omnetpp")
	curve := c.CapacityCurve(app, 1)
	if cl := classifyUtility(curve, c.WayPoints); cl != UtilHigh {
		t.Errorf("471.omnetpp: utility %s, want high (Table 2)", cl)
	}
}

func TestCalibrationDirectMappedPathology(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check skipped in -short mode")
	}
	// §3.2: 0.5 MB direct-mapped is always detrimental — for every
	// representative, 1 way must be slower than 2 ways.
	c := calCtx()
	for _, app := range c.Reps {
		th := 4
		if app.MaxThreads < th {
			th = app.MaxThreads
		}
		one := c.singleSeconds(app, th, 1)
		two := c.singleSeconds(app, th, 2)
		if one < two {
			t.Errorf("%s: direct-mapped 1 way (%v) faster than 2 ways (%v)", app.Name, one, two)
		}
	}
}

func TestCalibrationRaceToHalt(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check skipped in -short mode")
	}
	// §4: for a scalable application, racing on all 8 hyperthreads
	// consumes less total energy than crawling on one.
	r := sched.New(sched.Options{Scale: 2e-3})
	app := workload.MustByName("swaptions")
	one := r.RunSingle(sched.SingleSpec{App: app, Threads: 1})
	eight := r.RunSingle(sched.SingleSpec{App: app, Threads: 8})
	if eight.Energy.SocketJoules >= one.Energy.SocketJoules {
		t.Errorf("race-to-halt violated (socket): 8thr %v J vs 1thr %v J",
			eight.Energy.SocketJoules, one.Energy.SocketJoules)
	}
	if eight.Energy.WallJoules >= one.Energy.WallJoules {
		t.Errorf("race-to-halt violated (wall): 8thr %v J vs 1thr %v J",
			eight.Energy.WallJoules, one.Energy.WallJoules)
	}
	// But a sequential application gains nothing from extra threads and
	// must not pay for them either (threads are capped).
	mcf := workload.MustByName("429.mcf")
	a := r.RunSingle(sched.SingleSpec{App: mcf, Threads: 1})
	b := r.RunSingle(sched.SingleSpec{App: mcf, Threads: 8})
	ratio := b.Energy.SocketJoules / a.Energy.SocketJoules
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("sequential app energy changed with thread request: ratio %v", ratio)
	}
}

func TestCalibrationConsolidationSavesEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check skipped in -short mode")
	}
	// §5.3: running two applications concurrently (4+4 threads) costs
	// less energy than running them sequentially on the whole machine.
	c := calCtx()
	a := workload.MustByName("fop")
	b := workload.MustByName("dedup")
	seq := c.R.AloneWhole(a).Energy.SocketJoules + c.R.AloneWhole(b).Energy.SocketJoules
	con := c.R.RunPair(sched.PairSpec{Fg: a, Bg: b, Mode: sched.BothOnce}).Energy.SocketJoules
	if con >= seq {
		t.Errorf("consolidation did not save energy: concurrent %v J vs sequential %v J", con, seq)
	}
}
