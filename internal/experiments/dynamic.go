package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/perfmon"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// controllerInterval sizes the sampling period; the rule is shared
// with the scenario layer and the core API through
// partition.SamplingInterval.
func (c *Context) controllerInterval(fg *workload.Profile) float64 {
	return partition.SamplingInterval(fg, c.R.Scale())
}

// dynamicSpec builds the §6 controller run as a dynamic-policy
// scenario compiled to a batchable spec. The attached decision loop is
// stored through lp when the caller needs its MPKI/ways time series;
// such specs are never memoized, so each batched run attaches its own
// fresh loop and RunBatch's completion barrier publishes the write to
// the caller. With lp nil the spec is memoizable under the policy's
// run key, like any other shape.
func (c *Context) dynamicSpec(fg, bg *workload.Profile, lp **partition.Loop) sched.Spec {
	cfg := c.R.MachineConfig()
	s := pairMix(cfg.Hier.LLC.Assoc, fg, bg, 0, 0, false)
	s.Partition.Policy = scenario.PolicyRef{Name: scenario.PartitionDynamic}
	mix, err := s.CompileOnline(cfg, c.R.Scale(), lp)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return mix
}

// RunDynamic co-schedules fg and bg with the §6 controller attached and
// returns the run result plus the decision loop (for its MPKI/ways
// trace).
func (c *Context) RunDynamic(fg, bg *workload.Profile) (*machine.Result, *partition.Loop) {
	var lp *partition.Loop
	res := c.R.Run(c.dynamicSpec(fg, bg, &lp))
	return res, lp
}

// Fig12Phases reproduces Figure 12: 429.mcf's MPKI over time under each
// static allocation and under the dynamic controller. For static
// allocations mcf runs against a ferret background confined to the
// complementary ways; the dynamic trace uses the controller.
func (c *Context) Fig12Phases() *Table {
	mcf := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")
	interval := c.controllerInterval(mcf)

	t := &Table{Title: "Figure 12: 429.mcf MPKI by phase and LLC allocation",
		Columns: []string{"allocation", "phase-min MPKI", "phase-max MPKI", "mean MPKI", "fg time(s)"}}

	summarize := func(samples []perfmon.Sample) (lo, hi, mean float64) {
		if len(samples) == 0 {
			return 0, 0, 0
		}
		var xs []float64
		for _, s := range samples {
			xs = append(xs, s.MPKI)
		}
		return stats.Min(xs), stats.Max(xs), stats.Mean(xs)
	}

	// All static allocations plus the dynamic run go out as one batch;
	// each run's Setup hook installs a private sampler, and results come
	// back in allocation order.
	allocs := []int{2, 3, 5, 7, 9, 11}
	samplers := make([]*perfmon.Sampler, len(allocs))
	var ctl *partition.Loop
	specs := make([]sched.Spec, 0, len(allocs)+1)
	for i, w := range allocs {
		specs = append(specs, sched.PairSpec{
			Fg: mcf, Bg: bg, Mode: sched.BackgroundLoop,
			Setup: func(m *machine.Machine, fgJob, bgJob *machine.Job) {
				// Static split applied through the same mask mechanism.
				m.Hierarchy().SetWayMask(fgJob.Cores()[0], maskFirst(w))
				for _, core := range bgJob.Cores() {
					m.Hierarchy().SetWayMask(core, maskRange(w, 12))
				}
				samplers[i] = perfmon.NewSampler(m, fgJob, interval, func() int { return w })
			},
		})
	}
	specs = append(specs, c.dynamicSpec(mcf, bg, &ctl))
	results := c.R.RunBatch(specs)

	for i, ways := range allocs {
		lo, hi, mean := summarize(samplers[i].Samples())
		t.Add(fmt.Sprintf("%d ways", ways), f(lo), f(hi), f(mean),
			fmt.Sprintf("%.4f", results[i].JobByName(mcf.Name).Seconds))
	}

	res := results[len(allocs)]
	lo, hi, mean := summarize(ctl.Samples())
	t.Add("dynamic", f(lo), f(hi), f(mean), fmt.Sprintf("%.4f", res.JobByName(mcf.Name).Seconds))
	minW, maxW := 12, 0
	for _, s := range ctl.Samples() {
		if s.Ways < minW {
			minW = s.Ways
		}
		if s.Ways > maxW {
			maxW = s.Ways
		}
	}
	t.Note("dynamic allocation ranged %d-%d ways over %d reallocations (paper: 3-9 ways across 5 phase transitions)",
		minW, maxW, ctl.Reallocations())
	return t
}

// Fig13Result carries the dynamic-vs-static background throughput study.
type Fig13Result struct {
	Table *Table
	// Per ordered pair: bg throughput (iterations) under best-static,
	// dynamic, and shared, plus the fg cost of dynamic vs best-static.
	DynamicGain  []float64 // dynamic/static bg throughput ratios
	SharedGain   []float64 // shared/static bg throughput ratios
	FgCostVsBest []float64 // dynamic fg time / best-static fg time
}

// Fig13DynamicThroughput reproduces Figure 13: background throughput of
// the dynamic controller relative to each pair's best static
// allocation, with shared caching as the no-isolation reference.
func (c *Context) Fig13DynamicThroughput() *Fig13Result {
	res := &Fig13Result{}
	t := &Table{Title: "Figure 13: background throughput vs best static allocation",
		Columns: []string{"pair", "static iters", "dynamic iters", "dyn/static",
			"shared/static", "dyn fg cost"}}

	// One batch for everything: the memoizable static sweeps (which
	// contain every pair's best-static run), the shared runs, and the
	// non-memoizable dynamic controller runs — statics and dynamics
	// overlap instead of serializing behind a barrier. The dynamic
	// results are the batch's tail, in pair order.
	var specs []sched.Spec
	for _, fg := range c.Reps {
		for _, bg := range c.Reps {
			specs = append(specs, partition.SearchSpecs(12, fg, bg)...)
			specs = append(specs, c.pairRun(fg, bg, 0, 0, false))
		}
	}
	nPairs := len(c.Reps) * len(c.Reps)
	for _, fg := range c.Reps {
		for _, bg := range c.Reps {
			specs = append(specs, c.dynamicSpec(fg, bg, nil))
		}
	}
	dynResults := c.R.RunBatch(specs)[len(specs)-nPairs:]

	for i, fg := range c.Reps {
		for j, bg := range c.Reps {
			// The Figure 13 baseline is the allocation best *for the
			// foreground* (ties broken toward the protective split).
			best := partition.BestForForeground(c.R, fg, bg)
			static := c.R.Run(c.pairRun(fg, bg, best.FgWays, best.BgWays, false))
			shared := c.R.Run(c.pairRun(fg, bg, 0, 0, false))
			dyn := dynResults[i*len(c.Reps)+j]

			sIter := static.JobByName(bg.Name).Iterations
			dIter := dyn.JobByName(bg.Name).Iterations
			shIter := shared.JobByName(bg.Name).Iterations
			// Throughput is iterations per unit time; normalize by the
			// window (fg completion) of each run.
			sRate := sIter / static.WindowSeconds
			dRate := dIter / dyn.WindowSeconds
			shRate := shIter / shared.WindowSeconds

			dynGain := dRate / sRate
			shGain := shRate / sRate
			fgCost := dyn.JobByName(fg.Name).Seconds / static.JobByName(fg.Name).Seconds
			res.DynamicGain = append(res.DynamicGain, dynGain)
			res.SharedGain = append(res.SharedGain, shGain)
			res.FgCostVsBest = append(res.FgCostVsBest, fgCost)

			t.Add(fmt.Sprintf("C%d+C%d", i+1, j+1),
				fmt.Sprintf("%.2f", sIter), fmt.Sprintf("%.2f", dIter),
				fmt.Sprintf("%.2f", dynGain), fmt.Sprintf("%.2f", shGain),
				fmt.Sprintf("%.3f", fgCost))
		}
	}
	t.Note("avg dynamic bg gain %.2fx, max %.2fx (paper: 1.19x avg, up to 2.5x)",
		stats.Mean(res.DynamicGain), stats.Max(res.DynamicGain))
	t.Note("avg shared bg gain %.2fx (paper: 1.53x, but without isolation)",
		stats.Mean(res.SharedGain))
	t.Note("avg dynamic fg cost vs best static %s (paper: within 2%%)",
		pct(stats.Mean(res.FgCostVsBest)))
	res.Table = t
	return res
}
