package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/prefetch"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The ablation studies implement the design alternatives and
// future-work hardware the paper discusses but could not measure:
//
//   - small-llc:    rerun the policy study on a 2 MB LLC, the geometry of
//     the prior simulation studies the paper contrasts itself
//     against (§8: partitioning gains >10% there).
//   - bwqos:        add the memory-bandwidth QoS the conclusion calls for
//     and re-measure the worst bandwidth-driven slowdowns.
//   - indexing:     plain vs hashed LLC indexing (the randomized index is
//     one of the reasons real hardware shows no working-set
//     knees, §3.2).
//   - replacement:  bit-PLRU vs true LRU vs random victim choice.
//   - inclusion:    inclusive vs non-inclusive LLC on small allocations
//     (the §3.2 direct-mapped pathology).
//   - prefetchers:  per-prefetcher contribution, extending Figure 3's
//     all-on/all-off comparison (§3.3 notes the DCU
//     prefetcher matters most).
//   - multibg:      one vs two background copies (§5.2's "more extreme
//     cases" paragraph).

// runnerWith builds a runner over a modified platform, sharing the
// context's scale, worker count, and stat counters (so ablation
// simulations show up in the shared engine footer) but not its
// memoized results.
func (c *Context) runnerWith(mut func(*machine.Config)) *sched.Runner {
	cfg := machine.Default()
	mut(&cfg)
	return sched.New(sched.Options{Machine: &cfg, Scale: c.R.Scale(),
		Parallelism: c.R.Parallelism(), Counters: c.R.Counters()})
}

// AblationSmallLLC reruns the shared/fair/biased comparison for the
// representative pairs on a 2 MB 8-way LLC.
func (c *Context) AblationSmallLLC() *Table {
	small := c.runnerWith(func(cfg *machine.Config) {
		cfg.Hier.LLC.SizeBytes = 2 << 20
		cfg.Hier.LLC.Assoc = 8
	})
	big := c.R

	t := &Table{Title: "Ablation: 2MB/8-way LLC vs the 6MB/12-way platform (fg slowdown)",
		Columns: []string{"pair", "6MB shared", "6MB biased", "2MB shared", "2MB biased"}}

	// Submit both platforms' full pair sweeps to their runners up front.
	var specs6, specs2 []sched.Spec
	for i, fg := range c.Reps {
		for j, bg := range c.Reps {
			if i == j {
				continue
			}
			specs6 = append(specs6, policySweepSpecs(fg, bg, 12)...)
			specs2 = append(specs2, policySweepSpecs(fg, bg, 8)...)
		}
	}
	warmAll([]*sched.Runner{big, small}, specs6, specs2)

	var gain6, gain2 []float64
	for i, fg := range c.Reps {
		for j, bg := range c.Reps {
			if i == j {
				continue
			}
			s6, b6 := policySlowdowns(big, fg, bg, 12)
			s2, b2 := policySlowdowns(small, fg, bg, 8)
			gain6 = append(gain6, s6-b6)
			gain2 = append(gain2, s2-b2)
			t.Add(fmt.Sprintf("C%d+C%d", i+1, j+1),
				fmt.Sprintf("%.3f", s6), fmt.Sprintf("%.3f", b6),
				fmt.Sprintf("%.3f", s2), fmt.Sprintf("%.3f", b2))
		}
	}
	t.Note("avg partitioning benefit (shared - biased slowdown): %.1f points at 6MB, %.1f points at 2MB",
		stats.Mean(gain6)*100, stats.Mean(gain2)*100)
	t.Note("paper §8: simulation studies at 1-2MB see >10%% partitioning gains; the 6MB LLC makes partitioning unnecessary for ~half the workloads")
	return t
}

// policySweepSpecs lists one pair's policy comparison on a platform
// with the given associativity: the biased-search sweep (alone
// baseline plus every uneven split) and the shared run.
func policySweepSpecs(fg, bg *workload.Profile, assoc int) []sched.Spec {
	search := partition.SearchSpecs(assoc, fg, bg)
	specs := []sched.Spec{search[0],
		sched.PairSpec{Fg: fg, Bg: bg, Mode: sched.BackgroundLoop}}
	return append(specs, search[1:]...)
}

// policySlowdowns returns (shared, bestBiased) fg slowdowns for a pair
// on the given runner, running the sweep as one batch.
func policySlowdowns(r *sched.Runner, fg, bg *workload.Profile, assoc int) (float64, float64) {
	results := r.RunBatch(policySweepSpecs(fg, bg, assoc))
	alone := results[0].JobByName(fg.Name).Seconds
	shared := results[1].JobByName(fg.Name).Seconds / alone
	best := shared
	for _, res := range results[2:] {
		if sd := res.JobByName(fg.Name).Seconds / alone; sd < best {
			best = sd
		}
	}
	return shared, best
}

// AblationBandwidthQoS measures the worst bandwidth-driven slowdowns
// with and without per-job DRAM bandwidth reservations.
func (c *Context) AblationBandwidthQoS() *Table {
	qos := c.runnerWith(func(cfg *machine.Config) { cfg.BandwidthQoS = true })
	hog := workload.MustByName("stream_uncached")
	victims := []string{"462.libquantum", "470.lbm", "459.GemsFDTD", "fluidanimate", "streamcluster", "batik"}

	t := &Table{Title: "Ablation: memory-bandwidth QoS (slowdown vs stream_uncached hog)",
		Columns: []string{"app", "no QoS", "with QoS"}}

	var specs []sched.Spec
	for _, name := range victims {
		app := workload.MustByName(name)
		specs = append(specs,
			sched.AloneHalfSpec(app),
			sched.PairSpec{Fg: app, Bg: hog, Mode: sched.BackgroundLoop})
	}
	warmAll([]*sched.Runner{c.R, qos}, specs)

	var without, with []float64
	for _, name := range victims {
		app := workload.MustByName(name)
		base := c.R.AloneHalf(app).JobByName(name).Seconds
		noQ := c.R.RunPair(sched.PairSpec{Fg: app, Bg: hog, Mode: sched.BackgroundLoop}).
			JobByName(name).Seconds / base
		baseQ := qos.AloneHalf(app).JobByName(name).Seconds
		withQ := qos.RunPair(sched.PairSpec{Fg: app, Bg: hog, Mode: sched.BackgroundLoop}).
			JobByName(name).Seconds / baseQ
		without = append(without, noQ)
		with = append(with, withQ)
		t.Add(name, f(noQ), f(withQ))
	}
	t.Note("worst slowdown %.2fx without QoS vs %.2fx with QoS — the paper's §8 conjecture that bandwidth/latency QoS would close the residual isolation gap",
		stats.Max(without), stats.Max(with))
	return t
}

// AblationIndexing compares plain vs hashed LLC indexing on the
// capacity curve of a high-utility application.
func (c *Context) AblationIndexing() *Table {
	plain := c.runnerWith(func(cfg *machine.Config) { cfg.Hier.LLC.HashIndex = false })
	app := workload.MustByName("471.omnetpp")

	t := &Table{Title: "Ablation: hashed vs plain LLC set indexing (471.omnetpp, 1 thread)",
		Columns: []string{"ways", "hashed time(s)", "plain time(s)", "plain/hashed"}}

	sweep := c.capacitySpecs(app, 1)
	warmAll([]*sched.Runner{c.R, plain}, sweep)

	for _, w := range c.WayPoints {
		h := c.singleSeconds(app, 1, w)
		p := plain.RunSingle(sched.SingleSpec{App: app, Threads: 1, Ways: w}).
			JobByName(app.Name).Seconds
		t.Add(fmt.Sprintf("%d", w), fmt.Sprintf("%.4f", h), fmt.Sprintf("%.4f", p),
			fmt.Sprintf("%.3f", p/h))
	}
	t.Note("the randomized index spreads pathological strides; it is one of the effects the paper credits with removing clean working-set knees (§3.2)")
	return t
}

// AblationReplacement compares bit-PLRU, true LRU and random
// replacement in the LLC for the representatives.
func (c *Context) AblationReplacement() *Table {
	t := &Table{Title: "Ablation: LLC replacement policy (time at 4 threads, full LLC)",
		Columns: []string{"app", "plru(s)", "lru(s)", "random(s)", "lru/plru", "random/plru"}}
	lru := c.runnerWith(func(cfg *machine.Config) { cfg.Hier.LLC.Replacement = cache.ReplaceLRU })
	rnd := c.runnerWith(func(cfg *machine.Config) { cfg.Hier.LLC.Replacement = cache.ReplaceRandom })

	var specs []sched.Spec
	for _, app := range c.Reps {
		specs = append(specs, sched.SingleSpec{App: app, Threads: threadsFor(app, 4)})
	}
	warmAll([]*sched.Runner{c.R, lru, rnd}, specs)

	for _, app := range c.Reps {
		th := threadsFor(app, 4)
		p := c.singleSeconds(app, th, 0)
		l := lru.RunSingle(sched.SingleSpec{App: app, Threads: th}).JobByName(app.Name).Seconds
		r := rnd.RunSingle(sched.SingleSpec{App: app, Threads: th}).JobByName(app.Name).Seconds
		t.Add(app.Name, fmt.Sprintf("%.4f", p), fmt.Sprintf("%.4f", l), fmt.Sprintf("%.4f", r),
			fmt.Sprintf("%.3f", l/p), fmt.Sprintf("%.3f", r/p))
	}
	t.Note("bit-PLRU tracks true LRU closely on these reuse patterns; random replacement costs a few percent on reuse-heavy applications")
	return t
}

// AblationInclusion quantifies how much of the small-allocation
// pathology is inclusion victims.
func (c *Context) AblationInclusion() *Table {
	nonInc := c.runnerWith(func(cfg *machine.Config) { cfg.Hier.NonInclusiveLLC = true })
	t := &Table{Title: "Ablation: inclusive vs non-inclusive LLC at small allocations",
		Columns: []string{"app", "ways", "inclusive(s)", "non-inclusive(s)", "inclusion cost"}}

	var specs []sched.Spec
	for _, name := range []string{"429.mcf", "471.omnetpp", "h2"} {
		app := workload.MustByName(name)
		for _, w := range []int{1, 2, 12} {
			specs = append(specs, sched.SingleSpec{App: app, Threads: 1, Ways: w})
		}
	}
	warmAll([]*sched.Runner{c.R, nonInc}, specs)

	for _, name := range []string{"429.mcf", "471.omnetpp", "h2"} {
		app := workload.MustByName(name)
		for _, w := range []int{1, 2, 12} {
			inc := c.singleSeconds(app, 1, w)
			non := nonInc.RunSingle(sched.SingleSpec{App: app, Threads: 1, Ways: w}).
				JobByName(name).Seconds
			t.Add(name, fmt.Sprintf("%d", w), fmt.Sprintf("%.4f", inc),
				fmt.Sprintf("%.4f", non), pct(inc/non))
		}
	}
	t.Note("§3.2: inclusivity issues for inner cache levels amplify the 0.5MB direct-mapped pathology; a non-inclusive LLC shields the private caches")
	return t
}

// AblationPrefetchers breaks Figure 3's all-on/all-off comparison into
// per-prefetcher contributions for the prefetch-sensitive applications.
func (c *Context) AblationPrefetchers() *Table {
	apps := []string{"462.libquantum", "470.lbm", "459.GemsFDTD", "450.soplex", "facesim"}
	configs := []struct {
		name string
		cfg  prefetch.Config
	}{
		{"all-off", prefetch.AllOff()},
		{"dcu-ip", prefetch.Config{DCUIP: true}},
		{"dcu-stream", prefetch.Config{DCUStreamer: true}},
		{"mlc-spatial", prefetch.Config{MLCSpatial: true}},
		{"mlc-stream", prefetch.Config{MLCStreamer: true}},
		{"all-on", prefetch.AllOn()},
	}
	t := &Table{Title: "Ablation: per-prefetcher contribution (time normalized to all-off)"}
	t.Columns = append([]string{"app"}, configNames(configs)...)

	var specs []sched.Spec
	for _, name := range apps {
		app := workload.MustByName(name)
		for i := range configs {
			pf := configs[i].cfg
			specs = append(specs, sched.SingleSpec{App: app, Threads: 4, Prefetch: &pf})
		}
	}
	c.submit(specs)

	for _, name := range apps {
		app := workload.MustByName(name)
		row := []string{name}
		var offTime float64
		for _, cc := range configs {
			pf := cc.cfg
			sec := c.R.RunSingle(sched.SingleSpec{App: app, Threads: 4, Prefetch: &pf}).
				JobByName(name).Seconds
			if cc.name == "all-off" {
				offTime = sec
			}
			row = append(row, fmt.Sprintf("%.3f", sec/offTime))
		}
		t.Add(row...)
	}
	t.Note("§3.3: streaming codes benefit most from the streamer prefetchers; single-prefetcher configs show each unit's share")
	return t
}

// AblationMultiBackground reruns representative pairs with one vs two
// background copies (§5.2's "more extreme cases").
func (c *Context) AblationMultiBackground() *Table {
	t := &Table{Title: "Ablation: one vs two background copies (fg slowdown, shared LLC)",
		Columns: []string{"fg", "bg", "1 copy", "2 copies"}}

	var specs []sched.Spec
	for _, fgName := range []string{"429.mcf", "fop", "batik"} {
		for _, bgName := range []string{"ferret", "canneal"} {
			fg := workload.MustByName(fgName)
			bg := workload.MustByName(bgName)
			specs = append(specs,
				sched.AloneHalfSpec(fg),
				c.multiRun(fg, bg, 1),
				c.multiRun(fg, bg, 2))
		}
	}
	c.submit(specs)

	var one, two []float64
	for _, fgName := range []string{"429.mcf", "fop", "batik"} {
		for _, bgName := range []string{"ferret", "canneal"} {
			fg := workload.MustByName(fgName)
			bg := workload.MustByName(bgName)
			alone := c.aloneHalfSeconds(fg)
			s1 := c.R.Run(c.multiRun(fg, bg, 1)).
				JobByName(fg.Name).Seconds / alone
			s2 := c.R.Run(c.multiRun(fg, bg, 2)).
				JobByName(fg.Name).Seconds / alone
			one = append(one, s1)
			two = append(two, s2)
			t.Add(fgName, bgName, fmt.Sprintf("%.3f", s1), fmt.Sprintf("%.3f", s2))
		}
	}
	t.Note("avg slowdown %s with one copy vs %s with two (paper: additional copies only increase contention; already-degraded pairs degrade further)",
		pct(stats.Mean(one)), pct(stats.Mean(two)))
	return t
}

func configNames(configs []struct {
	name string
	cfg  prefetch.Config
}) []string {
	out := make([]string, len(configs))
	for i, c := range configs {
		out[i] = c.name
	}
	return out
}
