// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the required simulations through
// a shared sched.Runner (memoized, so drivers reuse each other's runs)
// and renders a text table with the same rows/series the paper reports.
// EXPERIMENTS.md records paper-vs-measured for each driver.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Context carries the shared runner and experiment scope.
type Context struct {
	R *sched.Runner

	// Apps is the application set under study (default: full catalog).
	Apps []*workload.Profile

	// Reps are the consolidation-study applications (default: the six
	// Table 3 representatives).
	Reps []*workload.Profile

	// ThreadPoints are the thread counts swept in Figure 1.
	ThreadPoints []int

	// WayPoints are the LLC allocations swept in Figure 2/Table 2.
	WayPoints []int
}

// NewContext builds a context at the given instruction scale
// (0 = sched.DefaultScale) with the default worker count (GOMAXPROCS).
func NewContext(scale float64) *Context {
	return NewContextParallel(scale, 0)
}

// NewContextParallel is NewContext with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). Parallel and serial contexts render
// byte-identical tables; only host time differs.
func NewContextParallel(scale float64, parallelism int) *Context {
	return NewContextWith(sched.Options{Scale: scale, Parallelism: parallelism})
}

// NewContextWith builds a full-scope context over a runner with the
// given engine options (scale, parallelism, persistent cache dir, ...).
func NewContextWith(opt sched.Options) *Context {
	return &Context{
		R:            sched.New(opt),
		Apps:         workload.All(),
		Reps:         workload.Representatives(),
		ThreadPoints: []int{1, 2, 3, 4, 5, 6, 7, 8},
		WayPoints:    []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	}
}

// NewQuickContext builds a reduced-scope context for tests and benches:
// representative apps only, coarser sweeps.
func NewQuickContext(scale float64) *Context {
	return NewQuickContextParallel(scale, 0)
}

// NewQuickContextParallel is NewQuickContext with an explicit worker
// count (0 = GOMAXPROCS, 1 = serial).
func NewQuickContextParallel(scale float64, parallelism int) *Context {
	return NewQuickContextWith(sched.Options{Scale: scale, Parallelism: parallelism})
}

// NewQuickContextWith is NewContextWith at reduced scope.
func NewQuickContextWith(opt sched.Options) *Context {
	c := NewContextWith(opt)
	c.Apps = c.Reps
	c.ThreadPoints = []int{1, 2, 4, 8}
	c.WayPoints = []int{1, 2, 4, 6, 8, 10, 12}
	return c
}

// warmAll warms the same (or per-runner) sweeps on several runners
// concurrently, so an ablation's platform variants overlap instead of
// serializing behind one barrier per runner. sweeps[i] goes to
// runners[i]; a single sweep fans out to every runner. Each runner
// brings its own worker pool, so N runners oversubscribe the CPU up to
// Nx — work-conserving, and for the 2-3 platform variants the
// ablations compare, cheaper than threading a shared semaphore through
// nested batches.
func warmAll(runners []*sched.Runner, sweeps ...[]sched.Spec) {
	if len(sweeps) != 1 && len(sweeps) != len(runners) {
		panic(fmt.Sprintf("experiments: warmAll with %d runners and %d sweeps",
			len(runners), len(sweeps)))
	}
	var wg sync.WaitGroup
	for i, r := range runners {
		sweep := sweeps[0]
		if len(sweeps) > 1 {
			sweep = sweeps[i]
		}
		wg.Add(1)
		go func(r *sched.Runner, specs []sched.Spec) {
			defer wg.Done()
			r.Warm(specs)
		}(r, sweep)
	}
	wg.Wait()
}

// submit fans a figure's sweep across the runner's worker pool before
// assembly begins. Drivers collect the specs of every simulation a
// figure needs, submit them in one batch, and then keep their simple
// sequential assembly loops: each value the loop asks for is already a
// memo hit, so rendered output is byte-identical to a serial run while
// the simulations themselves saturate the machine.
func (c *Context) submit(specs []sched.Spec) { c.R.Warm(specs) }

// pairMix describes the §5 co-run shape — a 4-thread latency-sensitive
// foreground with a 4-thread co-runner, packed onto disjoint core
// halves — as a declarative scenario. fgWays/bgWays of 0/0 leave the
// LLC shared; a non-zero split pins the foreground to the low ways and
// the co-runner to the high ways. once=true runs the co-runner to
// completion instead of looping (the §5.3 consolidation accounting).
func pairMix(assoc int, fg, bg *workload.Profile, fgWays, bgWays int, once bool) *scenario.Scenario {
	loop := !once
	s := &scenario.Scenario{
		Name: "pair",
		Jobs: []scenario.JobDef{
			{App: fg.Name, Role: scenario.RoleLatency, Threads: 4},
			{App: bg.Name, Role: scenario.RoleBatch, Threads: 4, Loop: &loop},
		},
	}
	if fgWays > 0 || bgWays > 0 {
		s.Partition.Policy = scenario.PolicyRef{Name: scenario.PartitionExplicit}
		s.Jobs[0].Ways = &[2]int{0, fgWays}
		s.Jobs[1].Ways = &[2]int{assoc - bgWays, assoc}
	}
	return s
}

// pairRun compiles the §5 pair shape down to the engine's mix spec.
// The compiled mix reduces to the same memo entry as the legacy
// sched.PairSpec, so scenario-expressed drivers dedup against the
// partition searches and each other exactly as before.
func (c *Context) pairRun(fg, bg *workload.Profile, fgWays, bgWays int, once bool) sched.Spec {
	cfg := c.R.MachineConfig()
	mix, err := pairMix(cfg.Hier.LLC.Assoc, fg, bg, fgWays, bgWays, once).Compile(cfg)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return mix
}

// multiRun compiles the §6.3 multi-peer shape — the foreground with n
// continuously-looping copies of bg, one core each — as a scenario.
func (c *Context) multiRun(fg, bg *workload.Profile, n int) sched.Spec {
	s := &scenario.Scenario{
		Name: "multi",
		Jobs: []scenario.JobDef{{App: fg.Name, Role: scenario.RoleLatency, Threads: 4}},
	}
	for i := 0; i < n; i++ {
		// Explicit bg<i> seeds match the engine's multi-peer naming even
		// for a single copy (the lone-co-runner default would be "bg").
		s.Jobs = append(s.Jobs, scenario.JobDef{
			App: bg.Name, Role: scenario.RoleBatch, Threads: 2,
			Seed: fmt.Sprintf("bg%d", i),
		})
	}
	mix, err := s.Compile(c.R.MachineConfig())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return mix
}

// threadsFor caps a requested operating point by the application's
// parallelism. Delegating to the engine's rule keeps planned batch
// specs aligned with what each spec's execution will actually run.
func threadsFor(app *workload.Profile, want int) int {
	return sched.CapThreads(app, want)
}

// aloneHalfSeconds returns the §5.1 foreground baseline time.
func (c *Context) aloneHalfSeconds(app *workload.Profile) float64 {
	return c.R.AloneHalf(app).JobByName(app.Name).Seconds
}

// singleSeconds runs app alone and returns its completion time.
func (c *Context) singleSeconds(app *workload.Profile, threads, ways int) float64 {
	res := c.R.RunSingle(sched.SingleSpec{App: app, Threads: threads, Ways: ways})
	return res.JobByName(app.Name).Seconds
}

// f formats a float compactly for table cells.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// pct formats a ratio as a signed percentage ("+12.3%").
func pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
