// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the required simulations through
// a shared sched.Runner (memoized, so drivers reuse each other's runs)
// and renders a text table with the same rows/series the paper reports.
// EXPERIMENTS.md records paper-vs-measured for each driver.
package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/workload"
)

// Context carries the shared runner and experiment scope.
type Context struct {
	R *sched.Runner

	// Apps is the application set under study (default: full catalog).
	Apps []*workload.Profile

	// Reps are the consolidation-study applications (default: the six
	// Table 3 representatives).
	Reps []*workload.Profile

	// ThreadPoints are the thread counts swept in Figure 1.
	ThreadPoints []int

	// WayPoints are the LLC allocations swept in Figure 2/Table 2.
	WayPoints []int
}

// NewContext builds a context at the given instruction scale
// (0 = sched.DefaultScale).
func NewContext(scale float64) *Context {
	return &Context{
		R:            sched.New(sched.Options{Scale: scale}),
		Apps:         workload.All(),
		Reps:         workload.Representatives(),
		ThreadPoints: []int{1, 2, 3, 4, 5, 6, 7, 8},
		WayPoints:    []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	}
}

// NewQuickContext builds a reduced-scope context for tests and benches:
// representative apps only, coarser sweeps.
func NewQuickContext(scale float64) *Context {
	c := NewContext(scale)
	c.Apps = c.Reps
	c.ThreadPoints = []int{1, 2, 4, 8}
	c.WayPoints = []int{1, 2, 4, 6, 8, 10, 12}
	return c
}

// aloneHalfSeconds returns the §5.1 foreground baseline time.
func (c *Context) aloneHalfSeconds(app *workload.Profile) float64 {
	return c.R.AloneHalf(app).JobByName(app.Name).Seconds
}

// singleSeconds runs app alone and returns its completion time.
func (c *Context) singleSeconds(app *workload.Profile, threads, ways int) float64 {
	res := c.R.RunSingle(sched.SingleSpec{App: app, Threads: threads, Ways: ways})
	return res.JobByName(app.Name).Seconds
}

// f formats a float compactly for table cells.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// pct formats a ratio as a signed percentage ("+12.3%").
func pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
