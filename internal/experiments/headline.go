package experiments

import (
	"repro/internal/stats"
)

// HeadlineResult aggregates the numbers from the paper's abstract and
// conclusion: consolidation benefits and foreground protection under
// each policy, plus the dynamic controller's contribution.
type HeadlineResult struct {
	Table *Table

	// Consolidation vs sequential execution (Figures 10-11).
	EnergySavingShared, EnergySavingBiased     float64 // 1 - relative energy
	ThroughputGainShared, ThroughputGainBiased float64 // weighted speedup - 1

	// Foreground protection (Figures 8-9 representatives).
	AvgSlowdownShared, WorstSlowdownShared float64
	AvgSlowdownBiased, WorstSlowdownBiased float64

	// Dynamic controller (Figure 13).
	DynamicBgGain float64
	DynamicFgCost float64
}

// Headline runs the consolidation studies over the representative set
// and assembles the abstract's numbers.
func (c *Context) Headline() *HeadlineResult {
	r := &HeadlineResult{}

	fig9 := c.Fig9StaticPolicies()
	r.AvgSlowdownShared = fig9.Avg["shared"] - 1
	r.WorstSlowdownShared = fig9.Worst["shared"] - 1
	r.AvgSlowdownBiased = fig9.Avg["biased"] - 1
	r.WorstSlowdownBiased = fig9.Worst["biased"] - 1

	_, _, outcomes := c.Fig10and11Consolidation()
	var eShared, eBiased, wShared, wBiased []float64
	for _, o := range outcomes {
		switch o.Policy {
		case "shared":
			eShared = append(eShared, o.RelSocketEnergy)
			wShared = append(wShared, o.WeightedSpeedup)
		case "biased":
			eBiased = append(eBiased, o.RelSocketEnergy)
			wBiased = append(wBiased, o.WeightedSpeedup)
		}
	}
	r.EnergySavingShared = 1 - stats.Mean(eShared)
	r.EnergySavingBiased = 1 - stats.Mean(eBiased)
	r.ThroughputGainShared = stats.Mean(wShared) - 1
	r.ThroughputGainBiased = stats.Mean(wBiased) - 1

	fig13 := c.Fig13DynamicThroughput()
	r.DynamicBgGain = stats.Mean(fig13.DynamicGain) - 1
	r.DynamicFgCost = stats.Mean(fig13.FgCostVsBest) - 1

	t := &Table{Title: "Headline numbers (abstract / §8)",
		Columns: []string{"metric", "measured", "paper"}}
	t.Add("energy saving, shared", pctf(r.EnergySavingShared), "10%")
	t.Add("energy saving, biased", pctf(r.EnergySavingBiased), "12%")
	t.Add("throughput gain, shared", pctf(r.ThroughputGainShared), "54%")
	t.Add("throughput gain, biased", pctf(r.ThroughputGainBiased), "60%")
	t.Add("avg fg slowdown, shared", pctf(r.AvgSlowdownShared), "6%")
	t.Add("worst fg slowdown, shared", pctf(r.WorstSlowdownShared), "34.5%")
	t.Add("avg fg slowdown, biased", pctf(r.AvgSlowdownBiased), "2.3%")
	t.Add("worst fg slowdown, biased", pctf(r.WorstSlowdownBiased), "7.4%")
	t.Add("dynamic bg throughput gain", pctf(r.DynamicBgGain), "19%")
	t.Add("dynamic fg cost vs best static", pctf(r.DynamicFgCost), "<2%")
	r.Table = t
	return r
}

func pctf(x float64) string {
	return pct(1 + x)
}
