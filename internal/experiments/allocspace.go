package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/workload"
)

// AllocationPoint is one of the 96 resource allocations of Figure 6.
type AllocationPoint struct {
	Threads, Ways int
	Seconds       float64
	MPKI          float64
	SocketJoules  float64
	WallJoules    float64
}

// allocationSpecs lists the thread × way grid of Figure 6 for one
// application, with the grid coordinates alongside.
func allocationSpecs(app *workload.Profile, threadPoints, wayPoints []int) ([]sched.Spec, [][2]int) {
	var specs []sched.Spec
	var coords [][2]int
	for _, th := range threadPoints {
		if th > app.MaxThreads && th != 1 {
			continue
		}
		for _, w := range wayPoints {
			specs = append(specs, sched.SingleSpec{App: app, Threads: th, Ways: w})
			coords = append(coords, [2]int{th, w})
		}
	}
	return specs, coords
}

// AllocationSpace sweeps every thread × way allocation for one
// application (Figure 6's scatter data). The whole grid runs as one
// batch; points come back in grid order.
func (c *Context) AllocationSpace(app *workload.Profile, threadPoints, wayPoints []int) []AllocationPoint {
	specs, coords := allocationSpecs(app, threadPoints, wayPoints)
	results := c.R.RunBatch(specs)
	out := make([]AllocationPoint, len(results))
	for i, res := range results {
		j := res.JobByName(app.Name)
		out[i] = AllocationPoint{
			Threads: coords[i][0], Ways: coords[i][1],
			Seconds:      j.Seconds,
			MPKI:         j.LLCMPKI,
			SocketJoules: res.Energy.SocketJoules,
			WallJoules:   res.Energy.WallJoules,
		}
	}
	return out
}

// submitAllocationGrids batches every representative's full allocation
// grid so Figures 6 and 7 assemble from memo hits.
func (c *Context) submitAllocationGrids() {
	var specs []sched.Spec
	for _, app := range c.Reps {
		s, _ := allocationSpecs(app, c.ThreadPoints, c.WayPoints)
		specs = append(specs, s...)
	}
	c.submit(specs)
}

// Fig6AllocationSpace reproduces Figure 6: runtime, MPKI, socket and
// wall energy for the full allocation grid of each representative.
func (c *Context) Fig6AllocationSpace() *Table {
	c.submitAllocationGrids()
	t := &Table{Title: "Figure 6: allocation space of the cluster representatives",
		Columns: []string{"app", "threads", "ways", "time(s)", "MPKI", "socket(J)", "wall(J)"}}
	for _, app := range c.Reps {
		pts := c.AllocationSpace(app, c.ThreadPoints, c.WayPoints)
		for _, p := range pts {
			t.Add(app.Name, fmt.Sprintf("%d", p.Threads), fmt.Sprintf("%d", p.Ways),
				fmt.Sprintf("%.4f", p.Seconds), f(p.MPKI),
				fmt.Sprintf("%.2f", p.SocketJoules), fmt.Sprintf("%.2f", p.WallJoules))
		}
	}
	t.Note("paper: race-to-halt is the optimal energy strategy; many allocations are near-optimal, leaving spare resources")
	return t
}

// Fig7YieldableCapacity reproduces the takeaway of Figure 7's contour
// plots: for each representative, the energy-optimal allocation and how
// much LLC it can yield without leaving the near-optimal region.
func (c *Context) Fig7YieldableCapacity() *Table {
	c.submitAllocationGrids()
	t := &Table{Title: "Figure 7: wall-energy-optimal allocations and yieldable LLC",
		Columns: []string{"app", "best threads", "best ways", "best wall(J)",
			"min ways within 2.5%", "yieldable MB"}}
	for _, app := range c.Reps {
		pts := c.AllocationSpace(app, c.ThreadPoints, c.WayPoints)
		best := pts[0]
		for _, p := range pts[1:] {
			if p.WallJoules < best.WallJoules {
				best = p
			}
		}
		// Smallest way count (at the best thread count) staying within
		// 2.5% of the optimal wall energy.
		minWays := best.Ways
		for _, p := range pts {
			if p.Threads != best.Threads || p.Ways == 1 {
				continue
			}
			if p.WallJoules <= best.WallJoules*1.025 && p.Ways < minWays {
				minWays = p.Ways
			}
		}
		yieldMB := float64(12-minWays) * 0.5
		t.Add(app.Name, fmt.Sprintf("%d", best.Threads), fmt.Sprintf("%d", best.Ways),
			fmt.Sprintf("%.2f", best.WallJoules), fmt.Sprintf("%d", minWays),
			fmt.Sprintf("%.1f", yieldMB))
	}
	t.Note("paper: every representative can yield 0.5MB (429.mcf) to 4MB (batik, ferret) of LLC without leaving the energy-optimal region")
	return t
}
