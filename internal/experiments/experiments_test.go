package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// quick returns a reduced-scope context small enough for unit tests.
func quick() *Context {
	return NewQuickContext(5e-4)
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tb.Add("x", "yy")
	tb.Note("n=%d", 1)
	s := tb.String()
	for _, want := range []string{"demo", "a", "yy", "note: n=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableCellCountPanics(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	tb.Add("only-one")
}

func TestFig1AndTable1(t *testing.T) {
	c := quick()
	fig := c.Fig1ThreadScalability()
	if len(fig.Rows) != len(c.Apps) {
		t.Fatalf("%d rows for %d apps", len(fig.Rows), len(c.Apps))
	}
	tab, classes := c.Table1Scalability()
	if len(tab.Rows) != len(c.Apps) {
		t.Fatal("Table 1 row count")
	}
	// The SPEC representative is sequential: must classify low.
	if classes["429.mcf"] != ScalLow {
		t.Fatalf("mcf scalability class = %s", classes["429.mcf"])
	}
	// ferret is a PARSEC high scaler.
	if classes["ferret"] != ScalHigh {
		t.Fatalf("ferret scalability class = %s", classes["ferret"])
	}
}

func TestFig2Renders(t *testing.T) {
	c := quick()
	s := c.Fig2LLCSensitivity().String()
	for _, want := range []string{"swaptions", "tomcat", "471.omnetpp"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Figure 2 missing %s", want)
		}
	}
}

func TestTable2Classes(t *testing.T) {
	c := quick()
	res := c.Table2LLCUtility()
	if res.Classes["ferret"] != UtilLow {
		t.Fatalf("ferret utility = %s, want low", res.Classes["ferret"])
	}
	if res.Classes["fop"] != UtilHigh && res.Classes["fop"] != UtilSaturated {
		t.Fatalf("fop utility = %s", res.Classes["fop"])
	}
	if res.FracUnder3MB < res.FracUnder1MB {
		t.Fatal("census fractions inconsistent")
	}
}

func TestFig3And4(t *testing.T) {
	c := quick()
	if got := c.PrefetchSensitivity(workload.MustByName("459.GemsFDTD")); got > 0.9 {
		t.Fatalf("GemsFDTD prefetch sensitivity %v, want strong benefit", got)
	}
	if got := c.BandwidthSensitivity(workload.MustByName("459.GemsFDTD")); got < 1.2 {
		t.Fatalf("GemsFDTD bandwidth sensitivity %v, want strong", got)
	}
	// Ordering is the scale-robust claim: the managed-suite app must be
	// clearly less bandwidth-sensitive than the SPEC streamer.
	gems := c.BandwidthSensitivity(workload.MustByName("459.GemsFDTD"))
	batik := c.BandwidthSensitivity(workload.MustByName("batik"))
	if batik >= gems {
		t.Fatalf("batik (%v) as bandwidth-sensitive as GemsFDTD (%v)", batik, gems)
	}
}

func TestFig5Clustering(t *testing.T) {
	c := quick()
	res := c.Fig5Clustering()
	if len(res.Groups) < 2 {
		t.Fatalf("only %d clusters among the representatives", len(res.Groups))
	}
	total := 0
	for _, g := range res.Groups {
		total += len(g)
	}
	if total != len(c.Apps) {
		t.Fatalf("clusters cover %d of %d apps", total, len(c.Apps))
	}
	if res.Dendrogram == "" {
		t.Fatal("empty dendrogram")
	}
}

func TestFig6And7(t *testing.T) {
	c := quick()
	c.Reps = c.Reps[:2] // keep the sweep small
	pts := c.AllocationSpace(c.Reps[0], c.ThreadPoints, c.WayPoints)
	if len(pts) == 0 {
		t.Fatal("no allocation points")
	}
	tab := c.Fig7YieldableCapacity()
	if len(tab.Rows) != 2 {
		t.Fatalf("Fig 7 rows: %d", len(tab.Rows))
	}
}

func TestFig8Aggregates(t *testing.T) {
	c := quick()
	res := c.Fig8Heatmap(c.Reps[:3], c.Reps[:3])
	if res.AvgSlowdown < 0.95 || res.AvgSlowdown > 1.5 {
		t.Fatalf("implausible average slowdown %v", res.AvgSlowdown)
	}
	if res.WorstSlowdown < res.AvgSlowdown {
		t.Fatal("worst < average")
	}
	if len(res.Table.Rows) != 3 {
		t.Fatal("heatmap rows")
	}
}

func TestFig9PoliciesOrdering(t *testing.T) {
	c := quick()
	c.Reps = c.Reps[:3]
	res := c.Fig9StaticPolicies()
	if len(res.Outcomes) != 3*3*3 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	// Biased is chosen to minimize fg degradation: its average cannot be
	// meaningfully worse than shared.
	if res.Avg["biased"] > res.Avg["shared"]+0.02 {
		t.Fatalf("biased avg %v worse than shared %v",
			res.Avg["biased"], res.Avg["shared"])
	}
	if res.Worst["biased"] > res.Worst["shared"]+0.02 {
		t.Fatal("biased worst exceeds shared worst")
	}
}

func TestFig10And11(t *testing.T) {
	c := quick()
	c.Reps = c.Reps[:3]
	e, w, outcomes := c.Fig10and11Consolidation()
	if len(outcomes) != 6*3 { // 6 unordered pairs x 3 policies
		t.Fatalf("%d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		if o.RelSocketEnergy <= 0 || o.RelSocketEnergy > 1.6 {
			t.Fatalf("implausible relative energy %v for %s+%s", o.RelSocketEnergy, o.A, o.B)
		}
		if o.WeightedSpeedup <= 0 || o.WeightedSpeedup > 2.2 {
			t.Fatalf("implausible weighted speedup %v", o.WeightedSpeedup)
		}
	}
	if len(e.Rows) != 6 || len(w.Rows) != 6 {
		t.Fatal("table rows")
	}
}

func TestFig12Renders(t *testing.T) {
	c := quick()
	s := c.Fig12Phases().String()
	if !strings.Contains(s, "dynamic") {
		t.Fatalf("Figure 12 missing dynamic row:\n%s", s)
	}
}

func TestFig13Shapes(t *testing.T) {
	c := quick()
	c.Reps = c.Reps[:2]
	res := c.Fig13DynamicThroughput()
	if len(res.DynamicGain) != 4 {
		t.Fatalf("%d pairs", len(res.DynamicGain))
	}
	for i, g := range res.DynamicGain {
		if g <= 0 {
			t.Fatalf("pair %d: non-positive dynamic gain", i)
		}
	}
}
