package experiments

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig8Result carries the co-scheduling heat map and its aggregates.
type Fig8Result struct {
	Table *Table
	// Slowdown[fg][bg] is the foreground's relative execution time.
	Slowdown map[string]map[string]float64
	// Aggregates over all pairs:
	AvgSlowdown, WorstSlowdown float64
	FracUnder2_5pct            float64 // fraction of fg apps with avg slowdown < 2.5%
	Sensitive, Aggressors      []string
}

// Fig8Heatmap reproduces Figure 8: normalized execution time of every
// foreground application against every background application with a
// fully shared LLC. fgApps/bgApps default to the context's app set.
func (c *Context) Fig8Heatmap(fgApps, bgApps []*workload.Profile) *Fig8Result {
	if fgApps == nil {
		fgApps = c.Apps
	}
	if bgApps == nil {
		bgApps = c.Apps
	}
	res := &Fig8Result{Slowdown: map[string]map[string]float64{}}
	var all []float64
	colSum := map[string]float64{} // per-fg average (sensitivity)
	rowSum := map[string]float64{} // per-bg average (aggressiveness)

	// One batch for the whole grid: each fg's alone baseline followed by
	// its row of pairs. Results come back in submission order.
	var specs []sched.Spec
	for _, fg := range fgApps {
		specs = append(specs, sched.AloneHalfSpec(fg))
		for _, bg := range bgApps {
			specs = append(specs, c.pairRun(fg, bg, 0, 0, false))
		}
	}
	results := c.R.RunBatch(specs)

	i := 0
	for _, fg := range fgApps {
		res.Slowdown[fg.Name] = map[string]float64{}
		alone := results[i].JobByName(fg.Name).Seconds
		i++
		for _, bg := range bgApps {
			sd := results[i].JobByName(fg.Name).Seconds / alone
			i++
			res.Slowdown[fg.Name][bg.Name] = sd
			all = append(all, sd)
			colSum[fg.Name] += sd
			rowSum[bg.Name] += sd
		}
	}

	res.AvgSlowdown = stats.Mean(all)
	res.WorstSlowdown = stats.Max(all)
	under := 0
	for _, fg := range fgApps {
		avg := colSum[fg.Name] / float64(len(bgApps))
		if avg < 1.025 {
			under++
		}
		if avg > 1.10 {
			res.Sensitive = append(res.Sensitive, fg.Name)
		}
	}
	res.FracUnder2_5pct = float64(under) / float64(len(fgApps))
	for _, bg := range bgApps {
		if rowSum[bg.Name]/float64(len(fgApps)) > 1.10 {
			res.Aggressors = append(res.Aggressors, bg.Name)
		}
	}

	t := &Table{Title: "Figure 8: fg slowdown with shared LLC (fg rows, bg columns)"}
	t.Columns = append([]string{"fg\\bg"}, names(bgApps)...)
	for _, fg := range fgApps {
		row := []string{fg.Name}
		for _, bg := range bgApps {
			row = append(row, fmt.Sprintf("%.2f", res.Slowdown[fg.Name][bg.Name]))
		}
		t.Add(row...)
	}
	t.Note("avg slowdown %s, worst %s; %.0f%% of fg apps under 2.5%% avg (paper: ~6%% avg, 34.5%% worst, ~49%% under 2.5%%)",
		pct(res.AvgSlowdown), pct(res.WorstSlowdown), res.FracUnder2_5pct*100)
	t.Note("sensitive (col avg >10%%): %v", res.Sensitive)
	t.Note("aggressors (row avg >10%%): %v", res.Aggressors)
	res.Table = t
	return res
}

func names(apps []*workload.Profile) []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// PolicyOutcome is one (pair, policy) measurement.
type PolicyOutcome struct {
	Fg, Bg       string
	Policy       string  // partition policy name
	FgSlowdown   float64 // vs fg alone on 2 cores
	BgIterations float64 // background progress during the fg run
	FgWays       int     // static allocation used (0 = shared)
}

// biasedCache memoizes the exhaustive biased search per pair.
type biasedKey struct{ fg, bg string }

var _ = biasedKey{}

// Fig9Result carries the static-policy comparison.
type Fig9Result struct {
	Table    *Table
	Outcomes []PolicyOutcome
	// Avg and worst fg slowdown per policy name.
	Avg, Worst map[string]float64
	Biased     map[biasedKey]partition.BiasedChoice
}

// Fig9StaticPolicies reproduces Figure 9: foreground degradation under
// shared, fair, and best-biased partitioning for every ordered pair of
// representatives.
func (c *Context) Fig9StaticPolicies() *Fig9Result {
	res := &Fig9Result{
		Avg:    map[string]float64{},
		Worst:  map[string]float64{},
		Biased: map[biasedKey]partition.BiasedChoice{},
	}
	sums := map[string][]float64{}

	t := &Table{Title: "Figure 9: fg slowdown by policy (pairs Ci+Cj of Table 3 representatives)",
		Columns: []string{"pair", "shared", "fair", "biased", "biased ways"}}
	assoc := 12

	// Submit every pair's full sweep up front: the biased search splits
	// (which include each pair's eventual biased run) plus the shared
	// and fair configurations. Assembly below then runs off memo hits.
	var specs []sched.Spec
	for _, fg := range c.Reps {
		for _, bg := range c.Reps {
			specs = append(specs, partition.SearchSpecs(assoc, fg, bg)...)
			specs = append(specs,
				c.pairRun(fg, bg, 0, 0, false),
				c.pairRun(fg, bg, assoc/2, assoc-assoc/2, false))
		}
	}
	c.submit(specs)

	for i, fg := range c.Reps {
		alone := c.aloneHalfSeconds(fg)
		for j, bg := range c.Reps {
			label := fmt.Sprintf("C%d+C%d", i+1, j+1)
			row := []string{label}
			var biasedWays int
			for _, pol := range partition.StaticPolicies() {
				var fgW, bgW int
				var choice partition.BiasedChoice
				if _, ok := pol.(partition.Searcher); ok {
					choice = partition.BestBiased(c.R, fg, bg)
					res.Biased[biasedKey{fg.Name, bg.Name}] = choice
					fgW, bgW = choice.FgWays, choice.BgWays
					biasedWays = fgW
				} else {
					fgW, bgW = partition.PairWays(pol, assoc)
				}
				pair := c.R.Run(c.pairRun(fg, bg, fgW, bgW, false))
				sd := pair.JobByName(fg.Name).Seconds / alone
				res.Outcomes = append(res.Outcomes, PolicyOutcome{
					Fg: fg.Name, Bg: bg.Name, Policy: pol.Name(),
					FgSlowdown:   sd,
					BgIterations: pair.JobByName(bg.Name).Iterations,
					FgWays:       fgW,
				})
				sums[pol.Name()] = append(sums[pol.Name()], sd)
				row = append(row, fmt.Sprintf("%.3f", sd))
			}
			row = append(row, fmt.Sprintf("%d", biasedWays))
			t.Add(row...)
		}
	}
	for pol, xs := range sums {
		res.Avg[pol] = stats.Mean(xs)
		res.Worst[pol] = stats.Max(xs)
	}
	t.Note("avg slowdown: shared %s, fair %s, biased %s (paper: +5.9%%, +6.1%%, +2.3%%)",
		pct(res.Avg["shared"]), pct(res.Avg["fair"]), pct(res.Avg["biased"]))
	t.Note("worst: shared %s, fair %s, biased %s (paper: +34.5%%, +16.3%%, +7.4%%)",
		pct(res.Worst["shared"]), pct(res.Worst["fair"]), pct(res.Worst["biased"]))
	res.Table = t
	return res
}

// ConsolidationOutcome is one unordered pair's energy/throughput result
// for Figures 10 and 11.
type ConsolidationOutcome struct {
	A, B            string
	Policy          string  // partition policy name
	RelSocketEnergy float64 // consolidated / sequential
	WeightedSpeedup float64 // sum of per-app alone(8thr)/together speedups
}

// Fig10and11Consolidation reproduces Figures 10 and 11: socket energy
// and weighted speedup of concurrent execution versus running each
// application sequentially on the whole machine.
func (c *Context) Fig10and11Consolidation() (*Table, *Table, []ConsolidationOutcome) {
	e := &Table{Title: "Figure 10: socket energy vs sequential execution",
		Columns: []string{"pair", "shared", "fair", "biased"}}
	w := &Table{Title: "Figure 11: weighted speedup vs sequential execution",
		Columns: []string{"pair", "shared", "fair", "biased"}}
	var outcomes []ConsolidationOutcome
	sumsE := map[string][]float64{}
	sumsW := map[string][]float64{}
	assoc := 12

	// Stage 1: sequential baselines, biased searches, and the shared and
	// fair consolidation runs — everything whose spec is known up front.
	var stage1 []sched.Spec
	for i, a := range c.Reps {
		stage1 = append(stage1, sched.AloneWholeSpec(a))
		for j := i; j < len(c.Reps); j++ {
			b := c.Reps[j]
			stage1 = append(stage1, partition.SearchSpecs(assoc, a, b)...)
			stage1 = append(stage1,
				c.pairRun(a, b, 0, 0, true),
				c.pairRun(a, b, assoc/2, assoc-assoc/2, true))
		}
	}
	c.submit(stage1)

	// Stage 2: the biased consolidation runs, whose splits the searches
	// above just decided (BestBiased is now a memo-hit re-read).
	var stage2 []sched.Spec
	for i, a := range c.Reps {
		for j := i; j < len(c.Reps); j++ {
			b := c.Reps[j]
			ch := partition.BestBiased(c.R, a, b)
			stage2 = append(stage2, c.pairRun(a, b, ch.FgWays, ch.BgWays, true))
		}
	}
	c.submit(stage2)

	for i, a := range c.Reps {
		for j := i; j < len(c.Reps); j++ {
			b := c.Reps[j]
			resA := c.R.AloneWhole(a)
			resB := c.R.AloneWhole(b)
			seqEnergy := resA.Energy.SocketJoules + resB.Energy.SocketJoules
			aAlone := resA.JobByName(a.Name).Seconds
			bAlone := resB.JobByName(b.Name).Seconds

			rowE := []string{fmt.Sprintf("C%d+C%d", i+1, j+1)}
			rowW := []string{rowE[0]}
			for _, pol := range partition.StaticPolicies() {
				var fgW, bgW int
				if _, ok := pol.(partition.Searcher); ok {
					ch := partition.BestBiased(c.R, a, b)
					fgW, bgW = ch.FgWays, ch.BgWays
				} else {
					fgW, bgW = partition.PairWays(pol, assoc)
				}
				pair := c.R.Run(c.pairRun(a, b, fgW, bgW, true))
				relE := pair.Energy.SocketJoules / seqEnergy
				ws := aAlone/pair.JobByName(a.Name).Seconds +
					bAlone/pair.JobByName(b.Name).Seconds
				outcomes = append(outcomes, ConsolidationOutcome{
					A: a.Name, B: b.Name, Policy: pol.Name(),
					RelSocketEnergy: relE, WeightedSpeedup: ws,
				})
				sumsE[pol.Name()] = append(sumsE[pol.Name()], relE)
				sumsW[pol.Name()] = append(sumsW[pol.Name()], ws)
				rowE = append(rowE, fmt.Sprintf("%.3f", relE))
				rowW = append(rowW, fmt.Sprintf("%.3f", ws))
			}
			e.Add(rowE...)
			w.Add(rowW...)
		}
	}
	e.Note("avg relative energy: shared %.3f, fair %.3f, biased %.3f (paper biased: 0.88, i.e. 12%% saving, max 37%%)",
		stats.Mean(sumsE["shared"]), stats.Mean(sumsE["fair"]), stats.Mean(sumsE["biased"]))
	w.Note("avg weighted speedup: shared %.2f, fair %.2f, biased %.2f (paper biased: 1.60, i.e. +60%%)",
		stats.Mean(sumsW["shared"]), stats.Mean(sumsW["fair"]), stats.Mean(sumsW["biased"]))
	return e, w, outcomes
}
