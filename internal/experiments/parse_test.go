package experiments

import "fmt"

// fmtSscan wraps fmt.Sscan for the test helpers.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
