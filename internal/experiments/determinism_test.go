package experiments

import (
	"testing"
)

// quickAt builds a reduced-scope context with an explicit worker count.
// The scope is deliberately tiny (two representatives, reduced scale):
// the test renders everything twice and runs under -race in CI.
func quickAt(parallelism int) *Context {
	c := NewQuickContextParallel(3e-4, parallelism)
	c.Reps = c.Reps[:2]
	c.Apps = c.Reps
	return c
}

// TestTablesByteIdenticalAcrossParallelism is the acceptance criterion
// for the concurrent engine: rendering the same experiments with 1 and
// with 8 workers must produce byte-identical text. The set covers the
// main driver shapes — a thread sweep assembled from batched singles, a
// pair heatmap consumed directly from batch results, a policy study
// with a nested biased search, and the batched Setup-hook runs of the
// phase study (samplers and the dynamic controller).
func TestTablesByteIdenticalAcrossParallelism(t *testing.T) {
	render := func(c *Context) map[string]string {
		return map[string]string{
			"fig1":  c.Fig1ThreadScalability().String(),
			"fig8":  c.Fig8Heatmap(c.Reps, c.Reps).Table.String(),
			"fig9":  c.Fig9StaticPolicies().Table.String(),
			"fig12": c.Fig12Phases().String(),
		}
	}
	serial := render(quickAt(1))
	parallel := render(quickAt(8))
	for name, want := range serial {
		if got := parallel[name]; got != want {
			t.Errorf("%s: parallel rendering diverged from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, want, got)
		}
	}
}
