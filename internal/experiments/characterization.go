package experiments

import (
	"fmt"

	"repro/internal/prefetch"
	"repro/internal/sched"
	"repro/internal/workload"
)

// ScalabilityClass is the Table 1 categorization.
type ScalabilityClass string

// Table 1 classes.
const (
	ScalLow       ScalabilityClass = "low"
	ScalSaturated ScalabilityClass = "saturated"
	ScalHigh      ScalabilityClass = "high"
)

// classifyScalability applies thresholds to a speedup curve: low if the
// best speedup stays under 1.7, high if the app is still gaining at 8
// threads with a healthy overall speedup, saturated otherwise.
func classifyScalability(speedups map[int]float64) ScalabilityClass {
	best := 1.0
	for _, s := range speedups {
		if s > best {
			best = s
		}
	}
	switch {
	case best < 1.7:
		return ScalLow
	case speedups[8] >= 3.3 && speedups[8] >= 1.08*speedups[6]:
		return ScalHigh
	case speedups[8] >= 3.3:
		return ScalSaturated
	default:
		return ScalSaturated
	}
}

// speedupSpecs lists the runs one application's Figure 1 series needs:
// the 1-thread baseline plus every thread point.
func (c *Context) speedupSpecs(app *workload.Profile) []sched.Spec {
	specs := []sched.Spec{sched.SingleSpec{App: app, Threads: 1}}
	for _, th := range c.ThreadPoints {
		specs = append(specs, sched.SingleSpec{App: app, Threads: th})
	}
	return specs
}

// SpeedupCurve measures app's speedup at each thread point, normalized
// to 1 thread (Figure 1's series for one application). The points run
// as one batch across the engine's workers.
func (c *Context) SpeedupCurve(app *workload.Profile) map[int]float64 {
	res := c.R.RunBatch(c.speedupSpecs(app))
	t1 := res[0].JobByName(app.Name).Seconds
	out := make(map[int]float64, len(c.ThreadPoints))
	for i, th := range c.ThreadPoints {
		out[th] = t1 / res[i+1].JobByName(app.Name).Seconds
	}
	return out
}

// submitSpeedupCurves batches every application's Figure 1 series so
// Figure 1 and Table 1 assemble from memo hits.
func (c *Context) submitSpeedupCurves() {
	var specs []sched.Spec
	for _, app := range c.Apps {
		specs = append(specs, c.speedupSpecs(app)...)
	}
	c.submit(specs)
}

// Fig1ThreadScalability reproduces Figure 1: normalized speedup of every
// application from 1 to 8 threads. All series are submitted as one
// batch up front.
func (c *Context) Fig1ThreadScalability() *Table {
	c.submitSpeedupCurves()
	t := &Table{Title: "Figure 1: speedup vs threads (normalized to 1 thread)"}
	t.Columns = append([]string{"app", "suite"}, colsForThreads(c.ThreadPoints)...)
	for _, app := range c.Apps {
		cur := c.SpeedupCurve(app)
		row := []string{app.Name, app.Suite}
		for _, th := range c.ThreadPoints {
			row = append(row, f(cur[th]))
		}
		t.Add(row...)
	}
	t.Note("paper: PARSEC mostly >4x at 8 threads; DaCapo largely 1-2.3x; SPEC and microbenchmarks flat")
	return t
}

func colsForThreads(ths []int) []string {
	var out []string
	for _, th := range ths {
		out = append(out, fmt.Sprintf("t%d", th))
	}
	return out
}

// Table1Scalability reproduces Table 1: the scalability classification.
func (c *Context) Table1Scalability() (*Table, map[string]ScalabilityClass) {
	c.submitSpeedupCurves()
	t := &Table{Title: "Table 1: thread scalability classes",
		Columns: []string{"app", "suite", "speedup@8", "class"}}
	classes := map[string]ScalabilityClass{}
	for _, app := range c.Apps {
		cur := c.SpeedupCurve(app)
		cl := classifyScalability(cur)
		classes[app.Name] = cl
		t.Add(app.Name, app.Suite, f(cur[8]), string(cl))
	}
	return t, classes
}

// UtilityClass is the Table 2 categorization.
type UtilityClass string

// Table 2 classes.
const (
	UtilLow       UtilityClass = "low"
	UtilSaturated UtilityClass = "saturated"
	UtilHigh      UtilityClass = "high"
)

// capacitySpecs lists one application's way sweep at a thread count.
func (c *Context) capacitySpecs(app *workload.Profile, threads int) []sched.Spec {
	specs := make([]sched.Spec, len(c.WayPoints))
	for i, w := range c.WayPoints {
		specs[i] = sched.SingleSpec{App: app, Threads: threads, Ways: w}
	}
	return specs
}

// CapacityCurve measures execution time at each way allocation for the
// given thread count (one series of Figure 2). The sweep runs as one
// batch across the engine's workers.
func (c *Context) CapacityCurve(app *workload.Profile, threads int) map[int]float64 {
	res := c.R.RunBatch(c.capacitySpecs(app, threads))
	out := make(map[int]float64, len(c.WayPoints))
	for i, w := range c.WayPoints {
		out[w] = res[i].JobByName(app.Name).Seconds
	}
	return out
}

// capacityDemandWays returns the smallest allocation (ignoring the
// pathological direct-mapped 1-way case, §3.2) whose execution time is
// within 5% of the full-cache time — the "capacity to reach 95% of max
// performance" used for the working-set census.
func capacityDemandWays(curve map[int]float64, wayPoints []int) int {
	full := curve[wayPoints[len(wayPoints)-1]]
	for _, w := range wayPoints {
		if w == 1 {
			continue
		}
		if curve[w] <= full*1.05 {
			return w
		}
	}
	return wayPoints[len(wayPoints)-1]
}

// classifyUtility applies Table 2's categories: low utility if the
// whole curve is nearly flat (capacity buys <10% end to end), high if
// the application is still gaining at the top of the range (capacity
// demand of 10+ ways), saturated in between.
func classifyUtility(curve map[int]float64, wayPoints []int) UtilityClass {
	full := curve[wayPoints[len(wayPoints)-1]]
	if w2, ok := curve[2]; ok && w2 < full*1.10 {
		return UtilLow
	}
	if capacityDemandWays(curve, wayPoints) >= 10 {
		return UtilHigh
	}
	return UtilSaturated
}

// Fig2LLCSensitivity reproduces Figure 2: execution time vs LLC
// allocation for the three §3.2 exemplars at 1/2/4/8 threads.
func (c *Context) Fig2LLCSensitivity() *Table {
	apps := []string{"swaptions", "tomcat", "471.omnetpp"}
	var specs []sched.Spec
	for _, name := range apps {
		app := workload.MustByName(name)
		for _, th := range []int{1, 2, 4, 8} {
			if th > app.MaxThreads {
				continue
			}
			specs = append(specs, c.capacitySpecs(app, th)...)
		}
	}
	c.submit(specs)

	t := &Table{Title: "Figure 2: execution time (s) vs LLC allocation"}
	t.Columns = []string{"app", "threads"}
	for _, w := range c.WayPoints {
		t.Columns = append(t.Columns, fmt.Sprintf("%.1fMB", float64(w)*0.5))
	}
	for _, name := range apps {
		app := workload.MustByName(name)
		for _, th := range []int{1, 2, 4, 8} {
			if th > app.MaxThreads {
				continue
			}
			row := []string{name, fmt.Sprintf("%d", th)}
			for _, w := range c.WayPoints {
				row = append(row, fmt.Sprintf("%.4f", c.singleSeconds(app, th, w)))
			}
			t.Add(row...)
		}
	}
	t.Note("paper: 0.5MB direct-mapped always detrimental; low/saturated/high utility exemplars; no sharp knees")
	return t
}

// Table2Result carries the Table 2 classification plus the working-set
// census the paper derives from it.
type Table2Result struct {
	Table   *Table
	Classes map[string]UtilityClass
	// DemandMB is each app's measured capacity demand in MB.
	DemandMB map[string]float64
	// Census fractions (§3.2): share of apps needing <=1MB and <=3MB.
	FracUnder1MB, FracUnder3MB float64
}

// Table2LLCUtility reproduces Table 2: LLC utility classes with the
// >10-accesses-per-kilo-instruction highlight, plus the capacity census.
func (c *Context) Table2LLCUtility() *Table2Result {
	t := &Table{Title: "Table 2: LLC utility classes (* = >10 LLC accesses per kilo-instruction)",
		Columns: []string{"app", "suite", "demandMB", "LLC APKI", "class"}}
	res := &Table2Result{
		Table:    t,
		Classes:  map[string]UtilityClass{},
		DemandMB: map[string]float64{},
	}
	var specs []sched.Spec
	for _, app := range c.Apps {
		threads := threadsFor(app, 4)
		specs = append(specs, c.capacitySpecs(app, threads)...)
		specs = append(specs, sched.SingleSpec{App: app, Threads: threads})
	}
	c.submit(specs)

	n1, n3 := 0, 0
	for _, app := range c.Apps {
		threads := threadsFor(app, 4)
		curve := c.CapacityCurve(app, threads)
		cl := classifyUtility(curve, c.WayPoints)
		demand := float64(capacityDemandWays(curve, c.WayPoints)) * 0.5
		apki := c.R.RunSingle(sched.SingleSpec{App: app, Threads: threads}).
			JobByName(app.Name).LLCAPKI
		res.Classes[app.Name] = cl
		res.DemandMB[app.Name] = demand
		if demand <= 1 {
			n1++
		}
		if demand <= 3 {
			n3++
		}
		name := app.Name
		if apki > 10 {
			name += " *"
		}
		t.Add(name, app.Suite, f(demand), f(apki), string(cl))
	}
	res.FracUnder1MB = float64(n1) / float64(len(c.Apps))
	res.FracUnder3MB = float64(n3) / float64(len(c.Apps))
	t.Note("capacity census: %.0f%% of apps need <=1MB, %.0f%% need <=3MB (paper: 44%% and 78%%)",
		res.FracUnder1MB*100, res.FracUnder3MB*100)
	return res
}

// prefetchSpecs lists one application's Figure 3 pair: all prefetchers
// on, all off.
func prefetchSpecs(app *workload.Profile) []sched.Spec {
	off := prefetch.AllOff()
	return []sched.Spec{
		sched.SingleSpec{App: app, Threads: 4},
		sched.SingleSpec{App: app, Threads: 4, Prefetch: &off},
	}
}

// PrefetchSensitivity returns time(all prefetchers on)/time(all off)
// for one application at 4 threads (one bar of Figure 3).
func (c *Context) PrefetchSensitivity(app *workload.Profile) float64 {
	res := c.R.RunBatch(prefetchSpecs(app))
	return res[0].JobByName(app.Name).Seconds / res[1].JobByName(app.Name).Seconds
}

// Fig3Prefetchers reproduces Figure 3: normalized execution time with
// all prefetchers enabled relative to all disabled.
func (c *Context) Fig3Prefetchers() *Table {
	var specs []sched.Spec
	for _, app := range c.Apps {
		specs = append(specs, prefetchSpecs(app)...)
	}
	c.submit(specs)

	t := &Table{Title: "Figure 3: time with prefetchers on / off",
		Columns: []string{"app", "suite", "on/off"}}
	sensitive := 0
	for _, app := range c.Apps {
		r := c.PrefetchSensitivity(app)
		if r < 0.95 || r > 1.05 {
			sensitive++
		}
		t.Add(app.Name, app.Suite, f(r))
	}
	t.Note("%d of %d apps sensitive (>5%% change); paper: ~10 of 46, mostly SPEC FP streamers",
		sensitive, len(c.Apps))
	return t
}

// bandwidthSpecs lists one application's Figure 4 runs: the alone
// baseline and the run against the bandwidth hog. Nil for the hog
// itself (not part of the figure).
func bandwidthSpecs(app *workload.Profile) []sched.Spec {
	hog := workload.MustByName("stream_uncached")
	if app.Name == hog.Name {
		return nil
	}
	return []sched.Spec{
		sched.AloneHalfSpec(app),
		sched.PairSpec{Fg: app, Bg: hog, Mode: sched.BackgroundLoop},
	}
}

// BandwidthSensitivity returns the slowdown of app (4 threads, cores
// 0-1) when stream_uncached hogs the memory system from core 2 (one bar
// of Figure 4).
func (c *Context) BandwidthSensitivity(app *workload.Profile) float64 {
	specs := bandwidthSpecs(app)
	if specs == nil {
		return 1 // the hog against itself is not part of the figure
	}
	res := c.R.RunBatch(specs)
	return res[1].JobByName(app.Name).Seconds / res[0].JobByName(app.Name).Seconds
}

// Fig4Bandwidth reproduces Figure 4: execution-time increase when
// co-running with the bandwidth-hog microbenchmark.
func (c *Context) Fig4Bandwidth() *Table {
	var specs []sched.Spec
	for _, app := range c.Apps {
		specs = append(specs, bandwidthSpecs(app)...)
	}
	c.submit(specs)

	t := &Table{Title: "Figure 4: slowdown vs stream_uncached bandwidth hog",
		Columns: []string{"app", "suite", "slowdown"}}
	for _, app := range c.Apps {
		t.Add(app.Name, app.Suite, f(c.BandwidthSensitivity(app)))
	}
	t.Note("paper: SPEC FP streamers and the parallel applications suffer most (up to 3.8x); DaCapo barely affected")
	return t
}
