package experiments

import (
	"strings"
	"testing"
)

func TestAblationSmallLLCShowsBiggerGains(t *testing.T) {
	c := quick()
	c.Reps = c.Reps[:3]
	tab := c.AblationSmallLLC()
	if len(tab.Rows) != 6 { // ordered pairs without self-pairs
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "2MB") {
		t.Fatal("missing small-LLC column")
	}
}

func TestAblationBandwidthQoSReducesWorstCase(t *testing.T) {
	c := quick()
	tab := c.AblationBandwidthQoS()
	// Parse the no-QoS and QoS columns: QoS must not make any victim
	// slower, and must help the worst victim.
	worstNo, worstQ := 0.0, 0.0
	for _, row := range tab.Rows {
		noQ := parseF(t, row[1])
		q := parseF(t, row[2])
		if noQ > worstNo {
			worstNo = noQ
		}
		if q > worstQ {
			worstQ = q
		}
	}
	if worstQ >= worstNo {
		t.Fatalf("bandwidth QoS did not reduce the worst slowdown: %v vs %v", worstQ, worstNo)
	}
}

func TestAblationIndexingRenders(t *testing.T) {
	c := quick()
	tab := c.AblationIndexing()
	if len(tab.Rows) != len(c.WayPoints) {
		t.Fatalf("%d rows for %d way points", len(tab.Rows), len(c.WayPoints))
	}
}

func TestAblationReplacementOrdering(t *testing.T) {
	c := quick()
	c.Reps = c.Reps[:3]
	tab := c.AblationReplacement()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Sanity: all ratios near 1 (replacement policy is a second-order
	// effect, not a 2x swing).
	for _, row := range tab.Rows {
		for _, cell := range row[4:] {
			v := parseF(t, cell)
			if v < 0.5 || v > 2 {
				t.Fatalf("implausible replacement ratio %v in %v", v, row)
			}
		}
	}
}

func TestAblationInclusionRenders(t *testing.T) {
	c := quick()
	tab := c.AblationInclusion()
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestAblationPrefetchersShowsStreamerValue(t *testing.T) {
	c := quick()
	tab := c.AblationPrefetchers()
	// libquantum row: the all-on configuration must be faster than
	// all-off (ratio < 1).
	for _, row := range tab.Rows {
		if row[0] != "462.libquantum" {
			continue
		}
		allOn := parseF(t, row[len(row)-1])
		if allOn >= 1 {
			t.Fatalf("all-on not faster than all-off for libquantum: %v", allOn)
		}
		return
	}
	t.Fatal("libquantum row missing")
}

func TestAblationMultiBackground(t *testing.T) {
	c := quick()
	tab := c.AblationMultiBackground()
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("cell %q not a number: %v", s, err)
	}
	return v
}
