package experiments

import "repro/internal/cache"

func maskFirst(n int) cache.WayMask      { return cache.MaskFirstN(n) }
func maskRange(lo, hi int) cache.WayMask { return cache.MaskRange(lo, hi) }
