package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestFig9Golden pins the rendered Figure 9 table at quick scale
// against a checked-in golden file captured before the scenario-layer
// refactor. Any change to placement, seeding, partition masks, or the
// policy search would shift these numbers; the driver rewiring on top
// of the scenario subsystem must not.
//
// Regenerate (only for an intentional model change) with:
//
//	go test ./internal/experiments -run TestFig9Golden -update-golden
func TestFig9Golden(t *testing.T) {
	got := quickAt(0).Fig9StaticPolicies().Table.String()
	path := filepath.Join("testdata", "fig9_quick.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("Fig 9 output drifted from pre-refactor golden\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
