package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/workload"
)

// featureSpecs lists every run one application's feature vector needs.
func (c *Context) featureSpecs(app *workload.Profile) []sched.Spec {
	specs := []sched.Spec{sched.SingleSpec{App: app, Threads: 1}}
	for th := 2; th <= 8; th++ {
		specs = append(specs, sched.SingleSpec{App: app, Threads: th})
	}
	threads := threadsFor(app, 4)
	for w := 2; w <= 12; w++ {
		specs = append(specs, sched.SingleSpec{App: app, Threads: threads, Ways: w})
	}
	specs = append(specs, prefetchSpecs(app)...)
	return append(specs, bandwidthSpecs(app)...)
}

// FeatureVector builds the 19-feature characterization vector of §3.5
// for one application: execution time versus thread count (7 features,
// 2-8 threads), execution time versus LLC allocation (10 features, 2-11
// ways), prefetcher sensitivity (1), and bandwidth sensitivity (1).
// Values are raw here; NormalizeFeatures rescales per dimension.
func (c *Context) FeatureVector(app *workload.Profile) []float64 {
	c.submit(c.featureSpecs(app))
	var vec []float64
	t1 := c.singleSeconds(app, 1, 0)
	for th := 2; th <= 8; th++ {
		vec = append(vec, c.singleSeconds(app, th, 0)/t1)
	}
	threads := threadsFor(app, 4)
	full := c.singleSeconds(app, threads, 12)
	for w := 2; w <= 11; w++ {
		vec = append(vec, c.singleSeconds(app, threads, w)/full)
	}
	vec = append(vec, c.PrefetchSensitivity(app))
	vec = append(vec, c.BandwidthSensitivity(app))
	return vec
}

// Fig5Result carries the clustering outcome.
type Fig5Result struct {
	Table      *Table
	Dendrogram string
	Groups     [][]string // cluster memberships by app name
	Reps       []string   // centroid-closest representative per cluster
}

// Fig5Clustering reproduces Figure 5 and Table 3: hierarchical
// single-linkage clustering of the 19-feature vectors, cut at 0.9, with
// centroid-closest representatives.
func (c *Context) Fig5Clustering() *Fig5Result {
	var specs []sched.Spec
	for _, app := range c.Apps {
		specs = append(specs, c.featureSpecs(app)...)
	}
	c.submit(specs)

	items := make([]cluster.Item, len(c.Apps))
	for i, app := range c.Apps {
		items[i] = cluster.Item{Name: app.Name, Vec: c.FeatureVector(app)}
	}
	cluster.NormalizeFeatures(items)
	merges := cluster.SingleLinkage(items)
	groups := cluster.CutAtDistance(merges, len(items), 0.9)

	res := &Fig5Result{Dendrogram: cluster.Dendrogram(items, merges)}
	t := &Table{Title: "Figure 5 / Table 3: single-linkage clusters (cut at 0.9)",
		Columns: []string{"cluster", "representative", "members"}}
	for gi, g := range groups {
		rep := items[cluster.Representative(items, g)].Name
		var names []string
		for _, idx := range g {
			names = append(names, items[idx].Name)
		}
		res.Groups = append(res.Groups, names)
		res.Reps = append(res.Reps, rep)
		t.Add(fmt.Sprintf("C%d", gi+1), rep, join(names, " "))
	}
	t.Note("paper cut at 0.9 yields 6 multi-member clusters (plus fluidanimate alone); representatives: 429.mcf, 459.GemsFDTD, ferret, fop, dedup, batik")
	res.Table = t
	return res
}

func join(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}
