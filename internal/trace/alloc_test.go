package trace

import (
	"testing"

	"repro/internal/rng"
)

// Reference generation feeds every simulated instruction; it must not
// allocate once the batch buffer exists.

func TestFillBatchZeroAllocs(t *testing.T) {
	g := NewGenerator(Config{
		DataBase:     1 << 40,
		PrivateBytes: 1 << 20,
		SharedBase:   1 << 41,
		SharedBytes:  1 << 18,
		SharedFrac:   0.2,
		Mix:          PatternMix{Seq: 0.3, Stride: 0.2, Random: 0.5},
		WriteFrac:    0.3,
		StreamFrac:   0.05,
		HotFrac:      0.6,
		RepeatFrac:   0.1,
	}, rng.NewNamed("alloc"))
	buf := make([]Ref, 256)
	allocs := testing.AllocsPerRun(200, func() { g.FillBatch(buf) })
	if allocs != 0 {
		t.Fatalf("Generator.FillBatch allocates %.3f objects per batch, want 0", allocs)
	}
}

func TestCodeFillBatchZeroAllocs(t *testing.T) {
	cg := NewCodeGenerator(1<<40, 1<<20, 64, rng.NewNamed("alloc.code"))
	buf := make([]Ref, 256)
	allocs := testing.AllocsPerRun(200, func() { cg.FillBatch(buf) })
	if allocs != 0 {
		t.Fatalf("CodeGenerator.FillBatch allocates %.3f objects per batch, want 0", allocs)
	}
}

// FillBatch must be exactly the stream Next produces, reference by
// reference — batched and unbatched consumers are interchangeable.
func TestFillBatchMatchesNext(t *testing.T) {
	cfg := Config{
		DataBase:     1 << 40,
		PrivateBytes: 1 << 20,
		SharedBase:   1 << 41,
		SharedBytes:  1 << 18,
		SharedFrac:   0.25,
		Mix:          PatternMix{Seq: 0.4, Stride: 0.2, Random: 0.4},
		WriteFrac:    0.3,
		StreamFrac:   0.1,
		HotFrac:      0.5,
		RepeatFrac:   0.15,
		HotStride:    3,
	}
	a := NewGenerator(cfg, rng.NewNamed("match"))
	b := NewGenerator(cfg, rng.NewNamed("match"))
	buf := make([]Ref, 37) // odd size: batches straddle pattern switches
	for round := 0; round < 50; round++ {
		a.FillBatch(buf)
		for i, got := range buf {
			if want := b.Next(); got != want {
				t.Fatalf("round %d ref %d: FillBatch %+v != Next %+v", round, i, got, want)
			}
		}
	}
}
