// Package trace generates synthetic memory-reference streams. Each
// application in the workload catalog is modeled as a mix of access
// patterns (sequential streams, fixed strides, skewed random reuse) over
// a phase-dependent working set, plus optional non-temporal streaming
// traffic that bypasses the cache hierarchy — the mechanism behind the
// paper's stream_uncached bandwidth hog.
package trace

import "repro/internal/rng"

// PatternMix gives the probability of each access pattern. Weights are
// normalized internally; a zero mix defaults to all-random.
type PatternMix struct {
	Seq    float64 // ascending line stream (prefetcher-friendly)
	Stride float64 // fixed multi-line stride (IP-prefetcher-friendly)
	Random float64 // skewed random reuse within the working set
}

// Config parameterizes a per-thread generator for one phase.
type Config struct {
	// DataBase is the byte address of this thread's private region.
	DataBase uint64
	// PrivateBytes is the size of the thread's private working set.
	PrivateBytes int
	// SharedBase/SharedBytes describe the region shared by all threads
	// of the application (zero SharedBytes disables sharing).
	SharedBase  uint64
	SharedBytes int
	SharedFrac  float64 // probability an access targets the shared region
	Mix         PatternMix
	StrideLines int     // stride pattern step, in lines (default 4)
	WriteFrac   float64 // probability an access is a store
	StreamFrac  float64 // probability an access is non-temporal (bypasses caches)
	HotFrac     float64 // probability a random access hits the hot subset
	HotPortion  float64 // hot subset size as a fraction of the region
	// RepeatFrac is the probability an access re-reads the previous
	// line (field-by-field object access). Repeats hit the L1 but train
	// the DCU streamer's multiple-reads-to-one-line trigger, so for
	// scattered heaps they generate pure prefetch pollution.
	RepeatFrac float64
	// HotStride spreads the hot subset across the region: hot line k
	// lives at index k*HotStride (default 1 = contiguous). A strided hot
	// layout makes next-line prefetches land on cold lines — pollution.
	HotStride int
	LineBytes int // cache line size (default 64)
}

// Ref is one generated memory reference.
type Ref struct {
	LineAddr  uint64 // line address (byte address >> log2(line))
	PC        uint64 // pseudo program counter (stable per stream)
	Write     bool
	Streaming bool // non-temporal: bypasses the cache hierarchy
}

// Generator produces references for one software thread in one phase.
type Generator struct {
	cfg       Config
	rng       *rng.Stream
	lineShift uint

	privLines   uint64
	sharedLines uint64

	seqCursor    uint64
	strideCursor uint64
	pcSeq        uint64
	pcStride     uint64
	pcShared     uint64
	pcStream     uint64
	pcRepeat     uint64
	streamCursor uint64
	lastLine     uint64
	haveLast     bool

	wSeq, wStride, wRandom float64 // normalized cumulative mix
}

// NewGenerator builds a generator. The rng stream must be dedicated to
// this generator (callers derive one per thread per phase).
func NewGenerator(cfg Config, r *rng.Stream) *Generator {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.StrideLines == 0 {
		cfg.StrideLines = 4
	}
	if cfg.HotPortion == 0 {
		cfg.HotPortion = 0.2
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	g := &Generator{
		cfg:       cfg,
		rng:       r,
		lineShift: shift,
	}
	g.privLines = uint64(cfg.PrivateBytes) >> shift
	if g.privLines == 0 {
		g.privLines = 1
	}
	g.sharedLines = uint64(cfg.SharedBytes) >> shift
	// Normalize the pattern mix.
	total := cfg.Mix.Seq + cfg.Mix.Stride + cfg.Mix.Random
	if total <= 0 {
		g.wSeq, g.wStride, g.wRandom = 0, 0, 1
	} else {
		g.wSeq = cfg.Mix.Seq / total
		g.wStride = g.wSeq + cfg.Mix.Stride/total
		g.wRandom = 1
	}
	// Stable pseudo-PCs so the IP prefetcher can train on the
	// structured streams; random accesses get varying PCs.
	g.pcSeq = r.Derive("pc.seq").Uint64() | 1
	g.pcStride = r.Derive("pc.stride").Uint64() | 1
	g.pcShared = r.Derive("pc.shared").Uint64() | 1
	g.pcStream = r.Derive("pc.stream").Uint64() | 1
	g.pcRepeat = r.Derive("pc.repeat").Uint64() | 1
	g.seqCursor = r.Uint64n(g.privLines)
	g.strideCursor = r.Uint64n(g.privLines)
	return g
}

// Next produces the next reference.
func (g *Generator) Next() Ref { return g.next() }

// FillBatch fills dst with the next len(dst) references — the exact
// stream len(dst) Next calls would produce, through the same generation
// path, so batched and one-at-a-time consumers are byte-identical. The
// execution hot path (machine.runEpoch) calls this once per epoch with a
// reusable per-thread buffer, amortizing call overhead and keeping the
// generator's cursors and rng state hot across the whole batch.
func (g *Generator) FillBatch(dst []Ref) {
	for i := range dst {
		dst[i] = g.next()
	}
}

// next generates one reference (the single implementation behind Next
// and FillBatch).
func (g *Generator) next() Ref {
	c := &g.cfg
	if c.RepeatFrac > 0 && g.haveLast && g.rng.Bool(c.RepeatFrac) {
		return Ref{
			LineAddr: g.lastLine,
			PC:       g.pcRepeat,
			Write:    g.rng.Bool(c.WriteFrac),
		}
	}
	if c.StreamFrac > 0 && g.rng.Bool(c.StreamFrac) {
		// Non-temporal stream: walk an unbounded region; never reused.
		g.streamCursor++
		return Ref{
			LineAddr:  (c.DataBase >> g.lineShift) + (1 << 30) + g.streamCursor,
			PC:        g.pcStream,
			Write:     g.rng.Bool(c.WriteFrac),
			Streaming: true,
		}
	}

	write := g.rng.Bool(c.WriteFrac)

	// Shared-region access?
	if g.sharedLines > 0 && g.rng.Bool(c.SharedFrac) {
		off := g.skewedIndex(g.sharedLines)
		return g.emit(Ref{
			LineAddr: (c.SharedBase >> g.lineShift) + off,
			PC:       g.pcShared,
			Write:    write,
		})
	}

	base := c.DataBase >> g.lineShift
	p := g.rng.Float64()
	switch {
	case p < g.wSeq:
		g.seqCursor++
		if g.seqCursor >= g.privLines {
			g.seqCursor = 0
		}
		return g.emit(Ref{LineAddr: base + g.seqCursor, PC: g.pcSeq, Write: write})
	case p < g.wStride:
		g.strideCursor += uint64(c.StrideLines)
		if g.strideCursor >= g.privLines {
			g.strideCursor %= g.privLines
		}
		return g.emit(Ref{LineAddr: base + g.strideCursor, PC: g.pcStride, Write: write})
	default:
		off := g.skewedIndex(g.privLines)
		// Vary the PC so random traffic does not train the IP table.
		pc := g.rng.Uint64() | 1
		return g.emit(Ref{LineAddr: base + off, PC: pc, Write: write})
	}
}

// emit records the line for repeat-burst generation and returns the ref.
func (g *Generator) emit(r Ref) Ref {
	g.lastLine = r.LineAddr
	g.haveLast = true
	return r
}

// skewedIndex returns a line offset in [0, n) with hot-subset reuse skew:
// with probability HotFrac the access lands in the first HotPortion of
// the region. The skew produces the smooth, knee-free miss-rate curves
// the paper observes on real hardware (§3.2).
func (g *Generator) skewedIndex(n uint64) uint64 {
	if n <= 1 {
		return 0
	}
	c := &g.cfg
	if c.HotFrac > 0 && g.rng.Bool(c.HotFrac) {
		hot := uint64(float64(n) * c.HotPortion)
		if hot < 1 {
			hot = 1
		}
		stride := uint64(c.HotStride)
		if stride <= 1 {
			return g.rng.Uint64n(hot)
		}
		return (g.rng.Uint64n(hot) * stride) % n
	}
	return g.rng.Uint64n(n)
}

// CodeGenerator produces instruction-fetch references over a code
// footprint: mostly-sequential with random branches, which is what a
// front end sees. Applications with large code footprints (JIT-heavy
// managed runtimes) thereby generate L1I and LLC instruction traffic.
type CodeGenerator struct {
	base      uint64
	lines     uint64
	cursor    uint64
	rng       *rng.Stream
	pc        uint64
	lineShift uint
}

// NewCodeGenerator builds a code-fetch generator over footprintBytes.
func NewCodeGenerator(base uint64, footprintBytes, lineBytes int, r *rng.Stream) *CodeGenerator {
	if lineBytes == 0 {
		lineBytes = 64
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	lines := uint64(footprintBytes) >> shift
	if lines == 0 {
		lines = 1
	}
	return &CodeGenerator{
		base:      base >> shift,
		lines:     lines,
		rng:       r,
		pc:        r.Derive("pc.code").Uint64() | 1,
		lineShift: shift,
	}
}

// Next returns the next instruction-line fetch.
func (cg *CodeGenerator) Next() Ref { return cg.next() }

// FillBatch fills dst with the next len(dst) fetches, identical to
// repeated Next calls (see Generator.FillBatch).
func (cg *CodeGenerator) FillBatch(dst []Ref) {
	for i := range dst {
		dst[i] = cg.next()
	}
}

func (cg *CodeGenerator) next() Ref {
	// 70% fall-through to the next line, 30% branch to a random line.
	if cg.rng.Bool(0.3) {
		cg.cursor = cg.rng.Uint64n(cg.lines)
	} else {
		cg.cursor++
		if cg.cursor >= cg.lines {
			cg.cursor = 0
		}
	}
	return Ref{LineAddr: cg.base + cg.cursor, PC: cg.pc}
}
