package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func gen(cfg Config, seed string) *Generator {
	return NewGenerator(cfg, rng.NewNamed(seed))
}

func TestDeterminism(t *testing.T) {
	cfg := Config{DataBase: 1 << 20, PrivateBytes: 64 << 10, Mix: PatternMix{Seq: 0.3, Random: 0.7}}
	a := gen(cfg, "x")
	b := gen(cfg, "x")
	for i := 0; i < 1000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("generators diverged at ref %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestAddressesStayInRegion(t *testing.T) {
	const base = uint64(4) << 30
	const ws = 256 << 10
	g := gen(Config{DataBase: base, PrivateBytes: ws, Mix: PatternMix{Seq: 0.4, Stride: 0.3, Random: 0.3}}, "r")
	lo, hi := base>>6, (base+ws)>>6
	for i := 0; i < 20000; i++ {
		r := g.Next()
		if r.Streaming {
			continue
		}
		if r.LineAddr < lo || r.LineAddr >= hi {
			t.Fatalf("ref %d outside region: %#x", i, r.LineAddr)
		}
	}
}

func TestSequentialPatternAscends(t *testing.T) {
	g := gen(Config{DataBase: 0, PrivateBytes: 1 << 20, Mix: PatternMix{Seq: 1}}, "s")
	prev := g.Next().LineAddr
	wraps := 0
	for i := 0; i < 5000; i++ {
		cur := g.Next().LineAddr
		if cur != prev+1 {
			if cur != 0 {
				t.Fatalf("non-contiguous seq step: %d -> %d", prev, cur)
			}
			wraps++
		}
		prev = cur
	}
	if wraps > 1 {
		t.Fatalf("seq stream wrapped %d times over a 16k-line region", wraps)
	}
}

func TestSeqSharesOnePC(t *testing.T) {
	g := gen(Config{DataBase: 0, PrivateBytes: 1 << 20, Mix: PatternMix{Seq: 1}}, "pc")
	pc := g.Next().PC
	for i := 0; i < 100; i++ {
		if g.Next().PC != pc {
			t.Fatal("sequential stream changed PC (IP prefetcher cannot train)")
		}
	}
}

func TestRandomVariesPC(t *testing.T) {
	g := gen(Config{DataBase: 0, PrivateBytes: 1 << 20, Mix: PatternMix{Random: 1}, HotFrac: 0}, "rp")
	pcs := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		pcs[g.Next().PC] = true
	}
	if len(pcs) < 90 {
		t.Fatalf("random accesses reused PCs heavily: %d unique of 100", len(pcs))
	}
}

func TestWriteFraction(t *testing.T) {
	g := gen(Config{DataBase: 0, PrivateBytes: 1 << 20, Mix: PatternMix{Random: 1}, WriteFrac: 0.3}, "w")
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("write fraction %v, want ~0.3", frac)
	}
}

func TestStreamingBypass(t *testing.T) {
	g := gen(Config{DataBase: 1 << 30, PrivateBytes: 1 << 20, StreamFrac: 1, Mix: PatternMix{Seq: 1}}, "st")
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if !r.Streaming {
			t.Fatal("StreamFrac=1 produced cached access")
		}
		if i > 0 && r.LineAddr != prev+1 {
			t.Fatal("stream not monotonic")
		}
		prev = r.LineAddr
	}
}

func TestHotSkew(t *testing.T) {
	const ws = 1 << 20 // 16384 lines
	g := gen(Config{DataBase: 0, PrivateBytes: ws, Mix: PatternMix{Random: 1},
		HotFrac: 0.8, HotPortion: 0.1}, "h")
	hotLines := uint64(16384 / 10)
	inHot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().LineAddr < hotLines {
			inHot++
		}
	}
	frac := float64(inHot) / n
	// 80% targeted + ~10% of the uniform 20% also lands in the hot range.
	if frac < 0.76 || frac > 0.88 {
		t.Fatalf("hot fraction %v, want ~0.82", frac)
	}
}

func TestHotStrideSpreads(t *testing.T) {
	const ws = 1 << 20
	g := gen(Config{DataBase: 0, PrivateBytes: ws, Mix: PatternMix{Random: 1},
		HotFrac: 1, HotPortion: 0.1, HotStride: 4}, "hs")
	maxSeen := uint64(0)
	for i := 0; i < 5000; i++ {
		if a := g.Next().LineAddr; a > maxSeen {
			maxSeen = a
		}
	}
	contiguousHot := uint64(16384 / 10)
	if maxSeen < contiguousHot*2 {
		t.Fatalf("strided hot set not spread: max line %d", maxSeen)
	}
}

func TestRepeatBursts(t *testing.T) {
	g := gen(Config{DataBase: 0, PrivateBytes: 1 << 20, Mix: PatternMix{Random: 1},
		RepeatFrac: 0.5}, "rep")
	repeats := 0
	prev := g.Next().LineAddr
	const n = 20000
	for i := 0; i < n; i++ {
		cur := g.Next().LineAddr
		if cur == prev {
			repeats++
		}
		prev = cur
	}
	frac := float64(repeats) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("repeat fraction %v, want ~0.5", frac)
	}
}

func TestSharedRegionRouting(t *testing.T) {
	cfg := Config{
		DataBase: 0, PrivateBytes: 1 << 20,
		SharedBase: 1 << 30, SharedBytes: 1 << 20, SharedFrac: 0.4,
		Mix: PatternMix{Random: 1},
	}
	g := gen(cfg, "sh")
	shared := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().LineAddr >= (1<<30)>>6 {
			shared++
		}
	}
	frac := float64(shared) / n
	if frac < 0.36 || frac > 0.44 {
		t.Fatalf("shared fraction %v, want ~0.4", frac)
	}
}

func TestZeroMixDefaultsToRandom(t *testing.T) {
	g := gen(Config{DataBase: 0, PrivateBytes: 1 << 20}, "z")
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[g.Next().LineAddr] = true
	}
	if len(seen) < 500 {
		t.Fatalf("zero mix produced only %d distinct lines", len(seen))
	}
}

func TestTinyRegionSafe(t *testing.T) {
	if err := quick.Check(func(ws uint16, seed uint64) bool {
		g := NewGenerator(Config{DataBase: 0, PrivateBytes: int(ws),
			Mix: PatternMix{Seq: 1, Stride: 1, Random: 1}}, rng.New(seed))
		for i := 0; i < 100; i++ {
			g.Next()
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeGenerator(t *testing.T) {
	cg := NewCodeGenerator(1<<24, 64<<10, 64, rng.NewNamed("code"))
	lo, hi := uint64(1<<24)>>6, uint64((1<<24)+(64<<10))>>6
	pc := uint64(0)
	for i := 0; i < 5000; i++ {
		r := cg.Next()
		if r.LineAddr < lo || r.LineAddr >= hi {
			t.Fatalf("code fetch outside footprint: %#x", r.LineAddr)
		}
		if r.Write {
			t.Fatal("code fetch marked as write")
		}
		if i == 0 {
			pc = r.PC
		} else if r.PC != pc {
			t.Fatal("code generator PC changed")
		}
	}
}

func TestCodeGeneratorTinyFootprint(t *testing.T) {
	cg := NewCodeGenerator(0, 1, 64, rng.NewNamed("tiny"))
	for i := 0; i < 10; i++ {
		if cg.Next().LineAddr != 0 {
			t.Fatal("1-byte footprint should stay on line 0")
		}
	}
}
