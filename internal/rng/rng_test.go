package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewNamed("stream-a")
	b := NewNamed("stream-a")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-named streams diverged at draw %d", i)
		}
	}
}

func TestNamedStreamsDiffer(t *testing.T) {
	a := NewNamed("stream-a")
	b := NewNamed("stream-b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently-named streams produced %d identical draws", same)
	}
}

func TestDeriveIndependent(t *testing.T) {
	parent := NewNamed("parent")
	before := parent.state
	d1 := parent.Derive("x")
	d2 := parent.Derive("y")
	if parent.state != before {
		t.Fatal("Derive advanced the parent stream")
	}
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams with different labels start identically")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(42)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.24 || p > 0.26 {
		t.Fatalf("Bool(0.25) rate %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(3))
	}
	mean := sum / n
	if mean < 2.8 || mean > 3.2 {
		t.Fatalf("Geometric(3) mean %v", mean)
	}
	if g := s.Geometric(0.5); g != 1 {
		t.Fatalf("Geometric(<1) = %d, want 1", g)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
}

func TestHashStringNonZero(t *testing.T) {
	if hashString("") == 0 {
		t.Fatal("hashString(\"\") returned 0")
	}
}
