// Package rng provides small, fast, deterministic pseudo-random streams.
//
// Every source of randomness in the simulator is a named splitmix64
// stream keyed by a string (application, thread, phase, ...). Two runs of
// the same experiment therefore produce bit-identical results, which lets
// tests assert exact counter values and makes every figure in
// EXPERIMENTS.md reproducible.
package rng

// Stream is a splitmix64 generator. The zero value is a valid stream
// seeded with 0; prefer New or Derive for independent streams.
type Stream struct {
	state uint64
}

// New returns a stream seeded with the given value.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// NewNamed returns a stream whose seed is derived from a string key using
// the FNV-1a hash. Streams with distinct names are statistically
// independent for simulation purposes.
func NewNamed(name string) *Stream {
	return New(hashString(name))
}

// Derive returns a new independent stream keyed by this stream's current
// state and the given label. The parent stream is not advanced.
func (s *Stream) Derive(label string) *Stream {
	return New(s.state ^ hashString(label) ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Stream) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1): the number of trials until first success with p = 1/m.
// Useful for run lengths of streaming bursts.
func (s *Stream) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	n := 1
	for !s.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

func hashString(s string) uint64 {
	// FNV-1a, 64 bit.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	if h == 0 {
		h = offset
	}
	return h
}
