// Package scenario is the declarative run layer: an N-job consolidation
// scenario — each job an application with a role, thread count, and
// replica count — plus a placement policy, a partitioning policy, and a
// metrics block, described as a Go value or a JSON file and compiled
// down to one general sched.MixSpec. The canonical shapes of the
// paper's evaluation (an application alone, the §5 foreground/background
// pair, the §6.3 multi-peer mix) are all degenerate scenarios, and new
// workload mixes are a scenario file rather than a code change — see
// examples/scenarios/ and DESIGN.md for the format.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Role classifies a job's function in the mix; it decides the job's
// termination behavior and which metrics apply to it.
type Role string

const (
	// RoleLatency is the responsiveness-critical foreground: it runs to
	// completion, ends the measurement window, and is scored by its
	// slowdown versus running alone on the same placement.
	RoleLatency Role = "latency"
	// RoleBatch is throughput work. By default it loops continuously
	// (the paper's background methodology) and is scored by iteration
	// throughput; with "loop": false it runs exactly once and
	// contributes to weighted speedup instead (the §5.3 consolidation
	// accounting).
	RoleBatch Role = "batch"
	// RoleStream is a streaming aggressor: a continuously-looping
	// bandwidth hog co-located to pressure the mix. It never
	// terminates the run.
	RoleStream Role = "stream"
)

// PartitionPolicy names a scenario-level LLC management scheme —
// the paper's four policies generalized from pairs to arbitrary mixes,
// plus an explicit per-job escape hatch.
type PartitionPolicy string

const (
	// PartitionShared leaves the LLC unpartitioned.
	PartitionShared PartitionPolicy = "shared"
	// PartitionFair splits the ways evenly across all jobs.
	PartitionFair PartitionPolicy = "fair"
	// PartitionBiased runs the exhaustive §5.2 search over the
	// scenario itself: the latency job gets w ways, every other job
	// shares the remainder, and w minimizes latency-job slowdown with
	// ties broken by co-runner throughput.
	PartitionBiased PartitionPolicy = "biased"
	// PartitionDynamic attaches the §6 online controller, with the
	// latency job monitored and all other jobs sharing the shrinking
	// partition.
	PartitionDynamic PartitionPolicy = "dynamic"
	// PartitionExplicit uses the per-job "ways" ranges verbatim.
	PartitionExplicit PartitionPolicy = "explicit"
)

// PartitionPolicies lists the searchable policies in presentation
// order.
func PartitionPolicies() []PartitionPolicy {
	return []PartitionPolicy{PartitionShared, PartitionFair, PartitionBiased, PartitionDynamic}
}

// JobDef declares one job of the mix (possibly replicated).
type JobDef struct {
	// App names a workload-catalog application.
	App string `json:"app"`
	// Role is latency, batch, or stream (default batch).
	Role Role `json:"role,omitempty"`
	// Threads is the requested software-thread count per instance
	// (default: one core's worth). Requests are capped by the
	// application's parallelism and by the instance's slot grant.
	Threads int `json:"threads,omitempty"`
	// Count replicates the job (default 1); replicas get distinct rng
	// seeds and their own placements.
	Count int `json:"count,omitempty"`
	// Loop overrides the role's looping default (batch only: latency
	// jobs never loop, stream jobs always loop).
	Loop *bool `json:"loop,omitempty"`
	// Seed overrides the instance's rng stream name (replicas append
	// their index). Defaults follow the engine's conventions: "single"
	// for a lone job, "fg" for the latency job, "bg"/"bg<i>" for
	// co-runners.
	Seed string `json:"seed,omitempty"`
	// Slots pins the job explicitly (placement policy "explicit" only;
	// requires Count 1).
	Slots []int `json:"slots,omitempty"`
	// Ways bounds the job's LLC replacement mask to [Ways[0], Ways[1])
	// (partition policy "explicit" only; omitted = full cache).
	Ways *[2]int `json:"ways,omitempty"`
}

// PlacementDef selects the slot-assignment policy.
type PlacementDef struct {
	// Policy is pack (default), spread, or explicit.
	Policy string `json:"policy,omitempty"`
}

// PartitionDef selects the LLC policy.
type PartitionDef struct {
	// Policy is shared (default), fair, biased, dynamic, or explicit.
	Policy PartitionPolicy `json:"policy,omitempty"`
}

// MachineDef optionally overrides the platform.
type MachineDef struct {
	// Cores scales the paper's platform to a different core count
	// (0 = the default 4-core prototype).
	Cores int `json:"cores,omitempty"`
}

// Metric names a reported quantity; the metrics block selects which
// sections a scenario report renders.
type Metric string

const (
	MetricSlowdown        Metric = "slowdown"         // per-job slowdown vs alone
	MetricThroughput      Metric = "throughput"       // looping-job iterations/s
	MetricWeightedSpeedup Metric = "weighted-speedup" // Σ alone/together over run-once jobs
	MetricEnergy          Metric = "energy"           // socket and wall joules
	MetricED2             Metric = "ed2"              // socket energy × window²
)

// AllMetrics returns every metric in presentation order (the default
// metrics block).
func AllMetrics() []Metric {
	return []Metric{MetricSlowdown, MetricThroughput, MetricWeightedSpeedup, MetricEnergy, MetricED2}
}

// Scenario is a complete declarative run description: either a
// single-machine job mix (Jobs plus placement/partition blocks) or a
// multi-machine fleet simulation (a Fleet block, run with
// `cachepart fleet run`).
type Scenario struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Machine     MachineDef   `json:"machine,omitempty"`
	Placement   PlacementDef `json:"placement,omitempty"`
	Partition   PartitionDef `json:"partition,omitempty"`
	Jobs        []JobDef     `json:"jobs,omitempty"`
	// Metrics selects the report sections (default: all).
	Metrics []Metric `json:"metrics,omitempty"`
	// Fleet, if present, makes this a fleet scenario: N machines under
	// open-loop load with consolidation policies (see internal/fleet).
	// Fleet scenarios carry no job mix of their own — the fleet block
	// declares the load — so Jobs and the placement/partition blocks
	// must be empty.
	Fleet *fleet.Def `json:"fleet,omitempty"`
}

// IsFleet reports whether this is a fleet scenario.
func (s *Scenario) IsFleet() bool { return s.Fleet != nil }

// Parse decodes and validates a JSON scenario. Unknown fields are
// rejected so typos in scenario files fail loudly.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseFile reads and parses one scenario file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// loops reports whether a job instance restarts continuously.
func (d *JobDef) loops() bool {
	switch d.role() {
	case RoleStream:
		return true
	case RoleLatency:
		return false
	default:
		return d.Loop == nil || *d.Loop
	}
}

func (d *JobDef) role() Role {
	if d.Role == "" {
		return RoleBatch
	}
	return d.Role
}

func (d *JobDef) count() int {
	if d.Count == 0 {
		return 1
	}
	return d.Count
}

// Validate checks everything that does not depend on the platform:
// known applications, roles, policies and metrics, role/loop
// consistency, replica counts, and the policy-specific shape rules
// (biased and dynamic need exactly one latency job; at least one job
// must terminate or the run never would).
func (s *Scenario) Validate() error {
	if s.Fleet != nil {
		switch {
		case len(s.Jobs) > 0:
			return fmt.Errorf("scenario %q: a fleet scenario declares its load in the fleet block, not jobs", s.Name)
		case s.Placement.Policy != "" || s.Partition.Policy != "":
			return fmt.Errorf("scenario %q: fleet scenarios use the fleet block's policies, not placement/partition", s.Name)
		case len(s.Metrics) > 0:
			return fmt.Errorf("scenario %q: fleet reports have a fixed metrics set; drop the metrics block", s.Name)
		case s.Machine.Cores != 0:
			return fmt.Errorf("scenario %q: set per-machine cores inside the fleet block", s.Name)
		}
		if err := s.Fleet.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		return nil
	}
	if len(s.Jobs) == 0 {
		return fmt.Errorf("scenario %q: no jobs", s.Name)
	}
	latency, terminating := 0, 0
	for i := range s.Jobs {
		d := &s.Jobs[i]
		if _, err := workload.ByName(d.App); err != nil {
			return fmt.Errorf("scenario %q job %d: %w", s.Name, i, err)
		}
		switch d.role() {
		case RoleLatency, RoleBatch, RoleStream:
		default:
			return fmt.Errorf("scenario %q job %d (%s): unknown role %q (want latency, batch, or stream)",
				s.Name, i, d.App, d.Role)
		}
		if d.Loop != nil {
			if d.role() == RoleLatency && *d.Loop {
				return fmt.Errorf("scenario %q job %d (%s): a latency job cannot loop", s.Name, i, d.App)
			}
			if d.role() == RoleStream && !*d.Loop {
				return fmt.Errorf("scenario %q job %d (%s): a stream aggressor always loops", s.Name, i, d.App)
			}
		}
		if d.Count < 0 {
			return fmt.Errorf("scenario %q job %d (%s): negative count", s.Name, i, d.App)
		}
		if d.Threads < 0 {
			return fmt.Errorf("scenario %q job %d (%s): negative threads", s.Name, i, d.App)
		}
		if len(d.Slots) > 0 && d.count() != 1 {
			return fmt.Errorf("scenario %q job %d (%s): explicit slots require count 1", s.Name, i, d.App)
		}
		if !validSeed(d.Seed) {
			return fmt.Errorf("scenario %q job %d (%s): seed %q may only contain letters, digits, '.', '_', '-'",
				s.Name, i, d.App, d.Seed)
		}
		if d.role() == RoleLatency {
			latency += d.count()
		}
		if !d.loops() {
			terminating += d.count()
		}
	}
	if terminating == 0 {
		return fmt.Errorf("scenario %q: every job loops; at least one must terminate the run", s.Name)
	}

	pol, err := placementPolicy(s.Placement.Policy)
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if pol != machine.PlaceExplicit {
		for i := range s.Jobs {
			if len(s.Jobs[i].Slots) > 0 {
				return fmt.Errorf("scenario %q job %d (%s): per-job slots require the explicit placement policy",
					s.Name, i, s.Jobs[i].App)
			}
		}
	}
	switch p := s.partitionPolicy(); p {
	case PartitionShared, PartitionFair, PartitionExplicit:
	case PartitionBiased, PartitionDynamic:
		if latency != 1 {
			return fmt.Errorf("scenario %q: the %s policy needs exactly one latency job, got %d",
				s.Name, p, latency)
		}
	default:
		return fmt.Errorf("scenario %q: unknown partition policy %q (want shared, fair, biased, dynamic, or explicit)",
			s.Name, p)
	}
	if s.partitionPolicy() != PartitionExplicit {
		for i := range s.Jobs {
			if s.Jobs[i].Ways != nil {
				return fmt.Errorf("scenario %q job %d (%s): per-job ways require the explicit partition policy",
					s.Name, i, s.Jobs[i].App)
			}
		}
	}
	for _, m := range s.Metrics {
		switch m {
		case MetricSlowdown, MetricThroughput, MetricWeightedSpeedup, MetricEnergy, MetricED2:
		default:
			return fmt.Errorf("scenario %q: unknown metric %q", s.Name, m)
		}
	}
	if s.Machine.Cores < 0 {
		return fmt.Errorf("scenario %q: negative core count", s.Name)
	}
	return nil
}

// validSeed restricts explicit seeds to a safe alphabet: seeds name
// rng streams and appear in engine memo keys.
func validSeed(seed string) bool {
	for _, r := range seed {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// partitionPolicy returns the effective policy (default shared).
func (s *Scenario) partitionPolicy() PartitionPolicy {
	if s.Partition.Policy == "" {
		return PartitionShared
	}
	return s.Partition.Policy
}

// metrics returns the effective metrics block (default: all).
func (s *Scenario) metrics() []Metric {
	if len(s.Metrics) == 0 {
		return AllMetrics()
	}
	return s.Metrics
}

func (s *Scenario) wantMetric(m Metric) bool {
	for _, x := range s.metrics() {
		if x == m {
			return true
		}
	}
	return false
}
