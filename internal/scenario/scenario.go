// Package scenario is the declarative run layer: an N-job consolidation
// scenario — each job an application with a role, thread count, and
// replica count — plus a placement policy, a partitioning policy, and a
// metrics block, described as a Go value or a JSON file and compiled
// down to one general sched.MixSpec. The canonical shapes of the
// paper's evaluation (an application alone, the §5 foreground/background
// pair, the §6.3 multi-peer mix) are all degenerate scenarios, and new
// workload mixes are a scenario file rather than a code change — see
// examples/scenarios/ and DESIGN.md for the format.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/workload"
)

// Role classifies a job's function in the mix; it decides the job's
// termination behavior and which metrics apply to it.
type Role string

const (
	// RoleLatency is the responsiveness-critical foreground: it runs to
	// completion, ends the measurement window, and is scored by its
	// slowdown versus running alone on the same placement.
	RoleLatency Role = "latency"
	// RoleBatch is throughput work. By default it loops continuously
	// (the paper's background methodology) and is scored by iteration
	// throughput; with "loop": false it runs exactly once and
	// contributes to weighted speedup instead (the §5.3 consolidation
	// accounting).
	RoleBatch Role = "batch"
	// RoleStream is a streaming aggressor: a continuously-looping
	// bandwidth hog co-located to pressure the mix. It never
	// terminates the run.
	RoleStream Role = "stream"
)

// Names of the shipped partition policies, as spelled in scenario
// files. The authoritative set is the partition package's registry —
// these constants exist for drivers and tests that construct scenarios
// in Go.
const (
	PartitionShared   = "shared"
	PartitionFair     = "fair"
	PartitionBiased   = "biased"
	PartitionDynamic  = "dynamic"
	PartitionExplicit = "explicit"
	PartitionUtility  = "utility"
)

// PartitionPolicies lists the policies every mix can run under, in
// presentation order (explicit needs per-job ranges, so it is not a
// drop-in comparison point).
func PartitionPolicies() []string {
	return []string{PartitionShared, PartitionFair, PartitionBiased, PartitionDynamic, PartitionUtility}
}

// PolicyRef selects a registered partition policy, optionally with
// parameters. In JSON it is either the legacy string alias
// ("policy": "shared") or the generic object form
// ("policy": {"name": "utility", "params": {"min_ways": 2}}).
type PolicyRef struct {
	Name   string          `json:"name"`
	Params json.RawMessage `json:"params,omitempty"`
}

// UnmarshalJSON accepts both the string alias and the object form.
func (p *PolicyRef) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &p.Name)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	type plain PolicyRef // drop methods to avoid recursion
	return dec.Decode((*plain)(p))
}

// MarshalJSON renders parameterless references back to the compact
// string alias, so legacy files round-trip unchanged.
func (p PolicyRef) MarshalJSON() ([]byte, error) {
	if len(p.Params) == 0 {
		return json.Marshal(p.Name)
	}
	type plain PolicyRef
	return json.Marshal(plain(p))
}

// JobDef declares one job of the mix (possibly replicated).
type JobDef struct {
	// App names a workload-catalog application.
	App string `json:"app"`
	// Role is latency, batch, or stream (default batch).
	Role Role `json:"role,omitempty"`
	// Threads is the requested software-thread count per instance
	// (default: one core's worth). Requests are capped by the
	// application's parallelism and by the instance's slot grant.
	Threads int `json:"threads,omitempty"`
	// Count replicates the job (default 1); replicas get distinct rng
	// seeds and their own placements.
	Count int `json:"count,omitempty"`
	// Loop overrides the role's looping default (batch only: latency
	// jobs never loop, stream jobs always loop).
	Loop *bool `json:"loop,omitempty"`
	// Seed overrides the instance's rng stream name (replicas append
	// their index). Defaults follow the engine's conventions: "single"
	// for a lone job, "fg" for the latency job, "bg"/"bg<i>" for
	// co-runners.
	Seed string `json:"seed,omitempty"`
	// Slots pins the job explicitly (placement policy "explicit" only;
	// requires Count 1).
	Slots []int `json:"slots,omitempty"`
	// Ways bounds the job's LLC replacement mask to [Ways[0], Ways[1])
	// (partition policy "explicit" only; omitted = full cache).
	Ways *[2]int `json:"ways,omitempty"`
}

// PlacementDef selects the slot-assignment policy.
type PlacementDef struct {
	// Policy is pack (default), spread, or explicit.
	Policy string `json:"policy,omitempty"`
}

// PartitionDef selects the LLC policy.
type PartitionDef struct {
	// Policy names any registered partition policy (default shared),
	// either as a plain string or as {"name": ..., "params": {...}}.
	Policy PolicyRef `json:"policy,omitempty"`
}

// MachineDef optionally overrides the platform.
type MachineDef struct {
	// Cores scales the paper's platform to a different core count
	// (0 = the default 4-core prototype).
	Cores int `json:"cores,omitempty"`
}

// Metric names a reported quantity; the metrics block selects which
// sections a scenario report renders.
type Metric string

const (
	MetricSlowdown        Metric = "slowdown"         // per-job slowdown vs alone
	MetricThroughput      Metric = "throughput"       // looping-job iterations/s
	MetricWeightedSpeedup Metric = "weighted-speedup" // Σ alone/together over run-once jobs
	MetricEnergy          Metric = "energy"           // socket and wall joules
	MetricED2             Metric = "ed2"              // socket energy × window²
)

// AllMetrics returns every metric in presentation order (the default
// metrics block).
func AllMetrics() []Metric {
	return []Metric{MetricSlowdown, MetricThroughput, MetricWeightedSpeedup, MetricEnergy, MetricED2}
}

// Scenario is a complete declarative run description: either a
// single-machine job mix (Jobs plus placement/partition blocks) or a
// multi-machine fleet simulation (a Fleet block, run with
// `cachepart fleet run`).
type Scenario struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Machine     MachineDef   `json:"machine,omitempty"`
	Placement   PlacementDef `json:"placement,omitempty"`
	Partition   PartitionDef `json:"partition,omitempty"`
	Jobs        []JobDef     `json:"jobs,omitempty"`
	// Metrics selects the report sections (default: all).
	Metrics []Metric `json:"metrics,omitempty"`
	// Fleet, if present, makes this a fleet scenario: N machines under
	// open-loop load with consolidation policies (see internal/fleet).
	// Fleet scenarios carry no job mix of their own — the fleet block
	// declares the load — so Jobs and the placement/partition blocks
	// must be empty.
	Fleet *fleet.Def `json:"fleet,omitempty"`
}

// IsFleet reports whether this is a fleet scenario.
func (s *Scenario) IsFleet() bool { return s.Fleet != nil }

// Parse decodes and validates a JSON scenario. Unknown fields are
// rejected so typos in scenario files fail loudly.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseFile reads and parses one scenario file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// loops reports whether a job instance restarts continuously.
func (d *JobDef) loops() bool {
	switch d.role() {
	case RoleStream:
		return true
	case RoleLatency:
		return false
	default:
		return d.Loop == nil || *d.Loop
	}
}

func (d *JobDef) role() Role {
	if d.Role == "" {
		return RoleBatch
	}
	return d.Role
}

func (d *JobDef) count() int {
	if d.Count == 0 {
		return 1
	}
	return d.Count
}

// Validate checks everything that does not depend on the platform:
// known applications, roles, policies and metrics, role/loop
// consistency, replica counts, and the policy-specific shape rules
// (biased and dynamic need exactly one latency job; at least one job
// must terminate or the run never would).
func (s *Scenario) Validate() error {
	if s.Fleet != nil {
		switch {
		case len(s.Jobs) > 0:
			return fmt.Errorf("scenario %q: a fleet scenario declares its load in the fleet block, not jobs", s.Name)
		case s.Placement.Policy != "" || s.Partition.Policy.Name != "":
			return fmt.Errorf("scenario %q: fleet scenarios use the fleet block's policies, not placement/partition", s.Name)
		case len(s.Metrics) > 0:
			return fmt.Errorf("scenario %q: fleet reports have a fixed metrics set; drop the metrics block", s.Name)
		case s.Machine.Cores != 0:
			return fmt.Errorf("scenario %q: set per-machine cores inside the fleet block", s.Name)
		}
		if err := s.Fleet.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		return nil
	}
	if len(s.Jobs) == 0 {
		return fmt.Errorf("scenario %q: no jobs", s.Name)
	}
	terminating := 0
	for i := range s.Jobs {
		d := &s.Jobs[i]
		if _, err := workload.ByName(d.App); err != nil {
			return fmt.Errorf("scenario %q job %d: %w", s.Name, i, err)
		}
		switch d.role() {
		case RoleLatency, RoleBatch, RoleStream:
		default:
			return fmt.Errorf("scenario %q job %d (%s): unknown role %q (want latency, batch, or stream)",
				s.Name, i, d.App, d.Role)
		}
		if d.Loop != nil {
			if d.role() == RoleLatency && *d.Loop {
				return fmt.Errorf("scenario %q job %d (%s): a latency job cannot loop", s.Name, i, d.App)
			}
			if d.role() == RoleStream && !*d.Loop {
				return fmt.Errorf("scenario %q job %d (%s): a stream aggressor always loops", s.Name, i, d.App)
			}
		}
		if d.Count < 0 {
			return fmt.Errorf("scenario %q job %d (%s): negative count", s.Name, i, d.App)
		}
		if d.Threads < 0 {
			return fmt.Errorf("scenario %q job %d (%s): negative threads", s.Name, i, d.App)
		}
		if len(d.Slots) > 0 && d.count() != 1 {
			return fmt.Errorf("scenario %q job %d (%s): explicit slots require count 1", s.Name, i, d.App)
		}
		if !validSeed(d.Seed) {
			return fmt.Errorf("scenario %q job %d (%s): seed %q may only contain letters, digits, '.', '_', '-'",
				s.Name, i, d.App, d.Seed)
		}
		if d.Ways != nil && *d.Ways == [2]int{} {
			// The zero range is the snapshot's "no declaration"
			// sentinel, so it must be rejected here or an explicitly
			// declared [0,0) would silently plan as the full cache.
			return fmt.Errorf("scenario %q job %d (%s): way range [0,0) invalid", s.Name, i, d.App)
		}
		if !d.loops() {
			terminating += d.count()
		}
	}
	if terminating == 0 {
		return fmt.Errorf("scenario %q: every job loops; at least one must terminate the run", s.Name)
	}

	pol, err := placementPolicy(s.Placement.Policy)
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if pol != machine.PlaceExplicit {
		for i := range s.Jobs {
			if len(s.Jobs[i].Slots) > 0 {
				return fmt.Errorf("scenario %q job %d (%s): per-job slots require the explicit placement policy",
					s.Name, i, s.Jobs[i].App)
			}
		}
	}
	// Resolve the partition policy through the registry (catching
	// unknown names and malformed params) and let it validate the mix
	// shape; the platform is not known yet, so Assoc is 0 here and
	// assoc-dependent rules re-check at plan time.
	ppol, err := s.Policy()
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := ppol.CheckMix(s.shapeSnapshot(0)); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if s.PartitionName() != PartitionExplicit {
		for i := range s.Jobs {
			if s.Jobs[i].Ways != nil {
				return fmt.Errorf("scenario %q job %d (%s): per-job ways require the explicit partition policy",
					s.Name, i, s.Jobs[i].App)
			}
		}
	}
	for _, m := range s.Metrics {
		switch m {
		case MetricSlowdown, MetricThroughput, MetricWeightedSpeedup, MetricEnergy, MetricED2:
		default:
			return fmt.Errorf("scenario %q: unknown metric %q", s.Name, m)
		}
	}
	if s.Machine.Cores < 0 {
		return fmt.Errorf("scenario %q: negative core count", s.Name)
	}
	return nil
}

// validSeed restricts explicit seeds to a safe alphabet: seeds name
// rng streams and appear in engine memo keys.
func validSeed(seed string) bool {
	for _, r := range seed {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// PartitionName returns the effective policy name (default shared).
func (s *Scenario) PartitionName() string {
	if s.Partition.Policy.Name == "" {
		return PartitionShared
	}
	return s.Partition.Policy.Name
}

// Policy resolves the scenario's partition policy through the
// registry.
func (s *Scenario) Policy() (partition.Policy, error) {
	return partition.New(s.PartitionName(), s.Partition.Policy.Params)
}

// shapeSnapshot renders the declared job shape (replicas expanded) as
// the policy layer's plan-time snapshot. assoc is 0 when the platform
// is not yet known (Validate); Plan re-snapshots with the real
// geometry.
func (s *Scenario) shapeSnapshot(assoc int) *partition.Snapshot {
	snap := &partition.Snapshot{Assoc: assoc}
	for i := range s.Jobs {
		d := &s.Jobs[i]
		jv := partition.JobView{App: d.App, Latency: d.role() == RoleLatency}
		if d.Ways != nil {
			jv.Declared = *d.Ways
		}
		for k := 0; k < d.count(); k++ {
			snap.Jobs = append(snap.Jobs, jv)
		}
	}
	return snap
}

// metrics returns the effective metrics block (default: all).
func (s *Scenario) metrics() []Metric {
	if len(s.Metrics) == 0 {
		return AllMetrics()
	}
	return s.Metrics
}

func (s *Scenario) wantMetric(m Metric) bool {
	for _, x := range s.metrics() {
		if x == m {
			return true
		}
	}
	return false
}
