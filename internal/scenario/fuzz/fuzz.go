// Package fuzz generates random but valid scenarios — single-machine
// job mixes and fleet definitions with event timelines — from a uint64
// seed. The generator is deterministic (the same seed always yields
// the same scenario), so the fuzz harness's findings reproduce and its
// seed corpus stays meaningful. Generation is biased toward small,
// quick-to-simulate shapes: the properties under test (validation,
// JSON round-tripping, byte-identical reports across parallelism and
// cache configurations) do not need big fleets to fail.
package fuzz

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Generate derives a scenario from seed: roughly one in three is a
// single-machine mix, the rest are small fleets, most with an event
// timeline.
func Generate(seed uint64) *scenario.Scenario {
	r := rng.New(seed)
	apps := workload.RepresentativeNames()
	if r.Intn(3) == 0 {
		return genMix(r, apps, seed)
	}
	return genFleet(r, apps, seed)
}

// genMix builds a one-latency-job mix with up to two batch co-runners
// under a random partition policy — every registered policy accepts
// this shape.
func genMix(r *rng.Stream, apps []string, seed uint64) *scenario.Scenario {
	sc := &scenario.Scenario{Name: fmt.Sprintf("fuzz-mix-%d", seed)}
	sc.Jobs = append(sc.Jobs, scenario.JobDef{
		App: apps[r.Intn(len(apps))], Role: scenario.RoleLatency,
	})
	for i, n := 0, r.Intn(3); i < n; i++ {
		sc.Jobs = append(sc.Jobs, scenario.JobDef{
			App: apps[r.Intn(len(apps))], Role: scenario.RoleBatch,
			Threads: 1 + r.Intn(2),
		})
	}
	pols := scenario.PartitionPolicies()
	sc.Partition.Policy = scenario.PolicyRef{Name: pols[r.Intn(len(pols))]}
	return sc
}

// genFleet builds a 2-5 machine fleet over a short trace, usually with
// a valid event timeline: failures and drains always paired with a
// later machine-up, mid-run batch arrivals/cancels, and load spikes.
func genFleet(r *rng.Stream, apps []string, seed uint64) *scenario.Scenario {
	machines := 2 + r.Intn(4)
	duration := 0.02 + float64(r.Intn(4))*0.01
	def := &fleet.Def{
		Machines: machines,
		Duration: duration,
		Seed:     fmt.Sprintf("fuzz-%d", seed%997),
	}
	if r.Intn(2) == 0 {
		def.Partition = fleet.PartShared
	} // else the biased default
	switch r.Intn(5) {
	case 0:
		def.Fidelity = fleet.FidelityFast
	case 1:
		def.Fidelity = fleet.FidelityAuto
	}

	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		def.Arrivals = append(def.Arrivals, loadgen.RequestClass{
			App:  apps[r.Intn(len(apps))],
			Rate: float64(20 + 20*r.Intn(5)),
		})
	}
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		def.Backlog = append(def.Backlog, loadgen.BatchDef{
			App:   apps[r.Intn(len(apps))],
			Count: 1 + r.Intn(3),
		})
	}
	if r.Intn(3) > 0 {
		def.Events = genTimeline(r, apps, machines, duration)
		if len(def.Events) > 0 && r.Intn(2) == 0 {
			def.Hysteresis = duration / 8
		}
	}
	return &scenario.Scenario{
		Name:  fmt.Sprintf("fuzz-fleet-%d", seed),
		Fleet: def,
	}
}

// genTimeline emits a causally ordered event list: timestamps strictly
// advance, a machine goes down only while up (and never the last one),
// and every down machine comes back up before the timeline ends.
func genTimeline(r *rng.Stream, apps []string, machines int, duration float64) []fleet.Event {
	var evs []fleet.Event
	down := make([]bool, machines)
	nDown := 0
	t := 0.0
	step := func() {
		t += duration * float64(1+r.Intn(8)) / 16
	}
	for i, n := 0, r.Intn(6); i < n; i++ {
		step()
		switch r.Intn(6) {
		case 0, 1: // machine-down (failure or drain) when one can be spared
			if nDown+1 < machines {
				mi := r.Intn(machines)
				for down[mi] {
					mi = (mi + 1) % machines
				}
				evs = append(evs, fleet.Event{
					At: t, Kind: fleet.EvMachineDown, Machine: mi, Drain: r.Intn(5) < 2,
				})
				down[mi] = true
				nDown++
			}
		case 2: // machine-up when one is down
			if nDown > 0 {
				mi := r.Intn(machines)
				for !down[mi] {
					mi = (mi + 1) % machines
				}
				evs = append(evs, fleet.Event{At: t, Kind: fleet.EvMachineUp, Machine: mi})
				down[mi] = false
				nDown--
			}
		case 3:
			evs = append(evs, fleet.Event{
				At: t, Kind: fleet.EvBatchArrival,
				App: apps[r.Intn(len(apps))], Count: 1 + r.Intn(2),
			})
		case 4:
			evs = append(evs, fleet.Event{
				At: t, Kind: fleet.EvBatchCancel,
				App: apps[r.Intn(len(apps))], Count: 1,
			})
		case 5:
			evs = append(evs, fleet.Event{
				At: t, Kind: fleet.EvLoadScale,
				Factor: []float64{0.5, 1.5, 2, 3}[r.Intn(4)],
			})
		}
	}
	for mi := range down {
		if down[mi] {
			step()
			evs = append(evs, fleet.Event{At: t, Kind: fleet.EvMachineUp, Machine: mi})
		}
	}
	return evs
}
