package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// seeds is the committed corpus: a spread that covers both scenario
// kinds, every fidelity tier, and timelines with failures, drains,
// cancels, and load spikes (mirrored by files under
// testdata/fuzz/FuzzScenario for `go test -fuzz`).
var seeds = []uint64{0, 1, 2, 3, 5, 7, 11, 42, 99, 1234}

// checkSeed property-checks one generated scenario:
//
//  1. the generator only emits valid scenarios (masks valid, event
//     timelines causally ordered — Validate enforces both);
//  2. the JSON encoding round-trips through Parse byte-identically;
//  3. the run report is byte-identical at engine parallelism 1 vs 8;
//  4. the run report is byte-identical without a cache dir, with a
//     cold one, and with a warm one.
func checkSeed(t *testing.T, seed uint64) {
	sc := Generate(seed)
	if err := sc.Validate(); err != nil {
		t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
	}

	b1, err := json.Marshal(sc)
	if err != nil {
		t.Fatalf("seed %d: marshal: %v", seed, err)
	}
	sc2, err := scenario.Parse(b1)
	if err != nil {
		t.Fatalf("seed %d: re-parse: %v", seed, err)
	}
	b2, err := json.Marshal(sc2)
	if err != nil {
		t.Fatalf("seed %d: re-marshal: %v", seed, err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("seed %d: JSON round-trip changed the scenario:\n%s\nvs\n%s", seed, b1, b2)
	}

	report := func(cfg core.RunConfig) string {
		s, err := core.NewSession(cfg)
		if err != nil {
			t.Fatalf("seed %d: session: %v", seed, err)
		}
		res, err := s.RunScenario(Generate(seed), cfg)
		if err != nil {
			t.Fatalf("seed %d: run (parallelism %d, cache %q): %v",
				seed, cfg.Parallelism, cfg.CacheDir, err)
		}
		return res.Envelope.Report
	}

	base := report(core.RunConfig{Quick: true, Parallelism: 1})
	if wide := report(core.RunConfig{Quick: true, Parallelism: 8}); wide != base {
		t.Errorf("seed %d: report differs at parallelism 1 vs 8:\n%s\nvs\n%s", seed, base, wide)
	}
	dir := t.TempDir()
	if cold := report(core.RunConfig{Quick: true, Parallelism: 4, CacheDir: dir}); cold != base {
		t.Errorf("seed %d: report differs with a cold cache dir:\n%s\nvs\n%s", seed, base, cold)
	}
	if warm := report(core.RunConfig{Quick: true, Parallelism: 4, CacheDir: dir}); warm != base {
		t.Errorf("seed %d: report differs with a warm cache dir:\n%s\nvs\n%s", seed, base, warm)
	}
}

// FuzzScenario is the `go test -fuzz` harness; its seed corpus is
// committed under testdata/fuzz/FuzzScenario so the non-fuzzing run
// (and CI's fuzz-smoke job) starts from meaningful inputs.
func FuzzScenario(f *testing.F) {
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkSeed(t, seed)
	})
}

// TestFuzzSeeds runs the corpus as a plain test, so the properties are
// exercised by every `go test ./...` even without -fuzz.
func TestFuzzSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz corpus replay is not a -short test")
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			checkSeed(t, seed)
		})
	}
}
