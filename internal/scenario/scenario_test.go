package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

const testScale = 3e-4

// fourJobJSON is the canonical acceptance mix: one latency-sensitive
// foreground plus three batch co-runners.
const fourJobJSON = `{
  "name": "test-1lat-3batch",
  "partition": {"policy": "shared"},
  "jobs": [
    {"app": "429.mcf", "role": "latency", "threads": 2},
    {"app": "ferret", "role": "batch", "threads": 2},
    {"app": "dedup", "role": "batch", "threads": 2},
    {"app": "canneal", "role": "batch", "threads": 2}
  ]
}`

func TestParseRejectsBadScenarios(t *testing.T) {
	cases := []struct {
		name, js, want string
	}{
		{"unknown field", `{"name":"x","jbos":[]}`, "unknown field"},
		{"no jobs", `{"name":"x","jobs":[]}`, "no jobs"},
		{"unknown app", `{"name":"x","jobs":[{"app":"nope"}]}`, "unknown application"},
		{"unknown role", `{"name":"x","jobs":[{"app":"ferret","role":"demon"}]}`, "unknown role"},
		{"all looping", `{"name":"x","jobs":[{"app":"ferret","role":"batch"}]}`, "must terminate"},
		{"looping latency", `{"name":"x","jobs":[{"app":"ferret","role":"latency","loop":true}]}`, "cannot loop"},
		{"bad policy", `{"name":"x","partition":{"policy":"magic"},"jobs":[{"app":"ferret","role":"latency"}]}`, "unknown partition policy"},
		{"biased needs latency", `{"name":"x","partition":{"policy":"biased"},"jobs":[{"app":"ferret","role":"batch","loop":false}]}`, "exactly one latency"},
		{"ways without explicit", `{"name":"x","jobs":[{"app":"ferret","role":"latency","ways":[0,6]}]}`, "explicit partition policy"},
		{"zero way range", `{"name":"x","partition":{"policy":"explicit"},"jobs":[{"app":"ferret","role":"latency","ways":[0,0]}]}`, "invalid"},
		{"bad metric", `{"name":"x","metrics":["vibes"],"jobs":[{"app":"ferret","role":"latency"}]}`, "unknown metric"},
		{"bad placement", `{"name":"x","placement":{"policy":"teleport"},"jobs":[{"app":"ferret","role":"latency"}]}`, "unknown placement"},
		{"slots without explicit", `{"name":"x","jobs":[{"app":"ferret","role":"latency","slots":[4,5]}]}`, "explicit placement policy"},
		{"bad seed", `{"name":"x","jobs":[{"app":"ferret","role":"latency","seed":"fg|evil"}]}`, "may only contain"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.js))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestCompileMatchesPairSpec: the §5 pair expressed as a scenario must
// reduce to the exact memo entry the legacy PairSpec produces — same
// placement, seeds, threads, and way split — so scenario-expressed
// drivers dedup perfectly against the historical shapes.
func TestCompileMatchesPairSpec(t *testing.T) {
	r := sched.New(sched.Options{Scale: testScale})
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")

	s := &Scenario{
		Name:      "pair",
		Partition: PartitionDef{Policy: PolicyRef{Name: PartitionExplicit}},
		Jobs: []JobDef{
			{App: fg.Name, Role: RoleLatency, Threads: 4, Ways: &[2]int{0, 8}},
			{App: bg.Name, Role: RoleBatch, Threads: 4, Ways: &[2]int{8, 12}},
		},
	}
	mix, err := s.Compile(r.MachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	pair := sched.PairSpec{Fg: fg, Bg: bg, FgWays: 8, BgWays: 4, Mode: sched.BackgroundLoop}
	if r.RunMix(mix) != r.RunPair(pair) {
		t.Fatal("scenario pair and PairSpec did not share a memo entry")
	}
}

// TestKeyDeterministic: JSON parse → compile → memo key must be a pure
// function of the file contents.
func TestKeyDeterministic(t *testing.T) {
	r := sched.New(sched.Options{Scale: testScale})
	var keys []string
	for i := 0; i < 3; i++ {
		s, err := Parse([]byte(fourJobJSON))
		if err != nil {
			t.Fatal(err)
		}
		mix, err := s.Compile(r.MachineConfig())
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, mix.Key(r))
	}
	if keys[0] == "" {
		t.Fatal("static scenario not memoizable")
	}
	if keys[1] != keys[0] || keys[2] != keys[0] {
		t.Fatalf("memo key unstable across parses:\n%s\n%s\n%s", keys[0], keys[1], keys[2])
	}
}

// TestRunAllPolicies: the acceptance mix must execute under every
// drop-in partition policy with sane per-role outcomes.
func TestRunAllPolicies(t *testing.T) {
	for _, pol := range PartitionPolicies() {
		s, err := Parse([]byte(fourJobJSON))
		if err != nil {
			t.Fatal(err)
		}
		s.Partition.Policy = PolicyRef{Name: pol}
		r := sched.New(sched.Options{Scale: testScale})
		rep, err := Run(r, s)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if len(rep.Jobs) != 4 {
			t.Fatalf("%s: %d job outcomes", pol, len(rep.Jobs))
		}
		fg := rep.Jobs[0]
		if fg.Role != RoleLatency || fg.Loop || fg.Slowdown <= 0 {
			t.Fatalf("%s: latency outcome %+v", pol, fg)
		}
		for _, o := range rep.Jobs[1:] {
			if !o.Loop || o.Throughput <= 0 {
				t.Fatalf("%s: batch outcome %+v", pol, o)
			}
		}
		if pol == PartitionBiased && (rep.BiasedFgWays < 1 || rep.BiasedFgWays > 11) {
			t.Fatalf("biased chose %d ways", rep.BiasedFgWays)
		}
		if pol == PartitionDynamic && rep.FinalFgWays < 1 {
			t.Fatalf("dynamic final ways %d", rep.FinalFgWays)
		}
		if pol == PartitionUtility && len(rep.FinalWays) != 4 {
			t.Fatalf("utility final ways %v", rep.FinalWays)
		}
		if out := rep.String(); !strings.Contains(out, pol) {
			t.Fatalf("%s: report does not name its policy:\n%s", pol, out)
		}
	}
}

// TestPolicyParamsRoundTrip: a parameterized policy block survives
// JSON parse → registry resolution → engine memo key → re-marshal,
// and distinct parameterizations never share a memo key.
func TestPolicyParamsRoundTrip(t *testing.T) {
	js := `{
  "name": "util-params",
  "partition": {"policy": {"name": "utility", "params": {"min_ways": 2, "sample_shift": 4}}},
  "jobs": [
    {"app": "429.mcf", "role": "latency", "threads": 2},
    {"app": "ferret", "role": "batch", "threads": 2}
  ]
}`
	s, err := Parse([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := s.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "utility" || pol.KeyParams() != "min=2,ss=4,d=0.5" {
		t.Fatalf("resolved policy %s{%s}", pol.Name(), pol.KeyParams())
	}

	r := sched.New(sched.Options{Scale: testScale})
	key := func(s *Scenario) string {
		mix, err := s.CompileOnline(r.MachineConfig(), r.Scale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		k := mix.Key(r)
		if k == "" {
			t.Fatal("online-policy mix not memoizable")
		}
		return k
	}
	k1 := key(s)
	if !strings.Contains(k1, "min=2,ss=4,d=0.5") {
		t.Errorf("memo key %q does not carry the policy params", k1)
	}

	// Re-marshal and re-parse: the params (and therefore the key) must
	// survive, so scenario files are the policy's canonical identity.
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse of marshaled scenario: %v\n%s", err, out)
	}
	if k2 := key(s2); k2 != k1 {
		t.Errorf("memo key changed across JSON round trip:\n%s\n%s", k1, k2)
	}

	// Defaults are a different configuration: different key.
	s3, err := Parse([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	s3.Partition.Policy = PolicyRef{Name: "utility"}
	if k3 := key(s3); k3 == k1 {
		t.Error("default and custom utility params share a memo key")
	}

	// The legacy string alias still parses and re-marshals compactly.
	var ref PolicyRef
	if err := json.Unmarshal([]byte(`"dynamic"`), &ref); err != nil || ref.Name != "dynamic" {
		t.Fatalf("string alias: %v, %+v", err, ref)
	}
	if b, _ := json.Marshal(ref); string(b) != `"dynamic"` {
		t.Errorf("parameterless ref marshals as %s, want the string alias", b)
	}
}

// TestOnlineKeyEncodesRoles: two online-policy scenarios identical in
// every mix field (apps, threads, placement, explicit seeds, loop
// flags) but with the latency role on different jobs monitor
// differently, so their memo keys must differ — or a shared runner or
// cache directory would serve one the other's result.
func TestOnlineKeyEncodesRoles(t *testing.T) {
	r := sched.New(sched.Options{Scale: testScale})
	build := func(latencyFirst bool) string {
		roleA, roleB := RoleLatency, RoleBatch
		if !latencyFirst {
			roleA, roleB = RoleBatch, RoleLatency
		}
		noLoop := false
		s := &Scenario{
			Name:      "roles",
			Partition: PartitionDef{Policy: PolicyRef{Name: PartitionDynamic}},
			Jobs: []JobDef{
				{App: "429.mcf", Role: roleA, Threads: 2, Seed: "s1", Loop: loopFor(roleA, &noLoop)},
				{App: "429.mcf", Role: roleB, Threads: 2, Seed: "s2", Loop: loopFor(roleB, &noLoop)},
			},
		}
		mix, err := s.CompileOnline(r.MachineConfig(), r.Scale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		key := mix.Key(r)
		if key == "" {
			t.Fatal("online mix not memoizable")
		}
		return key
	}
	if k1, k2 := build(true), build(false); k1 == k2 {
		t.Fatalf("role-swapped scenarios share memo key:\n%s", k1)
	}
}

// loopFor gives batch jobs an explicit loop:false so role-swapped
// variants keep identical Background flags (latency never loops).
func loopFor(r Role, noLoop *bool) *bool {
	if r == RoleBatch {
		return noLoop
	}
	return nil
}

// TestRunByteIdenticalAcrossParallelism extends the engine's
// determinism guarantee to scenario runs: serial and 8-way rendering
// must agree byte for byte, for a static and an engine-driven policy.
func TestRunByteIdenticalAcrossParallelism(t *testing.T) {
	render := func(parallelism int, pol string) string {
		s, err := Parse([]byte(fourJobJSON))
		if err != nil {
			t.Fatal(err)
		}
		s.Partition.Policy = PolicyRef{Name: pol}
		r := sched.New(sched.Options{Scale: testScale, Parallelism: parallelism})
		rep, err := Run(r, s)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	for _, pol := range []string{PartitionFair, PartitionBiased, PartitionDynamic, PartitionUtility} {
		serial, parallel := render(1, pol), render(8, pol)
		if serial != parallel {
			t.Errorf("%s: parallel run diverged from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				pol, serial, parallel)
		}
	}
}

// TestMachineOverrideAndOverSubscription: a 10-job mix on a declared
// 12-core platform places every job, shrinking grants where demand
// exceeds the machine.
func TestMachineOverrideAndOverSubscription(t *testing.T) {
	s := &Scenario{
		Name:    "big",
		Machine: MachineDef{Cores: 12},
		Jobs: []JobDef{
			{App: "429.mcf", Role: RoleLatency, Threads: 4},
			{App: "ferret", Role: RoleBatch, Threads: 4, Count: 5},
			{App: "dedup", Role: RoleBatch, Threads: 4, Count: 4},
		},
	}
	p, err := s.Plan(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Cores != 12 || !p.Overrides {
		t.Fatalf("override config: %d cores, override=%v", p.Config.Cores, p.Overrides)
	}
	if len(p.Instances) != 10 {
		t.Fatalf("%d instances", len(p.Instances))
	}
	used := map[int]bool{}
	for _, inst := range p.Instances {
		if len(inst.Slots) == 0 || inst.Threads < 1 {
			t.Fatalf("instance got nothing: %+v", inst)
		}
		for _, sl := range inst.Slots {
			if used[sl] {
				t.Fatalf("slot %d double-booked", sl)
			}
			used[sl] = true
		}
	}
	// 10 jobs × 2-core demand = 20 cores on a 12-core machine: the
	// placement must have shrunk someone.
	if len(used) > 24 {
		t.Fatalf("%d slots used on a 24-slot machine", len(used))
	}

	r := sched.New(sched.Options{Scale: testScale})
	rep, err := Run(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cores != 12 || len(rep.Jobs) != 10 {
		t.Fatalf("report: %d cores, %d jobs", rep.Cores, len(rep.Jobs))
	}
}

// TestSeedConventions: replicas and roles get the engine's seed names.
func TestSeedConventions(t *testing.T) {
	s := &Scenario{
		Name: "seeds",
		Jobs: []JobDef{
			{App: "429.mcf", Role: RoleLatency},
			{App: "ferret", Role: RoleBatch, Count: 2},
			{App: "dedup", Role: RoleStream},
		},
	}
	p, err := s.Plan(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, inst := range p.Instances {
		got = append(got, inst.Seed)
	}
	want := []string{"fg", "bg0", "bg1", "bg2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seeds = %v, want %v", got, want)
		}
	}

	lone := &Scenario{Name: "lone", Jobs: []JobDef{{App: "ferret", Role: RoleLatency}}}
	p, err = lone.Plan(machine.Default())
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances[0].Seed != "single" {
		t.Fatalf("lone seed = %q", p.Instances[0].Seed)
	}
}

func TestFleetScenarioParsing(t *testing.T) {
	good := `{
  "name": "fleet-ok",
  "fleet": {
    "machines": 4, "duration": 0.1,
    "arrivals": [{"app": "xalan", "rate": 100}],
    "backlog": [{"app": "ferret", "count": 2, "iterations": 10}]
  }
}`
	s, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsFleet() {
		t.Fatal("fleet block not detected")
	}
	// Fleet scenarios stay out of the single-machine pipeline.
	if _, err := s.Plan(machine.Default()); err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Errorf("Plan on a fleet scenario: err %v, want fleet redirect", err)
	}
	if _, err := s.Compile(machine.Default()); err == nil {
		t.Error("Compile accepted a fleet scenario")
	}

	bad := []struct {
		name, js, want string
	}{
		{"fleet with jobs", `{"name":"x","fleet":{"machines":1,"duration":1,"arrivals":[{"app":"xalan","rate":1}]},"jobs":[{"app":"ferret","role":"latency"}]}`, "not jobs"},
		{"fleet with partition block", `{"name":"x","partition":{"policy":"fair"},"fleet":{"machines":1,"duration":1,"arrivals":[{"app":"xalan","rate":1}]}}`, "fleet block's policies"},
		{"fleet with metrics", `{"name":"x","metrics":["energy"],"fleet":{"machines":1,"duration":1,"arrivals":[{"app":"xalan","rate":1}]}}`, "metrics"},
		{"fleet with machine cores", `{"name":"x","machine":{"cores":8},"fleet":{"machines":1,"duration":1,"arrivals":[{"app":"xalan","rate":1}]}}`, "inside the fleet block"},
		{"fleet unknown app", `{"name":"x","fleet":{"machines":1,"duration":1,"arrivals":[{"app":"nope","rate":1}]}}`, "unknown application"},
		{"fleet no load", `{"name":"x","fleet":{"machines":1,"duration":1}}`, "nothing to run"},
		{"fleet bad policy", `{"name":"x","fleet":{"machines":1,"duration":1,"policies":["warp"],"arrivals":[{"app":"xalan","rate":1}]}}`, "unknown policy"},
		{"fleet unknown field", `{"name":"x","fleet":{"machines":1,"duration":1,"arivals":[]}}`, "unknown field"},
	}
	for _, c := range bad {
		_, err := Parse([]byte(c.js))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.want)
		}
	}
}
