package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/tabtext"
)

// JobOutcome is one instance's measured result.
type JobOutcome struct {
	Instance
	Seconds      float64
	Iterations   float64
	IPC, MPKI    float64
	AloneSeconds float64 // run-once jobs with a baseline, else 0
	Slowdown     float64 // Seconds / AloneSeconds, run-once jobs
	Throughput   float64 // iterations per window second, looping jobs
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario *Scenario
	Policy   string // partition policy name
	Cores    int
	Assoc    int // LLC associativity of the platform run on
	Jobs     []JobOutcome

	WindowSeconds   float64
	SocketJoules    float64
	WallJoules      float64
	ED2             float64 // socket energy × window² (energy-delay-squared)
	WeightedSpeedup float64 // Σ alone/together over run-once jobs
	TotalThroughput float64 // Σ looping-job throughput

	// BiasedFgWays is the split the biased search chose.
	BiasedFgWays int
	// Reallocations/FinalFgWays/FinalWays summarize an online policy's
	// decision loop (FinalFgWays is the latency job's final allocation,
	// 0 when the mix has no single latency job).
	Reallocations int
	FinalFgWays   int
	FinalWays     []int
}

// Run executes a scenario on the runner under its declared partition
// policy: it plans the placement, batches the baselines the metrics
// block needs together with the run itself (and, for the biased
// policy, the whole split sweep) across the engine's workers, and
// assembles a deterministic report. Byte-identical output at any
// parallelism, like every other driver on the engine.
func Run(r *sched.Runner, s *Scenario) (*Report, error) {
	return RunSpan(r, s, 0)
}

// RunSpan is Run with the trace span the scenario's spans nest under
// (0 = root). Tracing changes nothing about the report.
func RunSpan(r *sched.Runner, s *Scenario, parent obs.SpanID) (*Report, error) {
	tr := r.Tracer()
	t0 := time.Now()
	csp := tr.Start("compile", parent)
	p, err := s.Plan(r.MachineConfig())
	csp.End()
	r.AddPhase("compile", time.Since(t0))
	if err != nil {
		return nil, err
	}
	batch := sched.BatchInfo{Span: parent, Phase: "scenario"}
	assoc := p.Config.Hier.LLC.Assoc

	// Baselines: one alone run per terminating job when a normalizing
	// metric is requested.
	needAlone := s.wantMetric(MetricSlowdown) || s.wantMetric(MetricWeightedSpeedup)
	var aloneIdx []int
	var specs []sched.Spec
	if needAlone {
		for i, inst := range p.Instances {
			if !inst.Loop {
				aloneIdx = append(aloneIdx, i)
				specs = append(specs, p.aloneMix(i))
			}
		}
	}

	pol, err := s.Policy()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	rep := &Report{Scenario: s, Policy: pol.Name(), Cores: p.Config.Cores, Assoc: assoc}

	var main *machine.Result
	var ways [][2]int
	switch searcher, _ := pol.(partition.Searcher); {
	case searcher != nil:
		fg := p.latencyIndex()
		// The biased policy needs the latency job's alone baseline even
		// when no normalizing metric was requested.
		fgAloneAt := -1
		for k, i := range aloneIdx {
			if i == fg {
				fgAloneAt = k
			}
		}
		if fgAloneAt < 0 {
			fgAloneAt = len(specs)
			specs = append(specs, p.aloneMix(fg))
		}
		sweepAt := len(specs)
		for w := 1; w < assoc; w++ {
			specs = append(specs, p.mix(p.splitWays(fg, w), nil))
		}
		results := r.RunBatchIn(batch, specs)

		fgAlone := results[fgAloneAt].Jobs[0].Seconds
		var cands []partition.Candidate
		for w := 1; w < assoc; w++ {
			res := results[sweepAt+w-1]
			var thru float64
			for _, j := range res.Jobs {
				if j.Background {
					thru += j.Iterations
				}
			}
			cands = append(cands, partition.Candidate{
				FgWays:       w,
				FgSlowdown:   res.Jobs[fg].Seconds / fgAlone,
				BgThroughput: thru,
			})
		}
		best := cands[searcher.Pick(cands)]
		rep.BiasedFgWays = best.FgWays
		ways = p.splitWays(fg, best.FgWays)
		main = results[sweepAt+best.FgWays-1]
		assembleJobs(rep, p, ways, main, results, aloneIdx)

	case pol.Online(): // dynamic, utility, ...
		mainAt := len(specs)
		specs = append(specs, p.onlineMix(pol, r.Scale(), nil))
		results := r.RunBatchIn(batch, specs)
		main = results[mainAt]
		if tr := main.Partition; tr != nil {
			rep.Reallocations = tr.Reallocations
			rep.FinalWays = tr.FinalWays
			for i, inst := range p.Instances {
				if inst.Role == RoleLatency && i < len(tr.FinalWays) {
					rep.FinalFgWays = tr.FinalWays[i]
					break
				}
			}
		}
		assembleJobs(rep, p, nil, main, results, aloneIdx)

	default: // offline: shared, fair, explicit
		mainAt := len(specs)
		specs = append(specs, p.mix(nil, nil))
		results := r.RunBatchIn(batch, specs)
		main = results[mainAt]
		assembleJobs(rep, p, nil, main, results, aloneIdx)
	}

	rep.WindowSeconds = main.WindowSeconds
	rep.SocketJoules = main.Energy.SocketJoules
	rep.WallJoules = main.Energy.WallJoules
	rep.ED2 = main.Energy.SocketJoules * main.WindowSeconds * main.WindowSeconds
	return rep, nil
}

// assembleJobs fills the per-instance outcomes and the aggregate
// metrics from the main run and the alone baselines.
func assembleJobs(rep *Report, p *Plan, ways [][2]int, main *machine.Result, results []*machine.Result, aloneIdx []int) {
	aloneAt := map[int]int{}
	for k, i := range aloneIdx {
		aloneAt[i] = k
	}
	for i, inst := range p.Instances {
		if ways != nil {
			inst.WayFirst, inst.WayLim = ways[i][0], ways[i][1]
		}
		jr := main.Jobs[i]
		out := JobOutcome{
			Instance:   inst,
			Seconds:    jr.Seconds,
			Iterations: jr.Iterations,
			IPC:        jr.IPC,
			MPKI:       jr.LLCMPKI,
		}
		if inst.Loop {
			if main.WindowSeconds > 0 {
				out.Throughput = jr.Iterations / main.WindowSeconds
			}
			rep.TotalThroughput += out.Throughput
		} else if k, ok := aloneAt[i]; ok {
			out.AloneSeconds = results[k].Jobs[0].Seconds
			out.Slowdown = out.Seconds / out.AloneSeconds
			rep.WeightedSpeedup += out.AloneSeconds / out.Seconds
		}
		rep.Jobs = append(rep.Jobs, out)
	}
}

// slotRanges compresses a slot list into "a-b,c" run notation.
func slotRanges(slots []int) string {
	if len(slots) == 0 {
		return "-"
	}
	sorted := append([]int(nil), slots...)
	sort.Ints(sorted)
	var sb strings.Builder
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&sb, "%d-%d", sorted[i], sorted[j])
		} else {
			fmt.Fprintf(&sb, "%d", sorted[i])
		}
		i = j + 1
	}
	return sb.String()
}

// String renders the report as aligned text, shaped by the scenario's
// metrics block. Output is deterministic: byte-identical across
// engine parallelism settings.
func (r *Report) String() string {
	s := r.Scenario
	var sb strings.Builder
	fmt.Fprintf(&sb, "== scenario: %s (policy %s, %d cores) ==\n", s.Name, r.Policy, r.Cores)
	if s.Description != "" {
		fmt.Fprintf(&sb, "%s\n", s.Description)
	}

	cols := []string{"job", "role", "app", "thr", "slots", "ways", "time(s)"}
	if s.wantMetric(MetricSlowdown) {
		cols = append(cols, "slowdown")
	}
	if s.wantMetric(MetricThroughput) {
		cols = append(cols, "iters", "iters/s")
	}
	cols = append(cols, "IPC", "MPKI")

	rows := [][]string{cols}
	for _, o := range r.Jobs {
		row := []string{o.Seed, string(o.Role), o.App.Name,
			fmt.Sprintf("%d", o.Threads), slotRanges(o.Slots), o.WaysLabel(),
			fmt.Sprintf("%.4f", o.Seconds)}
		if s.wantMetric(MetricSlowdown) {
			if o.Loop {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.3f", o.Slowdown))
			}
		}
		if s.wantMetric(MetricThroughput) {
			if o.Loop {
				row = append(row, fmt.Sprintf("%.2f", o.Iterations), fmt.Sprintf("%.2f", o.Throughput))
			} else {
				row = append(row, "-", "-")
			}
		}
		row = append(row, fmt.Sprintf("%.2f", o.IPC), fmt.Sprintf("%.2f", o.MPKI))
		rows = append(rows, row)
	}
	tabtext.WriteAligned(&sb, rows)

	fmt.Fprintf(&sb, "window %.4f s\n", r.WindowSeconds)
	if s.wantMetric(MetricWeightedSpeedup) {
		n := 0
		for _, o := range r.Jobs {
			if !o.Loop {
				n++
			}
		}
		fmt.Fprintf(&sb, "weighted speedup %.3f over %d run-once jobs\n", r.WeightedSpeedup, n)
	}
	if s.wantMetric(MetricThroughput) && r.TotalThroughput > 0 {
		fmt.Fprintf(&sb, "total looping throughput %.2f iters/s\n", r.TotalThroughput)
	}
	if s.wantMetric(MetricEnergy) {
		fmt.Fprintf(&sb, "energy %.2f J socket, %.2f J wall\n", r.SocketJoules, r.WallJoules)
	}
	if s.wantMetric(MetricED2) {
		fmt.Fprintf(&sb, "ED2 %.4g J*s^2 (socket)\n", r.ED2)
	}
	switch {
	case r.Policy == PartitionBiased:
		fmt.Fprintf(&sb, "biased search: latency job granted %d of %d ways\n",
			r.BiasedFgWays, r.Assoc)
	case r.Policy == PartitionDynamic:
		fmt.Fprintf(&sb, "dynamic controller: %d reallocations, final latency allocation %d ways\n",
			r.Reallocations, r.FinalFgWays)
	case len(r.FinalWays) > 0: // other online policies (utility, ...)
		parts := make([]string, len(r.FinalWays))
		for i, w := range r.FinalWays {
			parts[i] = fmt.Sprintf("%d", w)
		}
		fmt.Fprintf(&sb, "%s policy: %d reallocations, final allocation %s of %d ways\n",
			r.Policy, r.Reallocations, strings.Join(parts, "/"), r.Assoc)
	}
	return sb.String()
}
