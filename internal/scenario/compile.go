package scenario

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Instance is one resolved job of a planned scenario: a JobDef replica
// with its application profile, rng seed, slot grant, and (for static
// policies) LLC way range.
type Instance struct {
	App     *workload.Profile
	Role    Role
	Threads int // granted threads: request capped by profile and slots
	Loop    bool
	Seed    string
	Slots   []int
	// WayFirst/WayLim is the static LLC range [WayFirst, WayLim);
	// both zero = full cache.
	WayFirst, WayLim int
	// Declared is the job's explicitly declared way range, if any (the
	// explicit policy's input; 0,0 = none).
	Declared [2]int
}

// WaysLabel renders the instance's LLC range for reports: "all" for
// the full cache, "[first,lim)" otherwise.
func (i Instance) WaysLabel() string {
	if i.WayFirst == 0 && i.WayLim == 0 {
		return "all"
	}
	return fmt.Sprintf("[%d,%d)", i.WayFirst, i.WayLim)
}

// Plan is a scenario resolved against a platform: the effective
// machine, the expanded instances with validated placements, and the
// way ranges of the static policies. Biased and dynamic scenarios plan
// with full-cache ranges; Run assigns their splits.
type Plan struct {
	Scenario  *Scenario
	Config    machine.Config
	Overrides bool // Config differs from the runner's template
	Instances []Instance
}

func placementPolicy(name string) (machine.PlacementPolicy, error) {
	return machine.PlacementPolicyByName(name)
}

// Plan resolves the scenario against the given platform template:
// machine override, job expansion (replicas, default threads and
// seeds), placement planning, and static way assignment. Everything a
// scenario file can get wrong surfaces here as a descriptive error.
func (s *Scenario) Plan(base machine.Config) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Fleet != nil {
		return nil, fmt.Errorf("scenario %q: fleet scenarios run on the fleet layer; use 'cachepart fleet run' or fleet.Run", s.Name)
	}
	cfg, override := base, false
	if s.Machine.Cores > 0 && s.Machine.Cores != base.Cores {
		// A core-count override rebuilds the default platform at that
		// size; scenario machines always use the paper's geometry.
		cfg, override = machine.DefaultWithCores(s.Machine.Cores), true
	}

	// Expand replicas and assign seeds.
	type protoInst struct {
		def     *JobDef
		replica int
	}
	var protos []protoInst
	latency, others := 0, 0
	for i := range s.Jobs {
		d := &s.Jobs[i]
		for k := 0; k < d.count(); k++ {
			protos = append(protos, protoInst{def: d, replica: k})
		}
		if d.role() == RoleLatency {
			latency += d.count()
		} else {
			others += d.count()
		}
	}
	insts := make([]Instance, len(protos))
	seedsSeen := map[string]bool{}
	li, oi := 0, 0
	for i, p := range protos {
		app := workload.MustByName(p.def.App)
		threads := p.def.Threads
		if threads == 0 {
			threads = cfg.ThreadsPerCore
		}
		var seed string
		switch {
		case p.def.Seed != "" && p.def.count() == 1:
			seed = p.def.Seed
		case p.def.Seed != "":
			seed = fmt.Sprintf("%s%d", p.def.Seed, p.replica)
		case len(protos) == 1:
			seed = "single"
		case p.def.role() == RoleLatency && latency == 1:
			seed = "fg"
		case p.def.role() == RoleLatency:
			seed = fmt.Sprintf("fg%d", li)
		case others == 1:
			seed = "bg"
		default:
			seed = fmt.Sprintf("bg%d", oi)
		}
		if p.def.role() == RoleLatency {
			li++
		} else {
			oi++
		}
		key := app.Name + "/" + seed
		if seedsSeen[key] {
			return nil, fmt.Errorf("scenario %q: two instances of %s share seed %q (give replicas distinct seeds)",
				s.Name, app.Name, seed)
		}
		seedsSeen[key] = true
		insts[i] = Instance{
			App: app, Role: p.def.role(), Threads: threads,
			Loop: p.def.loops(), Seed: seed,
		}
	}

	// Placement.
	pol, err := placementPolicy(s.Placement.Policy)
	if err != nil {
		return nil, err
	}
	if pol == machine.PlaceExplicit {
		lists := make([][]int, len(protos))
		for i, p := range protos {
			if len(p.def.Slots) == 0 {
				return nil, fmt.Errorf("scenario %q: explicit placement but job %s has no slots",
					s.Name, p.def.App)
			}
			lists[i] = p.def.Slots
		}
		if err := machine.ValidateSlots(cfg, lists); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		for i := range insts {
			insts[i].Slots = lists[i]
		}
	} else {
		reqs := make([]int, len(insts))
		for i := range insts {
			reqs[i] = insts[i].Threads
		}
		lists, err := machine.Plan(cfg, pol, reqs)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		for i := range insts {
			insts[i].Slots = lists[i]
		}
	}
	// The granted thread count is the request capped by the profile and
	// by the slot grant (over-subscribed mixes shrink).
	for i := range insts {
		t := sched.CapThreads(insts[i].App, insts[i].Threads)
		if t > len(insts[i].Slots) {
			t = len(insts[i].Slots)
		}
		insts[i].Threads = t
	}

	// Record each job's declared way range (the explicit policy's
	// input) on its instances.
	for i, p := range protos {
		if p.def.Ways != nil {
			insts[i].Declared = *p.def.Ways
		}
	}

	// Partition-policy way assignment. The policy re-validates against
	// the real geometry, then offline policies decide the static ranges
	// here; search (biased) and online (dynamic, utility) policies plan
	// with the full cache and decide at run time.
	assoc := cfg.Hier.LLC.Assoc
	ppol, err := s.Policy()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	plan := &Plan{Scenario: s, Config: cfg, Overrides: override, Instances: insts}
	snap := plan.snapshot()
	if err := ppol.CheckMix(snap); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if _, search := ppol.(partition.Searcher); !search && !ppol.Online() {
		masks := ppol.Decide(snap)
		if err := partition.ValidateMasks(assoc, len(insts), masks); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		for i, m := range masks {
			first, lim, ok := partition.RangeOfMask(m)
			if !ok {
				return nil, fmt.Errorf("scenario %q: policy %s produced non-contiguous mask %s for job %d",
					s.Name, ppol.Name(), m, i)
			}
			insts[i].WayFirst, insts[i].WayLim = first, lim
		}
	}
	return plan, nil
}

// snapshot renders the planned instances as the policy layer's
// plan-time snapshot.
func (p *Plan) snapshot() *partition.Snapshot {
	snap := &partition.Snapshot{Assoc: p.Config.Hier.LLC.Assoc}
	snap.Jobs = make([]partition.JobView, len(p.Instances))
	for i, inst := range p.Instances {
		snap.Jobs[i] = partition.JobView{
			App:      inst.App.Name,
			Latency:  inst.Role == RoleLatency,
			Declared: inst.Declared,
		}
	}
	return snap
}

// mix builds the runnable spec from the planned instances, with an
// optional way-range override per instance (the biased search sweeps
// these) and an optional setup hook (the dynamic controller).
func (p *Plan) mix(ways [][2]int, setup func(m *machine.Machine, jobs []*machine.Job)) sched.MixSpec {
	jobs := make([]sched.MixJob, len(p.Instances))
	for i, inst := range p.Instances {
		first, lim := inst.WayFirst, inst.WayLim
		if ways != nil {
			first, lim = ways[i][0], ways[i][1]
		}
		jobs[i] = sched.MixJob{
			App: inst.App, Threads: inst.Threads, Slots: inst.Slots,
			Background: inst.Loop, Seed: inst.Seed,
			WayFirst: first, WayLim: lim,
		}
	}
	spec := sched.MixSpec{Jobs: jobs, Setup: setup}
	if p.Overrides {
		cfg := p.Config
		spec.Machine = &cfg
	}
	return spec
}

// aloneMix is instance i's baseline: the same placement and seed alone
// on the machine with the full LLC — the "versus running alone"
// reference the slowdown and weighted-speedup metrics normalize to.
func (p *Plan) aloneMix(i int) sched.MixSpec {
	inst := p.Instances[i]
	spec := sched.MixSpec{Jobs: []sched.MixJob{{
		App: inst.App, Threads: inst.Threads, Slots: inst.Slots, Seed: inst.Seed,
	}}}
	if p.Overrides {
		cfg := p.Config
		spec.Machine = &cfg
	}
	return spec
}

// splitWays returns the biased-style allocation for the whole mix: the
// latency instance (index fg) replaces in ways [0, w), every other
// instance in [w, assoc).
func (p *Plan) splitWays(fg, w int) [][2]int {
	assoc := p.Config.Hier.LLC.Assoc
	out := make([][2]int, len(p.Instances))
	for i := range out {
		if i == fg {
			out[i] = [2]int{0, w}
		} else {
			out[i] = [2]int{w, assoc}
		}
	}
	return out
}

// latencyIndex returns the index of the single latency instance
// (validated to exist for biased/dynamic policies).
func (p *Plan) latencyIndex() int {
	for i, inst := range p.Instances {
		if inst.Role == RoleLatency {
			return i
		}
	}
	panic("scenario: no latency instance (Validate should have rejected this)")
}

// Compile builds the runnable, memoizable spec for an offline-policy
// scenario (shared, fair, explicit). Search and online policies need
// the engine to sweep or monitor — run them with Run, or batch an
// online mix through CompileOnline.
func (s *Scenario) Compile(base machine.Config) (sched.MixSpec, error) {
	p, err := s.Plan(base)
	if err != nil {
		return sched.MixSpec{}, err
	}
	pol, err := s.Policy()
	if err != nil {
		return sched.MixSpec{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if _, search := pol.(partition.Searcher); search || pol.Online() {
		return sched.MixSpec{}, fmt.Errorf("scenario %q: the %s policy is engine-driven; use scenario.Run",
			s.Name, pol.Name())
	}
	return p.mix(nil, nil), nil
}

// CompileOnline builds the loop-attached spec of an online-policy
// scenario (dynamic, utility, ...): the mix plus a setup hook that
// attaches the policy's decision loop at the engine-conventional
// sampling interval. With lp nil the spec is memoizable, keyed by the
// policy's RunKey, so identical policy runs dedup and disk-cache like
// any other shape; passing lp (receiving each attached run's live
// loop, for its MPKI/allocation time series) keeps the run
// non-memoized, since a cached result could not carry the series.
// Drivers use this to batch many online runs in one engine fan-out;
// scenario.Run uses it internally.
func (s *Scenario) CompileOnline(base machine.Config, scale float64, lp **partition.Loop) (sched.MixSpec, error) {
	p, err := s.Plan(base)
	if err != nil {
		return sched.MixSpec{}, err
	}
	pol, err := s.Policy()
	if err != nil {
		return sched.MixSpec{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if !pol.Online() {
		return sched.MixSpec{}, fmt.Errorf("scenario %q: CompileOnline on offline policy %s", s.Name, pol.Name())
	}
	return p.onlineMix(pol, scale, lp), nil
}

// onlineMix builds the loop-attached mix of a planned online-policy
// scenario.
func (p *Plan) onlineMix(pol partition.Policy, scale float64, lp **partition.Loop) sched.MixSpec {
	interval := partition.SamplingInterval(p.intervalAnchor(), scale)
	insts := p.Instances
	latency := make([]bool, len(insts))
	for i := range insts {
		latency[i] = insts[i].Role == RoleLatency
	}
	mix := p.mix(nil, func(m *machine.Machine, jobs []*machine.Job) {
		ljs := make([]partition.LoopJob, len(jobs))
		for i, j := range jobs {
			ljs[i] = partition.LoopJob{
				Job: j, Cores: j.Cores(), App: insts[i].App.Name,
				Latency: insts[i].Role == RoleLatency, Declared: insts[i].Declared,
			}
		}
		loop := partition.AttachLoop(m, ljs, pol, interval)
		if lp != nil {
			*lp = loop
		}
	})
	if lp == nil {
		mix.PolicyKey = partition.RunKey(pol, interval, latency)
	}
	return mix
}

// intervalAnchor picks the profile the sampling interval is derived
// from: the single latency job when there is one (the §6 convention),
// else the first terminating job (whose completion ends the window).
func (p *Plan) intervalAnchor() *workload.Profile {
	lat, n := -1, 0
	for i, inst := range p.Instances {
		if inst.Role == RoleLatency {
			lat, n = i, n+1
		}
	}
	if n == 1 {
		return p.Instances[lat].App
	}
	for _, inst := range p.Instances {
		if !inst.Loop {
			return inst.App
		}
	}
	return p.Instances[0].App
}
