package loadgen

import (
	"math"
	"reflect"
	"testing"
)

func TestArrivalsDeterministic(t *testing.T) {
	classes := []RequestClass{
		{App: "429.mcf", Rate: 40},
		{App: "ferret", Process: ProcBursty, Rate: 25},
		{App: "fop", Process: ProcDiurnal, Rate: 30, Amplitude: 0.6},
	}
	a, err := Arrivals(classes, 2.0, "fleet")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Arrivals(classes, 2.0, "fleet")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec and seed produced different traces")
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(a); i++ {
		if a[i].AtSeconds < a[i-1].AtSeconds {
			t.Fatalf("trace not time-sorted at %d", i)
		}
	}
	c, err := Arrivals(classes, 2.0, "other-seed")
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestArrivalsClassIndependence(t *testing.T) {
	// Adding a class must not perturb an existing class's arrivals.
	one, err := Arrivals([]RequestClass{{App: "429.mcf", Rate: 40}}, 2.0, "s")
	if err != nil {
		t.Fatal(err)
	}
	two, err := Arrivals([]RequestClass{
		{App: "429.mcf", Rate: 40},
		{App: "ferret", Rate: 100},
	}, 2.0, "s")
	if err != nil {
		t.Fatal(err)
	}
	var fromTwo []Arrival
	for _, a := range two {
		if a.Class == 0 {
			fromTwo = append(fromTwo, a)
		}
	}
	if !reflect.DeepEqual(one, fromTwo) {
		t.Fatal("class 0 arrivals changed when class 1 was added")
	}
}

func TestArrivalRatesApproximateMean(t *testing.T) {
	// Long traces should land near the declared mean rate for every
	// process (the bursty and diurnal shapes preserve it by design).
	for _, proc := range []Process{ProcPoisson, ProcBursty, ProcDiurnal} {
		a, err := Arrivals([]RequestClass{{App: "x", Process: proc, Rate: 50, BurstSeconds: 2}}, 200, "rate")
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(a)) / 200
		if math.Abs(got-50) > 5 {
			t.Errorf("%s: mean rate %.1f/s, want ~50/s", proc, got)
		}
	}
}

func TestArrivalsValidation(t *testing.T) {
	cases := []RequestClass{
		{App: "x", Rate: 0},
		{App: "x", Rate: 10, Process: "weird"},
		{App: "x", Rate: 10, Process: ProcBursty, BurstFactor: 0.5},
		{App: "x", Rate: 10, Process: ProcBursty, BurstFrac: 1.5},
		{App: "x", Rate: 10, Process: ProcDiurnal, Amplitude: 2},
	}
	for i, c := range cases {
		if _, err := Arrivals([]RequestClass{c}, 1, "s"); err == nil {
			t.Errorf("case %d: invalid class accepted: %+v", i, c)
		}
	}
	if _, err := Arrivals([]RequestClass{{App: "x", Rate: 1}}, 0, "s"); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestBacklogExpansion(t *testing.T) {
	items, err := Backlog([]BatchDef{{App: "ferret", Count: 3}, {App: "dedup"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	want := []BatchItem{
		{App: "ferret", Iterations: 1, Def: 0, Seq: 0, Index: 0},
		{App: "ferret", Iterations: 1, Def: 0, Seq: 1, Index: 1},
		{App: "ferret", Iterations: 1, Def: 0, Seq: 2, Index: 2},
		{App: "dedup", Iterations: 1, Def: 1, Seq: 0, Index: 3},
	}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("got %+v", items)
	}
	if items2, err := Backlog([]BatchDef{{App: "x", Count: 2, Iterations: 40}}); err != nil || items2[1].Iterations != 40 {
		t.Fatalf("iterations not carried: %+v, %v", items2, err)
	}
	if _, err := Backlog([]BatchDef{{App: "x", Count: -1}}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := Backlog([]BatchDef{{App: "x", Iterations: -2}}); err == nil {
		t.Fatal("negative iterations accepted")
	}
}
