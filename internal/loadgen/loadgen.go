// Package loadgen synthesizes reproducible open-loop load for the
// fleet simulator: streams of latency-request arrivals (Poisson,
// bursty, diurnal) and a backlog of batch jobs. Every trace is a pure
// function of its spec and seed — all randomness comes from named rng
// streams — so two generations of the same spec are byte-identical and
// a fleet run replays the exact same workload under every
// consolidation policy it compares.
package loadgen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Process names an arrival process.
type Process string

const (
	// ProcPoisson is a memoryless stream at a constant mean rate —
	// the open-loop baseline of datacenter load testing.
	ProcPoisson Process = "poisson"
	// ProcBursty is a two-state modulated Poisson process: quiet
	// periods at a reduced rate interrupted by bursts at
	// BurstFactor times the quiet rate, with the mean rate preserved.
	ProcBursty Process = "bursty"
	// ProcDiurnal modulates the rate sinusoidally over the trace —
	// the day/night swing of user-facing traffic compressed into the
	// simulated window.
	ProcDiurnal Process = "diurnal"
)

// RequestClass describes one open-loop stream of latency requests: an
// application, a mean arrival rate in requests per simulated second,
// and the shape of the process.
type RequestClass struct {
	// App names the workload-catalog application each request runs.
	App string `json:"app"`
	// Process is poisson (default), bursty, or diurnal.
	Process Process `json:"process,omitempty"`
	// Rate is the mean arrival rate in requests per simulated second.
	Rate float64 `json:"rate"`

	// BurstFactor is the burst-to-quiet rate ratio of the bursty
	// process (default 6; must be > 1).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BurstFrac is the fraction of time spent bursting (default 0.15).
	BurstFrac float64 `json:"burst_frac,omitempty"`
	// BurstSeconds is the mean burst duration (default duration/20).
	BurstSeconds float64 `json:"burst_seconds,omitempty"`

	// Amplitude is the diurnal swing as a fraction of the mean rate:
	// rate(t) = Rate * (1 + Amplitude*sin(2πt/Period)) (default 0.8).
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodSeconds is the diurnal period (default: the trace
	// duration, one full day compressed into the window).
	PeriodSeconds float64 `json:"period,omitempty"`

	// Seed names the class's rng stream (default: the class index).
	Seed string `json:"seed,omitempty"`
}

// BatchDef is one backlog entry: Count queued items, each Iterations
// runs of an application (default 1 run per item).
type BatchDef struct {
	App   string `json:"app"`
	Count int    `json:"count"`
	// Iterations sizes one item in application runs: an item holds its
	// machine's batch slot until that many runs complete.
	Iterations int `json:"iterations,omitempty"`
}

// Arrival is one latency request of a generated trace.
type Arrival struct {
	// AtSeconds is the arrival time in simulated seconds from trace
	// start.
	AtSeconds float64
	// App is the application the request runs.
	App string
	// Class is the index of the generating RequestClass.
	Class int
	// Seq is the request's sequence number within its class.
	Seq int
}

func (c *RequestClass) process() Process {
	if c.Process == "" {
		return ProcPoisson
	}
	return c.Process
}

// Validate checks a request class's shape (application existence is
// checked by the caller against the workload catalog).
func (c *RequestClass) Validate() error {
	switch c.process() {
	case ProcPoisson, ProcBursty, ProcDiurnal:
	default:
		return fmt.Errorf("loadgen: unknown process %q (want poisson, bursty, or diurnal)", c.Process)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: class %s needs a positive rate, got %v", c.App, c.Rate)
	}
	if c.BurstFactor != 0 && c.BurstFactor <= 1 {
		return fmt.Errorf("loadgen: class %s burst_factor must exceed 1, got %v", c.App, c.BurstFactor)
	}
	if c.BurstFrac < 0 || c.BurstFrac >= 1 {
		return fmt.Errorf("loadgen: class %s burst_frac must be in [0,1), got %v", c.App, c.BurstFrac)
	}
	if c.BurstSeconds < 0 {
		return fmt.Errorf("loadgen: class %s negative burst_seconds", c.App)
	}
	if c.Amplitude < 0 || c.Amplitude > 1 {
		return fmt.Errorf("loadgen: class %s amplitude must be in [0,1], got %v", c.App, c.Amplitude)
	}
	if c.PeriodSeconds < 0 {
		return fmt.Errorf("loadgen: class %s negative period", c.App)
	}
	return nil
}

// expGap draws an exponential inter-arrival gap at the given rate.
func expGap(r *rng.Stream, rate float64) float64 {
	// 1-Float64() is in (0,1], so Log never sees 0.
	return -math.Log(1-r.Float64()) / rate
}

// Arrivals generates the merged arrival trace of all classes over
// [0, duration) seconds. The trace is sorted by time with determinism
// ties broken by (class, seq); each class draws from its own named rng
// stream, so adding a class never perturbs another class's arrivals.
func Arrivals(classes []RequestClass, duration float64, seed string) ([]Arrival, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("loadgen: trace duration must be positive, got %v", duration)
	}
	var out []Arrival
	for i := range classes {
		c := &classes[i]
		if err := c.Validate(); err != nil {
			return nil, err
		}
		name := c.Seed
		if name == "" {
			name = fmt.Sprintf("class%d", i)
		}
		r := rng.NewNamed("loadgen/" + seed + "/" + name)
		var times []float64
		switch c.process() {
		case ProcPoisson:
			times = poissonTimes(r, c.Rate, duration)
		case ProcBursty:
			times = burstyTimes(r, c, duration)
		case ProcDiurnal:
			times = diurnalTimes(r, c, duration)
		}
		for seq, t := range times {
			out = append(out, Arrival{AtSeconds: t, App: c.App, Class: i, Seq: seq})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].AtSeconds != out[b].AtSeconds {
			return out[a].AtSeconds < out[b].AtSeconds
		}
		if out[a].Class != out[b].Class {
			return out[a].Class < out[b].Class
		}
		return out[a].Seq < out[b].Seq
	})
	return out, nil
}

func poissonTimes(r *rng.Stream, rate, duration float64) []float64 {
	var times []float64
	for t := expGap(r, rate); t < duration; t += expGap(r, rate) {
		times = append(times, t)
	}
	return times
}

// burstyTimes alternates quiet and burst states. Rates are chosen so
// the long-run mean equals c.Rate:
//
//	mean = (1-f)*quiet + f*quiet*factor  =>  quiet = mean/(1+f*(factor-1))
func burstyTimes(r *rng.Stream, c *RequestClass, duration float64) []float64 {
	factor := c.BurstFactor
	if factor == 0 {
		factor = 6
	}
	frac := c.BurstFrac
	if frac == 0 {
		frac = 0.15
	}
	burstLen := c.BurstSeconds
	if burstLen == 0 {
		burstLen = duration / 20
	}
	quietLen := burstLen * (1 - frac) / frac
	quietRate := c.Rate / (1 + frac*(factor-1))
	burstRate := quietRate * factor

	// Start quiet; state durations are exponential with the configured
	// means, so bursts arrive at irregular (but reproducible) times.
	var times []float64
	t, bursting := 0.0, false
	stateEnd := expGap(r, 1/quietLen)
	for t < duration {
		rate := quietRate
		if bursting {
			rate = burstRate
		}
		t += expGap(r, rate)
		for t >= stateEnd {
			bursting = !bursting
			mean := quietLen
			if bursting {
				mean = burstLen
			}
			stateEnd += expGap(r, 1/mean)
		}
		if t < duration {
			times = append(times, t)
		}
	}
	return times
}

// diurnalTimes thins a max-rate Poisson stream by the instantaneous
// sinusoidal rate (Lewis-Shedler thinning), preserving the mean.
func diurnalTimes(r *rng.Stream, c *RequestClass, duration float64) []float64 {
	amp := c.Amplitude
	if amp == 0 {
		amp = 0.8
	}
	period := c.PeriodSeconds
	if period == 0 {
		period = duration
	}
	maxRate := c.Rate * (1 + amp)
	var times []float64
	for t := expGap(r, maxRate); t < duration; t += expGap(r, maxRate) {
		rate := c.Rate * (1 + amp*math.Sin(2*math.Pi*t/period))
		if r.Float64()*maxRate < rate {
			times = append(times, t)
		}
	}
	return times
}

// ScalePoint steps the fleet-wide arrival-rate multiplier: from At
// seconds onward every class's instantaneous rate is multiplied by
// Factor, until the next point takes over. The multiplier before the
// first point is 1 — an empty point list is the unscaled trace.
type ScalePoint struct {
	At     float64
	Factor float64
}

// validateScales checks a scale timeline: ordered, non-negative times,
// positive factors.
func validateScales(scales []ScalePoint) error {
	prev := 0.0
	for i, s := range scales {
		if s.At < 0 {
			return fmt.Errorf("loadgen: scale point %d: negative time %v", i, s.At)
		}
		if s.At < prev {
			return fmt.Errorf("loadgen: scale point %d: time %v before %v (points must be ordered)", i, s.At, prev)
		}
		if s.Factor <= 0 {
			return fmt.Errorf("loadgen: scale point %d: factor must be positive, got %v", i, s.Factor)
		}
		prev = s.At
	}
	return nil
}

// factorAt is the piecewise-constant multiplier at time t.
func factorAt(scales []ScalePoint, t float64) float64 {
	f := 1.0
	for _, s := range scales {
		if t < s.At {
			break
		}
		f = s.Factor
	}
	return f
}

func maxScale(scales []ScalePoint) float64 {
	m := 1.0
	for _, s := range scales {
		if s.Factor > m {
			m = s.Factor
		}
	}
	return m
}

// ArrivalsScaled is Arrivals under a load-scale timeline: every class's
// instantaneous rate is multiplied by the piecewise-constant factor.
// Each process generates candidates at its maximum scaled rate and
// thins them by the instantaneous factor (Lewis-Shedler), so the trace
// stays a pure function of spec, seed, and scale timeline. An empty
// timeline delegates to Arrivals and is byte-identical to it.
func ArrivalsScaled(classes []RequestClass, duration float64, seed string, scales []ScalePoint) ([]Arrival, error) {
	if len(scales) == 0 {
		return Arrivals(classes, duration, seed)
	}
	if err := validateScales(scales); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("loadgen: trace duration must be positive, got %v", duration)
	}
	var out []Arrival
	for i := range classes {
		c := &classes[i]
		if err := c.Validate(); err != nil {
			return nil, err
		}
		name := c.Seed
		if name == "" {
			name = fmt.Sprintf("class%d", i)
		}
		r := rng.NewNamed("loadgen/" + seed + "/" + name)
		var times []float64
		switch c.process() {
		case ProcPoisson:
			times = poissonTimesScaled(r, c.Rate, duration, scales)
		case ProcBursty:
			times = burstyTimesScaled(r, c, duration, scales)
		case ProcDiurnal:
			times = diurnalTimesScaled(r, c, duration, scales)
		}
		for seq, t := range times {
			out = append(out, Arrival{AtSeconds: t, App: c.App, Class: i, Seq: seq})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].AtSeconds != out[b].AtSeconds {
			return out[a].AtSeconds < out[b].AtSeconds
		}
		if out[a].Class != out[b].Class {
			return out[a].Class < out[b].Class
		}
		return out[a].Seq < out[b].Seq
	})
	return out, nil
}

func poissonTimesScaled(r *rng.Stream, rate, duration float64, scales []ScalePoint) []float64 {
	maxF := maxScale(scales)
	var times []float64
	for t := expGap(r, rate*maxF); t < duration; t += expGap(r, rate*maxF) {
		if r.Float64()*maxF < factorAt(scales, t) {
			times = append(times, t)
		}
	}
	return times
}

// burstyTimesScaled keeps burstyTimes' quiet/burst state machine intact
// (state durations are unscaled wall time) and thins a maxF-inflated
// candidate stream within each state.
func burstyTimesScaled(r *rng.Stream, c *RequestClass, duration float64, scales []ScalePoint) []float64 {
	factor := c.BurstFactor
	if factor == 0 {
		factor = 6
	}
	frac := c.BurstFrac
	if frac == 0 {
		frac = 0.15
	}
	burstLen := c.BurstSeconds
	if burstLen == 0 {
		burstLen = duration / 20
	}
	quietLen := burstLen * (1 - frac) / frac
	quietRate := c.Rate / (1 + frac*(factor-1))
	burstRate := quietRate * factor
	maxF := maxScale(scales)

	var times []float64
	t, bursting := 0.0, false
	stateEnd := expGap(r, 1/quietLen)
	for t < duration {
		rate := quietRate
		if bursting {
			rate = burstRate
		}
		t += expGap(r, rate*maxF)
		for t >= stateEnd {
			bursting = !bursting
			mean := quietLen
			if bursting {
				mean = burstLen
			}
			stateEnd += expGap(r, 1/mean)
		}
		if t < duration && r.Float64()*maxF < factorAt(scales, t) {
			times = append(times, t)
		}
	}
	return times
}

// diurnalTimesScaled folds the scale factor into the sinusoid's
// thinning test: candidates run at the maximum scaled peak rate and
// accept with probability rate(t)*factor(t) / peak.
func diurnalTimesScaled(r *rng.Stream, c *RequestClass, duration float64, scales []ScalePoint) []float64 {
	amp := c.Amplitude
	if amp == 0 {
		amp = 0.8
	}
	period := c.PeriodSeconds
	if period == 0 {
		period = duration
	}
	maxF := maxScale(scales)
	maxRate := c.Rate * (1 + amp) * maxF
	var times []float64
	for t := expGap(r, maxRate); t < duration; t += expGap(r, maxRate) {
		rate := c.Rate * (1 + amp*math.Sin(2*math.Pi*t/period)) * factorAt(scales, t)
		if r.Float64()*maxRate < rate {
			times = append(times, t)
		}
	}
	return times
}

// Backlog expands batch definitions into the deterministic item order
// the fleet drains them in: definitions in declaration order, each
// replicated Count times. Seq numbers replicas within a definition
// (they seed distinct rng streams when run).
type BatchItem struct {
	App        string
	Iterations float64 // application runs this item holds its slot for
	Def        int     // index of the generating BatchDef
	Seq        int     // replica number within the definition
	Index      int     // global drain position
}

// Backlog expands the batch definitions into drain order.
func Backlog(defs []BatchDef) ([]BatchItem, error) {
	var out []BatchItem
	for i, d := range defs {
		if d.Count < 0 {
			return nil, fmt.Errorf("loadgen: batch %s negative count", d.App)
		}
		if d.Iterations < 0 {
			return nil, fmt.Errorf("loadgen: batch %s negative iterations", d.App)
		}
		n, iters := d.Count, d.Iterations
		if n == 0 {
			n = 1
		}
		if iters == 0 {
			iters = 1
		}
		for k := 0; k < n; k++ {
			out = append(out, BatchItem{App: d.App, Iterations: float64(iters), Def: i, Seq: k, Index: len(out)})
		}
	}
	return out, nil
}
