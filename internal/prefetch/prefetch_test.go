package prefetch

import "testing"

func TestDisabledUnitIssuesNothing(t *testing.T) {
	u := NewUnit(AllOff())
	for i := uint64(0); i < 100; i++ {
		if reqs := u.ObserveL1D(1, i); len(reqs) != 0 {
			t.Fatal("disabled DCU prefetchers issued")
		}
		if reqs := u.ObserveL2(i); len(reqs) != 0 {
			t.Fatal("disabled MLC prefetchers issued")
		}
	}
	if u.Stats().Issued() != 0 {
		t.Fatal("stats nonzero for disabled unit")
	}
}

func TestIPStrideDetection(t *testing.T) {
	u := NewUnit(Config{DCUIP: true})
	const pc = 12345
	var got []Request
	// Stride-3 stream from one PC: after two confirmations the next
	// access should trigger a prefetch of line+3.
	for i := 0; i < 6; i++ {
		got = u.ObserveL1D(pc, uint64(100+3*i))
	}
	if len(got) != 1 {
		t.Fatalf("trained IP prefetcher issued %d requests", len(got))
	}
	if got[0].LineAddr != 100+3*5+3 {
		t.Fatalf("IP prefetch target = %d", got[0].LineAddr)
	}
	if !got[0].IntoL1 {
		t.Fatal("DCU IP prefetch must target L1")
	}
}

func TestIPIgnoresLargeStrides(t *testing.T) {
	u := NewUnit(Config{DCUIP: true})
	for i := 0; i < 8; i++ {
		if reqs := u.ObserveL1D(7, uint64(100+100*i)); len(reqs) != 0 {
			t.Fatal("IP prefetcher chased a 100-line stride")
		}
	}
}

func TestIPStrideChangeResetsConfidence(t *testing.T) {
	u := NewUnit(Config{DCUIP: true})
	for i := 0; i < 4; i++ {
		u.ObserveL1D(9, uint64(10+2*i))
	}
	// Break the stride; the immediately following accesses must not
	// prefetch until retrained.
	if reqs := u.ObserveL1D(9, 500); len(reqs) != 0 {
		t.Fatal("prefetched on stride break")
	}
	if reqs := u.ObserveL1D(9, 503); len(reqs) != 0 {
		t.Fatal("prefetched after a single stride sample")
	}
}

func TestDCUStreamerAscending(t *testing.T) {
	u := NewUnit(Config{DCUStreamer: true})
	var got []Request
	for i := uint64(0); i < 5; i++ {
		got = u.ObserveL1D(uint64(1000+i), 200+i) // distinct PCs: streamer is PC-blind
	}
	if len(got) == 0 {
		t.Fatal("ascending stream did not trigger DCU streamer")
	}
	if got[0].LineAddr != 205 {
		t.Fatalf("streamer target = %d, want 205", got[0].LineAddr)
	}
}

func TestDCUStreamerSameLineTrigger(t *testing.T) {
	u := NewUnit(Config{DCUStreamer: true})
	u.ObserveL1D(1, 300)
	var got []Request
	for i := 0; i < 3; i++ {
		got = u.ObserveL1D(1, 300) // repeated reads to one line
	}
	if len(got) == 0 {
		t.Fatal("multiple reads to one line did not trigger the DCU streamer")
	}
	for _, r := range got {
		if r.LineAddr == 300 {
			t.Fatal("streamer prefetched the line being read")
		}
	}
}

func TestMLCSpatialBuddy(t *testing.T) {
	u := NewUnit(Config{MLCSpatial: true})
	u.ObserveL2(400)
	got := u.ObserveL2(401)
	if len(got) != 1 {
		t.Fatalf("spatial prefetcher issued %d", len(got))
	}
	// Buddy of 401 within its 128-byte pair is 400; of 400 it is 401.
	if got[0].LineAddr != 400 {
		t.Fatalf("buddy = %d", got[0].LineAddr)
	}
	if got[0].IntoL1 {
		t.Fatal("MLC prefetch must target L2")
	}
}

func TestMLCStreamerRunsAhead(t *testing.T) {
	u := NewUnit(Config{MLCStreamer: true})
	var got []Request
	for i := uint64(0); i < 5; i++ {
		got = u.ObserveL2(500 + i)
	}
	if len(got) != mlcAhead {
		t.Fatalf("MLC streamer issued %d, want %d", len(got), mlcAhead)
	}
	if got[0].LineAddr != 505 || got[1].LineAddr != 506 {
		t.Fatalf("MLC targets = %d,%d", got[0].LineAddr, got[1].LineAddr)
	}
}

func TestMLCStreamerDescending(t *testing.T) {
	u := NewUnit(Config{MLCStreamer: true})
	var got []Request
	for i := 0; i < 5; i++ {
		got = u.ObserveL2(uint64(600 - i))
	}
	if len(got) == 0 {
		t.Fatal("descending stream not detected")
	}
	if got[0].LineAddr != 595 {
		t.Fatalf("descending target = %d, want 595", got[0].LineAddr)
	}
}

func TestStreamTableEviction(t *testing.T) {
	u := NewUnit(Config{MLCStreamer: true})
	// Allocate far more streams than table entries; must not panic and
	// must still detect a fresh stream afterwards.
	for i := uint64(0); i < 100; i++ {
		u.ObserveL2(i * 1000)
	}
	var got []Request
	for i := uint64(0); i < 5; i++ {
		got = u.ObserveL2(999000 + i)
	}
	if len(got) == 0 {
		t.Fatal("stream detection broken after table churn")
	}
}

func TestStatsAttribution(t *testing.T) {
	u := NewUnit(AllOn())
	for i := uint64(0); i < 10; i++ {
		u.ObserveL1D(3, 100+i)
		u.ObserveL2(100 + i)
	}
	s := u.Stats()
	if s.IssuedDCUStreamer == 0 || s.IssuedMLCStreamer == 0 {
		t.Fatalf("streamers idle on a pure stream: %+v", s)
	}
	if s.Issued() != s.IssuedDCUIP+s.IssuedDCUStreamer+s.IssuedMLCSpatial+s.IssuedMLCStreamer {
		t.Fatal("Issued() sum mismatch")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	on := AllOn()
	if !on.DCUIP || !on.DCUStreamer || !on.MLCSpatial || !on.MLCStreamer {
		t.Fatal("AllOn incomplete")
	}
	off := AllOff()
	if off.DCUIP || off.DCUStreamer || off.MLCSpatial || off.MLCStreamer {
		t.Fatal("AllOff incomplete")
	}
	u := NewUnit(on)
	if u.Config() != on {
		t.Fatal("Config() round trip")
	}
}
