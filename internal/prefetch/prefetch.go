// Package prefetch models the four hardware prefetchers of the Sandy
// Bridge platform (paper §3.3):
//
//  1. DCU IP-prefetcher — per-PC stride detection, prefetches into L1D.
//  2. DCU streamer — detects ascending accesses, prefetches the next
//     line into L1D.
//  3. MLC spatial prefetcher — completes the 128-byte adjacent-line pair
//     in the L2 when successive lines are touched.
//  4. MLC streamer — tracks multi-line streams with direction, runs
//     ahead of the demand stream into the L2.
//
// Each prefetcher can be enabled or disabled independently, mirroring
// the machine-state-register bits the paper toggles for Figure 3.
package prefetch

// Config selects which prefetchers are active for a core.
type Config struct {
	DCUIP       bool
	DCUStreamer bool
	MLCSpatial  bool
	MLCStreamer bool
}

// AllOn returns the default configuration with all four prefetchers
// enabled (the shipping configuration of the platform).
func AllOn() Config {
	return Config{DCUIP: true, DCUStreamer: true, MLCSpatial: true, MLCStreamer: true}
}

// AllOff returns the configuration with every prefetcher disabled.
func AllOff() Config { return Config{} }

// Request is a prefetch candidate produced by observing demand traffic.
type Request struct {
	LineAddr uint64
	IntoL1   bool // DCU prefetchers target L1D; MLC prefetchers target L2
}

// Stats counts prefetcher activity for one core.
type Stats struct {
	IssuedDCUIP       uint64
	IssuedDCUStreamer uint64
	IssuedMLCSpatial  uint64
	IssuedMLCStreamer uint64
}

// Issued returns the total requests issued by all four prefetchers.
func (s Stats) Issued() uint64 {
	return s.IssuedDCUIP + s.IssuedDCUStreamer + s.IssuedMLCSpatial + s.IssuedMLCStreamer
}

const (
	ipTableSize     = 64
	streamTableSize = 16
	mlcAhead        = 2 // MLC streamer run-ahead distance in lines
)

type ipEntry struct {
	pc       uint64
	lastLine uint64
	stride   int64
	conf     int8
	valid    bool
}

type streamEntry struct {
	lastLine uint64
	dir      int64 // +1 ascending, -1 descending
	count    int8
	valid    bool
}

// streamKind selects the training rule: the DCU streamer (per §3.3)
// triggers on multiple reads to a single cache line — so re-references
// train it and it speculatively fetches the following line, which is
// pure pollution for scattered reuse-heavy heaps (the mechanism behind
// lusearch's degradation in Figure 3). The MLC streamer requires actual
// line-to-line movement.
type streamKind int

const (
	dcuStream streamKind = iota
	mlcStream
)

// Unit is the per-core prefetch engine. It is not safe for concurrent
// use; the simulator is single-threaded.
type Unit struct {
	cfg   Config
	stats Stats

	ip [ipTableSize]ipEntry

	dcuStreams [streamTableSize]streamEntry
	dcuClock   int

	mlcStreams [streamTableSize]streamEntry
	mlcClock   int
	mlcLast    uint64
	mlcHasLast bool

	scratch []Request
}

// NewUnit builds a prefetch engine with the given configuration.
func NewUnit(cfg Config) *Unit {
	return &Unit{cfg: cfg, scratch: make([]Request, 0, 4)}
}

// Config returns the active configuration.
func (u *Unit) Config() Config { return u.cfg }

// Stats returns a copy of the issue counters.
func (u *Unit) Stats() Stats { return u.stats }

// ObserveL1D digests one demand access to the L1 data cache and returns
// prefetch candidates. pc identifies the issuing instruction (the
// workload generator supplies a stable pseudo-PC per access stream). The
// returned slice is valid until the next Observe call.
func (u *Unit) ObserveL1D(pc, lineAddr uint64) []Request {
	u.scratch = u.scratch[:0]
	if u.cfg.DCUIP {
		u.observeIP(pc, lineAddr)
	}
	if u.cfg.DCUStreamer {
		u.observeStream(&u.dcuStreams, &u.dcuClock, lineAddr, 1, true, &u.stats.IssuedDCUStreamer, dcuStream)
	}
	return u.scratch
}

// ObserveL2 digests one access that reached the L2 (an L1 miss) and
// returns prefetch candidates targeting the L2.
func (u *Unit) ObserveL2(lineAddr uint64) []Request {
	u.scratch = u.scratch[:0]
	if u.cfg.MLCSpatial {
		u.observeSpatial(lineAddr)
	}
	if u.cfg.MLCStreamer {
		u.observeStream(&u.mlcStreams, &u.mlcClock, lineAddr, mlcAhead, false, &u.stats.IssuedMLCStreamer, mlcStream)
	}
	return u.scratch
}

// observeIP implements the per-PC stride predictor.
func (u *Unit) observeIP(pc, lineAddr uint64) {
	e := &u.ip[pc%ipTableSize]
	if !e.valid || e.pc != pc {
		*e = ipEntry{pc: pc, lastLine: lineAddr, valid: true}
		return
	}
	stride := int64(lineAddr) - int64(e.lastLine)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastLine = lineAddr
	if e.conf >= 2 && e.stride != 0 && abs64(e.stride) <= 8 {
		u.stats.IssuedDCUIP++
		u.scratch = append(u.scratch, Request{
			LineAddr: uint64(int64(lineAddr) + e.stride),
			IntoL1:   true,
		})
	}
}

// observeStream implements a direction-tracking next-line streamer over
// a small fully-associative stream table.
func (u *Unit) observeStream(tbl *[streamTableSize]streamEntry, clock *int, lineAddr uint64, ahead int64, intoL1 bool, issued *uint64, kind streamKind) {
	// Find a stream this access extends: within 2 lines of the last
	// touched line, in either direction.
	for i := range tbl {
		e := &tbl[i]
		if !e.valid {
			continue
		}
		delta := int64(lineAddr) - int64(e.lastLine)
		if delta == 0 {
			if kind == dcuStream {
				// Multiple reads to a single line trigger the DCU
				// streamer: from the second read on, it speculatively
				// fetches the following lines.
				if e.count < 4 {
					e.count++
				}
				*issued++
				u.scratch = append(u.scratch, Request{
					LineAddr: uint64(int64(lineAddr) + e.dir),
					IntoL1:   intoL1,
				})
				if e.count >= 2 {
					*issued++
					u.scratch = append(u.scratch, Request{
						LineAddr: uint64(int64(lineAddr) + 2*e.dir),
						IntoL1:   intoL1,
					})
				}
			}
			return
		}
		if delta >= -2 && delta <= 2 {
			dir := int64(1)
			if delta < 0 {
				dir = -1
			}
			if e.dir == dir {
				if e.count < 4 {
					e.count++
				}
			} else {
				e.dir = dir
				e.count = 1
			}
			e.lastLine = lineAddr
			if e.count >= 2 {
				for k := int64(1); k <= ahead; k++ {
					*issued++
					u.scratch = append(u.scratch, Request{
						LineAddr: uint64(int64(lineAddr) + dir*k),
						IntoL1:   intoL1,
					})
				}
			}
			return
		}
	}
	// Allocate a new stream, round-robin.
	*clock = (*clock + 1) % streamTableSize
	tbl[*clock] = streamEntry{lastLine: lineAddr, dir: 1, count: 0, valid: true}
}

// observeSpatial implements the adjacent-line (128-byte pair) prefetcher:
// two successive L2 accesses to consecutive lines trigger a fetch of the
// pair-completing line.
func (u *Unit) observeSpatial(lineAddr uint64) {
	if u.mlcHasLast {
		delta := int64(lineAddr) - int64(u.mlcLast)
		if delta == 1 || delta == -1 {
			buddy := lineAddr ^ 1 // the other line of the 128-byte pair
			u.stats.IssuedMLCSpatial++
			u.scratch = append(u.scratch, Request{LineAddr: buddy, IntoL1: false})
		}
	}
	u.mlcLast = lineAddr
	u.mlcHasLast = true
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
