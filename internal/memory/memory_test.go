package memory

import (
	"testing"
	"testing/quick"
)

func testBus() *Bus {
	return NewBus(BusConfig{Name: "t", PeakBytesPerCycle: 10, Knee: 0.5, MaxQueueFactor: 3}, 4)
}

func TestUtilizationAccumulates(t *testing.T) {
	b := testBus()
	if b.Utilization() != 0 {
		t.Fatal("fresh bus utilized")
	}
	b.SetRate(0, 2)
	b.SetRate(1, 3)
	if u := b.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	b.SetRate(0, 1) // replace, not add
	if u := b.Utilization(); u != 0.4 {
		t.Fatalf("utilization after update = %v, want 0.4", u)
	}
	b.ClearRate(1)
	if u := b.Utilization(); u != 0.1 {
		t.Fatalf("utilization after clear = %v, want 0.1", u)
	}
}

func TestUtilizationClamped(t *testing.T) {
	b := testBus()
	b.SetRate(0, 100)
	if u := b.Utilization(); u != 1 {
		t.Fatalf("oversubscribed utilization = %v, want 1", u)
	}
	b.SetRate(0, -5) // negative demand treated as zero
	if u := b.Utilization(); u != 0 {
		t.Fatalf("negative demand utilization = %v", u)
	}
}

func TestQueueFactorShape(t *testing.T) {
	b := testBus()
	b.SetRate(0, 4) // U = 0.4, below knee
	if f := b.QueueFactor(); f != 1 {
		t.Fatalf("below-knee factor = %v", f)
	}
	b.SetRate(0, 5) // at knee
	if f := b.QueueFactor(); f != 1 {
		t.Fatalf("at-knee factor = %v", f)
	}
	b.SetRate(0, 6.5)
	mid := b.QueueFactor()
	if mid <= 1 {
		t.Fatalf("above-knee factor = %v", mid)
	}
	b.SetRate(0, 20)
	if f := b.QueueFactor(); f != 3 {
		t.Fatalf("saturated factor = %v, want cap 3", f)
	}
	if mid >= 3 {
		t.Fatal("mid-load factor already at cap")
	}
}

func TestQueueFactorMonotone(t *testing.T) {
	b := testBus()
	prev := 0.0
	for r := 0.0; r <= 15; r += 0.5 {
		b.SetRate(0, r)
		f := b.QueueFactor()
		if f < prev {
			t.Fatalf("queue factor decreased at rate %v", r)
		}
		prev = f
	}
}

func TestQueueFactorQuickBounds(t *testing.T) {
	if err := quick.Check(func(rates [4]float64) bool {
		b := testBus()
		for i, r := range rates {
			if r < 0 {
				r = -r
			}
			if r > 1e6 {
				r = 1e6
			}
			b.SetRate(i, r)
		}
		f := b.QueueFactor()
		return f >= 1 && f <= 3
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusReset(t *testing.T) {
	b := testBus()
	b.SetRate(0, 5)
	b.Reset()
	if b.Utilization() != 0 {
		t.Fatal("Reset left demand")
	}
}

func TestNewBusValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-peak bus accepted")
		}
	}()
	NewBus(BusConfig{Name: "bad"}, 1)
}

func TestDRAMLatencyUnderLoad(t *testing.T) {
	d := NewDRAM(DefaultDRAM(), 2)
	unloaded := d.Latency()
	if unloaded != d.BaseLatency() {
		t.Fatalf("unloaded latency %v != base %v", unloaded, d.BaseLatency())
	}
	d.Bus().SetRate(0, 100)
	if loaded := d.Latency(); loaded <= unloaded {
		t.Fatal("saturated DRAM no slower than unloaded")
	}
}

func TestDefaultDRAMSane(t *testing.T) {
	cfg := DefaultDRAM()
	if cfg.BaseLatencyCycles < 100 || cfg.BaseLatencyCycles > 400 {
		t.Fatalf("odd base latency %v", cfg.BaseLatencyCycles)
	}
	if cfg.Bus.PeakBytesPerCycle <= 0 {
		t.Fatal("no bandwidth")
	}
}
