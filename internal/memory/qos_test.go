package memory

import "testing"

func qosBus() *Bus {
	b := NewBus(BusConfig{Name: "q", PeakBytesPerCycle: 10, Knee: 0.5, MaxQueueFactor: 3}, 4)
	// Threads 0-1 in group 0 (50% share), threads 2-3 in group 1 (50%).
	b.ConfigureQoS([]int{0, 0, 1, 1}, []float64{0.5, 0.5})
	return b
}

func TestQoSIsolatesGroups(t *testing.T) {
	b := qosBus()
	// Group 1 saturates its share; group 0 is idle.
	b.SetRate(2, 10)
	b.SetRate(3, 10)
	if f := b.QueueFactorFor(0); f != 1 {
		t.Fatalf("idle group inflated by neighbor: factor %v", f)
	}
	if f := b.QueueFactorFor(2); f <= 1 {
		t.Fatalf("saturated group not inflated: factor %v", f)
	}
}

func TestQoSGroupUtilization(t *testing.T) {
	b := qosBus()
	b.SetRate(0, 2.5) // half of group 0's 5 B/cyc reservation
	if u := b.UtilizationFor(0); u != 0.5 {
		t.Fatalf("group utilization = %v, want 0.5", u)
	}
	if u := b.UtilizationFor(2); u != 0 {
		t.Fatalf("other group utilization = %v", u)
	}
}

func TestQoSRateUpdatesTrackGroups(t *testing.T) {
	b := qosBus()
	b.SetRate(0, 4)
	b.SetRate(0, 1) // replace, not accumulate
	if u := b.UtilizationFor(0); u != 0.2 {
		t.Fatalf("group utilization after update = %v, want 0.2", u)
	}
	b.ClearRate(0)
	if u := b.UtilizationFor(0); u != 0 {
		t.Fatal("clear did not reach group totals")
	}
}

func TestQoSValidation(t *testing.T) {
	b := NewBus(BusConfig{Name: "v", PeakBytesPerCycle: 10, Knee: 0.5, MaxQueueFactor: 3}, 2)
	for _, fn := range []func(){
		func() { b.ConfigureQoS([]int{0}, []float64{1}) },           // wrong length
		func() { b.ConfigureQoS([]int{0, 0}, []float64{0}) },        // zero share
		func() { b.ConfigureQoS([]int{0, 1}, []float64{0.8, 0.8}) }, // >1 total
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid QoS config accepted")
				}
			}()
			fn()
		}()
	}
}

func TestQoSPreconfiguredRates(t *testing.T) {
	b := NewBus(BusConfig{Name: "p", PeakBytesPerCycle: 10, Knee: 0.5, MaxQueueFactor: 3}, 2)
	b.SetRate(0, 5) // demand registered before QoS configuration
	b.ConfigureQoS([]int{0, 1}, []float64{0.5, 0.5})
	if u := b.UtilizationFor(0); u != 1 {
		t.Fatalf("pre-registered demand lost: utilization %v", u)
	}
}

func TestUngroupedThreadSeesGlobal(t *testing.T) {
	b := NewBus(BusConfig{Name: "g", PeakBytesPerCycle: 10, Knee: 0.5, MaxQueueFactor: 3}, 3)
	b.ConfigureQoS([]int{0, -1, 0}, []float64{0.5})
	b.SetRate(0, 9)
	if b.QueueFactorFor(1) != b.QueueFactor() {
		t.Fatal("ungrouped thread should see global contention")
	}
}

func TestResetClearsGroupTotals(t *testing.T) {
	b := qosBus()
	b.SetRate(0, 5)
	b.Reset()
	if b.UtilizationFor(0) != 0 {
		t.Fatal("Reset left group demand")
	}
}
