// Package memory models the off-chip DRAM interface: a fixed service
// latency plus a shared-bandwidth queueing term. The paper's platform
// cannot partition memory bandwidth (§5.2, §8), so contention here is
// exactly the residual interference cache partitioning cannot remove —
// reproducing the worst-case slowdowns the paper traces to
// bandwidth-sensitive applications.
package memory

import "fmt"

// BusConfig describes a shared bandwidth resource (DRAM channels or the
// on-chip ring).
type BusConfig struct {
	Name              string
	PeakBytesPerCycle float64 // aggregate peak bandwidth
	Knee              float64 // utilization where queueing becomes visible
	MaxQueueFactor    float64 // cap on the latency inflation
}

// DRAMConfig bundles the timing of the memory interface.
type DRAMConfig struct {
	BaseLatencyCycles float64 // unloaded load-to-use latency
	Bus               BusConfig
}

// DefaultDRAM returns parameters resembling the paper's platform:
// dual-channel DDR3 (21 GB/s raw, ~70% achievable ≈ 4.5 B/cycle at the
// 3.4 GHz core clock) with ~180-cycle unloaded latency.
func DefaultDRAM() DRAMConfig {
	return DRAMConfig{
		BaseLatencyCycles: 180,
		Bus: BusConfig{
			Name:              "DRAM",
			PeakBytesPerCycle: 6.5,
			Knee:              0.55,
			MaxQueueFactor:    2.5,
		},
	}
}

// Bus tracks the aggregate demand placed on a shared bandwidth resource
// by a set of hardware threads. Each thread registers its current demand
// rate (bytes per cycle, averaged over its last epoch); utilization is
// the ratio of total demand to peak. The simulator is single-threaded,
// so Bus performs no locking.
type Bus struct {
	cfg   BusConfig
	rates []float64
	total float64

	// Bandwidth QoS (§8 of the paper proposes this as the missing
	// hardware): when groups are configured, each thread belongs to a
	// reservation group with a guaranteed share of the peak bandwidth,
	// and contention is computed within the group only.
	groupOf     []int     // per-thread group id, -1 = ungrouped
	groupShare  []float64 // per-group bandwidth share, sums to <= 1
	groupTotals []float64
	qos         bool
}

// NewBus builds a bus with capacity for nThreads demand registers.
func NewBus(cfg BusConfig, nThreads int) *Bus {
	if cfg.PeakBytesPerCycle <= 0 {
		panic(fmt.Sprintf("memory: bus %s has non-positive peak bandwidth", cfg.Name))
	}
	if cfg.MaxQueueFactor < 1 {
		cfg.MaxQueueFactor = 1
	}
	return &Bus{cfg: cfg, rates: make([]float64, nThreads)}
}

// SetRate registers thread tid's demand in bytes per cycle.
func (b *Bus) SetRate(tid int, bytesPerCycle float64) {
	if bytesPerCycle < 0 {
		bytesPerCycle = 0
	}
	delta := bytesPerCycle - b.rates[tid]
	b.total += delta
	b.rates[tid] = bytesPerCycle
	if b.qos {
		if g := b.groupOf[tid]; g >= 0 {
			b.groupTotals[g] += delta
		}
	}
}

// ConfigureQoS partitions the bus bandwidth into reservation groups:
// groupOf maps each thread to a group id (or -1), shares gives each
// group's guaranteed fraction of peak bandwidth. This models the
// memory-bandwidth QoS hardware the paper identifies as the missing
// piece for robust isolation (§8); it did not exist on the prototype.
func (b *Bus) ConfigureQoS(groupOf []int, shares []float64) {
	if len(groupOf) != len(b.rates) {
		panic(fmt.Sprintf("memory: bus %s QoS config covers %d threads, have %d",
			b.cfg.Name, len(groupOf), len(b.rates)))
	}
	var sum float64
	for _, s := range shares {
		if s <= 0 {
			panic("memory: non-positive QoS share")
		}
		sum += s
	}
	if sum > 1.0001 {
		panic(fmt.Sprintf("memory: QoS shares sum to %v > 1", sum))
	}
	b.groupOf = append([]int(nil), groupOf...)
	b.groupShare = append([]float64(nil), shares...)
	b.groupTotals = make([]float64, len(shares))
	b.qos = true
	for tid, r := range b.rates {
		if g := b.groupOf[tid]; g >= 0 {
			b.groupTotals[g] += r
		}
	}
}

// QoSEnabled reports whether reservation groups are active.
func (b *Bus) QoSEnabled() bool { return b.qos }

// ClearRate removes thread tid's demand (thread finished or descheduled).
func (b *Bus) ClearRate(tid int) { b.SetRate(tid, 0) }

// Reset clears all demand registers.
func (b *Bus) Reset() {
	for i := range b.rates {
		b.rates[i] = 0
	}
	b.total = 0
	for i := range b.groupTotals {
		b.groupTotals[i] = 0
	}
}

// UtilizationFor returns the utilization governing thread tid: its QoS
// group's when groups are configured, the global one otherwise.
func (b *Bus) UtilizationFor(tid int) float64 {
	if !b.qos || b.groupOf[tid] < 0 {
		return b.Utilization()
	}
	g := b.groupOf[tid]
	u := b.groupTotals[g] / (b.cfg.PeakBytesPerCycle * b.groupShare[g])
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Utilization returns total demand / peak, clamped to [0, 1].
func (b *Bus) Utilization() float64 {
	u := b.total / b.cfg.PeakBytesPerCycle
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// QueueFactor returns the latency inflation caused by contention: 1.0 up
// to the knee, then an M/M/1-like growth capped at MaxQueueFactor. The
// smooth shape (no cliff) matches the paper's observation that real
// hardware shows gradual degradation rather than sharp knees.
func (b *Bus) QueueFactor() float64 {
	return b.factorFor(b.Utilization())
}

// QueueFactorFor returns the latency inflation seen by thread tid. With
// QoS groups, contention is confined to the thread's own reservation:
// other groups' traffic cannot inflate its latency.
func (b *Bus) QueueFactorFor(tid int) float64 {
	if !b.qos {
		return b.QueueFactor()
	}
	g := b.groupOf[tid]
	if g < 0 {
		return b.QueueFactor()
	}
	u := b.groupTotals[g] / (b.cfg.PeakBytesPerCycle * b.groupShare[g])
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return b.factorFor(u)
}

func (b *Bus) factorFor(u float64) float64 {
	if u <= b.cfg.Knee {
		return 1.0
	}
	// Excess utilization drives an M/M/1-style 1/(1-u) term, renormalized
	// so the factor is continuous (=1) at the knee.
	const eps = 0.02
	denom := 1 - u
	if denom < eps {
		denom = eps
	}
	f := 1 + (u-b.cfg.Knee)/denom*1.5
	if f > b.cfg.MaxQueueFactor {
		f = b.cfg.MaxQueueFactor
	}
	return f
}

// DRAM computes effective memory latency under the current bus load.
type DRAM struct {
	cfg DRAMConfig
	bus *Bus
}

// NewDRAM builds the DRAM model with a demand register per thread.
func NewDRAM(cfg DRAMConfig, nThreads int) *DRAM {
	return &DRAM{cfg: cfg, bus: NewBus(cfg.Bus, nThreads)}
}

// Bus returns the underlying shared bus for demand registration.
func (d *DRAM) Bus() *Bus { return d.bus }

// Latency returns the effective per-access latency in cycles under the
// present contention level.
func (d *DRAM) Latency() float64 {
	return d.cfg.BaseLatencyCycles * d.bus.QueueFactor()
}

// LatencyFor returns the effective latency seen by thread tid,
// respecting bandwidth-QoS reservations when configured.
func (d *DRAM) LatencyFor(tid int) float64 {
	return d.cfg.BaseLatencyCycles * d.bus.QueueFactorFor(tid)
}

// BaseLatency returns the unloaded latency in cycles.
func (d *DRAM) BaseLatency() float64 { return d.cfg.BaseLatencyCycles }
