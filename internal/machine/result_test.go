package machine

import (
	"testing"

	"repro/internal/workload"
)

func TestJobCountersArithmetic(t *testing.T) {
	a := JobCounters{Instructions: 2000, LLCAccesses: 100, LLCMisses: 40, DRAMBytes: 640}
	b := JobCounters{Instructions: 1000, LLCAccesses: 60, LLCMisses: 10, DRAMBytes: 320}
	d := a.Sub(b)
	if d.Instructions != 1000 || d.LLCAccesses != 40 || d.LLCMisses != 30 || d.DRAMBytes != 320 {
		t.Fatalf("Sub: %+v", d)
	}
	if got := d.MPKI(); got != 30 {
		t.Fatalf("MPKI = %v", got)
	}
	if got := d.APKI(); got != 40 {
		t.Fatalf("APKI = %v", got)
	}
	var zero JobCounters
	if zero.MPKI() != 0 || zero.APKI() != 0 {
		t.Fatal("zero counters should report zero rates")
	}
}

func TestJobByNamePanicsOnUnknown(t *testing.T) {
	res := &Result{Jobs: []JobResult{{Name: "a"}}}
	if res.JobByName("a").Name != "a" {
		t.Fatal("lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown job name accepted")
		}
	}()
	res.JobByName("b")
}

func TestWarmupReducesReportedTime(t *testing.T) {
	// A cache-warming-dominated run: with warmup exclusion the reported
	// steady-state time must not exceed the raw completion time.
	app := workload.MustByName("471.omnetpp")
	cfgRaw := Default()
	cfgRaw.WarmupFrac = 0
	mRaw := New(cfgRaw)
	mRaw.AddJob(JobSpec{Profile: app, Threads: 1, Slots: []int{0}, Scale: testScale})
	raw := mRaw.Run().JobByName(app.Name).Seconds

	mWarm := New(Default())
	mWarm.AddJob(JobSpec{Profile: app, Threads: 1, Slots: []int{0}, Scale: testScale})
	warm := mWarm.Run().JobByName(app.Name).Seconds

	if warm > raw*1.001 {
		t.Fatalf("warmup-excluded time %v exceeds raw %v", warm, raw)
	}
}

func TestBandwidthQoSProtectsVictim(t *testing.T) {
	fg := workload.MustByName("462.libquantum")
	bg := workload.MustByName("stream_uncached")
	run := func(qos bool) float64 {
		cfg := Default()
		cfg.BandwidthQoS = qos
		m := New(cfg)
		m.AddJob(JobSpec{Profile: fg, Threads: 1, Slots: m.SlotsForCores(0, 1), Scale: 2e-3})
		m.AddJob(JobSpec{Profile: bg, Threads: 1, Slots: m.SlotsForCores(2, 3),
			Background: true, Scale: 2e-3})
		return m.Run().JobByName(fg.Name).Seconds
	}
	noQoS := run(false)
	withQoS := run(true)
	if withQoS >= noQoS {
		t.Fatalf("bandwidth QoS did not protect the victim: %v vs %v", withQoS, noQoS)
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	app := workload.MustByName("ferret")
	small := New(Default())
	small.AddJob(JobSpec{Profile: app, Threads: 4, Slots: small.SlotsForCores(0, 1), Scale: testScale})
	big := New(Default())
	big.AddJob(JobSpec{Profile: app, Threads: 4, Slots: big.SlotsForCores(0, 1), Scale: 2 * testScale})
	s, b := small.Run(), big.Run()
	if b.Energy.SocketJoules <= s.Energy.SocketJoules {
		t.Fatal("twice the work did not cost more energy")
	}
	if b.WindowSeconds <= s.WindowSeconds {
		t.Fatal("twice the work did not take longer")
	}
}

func TestDRAMTrafficAccounted(t *testing.T) {
	res := runAlone(t, "462.libquantum", 1)
	j := res.JobByName("462.libquantum")
	if j.DRAMBytes == 0 {
		t.Fatal("streaming workload moved no DRAM bytes")
	}
	if res.Usage.DRAMLines == 0 {
		t.Fatal("usage missed DRAM traffic")
	}
}
