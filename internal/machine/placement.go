package machine

import (
	"fmt"
	"sort"
)

// PlacementPolicy selects how a mix of jobs is assigned to hardware-
// thread slots. Policies replace the hand-written slot lists the run
// layer used to compute: callers describe per-job thread demands and
// the planner returns validated, disjoint slot sets.
type PlacementPolicy int

const (
	// PlacePack assigns cores left to right: each job receives the
	// fewest cores that hold its threads, both hyperthreads of a core
	// before the next core — the paper's taskset assignment order
	// (§2.1). The foreground-on-cores-0-1, background-on-cores-2-3
	// layout of §5 is pack placement of a two-job mix.
	PlacePack PlacementPolicy = iota
	// PlaceSpread first gives each job its minimum cores, then deals
	// the remaining cores round-robin, so jobs own as much of the
	// machine as possible: threads land one per core (HT0 across the
	// job's cores) before doubling up on hyperthreads, minimizing SMT
	// interference.
	PlaceSpread
	// PlaceExplicit uses caller-provided slot lists verbatim (after
	// validation) — the escape hatch for asymmetric layouts.
	PlaceExplicit
)

// String returns the policy's scenario-file name.
func (p PlacementPolicy) String() string {
	switch p {
	case PlacePack:
		return "pack"
	case PlaceSpread:
		return "spread"
	case PlaceExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// PlacementPolicyByName parses a scenario-file placement name.
func PlacementPolicyByName(name string) (PlacementPolicy, error) {
	switch name {
	case "", "pack":
		return PlacePack, nil
	case "spread":
		return PlaceSpread, nil
	case "explicit":
		return PlaceExplicit, nil
	default:
		return 0, fmt.Errorf("machine: unknown placement policy %q (want pack, spread, or explicit)", name)
	}
}

// coresFor returns how many cores hold n threads on this platform.
func (c Config) coresFor(threads int) int {
	if threads < 1 {
		threads = 1
	}
	return (threads + c.ThreadsPerCore - 1) / c.ThreadsPerCore
}

// Slots returns the hardware-thread slot count of the platform.
func (c Config) Slots() int { return c.Cores * c.ThreadsPerCore }

// SlotsForCores returns the hardware-thread slots of the given cores in
// the paper's assignment order: both hyperthreads of a core before the
// next core. (Machine.SlotsForCores delegates here.)
func (c Config) SlotsForCores(cores ...int) []int {
	var out []int
	for _, core := range cores {
		for ht := 0; ht < c.ThreadsPerCore; ht++ {
			out = append(out, core*c.ThreadsPerCore+ht)
		}
	}
	return out
}

// Plan assigns disjoint core groups to a mix of jobs. threads[i] is job
// i's requested software-thread count; the returned slots[i] lists the
// hardware-thread slots job i is pinned to, in assignment order. Jobs
// never share a core (the paper's disjoint pinning, which per-core way
// masks and counter attribution both rely on).
//
// When the mix over-subscribes the machine — the jobs' minimum core
// demands exceed the available cores — Plan shrinks the largest demands
// first (latest-listed first on ties, so the head of the list keeps its
// grant longest) until the mix fits, one core per job at minimum; a
// job's thread grant is then capped by its shrunken slot set. A mix
// with more jobs than cores cannot be placed and returns an error.
func Plan(cfg Config, policy PlacementPolicy, threads []int) ([][]int, error) {
	if policy == PlaceExplicit {
		return nil, fmt.Errorf("machine: explicit placement needs caller-provided slots; use ValidateSlots")
	}
	n := len(threads)
	if n == 0 {
		return nil, fmt.Errorf("machine: placement of an empty job mix")
	}
	if n > cfg.Cores {
		return nil, fmt.Errorf("machine: %d jobs need %d cores, platform has %d (jobs cannot share cores)",
			n, n, cfg.Cores)
	}

	// Minimum core demand per job, then shrink the largest demands until
	// the mix fits (over-subscription).
	demand := make([]int, n)
	total := 0
	for i, t := range threads {
		demand[i] = cfg.coresFor(t)
		total += demand[i]
	}
	for total > cfg.Cores {
		// Shrink the job with the largest demand; the latest such job
		// loses first, so earlier-listed jobs — scenarios list the
		// latency-critical job first — hold their grants longest. The
		// order is deterministic either way.
		big := 0
		for i := 1; i < n; i++ {
			if demand[i] >= demand[big] {
				big = i
			}
		}
		demand[big]--
		total--
	}

	if policy == PlaceSpread {
		// Deal the leftover cores round-robin so jobs spread across the
		// whole machine.
		for spare := cfg.Cores - total; spare > 0; {
			for i := 0; i < n && spare > 0; i++ {
				demand[i]++
				spare--
			}
		}
	}

	out := make([][]int, n)
	nextCore := 0
	for i, d := range demand {
		cores := make([]int, d)
		for k := range cores {
			cores[k] = nextCore
			nextCore++
		}
		if policy == PlaceSpread {
			out[i] = spreadSlots(cfg, cores)
		} else {
			out[i] = cfg.SlotsForCores(cores...)
		}
	}
	return out, nil
}

// spreadSlots orders a core group's slots HT0 of every core first, then
// HT1, so threads occupy distinct cores before sharing one.
func spreadSlots(cfg Config, cores []int) []int {
	var out []int
	for ht := 0; ht < cfg.ThreadsPerCore; ht++ {
		for _, c := range cores {
			out = append(out, c*cfg.ThreadsPerCore+ht)
		}
	}
	return out
}

// ValidateSlots checks explicit per-job slot lists against the
// platform: every slot in range, no slot claimed twice, no core shared
// between jobs, and each job's list able to hold at least one thread.
func ValidateSlots(cfg Config, slots [][]int) error {
	owner := map[int]int{}     // slot -> job
	coreOwner := map[int]int{} // core -> job
	for j, list := range slots {
		if len(list) == 0 {
			return fmt.Errorf("machine: job %d has no slots", j)
		}
		for _, s := range list {
			if s < 0 || s >= cfg.Slots() {
				return fmt.Errorf("machine: job %d slot %d out of range [0,%d)", j, s, cfg.Slots())
			}
			if prev, ok := owner[s]; ok {
				if prev == j {
					return fmt.Errorf("machine: job %d lists slot %d twice", j, s)
				}
				return fmt.Errorf("machine: slot %d claimed by both job %d and job %d", s, prev, j)
			}
			owner[s] = j
			core := s / cfg.ThreadsPerCore
			if prev, ok := coreOwner[core]; ok && prev != j {
				return fmt.Errorf("machine: core %d shared by job %d and job %d (jobs must own whole cores)",
					core, prev, j)
			}
			coreOwner[core] = j
		}
	}
	return nil
}

// FreeSlots returns the machine's unoccupied, unreserved slots in slot
// order — callers placing jobs incrementally can plan against what is
// left.
func (m *Machine) FreeSlots() []int {
	var out []int
	for s, t := range m.slots {
		if t == nil && m.reservedBy[s] == nil {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
