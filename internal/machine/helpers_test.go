package machine

import (
	"repro/internal/cache"
	"repro/internal/rng"
)

func fullToN(n int) cache.WayMask { return cache.MaskFirstN(n) }

func newTestStream() *rng.Stream { return rng.NewNamed("machine-test") }
