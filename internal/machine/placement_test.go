package machine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestPlanPackMatchesPaperLayout(t *testing.T) {
	cfg := Default()
	// The §5 pair: two 4-thread jobs pack onto cores 0-1 and 2-3.
	slots, err := Plan(cfg, PlacePack, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if !reflect.DeepEqual(slots, want) {
		t.Fatalf("pack = %v, want %v", slots, want)
	}
	// The §5.2 multi shape: 4-thread fg plus two 2-thread peers.
	slots, err = Plan(cfg, PlacePack, []int{4, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want = [][]int{{0, 1, 2, 3}, {4, 5}, {6, 7}}
	if !reflect.DeepEqual(slots, want) {
		t.Fatalf("pack = %v, want %v", slots, want)
	}
}

func TestPlanSpreadUsesWholeMachine(t *testing.T) {
	cfg := Default()
	slots, err := Plan(cfg, PlaceSpread, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each job gets two cores and its threads land on distinct cores
	// (HT0 of each) before sharing a core.
	want := [][]int{{0, 2, 1, 3}, {4, 6, 5, 7}}
	if !reflect.DeepEqual(slots, want) {
		t.Fatalf("spread = %v, want %v", slots, want)
	}
}

func TestPlanOverSubscriptionShrinks(t *testing.T) {
	cfg := Default()
	// Three 4-thread jobs want 6 cores of 4: the largest demands shrink
	// until the mix fits, one core per job at minimum.
	slots, err := Plan(cfg, PlacePack, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 {
		t.Fatalf("%d jobs placed", len(slots))
	}
	seen := map[int]bool{}
	for j, list := range slots {
		if len(list) == 0 {
			t.Fatalf("job %d got no slots", j)
		}
		for _, s := range list {
			if seen[s] {
				t.Fatalf("slot %d assigned twice: %v", s, slots)
			}
			seen[s] = true
		}
	}
	// More jobs than cores cannot be placed at all.
	if _, err := Plan(cfg, PlacePack, []int{1, 1, 1, 1, 1}); err == nil {
		t.Fatal("5 jobs on 4 cores accepted")
	}
}

func TestValidateSlots(t *testing.T) {
	cfg := Default()
	cases := []struct {
		name  string
		slots [][]int
		want  string // substring of the error, "" = valid
	}{
		{"valid", [][]int{{0, 1}, {2, 3}}, ""},
		{"out of range", [][]int{{0, 99}}, "out of range"},
		{"negative", [][]int{{-1}}, "out of range"},
		{"duplicate within job", [][]int{{2, 2}}, "twice"},
		{"overlap across jobs", [][]int{{0, 1}, {1, 2}}, "claimed by both"},
		{"core shared", [][]int{{0}, {1}}, "shared by"},
		{"empty job", [][]int{{}}, "no slots"},
	}
	for _, c := range cases {
		err := ValidateSlots(cfg, c.slots)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestAddJobCheckedRejectsBadPlacement(t *testing.T) {
	app := workload.MustByName("ferret")
	newM := func() *Machine { return New(Default()) }

	cases := []struct {
		name string
		prep func(m *Machine)
		spec JobSpec
		want string
	}{
		{"no profile", nil, JobSpec{Threads: 1, Slots: []int{0}, Scale: 1e-4}, "without profile"},
		{"bad scale", nil, JobSpec{Profile: app, Threads: 1, Slots: []int{0}}, "scale must be positive"},
		{"too few slots", nil, JobSpec{Profile: app, Threads: 4, Slots: []int{0, 1}, Scale: 1e-4}, "needs 4 slots"},
		{"out of range", nil, JobSpec{Profile: app, Threads: 1, Slots: []int{8}, Scale: 1e-4}, "out of range"},
		{"negative slot", nil, JobSpec{Profile: app, Threads: 1, Slots: []int{-2}, Scale: 1e-4}, "out of range"},
		{"duplicate slot", nil, JobSpec{Profile: app, Threads: 2, Slots: []int{3, 3}, Scale: 1e-4}, "twice"},
		// The reserved tail beyond Threads entries must be validated too:
		// a bogus tail used to silently corrupt the taskset region.
		{"bad reserved tail", nil, JobSpec{Profile: app, Threads: 1, Slots: []int{0, 42}, Scale: 1e-4}, "out of range"},
		{"occupied", func(m *Machine) {
			m.AddJob(JobSpec{Profile: app, Threads: 2, Slots: []int{0, 1}, Scale: 1e-4})
		}, JobSpec{Profile: app, Threads: 1, Slots: []int{1}, Scale: 1e-4}, "already occupied"},
	}
	for _, c := range cases {
		m := newM()
		if c.prep != nil {
			c.prep(m)
		}
		before := len(m.jobs)
		_, err := m.AddJobChecked(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
		if len(m.jobs) != before {
			t.Errorf("%s: failed AddJobChecked mutated the machine", c.name)
		}
	}

	// The reserved tail beyond a job's running threads owns its slots:
	// a later job landing inside it must be rejected, not silently
	// double-book the taskset region's bandwidth reservation.
	m2 := newM()
	mcf := workload.MustByName("429.mcf") // MaxThreads 1: slots 1-3 are tail
	m2.AddJob(JobSpec{Profile: mcf, Threads: 4, Slots: []int{0, 1, 2, 3}, Scale: 1e-4})
	if _, err := m2.AddJobChecked(JobSpec{Profile: app, Threads: 2, Slots: []int{2, 3}, Scale: 1e-4}); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("reserved-tail conflict: error %v, want reserved-slot rejection", err)
	}
	if free := m2.FreeSlots(); len(free) != 4 || free[0] != 4 {
		t.Errorf("FreeSlots after reserved tail = %v, want [4 5 6 7]", free)
	}

	// A rejected spec must leave the slots clean for a valid retry.
	m := newM()
	if _, err := m.AddJobChecked(JobSpec{Profile: app, Threads: 1, Slots: []int{0, 42}, Scale: 1e-4}); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := m.AddJobChecked(JobSpec{Profile: app, Threads: 2, Slots: []int{0, 1}, Scale: 1e-4}); err != nil {
		t.Fatalf("valid retry rejected: %v", err)
	}
}
