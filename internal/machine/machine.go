// Package machine assembles the simulated platform — cores, cache
// hierarchy, prefetchers, ring, DRAM, energy model — and executes jobs
// on it. Execution is epoch-based: each hardware thread advances in
// epochs of a few tens of thousands of instructions, generating memory
// references that walk the shared hierarchy; the thread with the
// smallest local time always runs next, so co-scheduled applications
// interleave in simulated-time order and contend for the LLC, the ring,
// and DRAM bandwidth exactly where the paper's applications did.
package machine

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/interconnect"
	"repro/internal/memory"
	"repro/internal/prefetch"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes the platform.
type Config struct {
	Cores          int
	ThreadsPerCore int
	Hier           cache.HierarchyConfig
	Timing         cpu.Timing
	DRAM           memory.DRAMConfig
	Ring           interconnect.RingConfig
	Prefetch       prefetch.Config
	Energy         energy.Params

	// EpochInstructions is the scheduling quantum per hardware thread.
	EpochInstructions float64
	// MaxPrefetchIssue caps prefetch fills triggered per demand access.
	MaxPrefetchIssue int
	// BandwidthQoS enables per-job DRAM bandwidth reservations
	// proportional to each job's core count — the hardware addition the
	// paper's conclusion calls for (§8). The prototype did not have it;
	// the ablation experiments quantify what it would have bought.
	BandwidthQoS bool
	// WarmupFrac excludes the first fraction of each foreground
	// thread's instructions from *reported* timing (simulation of
	// caches, buses, and energy runs normally throughout). The paper
	// measures full multi-minute executions where cold caches are
	// negligible; at our reduced scale the cold-start transient would
	// otherwise bias cache-friendly applications, so reported rates are
	// steady-state rates.
	WarmupFrac float64
}

// Default returns the paper's platform: 4-core, 8-thread Sandy Bridge
// client with the 6 MB way-partitionable LLC and all prefetchers on.
func Default() Config { return DefaultWithCores(4) }

// DefaultWithCores returns the paper's platform scaled to an arbitrary
// core count — hierarchy and ring sized to match — for scenarios that
// need a bigger machine than the 4-core prototype.
func DefaultWithCores(cores int) Config {
	if cores < 1 {
		panic("machine: platform needs at least one core")
	}
	return Config{
		Cores:             cores,
		ThreadsPerCore:    2,
		Hier:              cache.SandyBridgeHierarchy(cores),
		Timing:            cpu.DefaultTiming(),
		DRAM:              memory.DefaultDRAM(),
		Ring:              interconnect.DefaultRing(cores),
		Prefetch:          prefetch.AllOn(),
		Energy:            energy.DefaultParams(),
		EpochInstructions: 20000,
		MaxPrefetchIssue:  2,
		WarmupFrac:        0.12,
	}
}

// JobSpec describes one application instance to run.
type JobSpec struct {
	Profile *workload.Profile
	// Threads requests a software thread count; it is capped by the
	// profile's MaxThreads.
	Threads int
	// Slots lists the hardware-thread slots (core*ThreadsPerCore+ht) the
	// job is pinned to, in assignment order. Must cover Threads entries.
	Slots []int
	// Background marks a continuously-running job: it restarts when it
	// completes and never terminates the run.
	Background bool
	// Scale multiplies the profile's nominal instruction count.
	Scale float64
	// Seed differentiates otherwise-identical job instances.
	Seed string
}

// Job is a scheduled application instance.
type Job struct {
	Spec    JobSpec
	ID      int
	threads []*thread
	cores   []int // distinct cores actually running threads
	// reservedCores are the distinct cores of the full pinned slot set
	// (taskset region); bandwidth QoS reservations follow the pinned
	// region, not the thread count, just as a core reservation would.
	reservedCores []int

	perIterInstr float64 // Σ thread goals: one iteration's instructions
	retired      float64
	streamLines  uint64 // non-temporal DRAM transfers (bypass hierarchy)
	endCycles    float64
	done         bool
}

// Name returns the profile name.
func (j *Job) Name() string { return j.Spec.Profile.Name }

// Cores returns the distinct cores the job runs on.
func (j *Job) Cores() []int { return j.cores }

type thread struct {
	slot   int
	core   int
	job    *Job
	tidx   int
	goal   float64 // instructions per iteration
	instr  float64 // retired this iteration
	total  float64
	cycles float64
	active bool

	// warmCycles records local time when the thread crossed the warmup
	// fraction of its first iteration; <0 until then.
	warmCycles float64
	warmDone   bool

	phaseIdx int
	gen      *trace.Generator
	codeGen  *trace.CodeGenerator
	rnd      *rng.Stream

	// refBuf is the reusable reference batch one epoch consumes: the
	// generators fill it in one FillBatch call (identical stream to
	// per-reference Next calls) and the access loop walks it.
	refBuf []trace.Ref
}

// refBatch returns the thread's scratch buffer resized to n references.
func (t *thread) refBatch(n int) []trace.Ref {
	if cap(t.refBuf) < n {
		t.refBuf = make([]trace.Ref, n)
	}
	return t.refBuf[:n]
}

type ticker struct {
	intervalCycles float64
	nextCycles     float64
	fn             func(nowSeconds float64)
}

// Machine is one simulated platform instance. Build a fresh Machine per
// experiment run; construction is cheap relative to a run.
type Machine struct {
	cfg     Config
	hier    *cache.Hierarchy
	dram    *memory.DRAM
	ring    *interconnect.Ring
	pf      []*prefetch.Unit
	jobs    []*Job
	slots   []*thread
	tickers []*ticker
	// reservedBy records which job holds each slot of its pinned
	// taskset region — including the tail beyond the running threads,
	// which carries no thread but still owns the slot (bandwidth QoS
	// follows it).
	reservedBy []*Job

	// partSrc, if set, is polled once at result collection for the
	// online partition policy's activity summary (see PartitionTrace).
	partSrc func() *PartitionTrace

	// probeSrc, if set, is polled once at result collection for the
	// shadow-monitor readout (see ProbeTrace).
	probeSrc func() *ProbeTrace

	epochs uint64
}

// New builds the machine.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 || cfg.ThreadsPerCore <= 0 {
		panic("machine: invalid core/thread configuration")
	}
	nThreads := cfg.Cores * cfg.ThreadsPerCore
	m := &Machine{
		cfg:        cfg,
		hier:       cache.NewHierarchy(cfg.Hier),
		dram:       memory.NewDRAM(cfg.DRAM, nThreads),
		ring:       interconnect.NewRing(cfg.Ring, nThreads),
		slots:      make([]*thread, nThreads),
		reservedBy: make([]*Job, nThreads),
	}
	for c := 0; c < cfg.Cores; c++ {
		m.pf = append(m.pf, prefetch.NewUnit(cfg.Prefetch))
	}
	return m
}

// Hierarchy exposes the cache system (partition policies set way masks
// through it; experiments read its statistics).
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// SetPartitionSource registers fn to be polled once when the run's
// Result is collected. The online partition-policy loop reports its
// activity this way, so policy traces live in the Result — pure data
// that survives memoization and the persistent store — rather than
// only in live controller state.
func (m *Machine) SetPartitionSource(fn func() *PartitionTrace) { m.partSrc = fn }

// SetProbeSource registers fn to be polled once when the run's Result
// is collected. Profiling runs report their shadow-monitor curves this
// way, so MRC profiles live in the Result — surviving memoization and
// the persistent store — rather than only in live monitor state.
func (m *Machine) SetProbeSource(fn func() *ProbeTrace) { m.probeSrc = fn }

// Config returns the platform configuration.
func (m *Machine) Config() Config { return m.cfg }

// SlotsForCores returns the hardware-thread slots of the given cores in
// the paper's assignment order: both hyperthreads of a core before the
// next core.
func (m *Machine) SlotsForCores(cores ...int) []int {
	return m.cfg.SlotsForCores(cores...)
}

// validateJobSpec checks a spec against the platform and the slots
// already occupied, returning a descriptive error for every way a
// placement can mis-pin: missing profile or scale, too few slots for
// the (capped) thread count, out-of-range slots, a slot listed twice,
// or a slot another job already holds. The full pinned slot set is
// checked — not just the first Threads entries — because the tail still
// reserves cores (taskset region) for bandwidth QoS.
func (m *Machine) validateJobSpec(spec JobSpec, threads int) error {
	if spec.Profile == nil {
		return fmt.Errorf("machine: job without profile")
	}
	if spec.Scale <= 0 {
		return fmt.Errorf("machine: job %s scale must be positive, got %v", spec.Profile.Name, spec.Scale)
	}
	if len(spec.Slots) < threads {
		return fmt.Errorf("machine: job %s needs %d slots, got %d",
			spec.Profile.Name, threads, len(spec.Slots))
	}
	seen := make(map[int]bool, len(spec.Slots))
	for _, slot := range spec.Slots {
		if slot < 0 || slot >= len(m.slots) {
			return fmt.Errorf("machine: job %s slot %d out of range [0,%d)",
				spec.Profile.Name, slot, len(m.slots))
		}
		if seen[slot] {
			return fmt.Errorf("machine: job %s lists slot %d twice", spec.Profile.Name, slot)
		}
		seen[slot] = true
		if prev := m.slots[slot]; prev != nil {
			return fmt.Errorf("machine: slot %d already occupied by %s", slot, prev.job.Name())
		}
		if prev := m.reservedBy[slot]; prev != nil {
			return fmt.Errorf("machine: slot %d already reserved by %s (taskset tail)", slot, prev.Name())
		}
	}
	return nil
}

// AddJobChecked schedules a job, validating the placement first: a
// descriptive error is returned (and the machine left untouched) for
// overlapping, duplicate, or out-of-range slots and for thread counts
// the slot list cannot hold.
func (m *Machine) AddJobChecked(spec JobSpec) (*Job, error) {
	threads := spec.Threads
	if threads < 1 {
		threads = 1
	}
	if spec.Profile != nil && threads > spec.Profile.MaxThreads {
		threads = spec.Profile.MaxThreads
	}
	if err := m.validateJobSpec(spec, threads); err != nil {
		return nil, err
	}
	job := &Job{Spec: spec, ID: len(m.jobs)}
	seenReserved := map[int]bool{}
	for _, slot := range spec.Slots {
		m.reservedBy[slot] = job
		core := slot / m.cfg.ThreadsPerCore
		if !seenReserved[core] {
			seenReserved[core] = true
			job.reservedCores = append(job.reservedCores, core)
		}
	}
	prof := spec.Profile
	totalInstr := prof.Instructions * spec.Scale

	// Amdahl split: thread 0 executes the serial fraction; the parallel
	// remainder is divided evenly and inflated by synchronization
	// overhead, modeling barriers/locks/GC bottlenecks.
	par := totalInstr * (1 - prof.SerialFrac) / float64(threads)
	par *= 1 + prof.SyncOverhead*float64(threads-1)
	seenCore := map[int]bool{}
	for t := 0; t < threads; t++ {
		slot := spec.Slots[t]
		goal := par
		if t == 0 {
			goal += totalInstr * prof.SerialFrac
		}
		core := slot / m.cfg.ThreadsPerCore
		th := &thread{
			slot:     slot,
			core:     core,
			job:      job,
			tidx:     t,
			goal:     goal,
			active:   true,
			phaseIdx: -1,
			rnd:      rng.NewNamed(prof.Name + "/" + spec.Seed + "/t" + itoa(t)),
		}
		m.slots[slot] = th
		job.threads = append(job.threads, th)
		job.perIterInstr += goal
		if !seenCore[core] {
			seenCore[core] = true
			job.cores = append(job.cores, core)
		}
	}
	m.jobs = append(m.jobs, job)
	return job, nil
}

// AddJob schedules a job. It panics on slot conflicts or malformed
// specs — these are experiment-construction bugs; callers assembling
// placements from external input (scenario files) use AddJobChecked.
func (m *Machine) AddJob(spec JobSpec) *Job {
	job, err := m.AddJobChecked(spec)
	if err != nil {
		panic(err.Error())
	}
	return job
}

// RegisterTicker invokes fn at every interval of simulated time. Tickers
// drive the dynamic partitioning controller and time-series sampling.
func (m *Machine) RegisterTicker(intervalSeconds float64, fn func(nowSeconds float64)) {
	if intervalSeconds <= 0 {
		panic("machine: ticker interval must be positive")
	}
	ic := m.cfg.Timing.CyclesFromSeconds(intervalSeconds)
	m.tickers = append(m.tickers, &ticker{intervalCycles: ic, nextCycles: ic, fn: fn})
}

// addressing layout: each job owns a disjoint 1 TB region.
const (
	jobRegion  = uint64(1) << 40
	codeOffset = uint64(0)
	sharOffset = uint64(1) << 30
	privOffset = uint64(2) << 30
	privStride = uint64(1) << 28
)

// reconfigure rebuilds a thread's generators for the phase covering its
// current progress.
func (t *thread) reconfigure(ph workload.Phase, idx int) {
	prof := t.job.Spec.Profile
	base := uint64(t.job.ID+1) * jobRegion
	threads := len(t.job.threads)

	sharedFrac := prof.SharedFrac
	if threads == 1 {
		sharedFrac = 0
	}
	ws := float64(ph.WorkingSetBytes)
	privBytes := int(ws * (1 - sharedFrac) / float64(threads))
	if privBytes < 8*1024 {
		privBytes = 8 * 1024
	}
	sharedBytes := int(ws * sharedFrac)

	cfg := trace.Config{
		DataBase:     base + privOffset + uint64(t.tidx)*privStride,
		PrivateBytes: privBytes,
		SharedBase:   base + sharOffset,
		SharedBytes:  sharedBytes,
		SharedFrac:   sharedFrac,
		Mix:          ph.Mix,
		StrideLines:  ph.StrideLines,
		WriteFrac:    prof.WriteFrac,
		StreamFrac:   ph.StreamFrac,
		HotFrac:      ph.HotFrac,
		HotPortion:   ph.HotPortion,
		RepeatFrac:   ph.RepeatFrac,
		HotStride:    ph.HotStride,
	}
	t.gen = trace.NewGenerator(cfg, t.rnd.Derive("gen/"+itoa(idx)))
	if t.codeGen == nil {
		t.codeGen = trace.NewCodeGenerator(base+codeOffset, prof.CodeFootprintBytes, 64,
			t.rnd.Derive("code"))
	}
	t.phaseIdx = idx
}

// runEpoch advances thread t by one scheduling quantum.
func (m *Machine) runEpoch(t *thread) {
	prof := t.job.Spec.Profile
	n := m.cfg.EpochInstructions
	if rem := t.goal - t.instr; rem < n {
		n = rem
	}
	if n <= 0 {
		n = 1
	}

	ph, phIdx := prof.PhaseAt(t.instr / t.goal)
	if phIdx != t.phaseIdx || t.gen == nil {
		t.reconfigure(ph, phIdx)
	}

	sibActive := false
	sibSlot := t.slot ^ 1
	if m.cfg.ThreadsPerCore == 2 && sibSlot < len(m.slots) {
		if sib := m.slots[sibSlot]; sib != nil && sib.active && sib != t {
			sibActive = true
		}
	}

	var l2Hits, llcHits, memAcc, streamAcc, pfHits float64
	var dramBytes, llcBytes float64

	nData := probRound(n*ph.APKI/1000, t.rnd)
	dataRefs := t.refBatch(nData)
	t.gen.FillBatch(dataRefs)
	for _, ref := range dataRefs {
		if ref.Streaming {
			streamAcc++
			dramBytes += 64
			t.job.streamLines++
			continue
		}
		out := m.hier.Access(t.core, ref.LineAddr, ref.Write, false)
		switch out.Level {
		case cache.LevelL2:
			l2Hits++
		case cache.LevelLLC:
			llcHits++
			llcBytes += 64
		case cache.LevelMem:
			memAcc++
			llcBytes += 64
		}
		if out.HitPrefetched {
			pfHits++
		}
		dramBytes += float64(out.DRAMReadBytes + out.DRAMWriteBytes)
		m.feedPrefetchers(t, ref, out, &dramBytes, &llcBytes)
	}

	nCode := probRound(n*prof.CodeRefPKI/1000, t.rnd)
	codeRefs := t.refBatch(nCode)
	t.codeGen.FillBatch(codeRefs)
	for _, ref := range codeRefs {
		out := m.hier.Access(t.core, ref.LineAddr, false, true)
		switch out.Level {
		case cache.LevelL2:
			l2Hits++
		case cache.LevelLLC:
			llcHits++
			llcBytes += 64
		case cache.LevelMem:
			memAcc++
			llcBytes += 64
		}
		dramBytes += float64(out.DRAMReadBytes + out.DRAMWriteBytes)
	}

	memLat := m.dram.LatencyFor(t.slot)
	cost := cpu.EpochCost{
		Instructions:   n,
		L2Hits:         l2Hits,
		LLCHits:        llcHits,
		MemAccesses:    memAcc + streamAcc,
		PrefetchedHits: pfHits,
		LateFrac:       lateFrac(m.dram.Bus().UtilizationFor(t.slot)),
		LLCLatency:     m.ring.LLCLatency(t.core),
		MemLatency:     memLat,
		MLP:            prof.MLP,
		SMTActive:      sibActive,
		CPIScale:       prof.CPIScale,
	}
	cycles := m.cfg.Timing.Cycles(cost)
	t.cycles += cycles
	t.instr += n
	t.total += n
	t.job.retired += n
	if !t.warmDone && t.total >= m.cfg.WarmupFrac*t.goal {
		t.warmCycles = t.cycles
		t.warmDone = true
	}

	// Publish this thread's demand rates for the contention model.
	m.dram.Bus().SetRate(t.slot, dramBytes/cycles)
	m.ring.Bus().SetRate(t.slot, (llcBytes+dramBytes)/cycles)

	if t.instr >= t.goal-0.5 {
		if t.job.Spec.Background {
			t.instr = 0
			t.phaseIdx = -1 // restart phases next epoch
		} else {
			t.active = false
			m.dram.Bus().ClearRate(t.slot)
			m.ring.Bus().ClearRate(t.slot)
			m.checkJobDone(t.job)
		}
	}
}

// feedPrefetchers trains the per-core prefetch engines on a demand
// access and issues the resulting fills.
func (m *Machine) feedPrefetchers(t *thread, ref trace.Ref, out cache.AccessOutcome, dramBytes, llcBytes *float64) {
	pf := m.pf[t.core]
	issued := 0
	for _, req := range pf.ObserveL1D(ref.PC, ref.LineAddr) {
		if issued >= m.cfg.MaxPrefetchIssue {
			break
		}
		po := m.hier.PrefetchFill(t.core, req.LineAddr, req.IntoL1)
		*dramBytes += float64(po.DRAMReadBytes + po.DRAMWriteBytes)
		if po.DRAMReadBytes > 0 {
			*llcBytes += 64
		}
		issued++
	}
	if out.Level >= cache.LevelL2 {
		for _, req := range pf.ObserveL2(ref.LineAddr) {
			if issued >= m.cfg.MaxPrefetchIssue {
				break
			}
			po := m.hier.PrefetchFill(t.core, req.LineAddr, req.IntoL1)
			*dramBytes += float64(po.DRAMReadBytes + po.DRAMWriteBytes)
			if po.DRAMReadBytes > 0 {
				*llcBytes += 64
			}
			issued++
		}
	}
}

func (m *Machine) checkJobDone(j *Job) {
	for _, th := range j.threads {
		if th.active {
			return
		}
	}
	j.done = true
	for _, th := range j.threads {
		if th.cycles > j.endCycles {
			j.endCycles = th.cycles
		}
	}
}

// lateFrac returns the fraction of full memory latency a demand hit on
// a prefetched line still pays. Unloaded, a timely prefetch hides ~85%
// of the latency; as DRAM saturates, prefetches issue later and later
// behind queued demand traffic and hide progressively less. This is why
// prefetch-reliant streaming applications remain bandwidth-sensitive
// (Fig 4) even though their demand miss counters look clean.
func lateFrac(dramUtil float64) float64 {
	f := 0.15
	if dramUtil > 0.4 {
		f += 0.5 * (dramUtil - 0.4) / 0.6
	}
	if f > 0.62 {
		f = 0.62
	}
	return f
}

// probRound rounds x to an integer, stochastically in proportion to the
// fractional part, preserving expected rates at epoch granularity.
func probRound(x float64, r *rng.Stream) int {
	f := math.Floor(x)
	n := int(f)
	if r.Float64() < x-f {
		n++
	}
	return n
}

const maxEpochs = 400_000_000 // runaway-experiment backstop

// Run executes until every foreground job completes, then prices energy
// over the window and returns per-job results. It panics if no
// foreground job is scheduled (the run would never terminate).
func (m *Machine) Run() *Result {
	fg := 0
	for _, j := range m.jobs {
		if !j.Spec.Background {
			fg++
		}
	}
	if fg == 0 {
		panic("machine: Run with no foreground job")
	}
	if m.cfg.BandwidthQoS {
		m.configureBandwidthQoS()
	}
	for {
		t := m.pickNext()
		if t == nil {
			break
		}
		m.fireTickers(t.cycles)
		m.runEpoch(t)
		m.epochs++
		if m.epochs > maxEpochs {
			panic("machine: epoch limit exceeded (runaway experiment)")
		}
	}
	return m.collect()
}

// configureBandwidthQoS gives each job a DRAM bandwidth reservation
// proportional to the cores it occupies.
func (m *Machine) configureBandwidthQoS() {
	groupOf := make([]int, len(m.slots))
	for i := range groupOf {
		groupOf[i] = -1
	}
	var shares []float64
	totalCores := float64(m.cfg.Cores)
	for g, j := range m.jobs {
		for _, th := range j.threads {
			groupOf[th.slot] = g
		}
		shares = append(shares, float64(len(j.reservedCores))/totalCores)
	}
	m.dram.Bus().ConfigureQoS(groupOf, shares)
}

// pickNext returns the active thread with the smallest local time, or
// nil when all foreground jobs are done.
func (m *Machine) pickNext() *thread {
	allFgDone := true
	for _, j := range m.jobs {
		if !j.Spec.Background && !j.done {
			allFgDone = false
			break
		}
	}
	if allFgDone {
		return nil
	}
	var best *thread
	for _, t := range m.slots {
		if t == nil || !t.active {
			continue
		}
		if best == nil || t.cycles < best.cycles {
			best = t
		}
	}
	return best
}

func (m *Machine) fireTickers(nowCycles float64) {
	for _, tk := range m.tickers {
		for tk.nextCycles <= nowCycles {
			tk.fn(m.cfg.Timing.Seconds(tk.nextCycles))
			tk.nextCycles += tk.intervalCycles
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
