package machine

import (
	"testing"

	"repro/internal/workload"
)

const testScale = 5e-4

func runAlone(t *testing.T, name string, threads int) *Result {
	t.Helper()
	m := New(Default())
	app := workload.MustByName(name)
	slots := make([]int, threads)
	for i := range slots {
		slots[i] = i
	}
	m.AddJob(JobSpec{Profile: app, Threads: threads, Slots: slots, Scale: testScale})
	return m.Run()
}

func TestSingleJobCompletes(t *testing.T) {
	res := runAlone(t, "swaptions", 4)
	j := res.JobByName("swaptions")
	if j.Seconds <= 0 || j.Instructions <= 0 {
		t.Fatalf("degenerate result: %+v", j)
	}
	if j.Iterations != 1 {
		t.Fatalf("foreground iterations = %v", j.Iterations)
	}
	if res.Energy.SocketJoules <= 0 || res.Energy.WallJoules <= res.Energy.SocketJoules {
		t.Fatalf("energy: %+v", res.Energy)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runAlone(t, "ferret", 4)
	b := runAlone(t, "ferret", 4)
	if a.JobByName("ferret").Seconds != b.JobByName("ferret").Seconds {
		t.Fatal("identical runs differ")
	}
	if a.Usage.DRAMLines != b.Usage.DRAMLines {
		t.Fatal("identical runs moved different DRAM traffic")
	}
}

func TestAmdahlScaling(t *testing.T) {
	t1 := runAlone(t, "swaptions", 1).JobByName("swaptions").Seconds
	t8 := runAlone(t, "swaptions", 8).JobByName("swaptions").Seconds
	sp := t1 / t8
	if sp < 3.5 {
		t.Fatalf("highly parallel app speedup(8) = %v, want > 3.5", sp)
	}
	// h2 is lock-serialized: must scale poorly.
	h1 := runAlone(t, "h2", 1).JobByName("h2").Seconds
	h8 := runAlone(t, "h2", 8).JobByName("h2").Seconds
	if h1/h8 > 2.5 {
		t.Fatalf("low-scalability app speedup(8) = %v, want < 2.5", h1/h8)
	}
}

func TestSMTSharingSlowerThanTwoCores(t *testing.T) {
	// 2 threads on one core (slots 0,1) vs 2 threads on two cores
	// (slots 0,2): SMT sharing must be slower.
	app := workload.MustByName("swaptions")
	mSMT := New(Default())
	mSMT.AddJob(JobSpec{Profile: app, Threads: 2, Slots: []int{0, 1}, Scale: testScale})
	smt := mSMT.Run().JobByName("swaptions").Seconds

	mSplit := New(Default())
	mSplit.AddJob(JobSpec{Profile: app, Threads: 2, Slots: []int{0, 2}, Scale: testScale})
	split := mSplit.Run().JobByName("swaptions").Seconds

	if smt <= split {
		t.Fatalf("SMT sharing (%v) not slower than separate cores (%v)", smt, split)
	}
}

func TestSingleThreadedAppIgnoresExtraThreads(t *testing.T) {
	res := runAlone(t, "429.mcf", 4)
	if got := res.JobByName("429.mcf").Threads; got != 1 {
		t.Fatalf("mcf ran with %d threads", got)
	}
}

func TestBackgroundJobLoops(t *testing.T) {
	m := New(Default())
	fg := workload.MustByName("429.mcf") // long
	bg := workload.MustByName("fop")     // short: must loop several times
	m.AddJob(JobSpec{Profile: fg, Threads: 4, Slots: m.SlotsForCores(0, 1), Scale: testScale})
	m.AddJob(JobSpec{Profile: bg, Threads: 4, Slots: m.SlotsForCores(2, 3), Background: true, Scale: testScale})
	res := m.Run()
	if it := res.JobByName("fop").Iterations; it < 1.5 {
		t.Fatalf("short background app iterated only %v times", it)
	}
	if !res.JobByName("fop").Background {
		t.Fatal("background flag lost")
	}
}

func TestRunWithoutForegroundPanics(t *testing.T) {
	m := New(Default())
	m.AddJob(JobSpec{Profile: workload.MustByName("fop"), Threads: 4,
		Slots: m.SlotsForCores(0, 1), Background: true, Scale: testScale})
	defer func() {
		if recover() == nil {
			t.Fatal("background-only run did not panic")
		}
	}()
	m.Run()
}

func TestSlotConflictPanics(t *testing.T) {
	m := New(Default())
	app := workload.MustByName("fop")
	m.AddJob(JobSpec{Profile: app, Threads: 2, Slots: []int{0, 1}, Scale: testScale})
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping slots accepted")
		}
	}()
	m.AddJob(JobSpec{Profile: app, Threads: 2, Slots: []int{1, 2}, Scale: testScale, Seed: "other"})
}

func TestTickerFires(t *testing.T) {
	m := New(Default())
	m.AddJob(JobSpec{Profile: workload.MustByName("ferret"), Threads: 4,
		Slots: m.SlotsForCores(0, 1), Scale: testScale})
	fired := 0
	var last float64
	m.RegisterTicker(1e-5, func(now float64) {
		fired++
		if now <= last {
			t.Fatalf("ticker time went backwards: %v after %v", now, last)
		}
		last = now
	})
	res := m.Run()
	if fired == 0 {
		t.Fatal("ticker never fired")
	}
	if last > res.WindowSeconds+1e-5 {
		t.Fatalf("ticker fired past the window: %v > %v", last, res.WindowSeconds)
	}
}

func TestReadCountersMonotone(t *testing.T) {
	m := New(Default())
	job := m.AddJob(JobSpec{Profile: workload.MustByName("canneal"), Threads: 4,
		Slots: m.SlotsForCores(0, 1), Scale: testScale})
	var prev JobCounters
	m.RegisterTicker(1e-5, func(now float64) {
		cur := m.ReadCounters(job)
		if cur.Instructions < prev.Instructions || cur.LLCMisses < prev.LLCMisses {
			t.Fatal("counters decreased")
		}
		prev = cur
	})
	m.Run()
	if prev.Instructions == 0 {
		t.Fatal("no counter reads happened")
	}
	if prev.MPKI() < 0 || prev.APKI() < prev.MPKI() {
		t.Fatalf("APKI (%v) must be at least MPKI (%v)", prev.APKI(), prev.MPKI())
	}
}

func TestWayRestrictionSlowsCacheSensitiveApp(t *testing.T) {
	app := workload.MustByName("471.omnetpp")
	run := func(ways int) float64 {
		m := New(Default())
		job := m.AddJob(JobSpec{Profile: app, Threads: 1, Slots: []int{0}, Scale: testScale})
		if ways > 0 {
			mask := fullToN(ways)
			for _, c := range job.Cores() {
				m.Hierarchy().SetWayMask(c, mask)
			}
		}
		return m.Run().JobByName(app.Name).Seconds
	}
	if small, big := run(2), run(0); small <= big {
		t.Fatalf("omnetpp no slower with 2 ways (%v) than 12 (%v)", small, big)
	}
}

func TestStreamingJobBypassesLLC(t *testing.T) {
	res := runAlone(t, "stream_uncached", 1)
	j := res.JobByName("stream_uncached")
	if j.LLCAPKI > 1 {
		t.Fatalf("uncached stream generated LLC traffic: APKI %v", j.LLCAPKI)
	}
	if j.DRAMBytes == 0 {
		t.Fatal("uncached stream moved no DRAM bytes")
	}
}

func TestEnergyWindowConsistency(t *testing.T) {
	res := runAlone(t, "dedup", 4)
	u := res.Usage
	if u.WallSeconds <= 0 || u.Cores != 4 {
		t.Fatalf("usage: %+v", u)
	}
	if u.CoreActiveSec > float64(u.Cores)*u.WallSeconds+1e-9 {
		t.Fatal("more core-active seconds than core-seconds in the window")
	}
	if u.SMTActiveSec > u.CoreActiveSec+1e-9 {
		t.Fatal("SMT seconds exceed active seconds")
	}
}

func TestProbRoundMeanPreserving(t *testing.T) {
	m := New(Default())
	_ = m
	r := newTestStream()
	var sum int
	const n = 100000
	for i := 0; i < n; i++ {
		sum += probRound(2.5, r)
	}
	mean := float64(sum) / n
	if mean < 2.45 || mean > 2.55 {
		t.Fatalf("probRound(2.5) mean = %v", mean)
	}
}
