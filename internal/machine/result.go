package machine

import "repro/internal/energy"

// JobCounters is a live counter snapshot for one job, the analogue of a
// libpfm event-set read. The dynamic partitioning controller differences
// successive snapshots to compute interval MPKI (Algorithm 6.1).
type JobCounters struct {
	Instructions float64
	LLCAccesses  uint64 // demand L2 misses reaching the LLC
	LLCMisses    uint64 // demand fetches from DRAM
	DRAMBytes    uint64 // includes prefetch and writeback traffic
}

// MPKI returns LLC misses per kilo-instruction for the snapshot.
func (c JobCounters) MPKI() float64 {
	if c.Instructions <= 0 {
		return 0
	}
	return float64(c.LLCMisses) / c.Instructions * 1000
}

// APKI returns LLC accesses per kilo-instruction for the snapshot.
func (c JobCounters) APKI() float64 {
	if c.Instructions <= 0 {
		return 0
	}
	return float64(c.LLCAccesses) / c.Instructions * 1000
}

// Sub returns the counter delta c - o (for interval readings).
func (c JobCounters) Sub(o JobCounters) JobCounters {
	return JobCounters{
		Instructions: c.Instructions - o.Instructions,
		LLCAccesses:  c.LLCAccesses - o.LLCAccesses,
		LLCMisses:    c.LLCMisses - o.LLCMisses,
		DRAMBytes:    c.DRAMBytes - o.DRAMBytes,
	}
}

// ReadCounters snapshots job j's current counters by summing the
// per-core hierarchy statistics over the cores the job is pinned to
// (cores are never shared between jobs, mirroring the paper's disjoint
// pinning).
func (m *Machine) ReadCounters(j *Job) JobCounters {
	c := JobCounters{Instructions: j.retired}
	for _, core := range j.cores {
		cs := m.hier.CoreStats(core)
		// Prefetch fills count as LLC traffic: on the real machine the
		// LLC access counters see prefetcher-generated requests too, and
		// Table 2's >10-APKI pollution criterion is about total pressure.
		c.LLCAccesses += cs.LLCAccesses + cs.LLCPrefetchFills
		c.LLCMisses += cs.LLCMisses
		c.DRAMBytes += cs.DRAMReadBytes + cs.DRAMWriteBytes
	}
	c.DRAMBytes += j.streamLines * 64
	return c
}

// JobResult summarizes one job over the measured window.
type JobResult struct {
	Name         string
	Threads      int
	Background   bool
	Seconds      float64 // foreground: completion time; background: window
	Instructions float64 // retired within the window
	Iterations   float64 // completed iterations (fractional)
	IPC          float64
	LLCMPKI      float64
	LLCAPKI      float64
	DRAMBytes    float64
}

// PartitionTrace summarizes an online partition policy's activity over
// a run. It lives in the Result (rather than in live controller state)
// so policy-driven runs stay pure functions of their spec: a memoized
// or disk-cached result reports the same reallocation count and final
// allocation as the run that produced it.
type PartitionTrace struct {
	// Policy is the registered policy name that drove the run.
	Policy string `json:"policy"`
	// Reallocations counts the decision points at which the applied
	// allocation changed (including the initial grant, if it differed
	// from the power-on full-cache state).
	Reallocations int `json:"reallocations"`
	// FinalWays is each job's way count at run end, in job order.
	FinalWays []int `json:"final_ways,omitempty"`
}

// ProbeTrace carries shadow-monitor readouts harvested at result
// collection. Like PartitionTrace it is pure data: a memoized or
// disk-cached probing run reports the same curves as the run that
// produced them. Monitors are shadow-only (see cache.UMON), so a run
// with a probe attached is byte-identical to the same run without one
// in every other Result field.
type ProbeTrace struct {
	// Kind names the monitor family plus its model version (e.g.
	// "umon/mrc-cpi-v1") — the EngineVersion analogue for probe data.
	Kind string `json:"kind"`
	// SampleShift is the set-sampling stride: every 2^SampleShift-th
	// LLC set is monitored, so scaling sampled counts by 2^SampleShift
	// estimates whole-cache totals.
	SampleShift uint `json:"sample_shift"`
	// Jobs holds one readout per mix job, in job order.
	Jobs []ProbeJobTrace `json:"jobs"`
}

// ProbeJobTrace is one job's utility-monitor readout.
type ProbeJobTrace struct {
	// Hits is the cumulative demand-hit curve over the sampled sets:
	// Hits[w-1] estimates the demand hits the job would have achieved
	// with w LLC ways.
	Hits []float64 `json:"hits"`
	// Accesses/Misses are the sampled demand LLC accesses and misses
	// (stack distance beyond the associativity) the monitor observed.
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
}

// Result is the outcome of one Machine.Run.
type Result struct {
	WindowSeconds float64
	Jobs          []JobResult
	Usage         energy.Usage
	Energy        energy.Report
	// Partition carries the online partition policy's activity summary
	// (nil when no online policy was attached).
	Partition *PartitionTrace `json:",omitempty"`
	// Probe carries shadow-monitor curves (nil when no probe was
	// attached).
	Probe *ProbeTrace `json:",omitempty"`
}

// JobByName returns the result entry for the named job. It panics if the
// job was not scheduled (an experiment-driver bug).
func (r *Result) JobByName(name string) JobResult {
	for _, j := range r.Jobs {
		if j.Name == name {
			return j
		}
	}
	panic("machine: no job named " + name)
}

// collect builds the Result after the run loop terminates.
func (m *Machine) collect() *Result {
	// Window: completion of the last foreground job.
	var windowCycles float64
	for _, j := range m.jobs {
		if !j.Spec.Background && j.endCycles > windowCycles {
			windowCycles = j.endCycles
		}
	}
	res := &Result{WindowSeconds: m.cfg.Timing.Seconds(windowCycles)}

	for _, j := range m.jobs {
		cnt := m.ReadCounters(j)
		jr := JobResult{
			Name:         j.Name(),
			Threads:      len(j.threads),
			Background:   j.Spec.Background,
			Instructions: cnt.Instructions,
			LLCMPKI:      cnt.MPKI(),
			LLCAPKI:      cnt.APKI(),
			DRAMBytes:    float64(cnt.DRAMBytes),
		}
		if j.Spec.Background {
			jr.Seconds = res.WindowSeconds
			if j.perIterInstr > 0 {
				jr.Iterations = j.retired / j.perIterInstr
			}
		} else {
			jr.Seconds = m.jobSteadySeconds(j)
			jr.Iterations = 1
		}
		if jr.Seconds > 0 {
			jr.IPC = jr.Instructions / (jr.Seconds * m.cfg.Timing.FreqHz)
		}
		res.Jobs = append(res.Jobs, jr)
	}

	res.Usage = m.usage(windowCycles)
	res.Energy = m.cfg.Energy.Price(res.Usage)
	if m.partSrc != nil {
		res.Partition = m.partSrc()
	}
	if m.probeSrc != nil {
		res.Probe = m.probeSrc()
	}
	return res
}

// jobSteadySeconds reports a foreground job's completion time with the
// cold-start transient removed: each thread's duration is its
// post-warmup time extrapolated over the full instruction count, and
// the job finishes with its slowest thread. See Config.WarmupFrac.
func (m *Machine) jobSteadySeconds(j *Job) float64 {
	wf := m.cfg.WarmupFrac
	var worst float64
	for _, t := range j.threads {
		d := t.cycles
		if t.warmDone && wf > 0 && wf < 1 {
			d = (t.cycles - t.warmCycles) / (1 - wf)
		}
		if d > worst {
			worst = d
		}
	}
	return m.cfg.Timing.Seconds(worst)
}

// usage integrates core activity and event counts over the window for
// the energy model.
func (m *Machine) usage(windowCycles float64) energy.Usage {
	u := energy.Usage{
		WallSeconds: m.cfg.Timing.Seconds(windowCycles),
		Cores:       m.cfg.Cores,
	}
	// Per-core activity: a thread is busy from cycle 0 until it
	// finishes (or the window closes for background threads).
	for c := 0; c < m.cfg.Cores; c++ {
		var ends []float64
		for ht := 0; ht < m.cfg.ThreadsPerCore; ht++ {
			t := m.slots[c*m.cfg.ThreadsPerCore+ht]
			if t == nil {
				continue
			}
			end := t.cycles
			if t.job.Spec.Background || end > windowCycles {
				end = windowCycles
			}
			ends = append(ends, end)
		}
		switch len(ends) {
		case 0:
		case 1:
			u.CoreActiveSec += m.cfg.Timing.Seconds(ends[0])
		default:
			lo, hi := ends[0], ends[1]
			if lo > hi {
				lo, hi = hi, lo
			}
			u.CoreActiveSec += m.cfg.Timing.Seconds(hi)
			u.SMTActiveSec += m.cfg.Timing.Seconds(lo)
		}
	}
	// Event counts from the hierarchy.
	for c := 0; c < m.cfg.Cores; c++ {
		u.L2Accesses += m.hier.L2(c).Stats().Accesses
		cs := m.hier.CoreStats(c)
		u.DRAMLines += (cs.DRAMReadBytes + cs.DRAMWriteBytes) / 64
	}
	u.LLCAccesses = m.hier.LLC().Stats().Accesses
	for _, j := range m.jobs {
		u.DRAMLines += j.streamLines
	}
	return u
}
