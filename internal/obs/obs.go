// Package obs is the engine's zero-dependency observability layer: a
// nil-safe hierarchical span tracer with Chrome trace_event export and
// a hand-rolled Prometheus histogram. It exists so every layer of the
// stack (sched batches, fleet oracle phases, core sessions, the HTTP
// server) can attribute wall time without taking a dependency or
// perturbing results: a nil *Tracer is a valid no-op receiver, so the
// hot path pays one nil check when tracing is off, and timing data
// flows only through spans and stats — never into memo keys, reports,
// or any other deterministic output.
package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so
// span records marshal trivially; use the String/Int/Float helpers.
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an integer-valued attribute from an int64.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Float builds a float-valued attribute (shortest round-trip form).
func Float(k string, v float64) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// SpanID identifies a span within one tracer. The zero value means
// "no span" and is what nil tracers hand out; it is always safe to use
// as a parent.
type SpanID uint64

// SpanRecord is one completed span. Start is relative to the tracer's
// epoch so records order and subtract without wall-clock context.
type SpanRecord struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Lane   int // render track: nested spans share their parent's lane
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Span is a live span handle returned by Tracer.Start. The zero value
// (and any span from a nil tracer) is a no-op.
type Span struct {
	t  *Tracer
	id SpanID
}

// ID returns the span's identity for use as a child's parent.
func (s Span) ID() SpanID { return s.id }

// End completes the span, appending any final attributes. Ending a
// zero span, or ending twice, is a no-op.
func (s Span) End(attrs ...Attr) {
	if s.t != nil {
		s.t.end(s.id, attrs)
	}
}

// activeSpan tracks a started, not-yet-ended span.
type activeSpan struct {
	rec SpanRecord
}

// lane is one render track. Spans that nest (child starts while parent
// is the lane's innermost active span) share a lane; overlapping
// siblings spread across lanes so Chrome's renderer never stacks
// unrelated spans.
type lane struct {
	stack []SpanID      // active spans on this lane, outermost first
	end   time.Duration // end of the last completed span placed here
}

// DefaultLimit is the ring capacity New(0) provides: enough for every
// span of a mega-fleet run at quick scale with room to spare, small
// enough (~100 bytes/record) to sit in a long-lived server untended.
const DefaultLimit = 16384

// Tracer records hierarchical spans into a bounded in-memory ring.
// All methods are safe for concurrent use, and all methods are no-ops
// on a nil receiver — components hold a possibly-nil *Tracer and call
// it unconditionally.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	nextID  SpanID
	active  map[SpanID]*activeSpan
	lanes   []lane
	done    []SpanRecord // ring buffer, capacity limit
	head    int          // index of oldest record once the ring is full
	n       int          // records currently held
	limit   int
	dropped uint64
}

// New builds a tracer holding at most limit completed spans (0 =
// DefaultLimit). When the ring is full the oldest record is dropped
// and counted; exports state the drop count.
func New(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Tracer{
		epoch:  time.Now(),
		nextID: 1,
		active: make(map[SpanID]*activeSpan),
		done:   make([]SpanRecord, limit),
		limit:  limit,
	}
}

// Start opens a span under parent (0 = root) and returns its handle.
// On a nil tracer it returns the zero Span.
func (t *Tracer) Start(name string, parent SpanID, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	now := time.Since(t.epoch)
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	l := t.pickLane(parent, now)
	t.lanes[l].stack = append(t.lanes[l].stack, id)
	t.active[id] = &activeSpan{rec: SpanRecord{
		ID: id, Parent: parent, Name: name, Lane: l,
		Start: now, Attrs: append([]Attr(nil), attrs...),
	}}
	return Span{t: t, id: id}
}

// Record logs an already-measured interval as a completed span — the
// hot path's entry point. The engine measures a simulation once with
// one time.Now pair and feeds the same duration to its busy counter,
// its phase accumulator, and this call, so trace totals and stats
// totals agree exactly.
func (t *Tracer) Record(name string, parent SpanID, start time.Time, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	startD := start.Sub(t.epoch)
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	l := t.pickRecordLane(parent, startD, startD+dur)
	t.push(SpanRecord{
		ID: id, Parent: parent, Name: name, Lane: l,
		Start: startD, Dur: dur, Attrs: append([]Attr(nil), attrs...),
	})
}

// pickLane places a starting span: nested under its parent when the
// parent is the innermost active span of its lane, otherwise on the
// lowest free lane. Callers hold t.mu.
func (t *Tracer) pickLane(parent SpanID, now time.Duration) int {
	if p, ok := t.active[parent]; ok {
		l := p.rec.Lane
		if s := t.lanes[l].stack; len(s) > 0 && s[len(s)-1] == parent && t.lanes[l].end <= now {
			return l
		}
	}
	for i := range t.lanes {
		if len(t.lanes[i].stack) == 0 && t.lanes[i].end <= now {
			return i
		}
	}
	t.lanes = append(t.lanes, lane{})
	return len(t.lanes) - 1
}

// pickRecordLane places a pre-measured span, which never joins a lane
// stack: it nests visually under an active parent when the interval
// fits, else takes a free lane. Callers hold t.mu.
func (t *Tracer) pickRecordLane(parent SpanID, start, end time.Duration) int {
	if p, ok := t.active[parent]; ok {
		l := p.rec.Lane
		if s := t.lanes[l].stack; len(s) > 0 && s[len(s)-1] == parent && t.lanes[l].end <= start {
			t.lanes[l].end = end
			return l
		}
	}
	for i := range t.lanes {
		if len(t.lanes[i].stack) == 0 && t.lanes[i].end <= start {
			t.lanes[i].end = end
			return i
		}
	}
	t.lanes = append(t.lanes, lane{end: end})
	return len(t.lanes) - 1
}

func (t *Tracer) end(id SpanID, attrs []Attr) {
	now := time.Since(t.epoch)
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.active[id]
	if !ok {
		return // already ended, or recorded by a tracer restart
	}
	delete(t.active, id)
	rec := a.rec
	rec.Dur = now - rec.Start
	rec.Attrs = append(rec.Attrs, attrs...)
	l := rec.Lane
	for i := len(t.lanes[l].stack) - 1; i >= 0; i-- {
		if t.lanes[l].stack[i] == id {
			t.lanes[l].stack = append(t.lanes[l].stack[:i], t.lanes[l].stack[i+1:]...)
			break
		}
	}
	if t.lanes[l].end < now {
		t.lanes[l].end = now
	}
	t.push(rec)
}

// push appends a completed record to the ring. Callers hold t.mu.
func (t *Tracer) push(rec SpanRecord) {
	if t.n == t.limit {
		t.done[t.head] = rec
		t.head = (t.head + 1) % t.limit
		t.dropped++
		return
	}
	t.done[(t.head+t.n)%t.limit] = rec
	t.n++
}

// Len returns the number of completed spans currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many completed spans the bounded ring evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the completed spans ordered by start time (ties by
// ID). It is safe to call while spans are being recorded; in-flight
// (unended) spans are not included.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.done[(t.head+i)%t.limit])
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}
