package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket, lock-free histogram in the Prometheus
// mold: Observe is a couple of atomic adds, WriteProm renders the
// cumulative `_bucket`/`_sum`/`_count` text exposition lines. Bounds
// are upper-inclusive (observation <= bound lands in that bucket), and
// the implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64   // float64 bits, updated by CAS
}

// NewHistogram builds a histogram over the given ascending upper
// bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DurationBounds is the shared bucket layout for second-denominated
// latencies: 1ms to ~100s in roughly 1-3-10 steps.
var DurationBounds = []float64{
	0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// WriteProm writes the histogram in Prometheus text exposition format
// under name, with labels an optional pre-rendered `k="v",...` list
// (no braces) merged into each bucket's label set.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	}
}
