package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// chromeEvent is one Chrome trace_event "complete" event. Timestamps
// and durations are microseconds, per the trace_event format spec.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the JSON-object trace container chrome://tracing and
// Perfetto both load.
type chromeDoc struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

func chromeEvents(recs []SpanRecord) []chromeEvent {
	evs := make([]chromeEvent, 0, len(recs))
	for _, r := range recs {
		args := make(map[string]string, len(r.Attrs)+2)
		args["span"] = strconv.FormatUint(uint64(r.ID), 10)
		if r.Parent != 0 {
			args["parent"] = strconv.FormatUint(uint64(r.Parent), 10)
		}
		for _, a := range r.Attrs {
			args[a.Key] = a.Value
		}
		evs = append(evs, chromeEvent{
			Name: r.Name, Cat: "cachepart", Ph: "X",
			Ts:  float64(r.Start.Nanoseconds()) / 1e3,
			Dur: float64(r.Dur.Nanoseconds()) / 1e3,
			PID: 1, TID: r.Lane + 1,
			Args: args,
		})
	}
	return evs
}

func chromeJSON(recs []SpanRecord, dropped uint64) []byte {
	doc := chromeDoc{
		TraceEvents:     chromeEvents(recs),
		DisplayTimeUnit: "ms",
	}
	if dropped > 0 {
		doc.OtherData = map[string]string{
			"dropped_spans": strconv.FormatUint(dropped, 10),
		}
	}
	b, err := json.Marshal(doc)
	if err != nil { // all fields are plain strings/numbers
		panic("obs: chrome trace marshal: " + err.Error())
	}
	return append(b, '\n')
}

// ChromeTrace exports every completed span as Chrome trace_event JSON,
// loadable in chrome://tracing or ui.perfetto.dev. A nil tracer
// exports an empty (but valid) trace.
func (t *Tracer) ChromeTrace() []byte {
	return chromeJSON(t.Snapshot(), t.Dropped())
}

// ChromeTraceUnder exports the subtree rooted at root — the root's
// record plus every completed span that reaches it through Parent
// links. The server's per-run trace endpoint uses it to cut one run
// out of a long-lived tracer.
func (t *Tracer) ChromeTraceUnder(root SpanID) []byte {
	recs := t.Snapshot()
	if root == 0 {
		return chromeJSON(recs, t.Dropped())
	}
	under := map[SpanID]bool{root: true}
	// Records are start-ordered, so parents precede children in almost
	// all cases; sweep until the reachable set stops growing to cover
	// pre-measured records pushed before their parent ended.
	for grew := true; grew; {
		grew = false
		for _, r := range recs {
			if !under[r.ID] && under[r.Parent] {
				under[r.ID] = true
				grew = true
			}
		}
	}
	kept := recs[:0]
	for _, r := range recs {
		if under[r.ID] {
			kept = append(kept, r)
		}
	}
	return chromeJSON(kept, 0)
}

// Summary renders a one-screen text digest: span counts and total/mean
// durations per span name, widest totals first. A nil tracer returns
// an empty-trace line.
func (t *Tracer) Summary() string {
	recs := t.Snapshot()
	type agg struct {
		name  string
		count int
		total float64
	}
	byName := map[string]*agg{}
	var wall float64
	lanes := map[int]bool{}
	for _, r := range recs {
		a := byName[r.Name]
		if a == nil {
			a = &agg{name: r.Name}
			byName[r.Name] = a
		}
		a.count++
		a.total += r.Dur.Seconds()
		if end := (r.Start + r.Dur).Seconds(); end > wall {
			wall = end
		}
		lanes[r.Lane] = true
	}
	var rows []*agg
	for _, a := range byName {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d spans (%d dropped), %d lanes, wall %.3fs\n",
		len(recs), t.Dropped(), len(lanes), wall)
	if len(rows) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %-18s %7s %12s %12s\n", "span", "count", "total", "mean")
	for _, a := range rows {
		fmt.Fprintf(&sb, "  %-18s %7d %11.4fs %11.4fs\n",
			a.name, a.count, a.total, a.total/float64(a.count))
	}
	return sb.String()
}

// Structure renders the span tree as names and counts only — no
// timing — with same-name siblings merged. The result is deterministic
// for a deterministic engine run (phases of one run start serially, so
// first-start order of distinct names is stable), which makes it the
// golden-able view of a trace: tests pin nesting and multiplicity
// without pinning durations.
func (t *Tracer) Structure() string {
	recs := t.Snapshot()
	byParent := map[SpanID][]SpanRecord{}
	ids := map[SpanID]bool{}
	for _, r := range recs {
		ids[r.ID] = true
	}
	var roots []SpanRecord
	for _, r := range recs {
		if r.Parent != 0 && ids[r.Parent] {
			byParent[r.Parent] = append(byParent[r.Parent], r)
		} else {
			roots = append(roots, r)
		}
	}
	var sb strings.Builder
	writeStructure(&sb, roots, byParent, 0)
	return sb.String()
}

// writeStructure renders one sibling group: records in first-start
// order, same-name runs merged with their children pooled.
func writeStructure(sb *strings.Builder, recs []SpanRecord, byParent map[SpanID][]SpanRecord, depth int) {
	type group struct {
		name     string
		count    int
		children []SpanRecord
	}
	var order []*group
	byName := map[string]*group{}
	for _, r := range recs {
		g := byName[r.Name]
		if g == nil {
			g = &group{name: r.Name}
			byName[r.Name] = g
			order = append(order, g)
		}
		g.count++
		g.children = append(g.children, byParent[r.ID]...)
	}
	for _, g := range order {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(g.name)
		if g.count > 1 {
			fmt.Fprintf(sb, " x%d", g.count)
		}
		sb.WriteByte('\n')
		sort.Slice(g.children, func(i, j int) bool {
			if g.children[i].Start != g.children[j].Start {
				return g.children[i].Start < g.children[j].Start
			}
			return g.children[i].ID < g.children[j].ID
		})
		writeStructure(sb, g.children, byParent, depth+1)
	}
}
