package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsNoOp pins the nil-receiver contract every layer leans
// on: a nil tracer hands out zero spans, records nothing, and exports
// empty-but-valid artifacts.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("run", 0, String("kind", "fleet"))
	if sp.ID() != 0 {
		t.Fatalf("nil tracer span id = %d, want 0", sp.ID())
	}
	sp.End(Int("sims", 3))
	tr.Record("simulate", 0, time.Now(), time.Millisecond)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer accumulated state")
	}
	var doc map[string]any
	if err := json.Unmarshal(tr.ChromeTrace(), &doc); err != nil {
		t.Fatalf("nil ChromeTrace not valid JSON: %v", err)
	}
	if tr.Summary() == "" || tr.Structure() != "" {
		t.Fatalf("nil exports: summary %q, structure %q", tr.Summary(), tr.Structure())
	}
}

// TestSpanTree checks nesting, the structure view, and that ended
// spans carry their start/end attrs.
func TestSpanTree(t *testing.T) {
	tr := New(0)
	root := tr.Start("run", 0, String("kind", "fleet"))
	c := tr.Start("compile", root.ID())
	c.End()
	b := tr.Start("probe-batch", root.ID())
	for i := 0; i < 3; i++ {
		tr.Record("simulate", b.ID(), time.Now(), time.Millisecond, String("phase", "probe"))
	}
	b.End()
	ep := tr.Start("episode", root.ID(), String("policy", "spread-idle"))
	ep.End(Int("machines", 4))
	root.End(Int("sims", 3))

	if got := tr.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	want := "run\n" +
		"  compile\n" +
		"  probe-batch\n" +
		"    simulate x3\n" +
		"  episode\n"
	if got := tr.Structure(); got != want {
		t.Errorf("structure:\n%s\nwant:\n%s", got, want)
	}
	var rootRec *SpanRecord
	for _, r := range tr.Snapshot() {
		if r.Name == "run" {
			rr := r
			rootRec = &rr
		}
	}
	if rootRec == nil {
		t.Fatal("no run record")
	}
	if len(rootRec.Attrs) != 2 || rootRec.Attrs[0].Key != "kind" || rootRec.Attrs[1].Key != "sims" {
		t.Errorf("run attrs = %+v, want kind then sims", rootRec.Attrs)
	}
	if !strings.Contains(tr.Summary(), "simulate") {
		t.Errorf("summary missing simulate rows:\n%s", tr.Summary())
	}
}

// TestLanes: a child starting under an active parent shares its lane;
// overlapping siblings spread out.
func TestLanes(t *testing.T) {
	tr := New(0)
	root := tr.Start("run", 0)
	child := tr.Start("compile", root.ID())
	sib := tr.Start("other", root.ID()) // compile still open on root's lane
	sib.End()
	child.End()
	root.End()
	lanes := map[string]int{}
	for _, r := range tr.Snapshot() {
		lanes[r.Name] = r.Lane
	}
	if lanes["compile"] != lanes["run"] {
		t.Errorf("nested child lane %d != parent lane %d", lanes["compile"], lanes["run"])
	}
	if lanes["other"] == lanes["run"] {
		t.Errorf("overlapping sibling shares lane %d with open child", lanes["other"])
	}
}

// TestRingBound: the ring holds at most limit records and counts the
// overflow.
func TestRingBound(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Record(fmt.Sprintf("s%d", i), 0, time.Now(), time.Microsecond)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	recs := tr.Snapshot()
	if recs[0].Name != "s6" || recs[3].Name != "s9" {
		t.Errorf("ring kept %s..%s, want s6..s9", recs[0].Name, recs[3].Name)
	}
	var doc struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(tr.ChromeTrace(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["dropped_spans"] != "6" {
		t.Errorf("dropped_spans = %q, want 6", doc.OtherData["dropped_spans"])
	}
}

// TestChromeTrace checks the export is loadable trace_event JSON with
// the span identity and attrs in args.
func TestChromeTrace(t *testing.T) {
	tr := New(0)
	root := tr.Start("run", 0)
	tr.Record("simulate", root.ID(), time.Now(), 2*time.Millisecond, String("apps", "mcf"))
	root.End()
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(tr.ChromeTrace(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("doc = %+v", doc)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID < 1 || ev.Args["span"] == "" {
			t.Errorf("event shape: %+v", ev)
		}
		if ev.Name == "simulate" {
			if ev.Args["apps"] != "mcf" || ev.Args["parent"] == "" {
				t.Errorf("simulate args = %v", ev.Args)
			}
			if ev.Dur < 1900 || ev.Dur > 2500 {
				t.Errorf("simulate dur = %vµs, want ~2000", ev.Dur)
			}
		}
	}
}

// TestChromeTraceUnder cuts one root's subtree out of a tracer holding
// several runs.
func TestChromeTraceUnder(t *testing.T) {
	tr := New(0)
	a := tr.Start("run", 0)
	tr.Record("simulate", a.ID(), time.Now(), time.Millisecond)
	a.End()
	b := tr.Start("run", 0)
	tr.Record("simulate", b.ID(), time.Now(), time.Millisecond)
	tr.Record("simulate", b.ID(), time.Now(), time.Millisecond)
	b.End()
	var doc struct {
		TraceEvents []struct {
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.ChromeTraceUnder(b.ID()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("subtree has %d events, want 3 (run b + 2 sims)", len(doc.TraceEvents))
	}
	want := fmt.Sprint(b.ID())
	for _, ev := range doc.TraceEvents {
		if ev.Args["span"] != want && ev.Args["parent"] != want {
			t.Errorf("event outside subtree: %v", ev.Args)
		}
	}
}

// TestTracerConcurrent hammers the tracer from many goroutines; run
// under -race this is the thread-safety proof for ring, lanes, and
// snapshot reads during recording.
func TestTracerConcurrent(t *testing.T) {
	tr := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start("batch", 0)
				tr.Record("simulate", sp.ID(), time.Now(), time.Microsecond)
				sp.End()
				tr.Snapshot()
				tr.Structure()
			}
		}()
	}
	wg.Wait()
	if tr.Len()+int(tr.Dropped()) != 8*50*2 {
		t.Fatalf("held %d + dropped %d, want %d total", tr.Len(), tr.Dropped(), 800)
	}
}

// TestHistogram pins bucket edges (upper-inclusive), the +Inf catch,
// and the exposition text.
func TestHistogram(t *testing.T) {
	// Binary-exact observations so the _sum line is a fixed string.
	h := NewHistogram(0.25, 0.5, 1)
	for _, v := range []float64{0.125, 0.25, 0.375, 0.75, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 6.5 {
		t.Fatalf("Sum = %g, want 6.5", got)
	}
	var buf bytes.Buffer
	h.WriteProm(&buf, "x_seconds", `kind="fleet"`)
	want := `x_seconds_bucket{kind="fleet",le="0.25"} 2
x_seconds_bucket{kind="fleet",le="0.5"} 3
x_seconds_bucket{kind="fleet",le="1"} 4
x_seconds_bucket{kind="fleet",le="+Inf"} 5
x_seconds_sum{kind="fleet"} 6.5
x_seconds_count{kind="fleet"} 5
`
	if buf.String() != want {
		t.Errorf("prom text:\n%s\nwant:\n%s", buf.String(), want)
	}
	var unlabeled bytes.Buffer
	NewHistogram(1).WriteProm(&unlabeled, "y", "")
	if !strings.Contains(unlabeled.String(), `y_bucket{le="1"} 0`) ||
		!strings.Contains(unlabeled.String(), "y_count 0") {
		t.Errorf("unlabeled prom text:\n%s", unlabeled.String())
	}
}

// TestHistogramConcurrent: Observe from many goroutines; -race plus
// exact count/sum equality afterward.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DurationBounds...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got != 2000 {
		t.Fatalf("Sum = %g, want 2000 (0.25 sums exactly in binary)", got)
	}
}
