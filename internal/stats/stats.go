// Package stats provides the small set of numeric helpers used by the
// experiment drivers and the clustering pass: means, normalization,
// argmin/argmax, and Euclidean distance.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are skipped.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x < v {
			v = x
		}
	}
	return v
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x > v {
			v = x
		}
	}
	return v
}

// ArgMin returns the index of the smallest element, or -1 for empty xs.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element, or -1 for empty xs.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Normalize01 rescales xs into [0, 1] in place and returns it. A constant
// vector maps to all zeros. This matches the paper's "all metrics are
// normalized to the interval [0,1]" preprocessing for clustering.
func Normalize01(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	lo, hi := Min(xs), Max(xs)
	span := hi - lo
	for i := range xs {
		if span == 0 {
			xs[i] = 0
		} else {
			xs[i] = (xs[i] - lo) / span
		}
	}
	return xs
}

// Euclidean returns the Euclidean distance between equal-length vectors.
// It panics if the lengths differ.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Euclidean on vectors of different length")
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
