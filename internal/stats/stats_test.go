package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean of 1,2,3")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty")
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEq(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean of 1,4")
	}
	if !almostEq(GeoMean([]float64{2, 0, 8}), 4) {
		t.Fatal("geomean should skip non-positive entries")
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("geomean of all non-positive")
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("min/max")
	}
	if ArgMin(xs) != 1 {
		t.Fatalf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Fatalf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("Arg* on empty should be -1")
	}
}

func TestNormalize01(t *testing.T) {
	xs := Normalize01([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range xs {
		if !almostEq(xs[i], want[i]) {
			t.Fatalf("normalize: got %v", xs)
		}
	}
	cs := Normalize01([]float64{5, 5, 5})
	for _, v := range cs {
		if v != 0 {
			t.Fatal("constant vector should normalize to zeros")
		}
	}
}

func TestNormalize01Property(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		for _, x := range xs {
			// Skip inputs whose span would overflow float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		cp := append([]float64(nil), xs...)
		Normalize01(cp)
		for _, v := range cp {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEuclidean(t *testing.T) {
	if !almostEq(Euclidean([]float64{0, 0}, []float64{3, 4}), 5) {
		t.Fatal("3-4-5 triangle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestEuclideanSymmetric(t *testing.T) {
	if err := quick.Check(func(a, b [4]float64) bool {
		for _, v := range append(a[:], b[:]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return almostEq(Euclidean(a[:], b[:]), Euclidean(b[:], a[:]))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almostEq(Percentile(xs, 0), 1) || !almostEq(Percentile(xs, 100), 5) {
		t.Fatal("percentile endpoints")
	}
	if !almostEq(Percentile(xs, 50), 3) {
		t.Fatal("median")
	}
	if !almostEq(Percentile([]float64{1, 2}, 50), 1.5) {
		t.Fatal("interpolated median")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp")
	}
}
