// Package interconnect models the Sandy Bridge ring that connects cores
// to the distributed LLC slices. It contributes a hop-count-dependent
// base latency for LLC hits and a shared-bandwidth term: all LLC and
// DRAM traffic crosses the ring, so a bandwidth hog inflates even LLC
// hit latency — one of the residual interference channels the paper
// identifies (§5.2).
package interconnect

import "repro/internal/memory"

// RingConfig describes the ring interconnect.
type RingConfig struct {
	Stops            int     // one per core/LLC-slice pair
	HopCycles        float64 // per-hop traversal cost
	SliceAccessCycle float64 // LLC slice access (bank) latency
	Bus              memory.BusConfig
}

// DefaultRing returns parameters for the 4-core client ring: ~26-31
// cycle LLC hit latency depending on hop distance, ~100 GB/s ring
// bandwidth (≈ 30 bytes/cycle at 3.4 GHz).
func DefaultRing(stops int) RingConfig {
	return RingConfig{
		Stops:            stops,
		HopCycles:        1.5,
		SliceAccessCycle: 24,
		Bus: memory.BusConfig{
			Name:              "ring",
			PeakBytesPerCycle: 30,
			Knee:              0.65,
			MaxQueueFactor:    3.0,
		},
	}
}

// Ring is the interconnect model.
type Ring struct {
	cfg RingConfig
	bus *memory.Bus
}

// NewRing builds the ring with a demand register per hardware thread.
func NewRing(cfg RingConfig, nThreads int) *Ring {
	return &Ring{cfg: cfg, bus: memory.NewBus(cfg.Bus, nThreads)}
}

// Bus returns the shared ring bandwidth tracker.
func (r *Ring) Bus() *memory.Bus { return r.bus }

// LLCLatency returns the effective LLC hit latency for a request from
// core c: slice access plus the average hop distance to the address-
// hashed slices, inflated by ring contention.
func (r *Ring) LLCLatency(c int) float64 {
	// Addresses hash across slices, so the expected hop count is the mean
	// distance from the core's stop to all stops on a bidirectional ring.
	stops := r.cfg.Stops
	if stops <= 1 {
		return r.cfg.SliceAccessCycle * r.bus.QueueFactor()
	}
	total := 0.0
	for s := 0; s < stops; s++ {
		d := c - s
		if d < 0 {
			d = -d
		}
		if wrap := stops - d; wrap < d {
			d = wrap
		}
		total += float64(d)
	}
	avgHops := total / float64(stops)
	lat := r.cfg.SliceAccessCycle + 2*avgHops*r.cfg.HopCycles // request + response
	return lat * r.bus.QueueFactor()
}
