package interconnect

import (
	"testing"

	"repro/internal/memory"
)

func TestLLCLatencyPerCoreSymmetry(t *testing.T) {
	r := NewRing(DefaultRing(4), 8)
	// On a 4-stop symmetric ring, all cores see the same mean hop count.
	l0 := r.LLCLatency(0)
	for c := 1; c < 4; c++ {
		if r.LLCLatency(c) != l0 {
			t.Fatalf("core %d latency %v != core 0 latency %v", c, r.LLCLatency(c), l0)
		}
	}
	if l0 <= DefaultRing(4).SliceAccessCycle {
		t.Fatal("latency must include hop cost")
	}
}

func TestLLCLatencyGrowsWithContention(t *testing.T) {
	r := NewRing(DefaultRing(4), 8)
	base := r.LLCLatency(0)
	r.Bus().SetRate(0, 1e6)
	if r.LLCLatency(0) <= base {
		t.Fatal("saturated ring not slower")
	}
}

func TestSingleStopRing(t *testing.T) {
	cfg := DefaultRing(1)
	r := NewRing(cfg, 2)
	if got := r.LLCLatency(0); got != cfg.SliceAccessCycle {
		t.Fatalf("1-stop latency = %v, want %v", got, cfg.SliceAccessCycle)
	}
}

func TestRingBusShared(t *testing.T) {
	r := NewRing(DefaultRing(4), 4)
	var _ *memory.Bus = r.Bus()
	r.Bus().SetRate(2, 5)
	if r.Bus().Utilization() == 0 {
		t.Fatal("bus not shared with latency model")
	}
}
