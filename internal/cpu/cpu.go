// Package cpu provides the core timing model: a quad-issue out-of-order
// core with two SMT hardware threads, following the paper's platform
// (§2.1). Timing is interval-based: an epoch of committed instructions
// costs a base CPI component (inflated when the sibling hyperthread is
// active) plus memory stall cycles discounted by the workload's
// memory-level parallelism.
package cpu

// Timing holds the platform timing parameters.
type Timing struct {
	FreqHz float64 // core clock

	// BaseCPI is the no-stall cycles-per-instruction of one hardware
	// thread running alone on a core.
	BaseCPI float64

	// SMTPenalty multiplies per-thread base CPI when both hyperthreads
	// of a core are active. Two active threads then deliver
	// 2/SMTPenalty times the single-thread throughput (≈1.4x on SNB).
	SMTPenalty float64

	// L2HitCycles and LLC/DRAM latencies are the *additional* cycles an
	// access pays beyond the L1 (whose latency is folded into BaseCPI).
	L2HitCycles float64
}

// DefaultTiming returns parameters for the 3.4 GHz Sandy Bridge client
// part.
func DefaultTiming() Timing {
	return Timing{
		FreqHz:      3.4e9,
		BaseCPI:     0.55,
		SMTPenalty:  1.42,
		L2HitCycles: 8,
	}
}

// EpochCost describes one epoch's memory behavior, to be priced by Cycles.
type EpochCost struct {
	Instructions float64
	L2Hits       float64 // demand accesses satisfied in L2
	LLCHits      float64 // demand accesses satisfied in LLC
	MemAccesses  float64 // demand accesses satisfied in DRAM
	// PrefetchedHits counts demand hits on prefetched lines (their first
	// use). Each is charged LateFrac×MemLatency: a prefetch in flight
	// hides most — but not all — of the memory latency, and hides less
	// as the memory system saturates.
	PrefetchedHits float64
	LateFrac       float64 // fraction of MemLatency a prefetched hit pays
	LLCLatency     float64 // effective LLC hit latency (ring-inflated)
	MemLatency     float64 // effective DRAM latency (contention-inflated)
	MLP            float64 // workload memory-level parallelism (>= 1)
	SMTActive      bool    // sibling hyperthread busy during this epoch
	CPIScale       float64 // workload base-CPI multiplier (1.0 default)
}

// Cycles prices an epoch under the timing model.
func (t Timing) Cycles(c EpochCost) float64 {
	mlp := c.MLP
	if mlp < 1 {
		mlp = 1
	}
	cpi := t.BaseCPI
	if c.CPIScale > 0 {
		cpi *= c.CPIScale
	}
	if c.SMTActive {
		cpi *= t.SMTPenalty
	}
	compute := c.Instructions * cpi
	stall := (c.L2Hits*t.L2HitCycles +
		c.LLCHits*c.LLCLatency +
		c.MemAccesses*c.MemLatency +
		c.PrefetchedHits*c.LateFrac*c.MemLatency) / mlp
	return compute + stall
}

// Seconds converts cycles to wall-clock seconds.
func (t Timing) Seconds(cycles float64) float64 { return cycles / t.FreqHz }

// Cycles64 converts seconds to cycles.
func (t Timing) CyclesFromSeconds(s float64) float64 { return s * t.FreqHz }
