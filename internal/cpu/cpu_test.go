package cpu

import (
	"testing"
	"testing/quick"
)

func TestComputeOnlyEpoch(t *testing.T) {
	tm := DefaultTiming()
	c := EpochCost{Instructions: 1000, MLP: 1, CPIScale: 1}
	if got, want := tm.Cycles(c), 1000*tm.BaseCPI; got != want {
		t.Fatalf("compute-only cycles = %v, want %v", got, want)
	}
}

func TestSMTPenaltyApplied(t *testing.T) {
	tm := DefaultTiming()
	solo := tm.Cycles(EpochCost{Instructions: 1000, MLP: 1, CPIScale: 1})
	smt := tm.Cycles(EpochCost{Instructions: 1000, MLP: 1, CPIScale: 1, SMTActive: true})
	if smt <= solo {
		t.Fatal("SMT-active epoch not slower")
	}
	ratio := smt / solo
	if ratio < tm.SMTPenalty-1e-9 || ratio > tm.SMTPenalty+1e-9 {
		t.Fatalf("SMT ratio = %v, want %v", ratio, tm.SMTPenalty)
	}
	// Two SMT threads together must still beat one thread alone:
	// 2/SMTPenalty > 1.
	if 2/tm.SMTPenalty <= 1 {
		t.Fatal("SMT penalty makes a second hyperthread useless")
	}
}

func TestMLPDiscountsStalls(t *testing.T) {
	tm := DefaultTiming()
	base := EpochCost{Instructions: 1000, MemAccesses: 50, MemLatency: 200, CPIScale: 1}
	lowMLP := base
	lowMLP.MLP = 1
	highMLP := base
	highMLP.MLP = 5
	lo := tm.Cycles(lowMLP)
	hi := tm.Cycles(highMLP)
	if hi >= lo {
		t.Fatal("higher MLP did not reduce stall cycles")
	}
	// The stall component should shrink by exactly 5x.
	compute := 1000 * tm.BaseCPI
	if got, want := (lo-compute)/(hi-compute), 5.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("MLP stall ratio = %v", got)
	}
}

func TestLatePrefetchCharged(t *testing.T) {
	tm := DefaultTiming()
	none := tm.Cycles(EpochCost{Instructions: 1000, MLP: 1, CPIScale: 1})
	late := tm.Cycles(EpochCost{
		Instructions: 1000, MLP: 1, CPIScale: 1,
		PrefetchedHits: 10, LateFrac: 0.5, MemLatency: 200,
	})
	if got, want := late-none, 10*0.5*200.0; got != want {
		t.Fatalf("late-prefetch charge = %v, want %v", got, want)
	}
}

func TestMLPFloor(t *testing.T) {
	tm := DefaultTiming()
	c := EpochCost{Instructions: 100, MemAccesses: 10, MemLatency: 100, MLP: 0, CPIScale: 1}
	if tm.Cycles(c) != 100*tm.BaseCPI+10*100 {
		t.Fatal("MLP floor of 1 not applied")
	}
}

func TestCPIScaleZeroMeansDefault(t *testing.T) {
	tm := DefaultTiming()
	a := tm.Cycles(EpochCost{Instructions: 100, MLP: 1})
	b := tm.Cycles(EpochCost{Instructions: 100, MLP: 1, CPIScale: 1})
	if a != b {
		t.Fatal("zero CPIScale should mean 1.0")
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	tm := DefaultTiming()
	if err := quick.Check(func(raw uint32) bool {
		cycles := float64(raw)
		return tm.CyclesFromSeconds(tm.Seconds(cycles)) > cycles*0.999999 &&
			tm.CyclesFromSeconds(tm.Seconds(cycles)) < cycles*1.000001+1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesMonotoneInTraffic(t *testing.T) {
	tm := DefaultTiming()
	if err := quick.Check(func(l2, llc, mem uint16) bool {
		a := EpochCost{Instructions: 1000, MLP: 2, CPIScale: 1,
			L2Hits: float64(l2), LLCHits: float64(llc), MemAccesses: float64(mem),
			LLCLatency: 30, MemLatency: 200}
		b := a
		b.MemAccesses++
		return tm.Cycles(b) > tm.Cycles(a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
