package model

import (
	"encoding/json"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// probeAloneSpec builds the canonical alone-half mix with the profiling
// monitor attached — the shape the fleet's fast tier profiles with.
func probeAloneSpec(r *sched.Runner, app *workload.Profile, probe bool) sched.MixSpec {
	cfg := r.MachineConfig()
	threads := sched.CapThreads(app, cfg.Cores/2*cfg.ThreadsPerCore)
	slots := make([]int, threads)
	for i := range slots {
		slots[i] = i
	}
	mix := sched.MixSpec{
		Jobs: []sched.MixJob{{App: app, Threads: threads, Slots: slots, Seed: "single"}},
	}
	if probe {
		mix.Setup = ProbeSetup()
		mix.ProbeKey = ProbeKey()
	}
	return mix
}

func buildProfile(t *testing.T, r *sched.Runner, name string) *Profile {
	t.Helper()
	app := workload.MustByName(name)
	res := r.RunMix(probeAloneSpec(r, app, true))
	p, err := NewProfile(name, app.MLP, res, 0, r.MachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProbeShadowOnly pins the guarantee the fast tier's exact
// baselines rest on: a probing run's result is byte-identical to the
// plain alone run in every field but the probe trace itself.
func TestProbeShadowOnly(t *testing.T) {
	r := sched.New(sched.Options{Scale: sched.QuickScale})
	app := workload.MustByName("xalan")
	plain := r.RunMix(probeAloneSpec(r, app, false))
	probed := r.RunMix(probeAloneSpec(r, app, true))
	if probed.Probe == nil || len(probed.Probe.Jobs) != 1 {
		t.Fatal("probing run carries no probe trace")
	}
	clone := *probed
	clone.Probe = nil
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(&clone)
	if string(a) != string(b) {
		t.Errorf("probing changed the simulation:\nplain:  %s\nprobed: %s", a, b)
	}

	// The two runs must nonetheless occupy distinct memo keys, and the
	// probe key must carry the model version.
	pk := probeAloneSpec(r, app, true).Key(r)
	nk := probeAloneSpec(r, app, false).Key(r)
	if pk == "" {
		t.Fatal("probing mix is not memoizable")
	}
	if pk == nk {
		t.Fatalf("probing mix aliases the plain mix: %q", pk)
	}
}

func TestProfileShape(t *testing.T) {
	r := sched.New(sched.Options{Scale: sched.QuickScale})
	p := buildProfile(t, r, "xalan")
	if p.Accesses == 0 || len(p.Curve) != p.Assoc {
		t.Fatalf("degenerate curve: %d accesses, %d points", p.Accesses, len(p.Curve))
	}
	last := 1.0
	for w := 1; w <= p.Assoc; w++ {
		mr := p.MissRatio(float64(w))
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio at %d ways out of range: %v", w, mr)
		}
		if mr > last+1e-12 {
			t.Fatalf("miss ratio not monotone: %v at %d ways after %v", mr, w, last)
		}
		last = mr
	}
	// The prediction is anchored at the measurement: full allocation
	// reproduces the measured MPKI exactly.
	if got := p.MPKIAt(float64(p.Assoc)); got != p.AloneMPKI {
		t.Errorf("MPKIAt(assoc) = %v, want the measured %v", got, p.AloneMPKI)
	}
	for w := 1; w < p.Assoc; w++ {
		if p.MPKIAt(float64(w)) < p.MPKIAt(float64(w+1))-1e-12 {
			t.Errorf("MPKI not monotone in shrinking allocation at %d ways", w)
		}
	}
	if p.AloneSeconds <= 0 || p.AloneIPC <= 0 || p.CPIThread() <= 0 {
		t.Errorf("degenerate alone baseline: %+v", p)
	}
}

func TestEstimatorSanity(t *testing.T) {
	r := sched.New(sched.Options{Scale: sched.QuickScale})
	fg := buildProfile(t, r, "xalan")
	bg := buildProfile(t, r, "ferret")
	e := NewEstimator(r.MachineConfig())
	assoc := e.Assoc()

	prev, first, last := -1.0, 0.0, 0.0
	for w := 1; w < assoc; w++ {
		pred := e.PredictPair(fg, bg, float64(w), float64(assoc-w))
		if pred.FgSlowdown < 1 || pred.BgSlowdown < 1 {
			t.Fatalf("slowdown below 1 at split %d: %+v", w, pred)
		}
		if pred.FgSeconds <= 0 || pred.BgRate <= 0 {
			t.Fatalf("degenerate prediction at split %d: %+v", w, pred)
		}
		// More ways for the foreground shrink its own miss penalty, but
		// the ways come out of the background, whose extra misses raise
		// shared-bus contention the foreground also pays — so the curve
		// trends down with a small coupling wobble allowed.
		if prev >= 0 && pred.FgSlowdown > prev+0.05 {
			t.Fatalf("fg slowdown grew with fg ways at %d: %v -> %v", w, prev, pred.FgSlowdown)
		}
		prev = pred.FgSlowdown
		if w == 1 {
			first = pred.FgSlowdown
		}
		last = pred.FgSlowdown
	}
	if last > first {
		t.Fatalf("fg slowdown at %d ways (%v) above 1 way (%v) — no benefit from the whole cache", assoc-1, last, first)
	}

	wf, wb := e.SharedWays(fg, bg)
	if wf <= 0 || wb <= 0 || wf+wb != float64(assoc) {
		t.Fatalf("shared split does not partition the cache: %v + %v", wf, wb)
	}

	// Determinism: identical inputs, identical forecast.
	a := e.PredictPair(fg, bg, 4, float64(assoc-4))
	b := e.PredictPair(fg, bg, 4, float64(assoc-4))
	if a != b {
		t.Fatalf("prediction not deterministic: %+v vs %+v", a, b)
	}
}
