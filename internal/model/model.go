// Package model turns shadow-monitor utility curves into first-class
// per-workload MRC profiles and predicts co-location slowdowns from
// them analytically — the fleet layer's fast fidelity tier. A profile
// is harvested from a one-time profiling run (the canonical alone-half
// mix with a cache.UMON attached through perfmon.UtilitySet): the
// monitor's cumulative hit curve gives the miss ratio at every possible
// way allocation, and the run's own counters give the alone CPI,
// memory traffic, and power baseline the estimator prices deltas
// against. Because monitors are shadow-only, the profiling run's
// timing/energy numbers are byte-identical to the plain alone run —
// the fast tier's baselines are exact, only its pair numbers are
// predicted.
package model

import (
	"fmt"
	"strconv"

	"repro/internal/machine"
	"repro/internal/perfmon"
)

// Version identifies the profile layout and the estimator's CPI model.
// It is baked into every probing run's memo/disk key (via ProbeKey), so
// profiles harvested under an older model can never be replayed into a
// newer estimator — the model analogue of sched.EngineVersion.
const Version = "mrc-cpi-v1"

// SampleShift is the profiling monitor's set-sampling stride: every
// 2^SampleShift-th LLC set is shadowed (the utility policy's default).
const SampleShift = 5

// ProbeKind names the monitor family + model version recorded in a
// probing run's ProbeTrace.
const ProbeKind = "umon/" + Version

// ProbeKey returns the sched.MixSpec.ProbeKey for profiling runs: it
// carries the model version and sampling stride, so probing results
// occupy memo/disk keys distinct from unprobed runs and from any other
// model version.
func ProbeKey() string {
	return ProbeKind + "/ss" + strconv.Itoa(SampleShift)
}

// ProbeSetup returns the Setup hook of a profiling mix: it attaches a
// utility monitor to every job and registers the probe source that
// writes the curves into the run's Result. The hook is a pure function
// of the mix and ProbeKey(), so profiling runs are memoizable.
func ProbeSetup() func(m *machine.Machine, jobs []*machine.Job) {
	return func(m *machine.Machine, jobs []*machine.Job) {
		sets := make([]*perfmon.UtilitySet, len(jobs))
		for i, j := range jobs {
			sets[i] = perfmon.OpenUtility(m, j, SampleShift)
		}
		m.SetProbeSource(func() *machine.ProbeTrace {
			tr := &machine.ProbeTrace{Kind: ProbeKind, SampleShift: SampleShift}
			for _, s := range sets {
				tr.Jobs = append(tr.Jobs, machine.ProbeJobTrace{
					Hits:     s.Curve(nil),
					Accesses: s.Accesses(),
					Misses:   s.Misses(),
				})
			}
			return tr
		})
	}
}

// Profile is one workload's miss-ratio curve plus the alone-run
// baseline the estimator prices slowdowns against. All fields are
// plain data harvested from a single probing machine.Result, so
// profiles survive memoization and the persistent store with the run.
type Profile struct {
	App   string
	Assoc int
	// Threads is the capped thread count of the profiled alone shape.
	Threads int
	// MLP is the workload's memory-level parallelism (>= 1).
	MLP float64

	// Alone-run baseline (exact — the probe is shadow-only).
	AloneSeconds float64 // one run to completion
	AloneIPC     float64 // aggregate instructions/cycle across threads
	AloneMPKI    float64 // demand LLC misses per kilo-instruction
	Instructions float64 // retired in the measured window
	BytesPerSec  float64 // DRAM traffic rate while running alone
	SocketW      float64 // socket watts while running alone
	WallW        float64 // wall watts while running alone

	// Sampled monitor readout: Curve[w-1] is the cumulative demand
	// hits the workload would have achieved with w ways, over every
	// 2^SampleShift-th set.
	Curve    []float64
	Accesses uint64
	Misses   uint64
	// DemandAPKI is the monitor-derived demand LLC accesses per
	// kilo-instruction (whole-cache estimate, prefetch fills excluded —
	// the rate the miss-ratio curve applies to).
	DemandAPKI float64
}

// NewProfile harvests the profile of job `job` from a probing run's
// result. The result must carry a ProbeTrace of this model version —
// anything else is a caller wiring bug reported as an error.
func NewProfile(app string, mlp float64, res *machine.Result, job int, cfg machine.Config) (*Profile, error) {
	if res.Probe == nil {
		return nil, fmt.Errorf("model: result of %s carries no probe trace (was the mix built with ProbeSetup?)", app)
	}
	if res.Probe.Kind != ProbeKind {
		return nil, fmt.Errorf("model: probe trace of %s is %q, want %q", app, res.Probe.Kind, ProbeKind)
	}
	if job >= len(res.Probe.Jobs) || job >= len(res.Jobs) {
		return nil, fmt.Errorf("model: result of %s has no job %d", app, job)
	}
	jr := res.Jobs[job]
	pj := res.Probe.Jobs[job]
	if mlp < 1 {
		mlp = 1
	}
	p := &Profile{
		App:          app,
		Assoc:        cfg.Hier.LLC.Assoc,
		Threads:      jr.Threads,
		MLP:          mlp,
		AloneSeconds: jr.Seconds,
		AloneIPC:     jr.IPC,
		AloneMPKI:    jr.LLCMPKI,
		Instructions: jr.Instructions,
		SocketW:      watts(res.Energy.SocketJoules, res.WindowSeconds),
		WallW:        watts(res.Energy.WallJoules, res.WindowSeconds),
		Curve:        pj.Hits,
		Accesses:     pj.Accesses,
		Misses:       pj.Misses,
	}
	if jr.Seconds > 0 {
		p.BytesPerSec = jr.DRAMBytes / jr.Seconds
	}
	if p.Instructions > 0 {
		scale := float64(uint64(1) << res.Probe.SampleShift)
		p.DemandAPKI = float64(pj.Accesses) * scale * 1000 / p.Instructions
	}
	return p, nil
}

// hitsAt interpolates the cumulative hit curve at a (possibly
// fractional) way allocation; 0 ways hit nothing.
func (p *Profile) hitsAt(w float64) float64 {
	if w <= 0 || len(p.Curve) == 0 {
		return 0
	}
	if w >= float64(len(p.Curve)) {
		return p.Curve[len(p.Curve)-1]
	}
	lo := int(w)
	var base float64
	if lo >= 1 {
		base = p.Curve[lo-1]
	}
	return base + (w-float64(lo))*(p.Curve[lo]-base)
}

// MissRatio returns the sampled demand miss ratio the workload would
// see with w ways of LLC.
func (p *Profile) MissRatio(w float64) float64 {
	if p.Accesses == 0 {
		return 0
	}
	mr := (float64(p.Accesses) - p.hitsAt(w)) / float64(p.Accesses)
	if mr < 0 {
		return 0
	}
	return mr
}

// MPKIAt predicts the demand LLC misses per kilo-instruction at w
// ways: the measured alone MPKI plus the curve's additional misses.
// Anchoring at the measurement (rather than rescaling the whole curve)
// makes the prediction exact at the full-cache point.
func (p *Profile) MPKIAt(w float64) float64 {
	d := p.MissRatio(w) - p.MissRatio(float64(p.Assoc))
	if d < 0 {
		d = 0
	}
	return p.AloneMPKI + p.DemandAPKI*d
}

// HitRatePerSec estimates the workload's demand LLC hits per second at
// w ways, running at alone speed — the quantity a hit-maximizing
// (utility-style) allocator trades off between jobs.
func (p *Profile) HitRatePerSec(w float64) float64 {
	if p.AloneSeconds <= 0 {
		return 0
	}
	ips := p.Instructions / p.AloneSeconds
	return (1 - p.MissRatio(w)) * p.DemandAPKI / 1000 * ips
}

// CPIThread is the measured per-thread cycles per instruction of the
// alone run (aggregate IPC folded back to one thread).
func (p *Profile) CPIThread() float64 {
	if p.AloneIPC <= 0 {
		return 1
	}
	return float64(p.Threads) / p.AloneIPC
}

func watts(joules, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return joules / seconds
}
