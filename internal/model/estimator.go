package model

import (
	"repro/internal/interconnect"
	"repro/internal/machine"
	"repro/internal/memory"
)

// Estimator prices co-locations analytically: a linear CPI-stack model
// over the platform's own timing parameters. Each side of a pair pays,
// on top of its measured alone CPI, (1) a DRAM round trip (minus the
// LLC hit it loses) for every additional miss the MRC predicts at the
// reduced allocation, and (2) the extra queueing latency its existing
// misses see once both workloads share the memory bus — both
// discounted by the workload's memory-level parallelism, exactly as
// the cycle-accurate timing model discounts stalls. Contention reuses
// the simulator's own bus queueing curve (memory.Bus), so the analytic
// tier and the exact tier disagree only where the linear model cuts
// corners, not on the physics constants.
//
// An Estimator is not safe for concurrent use (it owns a scratch bus).
type Estimator struct {
	assoc       int
	freqHz      float64
	memLat      float64 // unloaded DRAM load-to-use latency, cycles
	llcLat      float64 // uncontended effective LLC hit latency, cycles
	idleSocketW float64
	idleWallW   float64
	bus         *memory.Bus // scratch: queue-factor curve of the DRAM bus
}

// NewEstimator builds an estimator for the given platform.
func NewEstimator(cfg machine.Config) *Estimator {
	ring := interconnect.NewRing(cfg.Ring, 1)
	return &Estimator{
		assoc:       cfg.Hier.LLC.Assoc,
		freqHz:      cfg.Timing.FreqHz,
		memLat:      cfg.DRAM.BaseLatencyCycles,
		llcLat:      ring.LLCLatency(0),
		idleSocketW: cfg.Energy.IdlePowerSocket(cfg.Cores),
		idleWallW:   cfg.Energy.IdlePowerWall(cfg.Cores),
		bus:         memory.NewBus(cfg.DRAM.Bus, 1),
	}
}

// Assoc returns the platform LLC associativity the estimator models.
func (e *Estimator) Assoc() int { return e.assoc }

// PairPrediction is the estimator's forecast of one co-location: a
// latency job at fgWays beside a continuously-looping batch job at
// bgWays, the fleet's episode shape.
type PairPrediction struct {
	FgSlowdown float64 // predicted fg seconds / alone seconds
	BgSlowdown float64
	FgSeconds  float64 // predicted co-located completion time
	BgRate     float64 // predicted batch iterations per second
	SocketW    float64 // socket watts with both halves occupied
	WallW      float64
}

// queueFactor evaluates the DRAM bus queueing curve at the given
// aggregate demand (bytes per cycle).
func (e *Estimator) queueFactor(bytesPerCycle float64) float64 {
	e.bus.SetRate(0, bytesPerCycle)
	return e.bus.QueueFactor()
}

// side is one pair side's allocation-dependent intermediate state.
type side struct {
	dMPKI   float64 // additional misses per kilo-instruction
	traffic float64 // DRAM bytes/cycle at full speed (slowdown 1)
	qfAlone float64 // bus queue factor the alone run saw
}

func (e *Estimator) sideAt(p *Profile, ways float64) side {
	mpki := p.MPKIAt(ways)
	s := side{dMPKI: mpki - p.AloneMPKI}
	s.traffic = p.BytesPerSec / e.freqHz
	if p.AloneMPKI > 0.01 {
		// Traffic grows with the predicted miss count; below the
		// threshold the alone traffic is essentially all writeback/
		// prefetch noise and scaling it by an MPKI ratio would explode.
		s.traffic *= mpki / p.AloneMPKI
	}
	s.qfAlone = e.queueFactor(p.BytesPerSec / e.freqHz)
	return s
}

// slowdown prices one side's CPI delta under the pair's shared bus.
func (e *Estimator) slowdown(p *Profile, s side, qfPair float64) float64 {
	memPair := e.memLat * qfPair
	newMiss := memPair - e.llcLat
	if newMiss < 0 {
		newMiss = 0
	}
	extra := memPair - e.memLat*s.qfAlone
	if extra < 0 {
		extra = 0
	}
	dCPI := (s.dMPKI*newMiss + p.AloneMPKI*extra) / 1000 / p.MLP
	return 1 + dCPI/p.CPIThread()
}

// PredictPair forecasts the co-location of fg at fgWays beside bg at
// bgWays (fractional allocations come from SharedWays). The two sides'
// bus demands feed back into each other's slowdown, so the prediction
// iterates the coupled pair to a fixed point. The queue factor is
// damped (averaged with the previous round): near bus saturation the
// undamped map oscillates — full contention slows both sides enough to
// drop demand below the knee, which removes the contention — and the
// damped iteration settles on the equilibrium between the two extremes
// instead of on whichever phase the last round landed.
func (e *Estimator) PredictPair(fg, bg *Profile, fgWays, bgWays float64) PairPrediction {
	fs := e.sideAt(fg, fgWays)
	bs := e.sideAt(bg, bgWays)
	sf, sb, qf := 1.0, 1.0, 1.0
	for i := 0; i < 12; i++ {
		qf = (qf + e.queueFactor(fs.traffic/sf+bs.traffic/sb)) / 2
		sf = e.slowdown(fg, fs, qf)
		sb = e.slowdown(bg, bs, qf)
	}
	pred := PairPrediction{
		FgSlowdown: sf,
		BgSlowdown: sb,
		FgSeconds:  fg.AloneSeconds * sf,
		SocketW:    fg.SocketW + bg.SocketW - e.idleSocketW,
		WallW:      fg.WallW + bg.WallW - e.idleWallW,
	}
	if bg.AloneSeconds > 0 && sb > 0 {
		pred.BgRate = 1 / (bg.AloneSeconds * sb)
	}
	return pred
}

// SharedWays models LRU competition over an unpartitioned cache: each
// side's effective occupancy is proportional to its insertion (miss)
// rate, which itself depends on the occupancy — iterated to a damped
// fixed point. Deterministic; used for the w=0 "no split" episode and
// for offline policies that leave the cache shared.
func (e *Estimator) SharedWays(fg, bg *Profile) (fgWays, bgWays float64) {
	assoc := float64(e.assoc)
	w := assoc / 2
	for i := 0; i < 8; i++ {
		pf := e.pressure(fg, w)
		pb := e.pressure(bg, assoc-w)
		if pf+pb <= 0 {
			w = assoc / 2
			break
		}
		target := assoc * pf / (pf + pb)
		if target < 0.5 {
			target = 0.5
		}
		if target > assoc-0.5 {
			target = assoc - 0.5
		}
		w = (w + target) / 2
	}
	return w, assoc - w
}

// pressure is a side's cache insertion rate (misses per second) at the
// given occupancy, at alone speed — the quantity LRU occupancy tracks.
func (e *Estimator) pressure(p *Profile, ways float64) float64 {
	if p.AloneSeconds <= 0 {
		return 0
	}
	ips := p.Instructions / p.AloneSeconds
	return p.MPKIAt(ways) / 1000 * ips
}
