package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func twoBlobs() []Item {
	// Two tight groups far apart.
	return []Item{
		{Name: "a1", Vec: []float64{0, 0}},
		{Name: "a2", Vec: []float64{0.1, 0}},
		{Name: "a3", Vec: []float64{0, 0.1}},
		{Name: "b1", Vec: []float64{10, 10}},
		{Name: "b2", Vec: []float64{10.1, 10}},
	}
}

func TestSingleLinkageMergeCount(t *testing.T) {
	items := twoBlobs()
	merges := SingleLinkage(items)
	if len(merges) != len(items)-1 {
		t.Fatalf("%d merges for %d items", len(merges), len(items))
	}
}

func TestSingleLinkageDistancesNondecreasing(t *testing.T) {
	// A defining property of single linkage with a metric distance.
	merges := SingleLinkage(twoBlobs())
	for i := 1; i < len(merges); i++ {
		if merges[i].Dist < merges[i-1].Dist {
			t.Fatalf("merge distances decreased: %v after %v",
				merges[i].Dist, merges[i-1].Dist)
		}
	}
}

func TestCutSeparatesBlobs(t *testing.T) {
	items := twoBlobs()
	merges := SingleLinkage(items)
	groups := CutAtDistance(merges, len(items), 5)
	if len(groups) != 2 {
		t.Fatalf("cut found %d groups, want 2: %v", len(groups), groups)
	}
	if len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Fatalf("group sizes: %v", groups)
	}
	// Low cut: everything separate. High cut: one group.
	if got := CutAtDistance(merges, len(items), 1e-9); len(got) != len(items) {
		t.Fatalf("zero cut produced %d groups", len(got))
	}
	if got := CutAtDistance(merges, len(items), 1e9); len(got) != 1 {
		t.Fatalf("infinite cut produced %d groups", len(got))
	}
}

func TestRepresentativeNearCentroid(t *testing.T) {
	items := []Item{
		{Name: "left", Vec: []float64{0}},
		{Name: "mid", Vec: []float64{1}},
		{Name: "right", Vec: []float64{2}},
	}
	if got := Representative(items, []int{0, 1, 2}); got != 1 {
		t.Fatalf("representative = %d, want the middle item", got)
	}
	if got := Representative(items, []int{2}); got != 2 {
		t.Fatal("singleton group representative")
	}
}

func TestNormalizeFeatures(t *testing.T) {
	items := []Item{
		{Name: "a", Vec: []float64{0, 100}},
		{Name: "b", Vec: []float64{10, 300}},
	}
	NormalizeFeatures(items)
	if items[0].Vec[0] != 0 || items[1].Vec[0] != 1 {
		t.Fatalf("col 0: %v %v", items[0].Vec[0], items[1].Vec[0])
	}
	if items[0].Vec[1] != 0 || items[1].Vec[1] != 1 {
		t.Fatalf("col 1: %v %v", items[0].Vec[1], items[1].Vec[1])
	}
}

func TestNormalizeFeaturesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched vectors accepted")
		}
	}()
	NormalizeFeatures([]Item{
		{Name: "a", Vec: []float64{1}},
		{Name: "b", Vec: []float64{1, 2}},
	})
}

func TestDendrogramMentionsAllLeaves(t *testing.T) {
	items := twoBlobs()
	d := Dendrogram(items, SingleLinkage(items))
	for _, it := range items {
		if !strings.Contains(d, it.Name) {
			t.Fatalf("dendrogram missing leaf %s:\n%s", it.Name, d)
		}
	}
	if !strings.Contains(d, "d=") {
		t.Fatal("dendrogram missing distances")
	}
}

func TestClusterQuickProperties(t *testing.T) {
	r := rng.NewNamed("cluster-test")
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw)%12 + 2
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Name: string(rune('a' + i)),
				Vec:  []float64{r.Float64(), r.Float64(), r.Float64()},
			}
		}
		merges := SingleLinkage(items)
		if len(merges) != n-1 {
			return false
		}
		// Every cut is a partition: groups disjoint, covering all leaves.
		for _, cut := range []float64{0.1, 0.5, 1.0, 2.0} {
			groups := CutAtDistance(merges, n, cut)
			seen := map[int]bool{}
			for _, g := range groups {
				for _, leaf := range g {
					if seen[leaf] {
						return false
					}
					seen[leaf] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleItemEdgeCases(t *testing.T) {
	if m := SingleLinkage([]Item{{Name: "solo", Vec: []float64{1}}}); m != nil {
		t.Fatal("single item should produce no merges")
	}
	d := Dendrogram([]Item{{Name: "solo", Vec: []float64{1}}}, nil)
	if !strings.Contains(d, "solo") {
		t.Fatal("singleton dendrogram")
	}
}
