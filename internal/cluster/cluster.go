// Package cluster implements hierarchical agglomerative clustering with
// the single-linkage criterion, the method the paper uses (§3.5, via
// scipy-cluster) to reduce 45 applications to six representative
// behaviors. Items are feature vectors; features are normalized to
// [0,1] per dimension; clusters are formed by cutting the dendrogram at
// a linkage distance of 0.9.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Item is one object to cluster.
type Item struct {
	Name string
	Vec  []float64
}

// Merge records one agglomeration step in scipy linkage convention:
// leaves are clusters 0..n-1; step k creates cluster n+k by merging A
// and B at the given distance.
type Merge struct {
	A, B int
	Dist float64
	Size int // leaves under the new cluster
}

// NormalizeFeatures rescales each feature column of the items to [0,1]
// in place (the paper's preprocessing). Items must have equal-length
// vectors; it panics otherwise.
func NormalizeFeatures(items []Item) {
	if len(items) == 0 {
		return
	}
	dims := len(items[0].Vec)
	for _, it := range items {
		if len(it.Vec) != dims {
			panic(fmt.Sprintf("cluster: item %s has %d features, want %d",
				it.Name, len(it.Vec), dims))
		}
	}
	col := make([]float64, len(items))
	for d := 0; d < dims; d++ {
		for i, it := range items {
			col[i] = it.Vec[d]
		}
		stats.Normalize01(col)
		for i := range items {
			items[i].Vec[d] = col[i]
		}
	}
}

// SingleLinkage computes the full agglomeration sequence (n-1 merges)
// using Euclidean distance and the single-linkage (minimum pairwise
// distance) criterion.
func SingleLinkage(items []Item) []Merge {
	n := len(items)
	if n < 2 {
		return nil
	}
	// dist between current clusters; active tracks live cluster ids.
	// Cluster ids: 0..n-1 leaves, then n..2n-2 merged.
	type clusterState struct {
		leaves []int
		active bool
	}
	states := make([]clusterState, n, 2*n-1)
	for i := range states {
		states[i] = clusterState{leaves: []int{i}, active: true}
	}
	// Pairwise leaf distances.
	leafDist := make([][]float64, n)
	for i := 0; i < n; i++ {
		leafDist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				leafDist[i][j] = stats.Euclidean(items[i].Vec, items[j].Vec)
			}
		}
	}
	clusterDist := func(a, b clusterState) float64 {
		best := math.Inf(1)
		for _, la := range a.leaves {
			for _, lb := range b.leaves {
				if d := leafDist[la][lb]; d < best {
					best = d
				}
			}
		}
		return best
	}

	var merges []Merge
	for len(merges) < n-1 {
		bestA, bestB := -1, -1
		best := math.Inf(1)
		for a := 0; a < len(states); a++ {
			if !states[a].active {
				continue
			}
			for b := a + 1; b < len(states); b++ {
				if !states[b].active {
					continue
				}
				if d := clusterDist(states[a], states[b]); d < best {
					best, bestA, bestB = d, a, b
				}
			}
		}
		merged := clusterState{
			leaves: append(append([]int{}, states[bestA].leaves...), states[bestB].leaves...),
			active: true,
		}
		states[bestA].active = false
		states[bestB].active = false
		states = append(states, merged)
		merges = append(merges, Merge{A: bestA, B: bestB, Dist: best, Size: len(merged.leaves)})
	}
	return merges
}

// CutAtDistance returns cluster memberships (as sorted leaf-index
// groups) after applying every merge with distance < cut. Groups are
// ordered by their smallest member.
func CutAtDistance(merges []Merge, n int, cut float64) [][]int {
	parent := make([]int, 2*n-1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for k, m := range merges {
		if m.Dist >= cut {
			continue
		}
		id := n + k
		parent[find(m.A)] = id
		parent[find(m.B)] = id
	}
	groups := map[int][]int{}
	for leaf := 0; leaf < n; leaf++ {
		root := find(leaf)
		groups[root] = append(groups[root], leaf)
	}
	var out [][]int
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Representative returns the index (into items) of the member of group
// closest to the group centroid — the paper's bold Table 3 entries.
func Representative(items []Item, group []int) int {
	if len(group) == 1 {
		return group[0]
	}
	dims := len(items[group[0]].Vec)
	centroid := make([]float64, dims)
	for _, g := range group {
		for d, v := range items[g].Vec {
			centroid[d] += v
		}
	}
	for d := range centroid {
		centroid[d] /= float64(len(group))
	}
	best, bestD := group[0], math.Inf(1)
	for _, g := range group {
		if d := stats.Euclidean(items[g].Vec, centroid); d < bestD {
			best, bestD = g, d
		}
	}
	return best
}

// Dendrogram renders the merge sequence as indented ASCII text, leaves
// labeled with item names — a textual stand-in for Figure 5.
func Dendrogram(items []Item, merges []Merge) string {
	n := len(items)
	var render func(id int, depth int, sb *strings.Builder)
	render = func(id, depth int, sb *strings.Builder) {
		indent := strings.Repeat("  ", depth)
		if id < n {
			fmt.Fprintf(sb, "%s- %s\n", indent, items[id].Name)
			return
		}
		m := merges[id-n]
		fmt.Fprintf(sb, "%s+ d=%.3f\n", indent, m.Dist)
		render(m.A, depth+1, sb)
		render(m.B, depth+1, sb)
	}
	var sb strings.Builder
	if len(merges) > 0 {
		render(n+len(merges)-1, 0, &sb)
	} else if n == 1 {
		fmt.Fprintf(&sb, "- %s\n", items[0].Name)
	}
	return sb.String()
}
