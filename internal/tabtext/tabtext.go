// Package tabtext renders aligned text tables — the one formatting
// helper the scenario and fleet reports share, so their tables keep
// the experiment drivers' look without drifting copies.
package tabtext

import (
	"fmt"
	"strings"
)

// WriteAligned renders rows (first row = header) as space-aligned
// columns followed by a separator rule under the header.
func WriteAligned(sb *strings.Builder, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
}
