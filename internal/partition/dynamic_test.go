package partition

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

// attachController runs fg+bg with the dynamic controller installed and
// returns the controller and run result.
func attachController(t *testing.T, fgName, bgName string, scale float64) (*Controller, *machine.Result) {
	t.Helper()
	r := sched.New(sched.Options{Scale: scale})
	fg := workload.MustByName(fgName)
	bg := workload.MustByName(bgName)
	var ctl *Controller
	res := r.RunPair(sched.PairSpec{
		Fg: fg, Bg: bg, Mode: sched.BackgroundLoop,
		Setup: func(m *machine.Machine, fgJob, bgJob *machine.Job) {
			cfg := DefaultControllerConfig()
			// ~500 decision intervals over the foreground run, the same
			// ratio as 100 ms on the paper's multi-minute executions.
			cfg.IntervalSeconds = estimateRunSeconds(fg, scale) / 500
			ctl = Attach(m, fgJob, bgJob, cfg)
		},
	})
	return ctl, res
}

// estimateRunSeconds gives a rough fg duration for interval sizing.
func estimateRunSeconds(p *workload.Profile, scale float64) float64 {
	return p.Instructions * scale * 1.5 / 3.4e9 // ~1.5 CPI guess
}

func TestControllerRunsAndStaysInBounds(t *testing.T) {
	ctl, _ := attachController(t, "429.mcf", "ferret", 2e-3)
	if ctl == nil {
		t.Fatal("controller never attached")
	}
	if len(ctl.Samples()) < 50 {
		t.Fatalf("only %d controller samples", len(ctl.Samples()))
	}
	for _, s := range ctl.Samples() {
		if s.Ways < 2 || s.Ways > 11 {
			t.Fatalf("allocation %d ways outside [2,11]", s.Ways)
		}
	}
}

func TestControllerReclaimsCapacity(t *testing.T) {
	// ferret needs almost no LLC: within a phase the controller must
	// shrink its allocation well below the 11-way maximum.
	ctl, _ := attachController(t, "ferret", "429.mcf", 2e-3)
	min := 12
	for _, s := range ctl.Samples() {
		if s.Ways < min {
			min = s.Ways
		}
	}
	if min > 4 {
		t.Fatalf("controller never shrank a cache-indifferent app below %d ways", min)
	}
}

func TestControllerReactsToPhases(t *testing.T) {
	// mcf alternates small/large working sets; the controller must
	// reallocate several times (phase starts re-grant the maximum).
	ctl, _ := attachController(t, "429.mcf", "ferret", 2e-3)
	if ctl.Reallocations() < 4 {
		t.Fatalf("only %d reallocations across 6 phases", ctl.Reallocations())
	}
}

func TestControllerPreservesForegroundPerformance(t *testing.T) {
	// §6.4: dynamic foreground time within a few percent of the best
	// static allocation. The paper measures ~2% on 100 ms intervals over
	// multi-minute runs; at our reduced scale the MPKI signal is far
	// noisier and working sets re-warm after every grant, so we assert a
	// 25% envelope here and report the measured gap in EXPERIMENTS.md.
	scale := 2e-3
	r := sched.New(sched.Options{Scale: scale})
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")
	best := BestBiased(r, fg, bg)
	static := r.RunPair(sched.PairSpec{Fg: fg, Bg: bg,
		FgWays: best.FgWays, BgWays: best.BgWays, Mode: sched.BackgroundLoop})
	_, dyn := attachControllerPair(t, r, fg, bg)
	sFg := static.JobByName(fg.Name).Seconds
	dFg := dyn.JobByName(fg.Name).Seconds
	if dFg > sFg*1.25 {
		t.Fatalf("dynamic fg time %v vs best static %v (>25%% worse)", dFg, sFg)
	}
}

func attachControllerPair(t *testing.T, r *sched.Runner, fg, bg *workload.Profile) (*Controller, *machine.Result) {
	t.Helper()
	var ctl *Controller
	res := r.RunPair(sched.PairSpec{
		Fg: fg, Bg: bg, Mode: sched.BackgroundLoop,
		Setup: func(m *machine.Machine, fgJob, bgJob *machine.Job) {
			cfg := DefaultControllerConfig()
			cfg.IntervalSeconds = estimateRunSeconds(fg, r.Scale()) / 500
			ctl = Attach(m, fgJob, bgJob, cfg)
		},
	})
	return ctl, res
}

func TestAttachValidation(t *testing.T) {
	r := sched.New(sched.Options{Scale: 5e-4})
	fg := workload.MustByName("fop")
	bg := workload.MustByName("batik")
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	r.RunPair(sched.PairSpec{
		Fg: fg, Bg: bg, Mode: sched.BackgroundLoop,
		Setup: func(m *machine.Machine, fgJob, bgJob *machine.Job) {
			Attach(m, fgJob, bgJob, DefaultControllerConfig()) // no interval
		},
	})
}

func TestRelDelta(t *testing.T) {
	if d := relDelta(10, 10); d != 0 {
		t.Fatalf("relDelta(10,10) = %v", d)
	}
	if d := relDelta(10, 5); d != 0.5 {
		t.Fatalf("relDelta(10,5) = %v", d)
	}
	if d := relDelta(5, 10); d != 0.5 {
		t.Fatalf("relDelta(5,10) = %v", d)
	}
	// Near-zero MPKI must not blow up.
	if d := relDelta(0, 0.01); d > 1 {
		t.Fatalf("relDelta floor failed: %v", d)
	}
}
