package partition

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestPolicyNames(t *testing.T) {
	for _, want := range []string{"shared", "fair", "biased", "dynamic", "explicit", "utility"} {
		p, err := New(want, nil)
		if err != nil {
			t.Fatalf("New(%q): %v", want, err)
		}
		if p.Name() != want {
			t.Errorf("New(%q).Name() = %q", want, p.Name())
		}
	}
}

func TestPairWays(t *testing.T) {
	if f, b := PairWays(MustNew("shared", nil), 12); f != 0 || b != 0 {
		t.Fatalf("shared ways = %d,%d", f, b)
	}
	if f, b := PairWays(MustNew("fair", nil), 12); f != 6 || b != 6 {
		t.Fatalf("fair ways = %d,%d", f, b)
	}
}

func TestStaticPoliciesOrder(t *testing.T) {
	ps := StaticPolicies()
	if len(ps) != 3 || ps[0].Name() != "shared" || ps[1].Name() != "fair" || ps[2].Name() != "biased" {
		t.Fatalf("StaticPolicies() = %v", ps)
	}
}

func TestBestBiasedSearch(t *testing.T) {
	r := sched.New(sched.Options{Scale: 1e-3})
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")
	ch := BestBiased(r, fg, bg)
	if ch.FgWays < 1 || ch.FgWays > 11 || ch.FgWays+ch.BgWays != 12 {
		t.Fatalf("biased split %d+%d", ch.FgWays, ch.BgWays)
	}
	if ch.BgThroughput <= 0 {
		t.Fatal("biased choice recorded no background progress")
	}
	// mcf is cache-hungry: the chosen foreground share should not be
	// tiny when paired with a cache-indifferent background.
	if ch.FgWays < 3 {
		t.Fatalf("mcf granted only %d ways against ferret", ch.FgWays)
	}
	// The choice must beat or match fair partitioning for the fg.
	fgAlone := r.AloneHalf(fg).JobByName(fg.Name).Seconds
	fair := r.RunPair(sched.PairSpec{Fg: fg, Bg: bg, FgWays: 6, BgWays: 6,
		Mode: sched.BackgroundLoop}).JobByName(fg.Name).Seconds / fgAlone
	if ch.FgSlowdown > fair*1.02 {
		t.Fatalf("biased slowdown %v worse than fair %v", ch.FgSlowdown, fair)
	}
}
