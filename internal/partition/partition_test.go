package partition

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestPolicyNames(t *testing.T) {
	for p, want := range map[Policy]string{
		Shared: "shared", Fair: "fair", Biased: "biased", Dynamic: "dynamic",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestStaticWays(t *testing.T) {
	if f, b := StaticWays(Shared, 12, nil); f != 0 || b != 0 {
		t.Fatalf("shared ways = %d,%d", f, b)
	}
	if f, b := StaticWays(Fair, 12, nil); f != 6 || b != 6 {
		t.Fatalf("fair ways = %d,%d", f, b)
	}
	ch := &BiasedChoice{FgWays: 9, BgWays: 3}
	if f, b := StaticWays(Biased, 12, ch); f != 9 || b != 3 {
		t.Fatalf("biased ways = %d,%d", f, b)
	}
}

func TestStaticWaysPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { StaticWays(Biased, 12, nil) },
		func() { StaticWays(Dynamic, 12, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStaticPoliciesOrder(t *testing.T) {
	ps := StaticPolicies()
	if len(ps) != 3 || ps[0] != Shared || ps[1] != Fair || ps[2] != Biased {
		t.Fatalf("StaticPolicies() = %v", ps)
	}
}

func TestBestBiasedSearch(t *testing.T) {
	r := sched.New(sched.Options{Scale: 1e-3})
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")
	ch := BestBiased(r, fg, bg)
	if ch.FgWays < 1 || ch.FgWays > 11 || ch.FgWays+ch.BgWays != 12 {
		t.Fatalf("biased split %d+%d", ch.FgWays, ch.BgWays)
	}
	if ch.BgThroughput <= 0 {
		t.Fatal("biased choice recorded no background progress")
	}
	// mcf is cache-hungry: the chosen foreground share should not be
	// tiny when paired with a cache-indifferent background.
	if ch.FgWays < 3 {
		t.Fatalf("mcf granted only %d ways against ferret", ch.FgWays)
	}
	// The choice must beat or match fair partitioning for the fg.
	fgAlone := r.AloneHalf(fg).JobByName(fg.Name).Seconds
	fair := r.RunPair(sched.PairSpec{Fg: fg, Bg: bg, FgWays: 6, BgWays: 6,
		Mode: sched.BackgroundLoop}).JobByName(fg.Name).Seconds / fgAlone
	if ch.FgSlowdown > fair*1.02 {
		t.Fatalf("biased slowdown %v worse than fair %v", ch.FgSlowdown, fair)
	}
}
