// Package partition implements the paper's LLC management policies:
// the three static schemes of §5.2 (shared, fair, biased) and the
// dynamic utility-driven controller of §6 (phase detection, Algorithm
// 6.1, and way reallocation, Algorithm 6.2).
package partition

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Policy names a cache-management scheme.
type Policy int

// The policies evaluated in §5-§6.
const (
	// Shared leaves the LLC unpartitioned: both applications may
	// replace in all ways.
	Shared Policy = iota
	// Fair splits the ways evenly between foreground and background.
	Fair
	// Biased gives each side an uneven static split, chosen by
	// exhaustive search to first minimize foreground degradation and
	// then maximize background throughput.
	Biased
	// Dynamic runs the online controller of §6.
	Dynamic
)

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case Shared:
		return "shared"
	case Fair:
		return "fair"
	case Biased:
		return "biased"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies returns the three static policies in presentation order.
func StaticPolicies() []Policy { return []Policy{Shared, Fair, Biased} }

// BiasedChoice records the outcome of the exhaustive biased search for
// one application pair.
type BiasedChoice struct {
	FgWays, BgWays int
	// FgSlowdown is the foreground slowdown at the chosen allocation,
	// relative to the foreground alone on its cores with the full LLC.
	FgSlowdown float64
	// BgThroughput is background iterations completed per foreground
	// run at the chosen allocation.
	BgThroughput float64
}

// slowdownTieEps treats allocations within this fraction of the minimum
// foreground degradation as ties, broken by background throughput —
// the paper's "among allocations with minimum foreground performance
// degradation, select the one that maximizes background performance".
// The tolerance is small: the paper's criterion is the strict minimum,
// and a loose tolerance would make the static baseline unrealistically
// background-friendly (hiding the gains Figures 9/13 report).
const slowdownTieEps = 0.002

// SearchSpecs lists every run the exhaustive biased search for a pair
// needs — the foreground-alone baseline plus each uneven split — so
// experiment drivers can batch the searches of many pairs up front.
func SearchSpecs(assoc int, fg, bg *workload.Profile) []sched.Spec {
	specs := []sched.Spec{sched.AloneHalfSpec(fg)}
	for w := 1; w < assoc; w++ {
		specs = append(specs, sched.PairSpec{
			Fg: fg, Bg: bg,
			FgWays: w, BgWays: assoc - w,
			Mode: sched.BackgroundLoop,
		})
	}
	return specs
}

// BestBiased exhaustively evaluates every uneven split (foreground gets
// w ways, background the remaining assoc-w, for w in [1, assoc-1]) with
// the background running continuously, and returns the best choice. The
// splits run as one batch across the engine's workers.
func BestBiased(r *sched.Runner, fg, bg *workload.Profile) BiasedChoice {
	assoc := llcAssoc(r)
	results := r.RunBatch(SearchSpecs(assoc, fg, bg))
	fgAlone := results[0].JobByName(fg.Name).Seconds

	type cand struct {
		ways     int
		slowdown float64
		bgThru   float64
	}
	var cands []cand
	for w := 1; w < assoc; w++ {
		res := results[w]
		cands = append(cands, cand{
			ways:     w,
			slowdown: res.JobByName(fg.Name).Seconds / fgAlone,
			bgThru:   res.JobByName(bg.Name).Iterations,
		})
	}
	minSlow := cands[0].slowdown
	for _, c := range cands[1:] {
		if c.slowdown < minSlow {
			minSlow = c.slowdown
		}
	}
	best := -1
	for i, c := range cands {
		if c.slowdown > minSlow*(1+slowdownTieEps) {
			continue
		}
		if best < 0 || c.bgThru > cands[best].bgThru {
			best = i
		}
	}
	ch := cands[best]
	return BiasedChoice{
		FgWays:       ch.ways,
		BgWays:       assoc - ch.ways,
		FgSlowdown:   ch.slowdown,
		BgThroughput: ch.bgThru,
	}
}

// BestForForeground returns the static allocation that is best for the
// foreground alone — minimum foreground degradation with ties broken
// toward the larger (more protective) foreground share. This is the
// Figure 13 baseline ("the best static cache allocation for the
// foreground application"), distinct from BestBiased's background-aware
// tie-break used in Figure 9.
func BestForForeground(r *sched.Runner, fg, bg *workload.Profile) BiasedChoice {
	assoc := llcAssoc(r)
	results := r.RunBatch(SearchSpecs(assoc, fg, bg))
	fgAlone := results[0].JobByName(fg.Name).Seconds

	best := BiasedChoice{FgWays: -1}
	var bestSlow float64
	for w := assoc - 1; w >= 1; w-- { // larger fg shares win ties
		res := results[w]
		slow := res.JobByName(fg.Name).Seconds / fgAlone
		if best.FgWays < 0 || slow < bestSlow*(1-slowdownTieEps) {
			best = BiasedChoice{
				FgWays: w, BgWays: assoc - w,
				FgSlowdown:   slow,
				BgThroughput: res.JobByName(bg.Name).Iterations,
			}
			bestSlow = slow
		}
	}
	return best
}

// StaticWays returns the (fgWays, bgWays) for a static policy; the
// biased split must be found with BestBiased first and passed in.
func StaticWays(p Policy, assoc int, biased *BiasedChoice) (int, int) {
	switch p {
	case Shared:
		return 0, 0
	case Fair:
		return assoc / 2, assoc - assoc/2
	case Biased:
		if biased == nil {
			panic("partition: Biased policy requires a BestBiased result")
		}
		return biased.FgWays, biased.BgWays
	default:
		panic("partition: StaticWays on non-static policy " + p.String())
	}
}

func llcAssoc(r *sched.Runner) int {
	// All experiments share the default platform geometry; keep a single
	// source of truth by asking a machine config.
	return machine.Default().Hier.LLC.Assoc
}
