// Package partition implements the paper's LLC management policies as
// a pluggable layer: a Policy interface with a package-level registry
// (shared, fair, biased, explicit, dynamic, utility ship registered),
// the shared online decision loop every monitoring policy runs under,
// the §5.2 exhaustive biased search, and the §6 dynamic controller
// (phase detection, Algorithm 6.1, and way reallocation, Algorithm
// 6.2). The scenario, fleet, experiment, and core layers all dispatch
// through the registry, so adding a policy is one file in this package
// plus a Register call — no run-layer edits.
package partition

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

// BiasedChoice records the outcome of the exhaustive biased search for
// one application pair.
type BiasedChoice struct {
	FgWays, BgWays int
	// FgSlowdown is the foreground slowdown at the chosen allocation,
	// relative to the foreground alone on its cores with the full LLC.
	FgSlowdown float64
	// BgThroughput is background iterations completed per foreground
	// run at the chosen allocation.
	BgThroughput float64
}

// slowdownTieEps treats allocations within this fraction of the minimum
// foreground degradation as ties, broken by background throughput —
// the paper's "among allocations with minimum foreground performance
// degradation, select the one that maximizes background performance".
// The tolerance is small: the paper's criterion is the strict minimum,
// and a loose tolerance would make the static baseline unrealistically
// background-friendly (hiding the gains Figures 9/13 report).
const slowdownTieEps = 0.002

// SearchSpecs lists every run the exhaustive biased search for a job
// list needs — the foreground-alone baseline plus each uneven split —
// so experiment drivers can batch the searches of many mixes up front.
// One background peer is the §5.2 pair shape; several peers share the
// background partition and contend within it (§6.3).
func SearchSpecs(assoc int, fg *workload.Profile, bgs ...*workload.Profile) []sched.Spec {
	if len(bgs) == 0 {
		panic("partition: biased search needs at least one background job")
	}
	specs := []sched.Spec{sched.AloneHalfSpec(fg)}
	for w := 1; w < assoc; w++ {
		specs = append(specs, splitSpec(assoc, fg, bgs, w))
	}
	return specs
}

// splitSpec builds the co-run of one candidate split: foreground w
// ways, every background peer sharing the remaining assoc-w.
func splitSpec(assoc int, fg *workload.Profile, bgs []*workload.Profile, w int) sched.Spec {
	if len(bgs) == 1 {
		return sched.PairSpec{Fg: fg, Bg: bgs[0],
			FgWays: w, BgWays: assoc - w, Mode: sched.BackgroundLoop}
	}
	return sched.MultiSpec{Fg: fg, Bgs: bgs, FgWays: w, BgWays: assoc - w}
}

// Candidate is one allocation's measured outcome in a biased search.
// The scenario layer builds candidates from arbitrary job mixes and
// reuses the same selection rules through PickBiased and
// PickForForeground.
type Candidate struct {
	FgWays       int
	FgSlowdown   float64 // foreground time / foreground-alone time
	BgThroughput float64 // summed background iterations
}

// PickBiased returns the index of the winning candidate under the
// §5.2 criterion: among allocations within slowdownTieEps of the
// minimum foreground degradation, the one that maximizes background
// throughput.
func PickBiased(cands []Candidate) int {
	if len(cands) == 0 {
		panic("partition: PickBiased with no candidates")
	}
	minSlow := cands[0].FgSlowdown
	for _, c := range cands[1:] {
		if c.FgSlowdown < minSlow {
			minSlow = c.FgSlowdown
		}
	}
	best := -1
	for i, c := range cands {
		if c.FgSlowdown > minSlow*(1+slowdownTieEps) {
			continue
		}
		if best < 0 || c.BgThroughput > cands[best].BgThroughput {
			best = i
		}
	}
	return best
}

// PickForForeground returns the index of the winning candidate under
// the Figure 13 criterion: minimum foreground degradation with ties
// broken toward the larger (more protective) foreground share.
// Candidates must be ordered by ascending FgWays.
func PickForForeground(cands []Candidate) int {
	if len(cands) == 0 {
		panic("partition: PickForForeground with no candidates")
	}
	best := -1
	var bestSlow float64
	for i := len(cands) - 1; i >= 0; i-- { // larger fg shares win ties
		if best < 0 || cands[i].FgSlowdown < bestSlow*(1-slowdownTieEps) {
			best = i
			bestSlow = cands[i].FgSlowdown
		}
	}
	return best
}

// searchCandidates runs a job list's full split sweep as one batch and
// returns the per-split candidates.
func searchCandidates(r *sched.Runner, assoc int, fg *workload.Profile, bgs []*workload.Profile) []Candidate {
	results := r.RunBatch(SearchSpecs(assoc, fg, bgs...))
	fgAlone := results[0].JobByName(fg.Name).Seconds

	cands := make([]Candidate, 0, assoc-1)
	for w := 1; w < assoc; w++ {
		res := results[w]
		var thru float64
		for _, j := range res.Jobs {
			if j.Background {
				thru += j.Iterations
			}
		}
		cands = append(cands, Candidate{
			FgWays:       w,
			FgSlowdown:   res.JobByName(fg.Name).Seconds / fgAlone,
			BgThroughput: thru,
		})
	}
	return cands
}

// BestSplit exhaustively evaluates every uneven split (foreground gets
// w ways, the background peers share the remaining assoc-w, for w in
// [1, assoc-1]) with the backgrounds running continuously, and returns
// the choice the searcher's selection rule picks. The splits run as
// one batch across the engine's workers.
func BestSplit(r *sched.Runner, s Searcher, fg *workload.Profile, bgs ...*workload.Profile) BiasedChoice {
	assoc := llcAssoc(r)
	cands := searchCandidates(r, assoc, fg, bgs)
	ch := cands[s.Pick(cands)]
	return BiasedChoice{
		FgWays:       ch.FgWays,
		BgWays:       assoc - ch.FgWays,
		FgSlowdown:   ch.FgSlowdown,
		BgThroughput: ch.BgThroughput,
	}
}

// BestBiased is BestSplit under the default biased rule (§5.2: minimum
// foreground degradation, ties broken by background throughput).
func BestBiased(r *sched.Runner, fg *workload.Profile, bgs ...*workload.Profile) BiasedChoice {
	return BestSplit(r, biasedPolicy{}, fg, bgs...)
}

// BestForForeground returns the static allocation that is best for the
// foreground alone — minimum foreground degradation with ties broken
// toward the larger (more protective) foreground share. This is the
// Figure 13 baseline ("the best static cache allocation for the
// foreground application"), distinct from BestBiased's background-aware
// tie-break used in Figure 9.
func BestForForeground(r *sched.Runner, fg *workload.Profile, bgs ...*workload.Profile) BiasedChoice {
	return BestSplit(r, biasedPolicy{protective: true}, fg, bgs...)
}

// SplitWays divides assoc ways into n contiguous disjoint shares, the
// generalized fair policy: every job gets assoc/n ways, the earliest
// jobs absorbing the remainder. The returned [first, lim) ranges cover
// the cache.
func SplitWays(assoc, n int) [][2]int {
	if n < 1 || n > assoc {
		panic(fmt.Sprintf("partition: cannot split %d ways %d ways", assoc, n))
	}
	out := make([][2]int, n)
	base, rem := assoc/n, assoc%n
	first := 0
	for i := range out {
		w := base
		if i < rem {
			w++
		}
		out[i] = [2]int{first, first + w}
		first += w
	}
	return out
}

func llcAssoc(r *sched.Runner) int {
	// All experiments share the default platform geometry; keep a single
	// source of truth by asking a machine config.
	return machine.Default().Hier.LLC.Assoc
}
