package partition

import (
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/perfmon"
)

// LoopJob is one job group of the decision loop: the cores whose LLC
// masks a policy decision applies to, plus the job handle counters are
// read from. Job may be nil for a bare core group (the legacy
// AttachCores shape, where several background peers share one
// partition): such groups still receive masks but contribute no
// counter readings.
type LoopJob struct {
	Job     *machine.Job
	Cores   []int
	App     string
	Latency bool
	// Declared is the job's declared way range, if any (explicit
	// policy input; offline use only).
	Declared [2]int
}

// Loop is the shared online decision loop every online policy runs
// under — the one place masks are read, snapshots are built, Decide is
// called, and changed masks are applied. It registers a machine ticker
// at the sampling interval and reports its activity into the run's
// Result through machine.SetPartitionSource, so policy traces survive
// memoization.
type Loop struct {
	m     *machine.Machine
	pol   Policy
	jobs  []LoopJob
	es    []*perfmon.EventSet   // nil entries for bare core groups
	util  []*perfmon.UtilitySet // nil unless the policy consumes utility curves
	cur   []cache.WayMask       // applied masks (0 = full cache)
	mon   int                   // monitored (latency) job index, -1 if none
	assoc int

	snap     Snapshot              // reusable snapshot
	deltas   []machine.JobCounters // reusable interval readings
	reallocs int
	samples  []perfmon.Sample
}

// AttachLoop installs pol's per-run instance on a machine before Run:
// it opens the per-job event sets (and, for UtilityConsumer policies,
// the shadow utility monitors), applies the policy's initial decision,
// and registers the sampling ticker. The returned loop exposes the
// live allocation and the recorded time series.
func AttachLoop(m *machine.Machine, jobs []LoopJob, pol Policy, intervalSeconds float64) *Loop {
	if intervalSeconds <= 0 {
		panic("partition: decision loop needs a positive sampling interval")
	}
	assoc := m.Config().Hier.LLC.Assoc
	l := &Loop{
		m:      m,
		pol:    pol.Instance(),
		jobs:   jobs,
		es:     make([]*perfmon.EventSet, len(jobs)),
		util:   make([]*perfmon.UtilitySet, len(jobs)),
		cur:    make([]cache.WayMask, len(jobs)),
		mon:    -1,
		assoc:  assoc,
		deltas: make([]machine.JobCounters, len(jobs)),
	}
	lat := 0
	for i := range jobs {
		if jobs[i].Latency {
			l.mon = i
			lat++
		}
		if jobs[i].Job != nil {
			l.es[i] = perfmon.Open(m, jobs[i].Job)
		}
	}
	if lat != 1 {
		l.mon = -1
	}
	if uc, ok := l.pol.(UtilityConsumer); ok {
		for i := range jobs {
			if jobs[i].Job != nil {
				l.util[i] = perfmon.OpenUtility(m, jobs[i].Job, uc.UMONSampleShift())
			}
		}
	}

	l.snap = Snapshot{Assoc: assoc, Jobs: make([]JobView, len(jobs))}
	for i := range jobs {
		l.snap.Jobs[i] = JobView{
			App: jobs[i].App, Latency: jobs[i].Latency,
			Declared: jobs[i].Declared, Ways: assoc,
		}
	}
	l.apply(l.pol.Decide(&l.snap))
	m.RegisterTicker(intervalSeconds, l.tick)
	m.SetPartitionSource(l.trace)
	return l
}

// apply installs a decision, counting a reallocation when any group's
// mask actually changed. Masks equal to the full mask are normalized
// to the zero (unrestricted) form first so "full cache" has one
// spelling.
func (l *Loop) apply(masks []cache.WayMask) {
	if err := ValidateMasks(l.assoc, len(l.jobs), masks); err != nil {
		panic(err.Error())
	}
	full := cache.FullMask(l.assoc)
	changed := false
	for i, mk := range masks {
		if mk == full {
			mk = 0
		}
		if mk == l.cur[i] {
			continue
		}
		eff := mk
		if eff == 0 {
			eff = full
		}
		for _, c := range l.jobs[i].Cores {
			l.m.Hierarchy().SetWayMask(c, eff)
		}
		l.cur[i] = mk
		changed = true
	}
	if changed {
		l.reallocs++
	}
}

// tick runs one sampling interval: read every job's interval counters
// (references always advance, matching the legacy controller), skip
// idle intervals, record the monitored job's sample, and apply the
// policy's decision.
func (l *Loop) tick(now float64) {
	for i := range l.jobs {
		if l.es[i] != nil {
			l.deltas[i] = l.es[i].ReadInterval()
		} else {
			l.deltas[i] = machine.JobCounters{}
		}
	}
	if l.mon >= 0 {
		if l.deltas[l.mon].Instructions <= 0 {
			return
		}
	} else {
		total := 0.0
		for i := range l.deltas {
			total += l.deltas[i].Instructions
		}
		if total <= 0 {
			return
		}
	}

	l.snap.Now = now
	l.snap.Live = true
	for i := range l.jobs {
		jv := &l.snap.Jobs[i]
		jv.Ways = l.WaysOf(i)
		jv.MPKI = l.deltas[i].MPKI()
		jv.Instructions = l.deltas[i].Instructions
		if l.util[i] != nil {
			jv.Utility = l.util[i].Curve(jv.Utility)
		}
	}
	if l.mon >= 0 {
		l.samples = append(l.samples, perfmon.Sample{
			Seconds: now, MPKI: l.snap.Jobs[l.mon].MPKI, Ways: l.WaysOf(l.mon),
		})
	}
	l.apply(l.pol.Decide(&l.snap))
}

// trace summarizes the loop's activity for the run's Result.
func (l *Loop) trace() *machine.PartitionTrace {
	fw := make([]int, len(l.jobs))
	for i := range fw {
		fw[i] = l.WaysOf(i)
	}
	return &machine.PartitionTrace{
		Policy:        l.pol.Name(),
		Reallocations: l.reallocs,
		FinalWays:     fw,
	}
}

// WaysOf returns group i's current allocation in ways (the full
// associativity when unrestricted).
func (l *Loop) WaysOf(i int) int {
	if l.cur[i] == 0 {
		return l.assoc
	}
	return l.cur[i].Count()
}

// Monitored returns the latency job's group index, or -1.
func (l *Loop) Monitored() int { return l.mon }

// Reallocations returns how many decision points changed the applied
// allocation (including the initial grant when it differed from the
// power-on full-cache state).
func (l *Loop) Reallocations() int { return l.reallocs }

// Samples returns the monitored job's recorded MPKI/allocation series.
func (l *Loop) Samples() []perfmon.Sample { return l.samples }
