package partition

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestBestForForegroundIsProtective(t *testing.T) {
	r := sched.New(sched.Options{Scale: 1e-3})
	fg := workload.MustByName("429.mcf") // cache-hungry foreground
	bg := workload.MustByName("ferret")
	ch := BestForForeground(r, fg, bg)
	if ch.FgWays+ch.BgWays != 12 {
		t.Fatalf("split %d+%d", ch.FgWays, ch.BgWays)
	}
	// For a cache-hungry foreground against a cache-light background,
	// the fg-optimal split must grant the foreground a large share.
	if ch.FgWays < 8 {
		t.Fatalf("fg-optimal allocation gave mcf only %d ways", ch.FgWays)
	}
	if ch.FgSlowdown <= 0 || ch.BgThroughput <= 0 {
		t.Fatalf("degenerate choice: %+v", ch)
	}
}

func TestBestForForegroundVsBestBiased(t *testing.T) {
	// The Figure 13 baseline breaks ties toward the foreground; the
	// Figure 9 biased policy breaks ties toward background throughput.
	// The foreground-greedy choice must never grant FEWER ways than a
	// tied background-friendly one would lose performance over.
	r := sched.New(sched.Options{Scale: 1e-3})
	fg := workload.MustByName("ferret") // cache-indifferent: all splits tie
	bg := workload.MustByName("fop")
	greedy := BestForForeground(r, fg, bg)
	biased := BestBiased(r, fg, bg)
	if greedy.FgWays < biased.FgWays {
		t.Fatalf("fg-greedy split (%d ways) smaller than bg-friendly biased (%d ways)",
			greedy.FgWays, biased.FgWays)
	}
}
