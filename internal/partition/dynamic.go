package partition

import (
	"encoding/json"
	"strconv"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/perfmon"
	"repro/internal/workload"
)

// SamplingInterval sizes the decision loop's sampling period the way
// the paper's 100 ms relates to its multi-minute runs: a fixed number
// of decision intervals per foreground execution. Every caller that
// attaches an online policy (experiment drivers, the core API,
// scenario runs, fleet episodes) derives the interval from this one
// rule so their runs are directly comparable.
func SamplingInterval(fg *workload.Profile, scale float64) float64 {
	const intervalsPerRun = 500
	estSeconds := fg.Instructions * scale * 1.5 / 3.4e9
	return estSeconds / intervalsPerRun
}

// ControllerConfig parameterizes the dynamic partitioning framework of
// §6. The paper samples MPKI every 100 ms of wall time and uses
// absolute MPKI-derivative thresholds THR1=THR2=0.02, THR3=0.05; with
// hundreds of millions of instructions per interval those readings are
// nearly noise-free. Our scaled runs have far fewer instructions per
// interval, so the thresholds are expressed *relative* to the running
// MPKI level (documented in DESIGN.md); the algorithm is otherwise
// identical, and the paper reports results are "largely insensitive to
// small parameter changes".
type ControllerConfig struct {
	// IntervalSeconds is the sampling period in simulated time. The
	// caller picks it proportional to the expected run length the same
	// way 100 ms relates to the paper's multi-minute runs.
	IntervalSeconds float64

	// THR1: relative MPKI change that signals a phase change beginning.
	THR1 float64
	// THR2: relative MPKI change below which the new phase has settled.
	THR2 float64
	// THR3: relative MPKI growth, after a shrink step, that signals the
	// foreground lost capacity it needed.
	THR3 float64

	// MinFgWays is the smallest foreground allocation the controller
	// will shrink to (paper: 1 MB = 2 ways).
	MinFgWays int
	// MaxFgWays is the largest foreground allocation granted on a phase
	// change (paper: 11 of 12 ways, leaving one for the background).
	MaxFgWays int

	// EWMAAlpha smooths the running average MPKI used by detection.
	EWMAAlpha float64

	// ShrinkCooldown is how many stable intervals must pass between
	// consecutive shrink steps, giving the co-runner time to evict
	// leftover data from deallocated ways so damage becomes visible
	// before the next step (§6.3's too-much-shrinkage hazard).
	ShrinkCooldown int
}

// DefaultControllerConfig returns the thresholds used throughout the
// evaluation. IntervalSeconds must still be set by the caller.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		THR1:           0.25,
		THR2:           0.10,
		THR3:           0.10,
		MinFgWays:      2,
		MaxFgWays:      11,
		EWMAAlpha:      0.4,
		ShrinkCooldown: 2,
	}
}

// keyParams renders the algorithm parameters canonically for memo keys
// (the sampling interval is appended separately by RunKey).
func (c ControllerConfig) keyParams() string {
	buf := make([]byte, 0, 64)
	buf = append(buf, "t1="...)
	buf = strconv.AppendFloat(buf, c.THR1, 'g', -1, 64)
	buf = append(buf, ",t2="...)
	buf = strconv.AppendFloat(buf, c.THR2, 'g', -1, 64)
	buf = append(buf, ",t3="...)
	buf = strconv.AppendFloat(buf, c.THR3, 'g', -1, 64)
	buf = append(buf, ",min="...)
	buf = strconv.AppendInt(buf, int64(c.MinFgWays), 10)
	buf = append(buf, ",max="...)
	buf = strconv.AppendInt(buf, int64(c.MaxFgWays), 10)
	buf = append(buf, ",a="...)
	buf = strconv.AppendFloat(buf, c.EWMAAlpha, 'g', -1, 64)
	buf = append(buf, ",cd="...)
	buf = strconv.AppendInt(buf, int64(c.ShrinkCooldown), 10)
	return string(buf)
}

func init() {
	Register("dynamic", "online §6 controller: phase detection plus gradual reclamation of latency-job ways",
		func(params json.RawMessage) (Policy, error) {
			var p struct {
				THR1     *float64 `json:"thr1"`
				THR2     *float64 `json:"thr2"`
				THR3     *float64 `json:"thr3"`
				MinWays  *int     `json:"min_ways"`
				MaxWays  *int     `json:"max_ways"`
				EWMA     *float64 `json:"ewma"`
				Cooldown *int     `json:"cooldown"`
			}
			if err := decodeParams(params, &p); err != nil {
				return nil, err
			}
			cfg := DefaultControllerConfig()
			setF := func(dst *float64, v *float64) {
				if v != nil {
					*dst = *v
				}
			}
			setI := func(dst *int, v *int) {
				if v != nil {
					*dst = *v
				}
			}
			setF(&cfg.THR1, p.THR1)
			setF(&cfg.THR2, p.THR2)
			setF(&cfg.THR3, p.THR3)
			setI(&cfg.MinFgWays, p.MinWays)
			setI(&cfg.MaxFgWays, p.MaxWays)
			setF(&cfg.EWMAAlpha, p.EWMA)
			setI(&cfg.ShrinkCooldown, p.Cooldown)
			return dynamicPolicy{cfg: cfg}, nil
		})
}

// dynamicPolicy is the registered §6 policy: an immutable configuration
// whose Instance spawns the per-run controller state.
type dynamicPolicy struct {
	cfg ControllerConfig
}

func (dynamicPolicy) Name() string        { return "dynamic" }
func (p dynamicPolicy) KeyParams() string { return p.cfg.keyParams() }
func (dynamicPolicy) Online() bool        { return true }
func (p dynamicPolicy) Instance() Policy  { return &dynamicRun{cfg: p.cfg} }
func (dynamicPolicy) CheckMix(s *Snapshot) error {
	return needOneLatency("dynamic", s)
}

// Decide on the shared prototype only ever sees plan-time snapshots
// (the loop drives a fresh Instance); it reports the initial grant.
func (p dynamicPolicy) Decide(s *Snapshot) []cache.WayMask {
	return p.Instance().Decide(s)
}

// phase-detection states (Algorithm 6.1 return values).
const (
	phaseStable   = 0 // steady state, or a phase change just finished
	phaseChanging = 1 // mid-transition
	phaseStarted  = 2 // a new phase just started
)

// dynamicRun is one run's controller state, implementing Algorithms 6.1
// and 6.2: it monitors the latency job's interval MPKI, grants it the
// maximum allocation when a phase change is detected, then gradually
// shrinks the allocation until shrinking hurts (MPKI rises), giving the
// reclaimed ways to everyone else.
type dynamicRun struct {
	cfg   ControllerConfig
	assoc int
	ready bool

	avgMPKI  float64
	haveAvg  bool
	newPhase bool // Algorithm 6.1's static new_phase flag

	phaseStarts bool    // Algorithm 6.2's phase_starts flag
	baseMPKI    float64 // minimum MPKI observed this phase (full-grant yardstick)
	haveBase    bool
	prevMPKI    float64 // previous interval reading (flattening gate)
	havePrev    bool
	cooldown    int // stable intervals until the next shrink is allowed
	fgWays      int
}

func (*dynamicRun) Name() string        { return "dynamic" }
func (d *dynamicRun) KeyParams() string { return d.cfg.keyParams() }
func (*dynamicRun) Online() bool        { return true }
func (d *dynamicRun) Instance() Policy  { return &dynamicRun{cfg: d.cfg} }
func (d *dynamicRun) CheckMix(s *Snapshot) error {
	return needOneLatency("dynamic", s)
}

// Decide returns the current split: plan-time snapshots get the initial
// maximal grant; live snapshots advance the state machine by one
// sampling interval first.
func (d *dynamicRun) Decide(s *Snapshot) []cache.WayMask {
	fg := s.latencyIndex()
	if fg < 0 {
		panic("partition: dynamic policy without a single latency job (CheckMix should have rejected this)")
	}
	if !d.ready {
		d.assoc = s.Assoc
		if d.cfg.MaxFgWays <= 0 || d.cfg.MaxFgWays >= d.assoc {
			d.cfg.MaxFgWays = d.assoc - 1
		}
		if d.cfg.MinFgWays < 1 {
			d.cfg.MinFgWays = 1
		}
		d.fgWays = d.cfg.MaxFgWays
		d.phaseStarts = true
		d.ready = true
	}
	if s.Live {
		d.step(s.Jobs[fg].MPKI)
	}
	return splitMasks(len(s.Jobs), fg, d.fgWays, d.assoc)
}

// setFgWays clamps and records a new target allocation.
func (d *dynamicRun) setFgWays(w int) {
	if w < 1 {
		w = 1
	}
	if w > d.assoc-1 {
		w = d.assoc - 1
	}
	d.fgWays = w
}

// relDelta returns |a-b| relative to the larger magnitude, with a floor
// so near-zero MPKI phases do not divide by zero and cache-indifferent
// applications (MPKI ~1) are not pinned to large allocations by noise.
func relDelta(a, b float64) float64 {
	const floor = 4.0 // MPKI
	base := a
	if b > base {
		base = b
	}
	if base < floor {
		base = floor
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / base
}

// phaseDet is Algorithm 6.1.
func (d *dynamicRun) phaseDet(cur float64) int {
	if !d.haveAvg {
		d.avgMPKI = cur
		d.haveAvg = true
		return phaseStable
	}
	if !d.newPhase {
		if relDelta(d.avgMPKI, cur) > d.cfg.THR1 {
			d.newPhase = true
			d.avgMPKI = cur // restart the running average in the new phase
			return phaseStarted
		}
	} else if relDelta(d.avgMPKI, cur) < d.cfg.THR2 {
		d.newPhase = false // phase change just finished
	}
	d.avgMPKI = (1-d.cfg.EWMAAlpha)*d.avgMPKI + d.cfg.EWMAAlpha*cur
	if d.newPhase {
		return phaseChanging
	}
	return phaseStable
}

// step is Algorithm 6.2, run once per sampling interval with the
// latency job's interval MPKI.
func (d *dynamicRun) step(cur float64) {
	flattened := d.havePrev && relDelta(d.prevMPKI, cur) < d.cfg.THR3
	d.prevMPKI = cur
	d.havePrev = true

	switch det := d.phaseDet(cur); {
	case det == phaseStarted:
		d.phaseStarts = true
		d.haveBase = false
		d.havePrev = false
		d.setFgWays(d.cfg.MaxFgWays)
	case det == phaseStable && d.phaseStarts:
		// Track the phase's best (minimum) MPKI: right after a grant
		// the working set is still warming, so early readings are
		// inflated; the minimum is the honest yardstick. Paper
		// Algorithm 6.2 differences consecutive intervals; at our
		// reduced scale leftover data in deallocated ways hides shrink
		// damage for many intervals ("allowing too much shrinkage",
		// §6.3), so we anchor against this cumulative baseline instead.
		if !d.haveBase || cur < d.baseMPKI {
			d.baseMPKI = cur
			d.haveBase = true
		}
		hurt := cur > d.baseMPKI && relDelta(d.baseMPKI, cur) >= d.cfg.THR3
		// An MPKI this low cannot justify holding capacity: reclaim
		// without waiting for the series to flatten.
		trivial := cur < 3.0
		if trivial {
			flattened = true
		}
		switch {
		case hurt:
			// MPKI rose above the phase floor: give back capacity and
			// settle.
			d.setFgWays(minInt(d.fgWays+2, d.cfg.MaxFgWays))
			d.phaseStarts = false
		case !flattened:
			// Still warming (MPKI moving): no shrink decisions yet.
		case d.cooldown > 0:
			d.cooldown--
		case d.fgWays > d.cfg.MinFgWays:
			d.setFgWays(d.fgWays - 1)
			d.cooldown = d.cfg.ShrinkCooldown
		default:
			d.phaseStarts = false // hold at the floor
		}
	case det == phaseStable && !d.phaseStarts && d.haveBase:
		// Settled, but leftover data in deallocated ways may only now
		// be getting evicted by the co-runner: if MPKI stays elevated
		// well above the phase baseline, treat it as the phase change
		// the paper promises ("as soon as another application evicts
		// the leftover data, a phase change will be detected") and
		// re-grant the maximum.
		if cur > d.baseMPKI && relDelta(d.baseMPKI, cur) >= d.cfg.THR1 {
			d.phaseStarts = true
			d.haveBase = false
			d.setFgWays(d.cfg.MaxFgWays)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Controller is the dynamic policy's legacy handle: Attach/AttachCores
// install the policy through the shared decision loop and return one,
// exposing the live allocation, the reallocation count, and the MPKI
// time series behind Figure 12.
type Controller struct {
	loop *Loop
}

// Attach installs the §6 controller on a machine before Run: it
// registers the decision loop and applies the initial allocation
// (foreground maximal, background the remainder).
func Attach(m *machine.Machine, fg, bg *machine.Job, cfg ControllerConfig) *Controller {
	return AttachCores(m, fg, bg.Cores(), cfg)
}

// AttachCores is Attach for multiple background peers: all listed cores
// share the background partition and contend within it, the §6.3
// multi-peer extension.
func AttachCores(m *machine.Machine, fg *machine.Job, bgCores []int, cfg ControllerConfig) *Controller {
	if cfg.IntervalSeconds <= 0 {
		panic("partition: controller needs a positive sampling interval")
	}
	jobs := []LoopJob{
		{Job: fg, Cores: fg.Cores(), Latency: true, App: fg.Name()},
		{Cores: bgCores},
	}
	loop := AttachLoop(m, jobs, dynamicPolicy{cfg: cfg}, cfg.IntervalSeconds)
	return &Controller{loop: loop}
}

// FgWays returns the current foreground allocation in ways.
func (c *Controller) FgWays() int { return c.loop.WaysOf(c.loop.Monitored()) }

// Reallocations returns how many times the controller changed the
// allocation (a measure of its overhead).
func (c *Controller) Reallocations() int { return c.loop.Reallocations() }

// Samples returns the recorded MPKI/allocation time series (Figure 12's
// "Dynamic" trace).
func (c *Controller) Samples() []perfmon.Sample { return c.loop.Samples() }
