package partition

import (
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/perfmon"
	"repro/internal/workload"
)

// SamplingInterval sizes the controller's sampling period the way the
// paper's 100 ms relates to its multi-minute runs: a fixed number of
// decision intervals per foreground execution. Every caller that
// attaches the controller (experiment drivers, the core API, scenario
// runs) derives the interval from this one rule so their dynamic runs
// are directly comparable.
func SamplingInterval(fg *workload.Profile, scale float64) float64 {
	const intervalsPerRun = 500
	estSeconds := fg.Instructions * scale * 1.5 / 3.4e9
	return estSeconds / intervalsPerRun
}

// ControllerConfig parameterizes the dynamic partitioning framework of
// §6. The paper samples MPKI every 100 ms of wall time and uses
// absolute MPKI-derivative thresholds THR1=THR2=0.02, THR3=0.05; with
// hundreds of millions of instructions per interval those readings are
// nearly noise-free. Our scaled runs have far fewer instructions per
// interval, so the thresholds are expressed *relative* to the running
// MPKI level (documented in DESIGN.md); the algorithm is otherwise
// identical, and the paper reports results are "largely insensitive to
// small parameter changes".
type ControllerConfig struct {
	// IntervalSeconds is the sampling period in simulated time. The
	// caller picks it proportional to the expected run length the same
	// way 100 ms relates to the paper's multi-minute runs.
	IntervalSeconds float64

	// THR1: relative MPKI change that signals a phase change beginning.
	THR1 float64
	// THR2: relative MPKI change below which the new phase has settled.
	THR2 float64
	// THR3: relative MPKI growth, after a shrink step, that signals the
	// foreground lost capacity it needed.
	THR3 float64

	// MinFgWays is the smallest foreground allocation the controller
	// will shrink to (paper: 1 MB = 2 ways).
	MinFgWays int
	// MaxFgWays is the largest foreground allocation granted on a phase
	// change (paper: 11 of 12 ways, leaving one for the background).
	MaxFgWays int

	// EWMAAlpha smooths the running average MPKI used by detection.
	EWMAAlpha float64

	// ShrinkCooldown is how many stable intervals must pass between
	// consecutive shrink steps, giving the co-runner time to evict
	// leftover data from deallocated ways so damage becomes visible
	// before the next step (§6.3's too-much-shrinkage hazard).
	ShrinkCooldown int
}

// DefaultControllerConfig returns the thresholds used throughout the
// evaluation. IntervalSeconds must still be set by the caller.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		THR1:           0.25,
		THR2:           0.10,
		THR3:           0.10,
		MinFgWays:      2,
		MaxFgWays:      11,
		EWMAAlpha:      0.4,
		ShrinkCooldown: 2,
	}
}

// phase-detection states (Algorithm 6.1 return values).
const (
	phaseStable   = 0 // steady state, or a phase change just finished
	phaseChanging = 1 // mid-transition
	phaseStarted  = 2 // a new phase just started
)

// Controller implements Algorithms 6.1 and 6.2: it monitors the
// foreground job's interval MPKI, grants the foreground the maximum
// allocation when a phase change is detected, then gradually shrinks
// the allocation until shrinking hurts (MPKI rises), giving the
// reclaimed ways to the background.
type Controller struct {
	cfg     ControllerConfig
	m       *machine.Machine
	fgCores []int
	bgCores []int
	assoc   int
	es      *perfmon.EventSet

	avgMPKI  float64
	haveAvg  bool
	newPhase bool // Algorithm 6.1's static new_phase flag

	phaseStarts bool    // Algorithm 6.2's phase_starts flag
	baseMPKI    float64 // minimum MPKI observed this phase (full-grant yardstick)
	haveBase    bool
	prevMPKI    float64 // previous interval reading (flattening gate)
	havePrev    bool
	cooldown    int // stable intervals until the next shrink is allowed
	fgWays      int

	samples  []perfmon.Sample
	reallocs int
}

// Attach installs a controller on a machine before Run: it registers
// the sampling ticker and applies the initial allocation (foreground
// maximal, background the remainder).
func Attach(m *machine.Machine, fg, bg *machine.Job, cfg ControllerConfig) *Controller {
	return AttachCores(m, fg, bg.Cores(), cfg)
}

// AttachCores is Attach for multiple background peers: all listed cores
// share the background partition and contend within it, the §6.3
// multi-peer extension.
func AttachCores(m *machine.Machine, fg *machine.Job, bgCores []int, cfg ControllerConfig) *Controller {
	if cfg.IntervalSeconds <= 0 {
		panic("partition: controller needs a positive sampling interval")
	}
	assoc := m.Config().Hier.LLC.Assoc
	if cfg.MaxFgWays <= 0 || cfg.MaxFgWays >= assoc {
		cfg.MaxFgWays = assoc - 1
	}
	if cfg.MinFgWays < 1 {
		cfg.MinFgWays = 1
	}
	c := &Controller{
		cfg:     cfg,
		m:       m,
		fgCores: fg.Cores(),
		bgCores: bgCores,
		assoc:   assoc,
		es:      perfmon.Open(m, fg),
	}
	c.setFgWays(cfg.MaxFgWays)
	c.phaseStarts = true
	m.RegisterTicker(cfg.IntervalSeconds, c.tick)
	return c
}

// FgWays returns the current foreground allocation in ways.
func (c *Controller) FgWays() int { return c.fgWays }

// Reallocations returns how many times the controller changed the
// allocation (a measure of its overhead).
func (c *Controller) Reallocations() int { return c.reallocs }

// Samples returns the recorded MPKI/allocation time series (Figure 12's
// "Dynamic" trace).
func (c *Controller) Samples() []perfmon.Sample { return c.samples }

// setFgWays applies a new split: foreground cores replace in the low
// ways, background cores in the remaining high ways. No data is flushed
// (the mechanism only affects replacement), matching the prototype.
func (c *Controller) setFgWays(w int) {
	if w < 1 {
		w = 1
	}
	if w > c.assoc-1 {
		w = c.assoc - 1
	}
	if w == c.fgWays {
		return
	}
	c.fgWays = w
	c.reallocs++
	fgMask := cache.MaskFirstN(w)
	bgMask := cache.MaskRange(w, c.assoc)
	for _, core := range c.fgCores {
		c.m.Hierarchy().SetWayMask(core, fgMask)
	}
	for _, core := range c.bgCores {
		c.m.Hierarchy().SetWayMask(core, bgMask)
	}
}

// relDelta returns |a-b| relative to the larger magnitude, with a floor
// so near-zero MPKI phases do not divide by zero and cache-indifferent
// applications (MPKI ~1) are not pinned to large allocations by noise.
func relDelta(a, b float64) float64 {
	const floor = 4.0 // MPKI
	base := a
	if b > base {
		base = b
	}
	if base < floor {
		base = floor
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / base
}

// phaseDet is Algorithm 6.1.
func (c *Controller) phaseDet(cur float64) int {
	if !c.haveAvg {
		c.avgMPKI = cur
		c.haveAvg = true
		return phaseStable
	}
	if !c.newPhase {
		if relDelta(c.avgMPKI, cur) > c.cfg.THR1 {
			c.newPhase = true
			c.avgMPKI = cur // restart the running average in the new phase
			return phaseStarted
		}
	} else if relDelta(c.avgMPKI, cur) < c.cfg.THR2 {
		c.newPhase = false // phase change just finished
	}
	c.avgMPKI = (1-c.cfg.EWMAAlpha)*c.avgMPKI + c.cfg.EWMAAlpha*cur
	if c.newPhase {
		return phaseChanging
	}
	return phaseStable
}

// tick is Algorithm 6.2, run once per sampling interval.
func (c *Controller) tick(now float64) {
	d := c.es.ReadInterval()
	if d.Instructions <= 0 {
		return
	}
	cur := d.MPKI()
	c.samples = append(c.samples, perfmon.Sample{
		Seconds: now, MPKI: cur, Ways: c.fgWays,
	})

	flattened := c.havePrev && relDelta(c.prevMPKI, cur) < c.cfg.THR3
	c.prevMPKI = cur
	c.havePrev = true

	switch det := c.phaseDet(cur); {
	case det == phaseStarted:
		c.phaseStarts = true
		c.haveBase = false
		c.havePrev = false
		c.setFgWays(c.cfg.MaxFgWays)
	case det == phaseStable && c.phaseStarts:
		// Track the phase's best (minimum) MPKI: right after a grant
		// the working set is still warming, so early readings are
		// inflated; the minimum is the honest yardstick. Paper
		// Algorithm 6.2 differences consecutive intervals; at our
		// reduced scale leftover data in deallocated ways hides shrink
		// damage for many intervals ("allowing too much shrinkage",
		// §6.3), so we anchor against this cumulative baseline instead.
		if !c.haveBase || cur < c.baseMPKI {
			c.baseMPKI = cur
			c.haveBase = true
		}
		hurt := cur > c.baseMPKI && relDelta(c.baseMPKI, cur) >= c.cfg.THR3
		// An MPKI this low cannot justify holding capacity: reclaim
		// without waiting for the series to flatten.
		trivial := cur < 3.0
		if trivial {
			flattened = true
		}
		switch {
		case hurt:
			// MPKI rose above the phase floor: give back capacity and
			// settle.
			c.setFgWays(minInt(c.fgWays+2, c.cfg.MaxFgWays))
			c.phaseStarts = false
		case !flattened:
			// Still warming (MPKI moving): no shrink decisions yet.
		case c.cooldown > 0:
			c.cooldown--
		case c.fgWays > c.cfg.MinFgWays:
			c.setFgWays(c.fgWays - 1)
			c.cooldown = c.cfg.ShrinkCooldown
		default:
			c.phaseStarts = false // hold at the floor
		}
	case det == phaseStable && !c.phaseStarts && c.haveBase:
		// Settled, but leftover data in deallocated ways may only now
		// be getting evicted by the co-runner: if MPKI stays elevated
		// well above the phase baseline, treat it as the phase change
		// the paper promises ("as soon as another application evicts
		// the leftover data, a phase change will be detected") and
		// re-grant the maximum.
		if cur > c.baseMPKI && relDelta(c.baseMPKI, cur) >= c.cfg.THR1 {
			c.phaseStarts = true
			c.haveBase = false
			c.setFgWays(c.cfg.MaxFgWays)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
