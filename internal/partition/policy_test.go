package partition

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cache"
)

// TestRegistryUnknownName pins the error text the CLI and scenario
// layers surface for a typo'd policy name.
func TestRegistryUnknownName(t *testing.T) {
	_, err := New("warp", nil)
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown partition policy "warp"`) {
		t.Errorf("error %q does not name the unknown policy", msg)
	}
	for _, name := range []string{"shared", "fair", "biased", "explicit", "dynamic", "utility"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list registered policy %s", msg, name)
		}
	}
}

// TestRegistryDuplicatePanics: two packages claiming one name is a
// programming error that must fail loudly at init, not resolve by
// load order.
func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("shared", "imposter", func(json.RawMessage) (Policy, error) {
		return sharedPolicy{}, nil
	})
}

// TestPolicyParams: params reach the factory, render canonically into
// KeyParams (so memo keys distinguish parameterizations), and unknown
// param fields are rejected.
func TestPolicyParams(t *testing.T) {
	u, err := New("utility", json.RawMessage(`{"min_ways": 2, "sample_shift": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := u.KeyParams(); got != "min=2,ss=4,d=0.5" {
		t.Errorf("utility KeyParams = %q", got)
	}
	def := MustNew("utility", nil)
	if def.KeyParams() == u.KeyParams() {
		t.Error("default and custom utility params render identical key params")
	}
	lat := []bool{true, false}
	if RunKey(def, 1e-5, lat) == RunKey(u, 1e-5, lat) {
		t.Error("distinct parameterizations share a run key")
	}
	if RunKey(def, 1e-5, lat) == RunKey(def, 2e-5, lat) {
		t.Error("distinct intervals share a run key")
	}
	if RunKey(def, 1e-5, lat) == RunKey(MustNew("dynamic", nil), 1e-5, lat) {
		t.Error("distinct policies share a run key")
	}
	// The latency-role vector is a decision-loop input the mix's own
	// key fields do not carry: flipping which job is monitored must
	// change the key, or role-swapped runs would alias in the cache.
	if RunKey(def, 1e-5, []bool{true, false}) == RunKey(def, 1e-5, []bool{false, true}) {
		t.Error("role-swapped runs share a run key")
	}

	if _, err := New("utility", json.RawMessage(`{"min_ways": 0}`)); err == nil {
		t.Error("min_ways 0 accepted")
	}
	if _, err := New("utility", json.RawMessage(`{"min_weighs": 2}`)); err == nil {
		t.Error("unknown param field accepted")
	}
	if _, err := New("biased", json.RawMessage(`{"rule": "sideways"}`)); err == nil {
		t.Error("unknown biased rule accepted")
	}

	d, err := New("dynamic", json.RawMessage(`{"thr1": 0.5, "cooldown": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if kp := d.KeyParams(); !strings.Contains(kp, "t1=0.5") || !strings.Contains(kp, "cd=4") {
		t.Errorf("dynamic KeyParams %q lost its overrides", kp)
	}
}

// TestBiasedRules: the two selection rules pick differently on a
// candidate set where the minimum-slowdown tie breaks apart.
func TestBiasedRules(t *testing.T) {
	cands := []Candidate{
		{FgWays: 1, FgSlowdown: 1.001, BgThroughput: 9},
		{FgWays: 6, FgSlowdown: 1.000, BgThroughput: 5},
		{FgWays: 11, FgSlowdown: 1.001, BgThroughput: 1},
	}
	bg := MustNew("biased", nil).(Searcher)
	fgp := MustNew("biased", json.RawMessage(`{"rule": "foreground"}`)).(Searcher)
	if got := cands[bg.Pick(cands)].FgWays; got != 1 {
		t.Errorf("background rule picked %d ways, want 1 (max bg throughput within tie)", got)
	}
	if got := cands[fgp.Pick(cands)].FgWays; got != 11 {
		t.Errorf("foreground rule picked %d ways, want 11 (largest share within tie)", got)
	}
}

// TestValidateMasks covers the decision validator both ways.
func TestValidateMasks(t *testing.T) {
	if err := ValidateMasks(12, 2, []cache.WayMask{0, cache.MaskRange(0, 6)}); err != nil {
		t.Errorf("valid masks rejected: %v", err)
	}
	if err := ValidateMasks(12, 3, []cache.WayMask{0, 0}); err == nil {
		t.Error("mask-count mismatch accepted")
	}
	if err := ValidateMasks(12, 1, []cache.WayMask{cache.MaskRange(10, 14)}); err == nil {
		t.Error("mask exceeding the LLC accepted")
	}
}

// snapFromFuzz builds a deterministic snapshot from fuzz bytes: job
// count, latency placement, declared ranges, and (for live snapshots)
// counter readings all derive from the input.
func snapFromFuzz(data []byte, assoc int, live bool) *Snapshot {
	if len(data) == 0 {
		data = []byte{1}
	}
	n := int(data[0])%assoc + 1
	s := &Snapshot{Assoc: assoc, Live: live, Jobs: make([]JobView, n)}
	byteAt := func(i int) int {
		return int(data[i%len(data)])
	}
	for i := range s.Jobs {
		jv := &s.Jobs[i]
		jv.App = "app"
		jv.Latency = i == byteAt(i+1)%n
		lo := byteAt(i+2) % assoc
		hi := lo + 1 + byteAt(i+3)%(assoc-lo)
		jv.Declared = [2]int{lo, hi}
		jv.Ways = assoc
		if live {
			jv.MPKI = float64(byteAt(i+4)) / 4
			jv.Instructions = float64(byteAt(i + 5))
			jv.Utility = make([]float64, assoc)
			acc := 0.0
			for w := range jv.Utility {
				acc += float64(byteAt(i + 6 + w))
				jv.Utility[w] = acc
			}
		}
	}
	return s
}

// FuzzDecideMasks: for every registered policy, any mix shape that
// passes CheckMix must yield a Decide result that passes ValidateMasks
// — the mask-side analogue of placements satisfying
// machine.ValidateSlots — at plan time and across a run of live
// intervals.
func FuzzDecideMasks(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 9, 4})
	f.Add([]byte{12, 200, 7})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const assoc = 12
		for _, name := range Names() {
			pol, err := New(name, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			plan := snapFromFuzz(data, assoc, false)
			if pol.CheckMix(plan) != nil {
				continue // shape legitimately rejected
			}
			run := pol.Instance()
			masks := run.Decide(plan)
			if err := ValidateMasks(assoc, len(plan.Jobs), masks); err != nil {
				t.Errorf("%s plan decide: %v", name, err)
			}
			if !pol.Online() {
				continue
			}
			live := snapFromFuzz(data, assoc, true)
			for i := range live.Jobs {
				live.Jobs[i].Ways = masks[i].Count()
				if masks[i] == 0 {
					live.Jobs[i].Ways = assoc
				}
			}
			for tick := 0; tick < 5; tick++ {
				masks = run.Decide(live)
				if err := ValidateMasks(assoc, len(live.Jobs), masks); err != nil {
					t.Fatalf("%s live decide tick %d: %v", name, tick, err)
				}
				for i := range live.Jobs {
					live.Jobs[i].Ways = masks[i].Count()
					if masks[i] == 0 {
						live.Jobs[i].Ways = assoc
					}
				}
			}
		}
	})
}
