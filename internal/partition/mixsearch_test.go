package partition

import (
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSplitWays(t *testing.T) {
	cases := []struct {
		assoc, n int
		want     [][2]int
	}{
		{12, 2, [][2]int{{0, 6}, {6, 12}}},
		{12, 4, [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 12}}},
		{12, 5, [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}, {10, 12}}},
		{12, 12, nil}, // every job one way
	}
	for _, c := range cases {
		got := SplitWays(c.assoc, c.n)
		if c.want != nil && !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitWays(%d,%d) = %v, want %v", c.assoc, c.n, got, c.want)
		}
		// Shares must tile the cache exactly.
		first := 0
		for _, r := range got {
			if r[0] != first || r[1] <= r[0] {
				t.Fatalf("SplitWays(%d,%d) = %v: non-contiguous", c.assoc, c.n, got)
			}
			first = r[1]
		}
		if first != c.assoc {
			t.Fatalf("SplitWays(%d,%d) covers %d ways", c.assoc, c.n, first)
		}
	}
}

func TestPickBiasedCriterion(t *testing.T) {
	cands := []Candidate{
		{FgWays: 1, FgSlowdown: 1.20, BgThroughput: 9},
		{FgWays: 2, FgSlowdown: 1.001, BgThroughput: 5}, // within eps of min, best bg
		{FgWays: 3, FgSlowdown: 1.000, BgThroughput: 3}, // the strict minimum
		{FgWays: 4, FgSlowdown: 1.05, BgThroughput: 8},
	}
	if got := PickBiased(cands); got != 1 {
		t.Fatalf("PickBiased = %d, want tie broken by bg throughput (1)", got)
	}
	if got := PickForForeground(cands); got != 2 {
		t.Fatalf("PickForForeground = %d, want strict-min index 2", got)
	}
	// Equal slowdowns: the larger share wins for the foreground rule.
	flat := []Candidate{
		{FgWays: 1, FgSlowdown: 1.01, BgThroughput: 4},
		{FgWays: 2, FgSlowdown: 1.01, BgThroughput: 2},
	}
	if got := PickForForeground(flat); got != 1 {
		t.Fatalf("PickForForeground flat = %d, want larger share (1)", got)
	}
}

// TestBestBiasedJobList: the search over a foreground plus two peers
// must run the §6.3 multi shape and return a sane split.
func TestBestBiasedJobList(t *testing.T) {
	r := sched.New(sched.Options{Scale: 3e-4})
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")

	ch := BestBiased(r, fg, bg, bg)
	if ch.FgWays < 1 || ch.FgWays > 11 || ch.FgWays+ch.BgWays != 12 {
		t.Fatalf("choice: %+v", ch)
	}
	if ch.BgThroughput <= 0 {
		t.Fatalf("no background progress: %+v", ch)
	}

	// The sweep batches 11 multi splits + 1 baseline; each distinct
	// config simulates exactly once.
	specs := SearchSpecs(12, fg, bg, bg)
	if len(specs) != 12 {
		t.Fatalf("%d search specs", len(specs))
	}
	if _, ok := specs[1].(sched.MultiSpec); !ok {
		t.Fatalf("multi-peer search built %T, want MultiSpec", specs[1])
	}
}
