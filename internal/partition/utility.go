package partition

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/cache"
)

// utilityPolicy is utility-based cache partitioning in the UCP style
// (Qureshi & Patt, MICRO'06 — the line of work the ISCA retrospectives
// trace forward from this paper): each job's shadow utility monitor
// estimates the demand hits it would obtain at every possible way
// count, and at each sampling interval a lookahead greedy allocator
// hands ways to whichever job currently buys the most additional hits
// per way. Unlike the §6 dynamic controller it needs no latency job —
// any mix partitions by measured utility — and unlike the biased
// search it needs no offline sweep.
type utilityPolicy struct {
	// MinWays is the floor every job is granted before utility-driven
	// assignment of the remainder.
	MinWays int
	// SampleShift is log2 of the UMON set-sampling stride.
	SampleShift uint
	// Decay ages the utility history each interval (UCP halves its
	// counters for the same reason): the allocator bids with
	// aged + fresh-interval hits, so a job whose demand faded stops
	// out-bidding a job whose demand just arrived.
	Decay float64
}

func init() {
	Register("utility", "online UCP-style lookahead greedy allocation from shadow-monitor utility curves",
		func(params json.RawMessage) (Policy, error) {
			var p struct {
				MinWays     *int     `json:"min_ways"`
				SampleShift *uint    `json:"sample_shift"`
				Decay       *float64 `json:"decay"`
			}
			if err := decodeParams(params, &p); err != nil {
				return nil, err
			}
			pol := utilityPolicy{MinWays: 1, SampleShift: 5, Decay: 0.5}
			if p.MinWays != nil {
				pol.MinWays = *p.MinWays
			}
			if p.SampleShift != nil {
				pol.SampleShift = *p.SampleShift
			}
			if p.Decay != nil {
				pol.Decay = *p.Decay
			}
			if pol.MinWays < 1 {
				return nil, fmt.Errorf("min_ways must be at least 1, got %d", pol.MinWays)
			}
			if pol.SampleShift > 12 {
				return nil, fmt.Errorf("sample_shift %d too coarse (max 12)", pol.SampleShift)
			}
			if pol.Decay < 0 || pol.Decay >= 1 {
				return nil, fmt.Errorf("decay must be in [0,1), got %v", pol.Decay)
			}
			return pol, nil
		})
}

func (utilityPolicy) Name() string { return "utility" }

func (p utilityPolicy) KeyParams() string {
	return "min=" + strconv.Itoa(p.MinWays) +
		",ss=" + strconv.FormatUint(uint64(p.SampleShift), 10) +
		",d=" + strconv.FormatFloat(p.Decay, 'g', -1, 64)
}

func (utilityPolicy) Online() bool            { return true }
func (p utilityPolicy) Instance() Policy      { return &utilityRun{utilityPolicy: p} }
func (p utilityPolicy) UMONSampleShift() uint { return p.SampleShift }

// utilityRun is one run's allocator state: the last cumulative curve
// per job (to difference into per-interval hits) and the aged utility
// each decision bids with.
type utilityRun struct {
	utilityPolicy
	prev [][]float64 // last cumulative UMON curve per job
	aged [][]float64 // decayed interval-hit history per job
}

func (r *utilityRun) Instance() Policy { return &utilityRun{utilityPolicy: r.utilityPolicy} }

// Decide on a live snapshot ages the history, folds in this interval's
// fresh hits, and allocates from the result.
func (r *utilityRun) Decide(s *Snapshot) []cache.WayMask {
	if !s.Live {
		return r.utilityPolicy.Decide(s)
	}
	if r.prev == nil {
		r.prev = make([][]float64, len(s.Jobs))
		r.aged = make([][]float64, len(s.Jobs))
	}
	for i := range s.Jobs {
		cur := s.Jobs[i].Utility
		if len(cur) == 0 {
			continue
		}
		if r.prev[i] == nil {
			r.prev[i] = make([]float64, len(cur))
			r.aged[i] = make([]float64, len(cur))
		}
		for w := range cur {
			delta := cur[w] - r.prev[i][w]
			if delta < 0 {
				delta = 0
			}
			r.aged[i][w] = r.aged[i][w]*r.Decay + delta
			r.prev[i][w] = cur[w]
		}
	}
	return r.allocate(s, r.aged)
}

func (p utilityPolicy) CheckMix(s *Snapshot) error {
	if len(s.Jobs) < 1 {
		return fmt.Errorf("the utility policy needs at least one job")
	}
	if s.Assoc > 0 && len(s.Jobs)*p.MinWays > s.Assoc {
		return fmt.Errorf("utility policy cannot give %d jobs %d way(s) each of %d",
			len(s.Jobs), p.MinWays, s.Assoc)
	}
	return nil
}

// Decide on the shared prototype only ever sees plan-time snapshots
// (the loop drives a fresh utilityRun): the initial split is the fair
// one, refined once monitor data arrives.
func (p utilityPolicy) Decide(s *Snapshot) []cache.WayMask {
	if s.Live {
		return p.Instance().Decide(s)
	}
	return fairPolicy{}.Decide(s)
}

// allocate runs lookahead greedy marginal utility over the given
// per-job curves: every job starts from the MinWays floor and the
// remaining ways go, one best block at a time, to the job whose curve
// yields the highest utility per way. When the curves carry no signal
// this interval the previous allocation is kept (a decision from
// silence would only thrash).
func (p utilityPolicy) allocate(s *Snapshot, curves [][]float64) []cache.WayMask {
	n := len(s.Jobs)
	total := 0.0
	for i := range curves {
		for _, v := range curves[i] {
			total += v
		}
	}
	if total <= 0 {
		return p.keepCurrent(s)
	}

	alloc := make([]int, n)
	balance := s.Assoc
	for i := range alloc {
		alloc[i] = p.MinWays
		balance -= p.MinWays
	}
	// Lookahead greedy (UCP Algorithm get_max_mu): a job whose curve is
	// locally flat but rises later can still win by taking a block of k
	// ways whose average utility beats everyone's single next way.
	for balance > 0 {
		best, bestK, bestMU := -1, 0, 0.0
		for i := range curves {
			u := curves[i]
			if len(u) == 0 {
				continue
			}
			base := curveAt(u, alloc[i])
			maxK := balance
			if rem := len(u) - alloc[i]; rem < maxK {
				maxK = rem
			}
			for k := 1; k <= maxK; k++ {
				mu := (curveAt(u, alloc[i]+k) - base) / float64(k)
				if mu > bestMU {
					best, bestK, bestMU = i, k, mu
				}
			}
		}
		if best < 0 {
			// No job gains anything from more ways: park the surplus on
			// the job with the most demand so masks still cover the
			// cache deterministically.
			best, bestK = busiest(curves), balance
		}
		alloc[best] += bestK
		balance -= bestK
	}

	masks := make([]cache.WayMask, n)
	first := 0
	for i, w := range alloc {
		masks[i] = cache.MaskRange(first, first+w)
		first += w
	}
	return masks
}

// keepCurrent re-issues each job's current allocation unchanged,
// falling back to the fair split if the current masks do not tile the
// cache (e.g. everything still unrestricted).
func (p utilityPolicy) keepCurrent(s *Snapshot) []cache.WayMask {
	sum := 0
	for i := range s.Jobs {
		sum += s.Jobs[i].Ways
	}
	if sum != s.Assoc {
		return fairPolicy{}.Decide(s)
	}
	masks := make([]cache.WayMask, len(s.Jobs))
	first := 0
	for i := range s.Jobs {
		w := s.Jobs[i].Ways
		masks[i] = cache.MaskRange(first, first+w)
		first += w
	}
	return masks
}

// busiest returns the job with the most sampled utility (ties to the
// lowest index), the deterministic sink for surplus ways.
func busiest(curves [][]float64) int {
	best, bestV := 0, -1.0
	for i := range curves {
		v := 0.0
		if u := curves[i]; len(u) > 0 {
			v = u[len(u)-1]
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// curveAt reads the cumulative curve at w ways (0 ways = 0 hits).
func curveAt(u []float64, w int) float64 {
	if w <= 0 {
		return 0
	}
	if w > len(u) {
		w = len(u)
	}
	return u[w-1]
}
