package partition

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cache"
)

// JobView is one job of a mix as a partition policy sees it: the static
// shape at plan time, plus live interval counters when the policy is
// consulted during a run.
type JobView struct {
	// App names the job's application.
	App string
	// Latency marks the latency-critical job (the scenario layer's
	// latency role, the pair shape's foreground).
	Latency bool
	// Declared is the job's explicitly declared way range [first, lim)
	// (the explicit policy's input; 0,0 = none).
	Declared [2]int
	// Ways is the job's current allocation in ways (live snapshots).
	Ways int
	// MPKI / Instructions are the job's interval counter readings
	// (live snapshots only; zero at plan time).
	MPKI         float64
	Instructions float64
	// Utility is the job's cumulative marginal-utility curve —
	// Utility[w-1] estimates the demand hits w ways would have served —
	// populated only for UtilityConsumer policies during a run.
	Utility []float64
}

// Snapshot is the state a policy decides from. At plan time (and at
// attach, before the run starts) Live is false and only the static
// shape is populated; the decision loop then delivers a live snapshot
// at every sampling interval.
type Snapshot struct {
	// Now is the simulated time of the decision (live snapshots).
	Now float64
	// Assoc is the LLC associativity; 0 at validate time, when the
	// platform is not yet known.
	Assoc int
	// Live distinguishes interval decisions (true) from plan-time and
	// attach-time decisions (false).
	Live bool
	Jobs []JobView
}

// latencyIndex returns the index of the single latency job, or -1.
func (s *Snapshot) latencyIndex() int {
	at := -1
	for i := range s.Jobs {
		if s.Jobs[i].Latency {
			if at >= 0 {
				return -1
			}
			at = i
		}
	}
	return at
}

// Policy is a registered way-partitioning scheme — the extension point
// the scenario, fleet, experiment, and core layers all dispatch
// through. A policy is identified by its Name and canonical KeyParams;
// together (plus the sampling interval, for online policies) they form
// the RunKey folded into engine memo keys, so results can never alias
// across policies or parameterizations.
type Policy interface {
	// Name is the registry key and the spelling used in scenario files
	// and CLI flags.
	Name() string
	// KeyParams renders the policy's parameters canonically for memo
	// keys ("" for a parameterless policy). Equal configurations must
	// render equal strings; distinct configurations must not.
	KeyParams() string
	// Online reports whether the policy monitors the run: online
	// policies are re-consulted by the decision loop at every sampling
	// interval, offline policies decide once from the mix shape.
	Online() bool
	// CheckMix validates the policy against a mix shape (s.Live is
	// false; s.Assoc may be 0 when the platform is not yet known).
	CheckMix(s *Snapshot) error
	// Decide returns one LLC way mask per job (the zero mask means the
	// full cache). Offline policies must be pure functions of the
	// snapshot; online policies may keep per-run state across calls.
	Decide(s *Snapshot) []cache.WayMask
	// Instance returns the value to drive one run with: offline
	// policies return themselves, online policies a fresh per-run
	// state. Registered policies are shared and must stay immutable.
	Instance() Policy
}

// Searcher is implemented by policies whose decision needs measured
// candidate runs (the biased exhaustive search): the run layer sweeps
// every latency-vs-rest split through the engine and the policy picks
// the winner.
type Searcher interface {
	Policy
	// Pick returns the winning candidate's index.
	Pick(cands []Candidate) int
}

// UtilityConsumer is implemented by online policies whose Decide reads
// JobView.Utility; the decision loop attaches a shadow utility monitor
// (perfmon.UtilitySet) per job for them.
type UtilityConsumer interface {
	Policy
	// UMONSampleShift is log2 of the monitor's set-sampling stride.
	UMONSampleShift() uint
}

// Factory builds a configured policy from a scenario file's params
// block (nil when absent). Factories must reject unknown fields so
// typos in scenario files fail loudly.
type Factory func(params json.RawMessage) (Policy, error)

type registration struct {
	factory Factory
	about   string
}

var registry = map[string]registration{}

// Register adds a policy factory under name. It panics on a duplicate
// name — policies register from init functions, and two packages
// claiming one name is a programming error that must not be silently
// resolved by load order.
func Register(name, about string, f Factory) {
	if name == "" || f == nil {
		panic("partition: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic("partition: duplicate policy registration " + strconv.Quote(name))
	}
	registry[name] = registration{factory: f, about: about}
}

// New builds the named policy with the given params (nil = defaults).
func New(name string, params json.RawMessage) (Policy, error) {
	reg, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("partition: unknown partition policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	p, err := reg.factory(params)
	if err != nil {
		return nil, fmt.Errorf("partition: policy %s: %w", name, err)
	}
	return p, nil
}

// MustNew is New for statically known names (experiment drivers).
func MustNew(name string, params json.RawMessage) Policy {
	p, err := New(name, params)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// Names lists the registered policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// About returns the registered one-line description of a policy.
func About(name string) string { return registry[name].about }

// StaticPolicies returns the three §5.2 static schemes in the paper's
// presentation order, with default parameters.
func StaticPolicies() []Policy {
	return []Policy{MustNew("shared", nil), MustNew("fair", nil), MustNew("biased", nil)}
}

// RunKey renders the canonical engine memo-key fragment identifying an
// online policy run: name, parameters, sampling interval, and the
// latency-role vector. The roles matter because they are a decision
// input the mix's own key fields do not carry — two mixes identical in
// every job field but with the latency role on different jobs monitor
// differently and must not share a cache entry. Feeding RunKey into
// the spec key (sched.MixSpec.PolicyKey) is what lets
// controller-driven runs be memoized and disk-cached without ever
// aliasing across policies, parameterizations, or role assignments.
func RunKey(p Policy, intervalSeconds float64, latency []bool) string {
	buf := make([]byte, 0, 64)
	buf = append(buf, p.Name()...)
	buf = append(buf, '{')
	buf = append(buf, p.KeyParams()...)
	buf = append(buf, "}@"...)
	buf = strconv.AppendFloat(buf, intervalSeconds, 'g', -1, 64)
	buf = append(buf, "/lat"...)
	for _, l := range latency {
		if l {
			buf = append(buf, '1')
		} else {
			buf = append(buf, '0')
		}
	}
	return string(buf)
}

// ValidateMasks checks a Decide result against the mix: one mask per
// job, each either zero (full cache) or a non-empty subset of the
// cache's ways. It is the mask-side analogue of machine.ValidateSlots
// for placements; the decision loop and the policy fuzz test both run
// every decision through it.
func ValidateMasks(assoc, jobs int, masks []cache.WayMask) error {
	if len(masks) != jobs {
		return fmt.Errorf("partition: decision returned %d masks for %d jobs", len(masks), jobs)
	}
	full := cache.FullMask(assoc)
	for i, m := range masks {
		if m == 0 {
			continue
		}
		if m&^full != 0 {
			return fmt.Errorf("partition: job %d mask %s exceeds the %d-way LLC", i, m, assoc)
		}
	}
	return nil
}

// RangeOfMask converts a contiguous way mask to its [first, lim)
// range. The zero mask is the full cache (0, 0). ok is false for a
// non-contiguous mask, which has no range form.
func RangeOfMask(m cache.WayMask) (first, lim int, ok bool) {
	if m == 0 {
		return 0, 0, true
	}
	first = bits.TrailingZeros32(uint32(m))
	lim = 32 - bits.LeadingZeros32(uint32(m))
	if cache.MaskRange(first, lim) != m {
		return 0, 0, false
	}
	return first, lim, true
}

// PairWays renders an offline policy's decision for the canonical
// foreground/background pair as (fgWays, bgWays) counts, (0, 0)
// meaning a fully shared cache — the shape sched.PairSpec takes.
func PairWays(p Policy, assoc int) (fgWays, bgWays int) {
	snap := &Snapshot{Assoc: assoc, Jobs: []JobView{{Latency: true}, {}}}
	masks := p.Decide(snap)
	if err := ValidateMasks(assoc, 2, masks); err != nil {
		panic(err.Error())
	}
	if masks[0] == 0 && masks[1] == 0 {
		return 0, 0
	}
	return masks[0].Count(), masks[1].Count()
}

// splitMasks is the canonical latency-vs-rest split: the latency job
// (index fg) replaces in ways [0, w), every other job in [w, assoc).
func splitMasks(n, fg, w, assoc int) []cache.WayMask {
	masks := make([]cache.WayMask, n)
	fgMask := cache.MaskFirstN(w)
	bgMask := cache.MaskRange(w, assoc)
	for i := range masks {
		if i == fg {
			masks[i] = fgMask
		} else {
			masks[i] = bgMask
		}
	}
	return masks
}
