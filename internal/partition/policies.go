package partition

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cache"
)

// decodeParams unmarshals a params block into dst, rejecting unknown
// fields so typos in scenario files fail loudly. A nil/empty block
// leaves dst at its defaults.
func decodeParams(params json.RawMessage, dst any) error {
	if len(params) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

func init() {
	Register("shared", "unpartitioned LLC: every job may replace in all ways (§5.2)",
		func(params json.RawMessage) (Policy, error) {
			if err := decodeParams(params, &struct{}{}); err != nil {
				return nil, err
			}
			return sharedPolicy{}, nil
		})
	Register("fair", "even static way split across all jobs (§5.2)",
		func(params json.RawMessage) (Policy, error) {
			if err := decodeParams(params, &struct{}{}); err != nil {
				return nil, err
			}
			return fairPolicy{}, nil
		})
	Register("explicit", "per-job declared way ranges, verbatim",
		func(params json.RawMessage) (Policy, error) {
			if err := decodeParams(params, &struct{}{}); err != nil {
				return nil, err
			}
			return explicitPolicy{}, nil
		})
	Register("biased", "exhaustive uneven-split search protecting the latency job (§5.2)",
		func(params json.RawMessage) (Policy, error) {
			var p struct {
				Rule string `json:"rule"`
			}
			if err := decodeParams(params, &p); err != nil {
				return nil, err
			}
			switch p.Rule {
			case "", "background":
				return biasedPolicy{}, nil
			case "foreground":
				return biasedPolicy{protective: true}, nil
			default:
				return nil, fmt.Errorf("unknown rule %q (want background or foreground)", p.Rule)
			}
		})
}

// sharedPolicy leaves the LLC unpartitioned.
type sharedPolicy struct{}

func (sharedPolicy) Name() string             { return "shared" }
func (sharedPolicy) KeyParams() string        { return "" }
func (sharedPolicy) Online() bool             { return false }
func (sharedPolicy) CheckMix(*Snapshot) error { return nil }
func (p sharedPolicy) Instance() Policy       { return p }
func (sharedPolicy) Decide(s *Snapshot) []cache.WayMask {
	return make([]cache.WayMask, len(s.Jobs)) // all zero: full cache
}

// fairPolicy splits the ways evenly across all jobs (earliest jobs
// absorb the remainder, via SplitWays).
type fairPolicy struct{}

func (fairPolicy) Name() string       { return "fair" }
func (fairPolicy) KeyParams() string  { return "" }
func (fairPolicy) Online() bool       { return false }
func (p fairPolicy) Instance() Policy { return p }

func (fairPolicy) CheckMix(s *Snapshot) error {
	if s.Assoc > 0 && len(s.Jobs) > s.Assoc {
		return fmt.Errorf("fair split of %d ways across %d jobs (at most one way each)",
			s.Assoc, len(s.Jobs))
	}
	return nil
}

func (fairPolicy) Decide(s *Snapshot) []cache.WayMask {
	masks := make([]cache.WayMask, len(s.Jobs))
	for i, r := range SplitWays(s.Assoc, len(s.Jobs)) {
		masks[i] = cache.MaskRange(r[0], r[1])
	}
	return masks
}

// explicitPolicy applies each job's declared way range verbatim.
type explicitPolicy struct{}

func (explicitPolicy) Name() string       { return "explicit" }
func (explicitPolicy) KeyParams() string  { return "" }
func (explicitPolicy) Online() bool       { return false }
func (p explicitPolicy) Instance() Policy { return p }

func (explicitPolicy) CheckMix(s *Snapshot) error {
	for i := range s.Jobs {
		d := s.Jobs[i].Declared
		if d == [2]int{} {
			continue
		}
		if d[0] < 0 || d[0] >= d[1] || (s.Assoc > 0 && d[1] > s.Assoc) {
			return fmt.Errorf("job %s: way range [%d,%d) invalid for a %d-way LLC",
				s.Jobs[i].App, d[0], d[1], s.Assoc)
		}
	}
	return nil
}

func (explicitPolicy) Decide(s *Snapshot) []cache.WayMask {
	masks := make([]cache.WayMask, len(s.Jobs))
	for i := range s.Jobs {
		if d := s.Jobs[i].Declared; d != [2]int{} {
			masks[i] = cache.MaskRange(d[0], d[1])
		}
	}
	return masks
}

// biasedPolicy is the exhaustive §5.2 search: the latency job gets w
// ways, every other job shares the remainder, and the run layer sweeps
// w while the policy picks the winner. The default rule is the Figure 9
// criterion (minimum latency-job degradation, ties broken by co-runner
// throughput); protective selects the Figure 13 rule (ties broken
// toward the larger latency share), the fleet's co-location check.
type biasedPolicy struct {
	protective bool
}

func (biasedPolicy) Name() string { return "biased" }
func (p biasedPolicy) KeyParams() string {
	if p.protective {
		return "rule=foreground"
	}
	return ""
}
func (biasedPolicy) Online() bool       { return false }
func (p biasedPolicy) Instance() Policy { return p }

func (biasedPolicy) CheckMix(s *Snapshot) error {
	return needOneLatency("biased", s)
}

// Decide at plan time leaves the cache whole: the split is found by the
// measured sweep and selected through Pick.
func (biasedPolicy) Decide(s *Snapshot) []cache.WayMask {
	return make([]cache.WayMask, len(s.Jobs))
}

// Pick selects the winning sweep candidate under the configured rule.
func (p biasedPolicy) Pick(cands []Candidate) int {
	if p.protective {
		return PickForForeground(cands)
	}
	return PickBiased(cands)
}

// needOneLatency is the shape rule the latency-centric policies share.
func needOneLatency(name string, s *Snapshot) error {
	n := 0
	for i := range s.Jobs {
		if s.Jobs[i].Latency {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("the %s policy needs exactly one latency job, got %d", name, n)
	}
	return nil
}
