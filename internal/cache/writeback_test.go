package cache

import (
	"testing"

	"repro/internal/rng"
)

// Regression test for a dropped-writeback bug: the demand path once
// used allocate-on-miss Access for L1/L2, whose evicted dirty victim
// was silently discarded. Dirty data must always either stay resident
// or generate DRAM write traffic.
func TestNoDirtyDataLost(t *testing.T) {
	h := testHierarchy()
	r := rng.New(99)
	// Write a small set of lines, then churn with clean reads until the
	// dirty lines have been displaced through every level.
	dirty := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, la := range dirty {
		h.Access(0, la, true, false)
	}
	for i := 0; i < 30000; i++ {
		h.Access(0, 1000+r.Uint64n(4096), false, false)
	}
	var writes uint64
	for c := 0; c < 2; c++ {
		writes += h.CoreStats(c).DRAMWriteBytes
	}
	resident := 0
	for _, la := range dirty {
		if h.L1D(0).Probe(la) || h.L2(0).Probe(la) || h.llc.Probe(la) {
			resident++
		}
	}
	if writes == 0 && resident < len(dirty) {
		t.Fatalf("dirty lines lost: %d resident, %d DRAM write bytes", resident, writes)
	}
	// With 30k displacing accesses, at least some dirty data must have
	// been forced all the way out.
	if writes == 0 {
		t.Fatal("no writeback traffic after heavy displacement of dirty lines")
	}
}

// The L1 demand-hit path must also preserve dirtiness across the
// L1→L2 writeback cascade when the dirty line is displaced by a fill.
func TestL1VictimWritebackReachesL2(t *testing.T) {
	h := testHierarchy()
	h.Access(0, 100, true, false) // dirty in L1 (1KB, 2-way, 8 sets)
	// Displace line 100 from L1 with same-set fills (stride = numSets).
	sets := uint64(h.L1D(0).NumSets())
	for i := uint64(1); i <= 4; i++ {
		h.Access(0, 100+i*sets, false, false)
	}
	if h.L1D(0).Probe(100) {
		t.Skip("victim not displaced (associativity too generous)")
	}
	// The dirty bit must now live in L2 (or deeper): invalidating the
	// line from L2 should report dirty, or the LLC holds it dirty.
	if found, d := h.L2(0).Invalidate(100); found {
		if !d {
			t.Fatal("L1 dirty victim arrived clean in L2")
		}
		return
	}
	if found, d := h.llc.Invalidate(100); found && !d {
		t.Fatal("L1 dirty victim arrived clean in LLC")
	}
}

// Demand accesses that miss at L1/L2 must not double-allocate: the
// eviction counters should reflect single fills per level.
func TestNoDoubleAllocation(t *testing.T) {
	h := testHierarchy()
	// Touch N distinct lines once; each should fill each level once.
	const n = 8
	for i := uint64(0); i < n; i++ {
		h.Access(0, i, false, false)
	}
	l1 := h.L1D(0).Stats()
	if l1.Accesses != n || l1.Misses != n {
		t.Fatalf("L1 stats after %d cold accesses: %+v", n, l1)
	}
	if got := h.L1D(0).ValidLines(); got != n {
		t.Fatalf("%d lines resident in L1, want %d", got, n)
	}
	if got := h.L2(0).ValidLines(); got != n {
		t.Fatalf("%d lines resident in L2, want %d", got, n)
	}
}
