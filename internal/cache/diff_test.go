package cache

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// This file retains the pre-optimization array-of-structs cache as a
// reference model and replays randomized access streams through both
// implementations, asserting identical hit/miss/eviction sequences and
// statistics. The data-oriented layout (packed tags, per-set metadata
// bitmasks, policy-gated LRU stamps) must be observationally equivalent
// for every replacement policy and every way mask — the goldens catch
// aggregate drift, this catches it per access.

// refLine and refCache are the original implementation, kept verbatim
// (modulo renaming) as the executable specification.
type refLine struct {
	addr       uint64
	valid      bool
	dirty      bool
	mru        bool
	stamp      uint64
	prefetched bool
}

type refCache struct {
	cfg       Config
	numSets   int
	setMask   uint64
	lineShift uint
	lines     []refLine
	stats     Stats
	clock     uint64
	rndState  uint64
}

func newRefCache(cfg Config) *refCache {
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	numSets := linesTotal / cfg.Assoc
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &refCache{
		cfg:       cfg,
		numSets:   numSets,
		setMask:   uint64(numSets - 1),
		lineShift: shift,
		lines:     make([]refLine, linesTotal),
		rndState:  hashName(cfg.Name),
	}
}

func (c *refCache) nextRand() uint64 {
	c.rndState += 0x9e3779b97f4a7c15
	z := c.rndState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (c *refCache) setIndex(lineAddr uint64) int {
	if c.cfg.HashIndex {
		return int(((lineAddr * 0x9e3779b97f4a7c15) >> 21) & c.setMask)
	}
	return int(lineAddr & c.setMask)
}

func (c *refCache) set(idx int) []refLine {
	base := idx * c.cfg.Assoc
	return c.lines[base : base+c.cfg.Assoc]
}

func (c *refCache) touch(set []refLine, w int) {
	c.clock++
	set[w].stamp = c.clock
	set[w].mru = true
	for i := range set {
		if !set[i].mru {
			return
		}
	}
	for i := range set {
		set[i].mru = i == w
	}
}

func (c *refCache) lookup(set []refLine, lineAddr uint64) int {
	for w := range set {
		if set[w].valid && set[w].addr == lineAddr {
			return w
		}
	}
	return -1
}

func (c *refCache) victim(set []refLine, mask WayMask) int {
	first := -1
	for w := range set {
		if !mask.Has(w) {
			continue
		}
		if first < 0 {
			first = w
		}
		if !set[w].valid {
			return w
		}
	}
	switch c.cfg.Replacement {
	case ReplaceLRU:
		best := first
		for w := range set {
			if mask.Has(w) && set[w].stamp < set[best].stamp {
				best = w
			}
		}
		return best
	case ReplaceRandom:
		n := mask.Count()
		pick := int(c.nextRand() % uint64(n))
		for w := range set {
			if mask.Has(w) {
				if pick == 0 {
					return w
				}
				pick--
			}
		}
		return first
	default:
		for w := range set {
			if mask.Has(w) && !set[w].mru {
				return w
			}
		}
		return first
	}
}

func (c *refCache) Access(lineAddr uint64, write bool, mask WayMask) Result {
	c.stats.Accesses++
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		c.stats.Hits++
		wasPrefetched := set[w].prefetched
		if wasPrefetched {
			c.stats.PrefetchHits++
			set[w].prefetched = false
		}
		if write {
			set[w].dirty = true
		}
		c.touch(set, w)
		return Result{Hit: true, WasPrefetched: wasPrefetched}
	}
	c.stats.Misses++
	ev := c.fill(set, lineAddr, mask, write, false)
	return Result{Hit: false, Evicted: ev}
}

func (c *refCache) Lookup(lineAddr uint64, write bool) Result {
	c.stats.Accesses++
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		c.stats.Hits++
		wasPrefetched := set[w].prefetched
		if wasPrefetched {
			c.stats.PrefetchHits++
			set[w].prefetched = false
		}
		if write {
			set[w].dirty = true
		}
		c.touch(set, w)
		return Result{Hit: true, WasPrefetched: wasPrefetched}
	}
	c.stats.Misses++
	return Result{Hit: false}
}

func (c *refCache) Probe(lineAddr uint64) bool {
	set := c.set(c.setIndex(lineAddr))
	return c.lookup(set, lineAddr) >= 0
}

func (c *refCache) Fill(lineAddr uint64, mask WayMask, dirty, prefetch bool) Result {
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		if dirty {
			set[w].dirty = true
		}
		c.touch(set, w)
		return Result{Hit: true}
	}
	ev := c.fill(set, lineAddr, mask, dirty, prefetch)
	return Result{Hit: false, Evicted: ev}
}

func (c *refCache) fill(set []refLine, lineAddr uint64, mask WayMask, dirty, prefetch bool) Eviction {
	w := c.victim(set, mask)
	var ev Eviction
	if set[w].valid {
		ev = Eviction{LineAddr: set[w].addr, Dirty: set[w].dirty, Valid: true}
		c.stats.Evictions++
		if set[w].dirty {
			c.stats.Writebacks++
		}
	}
	set[w] = refLine{addr: lineAddr, valid: true, dirty: dirty, prefetched: prefetch}
	if prefetch {
		c.stats.PrefetchIns++
	}
	c.touch(set, w)
	return ev
}

func (c *refCache) MarkDirty(lineAddr uint64) bool {
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		set[w].dirty = true
		return true
	}
	return false
}

func (c *refCache) Invalidate(lineAddr uint64) (found, dirty bool) {
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		dirty = set[w].dirty
		set[w] = refLine{}
		c.stats.Invalidates++
		return true, dirty
	}
	return false, false
}

func (c *refCache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

func (c *refCache) OccupancyByWay() []int {
	occ := make([]int, c.cfg.Assoc)
	for s := 0; s < c.numSets; s++ {
		set := c.set(s)
		for w := range set {
			if set[w].valid {
				occ[w]++
			}
		}
	}
	return occ
}

// TestDifferentialVsReference drives both implementations with the same
// randomized operation stream for every replacement policy and a range
// of way masks (full, partitions, sparse, and mid-stream switches),
// asserting op-by-op identical results.
func TestDifferentialVsReference(t *testing.T) {
	const assoc = 8
	masks := []WayMask{
		FullMask(assoc),
		MaskRange(0, 4),
		MaskRange(4, 8),
		MaskRange(2, 7),
		WayMask(0b10101010),
		WayMask(0b00000001),
	}
	for _, pol := range []Replacement{ReplacePLRU, ReplaceLRU, ReplaceRandom} {
		for mi, mask := range masks {
			t.Run(fmt.Sprintf("%s/mask%d", pol, mi), func(t *testing.T) {
				cfg := Config{
					Name:        fmt.Sprintf("diff-%s-%d", pol, mi),
					SizeBytes:   16 << 10, // 32 sets × 8 ways: collisions happen fast
					Assoc:       assoc,
					LineBytes:   64,
					HashIndex:   mi%2 == 1, // alternate plain/hashed indexing
					Replacement: pol,
				}
				runDifferential(t, cfg, mask, masks)
			})
		}
	}
}

func runDifferential(t *testing.T, cfg Config, mask WayMask, switchPool []WayMask) {
	t.Helper()
	got := New(cfg)
	want := newRefCache(cfg)
	r := rng.NewNamed("diff/" + cfg.Name)

	const ops = 60000
	const addrSpace = 1 << 12 // ~16 lines per set: heavy conflict traffic
	for i := 0; i < ops; i++ {
		addr := r.Uint64n(addrSpace)
		write := r.Bool(0.3)
		if r.Bool(0.001) { // occasionally repartition mid-stream
			mask = switchPool[r.Intn(len(switchPool))]
		}
		switch op := r.Intn(100); {
		case op < 55: // demand access
			g, w := got.Access(addr, write, mask), want.Access(addr, write, mask)
			if g != w {
				t.Fatalf("op %d Access(%#x,%v,%s): got %+v want %+v", i, addr, write, mask, g, w)
			}
		case op < 75: // lookup without allocation
			g, w := got.Lookup(addr, write), want.Lookup(addr, write)
			if g != w {
				t.Fatalf("op %d Lookup(%#x,%v): got %+v want %+v", i, addr, write, g, w)
			}
		case op < 88: // prefetch/upper-level fill
			pf := r.Bool(0.5)
			if op < 82 && !want.Probe(addr) {
				// The absent-line fast path: FillMiss must equal Fill
				// whenever its precondition holds (the reference model
				// has no fast path — Fill on an absent line IS its
				// specification).
				g, w := got.FillMiss(addr, mask, write, pf), want.Fill(addr, mask, write, pf)
				if g != w {
					t.Fatalf("op %d FillMiss(%#x,%v,%v,%s): got %+v want %+v", i, addr, write, pf, mask, g, w)
				}
				continue
			}
			g, w := got.Fill(addr, mask, write, pf), want.Fill(addr, mask, write, pf)
			if g != w {
				t.Fatalf("op %d Fill(%#x,%v,%v,%s): got %+v want %+v", i, addr, write, pf, mask, g, w)
			}
		case op < 94: // back-invalidation
			gf, gd := got.Invalidate(addr)
			wf, wd := want.Invalidate(addr)
			if gf != wf || gd != wd {
				t.Fatalf("op %d Invalidate(%#x): got %v,%v want %v,%v", i, addr, gf, gd, wf, wd)
			}
		case op < 97: // writeback sink
			if g, w := got.MarkDirty(addr), want.MarkDirty(addr); g != w {
				t.Fatalf("op %d MarkDirty(%#x): got %v want %v", i, addr, g, w)
			}
		default: // non-destructive probe
			if g, w := got.Probe(addr), want.Probe(addr); g != w {
				t.Fatalf("op %d Probe(%#x): got %v want %v", i, addr, g, w)
			}
		}
	}

	if g, w := got.Stats(), want.stats; g != w {
		t.Fatalf("final stats diverged: got %+v want %+v", g, w)
	}
	if g, w := got.ValidLines(), want.ValidLines(); g != w {
		t.Fatalf("valid lines diverged: got %d want %d", g, w)
	}
	gOcc, wOcc := got.OccupancyByWay(), want.OccupancyByWay()
	for w := range gOcc {
		if gOcc[w] != wOcc[w] {
			t.Fatalf("occupancy of way %d diverged: got %d want %d", w, gOcc[w], wOcc[w])
		}
	}
}
