package cache

// UMON is a utility monitor in the UCP (utility-based cache
// partitioning) style: a shadow tag array covering a sampled subset of
// the LLC's sets, maintained with true LRU and *no* partitioning mask,
// counting demand hits per LRU stack position. Because stack position p
// only hits when at least p+1 ways are available, the cumulative hit
// counts estimate how many hits the monitored job would obtain at each
// possible way allocation — the marginal-utility curve the utility
// partition policy allocates from.
//
// A UMON is shadow-only: it observes the access stream and never
// touches the real cache arrays, so attaching one cannot change
// simulation results. Like the LLC itself (PR 4), tags are stored as a
// packed per-set []uint64 window scanned contiguously; at LLC geometry
// the window is small (assoc entries), so the MRU move is a short
// copy rather than pointer chasing.
type UMON struct {
	assoc     int
	setMask   uint64
	hashIndex bool
	sampleLow uint64 // set is sampled when si&sampleLow == 0
	shift     uint   // sampled set index = si >> shift

	tags  []uint64 // sampledSets*assoc, MRU-first within each set window
	size  []uint8  // valid entries per sampled set
	hits  []uint64 // demand hits per LRU stack position [0, assoc)
	acc   uint64   // sampled demand accesses
	short uint64   // sampled demand misses
}

// NewUMON builds a monitor for a cache with the given geometry,
// sampling every 2^sampleShift-th set. The monitored cache must have a
// power-of-two set count (guaranteed by New) at least as large as the
// sampling stride.
func NewUMON(cfg Config, sampleShift uint) *UMON {
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	numSets := linesTotal / cfg.Assoc
	sampled := numSets >> sampleShift
	if sampled < 1 {
		sampled = 1
		sampleShift = 0
	}
	return &UMON{
		assoc:     cfg.Assoc,
		setMask:   uint64(numSets - 1),
		hashIndex: cfg.HashIndex,
		sampleLow: uint64(1)<<sampleShift - 1,
		shift:     sampleShift,
		tags:      make([]uint64, sampled*cfg.Assoc),
		size:      make([]uint8, sampled),
		hits:      make([]uint64, cfg.Assoc),
	}
}

// setIndex mirrors Cache.setIndex so the monitor samples the same sets
// the monitored cache actually uses (including the hashed LLC index).
func (u *UMON) setIndex(lineAddr uint64) uint64 {
	if u.hashIndex {
		return ((lineAddr * 0x9e3779b97f4a7c15) >> 21) & u.setMask
	}
	return lineAddr & u.setMask
}

// Access observes one demand access. Hits record their LRU stack
// position and move the line to MRU; misses insert at MRU, displacing
// the LRU shadow entry.
func (u *UMON) Access(lineAddr uint64) {
	si := u.setIndex(lineAddr)
	if si&u.sampleLow != 0 {
		return
	}
	u.acc++
	base := int(si>>u.shift) * u.assoc
	n := int(u.size[si>>u.shift])
	w := u.tags[base : base+n]
	for p := 0; p < n; p++ {
		if w[p] == lineAddr {
			u.hits[p]++
			copy(w[1:p+1], w[:p])
			w[0] = lineAddr
			return
		}
	}
	u.short++
	if n < u.assoc {
		u.size[si>>u.shift]++
		n++
	}
	w = u.tags[base : base+n]
	copy(w[1:], w[:n-1])
	w[0] = lineAddr
}

// Hits returns the hit count per LRU stack position (a copy).
func (u *UMON) Hits() []uint64 {
	out := make([]uint64, len(u.hits))
	copy(out, u.hits)
	return out
}

// Curve writes the cumulative utility curve into dst (allocating when
// nil or short) and returns it: dst[w-1] is the estimated demand hits
// the monitored stream would have achieved with w ways. The counts are
// from the sampled sets only; callers comparing curves across monitors
// with equal sampling strides need no rescaling.
func (u *UMON) Curve(dst []float64) []float64 {
	if len(dst) < u.assoc {
		dst = make([]float64, u.assoc)
	}
	dst = dst[:u.assoc]
	sum := 0.0
	for w, h := range u.hits {
		sum += float64(h)
		dst[w] = sum
	}
	return dst
}

// Accesses returns the number of sampled demand accesses observed.
func (u *UMON) Accesses() uint64 { return u.acc }

// Misses returns the number of sampled demand misses (stack distance
// beyond the monitored associativity).
func (u *UMON) Misses() uint64 { return u.short }
