package cache

import "testing"

func smallCache(t *testing.T) *Cache {
	t.Helper()
	// 4 sets × 4 ways × 64 B lines.
	return New(Config{Name: "test", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64})
}

func TestNewGeometry(t *testing.T) {
	c := smallCache(t)
	if c.NumSets() != 4 {
		t.Fatalf("sets = %d, want 4", c.NumSets())
	}
	if c.LineShift() != 6 {
		t.Fatalf("line shift = %d, want 6", c.LineShift())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	cases := []Config{
		{Name: "badline", SizeBytes: 1024, Assoc: 4, LineBytes: 48},
		{Name: "badassoc", SizeBytes: 1024, Assoc: 0, LineBytes: 64},
		{Name: "badsets", SizeBytes: 3 * 64 * 4, Assoc: 4, LineBytes: 64}, // 3 sets
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	if r := c.Access(100, false, full); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(100, false, full); !r.Hit {
		t.Fatal("second access missed")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteMakesDirtyAndWriteback(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	// Addresses mapping to set 0: line addresses ≡ 0 mod 4.
	c.Access(0, true, full) // dirty
	for i := uint64(1); i <= 4; i++ {
		r := c.Access(i*4, false, full)
		if r.Evicted.Valid && r.Evicted.LineAddr == 0 {
			if !r.Evicted.Dirty {
				t.Fatal("evicted dirty line not flagged dirty")
			}
			return
		}
	}
	t.Fatal("line 0 was never evicted from a 4-way set after 4 conflicting fills")
}

func TestPLRUVictimPrefersInvalid(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	c.Access(0, false, full)
	c.Access(4, false, full) // same set (sets=4, stride 4)
	r := c.Access(8, false, full)
	if r.Evicted.Valid {
		t.Fatal("fill evicted a line while invalid ways remained")
	}
}

func TestPLRUProtectsMostRecentlyUsed(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	// Fill set 0 with 4 lines.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*4, false, full)
	}
	// Touch line 0 repeatedly, then cause one eviction.
	c.Access(0, false, full)
	r := c.Access(16, false, full)
	if !r.Evicted.Valid {
		t.Fatal("expected an eviction from a full set")
	}
	if r.Evicted.LineAddr == 0 {
		t.Fatal("bit-PLRU evicted the most recently touched line")
	}
	if !c.Probe(0) {
		t.Fatal("MRU line was displaced")
	}
}

func TestWayMaskRestrictsVictims(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	// Fill set 0 completely with owner lines.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*4, false, full)
	}
	// An intruder restricted to way 0 may only displace whatever sits in
	// way 0, no matter how many fills it performs.
	intruder := MaskFirstN(1)
	evictions := map[uint64]bool{}
	for i := uint64(10); i < 30; i++ {
		r := c.Access(i*4, false, intruder)
		if r.Evicted.Valid {
			evictions[r.Evicted.LineAddr] = true
		}
	}
	// Of the four original lines, at most one (the way-0 resident) may
	// have been displaced.
	lost := 0
	for i := uint64(0); i < 4; i++ {
		if !c.Probe(i * 4) {
			lost++
		}
	}
	if lost > 1 {
		t.Fatalf("mask-restricted intruder displaced %d resident lines", lost)
	}
}

func TestHitsIgnoreMask(t *testing.T) {
	c := smallCache(t)
	// Fill via way 3 only.
	c.Access(0, false, MaskRange(3, 4))
	// A requester with a disjoint mask still hits.
	if r := c.Access(0, false, MaskFirstN(1)); !r.Hit {
		t.Fatal("lookup should hit in any way regardless of mask")
	}
}

func TestAccessEmptyMaskPanics(t *testing.T) {
	c := smallCache(t)
	defer func() {
		if recover() == nil {
			t.Fatal("fill with empty mask did not panic")
		}
	}()
	c.Access(0, false, 0)
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	c.Access(0, true, full)
	found, dirty := c.Invalidate(0)
	if !found || !dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, true)", found, dirty)
	}
	if c.Probe(0) {
		t.Fatal("line survived invalidation")
	}
	if found, _ := c.Invalidate(0); found {
		t.Fatal("double invalidation found the line")
	}
}

func TestMarkDirty(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	c.Access(0, false, full)
	if !c.MarkDirty(0) {
		t.Fatal("MarkDirty missed a present line")
	}
	if c.MarkDirty(999) {
		t.Fatal("MarkDirty hit an absent line")
	}
	if _, dirty := c.Invalidate(0); !dirty {
		t.Fatal("MarkDirty did not stick")
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	c.Fill(0, full, false, true)
	st := c.Stats()
	if st.PrefetchIns != 1 {
		t.Fatalf("PrefetchIns = %d", st.PrefetchIns)
	}
	r := c.Access(0, false, full)
	if !r.Hit || !r.WasPrefetched {
		t.Fatalf("first demand use of prefetched line: %+v", r)
	}
	r = c.Access(0, false, full)
	if r.WasPrefetched {
		t.Fatal("second demand use still flagged prefetched")
	}
	if c.Stats().PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d", c.Stats().PrefetchHits)
	}
}

func TestFillOnPresentLineRefreshes(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	c.Access(0, false, full)
	r := c.Fill(0, full, true, false)
	if !r.Hit {
		t.Fatal("fill of resident line should report hit")
	}
	if _, dirty := c.Invalidate(0); !dirty {
		t.Fatal("dirty fill on present line did not mark dirty")
	}
}

func TestOccupancyAndFlush(t *testing.T) {
	c := smallCache(t)
	full := FullMask(4)
	for i := uint64(0); i < 8; i++ {
		c.Access(i, false, full)
	}
	if got := c.ValidLines(); got != 8 {
		t.Fatalf("ValidLines = %d, want 8", got)
	}
	occ := c.OccupancyByWay()
	total := 0
	for _, n := range occ {
		total += n
	}
	if total != 8 {
		t.Fatalf("occupancy sums to %d", total)
	}
	c.FlushAll()
	if c.ValidLines() != 0 {
		t.Fatal("FlushAll left valid lines")
	}
}

func TestHashIndexSpreadsStrides(t *testing.T) {
	// With plain indexing, a stride of numSets maps everything to one
	// set; hashed indexing should spread such a stride.
	plain := New(Config{Name: "p", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64})
	hashed := New(Config{Name: "h", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64, HashIndex: true})
	sets := plain.NumSets()
	seenPlain := map[int]bool{}
	seenHashed := map[int]bool{}
	for i := 0; i < 64; i++ {
		la := uint64(i * sets) // pathological stride
		seenPlain[plain.setIndex(la)] = true
		seenHashed[hashed.setIndex(la)] = true
	}
	if len(seenPlain) != 1 {
		t.Fatalf("plain index spread a numSets stride over %d sets", len(seenPlain))
	}
	if len(seenHashed) < sets/4 {
		t.Fatalf("hashed index only reached %d of %d sets", len(seenHashed), sets)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := smallCache(t)
	c.Access(0, false, FullMask(4))
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Probe(0) {
		t.Fatal("ResetStats disturbed contents")
	}
}
