package cache

import (
	"testing"

	"repro/internal/rng"
)

func nonInclusiveHierarchy() *Hierarchy {
	cfg := HierarchyConfig{
		Cores:           2,
		LineBytes:       64,
		L1I:             Config{Name: "L1I", SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64},
		L1D:             Config{Name: "L1D", SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64},
		L2:              Config{Name: "L2", SizeBytes: 2 << 10, Assoc: 4, LineBytes: 64},
		LLC:             Config{Name: "LLC", SizeBytes: 8 << 10, Assoc: 4, LineBytes: 64, HashIndex: true},
		NonInclusiveLLC: true,
	}
	return NewHierarchy(cfg)
}

func TestNonInclusiveSkipsBackInvalidation(t *testing.T) {
	h := nonInclusiveHierarchy()
	h.Access(0, 42, false, false)
	r := rng.New(5)
	for i := 0; i < 5000 && h.LLC().Probe(42); i++ {
		h.Access(1, 1000+r.Uint64n(4096), false, false)
	}
	if h.LLC().Probe(42) {
		t.Skip("victim never displaced from the LLC")
	}
	// Private copies must survive the LLC eviction.
	if !h.L1D(0).Probe(42) && !h.L2(0).Probe(42) {
		t.Fatal("non-inclusive LLC still back-invalidated private copies")
	}
	if h.CoreStats(0).BackInvalidations != 0 {
		t.Fatal("back-invalidations counted in non-inclusive mode")
	}
}

func TestNonInclusiveCheckInclusionIsNoop(t *testing.T) {
	h := nonInclusiveHierarchy()
	r := rng.New(6)
	for i := 0; i < 10000; i++ {
		h.Access(r.Intn(2), r.Uint64n(4096), r.Bool(0.3), false)
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatalf("CheckInclusion must be a no-op when non-inclusive: %v", err)
	}
}

func TestNonInclusiveDirtyLLCVictimStillWrittenBack(t *testing.T) {
	h := nonInclusiveHierarchy()
	// Dirty a line all the way down to the LLC: write, then force the
	// L1/L2 copies out so the writeback lands in the LLC.
	h.Access(0, 42, true, false) // the only dirty line in the run
	r := rng.New(8)
	for i := 0; i < 3000; i++ {
		h.Access(0, 5000+r.Uint64n(64), false, false) // churn core 0's L1/L2
	}
	for i := 0; i < 8000 && h.LLC().Probe(42); i++ {
		h.Access(1, 100000+r.Uint64n(8192), false, false)
	}
	// All other traffic is clean reads, so the only possible DRAM write
	// is line 42's writeback. The dirty data must either have reached
	// DRAM or still be resident somewhere on chip.
	writes := h.CoreStats(0).DRAMWriteBytes + h.CoreStats(1).DRAMWriteBytes
	resident := h.L1D(0).Probe(42) || h.L2(0).Probe(42) || h.LLC().Probe(42)
	if writes == 0 && !resident {
		t.Fatal("dirty line vanished without reaching DRAM")
	}
}
