package cache

import (
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	if m := FullMask(12); m.Count() != 12 {
		t.Fatalf("FullMask(12).Count() = %d", m.Count())
	}
	if m := FullMask(1); m != 1 {
		t.Fatalf("FullMask(1) = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FullMask(0) did not panic")
		}
	}()
	FullMask(0)
}

func TestMaskRange(t *testing.T) {
	m := MaskRange(4, 8)
	if m.Count() != 4 {
		t.Fatalf("count = %d", m.Count())
	}
	for w := 0; w < 12; w++ {
		want := w >= 4 && w < 8
		if m.Has(w) != want {
			t.Fatalf("Has(%d) = %v", w, m.Has(w))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty range did not panic")
		}
	}()
	MaskRange(5, 5)
}

func TestMaskOverlaps(t *testing.T) {
	a := MaskFirstN(6)
	b := MaskRange(6, 12)
	if a.Overlaps(b) {
		t.Fatal("disjoint masks report overlap")
	}
	if !a.Overlaps(MaskRange(5, 7)) {
		t.Fatal("overlapping masks report disjoint")
	}
}

func TestMaskPartitionProperty(t *testing.T) {
	// For any split point, the low and high masks are disjoint and
	// cover the full mask exactly — the invariant the biased policy
	// relies on.
	if err := quick.Check(func(raw uint8) bool {
		assoc := 12
		w := int(raw)%(assoc-1) + 1 // 1..11
		lo := MaskFirstN(w)
		hi := MaskRange(w, assoc)
		return !lo.Overlaps(hi) &&
			lo.Count()+hi.Count() == assoc &&
			(lo|hi) == FullMask(assoc)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskString(t *testing.T) {
	if s := MaskFirstN(2).String(); s != "11" {
		t.Fatalf("String = %q", s)
	}
	if s := MaskRange(2, 3).String(); s != "100" {
		t.Fatalf("String = %q", s)
	}
	if s := WayMask(0).String(); s != "0" {
		t.Fatalf("zero mask String = %q", s)
	}
}
