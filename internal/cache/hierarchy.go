package cache

import (
	"fmt"
	"math/bits"
)

// Level identifies where in the hierarchy a demand access was satisfied.
type Level int

// Hierarchy levels, in lookup order.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelLLC
	LevelMem
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// HierarchyConfig describes the per-core private caches and the shared
// LLC. Defaults (via SandyBridgeHierarchy) model the paper's platform.
type HierarchyConfig struct {
	Cores     int
	LineBytes int
	L1I, L1D  Config
	L2        Config
	LLC       Config
	// NonInclusiveLLC disables inclusion enforcement: LLC evictions no
	// longer back-invalidate private caches. The prototype's LLC is
	// inclusive; this flag exists for the ablation study quantifying
	// how much of the small-allocation pathology (§3.2) comes from
	// inclusion victims.
	NonInclusiveLLC bool
}

// SandyBridgeHierarchy returns the hierarchy of the prototype: per-core
// 32 KB 8-way L1I and L1D, 256 KB 8-way non-inclusive L2, and a shared
// 6 MB 12-way inclusive LLC with hashed indexing.
func SandyBridgeHierarchy(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores:     cores,
		LineBytes: 64,
		L1I:       Config{Name: "L1I", SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64},
		L1D:       Config{Name: "L1D", SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64},
		L2:        Config{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineBytes: 64},
		LLC:       Config{Name: "LLC", SizeBytes: 6 << 20, Assoc: 12, LineBytes: 64, HashIndex: true},
	}
}

// CoreStats aggregates per-core demand traffic through the hierarchy.
// LLCAccesses counts L2 misses (the paper's "LLC accesses per
// kilo-instruction" metric); LLCMisses counts demand fetches from DRAM.
type CoreStats struct {
	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2Accesses, L2Misses   uint64
	LLCAccesses, LLCMisses uint64
	LLCPrefetchFills       uint64 // prefetch lines fetched from DRAM into the LLC
	DRAMReadBytes          uint64
	DRAMWriteBytes         uint64
	BackInvalidations      uint64 // lines this core lost to LLC inclusion victims
}

// AccessOutcome reports one demand access's effect: the level that
// satisfied it and the DRAM traffic it generated (fill reads plus any
// dirty writebacks cascading out of the LLC).
type AccessOutcome struct {
	Level          Level
	DRAMReadBytes  int
	DRAMWriteBytes int
	// HitPrefetched reports that the satisfying line was brought in by a
	// prefetcher and this is its first demand use. The timing model uses
	// it to charge late-prefetch penalties under bandwidth contention.
	HitPrefetched bool
}

// Hierarchy is the full simulated cache system: private L1I/L1D/L2 per
// core and one shared, inclusive, way-partitioned LLC.
type Hierarchy struct {
	cfg   HierarchyConfig
	l1i   []*Cache
	l1d   []*Cache
	l2    []*Cache
	llc   *Cache
	masks []WayMask // per-core LLC replacement masks ("MSR" block)
	stats []CoreStats
	umons []*UMON // per-core shadow utility monitors (nil until attached)

	l1Full, l2Full WayMask // precomputed full masks for the private fills
}

// NewHierarchy builds the hierarchy with every core granted the full LLC
// mask (the machine's power-on state).
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores <= 0 {
		panic("cache: hierarchy needs at least one core")
	}
	h := &Hierarchy{
		cfg:    cfg,
		llc:    New(cfg.LLC),
		masks:  make([]WayMask, cfg.Cores),
		stats:  make([]CoreStats, cfg.Cores),
		l1Full: FullMask(cfg.L1D.Assoc),
		l2Full: FullMask(cfg.L2.Assoc),
	}
	full := FullMask(cfg.LLC.Assoc)
	for c := 0; c < cfg.Cores; c++ {
		l1i := cfg.L1I
		l1i.Name = fmt.Sprintf("L1I.%d", c)
		l1d := cfg.L1D
		l1d.Name = fmt.Sprintf("L1D.%d", c)
		l2 := cfg.L2
		l2.Name = fmt.Sprintf("L2.%d", c)
		h.l1i = append(h.l1i, New(l1i))
		h.l1d = append(h.l1d, New(l1d))
		h.l2 = append(h.l2, New(l2))
		h.masks[c] = full
	}
	return h
}

// Cores returns the core count.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// LineBytes returns the line size shared by all levels.
func (h *Hierarchy) LineBytes() int { return h.cfg.LineBytes }

// LLC exposes the shared cache (read-only use intended: stats, occupancy).
func (h *Hierarchy) LLC() *Cache { return h.llc }

// L2 exposes core c's private L2.
func (h *Hierarchy) L2(c int) *Cache { return h.l2[c] }

// L1D exposes core c's private L1 data cache.
func (h *Hierarchy) L1D(c int) *Cache { return h.l1d[c] }

// L1I exposes core c's private L1 instruction cache.
func (h *Hierarchy) L1I(c int) *Cache { return h.l1i[c] }

// SetWayMask assigns core c's LLC replacement mask. Matching the
// prototype, no data moves or flushes: resident lines outside the new
// mask stay readable until another core's fill displaces them.
func (h *Hierarchy) SetWayMask(c int, m WayMask) {
	if m == 0 || m&^FullMask(h.cfg.LLC.Assoc) != 0 {
		panic(fmt.Sprintf("cache: invalid LLC way mask %s for core %d", m, c))
	}
	h.masks[c] = m
}

// WayMaskOf returns core c's current LLC replacement mask.
func (h *Hierarchy) WayMaskOf(c int) WayMask { return h.masks[c] }

// CoreStats returns a copy of core c's counters.
func (h *Hierarchy) CoreStats(c int) CoreStats { return h.stats[c] }

// AttachUMON installs a shadow utility monitor on core c's demand LLC
// accesses. Monitors only observe — cache state and statistics are
// unaffected — so attaching one never changes simulation results. A
// job spanning several cores attaches the same monitor to each, giving
// one aggregated curve per job.
func (h *Hierarchy) AttachUMON(c int, u *UMON) {
	if h.umons == nil {
		h.umons = make([]*UMON, h.cfg.Cores)
	}
	h.umons[c] = u
}

// ResetCoreStats zeroes per-core counters (cache contents are preserved,
// mirroring how performance counters are reprogrammed on live hardware).
func (h *Hierarchy) ResetCoreStats() {
	for i := range h.stats {
		h.stats[i] = CoreStats{}
	}
}

// Access performs one demand reference by core c. instr selects the L1I
// path; write marks lines dirty (write-back, write-allocate). The
// returned outcome carries the satisfying level and DRAM traffic.
func (h *Hierarchy) Access(c int, lineAddr uint64, write, instr bool) AccessOutcome {
	st := &h.stats[c]
	var l1 *Cache
	if instr {
		l1 = h.l1i[c]
		st.L1IAccesses++
	} else {
		l1 = h.l1d[c]
		st.L1DAccesses++
	}
	// Private levels are lookup-only on the demand path: allocation
	// happens via the fill helpers so every victim's writeback is
	// cascaded rather than dropped.
	if r := l1.Lookup(lineAddr, write); r.Hit {
		return AccessOutcome{Level: LevelL1, HitPrefetched: r.WasPrefetched}
	}
	if instr {
		st.L1IMisses++
	} else {
		st.L1DMisses++
	}

	out := AccessOutcome{}
	st.L2Accesses++
	l2 := h.l2[c]
	if r := l2.Lookup(lineAddr, false); r.Hit {
		out.Level = LevelL2
		out.HitPrefetched = r.WasPrefetched
		h.fillL1(c, l1, lineAddr, write, &out)
		return out
	}
	st.L2Misses++

	st.LLCAccesses++
	if h.umons != nil {
		if u := h.umons[c]; u != nil {
			u.Access(lineAddr)
		}
	}
	llcRes := h.llc.Access(lineAddr, false, h.masks[c])
	if llcRes.Hit {
		out.Level = LevelLLC
		out.HitPrefetched = llcRes.WasPrefetched
	} else {
		st.LLCMisses++
		out.Level = LevelMem
		out.DRAMReadBytes += h.cfg.LineBytes
		st.DRAMReadBytes += uint64(h.cfg.LineBytes)
		h.handleLLCEviction(llcRes.Evicted, &out, st)
	}

	// Fill the private levels on the way back.
	h.fillL2(c, lineAddr, &out, st)
	h.fillL1(c, l1, lineAddr, write, &out)
	return out
}

// fillL2 inserts lineAddr into core c's L2, cascading a dirty victim into
// the LLC (or DRAM if the LLC no longer holds it). Only the demand-miss
// path calls it, after l2.Lookup missed and nothing could have inserted
// the line since, so the scan-free FillMiss applies.
func (h *Hierarchy) fillL2(c int, lineAddr uint64, out *AccessOutcome, st *CoreStats) {
	r := h.l2[c].FillMiss(lineAddr, h.l2Full, false, false)
	if r.Evicted.Valid && r.Evicted.Dirty {
		h.sinkWriteback(r.Evicted.LineAddr, out, st)
	}
}

// fillL1 inserts lineAddr into the chosen L1, cascading a dirty victim
// into L2 (non-inclusive: it may be absent), then LLC, then DRAM. Like
// fillL2 it runs only after the L1 lookup missed, so FillMiss applies.
func (h *Hierarchy) fillL1(c int, l1 *Cache, lineAddr uint64, write bool, out *AccessOutcome) {
	r := l1.FillMiss(lineAddr, h.l1Full, write, false)
	if r.Evicted.Valid && r.Evicted.Dirty {
		st := &h.stats[c]
		if h.l2[c].MarkDirty(r.Evicted.LineAddr) {
			return
		}
		h.sinkWriteback(r.Evicted.LineAddr, out, st)
	}
}

// sinkWriteback lands a dirty line in the LLC if resident, else in DRAM.
func (h *Hierarchy) sinkWriteback(lineAddr uint64, out *AccessOutcome, st *CoreStats) {
	if h.llc.MarkDirty(lineAddr) {
		return
	}
	if out != nil {
		out.DRAMWriteBytes += h.cfg.LineBytes
	}
	st.DRAMWriteBytes += uint64(h.cfg.LineBytes)
}

// handleLLCEviction enforces inclusion: when the LLC displaces a line,
// every private copy is invalidated; if any copy (or the LLC line) was
// dirty, the line is written back to DRAM.
func (h *Hierarchy) handleLLCEviction(ev Eviction, out *AccessOutcome, st *CoreStats) {
	if !ev.Valid {
		return
	}
	if h.cfg.NonInclusiveLLC {
		// Victim caches keep their copies; only the LLC's dirty data
		// must reach DRAM.
		if ev.Dirty {
			if out != nil {
				out.DRAMWriteBytes += h.cfg.LineBytes
			}
			st.DRAMWriteBytes += uint64(h.cfg.LineBytes)
		}
		return
	}
	dirty := ev.Dirty
	for c := 0; c < h.cfg.Cores; c++ {
		if found, d := h.l1i[c].Invalidate(ev.LineAddr); found {
			h.stats[c].BackInvalidations++
			dirty = dirty || d
		}
		if found, d := h.l1d[c].Invalidate(ev.LineAddr); found {
			h.stats[c].BackInvalidations++
			dirty = dirty || d
		}
		if found, d := h.l2[c].Invalidate(ev.LineAddr); found {
			h.stats[c].BackInvalidations++
			dirty = dirty || d
		}
	}
	if dirty {
		if out != nil {
			out.DRAMWriteBytes += h.cfg.LineBytes
		}
		st.DRAMWriteBytes += uint64(h.cfg.LineBytes)
	}
}

// PrefetchFill models a hardware prefetch issued on behalf of core c.
// intoL1 selects the DCU (L1) prefetchers; otherwise the line lands in L2
// (MLC prefetchers). Inclusion is preserved: the line is also allocated
// in the LLC under core c's mask. The returned outcome carries the DRAM
// traffic caused (zero when the line was already on chip).
func (h *Hierarchy) PrefetchFill(c int, lineAddr uint64, intoL1 bool) AccessOutcome {
	st := &h.stats[c]
	out := AccessOutcome{}
	if !h.llc.Probe(lineAddr) {
		r := h.llc.Fill(lineAddr, h.masks[c], false, true)
		out.DRAMReadBytes += h.cfg.LineBytes
		st.DRAMReadBytes += uint64(h.cfg.LineBytes)
		st.LLCPrefetchFills++
		h.handleLLCEviction(r.Evicted, &out, st)
	}
	r := h.l2[c].Fill(lineAddr, h.l2Full, false, true)
	if r.Evicted.Valid && r.Evicted.Dirty {
		h.sinkWriteback(r.Evicted.LineAddr, &out, st)
	}
	if intoL1 {
		r := h.l1d[c].Fill(lineAddr, h.l1Full, false, true)
		if r.Evicted.Valid && r.Evicted.Dirty {
			if !h.l2[c].MarkDirty(r.Evicted.LineAddr) {
				h.sinkWriteback(r.Evicted.LineAddr, &out, st)
			}
		}
	}
	return out
}

// CheckInclusion verifies the inclusive-LLC invariant: every valid line
// in any L1 or L2 must be present in the LLC. It returns an error naming
// the first violation; tests and the property suite call this. For a
// non-inclusive hierarchy the invariant does not hold and the check is
// a no-op.
func (h *Hierarchy) CheckInclusion() error {
	if h.cfg.NonInclusiveLLC {
		return nil
	}
	for c := 0; c < h.cfg.Cores; c++ {
		for _, pc := range []*Cache{h.l1i[c], h.l1d[c], h.l2[c]} {
			for si := 0; si < pc.numSets; si++ {
				for vm := pc.valid[si]; vm != 0; vm &= vm - 1 {
					addr := pc.tags[si*pc.assoc+bits.TrailingZeros32(vm)]
					if !h.llc.Probe(addr) {
						return fmt.Errorf("inclusion violated: %s holds line %#x absent from LLC",
							pc.cfg.Name, addr)
					}
				}
			}
		}
	}
	return nil
}

// FlushAll empties every cache (between experiment runs only).
func (h *Hierarchy) FlushAll() {
	h.llc.FlushAll()
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1i[c].FlushAll()
		h.l1d[c].FlushAll()
		h.l2[c].FlushAll()
	}
}
