// Package cache implements the simulated memory hierarchy of the paper's
// Sandy Bridge prototype: write-back set-associative caches with bit-PLRU
// replacement, hashed last-level-cache indexing, way-based partitioning
// masks that restrict replacement only, and an inclusive LLC that
// back-invalidates private caches on eviction.
package cache

import (
	"fmt"
	"math/bits"
)

// Replacement selects the victim-choice policy of a cache array.
type Replacement int

// Replacement policies. The platform uses bit-PLRU; TrueLRU and Random
// exist for the ablation study on how replacement shapes the smooth
// miss curves the paper observes (§3.2).
const (
	ReplacePLRU   Replacement = iota // bit-PLRU (default; matches the prototype)
	ReplaceLRU                       // true least-recently-used
	ReplaceRandom                    // uniform random among masked ways
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case ReplacePLRU:
		return "plru"
	case ReplaceLRU:
		return "lru"
	case ReplaceRandom:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes a single cache array.
type Config struct {
	Name        string // for error messages and dumps
	SizeBytes   int    // total capacity
	Assoc       int    // ways per set
	LineBytes   int    // line size (power of two)
	HashIndex   bool   // hash the set index (models the randomized LLC index)
	Replacement Replacement
}

// Stats counts events observed by one cache array. Demand and prefetch
// traffic are accounted separately so prefetcher efficacy is measurable.
type Stats struct {
	Accesses     uint64 // demand lookups
	Hits         uint64 // demand hits
	Misses       uint64 // demand misses
	Evictions    uint64 // valid lines displaced (demand + prefetch fills)
	Writebacks   uint64 // dirty lines displaced
	PrefetchIns  uint64 // lines inserted by prefetch
	PrefetchHits uint64 // demand hits on lines inserted by prefetch
	Invalidates  uint64 // lines removed by back-invalidation
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	LineAddr uint64
	Dirty    bool
	Valid    bool
}

// Result reports the outcome of a demand access or a fill.
type Result struct {
	Hit bool
	// WasPrefetched reports a demand hit on a line a prefetcher brought
	// in (its first demand use).
	WasPrefetched bool
	Evicted       Eviction // Valid=false when the fill used an empty way
}

// Cache is one cache array. It is not safe for concurrent use; the
// simulator is single-threaded by design (determinism).
//
// Line state is stored structure-of-arrays: a packed tag array scanned
// contiguously on lookup, and per-set metadata bitmasks (one uint32 per
// set for each of valid/dirty/mru/prefetched) so replacement-state
// updates and victim picks are single mask operations instead of
// O(assoc) struct scans. True-LRU stamps live in their own array,
// allocated and touched only under ReplaceLRU — every other policy pays
// nothing for them.
type Cache struct {
	cfg       Config
	numSets   int
	assoc     int
	setMask   uint64
	lineShift uint
	fullSet   uint32 // mask of all assoc ways: (1<<assoc)-1

	tags       []uint64 // numSets*assoc, set-major; meaningful only where valid
	valid      []uint32 // per-set valid-way bitmask
	dirty      []uint32 // per-set dirty-way bitmask
	mru        []uint32 // per-set bit-PLRU reference bits
	prefetched []uint32 // per-set prefetched-not-yet-hit bitmask
	stamps     []uint64 // numSets*assoc last-touch counters; nil unless ReplaceLRU

	stats    Stats
	clock    uint64 // touch counter for true LRU
	rndState uint64 // splitmix state for random replacement
}

// New builds a cache from the configuration. It panics on a geometry that
// does not divide evenly (catching config typos early).
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	if cfg.Assoc <= 0 || cfg.Assoc > 32 {
		panic(fmt.Sprintf("cache %s: associativity %d out of range", cfg.Name, cfg.Assoc))
	}
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	if linesTotal*cfg.LineBytes != cfg.SizeBytes || linesTotal%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible into %d-byte lines × %d ways",
			cfg.Name, cfg.SizeBytes, cfg.LineBytes, cfg.Assoc))
	}
	numSets := linesTotal / cfg.Assoc
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", cfg.Name, numSets))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:        cfg,
		numSets:    numSets,
		assoc:      cfg.Assoc,
		setMask:    uint64(numSets - 1),
		lineShift:  shift,
		fullSet:    uint32(1)<<uint(cfg.Assoc) - 1,
		tags:       make([]uint64, linesTotal),
		valid:      make([]uint32, numSets),
		dirty:      make([]uint32, numSets),
		mru:        make([]uint32, numSets),
		prefetched: make([]uint32, numSets),
		rndState:   hashName(cfg.Name),
	}
	if cfg.Replacement == ReplaceLRU {
		c.stamps = make([]uint64, linesTotal)
	}
	return c
}

// hashName seeds the random-replacement stream deterministically.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h | 1
}

// nextRand is a private splitmix64 step for random replacement.
func (c *Cache) nextRand() uint64 {
	c.rndState += 0x9e3779b97f4a7c15
	z := c.rndState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// LineShift returns log2(line size).
func (c *Cache) LineShift() uint { return c.lineShift }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setIndex maps a line address to a set. When HashIndex is set we use a
// multiplicative hash, modeling the randomized LLC-indexing function the
// paper credits with smoothing out working-set knees.
func (c *Cache) setIndex(lineAddr uint64) int {
	if c.cfg.HashIndex {
		return int(((lineAddr * 0x9e3779b97f4a7c15) >> 21) & c.setMask)
	}
	return int(lineAddr & c.setMask)
}

// touch updates replacement state after a reference to way w of set si.
// Bit-PLRU is two mask operations: set the reference bit; if every way's
// bit is now set, clear all but the most recent toucher's. True LRU
// stamps the way instead (stamps are non-nil only under that policy;
// the mru bits it skips are never read by the LRU victim pick).
func (c *Cache) touch(si, w int) {
	if c.stamps != nil {
		c.clock++
		c.stamps[si*c.assoc+w] = c.clock
		return
	}
	m := c.mru[si] | 1<<uint(w)
	if m == c.fullSet {
		m = 1 << uint(w)
	}
	c.mru[si] = m
}

// lookup returns the way of set si holding lineAddr, or -1. The tag scan
// is a contiguous walk of assoc uint64s; validity is a single bit test.
func (c *Cache) lookup(base int, vmask uint32, lineAddr uint64) int {
	tags := c.tags[base : base+c.assoc]
	if vmask == c.fullSet {
		// Steady state: every way valid, the scan is pure tag compares.
		for w := range tags {
			if tags[w] == lineAddr {
				return w
			}
		}
		return -1
	}
	for w := range tags {
		if tags[w] == lineAddr && vmask&(1<<uint(w)) != 0 {
			return w
		}
	}
	return -1
}

// victim picks a fill victim within mask under the configured
// replacement policy, always preferring an invalid masked way. It
// panics on an empty mask (a policy bug).
func (c *Cache) victim(si int, mask WayMask) int {
	if mask == 0 {
		panic(fmt.Sprintf("cache %s: fill with empty way mask", c.cfg.Name))
	}
	m := uint32(mask) & c.fullSet
	if m == 0 {
		panic(fmt.Sprintf("cache %s: mask %s selects no way of %d", c.cfg.Name, mask, c.assoc))
	}
	if inv := m &^ c.valid[si]; inv != 0 {
		return bits.TrailingZeros32(inv)
	}
	switch c.cfg.Replacement {
	case ReplaceLRU:
		base := si * c.assoc
		best := bits.TrailingZeros32(m)
		bestStamp := c.stamps[base+best]
		for rem := m &^ (1 << uint(best)); rem != 0; rem &= rem - 1 {
			w := bits.TrailingZeros32(rem)
			if s := c.stamps[base+w]; s < bestStamp {
				best, bestStamp = w, s
			}
		}
		return best
	case ReplaceRandom:
		// The pick is drawn modulo the full mask's population (including
		// any bits at or above assoc) to preserve the historical random
		// stream; picks past the last in-set way fall back to the first.
		pick := int(c.nextRand() % uint64(mask.Count()))
		if pick >= bits.OnesCount32(m) {
			return bits.TrailingZeros32(m)
		}
		rem := m
		for ; pick > 0; pick-- {
			rem &= rem - 1
		}
		return bits.TrailingZeros32(rem)
	default: // bit-PLRU: first masked way with a clear reference bit.
		if cand := m &^ c.mru[si]; cand != 0 {
			return bits.TrailingZeros32(cand)
		}
		return bits.TrailingZeros32(m)
	}
}

// Access performs a demand lookup for lineAddr, allocating on miss using
// the given way mask. write marks the line dirty on hit or fill
// (write-back, write-allocate). The returned Result carries the displaced
// line, if any, so the caller can cascade writebacks and inclusion
// invalidations.
func (c *Cache) Access(lineAddr uint64, write bool, mask WayMask) Result {
	c.stats.Accesses++
	si := c.setIndex(lineAddr)
	base := si * c.assoc
	if w := c.lookup(base, c.valid[si], lineAddr); w >= 0 {
		c.stats.Hits++
		bit := uint32(1) << uint(w)
		wasPrefetched := c.prefetched[si]&bit != 0
		if wasPrefetched {
			c.stats.PrefetchHits++
			c.prefetched[si] &^= bit
		}
		if write {
			c.dirty[si] |= bit
		}
		c.touch(si, w)
		return Result{Hit: true, WasPrefetched: wasPrefetched}
	}
	c.stats.Misses++
	ev := c.fill(si, lineAddr, mask, write, false)
	return Result{Hit: false, Evicted: ev}
}

// Lookup performs a demand lookup WITHOUT allocating on a miss: a hit
// refreshes replacement state (and dirtiness for writes) exactly like
// Access; a miss only counts. The hierarchy uses Lookup for the private
// levels so that every allocation flows through Fill, whose returned
// victim the caller must handle — an allocate-on-miss Access would
// silently drop the victim's writeback.
func (c *Cache) Lookup(lineAddr uint64, write bool) Result {
	c.stats.Accesses++
	si := c.setIndex(lineAddr)
	base := si * c.assoc
	if w := c.lookup(base, c.valid[si], lineAddr); w >= 0 {
		c.stats.Hits++
		bit := uint32(1) << uint(w)
		wasPrefetched := c.prefetched[si]&bit != 0
		if wasPrefetched {
			c.stats.PrefetchHits++
			c.prefetched[si] &^= bit
		}
		if write {
			c.dirty[si] |= bit
		}
		c.touch(si, w)
		return Result{Hit: true, WasPrefetched: wasPrefetched}
	}
	c.stats.Misses++
	return Result{Hit: false}
}

// Probe reports whether lineAddr is present, without disturbing
// replacement state or statistics.
func (c *Cache) Probe(lineAddr uint64) bool {
	si := c.setIndex(lineAddr)
	return c.lookup(si*c.assoc, c.valid[si], lineAddr) >= 0
}

// Fill inserts lineAddr (e.g. on behalf of a prefetcher or an upper-level
// fill path) without counting a demand access. prefetch tags the line for
// prefetch-hit accounting.
func (c *Cache) Fill(lineAddr uint64, mask WayMask, dirty, prefetch bool) Result {
	si := c.setIndex(lineAddr)
	if w := c.lookup(si*c.assoc, c.valid[si], lineAddr); w >= 0 {
		// Already present (races with demand path); just refresh.
		if dirty {
			c.dirty[si] |= 1 << uint(w)
		}
		c.touch(si, w)
		return Result{Hit: true}
	}
	ev := c.fill(si, lineAddr, mask, dirty, prefetch)
	return Result{Hit: false, Evicted: ev}
}

// FillMiss is Fill for callers that know lineAddr is absent — the
// demand-miss refill path, where the line just missed this cache and
// nothing since could have inserted it (LLC back-invalidation only
// removes lines). Skipping the presence scan saves a full set walk per
// private-level miss.
func (c *Cache) FillMiss(lineAddr uint64, mask WayMask, dirty, prefetch bool) Result {
	ev := c.fill(c.setIndex(lineAddr), lineAddr, mask, dirty, prefetch)
	return Result{Hit: false, Evicted: ev}
}

func (c *Cache) fill(si int, lineAddr uint64, mask WayMask, dirty, prefetch bool) Eviction {
	w := c.victim(si, mask)
	bit := uint32(1) << uint(w)
	var ev Eviction
	if c.valid[si]&bit != 0 {
		wasDirty := c.dirty[si]&bit != 0
		ev = Eviction{LineAddr: c.tags[si*c.assoc+w], Dirty: wasDirty, Valid: true}
		c.stats.Evictions++
		if wasDirty {
			c.stats.Writebacks++
		}
	}
	c.tags[si*c.assoc+w] = lineAddr
	c.valid[si] |= bit
	if dirty {
		c.dirty[si] |= bit
	} else {
		c.dirty[si] &^= bit
	}
	if prefetch {
		c.prefetched[si] |= bit
		c.stats.PrefetchIns++
	} else {
		c.prefetched[si] &^= bit
	}
	c.touch(si, w)
	return ev
}

// MarkDirty sets the dirty bit of lineAddr if present, returning whether
// it was found. Used to sink writebacks from an upper level.
func (c *Cache) MarkDirty(lineAddr uint64) bool {
	si := c.setIndex(lineAddr)
	if w := c.lookup(si*c.assoc, c.valid[si], lineAddr); w >= 0 {
		c.dirty[si] |= 1 << uint(w)
		return true
	}
	return false
}

// Invalidate removes lineAddr if present, reporting presence and
// dirtiness. Used for inclusive-LLC back-invalidation.
func (c *Cache) Invalidate(lineAddr uint64) (found, dirty bool) {
	si := c.setIndex(lineAddr)
	if w := c.lookup(si*c.assoc, c.valid[si], lineAddr); w >= 0 {
		bit := uint32(1) << uint(w)
		dirty = c.dirty[si]&bit != 0
		c.valid[si] &^= bit
		c.dirty[si] &^= bit
		c.mru[si] &^= bit
		c.prefetched[si] &^= bit
		if c.stamps != nil {
			c.stamps[si*c.assoc+w] = 0
		}
		c.stats.Invalidates++
		return true, dirty
	}
	return false, false
}

// OccupancyByWay returns, for each way index, the number of valid lines
// currently resident in that way across all sets. Experiments use this to
// visualize partition occupancy.
func (c *Cache) OccupancyByWay() []int {
	occ := make([]int, c.assoc)
	for si := 0; si < c.numSets; si++ {
		for vm := c.valid[si]; vm != 0; vm &= vm - 1 {
			occ[bits.TrailingZeros32(vm)]++
		}
	}
	return occ
}

// ValidLines returns the total number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, vm := range c.valid {
		n += bits.OnesCount32(vm)
	}
	return n
}

// FlushAll invalidates every line (used between independent experiment
// runs; the partitioning mechanism itself never flushes).
func (c *Cache) FlushAll() {
	clear(c.valid)
	clear(c.dirty)
	clear(c.mru)
	clear(c.prefetched)
	clear(c.tags)
	if c.stamps != nil {
		clear(c.stamps)
	}
}
