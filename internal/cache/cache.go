// Package cache implements the simulated memory hierarchy of the paper's
// Sandy Bridge prototype: write-back set-associative caches with bit-PLRU
// replacement, hashed last-level-cache indexing, way-based partitioning
// masks that restrict replacement only, and an inclusive LLC that
// back-invalidates private caches on eviction.
package cache

import "fmt"

// Replacement selects the victim-choice policy of a cache array.
type Replacement int

// Replacement policies. The platform uses bit-PLRU; TrueLRU and Random
// exist for the ablation study on how replacement shapes the smooth
// miss curves the paper observes (§3.2).
const (
	ReplacePLRU   Replacement = iota // bit-PLRU (default; matches the prototype)
	ReplaceLRU                       // true least-recently-used
	ReplaceRandom                    // uniform random among masked ways
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case ReplacePLRU:
		return "plru"
	case ReplaceLRU:
		return "lru"
	case ReplaceRandom:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes a single cache array.
type Config struct {
	Name        string // for error messages and dumps
	SizeBytes   int    // total capacity
	Assoc       int    // ways per set
	LineBytes   int    // line size (power of two)
	HashIndex   bool   // hash the set index (models the randomized LLC index)
	Replacement Replacement
}

// Stats counts events observed by one cache array. Demand and prefetch
// traffic are accounted separately so prefetcher efficacy is measurable.
type Stats struct {
	Accesses     uint64 // demand lookups
	Hits         uint64 // demand hits
	Misses       uint64 // demand misses
	Evictions    uint64 // valid lines displaced (demand + prefetch fills)
	Writebacks   uint64 // dirty lines displaced
	PrefetchIns  uint64 // lines inserted by prefetch
	PrefetchHits uint64 // demand hits on lines inserted by prefetch
	Invalidates  uint64 // lines removed by back-invalidation
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	LineAddr uint64
	Dirty    bool
	Valid    bool
}

// Result reports the outcome of a demand access or a fill.
type Result struct {
	Hit bool
	// WasPrefetched reports a demand hit on a line a prefetcher brought
	// in (its first demand use).
	WasPrefetched bool
	Evicted       Eviction // Valid=false when the fill used an empty way
}

type line struct {
	addr       uint64 // full line address (addr >> lineShift); valid only if valid
	valid      bool
	dirty      bool
	mru        bool   // bit-PLRU reference bit
	stamp      uint64 // last-touch counter (true-LRU policy)
	prefetched bool   // inserted by a prefetcher and not yet demand-hit
}

// Cache is one cache array. It is not safe for concurrent use; the
// simulator is single-threaded by design (determinism).
type Cache struct {
	cfg       Config
	numSets   int
	setMask   uint64
	lineShift uint
	lines     []line // numSets * assoc, set-major
	stats     Stats
	clock     uint64 // touch counter for true LRU
	rndState  uint64 // splitmix state for random replacement
}

// New builds a cache from the configuration. It panics on a geometry that
// does not divide evenly (catching config typos early).
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	if cfg.Assoc <= 0 || cfg.Assoc > 32 {
		panic(fmt.Sprintf("cache %s: associativity %d out of range", cfg.Name, cfg.Assoc))
	}
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	if linesTotal*cfg.LineBytes != cfg.SizeBytes || linesTotal%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible into %d-byte lines × %d ways",
			cfg.Name, cfg.SizeBytes, cfg.LineBytes, cfg.Assoc))
	}
	numSets := linesTotal / cfg.Assoc
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", cfg.Name, numSets))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		numSets:   numSets,
		setMask:   uint64(numSets - 1),
		lineShift: shift,
		lines:     make([]line, linesTotal),
		rndState:  hashName(cfg.Name),
	}
}

// hashName seeds the random-replacement stream deterministically.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h | 1
}

// nextRand is a private splitmix64 step for random replacement.
func (c *Cache) nextRand() uint64 {
	c.rndState += 0x9e3779b97f4a7c15
	z := c.rndState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// LineShift returns log2(line size).
func (c *Cache) LineShift() uint { return c.lineShift }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setIndex maps a line address to a set. When HashIndex is set we use a
// multiplicative hash, modeling the randomized LLC-indexing function the
// paper credits with smoothing out working-set knees.
func (c *Cache) setIndex(lineAddr uint64) int {
	if c.cfg.HashIndex {
		return int(((lineAddr * 0x9e3779b97f4a7c15) >> 21) & c.setMask)
	}
	return int(lineAddr & c.setMask)
}

func (c *Cache) set(idx int) []line {
	base := idx * c.cfg.Assoc
	return c.lines[base : base+c.cfg.Assoc]
}

// touch updates replacement state after a reference to way w.
func (c *Cache) touch(set []line, w int) {
	c.clock++
	set[w].stamp = c.clock
	set[w].mru = true
	for i := range set {
		if !set[i].mru {
			return
		}
	}
	// All reference bits set: clear everyone but the most recent toucher.
	for i := range set {
		set[i].mru = i == w
	}
}

// lookup returns the way holding lineAddr, or -1.
func (c *Cache) lookup(set []line, lineAddr uint64) int {
	for w := range set {
		if set[w].valid && set[w].addr == lineAddr {
			return w
		}
	}
	return -1
}

// victim picks a fill victim within mask under the configured
// replacement policy, always preferring an invalid masked way. It
// panics on an empty mask (a policy bug).
func (c *Cache) victim(set []line, mask WayMask) int {
	if mask == 0 {
		panic(fmt.Sprintf("cache %s: fill with empty way mask", c.cfg.Name))
	}
	first := -1
	for w := range set {
		if !mask.Has(w) {
			continue
		}
		if first < 0 {
			first = w
		}
		if !set[w].valid {
			return w
		}
	}
	if first < 0 {
		panic(fmt.Sprintf("cache %s: mask %s selects no way of %d", c.cfg.Name, mask, len(set)))
	}
	switch c.cfg.Replacement {
	case ReplaceLRU:
		best := first
		for w := range set {
			if mask.Has(w) && set[w].stamp < set[best].stamp {
				best = w
			}
		}
		return best
	case ReplaceRandom:
		n := mask.Count()
		pick := int(c.nextRand() % uint64(n))
		for w := range set {
			if mask.Has(w) {
				if pick == 0 {
					return w
				}
				pick--
			}
		}
		return first
	default: // bit-PLRU: first masked way with a clear reference bit.
		for w := range set {
			if mask.Has(w) && !set[w].mru {
				return w
			}
		}
		return first
	}
}

// Access performs a demand lookup for lineAddr, allocating on miss using
// the given way mask. write marks the line dirty on hit or fill
// (write-back, write-allocate). The returned Result carries the displaced
// line, if any, so the caller can cascade writebacks and inclusion
// invalidations.
func (c *Cache) Access(lineAddr uint64, write bool, mask WayMask) Result {
	c.stats.Accesses++
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		c.stats.Hits++
		wasPrefetched := set[w].prefetched
		if wasPrefetched {
			c.stats.PrefetchHits++
			set[w].prefetched = false
		}
		if write {
			set[w].dirty = true
		}
		c.touch(set, w)
		return Result{Hit: true, WasPrefetched: wasPrefetched}
	}
	c.stats.Misses++
	ev := c.fill(set, lineAddr, mask, write, false)
	return Result{Hit: false, Evicted: ev}
}

// Lookup performs a demand lookup WITHOUT allocating on a miss: a hit
// refreshes replacement state (and dirtiness for writes) exactly like
// Access; a miss only counts. The hierarchy uses Lookup for the private
// levels so that every allocation flows through Fill, whose returned
// victim the caller must handle — an allocate-on-miss Access would
// silently drop the victim's writeback.
func (c *Cache) Lookup(lineAddr uint64, write bool) Result {
	c.stats.Accesses++
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		c.stats.Hits++
		wasPrefetched := set[w].prefetched
		if wasPrefetched {
			c.stats.PrefetchHits++
			set[w].prefetched = false
		}
		if write {
			set[w].dirty = true
		}
		c.touch(set, w)
		return Result{Hit: true, WasPrefetched: wasPrefetched}
	}
	c.stats.Misses++
	return Result{Hit: false}
}

// Probe reports whether lineAddr is present, without disturbing
// replacement state or statistics.
func (c *Cache) Probe(lineAddr uint64) bool {
	set := c.set(c.setIndex(lineAddr))
	return c.lookup(set, lineAddr) >= 0
}

// Fill inserts lineAddr (e.g. on behalf of a prefetcher or an upper-level
// fill path) without counting a demand access. prefetch tags the line for
// prefetch-hit accounting.
func (c *Cache) Fill(lineAddr uint64, mask WayMask, dirty, prefetch bool) Result {
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		// Already present (races with demand path); just refresh.
		if dirty {
			set[w].dirty = true
		}
		c.touch(set, w)
		return Result{Hit: true}
	}
	ev := c.fill(set, lineAddr, mask, dirty, prefetch)
	return Result{Hit: false, Evicted: ev}
}

func (c *Cache) fill(set []line, lineAddr uint64, mask WayMask, dirty, prefetch bool) Eviction {
	w := c.victim(set, mask)
	var ev Eviction
	if set[w].valid {
		ev = Eviction{LineAddr: set[w].addr, Dirty: set[w].dirty, Valid: true}
		c.stats.Evictions++
		if set[w].dirty {
			c.stats.Writebacks++
		}
	}
	set[w] = line{addr: lineAddr, valid: true, dirty: dirty, prefetched: prefetch}
	if prefetch {
		c.stats.PrefetchIns++
	}
	c.touch(set, w)
	return ev
}

// MarkDirty sets the dirty bit of lineAddr if present, returning whether
// it was found. Used to sink writebacks from an upper level.
func (c *Cache) MarkDirty(lineAddr uint64) bool {
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		set[w].dirty = true
		return true
	}
	return false
}

// Invalidate removes lineAddr if present, reporting presence and
// dirtiness. Used for inclusive-LLC back-invalidation.
func (c *Cache) Invalidate(lineAddr uint64) (found, dirty bool) {
	set := c.set(c.setIndex(lineAddr))
	if w := c.lookup(set, lineAddr); w >= 0 {
		dirty = set[w].dirty
		set[w] = line{}
		c.stats.Invalidates++
		return true, dirty
	}
	return false, false
}

// OccupancyByWay returns, for each way index, the number of valid lines
// currently resident in that way across all sets. Experiments use this to
// visualize partition occupancy.
func (c *Cache) OccupancyByWay() []int {
	occ := make([]int, c.cfg.Assoc)
	for s := 0; s < c.numSets; s++ {
		set := c.set(s)
		for w := range set {
			if set[w].valid {
				occ[w]++
			}
		}
	}
	return occ
}

// ValidLines returns the total number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// FlushAll invalidates every line (used between independent experiment
// runs; the partitioning mechanism itself never flushes).
func (c *Cache) FlushAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}
