package cache

import "testing"

// The per-reference hot path must not allocate: every simulated memory
// access walks Access/Lookup/Fill, so a single allocation per call would
// dominate the engine's profile. These tests pin the invariant.

func TestAccessZeroAllocs(t *testing.T) {
	c := New(Config{Name: "alloc", SizeBytes: 64 << 10, Assoc: 8, LineBytes: 64})
	mask := FullMask(8)
	var addr uint64
	allocs := testing.AllocsPerRun(2000, func() {
		c.Access(addr&0xffff, addr&1 == 0, mask)
		addr = addr*2862933555777941757 + 3037000493
	})
	if allocs != 0 {
		t.Fatalf("Cache.Access allocates %.1f objects per call, want 0", allocs)
	}
}

func TestLookupFillZeroAllocs(t *testing.T) {
	c := New(Config{Name: "alloc2", SizeBytes: 64 << 10, Assoc: 8, LineBytes: 64, HashIndex: true})
	mask := FullMask(8)
	var addr uint64
	allocs := testing.AllocsPerRun(2000, func() {
		if !c.Lookup(addr&0xffff, false).Hit {
			c.Fill(addr&0xffff, mask, addr&2 == 0, addr&4 == 0)
		}
		addr = addr*2862933555777941757 + 3037000493
	})
	if allocs != 0 {
		t.Fatalf("Lookup+Fill allocate %.1f objects per call, want 0", allocs)
	}
}

func TestHierarchyAccessZeroAllocs(t *testing.T) {
	h := NewHierarchy(SandyBridgeHierarchy(2))
	var addr uint64
	allocs := testing.AllocsPerRun(2000, func() {
		h.Access(int(addr&1), addr&0xfffff, addr&2 == 0, false)
		addr = addr*2862933555777941757 + 3037000493
	})
	if allocs != 0 {
		t.Fatalf("Hierarchy.Access allocates %.1f objects per call, want 0", allocs)
	}
}
