package cache

import (
	"fmt"
	"math/bits"
	"strings"
)

// WayMask selects a subset of the ways of a set-associative cache. Bit i
// set means way i may be used as a replacement victim by the holder of
// the mask. Masks restrict *replacement only*: lookups hit in any way,
// exactly like the way-partitioning prototype the paper evaluates.
type WayMask uint32

// FullMask returns a mask covering ways [0, assoc).
func FullMask(assoc int) WayMask {
	if assoc <= 0 || assoc > 32 {
		panic(fmt.Sprintf("cache: invalid associativity %d", assoc))
	}
	return WayMask(1<<uint(assoc)) - 1
}

// MaskRange returns a mask covering ways [lo, hi). It panics if the range
// is empty or out of [0, 32].
func MaskRange(lo, hi int) WayMask {
	if lo < 0 || hi > 32 || lo >= hi {
		panic(fmt.Sprintf("cache: invalid way range [%d,%d)", lo, hi))
	}
	return (WayMask(1<<uint(hi)) - 1) &^ (WayMask(1<<uint(lo)) - 1)
}

// MaskFirstN returns a mask covering ways [0, n).
func MaskFirstN(n int) WayMask { return MaskRange(0, n) }

// Count returns the number of ways selected by the mask.
func (m WayMask) Count() int { return bits.OnesCount32(uint32(m)) }

// Has reports whether way w is selected.
func (m WayMask) Has(w int) bool { return m&(1<<uint(w)) != 0 }

// Overlaps reports whether the two masks share any way.
func (m WayMask) Overlaps(o WayMask) bool { return m&o != 0 }

// String renders the mask as a bit string, way 0 rightmost.
func (m WayMask) String() string {
	var sb strings.Builder
	for w := 31; w >= 0; w-- {
		if m.Has(w) {
			sb.WriteByte('1')
		} else if sb.Len() > 0 {
			sb.WriteByte('0')
		}
	}
	if sb.Len() == 0 {
		return "0"
	}
	return sb.String()
}
