package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func testHierarchy() *Hierarchy {
	// Shrunken geometry for fast, eviction-heavy tests: 2 cores,
	// 1 KB L1s, 2 KB L2, 8 KB 4-way LLC.
	cfg := HierarchyConfig{
		Cores:     2,
		LineBytes: 64,
		L1I:       Config{Name: "L1I", SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64},
		L1D:       Config{Name: "L1D", SizeBytes: 1 << 10, Assoc: 2, LineBytes: 64},
		L2:        Config{Name: "L2", SizeBytes: 2 << 10, Assoc: 4, LineBytes: 64},
		LLC:       Config{Name: "LLC", SizeBytes: 8 << 10, Assoc: 4, LineBytes: 64, HashIndex: true},
	}
	return NewHierarchy(cfg)
}

func TestAccessLevels(t *testing.T) {
	h := testHierarchy()
	out := h.Access(0, 100, false, false)
	if out.Level != LevelMem {
		t.Fatalf("cold access level = %v", out.Level)
	}
	if out.DRAMReadBytes != 64 {
		t.Fatalf("cold access DRAM reads = %d", out.DRAMReadBytes)
	}
	out = h.Access(0, 100, false, false)
	if out.Level != LevelL1 {
		t.Fatalf("warm access level = %v", out.Level)
	}
	if out.DRAMReadBytes != 0 {
		t.Fatal("L1 hit generated DRAM traffic")
	}
}

func TestInstructionPathUsesL1I(t *testing.T) {
	h := testHierarchy()
	h.Access(0, 200, false, true)
	h.Access(0, 200, false, true)
	st := h.CoreStats(0)
	if st.L1IAccesses != 2 || st.L1IMisses != 1 {
		t.Fatalf("L1I stats: %+v", st)
	}
	if st.L1DAccesses != 0 {
		t.Fatal("instruction fetch touched L1D")
	}
}

func TestInclusionInvariantUnderLoad(t *testing.T) {
	h := testHierarchy()
	r := rng.New(1)
	for i := 0; i < 20000; i++ {
		core := r.Intn(2)
		addr := r.Uint64n(1 << 10)
		h.Access(core, addr, r.Bool(0.3), r.Bool(0.1))
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestBackInvalidationOnLLCEviction(t *testing.T) {
	h := testHierarchy()
	// Load a line on core 0; thrash the LLC from core 1 until the line
	// is gone from the LLC; inclusion requires it left L1/L2 too.
	h.Access(0, 42, false, false)
	r := rng.New(2)
	for i := 0; i < 5000 && h.LLC().Probe(42); i++ {
		h.Access(1, 1000+r.Uint64n(4096), false, false)
	}
	if h.LLC().Probe(42) {
		t.Skip("thrash traffic never displaced the victim (hash collision luck)")
	}
	if h.L1D(0).Probe(42) || h.L2(0).Probe(42) {
		t.Fatal("line survived in a private cache after LLC eviction")
	}
	if h.CoreStats(0).BackInvalidations == 0 {
		t.Fatal("back-invalidation not counted")
	}
}

func TestDirtyLineWrittenBackOnInclusionVictim(t *testing.T) {
	h := testHierarchy()
	h.Access(0, 42, true, false) // dirty in L1
	before := h.CoreStats(1).DRAMWriteBytes
	r := rng.New(3)
	for i := 0; i < 5000 && h.LLC().Probe(42); i++ {
		h.Access(1, 1000+r.Uint64n(4096), false, false)
	}
	if h.LLC().Probe(42) {
		t.Skip("victim never displaced")
	}
	// The dirty data must have reached DRAM via some core's accounting.
	total := h.CoreStats(0).DRAMWriteBytes + h.CoreStats(1).DRAMWriteBytes
	if total <= before {
		t.Fatal("dirty inclusion victim was not written back to DRAM")
	}
}

func TestWayMaskPartitionProtectsResident(t *testing.T) {
	h := testHierarchy()
	assoc := 4
	h.SetWayMask(0, MaskFirstN(3))
	h.SetWayMask(1, MaskRange(3, assoc))
	// Core 0 warms a small set of lines within its 3-way allocation.
	warm := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for pass := 0; pass < 4; pass++ {
		for _, a := range warm {
			h.Access(0, a, false, false)
		}
	}
	missesBefore := h.CoreStats(0).LLCMisses
	// Core 1 streams heavily through its single way.
	for i := uint64(0); i < 8000; i++ {
		h.Access(1, 1<<20+i, false, false)
	}
	// Core 0's warm set must still hit in the LLC (partition isolation):
	h.ResetCoreStats()
	_ = missesBefore
	for _, a := range warm {
		h.Access(0, a, false, false)
	}
	if miss := h.CoreStats(0).LLCMisses; miss != 0 {
		t.Fatalf("partitioned stream displaced %d of core 0's LLC-resident lines", miss)
	}
}

func TestSetWayMaskValidation(t *testing.T) {
	h := testHierarchy()
	for _, bad := range []WayMask{0, 1 << 5} { // empty; beyond 4-way assoc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mask %v accepted", bad)
				}
			}()
			h.SetWayMask(0, bad)
		}()
	}
	h.SetWayMask(0, MaskFirstN(2))
	if h.WayMaskOf(0) != MaskFirstN(2) {
		t.Fatal("mask not applied")
	}
}

func TestNoFlushOnMaskChange(t *testing.T) {
	h := testHierarchy()
	h.Access(0, 42, false, false)
	h.SetWayMask(0, MaskFirstN(1))
	// The line stays readable even if it resides outside the new mask —
	// the prototype's no-flush semantics.
	if out := h.Access(0, 42, false, false); out.Level == LevelMem {
		t.Fatal("reallocation flushed resident data")
	}
}

func TestPrefetchFillRespectsInclusion(t *testing.T) {
	h := testHierarchy()
	out := h.PrefetchFill(0, 77, true)
	if out.DRAMReadBytes != 64 {
		t.Fatalf("prefetch of absent line moved %d DRAM bytes", out.DRAMReadBytes)
	}
	if !h.LLC().Probe(77) || !h.L2(0).Probe(77) || !h.L1D(0).Probe(77) {
		t.Fatal("prefetch fill skipped a level")
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
	// Prefetching a resident line is free.
	out = h.PrefetchFill(0, 77, false)
	if out.DRAMReadBytes != 0 {
		t.Fatal("prefetch of resident line re-fetched from DRAM")
	}
	if h.CoreStats(0).LLCPrefetchFills != 1 {
		t.Fatalf("LLCPrefetchFills = %d, want 1", h.CoreStats(0).LLCPrefetchFills)
	}
}

func TestInclusionQuickProperty(t *testing.T) {
	type op struct {
		Core  uint8
		Addr  uint16
		Write bool
		Instr bool
		Pref  bool
	}
	h := testHierarchy()
	if err := quick.Check(func(ops []op) bool {
		for _, o := range ops {
			core := int(o.Core) % 2
			addr := uint64(o.Addr) % 2048
			if o.Pref {
				h.PrefetchFill(core, addr, o.Write)
			} else {
				h.Access(core, addr, o.Write, o.Instr)
			}
		}
		return h.CheckInclusion() == nil
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSandyBridgeHierarchyGeometry(t *testing.T) {
	cfg := SandyBridgeHierarchy(4)
	if cfg.LLC.SizeBytes != 6<<20 || cfg.LLC.Assoc != 12 {
		t.Fatalf("LLC geometry: %+v", cfg.LLC)
	}
	if !cfg.LLC.HashIndex {
		t.Fatal("LLC must use hashed indexing")
	}
	h := NewHierarchy(cfg)
	if h.Cores() != 4 || h.LineBytes() != 64 {
		t.Fatal("hierarchy metadata")
	}
	for c := 0; c < 4; c++ {
		if h.WayMaskOf(c) != FullMask(12) {
			t.Fatal("power-on mask must be full")
		}
	}
}

func TestFlushAllHierarchy(t *testing.T) {
	h := testHierarchy()
	h.Access(0, 1, true, false)
	h.Access(1, 2, false, false)
	h.FlushAll()
	if h.LLC().ValidLines() != 0 || h.L1D(0).ValidLines() != 0 {
		t.Fatal("FlushAll left lines")
	}
}
