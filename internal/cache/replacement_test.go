package cache

import (
	"testing"

	"repro/internal/rng"
)

func cacheWith(repl Replacement) *Cache {
	return New(Config{Name: "r-" + repl.String(), SizeBytes: 4 * 4 * 64,
		Assoc: 4, LineBytes: 64, Replacement: repl})
}

func TestReplacementNames(t *testing.T) {
	for r, want := range map[Replacement]string{
		ReplacePLRU: "plru", ReplaceLRU: "lru", ReplaceRandom: "random",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestTrueLRUEvictsOldest(t *testing.T) {
	c := cacheWith(ReplaceLRU)
	full := FullMask(4)
	// Fill set 0 (lines ≡ 0 mod 4) in order 0,4,8,12; touch 0 again so
	// line 4 becomes the oldest.
	for _, la := range []uint64{0, 4, 8, 12, 0} {
		c.Access(la, false, full)
	}
	r := c.Access(16, false, full)
	if !r.Evicted.Valid || r.Evicted.LineAddr != 4 {
		t.Fatalf("LRU evicted %+v, want line 4", r.Evicted)
	}
}

func TestTrueLRUOnHitRefreshes(t *testing.T) {
	c := cacheWith(ReplaceLRU)
	full := FullMask(4)
	for _, la := range []uint64{0, 4, 8, 12} {
		c.Access(la, false, full)
	}
	// Refresh everything except 8.
	for _, la := range []uint64{0, 4, 12} {
		c.Access(la, false, full)
	}
	r := c.Access(20, false, full)
	if r.Evicted.LineAddr != 8 {
		t.Fatalf("LRU evicted %d, want 8", r.Evicted.LineAddr)
	}
}

func TestRandomReplacementStaysInMask(t *testing.T) {
	c := cacheWith(ReplaceRandom)
	full := FullMask(4)
	for _, la := range []uint64{0, 4, 8, 12} {
		c.Access(la, false, full)
	}
	// Restricted intruder: random victims must come from way 0..1 only,
	// so at most two original lines may ever disappear.
	mask := MaskFirstN(2)
	for i := uint64(5); i < 40; i++ {
		c.Access(i*4, false, mask)
	}
	lost := 0
	for _, la := range []uint64{0, 4, 8, 12} {
		if !c.Probe(la) {
			lost++
		}
	}
	if lost > 2 {
		t.Fatalf("random replacement displaced %d lines outside a 2-way mask", lost)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() []int {
		c := cacheWith(ReplaceRandom)
		full := FullMask(4)
		r := rng.New(7)
		var evs []int
		for i := 0; i < 2000; i++ {
			res := c.Access(r.Uint64n(256), false, full)
			if res.Evicted.Valid {
				evs = append(evs, int(res.Evicted.LineAddr))
			}
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic eviction count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic eviction order")
		}
	}
}

func TestPoliciesDifferUnderThrash(t *testing.T) {
	// A cyclic pattern over assoc+1 lines: true LRU misses every time,
	// while random replacement keeps some lines by luck. Their hit
	// counts must differ, proving the policies are actually wired in.
	run := func(repl Replacement) uint64 {
		c := cacheWith(repl)
		full := FullMask(4)
		for pass := 0; pass < 200; pass++ {
			for _, la := range []uint64{0, 4, 8, 12, 16} {
				c.Access(la, false, full)
			}
		}
		return c.Stats().Hits
	}
	lru := run(ReplaceLRU)
	random := run(ReplaceRandom)
	if lru != 0 {
		t.Fatalf("true LRU hit %d times on a cyclic overflow pattern", lru)
	}
	if random == 0 {
		t.Fatal("random replacement never hit on a cyclic pattern")
	}
}
