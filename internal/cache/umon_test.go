package cache

import "testing"

// umonCfg is a small monitored geometry: 64 sets x 4 ways, unhashed so
// tests can target sets directly.
func umonCfg() Config {
	return Config{Name: "U", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64}
}

// addr builds a line address landing in the given (unhashed) set with
// the given tag.
func addr(set, tag int) uint64 { return uint64(tag)*64 + uint64(set) }

func TestUMONStackDistances(t *testing.T) {
	u := NewUMON(umonCfg(), 0) // sample every set
	// Reference stream in set 0: A B A -> A hits at stack distance 1
	// (position 1: one intervening line).
	u.Access(addr(0, 1))
	u.Access(addr(0, 2))
	u.Access(addr(0, 1))
	hits := u.Hits()
	if hits[0] != 0 || hits[1] != 1 {
		t.Fatalf("hits = %v, want position 1 to hold the reuse", hits)
	}
	// Immediate re-reference hits at MRU (position 0).
	u.Access(addr(0, 1))
	if hits = u.Hits(); hits[0] != 1 {
		t.Fatalf("hits = %v after MRU re-reference", hits)
	}
	if u.Accesses() != 4 || u.Misses() != 2 {
		t.Fatalf("acc=%d miss=%d, want 4/2", u.Accesses(), u.Misses())
	}
}

// TestUMONCurveMonotonic: the cumulative curve is non-decreasing and
// ends at the total hit count — the contract the lookahead allocator
// relies on.
func TestUMONCurveMonotonic(t *testing.T) {
	u := NewUMON(umonCfg(), 0)
	// A cyclic pattern over 3 lines in a 4-way set: hits at varying
	// stack distances.
	for i := 0; i < 30; i++ {
		u.Access(addr(1, i%3+1))
	}
	curve := u.Curve(nil)
	total := 0.0
	for _, h := range u.Hits() {
		total += float64(h)
	}
	prev := 0.0
	for w, v := range curve {
		if v < prev {
			t.Fatalf("curve not monotonic at way %d: %v", w+1, curve)
		}
		prev = v
	}
	if curve[len(curve)-1] != total {
		t.Fatalf("curve tail %v != total hits %v", curve[len(curve)-1], total)
	}
}

// TestUMONLRUEviction: a stream wider than the associativity evicts
// the LRU shadow entry, so far-apart reuses count as misses (capacity
// beyond the monitored cache cannot be credited to any way count).
func TestUMONLRUEviction(t *testing.T) {
	u := NewUMON(umonCfg(), 0)
	for tag := 1; tag <= 5; tag++ { // 5 distinct lines, 4 ways
		u.Access(addr(2, tag))
	}
	u.Access(addr(2, 1)) // evicted by tag 5: must miss
	if u.Misses() != 6 {
		t.Fatalf("misses = %d, want 6 (reuse beyond assoc is a miss)", u.Misses())
	}
}

// TestUMONSampling: with a stride of 2^1, odd sets are invisible.
func TestUMONSampling(t *testing.T) {
	u := NewUMON(umonCfg(), 1)
	u.Access(addr(1, 1))
	u.Access(addr(3, 1))
	if u.Accesses() != 0 {
		t.Fatalf("unsampled sets observed %d accesses", u.Accesses())
	}
	u.Access(addr(2, 1))
	u.Access(addr(2, 1))
	if u.Accesses() != 2 || u.Hits()[0] != 1 {
		t.Fatalf("sampled set: acc=%d hits=%v", u.Accesses(), u.Hits())
	}
}

// TestUMONShadowOnly: attaching a monitor must not change simulated
// cache behavior — the hierarchy's stats are identical with and
// without one.
func TestUMONShadowOnly(t *testing.T) {
	run := func(attach bool) Stats {
		h := NewHierarchy(SandyBridgeHierarchy(2))
		if attach {
			h.AttachUMON(0, NewUMON(h.LLC().Config(), 3))
		}
		for i := 0; i < 5000; i++ {
			h.Access(0, uint64(i*97%1024), i%3 == 0, false)
			h.Access(1, uint64(i*131%2048), false, false)
		}
		return h.LLC().Stats()
	}
	if run(false) != run(true) {
		t.Fatal("attaching a UMON changed LLC behavior")
	}
}
