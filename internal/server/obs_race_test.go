package server

import (
	"io"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestObservabilityPollDuringRun is the server-side analogue of
// sched's TestStatsPollDuringRun: while a fleet run is in flight,
// hammer /metrics, the run's status, and its trace endpoint from
// concurrent goroutines. Under -race (CI's test job) this fails loudly
// if any histogram, phase counter, gauge, or tracer read races the
// engine's writers.
func TestObservabilityPollDuringRun(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{Burst: 10})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, spec)

	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return // server shutting down mid-poll is fine
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", sub.StatusURL, sub.StatusURL + "/trace"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				get(path)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(path)
	}

	pollReport(t, ts, sub.ReportURL)
	// Keep polling a little past completion so readers also observe the
	// finished state (trace switches from 202 to the full document).
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
