// Package server exposes a core.Session over HTTP: `cachepart serve`.
//
// One long-lived session backs every request, so concurrent clients'
// runs deduplicate against the same warm in-memory memo and — when the
// session has a cache directory — the same persistent store. The API:
//
//	POST /v1/runs             submit scenario/fleet JSON (or {"spec": ..., "config": ...})
//	GET  /v1/runs/{id}        status + live progress counters
//	GET  /v1/runs/{id}/report the versioned report envelope (core.Envelope)
//	GET  /v1/runs/{id}/trace  the run's span tree as Chrome trace_event JSON
//	GET  /v1/policies         the partition-policy registry
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             engine + service counters and histograms, Prometheus text format
//	GET  /debug/pprof/*       Go profiling endpoints (Options.Pprof only)
//
// Robustness is part of the contract: per-client token-bucket rate
// limiting (429 + Retry-After), a bounded run queue with backpressure
// (503 + Retry-After), capped request bodies, panic-isolated run
// goroutines, and graceful drain — Drain stops admissions, finishes
// queued and in-flight runs (each persisting through the session's
// write-through disk store), then returns.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// Options configure the service limits. Zero values select defaults.
type Options struct {
	// Queue is the pending-run queue depth (default 16). A full queue
	// rejects submissions with 503 + Retry-After.
	Queue int
	// Concurrency is how many runs execute at once (default 2). Each
	// run already fans across the engine's worker pool; more than a few
	// concurrent runs just contend for the same CPUs.
	Concurrency int
	// RatePerSec and Burst shape each client's submission token bucket
	// (defaults 2/s, burst 5).
	RatePerSec float64
	Burst      int
	// MaxBody caps a submission body in bytes (default 1 MiB).
	MaxBody int64
	// MaxRuns bounds the run table (default 1024); when full, the
	// oldest finished run is evicted to admit a new one.
	MaxRuns int
	// Now is the clock (default time.Now); tests inject one to step the
	// rate limiter deterministically.
	Now func() time.Time
	// RunTimeout, when positive, bounds one run's wall clock: a run
	// exceeding it reports state "timeout" (504 on the report endpoint)
	// and its worker slot is reclaimed immediately. The engine has no
	// mid-simulation cancellation point, so the abandoned run finishes
	// in the background and its result is discarded. Zero (the
	// default) means no deadline (`cachepart serve -run-timeout`).
	RunTimeout time.Duration
	// After is the deadline timer (default time.After); tests inject
	// one to trip RunTimeout deterministically.
	After func(time.Duration) <-chan time.Time
	// Pprof exposes Go's /debug/pprof/* profiling endpoints. Off by
	// default: profiling a shared service is an operator decision
	// (`cachepart serve -pprof`).
	Pprof bool
	// AccessLog, when non-nil, receives one line per request:
	// timestamp, method, path, status, bytes, duration, and the run id
	// (`id=run-000001`, `id=-` when the request has none), so client
	// failures are correlatable with /v1/runs/{id} state.
	AccessLog io.Writer
}

func (o Options) withDefaults() Options {
	if o.Queue <= 0 {
		o.Queue = 16
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2
	}
	if o.RatePerSec <= 0 {
		o.RatePerSec = 2
	}
	if o.Burst <= 0 {
		o.Burst = 5
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.After == nil {
		o.After = time.After
	}
	return o
}

// Run states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
	stateTimeout = "timeout" // exceeded Options.RunTimeout
)

// job is one submitted run.
type job struct {
	id        string
	sc        *scenario.Scenario
	submitted time.Time

	mu      sync.Mutex
	state   string
	started core.EngineStats // engine totals when the run started
	stats   core.EngineStats // envelope stats, done only
	env     []byte           // envelope JSON, done only
	span    obs.SpanID       // root span in the session tracer, done only
	errText string           // failed only
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// Server routes HTTP traffic onto one core.Session.
type Server struct {
	sess *core.Session
	opt  Options
	mux  *http.ServeMux
	lim  *limiter

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // submission order, for bounded retention
	nextID   uint64
	queue    chan *job

	wg      sync.WaitGroup // run workers
	running atomic.Int64
	submitted, completed, failed, timedOut,
	rejectedRate, rejectedQueue atomic.Uint64

	// Service histograms (hand-rolled Prometheus text; see obs).
	queueWaitH *obs.Histogram // submission -> worker pickup
	rateWaitH  *obs.Histogram // suggested Retry-After of rate-limit drops
	histMu     sync.Mutex
	runDur     map[string]*obs.Histogram // run duration by kind/fidelity label
}

// New builds a server over a session and starts its run workers. Call
// Drain before discarding it.
func New(sess *core.Session, opt Options) *Server {
	s := &Server{
		sess:       sess,
		opt:        opt.withDefaults(),
		jobs:       make(map[string]*job),
		queueWaitH: obs.NewHistogram(obs.DurationBounds...),
		rateWaitH:  obs.NewHistogram(obs.DurationBounds...),
		runDur:     make(map[string]*obs.Histogram),
	}
	s.queue = make(chan *job, s.opt.Queue)
	s.lim = newLimiter(s.opt.RatePerSec, s.opt.Burst, s.opt.Now)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opt.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	for i := 0; i < s.opt.Concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the routed HTTP handler, wrapped in the access-log
// middleware when Options.AccessLog is set.
func (s *Server) Handler() http.Handler {
	if s.opt.AccessLog == nil {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		lr := &logRecorder{ResponseWriter: w, runID: "-"}
		s.mux.ServeHTTP(lr, r)
		if lr.status == 0 {
			lr.status = http.StatusOK
		}
		fmt.Fprintf(s.opt.AccessLog, "%s %s %s %d %dB %.1fms id=%s\n",
			s.opt.Now().UTC().Format(time.RFC3339), r.Method, r.URL.Path,
			lr.status, lr.bytes, float64(time.Since(t0))/float64(time.Millisecond), lr.runID)
	})
}

// logRecorder captures the status, byte count, and associated run id
// of one response for the access log.
type logRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	runID  string
}

func (l *logRecorder) WriteHeader(code int) {
	l.status = code
	l.ResponseWriter.WriteHeader(code)
}

func (l *logRecorder) Write(b []byte) (int, error) {
	if l.status == 0 {
		l.status = http.StatusOK
	}
	n, err := l.ResponseWriter.Write(b)
	l.bytes += n
	return n, err
}

// setRunID tags the in-flight access-log line with a run id. Handlers
// call it as soon as they know which run a request concerns — including
// for unknown ids, so a client's 404 is still correlatable.
func setRunID(w http.ResponseWriter, id string) {
	if lr, ok := w.(*logRecorder); ok && id != "" {
		lr.runID = id
	}
}

// Drain stops admitting runs (submissions and healthz answer 503),
// lets queued and in-flight runs finish, and returns once the engine
// is idle. Status and report endpoints keep serving, so clients polling
// an in-flight run still collect its complete report. Idempotent;
// every caller blocks until the drain completes.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers finish the queued tail, then exit
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker executes queued runs until the queue closes at drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job, isolating panics (a spec that trips an engine
// invariant must fail its own run, not the process). With a RunTimeout
// configured, the scenario executes on a detached goroutine so the
// worker can abandon it at the deadline and reclaim its slot.
func (s *Server) run(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	start := s.opt.Now()
	s.queueWaitH.Observe(start.Sub(j.submitted).Seconds())
	st := s.sess.Stats()
	j.mu.Lock()
	j.state = stateRunning
	j.started = core.EngineStats{
		Parallelism: st.Parallelism, Simulations: st.Simulations,
		MemoHits: st.MemoHits, DiskHits: st.DiskHits,
	}
	j.mu.Unlock()

	// Overrides were applied at submit time; run the spec as-is.
	exec := func() (res *core.RunResult, err error) {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("run panicked: %v", p)
			}
		}()
		return s.sess.RunScenario(j.sc, core.RunConfig{})
	}
	if s.opt.RunTimeout <= 0 {
		res, err := exec()
		s.finish(j, res, err, start)
		return
	}
	type outcome struct {
		res *core.RunResult
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned run must not leak its goroutine
	go func() {
		res, err := exec()
		ch <- outcome{res, err}
	}()
	select {
	case out := <-ch:
		s.finish(j, out.res, out.err, start)
	case <-s.opt.After(s.opt.RunTimeout):
		s.timedOut.Add(1)
		j.mu.Lock()
		j.state = stateTimeout
		j.errText = fmt.Sprintf("run exceeded the %s deadline", s.opt.RunTimeout)
		j.mu.Unlock()
		// The detached goroutine finishes in the background; finish's
		// state guard discards its result.
		go func() {
			out := <-ch
			s.finish(j, out.res, out.err, start)
		}()
	}
}

// finish records one run's outcome. The state guard keeps a timed-out
// job's verdict final: when the abandoned goroutine eventually
// completes, its result (or failure) is discarded.
func (s *Server) finish(j *job, res *core.RunResult, err error, start time.Time) {
	j.mu.Lock()
	if j.state != stateRunning {
		j.mu.Unlock()
		return
	}
	if err != nil {
		j.state = stateFailed
		j.errText = err.Error()
		j.mu.Unlock()
		s.failed.Add(1)
		return
	}
	j.state = stateDone
	j.stats = res.Envelope.Stats
	j.env = res.Envelope.JSON()
	j.span = res.Span
	j.mu.Unlock()
	s.observeRun(res.Envelope.Kind, res.Envelope.Fidelity, s.opt.Now().Sub(start).Seconds())
	s.completed.Add(1)
}

// observeRun records one completed run's duration in the histogram for
// its kind/fidelity label set.
func (s *Server) observeRun(kind, fidelity string, seconds float64) {
	label := `kind="` + kind + `"`
	if fidelity != "" {
		label += `,fidelity="` + fidelity + `"`
	}
	s.histMu.Lock()
	h := s.runDur[label]
	if h == nil {
		h = obs.NewHistogram(obs.DurationBounds...)
		s.runDur[label] = h
	}
	s.histMu.Unlock()
	h.Observe(seconds)
}

// submission is the wrapped POST body form; a bare scenario/fleet JSON
// object is equally accepted.
type submission struct {
	Spec   json.RawMessage `json:"spec"`
	Config core.RunConfig  `json:"config"`
}

// decodeSubmission accepts either form. The wrapper is recognized by
// its spec key; anything else is treated as a bare spec so parse errors
// carry the same text the CLI prints for a bad file.
func decodeSubmission(body []byte) (spec []byte, cfg core.RunConfig) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var sub submission
	if err := dec.Decode(&sub); err == nil && len(sub.Spec) > 0 {
		return sub.Spec, sub.Config
	}
	return body, core.RunConfig{}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "server draining; not accepting new runs")
		return
	}
	if ok, wait := s.lim.allow(clientKey(r.RemoteAddr)); !ok {
		s.rejectedRate.Add(1)
		s.rateWaitH.Observe(wait.Seconds())
		w.Header().Set("Retry-After", retryAfter(wait))
		writeError(w, http.StatusTooManyRequests, "submission rate limit exceeded")
		return
	}
	body, err := readBody(w, r, s.opt.MaxBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, cfg := decodeSubmission(body)
	if err := cfg.PerRunOnly(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sc, err := scenario.Parse(spec)
	if err != nil {
		// The same one-line text the CLI prints for this spec.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := core.ApplyOverrides(sc, cfg); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	j := &job{sc: sc, state: stateQueued, submitted: s.opt.Now()}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server draining; not accepting new runs")
		return
	}
	if len(s.jobs) >= s.opt.MaxRuns && !s.evictLocked() {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "run table full of unfinished runs")
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("run-%06d", s.nextID)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	default:
		s.mu.Unlock()
		s.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "run queue full; retry later")
		return
	}
	s.mu.Unlock()
	s.submitted.Add(1)
	setRunID(w, j.id)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]string{
		"id":         j.id,
		"state":      stateQueued,
		"status_url": "/v1/runs/" + j.id,
		"report_url": "/v1/runs/" + j.id + "/report",
	})
}

// evictLocked drops the oldest finished run to admit a new one; false
// when every retained run is still queued or executing.
func (s *Server) evictLocked() bool {
	for i, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		finished := j.state == stateDone || j.state == stateFailed || j.state == stateTimeout
		j.mu.Unlock()
		if finished {
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

// status is the GET /v1/runs/{id} shape (also returned by the report
// endpoint for runs that have not finished).
type status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Progress counts engine activity since the run started (live
	// totals while running, the envelope stats once done). On a server
	// executing runs concurrently the live delta includes overlapping
	// runs' activity — the engine pool is shared.
	Progress core.EngineStats `json:"progress"`
	Error    string           `json:"error,omitempty"`
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) statusOf(j *job) status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := status{ID: j.id, State: j.state, Error: j.errText}
	switch j.state {
	case stateRunning:
		now := s.sess.Stats()
		st.Progress = core.EngineStats{
			Parallelism: now.Parallelism,
			Simulations: now.Simulations - j.started.Simulations,
			MemoHits:    now.MemoHits - j.started.MemoHits,
			DiskHits:    now.DiskHits - j.started.DiskHits,
		}
	case stateDone:
		st.Progress = j.stats
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setRunID(w, id)
	j := s.jobByID(id)
	if j == nil {
		writeRunError(w, http.StatusNotFound, "unknown run id", id)
		return
	}
	writeJSON(w, s.statusOf(j))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setRunID(w, id)
	j := s.jobByID(id)
	if j == nil {
		writeRunError(w, http.StatusNotFound, "unknown run id", id)
		return
	}
	j.mu.Lock()
	state, env, errText := j.state, j.env, j.errText
	j.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(env) // core.Envelope bytes, verbatim
	case stateFailed:
		writeRunError(w, http.StatusInternalServerError, errText, id)
	case stateTimeout:
		writeRunError(w, http.StatusGatewayTimeout, errText, id)
	default: // still queued or running: say so, keep polling
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(s.statusOf(j))
	}
}

// handleTrace serves a finished run's span subtree as Chrome
// trace_event JSON cut from the session tracer.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setRunID(w, id)
	j := s.jobByID(id)
	if j == nil {
		writeRunError(w, http.StatusNotFound, "unknown run id", id)
		return
	}
	tr := s.sess.Tracer()
	if tr == nil {
		writeRunError(w, http.StatusNotFound, "tracing is not enabled on this server", id)
		return
	}
	j.mu.Lock()
	state, span, errText := j.state, j.span, j.errText
	j.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(tr.ChromeTraceUnder(span))
	case stateFailed:
		writeRunError(w, http.StatusInternalServerError, errText, id)
	case stateTimeout:
		writeRunError(w, http.StatusGatewayTimeout, errText, id)
	default: // still queued or running: say so, keep polling
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(s.statusOf(j))
	}
}

func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		About string `json:"about"`
	}
	var list []entry
	for _, name := range partition.Names() {
		list = append(list, entry{Name: name, About: partition.About(name)})
	}
	writeJSON(w, map[string]any{"policies": list})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.sess.Stats()
	s.mu.Lock()
	queued := len(s.queue)
	retained := len(s.jobs)
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "cachepart_engine_parallelism %d\n", st.Parallelism)
	fmt.Fprintf(w, "cachepart_engine_simulations_total %d\n", st.Simulations)
	fmt.Fprintf(w, "cachepart_engine_memo_hits_total %d\n", st.MemoHits)
	fmt.Fprintf(w, "cachepart_engine_disk_hits_total %d\n", st.DiskHits)
	fmt.Fprintf(w, "cachepart_engine_busy_seconds_total %g\n", st.BusySeconds)
	fmt.Fprintf(w, "cachepart_runs_submitted_total %d\n", s.submitted.Load())
	fmt.Fprintf(w, "cachepart_runs_completed_total %d\n", s.completed.Load())
	fmt.Fprintf(w, "cachepart_runs_failed_total %d\n", s.failed.Load())
	fmt.Fprintf(w, "cachepart_runs_timeout_total %d\n", s.timedOut.Load())
	fmt.Fprintf(w, "cachepart_runs_rejected_total{reason=\"rate_limit\"} %d\n", s.rejectedRate.Load())
	fmt.Fprintf(w, "cachepart_runs_rejected_total{reason=\"queue_full\"} %d\n", s.rejectedQueue.Load())
	fmt.Fprintf(w, "cachepart_runs_queued %d\n", queued)
	fmt.Fprintf(w, "cachepart_runs_running %d\n", s.running.Load())
	fmt.Fprintf(w, "cachepart_runs_retained %d\n", retained)
	fmt.Fprintf(w, "cachepart_draining %d\n", draining)
	fmt.Fprintf(w, "cachepart_engine_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(w, "cachepart_engine_active_workers %d\n", st.ActiveWorkers)
	// Memo contention roll-up: the memo-wait phase counts genuine
	// singleflight joins, re-published as a Prometheus summary so a
	// dashboard can alert on join time without parsing phase labels.
	var memoWaitSec float64
	var memoWaitN uint64
	for _, p := range st.Phases {
		fmt.Fprintf(w, "cachepart_engine_phase_seconds_total{phase=%q} %g\n", p.Name, p.Seconds)
		fmt.Fprintf(w, "cachepart_engine_phase_runs_total{phase=%q} %d\n", p.Name, p.Count)
		if p.Name == sched.PhaseMemoWait {
			memoWaitSec, memoWaitN = p.Seconds, p.Count
		}
	}
	fmt.Fprintf(w, "cachepart_memo_wait_seconds_sum %g\n", memoWaitSec)
	fmt.Fprintf(w, "cachepart_memo_wait_seconds_count %d\n", memoWaitN)
	for i, n := range s.sess.Runner().MemoShardSizes() {
		fmt.Fprintf(w, "cachepart_memo_shard_entries{shard=\"%d\"} %d\n", i, n)
	}
	s.queueWaitH.WriteProm(w, "cachepart_run_queue_wait_seconds", "")
	s.rateWaitH.WriteProm(w, "cachepart_rate_limit_wait_seconds", "")
	s.histMu.Lock()
	labels := make([]string, 0, len(s.runDur))
	for l := range s.runDur {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		s.runDur[l].WriteProm(w, "cachepart_run_duration_seconds", l)
	}
	s.histMu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// readBody reads a capped request body; oversize bodies surface as a
// one-line error instead of a connection reset.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, limit)
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(body); err != nil {
		return nil, fmt.Errorf("request body over %d bytes", limit)
	}
	return buf.Bytes(), nil
}

func retryAfter(wait time.Duration) string {
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs == 0 {
		secs++ // ceil: never tell a client to retry too early
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(map[string]string{"error": msg})
}

// writeRunError is writeError with the run id the failure concerns
// echoed in the body, so clients (and log scrapers) can correlate
// errors with submissions without parsing the URL.
func writeRunError(w http.ResponseWriter, code int, msg, id string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(map[string]string{"error": msg, "id": id})
}
