// Package server exposes a core.Session over HTTP: `cachepart serve`.
//
// One long-lived session backs every request, so concurrent clients'
// runs deduplicate against the same warm in-memory memo and — when the
// session has a cache directory — the same persistent store. The API:
//
//	POST /v1/runs             submit scenario/fleet JSON (or {"spec": ..., "config": ...})
//	GET  /v1/runs/{id}        status + live progress counters
//	GET  /v1/runs/{id}/report the versioned report envelope (core.Envelope)
//	GET  /v1/policies         the partition-policy registry
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             engine + service counters, Prometheus text format
//
// Robustness is part of the contract: per-client token-bucket rate
// limiting (429 + Retry-After), a bounded run queue with backpressure
// (503 + Retry-After), capped request bodies, panic-isolated run
// goroutines, and graceful drain — Drain stops admissions, finishes
// queued and in-flight runs (each persisting through the session's
// write-through disk store), then returns.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/scenario"
)

// Options configure the service limits. Zero values select defaults.
type Options struct {
	// Queue is the pending-run queue depth (default 16). A full queue
	// rejects submissions with 503 + Retry-After.
	Queue int
	// Concurrency is how many runs execute at once (default 2). Each
	// run already fans across the engine's worker pool; more than a few
	// concurrent runs just contend for the same CPUs.
	Concurrency int
	// RatePerSec and Burst shape each client's submission token bucket
	// (defaults 2/s, burst 5).
	RatePerSec float64
	Burst      int
	// MaxBody caps a submission body in bytes (default 1 MiB).
	MaxBody int64
	// MaxRuns bounds the run table (default 1024); when full, the
	// oldest finished run is evicted to admit a new one.
	MaxRuns int
	// Now is the clock (default time.Now); tests inject one to step the
	// rate limiter deterministically.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Queue <= 0 {
		o.Queue = 16
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2
	}
	if o.RatePerSec <= 0 {
		o.RatePerSec = 2
	}
	if o.Burst <= 0 {
		o.Burst = 5
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Run states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one submitted run.
type job struct {
	id        string
	sc        *scenario.Scenario
	submitted time.Time

	mu      sync.Mutex
	state   string
	started core.EngineStats // engine totals when the run started
	stats   core.EngineStats // envelope stats, done only
	env     []byte           // envelope JSON, done only
	errText string           // failed only
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// Server routes HTTP traffic onto one core.Session.
type Server struct {
	sess *core.Session
	opt  Options
	mux  *http.ServeMux
	lim  *limiter

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // submission order, for bounded retention
	nextID   uint64
	queue    chan *job

	wg      sync.WaitGroup // run workers
	running atomic.Int64
	submitted, completed, failed,
	rejectedRate, rejectedQueue atomic.Uint64
}

// New builds a server over a session and starts its run workers. Call
// Drain before discarding it.
func New(sess *core.Session, opt Options) *Server {
	s := &Server{
		sess: sess,
		opt:  opt.withDefaults(),
		jobs: make(map[string]*job),
	}
	s.queue = make(chan *job, s.opt.Queue)
	s.lim = newLimiter(s.opt.RatePerSec, s.opt.Burst, s.opt.Now)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	for i := 0; i < s.opt.Concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting runs (submissions and healthz answer 503),
// lets queued and in-flight runs finish, and returns once the engine
// is idle. Status and report endpoints keep serving, so clients polling
// an in-flight run still collect its complete report. Idempotent;
// every caller blocks until the drain completes.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers finish the queued tail, then exit
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker executes queued runs until the queue closes at drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job, isolating panics (a spec that trips an engine
// invariant must fail its own run, not the process).
func (s *Server) run(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	defer func() {
		if p := recover(); p != nil {
			s.failed.Add(1)
			j.mu.Lock()
			j.state = stateFailed
			j.errText = fmt.Sprintf("run panicked: %v", p)
			j.mu.Unlock()
		}
	}()
	st := s.sess.Stats()
	j.mu.Lock()
	j.state = stateRunning
	j.started = core.EngineStats{
		Parallelism: st.Parallelism, Simulations: st.Simulations,
		MemoHits: st.MemoHits, DiskHits: st.DiskHits,
	}
	j.mu.Unlock()

	// Overrides were applied at submit time; run the spec as-is.
	res, err := s.sess.RunScenario(j.sc, core.RunConfig{})
	if err != nil {
		s.failed.Add(1)
		j.mu.Lock()
		j.state = stateFailed
		j.errText = err.Error()
		j.mu.Unlock()
		return
	}
	s.completed.Add(1)
	j.mu.Lock()
	j.state = stateDone
	j.stats = res.Envelope.Stats
	j.env = res.Envelope.JSON()
	j.mu.Unlock()
}

// submission is the wrapped POST body form; a bare scenario/fleet JSON
// object is equally accepted.
type submission struct {
	Spec   json.RawMessage `json:"spec"`
	Config core.RunConfig  `json:"config"`
}

// decodeSubmission accepts either form. The wrapper is recognized by
// its spec key; anything else is treated as a bare spec so parse errors
// carry the same text the CLI prints for a bad file.
func decodeSubmission(body []byte) (spec []byte, cfg core.RunConfig) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var sub submission
	if err := dec.Decode(&sub); err == nil && len(sub.Spec) > 0 {
		return sub.Spec, sub.Config
	}
	return body, core.RunConfig{}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "server draining; not accepting new runs")
		return
	}
	if ok, wait := s.lim.allow(clientKey(r.RemoteAddr)); !ok {
		s.rejectedRate.Add(1)
		w.Header().Set("Retry-After", retryAfter(wait))
		writeError(w, http.StatusTooManyRequests, "submission rate limit exceeded")
		return
	}
	body, err := readBody(w, r, s.opt.MaxBody)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, cfg := decodeSubmission(body)
	if err := cfg.PerRunOnly(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sc, err := scenario.Parse(spec)
	if err != nil {
		// The same one-line text the CLI prints for this spec.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := core.ApplyOverrides(sc, cfg); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	j := &job{sc: sc, state: stateQueued, submitted: s.opt.Now()}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server draining; not accepting new runs")
		return
	}
	if len(s.jobs) >= s.opt.MaxRuns && !s.evictLocked() {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "run table full of unfinished runs")
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("run-%06d", s.nextID)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	default:
		s.mu.Unlock()
		s.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "run queue full; retry later")
		return
	}
	s.mu.Unlock()
	s.submitted.Add(1)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]string{
		"id":         j.id,
		"state":      stateQueued,
		"status_url": "/v1/runs/" + j.id,
		"report_url": "/v1/runs/" + j.id + "/report",
	})
}

// evictLocked drops the oldest finished run to admit a new one; false
// when every retained run is still queued or executing.
func (s *Server) evictLocked() bool {
	for i, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		finished := j.state == stateDone || j.state == stateFailed
		j.mu.Unlock()
		if finished {
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

// status is the GET /v1/runs/{id} shape (also returned by the report
// endpoint for runs that have not finished).
type status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Progress counts engine activity since the run started (live
	// totals while running, the envelope stats once done). On a server
	// executing runs concurrently the live delta includes overlapping
	// runs' activity — the engine pool is shared.
	Progress core.EngineStats `json:"progress"`
	Error    string           `json:"error,omitempty"`
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) statusOf(j *job) status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := status{ID: j.id, State: j.state, Error: j.errText}
	switch j.state {
	case stateRunning:
		now := s.sess.Stats()
		st.Progress = core.EngineStats{
			Parallelism: now.Parallelism,
			Simulations: now.Simulations - j.started.Simulations,
			MemoHits:    now.MemoHits - j.started.MemoHits,
			DiskHits:    now.DiskHits - j.started.DiskHits,
		}
	case stateDone:
		st.Progress = j.stats
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown run id")
		return
	}
	writeJSON(w, s.statusOf(j))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown run id")
		return
	}
	j.mu.Lock()
	state, env, errText := j.state, j.env, j.errText
	j.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(env) // core.Envelope bytes, verbatim
	case stateFailed:
		writeError(w, http.StatusInternalServerError, errText)
	default: // still queued or running: say so, keep polling
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(s.statusOf(j))
	}
}

func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		About string `json:"about"`
	}
	var list []entry
	for _, name := range partition.Names() {
		list = append(list, entry{Name: name, About: partition.About(name)})
	}
	writeJSON(w, map[string]any{"policies": list})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.sess.Stats()
	s.mu.Lock()
	queued := len(s.queue)
	retained := len(s.jobs)
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "cachepart_engine_parallelism %d\n", st.Parallelism)
	fmt.Fprintf(w, "cachepart_engine_simulations_total %d\n", st.Simulations)
	fmt.Fprintf(w, "cachepart_engine_memo_hits_total %d\n", st.MemoHits)
	fmt.Fprintf(w, "cachepart_engine_disk_hits_total %d\n", st.DiskHits)
	fmt.Fprintf(w, "cachepart_engine_busy_seconds_total %g\n", st.BusySeconds)
	fmt.Fprintf(w, "cachepart_runs_submitted_total %d\n", s.submitted.Load())
	fmt.Fprintf(w, "cachepart_runs_completed_total %d\n", s.completed.Load())
	fmt.Fprintf(w, "cachepart_runs_failed_total %d\n", s.failed.Load())
	fmt.Fprintf(w, "cachepart_runs_rejected_total{reason=\"rate_limit\"} %d\n", s.rejectedRate.Load())
	fmt.Fprintf(w, "cachepart_runs_rejected_total{reason=\"queue_full\"} %d\n", s.rejectedQueue.Load())
	fmt.Fprintf(w, "cachepart_runs_queued %d\n", queued)
	fmt.Fprintf(w, "cachepart_runs_running %d\n", s.running.Load())
	fmt.Fprintf(w, "cachepart_runs_retained %d\n", retained)
	fmt.Fprintf(w, "cachepart_draining %d\n", draining)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// readBody reads a capped request body; oversize bodies surface as a
// one-line error instead of a connection reset.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, limit)
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(body); err != nil {
		return nil, fmt.Errorf("request body over %d bytes", limit)
	}
	return buf.Bytes(), nil
}

func retryAfter(wait time.Duration) string {
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs == 0 {
		secs++ // ceil: never tell a client to retry too early
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(map[string]string{"error": msg})
}
