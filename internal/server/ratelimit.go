package server

import (
	"net"
	"sync"
	"time"
)

// maxClients bounds the bucket table; past it, idle buckets (refilled
// to burst, so forgetting them changes nothing) are pruned on insert.
const maxClients = 4096

// limiter is a per-client token bucket: each submission spends one
// token, tokens refill at rate per second up to burst. Clients are
// keyed by remote IP.
type limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	return &limiter{
		rate: rate, burst: float64(burst), now: now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token for key. When denied, it returns how long
// until the next token accrues — the 429 Retry-After hint.
func (l *limiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxClients {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// prune drops buckets that have been idle long enough to refill
// completely — recreating one later is indistinguishable.
func (l *limiter) prune(now time.Time) {
	for k, b := range l.buckets {
		if now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// clientKey buckets requests by remote IP (the port changes per
// connection and must not split one client across buckets).
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
