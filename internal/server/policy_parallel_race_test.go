package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestPolicyParallelPollDuringRun exercises the full concurrent stack:
// a session fixed at policy-parallel 4 replays a multi-policy fleet
// while goroutines hammer the run's status and /metrics. Under -race
// (CI's test job) this fails loudly if concurrent policy episodes race
// each other, the memo shards, or the observability readers. It then
// pins the memo metrics the endpoint grew alongside the sharding.
func TestPolicyParallelPollDuringRun(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{PolicyParallel: 4}, Options{Burst: 10})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, spec)

	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return // server shutting down mid-poll is fine
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", sub.StatusURL} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				get(path)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(path)
	}

	pollReport(t, ts, sub.ReportURL)
	close(stop)
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"cachepart_memo_wait_seconds_sum ",
		"cachepart_memo_wait_seconds_count ",
		`cachepart_memo_shard_entries{shard="0"} `,
		`cachepart_memo_shard_entries{shard="31"} `,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q after a fleet run", want)
		}
	}
	// The run memoised pair simulations, so the shard gauges must sum to
	// a live population — zeros everywhere would mean the gauge is wired
	// to the wrong runner.
	total := 0
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "cachepart_memo_shard_entries{") {
			var shard, n int
			if _, err := fmt.Sscanf(line, `cachepart_memo_shard_entries{shard="%d"} %d`, &shard, &n); err != nil {
				t.Fatalf("unparseable shard gauge %q: %v", line, err)
			}
			total += n
		}
	}
	if total == 0 {
		t.Error("memo shard gauges sum to zero after a fleet run")
	}
}
