package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
)

const examplePath = "../../examples/scenarios/fleet-utility-50.json"

// newTestServer stands up a warm quick-scale session behind httptest.
// Every test gets its own session so cold-run expectations hold. The
// session carries a tracer, so every test here doubles as a check
// that tracing changes nothing about the service's behavior.
func newTestServer(t *testing.T, cfg core.RunConfig, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Quick = true
	sess, err := core.NewSessionWith(cfg, obs.New(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sess, opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	return srv, ts
}

// zeroPhaseSeconds blanks the wall-clock phase durations — the only
// non-deterministic field an envelope carries — so envelopes from two
// runs of the same spec can be compared exactly.
func zeroPhaseSeconds(st *core.EngineStats) {
	for i := range st.Phases {
		st.Phases[i].Seconds = 0
	}
}

type submitResp struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	ReportURL string `json:"report_url"`
}

func submit(t *testing.T, ts *httptest.Server, body []byte) submitResp {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, raw)
	}
	var sub submitResp
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatalf("submit response %s: %v", raw, err)
	}
	if sub.ID == "" || sub.State != "queued" ||
		sub.StatusURL != "/v1/runs/"+sub.ID || sub.ReportURL != "/v1/runs/"+sub.ID+"/report" {
		t.Fatalf("submit response shape: %+v", sub)
	}
	return sub
}

// pollReport polls the report endpoint until the run finishes and
// returns the envelope bytes verbatim.
func pollReport(t *testing.T, ts *httptest.Server, reportURL string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + reportURL)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return raw
		case http.StatusAccepted: // still queued or running
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("report: status %d, body %s", resp.StatusCode, raw)
		}
	}
	t.Fatal("run did not finish before the deadline")
	return nil
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndFleetExample is the acceptance path: submit a shipped
// example over HTTP, poll to completion, and require the envelope —
// report bytes included — to match what the CLI's session produces for
// the same spec cold. Then resubmit warm and require zero simulations
// with the identical report.
func TestEndToEndFleetExample(t *testing.T) {
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, core.RunConfig{}, Options{})

	sub := submit(t, ts, spec)
	got := pollReport(t, ts, sub.ReportURL)

	// Reference: a fresh cold session, as `cachepart scenario run -json`
	// builds. Engine determinism makes every field reproducible except
	// the wall-clock phase durations, so the envelopes must match
	// exactly once those are blanked.
	ref, err := core.NewSession(core.RunConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.RunSpec(spec, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var gotEnv core.Envelope
	if err := json.Unmarshal(got, &gotEnv); err != nil {
		t.Fatal(err)
	}
	wantEnv := *res.Envelope
	wantEnv.Stats.Phases = append([]core.PhaseStat(nil), wantEnv.Stats.Phases...)
	zeroPhaseSeconds(&gotEnv.Stats)
	zeroPhaseSeconds(&wantEnv.Stats)
	if !reflect.DeepEqual(gotEnv, wantEnv) {
		t.Errorf("server envelope diverges from CLI session\n--- server ---\n%+v\n--- cli ---\n%+v", gotEnv, wantEnv)
	}

	// Warm resubmission: same spec, same session — all memo hits.
	sub2 := submit(t, ts, spec)
	warmRaw := pollReport(t, ts, sub2.ReportURL)
	var cold, warm core.Envelope
	if err := json.Unmarshal(got, &cold); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warmRaw, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Simulations != 0 || warm.Stats.MemoHits == 0 {
		t.Errorf("warm resubmission stats: %+v", warm.Stats)
	}
	if warm.Report != cold.Report {
		t.Error("warm report drifted from cold report")
	}

	// The status endpoint for a finished run reports done + final stats.
	var st struct {
		ID       string           `json:"id"`
		State    string           `json:"state"`
		Progress core.EngineStats `json:"progress"`
	}
	if code := getJSON(t, ts.URL+sub.StatusURL, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	zeroPhaseSeconds(&st.Progress)
	zeroPhaseSeconds(&cold.Stats)
	if st.ID != sub.ID || st.State != "done" || !reflect.DeepEqual(st.Progress, cold.Stats) {
		t.Errorf("finished status: %+v (want stats %+v)", st, cold.Stats)
	}

	// Service metrics reflect the two completed runs.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{
		"cachepart_runs_submitted_total 2",
		"cachepart_runs_completed_total 2",
		"cachepart_runs_failed_total 0",
		fmt.Sprintf("cachepart_engine_simulations_total %d", cold.Stats.Simulations),
		fmt.Sprintf("cachepart_engine_memo_hits_total %d", warm.Stats.MemoHits),
	} {
		if !strings.Contains(string(metrics), line+"\n") {
			t.Errorf("metrics missing %q:\n%s", line, metrics)
		}
	}
	// The observability families: per-phase engine accounting and the
	// run-duration / queue-wait histograms.
	for _, frag := range []string{
		`cachepart_engine_phase_runs_total{phase="oracle"} `,
		`cachepart_engine_phase_seconds_total{phase="oracle"} `,
		`cachepart_engine_phase_runs_total{phase="episode"} `,
		`cachepart_engine_phase_runs_total{phase="queue-wait"} `,
		`cachepart_run_duration_seconds_bucket{kind="fleet",fidelity="exact",le="+Inf"} 2`,
		`cachepart_run_duration_seconds_count{kind="fleet",fidelity="exact"} 2`,
		`cachepart_run_queue_wait_seconds_count 2`,
		`cachepart_rate_limit_wait_seconds_count 0`,
		"cachepart_engine_queue_depth 0",
		"cachepart_engine_active_workers 0",
	} {
		if !strings.Contains(string(metrics), frag) {
			t.Errorf("metrics missing %q:\n%s", frag, metrics)
		}
	}
}

// TestFidelityTiersSeparateKeys is the end-to-end aliasing check: an
// exact run followed by a fast run of the same fleet spec on one warm
// session with a persistent store. The fast tier's profiling runs carry
// their own memo/disk keys, so the second run must simulate (not memo-
// or disk-hit the exact run's records), echo its fidelity in the
// envelope, and report the analytic accounting line.
func TestFidelityTiersSeparateKeys(t *testing.T) {
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, core.RunConfig{CacheDir: t.TempDir()}, Options{})

	sub := submit(t, ts, spec)
	var exact core.Envelope
	if err := json.Unmarshal(pollReport(t, ts, sub.ReportURL), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Fidelity != "exact" {
		t.Fatalf("plain fleet submission ran at fidelity %q, want exact", exact.Fidelity)
	}

	wrapped, err := json.Marshal(map[string]any{
		"spec":   json.RawMessage(spec),
		"config": map[string]any{"fidelity": "fast"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub2 := submit(t, ts, wrapped)
	var fast core.Envelope
	if err := json.Unmarshal(pollReport(t, ts, sub2.ReportURL), &fast); err != nil {
		t.Fatal(err)
	}
	if fast.Fidelity != "fast" {
		t.Errorf("fast submission echoed fidelity %q", fast.Fidelity)
	}
	// The profiling runs are new keys: they must execute, not replay the
	// exact run's memo entries or disk records.
	if fast.Stats.Simulations == 0 {
		t.Errorf("fast run simulated nothing — profiling keys aliased the exact run: %+v", fast.Stats)
	}
	if fast.Stats.DiskHits != 0 {
		t.Errorf("fast run read %d disk records written by the exact run — key aliasing", fast.Stats.DiskHits)
	}
	if !strings.Contains(fast.Report, "fidelity: fast (model ") {
		t.Errorf("fast report carries no fidelity line:\n%s", fast.Report)
	}

	// Warm fast resubmission: now everything replays from this tier's
	// own keys.
	sub3 := submit(t, ts, wrapped)
	var warm core.Envelope
	if err := json.Unmarshal(pollReport(t, ts, sub3.ReportURL), &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Simulations != 0 || warm.Stats.MemoHits == 0 {
		t.Errorf("warm fast resubmission stats: %+v", warm.Stats)
	}
	if warm.Report != fast.Report {
		t.Error("warm fast report drifted from cold fast report")
	}
}

// TestMalformedSpec400 pins the error contract: a bad spec answers 400
// with exactly the one-line text the CLI prints for the same file.
func TestMalformedSpec400(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{})
	for _, bad := range []string{
		`{"name": `,
		`{"name": "x", "jobs": [{"app": "no-such-app", "role": "batch", "threads": 1}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec: status %d", resp.StatusCode)
		}
		_, want := scenario.Parse([]byte(bad))
		if want == nil {
			t.Fatal("fixture unexpectedly parses")
		}
		if body.Error != want.Error() {
			t.Errorf("server error %q diverges from CLI text %q", body.Error, want)
		}
		if strings.ContainsRune(body.Error, '\n') {
			t.Errorf("error is not one line: %q", body.Error)
		}
	}
}

// TestEngineFieldsRejected: the wrapped form may carry per-run
// overrides, but engine fields are fixed when the server starts.
func TestEngineFieldsRejected(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{})
	body := `{"spec": {"name": "x"}, "config": {"scale": 0.5}}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(raw, []byte("fixed when the session starts")) {
		t.Errorf("engine-field config: status %d, body %s", resp.StatusCode, raw)
	}
}

// TestOverrideApplies: a wrapped submission's per-run override changes
// the run (machines override on a fleet spec shows up in the report).
func TestOverrideApplies(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := json.Marshal(map[string]any{
		"spec":   json.RawMessage(spec),
		"config": map[string]any{"machines": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, wrapped)
	raw := pollReport(t, ts, sub.ReportURL)
	var env core.Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.Report, "(10 machines") {
		t.Errorf("machines override not reflected in report:\n%s", env.Report)
	}
}

func TestRateLimit429(t *testing.T) {
	clock := time.Unix(1000, 0)
	_, ts := newTestServer(t, core.RunConfig{}, Options{
		RatePerSec: 0.5, Burst: 1,
		Now: func() time.Time { return clock },
	})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	submit(t, ts, spec) // spends the only token

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: status %d, body %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte("rate limit")) {
		t.Errorf("429 body: %s", raw)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 2 {
		t.Errorf("Retry-After %q (want 1-2s at 0.5 tokens/s)", resp.Header.Get("Retry-After"))
	}

	// Advancing the injected clock past the refill admits the client again.
	clock = clock.Add(3 * time.Second)
	submit(t, ts, spec)
}

func TestQueueBackpressure503(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{Queue: 1, Concurrency: 1, Burst: 10})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	submit(t, ts, spec) // worker picks this up (cold run, runs a while)
	submit(t, ts, spec) // parks in the single queue slot
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(raw, []byte("queue full")) {
		t.Fatalf("third submission: status %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestReportBeforeDone: polling a queued run's report answers 202 with
// its status, not an empty or partial envelope.
func TestReportBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{Queue: 4, Concurrency: 1, Burst: 10})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	submit(t, ts, spec)           // occupies the single worker, cold
	queued := submit(t, ts, spec) // behind it in the queue
	resp, err := http.Get(ts.URL + queued.ReportURL)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || (st.State != "queued" && st.State != "running") {
		t.Errorf("early report: status %d, state %q", resp.StatusCode, st.State)
	}
}

func TestUnknownRun404(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{})
	for _, path := range []string{"/v1/runs/run-999999", "/v1/runs/run-999999/report"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("%s: status %d", path, code)
		}
	}
}

func TestPoliciesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{})
	var body struct {
		Policies []struct {
			Name  string `json:"name"`
			About string `json:"about"`
		} `json:"policies"`
	}
	if code := getJSON(t, ts.URL+"/v1/policies", &body); code != http.StatusOK {
		t.Fatalf("policies: status %d", code)
	}
	names := make(map[string]bool)
	for _, p := range body.Policies {
		names[p.Name] = true
		if p.About == "" {
			t.Errorf("policy %q has no description", p.Name)
		}
	}
	for _, want := range []string{"shared", "utility"} {
		if !names[want] {
			t.Errorf("registry missing %q: %v", want, names)
		}
	}
}

// TestGracefulDrain: Drain stops admissions (healthz and submissions
// answer 503) but queued and in-flight runs complete and their reports
// stay fetchable.
func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, core.RunConfig{}, Options{Queue: 4, Concurrency: 1, Burst: 10})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	running := submit(t, ts, spec)
	queued := submit(t, ts, spec) // still in the queue when the drain starts

	done := make(chan struct{})
	go func() { srv.Drain(); close(done) }()

	// Drain flips the health check to 503.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New submissions are refused while draining.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(raw, []byte("draining")) {
		t.Errorf("submission during drain: status %d, body %s", resp.StatusCode, raw)
	}

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not complete")
	}

	// Both the in-flight and the queued run finished with full reports.
	for _, sub := range []submitResp{running, queued} {
		var env core.Envelope
		if code := getJSON(t, ts.URL+sub.ReportURL, &env); code != http.StatusOK {
			t.Fatalf("%s after drain: status %d", sub.ReportURL, code)
		}
		if env.Report == "" || env.SchemaVersion != core.SchemaVersion {
			t.Errorf("%s after drain: incomplete envelope %+v", sub.ReportURL, env)
		}
	}
}

// TestRunTableEviction: at MaxRuns the oldest finished run is evicted
// to admit a new submission.
func TestRunTableEviction(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{MaxRuns: 2, Burst: 20})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	first := submit(t, ts, spec)
	pollReport(t, ts, first.ReportURL)
	second := submit(t, ts, spec)
	pollReport(t, ts, second.ReportURL)

	third := submit(t, ts, spec) // evicts first (oldest finished)
	pollReport(t, ts, third.ReportURL)
	if code := getJSON(t, ts.URL+first.StatusURL, nil); code != http.StatusNotFound {
		t.Errorf("evicted run still present: status %d", code)
	}
	if code := getJSON(t, ts.URL+second.StatusURL, nil); code != http.StatusOK {
		t.Errorf("retained run missing: status %d", code)
	}
}

// TestTraceEndpoint: a finished run's trace is Chrome trace_event JSON
// whose events cover the run's span subtree; unknown runs 404 with the
// id echoed in the body.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, spec)
	pollReport(t, ts, sub.ReportURL)

	resp, err := http.Get(ts.URL + sub.StatusURL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d, body %s", resp.StatusCode, raw)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, raw)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		names[ev.Name]++
	}
	for _, want := range []string{"run", "compile", "oracle", "episode", "simulate"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q spans: %v", want, names)
		}
	}

	// A second run's trace must not leak the first run's spans: every
	// trace is cut to its own run subtree.
	sub2 := submit(t, ts, spec)
	pollReport(t, ts, sub2.ReportURL)
	resp2, err := http.Get(ts.URL + sub2.StatusURL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var doc2 struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw2, &doc2); err != nil {
		t.Fatal(err)
	}
	runs := 0
	for _, ev := range doc2.TraceEvents {
		if ev.Name == "run" {
			runs++
		}
	}
	if runs != 1 {
		t.Errorf("second run's trace holds %d run spans, want exactly its own", runs)
	}

	// Unknown run: 404 with the id echoed.
	resp3, err := http.Get(ts.URL + "/v1/runs/run-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
		ID    string `json:"id"`
	}
	err = json.NewDecoder(resp3.Body).Decode(&body)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusNotFound || body.ID != "run-999999" {
		t.Errorf("unknown trace: status %d, body %+v", resp3.StatusCode, body)
	}
}

// TestTraceDisabled404: a server whose session has no tracer answers
// trace requests with an explanatory 404, not a panic or empty doc.
func TestTraceDisabled404(t *testing.T) {
	sess, err := core.NewSession(core.RunConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sess, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, spec)
	pollReport(t, ts, sub.ReportURL)
	resp, err := http.Get(ts.URL + sub.StatusURL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !bytes.Contains(raw, []byte("not enabled")) ||
		!bytes.Contains(raw, []byte(sub.ID)) {
		t.Errorf("trace without tracer: status %d, body %s", resp.StatusCode, raw)
	}
}

// TestErrorBodiesCarryRunID: 404s on the run endpoints echo the
// requested id so clients can correlate failures with submissions.
func TestErrorBodiesCarryRunID(t *testing.T) {
	_, ts := newTestServer(t, core.RunConfig{}, Options{})
	for _, path := range []string{
		"/v1/runs/run-424242",
		"/v1/runs/run-424242/report",
		"/v1/runs/run-424242/trace",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
			ID    string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound || body.ID != "run-424242" || body.Error == "" {
			t.Errorf("%s: status %d, body %+v", path, resp.StatusCode, body)
		}
	}
}

// lockedBuffer is a goroutine-safe io.Writer for capturing access logs.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLog: with AccessLog set, every request emits one line, and
// run-scoped requests carry their run id.
func TestAccessLog(t *testing.T) {
	var logbuf lockedBuffer
	_, ts := newTestServer(t, core.RunConfig{}, Options{AccessLog: &logbuf})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	sub := submit(t, ts, spec)
	pollReport(t, ts, sub.ReportURL)
	getJSON(t, ts.URL+"/v1/runs/run-999999", nil) // 404, still logged

	// The log line lands after the handler returns; the client can see
	// the response first, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var log string
	for time.Now().Before(deadline) {
		log = logbuf.String()
		if strings.Contains(log, "id=run-999999") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(log, "POST /v1/runs 202") || !strings.Contains(log, "id="+sub.ID) {
		t.Errorf("access log missing submission line with run id:\n%s", log)
	}
	if !strings.Contains(log, "GET /v1/runs/run-999999 404") || !strings.Contains(log, "id=run-999999") {
		t.Errorf("access log missing 404 line with run id:\n%s", log)
	}
	for _, line := range strings.Split(strings.TrimSuffix(log, "\n"), "\n") {
		if !strings.Contains(line, " id=") {
			t.Errorf("access log line without id field: %q", line)
		}
	}
}

// TestRunTimeout: with RunTimeout set and an injected deadline timer
// that trips instantly, a run reports state "timeout" (504 on report
// and trace), its worker slot is reclaimed for the next run, the
// abandoned run's late result is discarded, and the timeout counter
// lands in /metrics.
func TestRunTimeout(t *testing.T) {
	// The first run's deadline fires immediately (closed channel); later
	// runs get a nil channel, which never fires.
	var fired atomic.Bool
	tripped := make(chan time.Time)
	close(tripped)
	after := func(time.Duration) <-chan time.Time {
		if fired.CompareAndSwap(false, true) {
			return tripped
		}
		return nil
	}
	_, ts := newTestServer(t, core.RunConfig{}, Options{
		Concurrency: 1, Burst: 10,
		RunTimeout: time.Minute, After: after,
	})
	spec, err := os.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}

	timedOut := submit(t, ts, spec)
	deadline := time.Now().Add(60 * time.Second)
	var code int
	var body struct {
		Error string `json:"error"`
		ID    string `json:"id"`
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + timedOut.ReportURL)
		if err != nil {
			t.Fatal(err)
		}
		code = resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusAccepted { // left queued/running
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code != http.StatusGatewayTimeout || body.ID != timedOut.ID ||
		!strings.Contains(body.Error, "exceeded the 1m0s deadline") {
		t.Fatalf("timed-out report: status %d, body %+v", code, body)
	}
	var st struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if code := getJSON(t, ts.URL+timedOut.StatusURL, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.State != "timeout" || !strings.Contains(st.Error, "deadline") {
		t.Errorf("timed-out status: %+v", st)
	}
	resp, err := http.Get(ts.URL + timedOut.StatusURL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timed-out trace: status %d, want 504", resp.StatusCode)
	}

	// The worker slot was reclaimed: a second run on the single worker
	// completes normally (its deadline timer never fires).
	second := submit(t, ts, spec)
	var env core.Envelope
	if err := json.Unmarshal(pollReport(t, ts, second.ReportURL), &env); err != nil {
		t.Fatal(err)
	}
	if env.Report == "" || env.SchemaVersion != core.SchemaVersion {
		t.Errorf("run after a timeout produced an incomplete envelope: %+v", env)
	}

	// The abandoned first run finishes in the background eventually; its
	// verdict must stay "timeout" — the state guard discards the late
	// result. (Both runs share the engine memo, so by the time the
	// second run's report is complete the first's specs are finished or
	// deduplicated; a short re-check keeps this race-free enough without
	// stalling the suite.)
	time.Sleep(50 * time.Millisecond)
	if code := getJSON(t, ts.URL+timedOut.StatusURL, &st); code != http.StatusOK || st.State != "timeout" {
		t.Errorf("late result overwrote the timeout verdict: status %d, state %q", code, st.State)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, line := range []string{
		"cachepart_runs_timeout_total 1",
		"cachepart_runs_failed_total 0",
	} {
		if !strings.Contains(string(metrics), line+"\n") {
			t.Errorf("metrics missing %q:\n%s", line, metrics)
		}
	}
}

// TestPprofGated: the pprof endpoints exist only when Options.Pprof is
// set — a production server does not expose profiling by accident.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, core.RunConfig{}, Options{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, core.RunConfig{}, Options{Pprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte("goroutine")) {
		t.Errorf("pprof index with -pprof: status %d, body %.200s", resp.StatusCode, raw)
	}
}
