package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// SchemaVersion identifies the report-envelope layout. Bump it when
// Envelope gains, loses, or re-types a field; consumers pin the version
// they understand. Version 2 added the fleet fidelity echo; version 3
// added the stats phases breakdown; version 4 added the events stats
// block for fleet timelines.
const SchemaVersion = 4

// Spec kinds an envelope can carry.
const (
	KindScenario = "scenario" // single-machine job mix
	KindFleet    = "fleet"    // multi-machine consolidation run
)

// RunConfig is the one options type every front end decodes into: CLI
// flags (scenario run, fleet run, serve) and server request bodies all
// produce a RunConfig, so a submission means the same thing everywhere.
//
// The first five fields configure the engine and are fixed when a
// Session is built; the rest override a spec per run and may differ per
// submission on a shared session.
type RunConfig struct {
	// Scale multiplies the catalog's nominal instruction counts
	// (0 = sched.DefaultScale, unless Quick).
	Scale float64 `json:"scale,omitempty"`
	// Quick selects the reduced smoke-run scale (sched.QuickScale) when
	// Scale is 0.
	Quick bool `json:"quick,omitempty"`
	// Parallelism is the engine worker count (0 = GOMAXPROCS, 1 = serial).
	Parallelism int `json:"parallelism,omitempty"`
	// CacheDir, when non-empty, layers the persistent content-addressed
	// result store under the in-memory memo (see sched.Options.CacheDir).
	CacheDir string `json:"cache_dir,omitempty"`
	// PolicyParallel caps how many fleet policy episodes replay
	// concurrently within one run (0 = min(policies, GOMAXPROCS),
	// 1 = serial). Episodes share only the read-only oracle, so reports
	// are byte-identical at any setting. Engine-level: fixed when the
	// session starts, like Parallelism.
	PolicyParallel int `json:"policy_parallel,omitempty"`

	// Policy overrides a single-machine scenario's partition policy
	// (any registered name; see `cachepart policies`).
	Policy string `json:"policy,omitempty"`
	// Partition overrides a fleet scenario's partition mode. The file's
	// partition_params belong to the file's policy and are cleared.
	Partition string `json:"partition,omitempty"`
	// Policies overrides a fleet scenario's consolidation-policy list.
	Policies []string `json:"policies,omitempty"`
	// Machines overrides a fleet scenario's pool size.
	Machines int `json:"machines,omitempty"`
	// Fidelity overrides a fleet scenario's oracle tier: exact, fast,
	// or auto ("" keeps the file's).
	Fidelity string `json:"fidelity,omitempty"`
	// FastMargin overrides a fleet scenario's auto screening band
	// around slowdown_limit (0 keeps the file's).
	FastMargin float64 `json:"fast_margin,omitempty"`
}

// Validate checks the config's standalone invariants, including that
// CacheDir (if set) is usable as a persistent store. It returns a
// descriptive one-line error suitable for CLI and HTTP surfaces.
func (c RunConfig) Validate() error {
	switch {
	case c.Scale < 0:
		return fmt.Errorf("core: scale %g is negative", c.Scale)
	case c.Parallelism < 0:
		return fmt.Errorf("core: parallelism %d is negative", c.Parallelism)
	case c.PolicyParallel < 0:
		return fmt.Errorf("core: policy_parallel %d is negative", c.PolicyParallel)
	case c.Machines < 0:
		return fmt.Errorf("core: machines %d is negative", c.Machines)
	}
	for _, p := range c.Policies {
		if strings.TrimSpace(p) == "" {
			return fmt.Errorf("core: empty policy name in policies list")
		}
	}
	if _, err := fleet.ParseFidelity(c.Fidelity); err != nil {
		return err
	}
	if c.FastMargin < 0 {
		return fmt.Errorf("core: fast_margin %g is negative", c.FastMargin)
	}
	if c.CacheDir != "" {
		return sched.ValidateCacheDir(c.CacheDir)
	}
	return nil
}

// EffectiveScale resolves Scale/Quick the way every CLI front end does:
// an explicit scale wins, Quick selects the smoke scale, zero means the
// engine default.
func (c RunConfig) EffectiveScale() float64 {
	if c.Scale == 0 && c.Quick {
		return sched.QuickScale
	}
	return c.Scale
}

// PerRunOnly reports an error when an engine-level field is set —
// the check a shared session's front end (the server) applies to
// per-submission configs, whose engine was fixed at session start.
func (c RunConfig) PerRunOnly() error {
	switch {
	case c.Scale != 0:
		return fmt.Errorf("core: scale is fixed when the session starts")
	case c.Quick:
		return fmt.Errorf("core: quick is fixed when the session starts")
	case c.Parallelism != 0:
		return fmt.Errorf("core: parallelism is fixed when the session starts")
	case c.PolicyParallel != 0:
		return fmt.Errorf("core: policy_parallel is fixed when the session starts")
	case c.CacheDir != "":
		return fmt.Errorf("core: cache_dir is fixed when the session starts")
	}
	return nil
}

// Session is the single programmatic entrypoint for running specs: it
// owns one long-lived sched.Runner, so every run submitted through it —
// from any goroutine — deduplicates against the same warm in-memory
// memo and, with CacheDir, the same persistent store. `scenario run`,
// `fleet run`, and the HTTP server are all thin front ends over it.
type Session struct {
	cfg RunConfig
	r   *sched.Runner
	tr  *obs.Tracer // nil = tracing off
}

// NewSession validates the config and builds the session's engine. An
// unusable CacheDir is a returned error, not a panic.
func NewSession(cfg RunConfig) (*Session, error) {
	return NewSessionWith(cfg, nil)
}

// NewSessionWith is NewSession with a tracer attached to the engine:
// every run records a span tree under a root "run" span. A nil tracer
// is tracing off — zero overhead beyond a nil check, and results are
// byte-identical either way.
func NewSessionWith(cfg RunConfig, tr *obs.Tracer) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, tr: tr, r: sched.New(sched.Options{
		Scale:       cfg.EffectiveScale(),
		Parallelism: cfg.Parallelism,
		CacheDir:    cfg.CacheDir,
		Tracer:      tr,
	})}, nil
}

// Tracer returns the session's tracer, nil when tracing is off.
func (s *Session) Tracer() *obs.Tracer { return s.tr }

// Config returns the session's engine configuration.
func (s *Session) Config() RunConfig { return s.cfg }

// Runner exposes the underlying scheduler for advanced callers
// (experiment drivers, custom placements).
func (s *Session) Runner() *sched.Runner { return s.r }

// Stats snapshots the engine counters; safe to call concurrently with
// in-flight runs (progress polling).
func (s *Session) Stats() sched.Stats { return s.r.Stats() }

// EngineStats is the per-run engine activity recorded in an envelope:
// the counter delta around the run. On a session running submissions
// concurrently the delta includes any overlapping runs' activity —
// submit sequentially for exact per-run accounting.
type EngineStats struct {
	Parallelism int    `json:"parallelism"`
	Simulations uint64 `json:"simulations"`
	MemoHits    uint64 `json:"memo_hits"`
	DiskHits    uint64 `json:"disk_hits"`
	// Phases attributes the run's engine time to named phases (probe,
	// oracle, resim, compile, episode, queue-wait, ...). Seconds are
	// wall-clock and therefore not byte-deterministic — consumers that
	// compare envelopes compare Report (always byte-stable) or strip
	// the timing first. Counts are deterministic.
	Phases []PhaseStat `json:"phases,omitempty"`
}

// PhaseStat is one phase's share of a run's engine activity.
type PhaseStat struct {
	Name    string  `json:"name"`
	Count   uint64  `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Envelope is the versioned report wrapper every front end emits:
// `scenario run -json` and `fleet run -json` print it verbatim, and the
// server's report endpoint returns the same bytes. Report holds the
// exact text a plain CLI run prints (before the engine footer), so
// HTTP and CLI consumers can compare reports byte for byte.
type Envelope struct {
	SchemaVersion int    `json:"schema_version"`
	EngineVersion string `json:"engine_version"`
	Kind          string `json:"kind"`
	Name          string `json:"name"`
	// Fidelity echoes a fleet run's effective oracle tier (exact, fast,
	// or auto); empty for single-machine scenarios.
	Fidelity string `json:"fidelity,omitempty"`
	// Events tallies a fleet scenario's timeline by kind; nil when the
	// scenario has none (and always for single-machine scenarios).
	Events *EventStats `json:"events,omitempty"`
	Stats  EngineStats `json:"stats"`
	Report string      `json:"report"`
}

// EventStats is the envelope's per-kind tally of a fleet timeline.
type EventStats struct {
	Total         int `json:"total"`
	Failures      int `json:"failures,omitempty"`
	Drains        int `json:"drains,omitempty"`
	Ups           int `json:"ups,omitempty"`
	BatchArrivals int `json:"batch_arrivals,omitempty"`
	BatchCancels  int `json:"batch_cancels,omitempty"`
	LoadScales    int `json:"load_scales,omitempty"`
}

// JSON renders the envelope in its canonical wire form: two-space
// indented, field order fixed by the struct, trailing newline.
func (e *Envelope) JSON() []byte {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		panic("core: envelope marshal: " + err.Error()) // no unmarshalable fields
	}
	return append(b, '\n')
}

// RunResult pairs an envelope with the raw counter snapshots and host
// time the CLI footer needs.
type RunResult struct {
	Envelope *Envelope
	// Before/After are the session counters around the run.
	Before, After sched.Stats
	// WallSeconds is host time spent inside the run.
	WallSeconds float64
	// Span is the run's root span in the session tracer (0 when
	// tracing is off); the server's per-run trace endpoint exports the
	// subtree under it.
	Span obs.SpanID
}

// ApplyOverrides rewrites a parsed spec with the config's per-run
// override fields, re-validating when a fleet definition changed.
// Overrides that do not apply to the spec's kind are errors: a config
// meant for the other kind is a caller bug, not a no-op.
func ApplyOverrides(sc *scenario.Scenario, cfg RunConfig) error {
	if sc.IsFleet() {
		if cfg.Policy != "" {
			return fmt.Errorf("core: the policy override applies to single-machine scenarios (use partition for fleets)")
		}
		if len(cfg.Policies) > 0 {
			sc.Fleet.Policies = nil
			for _, p := range cfg.Policies {
				sc.Fleet.Policies = append(sc.Fleet.Policies, fleet.PolicyName(strings.TrimSpace(p)))
			}
		}
		if cfg.Partition != "" {
			sc.Fleet.Partition = fleet.PartitionMode(cfg.Partition)
			// The file's params belong to the file's policy; an override
			// mode must not inherit them.
			sc.Fleet.PartitionParams = nil
		}
		if cfg.Machines != 0 {
			sc.Fleet.Machines = cfg.Machines
		}
		if cfg.Fidelity != "" {
			sc.Fleet.Fidelity = fleet.Fidelity(cfg.Fidelity)
		}
		if cfg.FastMargin != 0 {
			sc.Fleet.FastMargin = cfg.FastMargin
		}
		if len(cfg.Policies) > 0 || cfg.Partition != "" || cfg.Machines != 0 ||
			cfg.Fidelity != "" || cfg.FastMargin != 0 {
			return sc.Validate()
		}
		return nil
	}
	if cfg.Partition != "" || len(cfg.Policies) > 0 || cfg.Machines != 0 ||
		cfg.Fidelity != "" || cfg.FastMargin != 0 {
		return fmt.Errorf("core: partition/policies/machines/fidelity overrides apply to fleet scenarios")
	}
	if cfg.Policy != "" {
		sc.Partition.Policy = scenario.PolicyRef{Name: cfg.Policy}
	}
	return nil
}

// RunSpec parses raw scenario/fleet JSON and runs it; parse errors are
// the same one-line texts the CLI surfaces for a bad file.
func (s *Session) RunSpec(data []byte, cfg RunConfig) (*RunResult, error) {
	sc, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	return s.RunScenario(sc, cfg)
}

// RunScenario executes a parsed spec of either kind — compile, run,
// report — and wraps the outcome in a versioned envelope. Only cfg's
// per-run override fields are read here; engine fields were consumed
// when the session was built. Safe for concurrent use; concurrent runs
// share the memo cache (see EngineStats for the accounting caveat).
func (s *Session) RunScenario(sc *scenario.Scenario, cfg RunConfig) (*RunResult, error) {
	if err := ApplyOverrides(sc, cfg); err != nil {
		return nil, err
	}
	before := s.r.Stats()
	t0 := time.Now()
	kind := KindScenario
	var fidelity string
	var events *EventStats
	if sc.IsFleet() {
		kind = KindFleet
		fidelity = string(sc.Fleet.EffectiveFidelity())
		if len(sc.Fleet.Events) > 0 {
			c := sc.Fleet.EventCounts()
			events = &EventStats{
				Total: c.Total, Failures: c.Failures, Drains: c.Drains, Ups: c.Ups,
				BatchArrivals: c.BatchArrivals, BatchCancels: c.BatchCancels,
				LoadScales: c.LoadScales,
			}
		}
	}
	attrs := []obs.Attr{obs.String("kind", kind), obs.String("name", sc.Name)}
	if fidelity != "" {
		attrs = append(attrs, obs.String("fidelity", fidelity))
	}
	span := s.tr.Start("run", 0, attrs...)
	var report string
	if sc.IsFleet() {
		rep, err := fleet.RunWith(s.r, sc.Name, sc.Fleet, fleet.RunOpts{
			Parent: span.ID(), PolicyParallel: s.cfg.PolicyParallel,
		})
		if err != nil {
			span.End(obs.String("error", err.Error()))
			return nil, err
		}
		var sb strings.Builder
		if sc.Description != "" {
			// The description leads the report, exactly as the fleet CLI
			// has always printed it.
			sb.WriteString(sc.Description)
			sb.WriteByte('\n')
		}
		sb.WriteString(rep.String())
		report = sb.String()
	} else {
		rep, err := scenario.RunSpan(s.r, sc, span.ID())
		if err != nil {
			span.End(obs.String("error", err.Error()))
			return nil, err
		}
		report = rep.String()
	}
	after := s.r.Stats()
	delta := after.Delta(before)
	span.End(
		obs.Int64("sims", int64(delta.Simulations)),
		obs.Int64("memo_hits", int64(delta.MemoHits)),
		obs.Int64("disk_hits", int64(delta.DiskHits)))
	return &RunResult{
		Envelope: &Envelope{
			SchemaVersion: SchemaVersion,
			EngineVersion: sched.EngineVersion,
			Kind:          kind,
			Name:          sc.Name,
			Fidelity:      fidelity,
			Events:        events,
			Stats: EngineStats{
				Parallelism: delta.Parallelism,
				Simulations: delta.Simulations,
				MemoHits:    delta.MemoHits,
				DiskHits:    delta.DiskHits,
				Phases:      enginePhases(delta.Phases),
			},
			Report: report,
		},
		Before:      before,
		After:       after,
		WallSeconds: time.Since(t0).Seconds(),
		Span:        span.ID(),
	}, nil
}

// enginePhases converts the engine's phase snapshot to envelope form.
func enginePhases(ph []sched.PhaseStat) []PhaseStat {
	if len(ph) == 0 {
		return nil
	}
	out := make([]PhaseStat, len(ph))
	for i, p := range ph {
		out[i] = PhaseStat{Name: p.Name, Count: p.Count, Seconds: p.Seconds}
	}
	return out
}
