// Package core is the library's high-level API: it wraps the simulated
// way-partitionable platform, the workload catalog, and the paper's
// partitioning policies behind a small surface suitable for building
// consolidation studies.
//
// The paper's central question — can a latency-sensitive foreground
// application share a machine with background work without losing
// responsiveness? — maps onto three calls:
//
//	sys := core.NewSystem(core.Options{})
//	alone, _ := sys.RunAlone("429.mcf", 4, core.AllWays)
//	together, _ := sys.Consolidate("429.mcf", "ferret", core.PolicyDynamic)
//	fmt.Println(together.FgSlowdown, together.BgThroughput)
//
// Everything deeper (cache geometry, prefetchers, energy coefficients,
// experiment drivers for each paper figure) lives in the sibling
// internal packages.
package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/workload"
)

// AllWays requests the full 12-way LLC.
const AllWays = 0

// Policy selects how the LLC is managed for a consolidated pair: any
// name in the partition-policy registry.
type Policy string

// The shipped policies.
const (
	PolicyShared  Policy = "shared"
	PolicyFair    Policy = "fair"
	PolicyBiased  Policy = "biased"
	PolicyDynamic Policy = "dynamic"
	PolicyUtility Policy = "utility"
)

// Policies lists the §5-§6 policies plus the utility scheme in
// presentation order.
func Policies() []Policy {
	return []Policy{PolicyShared, PolicyFair, PolicyBiased, PolicyDynamic, PolicyUtility}
}

// Options configure a System.
type Options struct {
	// Scale multiplies the catalog's nominal instruction counts
	// (0 = sched.DefaultScale). Larger values cost proportionally more
	// simulation time and give cleaner steady-state numbers.
	Scale float64
	// Parallelism is the worker count independent simulations (policy
	// searches, sweeps) fan across (0 = GOMAXPROCS, 1 = serial).
	// Results are identical at any setting; only host time changes.
	Parallelism int
	// CacheDir, when non-empty, persists simulation results to disk so
	// repeated invocations — including other processes — skip
	// simulations they have already run (see sched.Options.CacheDir).
	CacheDir string
}

// System is a simulated platform plus a memoized run cache. It is safe
// for concurrent use; independent simulations fan across the engine's
// worker pool.
type System struct {
	r *sched.Runner
}

// NewSystem builds a system with the paper's platform: 4-core/8-thread
// Sandy Bridge client, 6 MB 12-way inclusive LLC with way partitioning,
// four hardware prefetchers, ring interconnect, dual-channel DDR3.
func NewSystem(opt Options) *System {
	return &System{r: sched.New(sched.Options{
		Scale:       opt.Scale,
		Parallelism: opt.Parallelism,
		CacheDir:    opt.CacheDir,
	})}
}

// Runner exposes the underlying scheduler for advanced scenarios
// (experiment drivers, custom placements).
func (s *System) Runner() *sched.Runner { return s.r }

// Workloads lists the 45 applications of the catalog in suite order.
func Workloads() []string { return workload.Names() }

// Representatives lists the six Table 3 cluster representatives.
func Representatives() []string { return workload.RepresentativeNames() }

// RunReport summarizes a standalone run.
type RunReport struct {
	App          string
	Threads      int
	Ways         int
	Seconds      float64
	IPC          float64
	LLCMPKI      float64
	LLCAPKI      float64
	SocketJoules float64
	WallJoules   float64
}

// RunAlone executes one application alone on the machine with the given
// software thread count and LLC way allocation (AllWays = no
// restriction). Threads beyond the application's parallelism are capped.
func (s *System) RunAlone(app string, threads, ways int) (RunReport, error) {
	p, err := workload.ByName(app)
	if err != nil {
		return RunReport{}, err
	}
	if ways < 0 || ways > 12 {
		return RunReport{}, fmt.Errorf("core: ways %d out of [0,12]", ways)
	}
	res := s.r.RunSingle(sched.SingleSpec{App: p, Threads: threads, Ways: ways})
	j := res.JobByName(p.Name)
	return RunReport{
		App: p.Name, Threads: j.Threads, Ways: ways,
		Seconds: j.Seconds, IPC: j.IPC,
		LLCMPKI: j.LLCMPKI, LLCAPKI: j.LLCAPKI,
		SocketJoules: res.Energy.SocketJoules,
		WallJoules:   res.Energy.WallJoules,
	}, nil
}

// ConsolidationReport summarizes a foreground/background co-schedule.
type ConsolidationReport struct {
	Fg, Bg string
	Policy Policy

	// FgWays/BgWays are the static split used (0/0 for shared; for the
	// dynamic policy they are the controller's final allocation).
	FgWays, BgWays int

	// FgSeconds is the foreground completion time; FgSlowdown is
	// relative to the foreground alone on two cores with the full LLC.
	FgSeconds  float64
	FgSlowdown float64

	// BgThroughput counts background iterations completed during the
	// foreground run.
	BgThroughput float64

	SocketJoules float64
	WallJoules   float64

	// Reallocations counts dynamic mask changes (dynamic policy only).
	Reallocations int
}

// Consolidate co-schedules fg (cores 0-1, 4 hyperthreads) with a
// continuously-running bg (cores 2-3) under the named partition
// policy, dispatched through the policy registry: search policies
// (biased) run the paper's exhaustive sweep, online policies (dynamic,
// utility) attach their decision loop, offline policies apply their
// static split.
func (s *System) Consolidate(fg, bg string, policy Policy) (ConsolidationReport, error) {
	fp, err := workload.ByName(fg)
	if err != nil {
		return ConsolidationReport{}, err
	}
	bp, err := workload.ByName(bg)
	if err != nil {
		return ConsolidationReport{}, err
	}
	pol, err := partition.New(string(policy), nil)
	if err != nil {
		return ConsolidationReport{}, fmt.Errorf("core: unknown policy %q", policy)
	}
	alone := s.r.AloneHalf(fp).JobByName(fp.Name).Seconds
	assoc := s.r.MachineConfig().Hier.LLC.Assoc

	rep := ConsolidationReport{Fg: fp.Name, Bg: bp.Name, Policy: policy}
	var res *machine.Result
	switch searcher, _ := pol.(partition.Searcher); {
	case searcher != nil:
		ch := partition.BestSplit(s.r, searcher, fp, bp)
		rep.FgWays, rep.BgWays = ch.FgWays, ch.BgWays
		res = s.r.RunPair(sched.PairSpec{Fg: fp, Bg: bp,
			FgWays: ch.FgWays, BgWays: ch.BgWays, Mode: sched.BackgroundLoop})
	case pol.Online():
		interval := partition.SamplingInterval(fp, s.r.Scale())
		res = s.r.RunPair(sched.PairSpec{
			Fg: fp, Bg: bp, Mode: sched.BackgroundLoop,
			Setup: func(m *machine.Machine, fgJob, bgJob *machine.Job) {
				partition.AttachLoop(m, []partition.LoopJob{
					{Job: fgJob, Cores: fgJob.Cores(), App: fp.Name, Latency: true},
					{Job: bgJob, Cores: bgJob.Cores(), App: bp.Name},
				}, pol, interval)
			},
			PolicyKey: partition.RunKey(pol, interval, []bool{true, false}),
		})
		if tr := res.Partition; tr != nil && len(tr.FinalWays) == 2 {
			rep.FgWays, rep.BgWays = tr.FinalWays[0], tr.FinalWays[1]
			rep.Reallocations = tr.Reallocations
		}
	default:
		rep.FgWays, rep.BgWays = partition.PairWays(pol, assoc)
		res = s.r.RunPair(sched.PairSpec{Fg: fp, Bg: bp,
			FgWays: rep.FgWays, BgWays: rep.BgWays, Mode: sched.BackgroundLoop})
	}

	fgJ := res.JobByName(fp.Name)
	rep.FgSeconds = fgJ.Seconds
	rep.FgSlowdown = fgJ.Seconds / alone
	rep.BgThroughput = res.JobByName(bp.Name).Iterations
	rep.SocketJoules = res.Energy.SocketJoules
	rep.WallJoules = res.Energy.WallJoules
	return rep, nil
}
