package core

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// runWith executes a spec on a fresh quick session with the given
// parallelism and tracer, returning the result.
func runWith(t *testing.T, spec string, parallelism int, tr *obs.Tracer, cfg RunConfig) *RunResult {
	t.Helper()
	sess, err := NewSessionWith(RunConfig{Quick: true, Parallelism: parallelism}, tr)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracingByteIdentity is the observability regression gate: the
// report bytes must be identical with tracing on and off, at
// parallelism 1 and 8. Timing may flow into spans and phase stats but
// never into results.
func TestTracingByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name, spec string
		cfg        RunConfig
	}{
		{"scenario", sessScenario, RunConfig{}},
		{"fleet-exact", sessFleet, RunConfig{}},
		{"fleet-auto", sessFleet, RunConfig{Fidelity: "auto"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := runWith(t, tc.spec, 1, nil, tc.cfg).Envelope.Report
			if ref == "" {
				t.Fatal("empty reference report")
			}
			for _, par := range []int{1, 8} {
				for _, traced := range []bool{false, true} {
					var tr *obs.Tracer
					if traced {
						tr = obs.New(0)
					}
					got := runWith(t, tc.spec, par, tr, tc.cfg).Envelope.Report
					if got != ref {
						t.Errorf("report diverged at parallelism %d traced=%v\n--- got ---\n%s\n--- ref ---\n%s",
							par, traced, got, ref)
					}
				}
			}
		})
	}
}

// TestEnvelopePhases: the envelope's stats carry the per-phase
// breakdown, with the phases the run actually exercised and
// deterministic counts.
func TestEnvelopePhases(t *testing.T) {
	phases := func(res *RunResult) map[string]PhaseStat {
		m := map[string]PhaseStat{}
		for _, p := range res.Envelope.Stats.Phases {
			m[p.Name] = p
		}
		return m
	}

	ph := phases(runWith(t, sessScenario, 2, nil, RunConfig{}))
	if ph["scenario"].Count == 0 || ph["compile"].Count != 1 {
		t.Errorf("scenario run phases: %+v", ph)
	}
	if ph["scenario"].Count != runWith(t, sessScenario, 2, nil, RunConfig{}).Envelope.Stats.Simulations {
		t.Errorf("scenario phase count should equal the run's simulations: %+v", ph)
	}

	fph := phases(runWith(t, sessFleet, 2, nil, RunConfig{Fidelity: "fast"}))
	for _, want := range []string{"compile", "probe", "predict", "episode", "queue-wait"} {
		if fph[want].Count == 0 {
			t.Errorf("fast fleet run missing phase %q: %+v", want, fph)
		}
	}
	if fph["oracle"].Count != 0 {
		t.Errorf("fast fleet run charged the exact oracle phase: %+v", fph)
	}
}

// TestTraceTotalsMatchPhases: the wall time the trace attributes to
// each simulation phase equals the envelope's stats.phases seconds —
// both views come from the same single measurement per run.
func TestTraceTotalsMatchPhases(t *testing.T) {
	tr := obs.New(0)
	res := runWith(t, sessFleet, 4, tr, RunConfig{Fidelity: "auto"})

	spanTotal := map[string]time.Duration{}
	for _, rec := range tr.Snapshot() {
		if rec.Name != "simulate" {
			continue
		}
		for _, a := range rec.Attrs {
			if a.Key == "phase" {
				spanTotal[a.Value] += rec.Dur
			}
		}
	}
	if len(spanTotal) == 0 {
		t.Fatal("trace holds no simulate spans")
	}
	for _, p := range res.Envelope.Stats.Phases {
		total, ok := spanTotal[p.Name]
		if !ok {
			continue // non-simulation phase (compile, episode, waits)
		}
		if got := total.Seconds(); got < p.Seconds-1e-9 || got > p.Seconds+1e-9 {
			t.Errorf("phase %q: trace total %v, stats %v", p.Name, got, p.Seconds)
		}
	}
	for name := range spanTotal {
		found := false
		for _, p := range res.Envelope.Stats.Phases {
			if p.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("trace phase %q missing from envelope stats", name)
		}
	}

	// The run span is the root the server's trace endpoint cuts at.
	doc := tr.ChromeTraceUnder(res.Span)
	if len(doc) == 0 {
		t.Fatal("empty chrome trace for run span")
	}
}
