package core

import "testing"

func testSystem() *System { return NewSystem(Options{Scale: 5e-4}) }

func TestWorkloadsListed(t *testing.T) {
	if len(Workloads()) != 45 {
		t.Fatalf("%d workloads", len(Workloads()))
	}
	if len(Representatives()) != 6 {
		t.Fatalf("%d representatives", len(Representatives()))
	}
}

func TestRunAlone(t *testing.T) {
	s := testSystem()
	rep, err := s.RunAlone("ferret", 4, AllWays)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || rep.IPC <= 0 || rep.SocketJoules <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Threads != 4 {
		t.Fatalf("threads = %d", rep.Threads)
	}
}

func TestRunAloneErrors(t *testing.T) {
	s := testSystem()
	if _, err := s.RunAlone("nope", 4, AllWays); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := s.RunAlone("ferret", 4, 13); err == nil {
		t.Fatal("13 ways accepted")
	}
}

func TestConsolidatePolicies(t *testing.T) {
	s := testSystem()
	for _, pol := range Policies() {
		rep, err := s.Consolidate("fop", "dedup", pol)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if rep.FgSlowdown <= 0 || rep.BgThroughput <= 0 {
			t.Fatalf("%s: %+v", pol, rep)
		}
		switch pol {
		case PolicyShared:
			if rep.FgWays != 0 || rep.BgWays != 0 {
				t.Fatalf("shared reported ways %d/%d", rep.FgWays, rep.BgWays)
			}
		case PolicyFair:
			if rep.FgWays != 6 || rep.BgWays != 6 {
				t.Fatalf("fair reported ways %d/%d", rep.FgWays, rep.BgWays)
			}
		case PolicyBiased, PolicyDynamic:
			if rep.FgWays < 1 || rep.FgWays > 11 {
				t.Fatalf("%s fg ways %d", pol, rep.FgWays)
			}
		}
	}
}

func TestConsolidateUnknownPolicy(t *testing.T) {
	s := testSystem()
	if _, err := s.Consolidate("fop", "dedup", Policy("magic")); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := s.Consolidate("nope", "dedup", PolicyShared); err == nil {
		t.Fatal("unknown fg accepted")
	}
	if _, err := s.Consolidate("fop", "nope", PolicyShared); err == nil {
		t.Fatal("unknown bg accepted")
	}
}

func TestDynamicReportsReallocations(t *testing.T) {
	s := NewSystem(Options{Scale: 1e-3})
	rep, err := s.Consolidate("429.mcf", "ferret", PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reallocations == 0 {
		t.Fatal("dynamic policy never reallocated on a phased foreground")
	}
}
