package core

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/sched"
)

const sessScenario = `{
  "name": "sess-mix",
  "jobs": [
    {"app": "429.mcf", "role": "latency", "threads": 2},
    {"app": "ferret", "role": "batch", "threads": 2}
  ]
}`

const sessFleet = `{
  "name": "sess-fleet",
  "description": "two machines, tiny trace",
  "fleet": {
    "machines": 2, "duration": 0.02, "seed": "sess",
    "arrivals": [{"app": "xalan", "rate": 150}],
    "backlog": [{"app": "ferret", "count": 2, "iterations": 10}]
  }
}`

func quickSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(RunConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunConfigValidate(t *testing.T) {
	bad := []RunConfig{
		{Scale: -1},
		{Parallelism: -2},
		{Machines: -1},
		{Policies: []string{"shared", " "}},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		} else if strings.ContainsRune(err.Error(), '\n') {
			t.Errorf("error is not one line: %q", err)
		}
	}
	if err := (RunConfig{Quick: true, Parallelism: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// An unusable cache dir is a graceful error, not a panic.
	if _, err := NewSession(RunConfig{CacheDir: string([]byte{0})}); err == nil {
		t.Error("unusable cache dir accepted")
	}
}

func TestRunConfigEffectiveScale(t *testing.T) {
	if got := (RunConfig{}).EffectiveScale(); got != 0 {
		t.Errorf("zero config scale = %g", got)
	}
	if got := (RunConfig{Quick: true}).EffectiveScale(); got != sched.QuickScale {
		t.Errorf("quick scale = %g, want %g", got, sched.QuickScale)
	}
	if got := (RunConfig{Quick: true, Scale: 0.5}).EffectiveScale(); got != 0.5 {
		t.Errorf("explicit scale = %g, want 0.5", got)
	}
}

func TestRunConfigPerRunOnly(t *testing.T) {
	for _, cfg := range []RunConfig{
		{Scale: 0.1}, {Quick: true}, {Parallelism: 2}, {CacheDir: "x"},
	} {
		if err := cfg.PerRunOnly(); err == nil {
			t.Errorf("engine field in %+v not rejected", cfg)
		}
	}
	ok := RunConfig{Policy: "dynamic", Partition: "utility",
		Policies: []string{"pack-partition"}, Machines: 3}
	if err := ok.PerRunOnly(); err != nil {
		t.Errorf("per-run fields rejected: %v", err)
	}
}

// TestSessionScenarioEnvelope pins the envelope contract for a
// single-machine run: versioned header, kind, and a report that is
// byte-identical to driving scenario.Run directly — what the CLI
// printed before the session existed.
func TestSessionScenarioEnvelope(t *testing.T) {
	sess := quickSession(t)
	sc, err := scenario.Parse([]byte(sessScenario))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunScenario(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	env := res.Envelope
	if env.SchemaVersion != SchemaVersion || env.EngineVersion != sched.EngineVersion {
		t.Fatalf("envelope header: %+v", env)
	}
	if env.Kind != KindScenario || env.Name != "sess-mix" {
		t.Fatalf("envelope identity: %+v", env)
	}
	if env.Stats.Simulations == 0 || env.Stats.Simulations != res.After.Simulations-res.Before.Simulations {
		t.Fatalf("envelope stats: %+v", env.Stats)
	}

	direct, err := scenario.Parse([]byte(sessScenario))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.Run(sched.New(sched.Options{Scale: sched.QuickScale}), direct)
	if err != nil {
		t.Fatal(err)
	}
	if env.Report != rep.String() {
		t.Errorf("session report drifted from scenario.Run\n--- session ---\n%s\n--- direct ---\n%s",
			env.Report, rep.String())
	}
}

// TestSessionFleetEnvelope: fleet runs report kind "fleet" and lead
// with the description line, exactly as the fleet CLI prints.
func TestSessionFleetEnvelope(t *testing.T) {
	sess := quickSession(t)
	sc, err := scenario.Parse([]byte(sessFleet))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunScenario(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	env := res.Envelope
	if env.Kind != KindFleet {
		t.Fatalf("kind %q", env.Kind)
	}
	if !strings.HasPrefix(env.Report, "two machines, tiny trace\n== fleet: sess-fleet ") {
		t.Errorf("fleet report does not lead with the description:\n%s", env.Report)
	}

	// A second run on the warm session is all memo hits.
	sc2, _ := scenario.Parse([]byte(sessFleet))
	res2, err := sess.RunScenario(sc2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Envelope.Stats.Simulations != 0 || res2.Envelope.Stats.MemoHits == 0 {
		t.Errorf("warm run stats: %+v", res2.Envelope.Stats)
	}
	if res2.Envelope.Report != env.Report {
		t.Error("warm report drifted from cold report")
	}
}

// TestSessionDiskStoreRoundTrip: a fresh session pointed at the same
// cache dir serves the whole run from disk with identical report bytes.
func TestSessionDiskStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cold, err := NewSession(RunConfig{Quick: true, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := scenario.Parse([]byte(sessFleet))
	coldRes, err := cold.RunScenario(sc, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewSession(RunConfig{Quick: true, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sc2, _ := scenario.Parse([]byte(sessFleet))
	warmRes, err := warm.RunScenario(sc2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := warmRes.Envelope.Stats
	if st.Simulations != 0 || st.DiskHits == 0 {
		t.Errorf("cross-process warm run stats: %+v", st)
	}
	if warmRes.Envelope.Report != coldRes.Envelope.Report {
		t.Error("disk-served report drifted")
	}
}

func TestEnvelopeJSONRoundTrip(t *testing.T) {
	sess := quickSession(t)
	res, err := sess.RunSpec([]byte(sessScenario), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	raw := res.Envelope.JSON()
	if raw[len(raw)-1] != '\n' {
		t.Error("canonical envelope JSON misses the trailing newline")
	}
	var back Envelope
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, *res.Envelope) {
		t.Errorf("round trip drifted: %+v vs %+v", back, *res.Envelope)
	}
}

func TestApplyOverrides(t *testing.T) {
	// Scenario: the policy override swaps the partition policy.
	sc, _ := scenario.Parse([]byte(sessScenario))
	if err := ApplyOverrides(sc, RunConfig{Policy: "dynamic"}); err != nil {
		t.Fatal(err)
	}
	if sc.PartitionName() != "dynamic" {
		t.Errorf("policy override not applied: %s", sc.PartitionName())
	}
	// Fleet-only overrides on a scenario are caller bugs.
	if err := ApplyOverrides(sc, RunConfig{Machines: 4}); err == nil {
		t.Error("machines override on a single-machine scenario accepted")
	}

	// Fleet: partition override clears the file's params and machines
	// swaps the pool size; both revalidate.
	fl, err := scenario.Parse([]byte(`{
	  "name": "ov",
	  "fleet": {
	    "machines": 2, "duration": 0.02, "seed": "ov",
	    "partition": "utility", "partition_params": {"min_ways": 2},
	    "arrivals": [{"app": "xalan", "rate": 100}]
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyOverrides(fl, RunConfig{Partition: "shared", Machines: 5}); err != nil {
		t.Fatal(err)
	}
	if fl.Fleet.Partition != fleet.PartitionMode("shared") || fl.Fleet.PartitionParams != nil || fl.Fleet.Machines != 5 {
		t.Errorf("fleet overrides not applied: %+v", fl.Fleet)
	}
	if err := ApplyOverrides(fl, RunConfig{Partition: "warp"}); err == nil ||
		!strings.Contains(err.Error(), "unknown partition mode") {
		t.Errorf("bad partition override: err %v", err)
	}
	if err := ApplyOverrides(fl, RunConfig{Policy: "dynamic"}); err == nil {
		t.Error("scenario-only policy override on a fleet accepted")
	}
	if err := ApplyOverrides(fl, RunConfig{Policies: []string{"warp"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("bad policies override: err %v", err)
	}
}

func TestRunSpecParseErrorsMatchCLI(t *testing.T) {
	sess := quickSession(t)
	_, err := sess.RunSpec([]byte(`{"name": `), RunConfig{})
	if err == nil {
		t.Fatal("malformed spec accepted")
	}
	_, want := scenario.Parse([]byte(`{"name": `))
	if err.Error() != want.Error() {
		t.Errorf("session parse error %q diverges from scenario.Parse %q", err, want)
	}
	if strings.ContainsRune(err.Error(), '\n') {
		t.Errorf("error is not one line: %q", err)
	}
}
