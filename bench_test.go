package repro

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment at a reduced scope/scale (the
// CLI's `cachepart exp -id <fig>` runs the full version) and reports
// the experiment's key aggregate as a custom metric, so `go test
// -bench=.` doubles as a regression harness for the reproduced shapes.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchScale keeps each iteration affordable; aggregates at this scale
// are noisier than the EXPERIMENTS.md runs but preserve orderings.
const benchScale = 5e-4

func quickCtx() *experiments.Context {
	return experiments.NewQuickContext(benchScale)
}

func BenchmarkFig1ThreadScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		t := ctx.Fig1ThreadScalability()
		if len(t.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable1Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		_, classes := ctx.Table1Scalability()
		if classes["429.mcf"] != experiments.ScalLow {
			b.Fatal("mcf not classified sequential/low")
		}
	}
}

func BenchmarkFig2LLCSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		if len(ctx.Fig2LLCSensitivity().Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable2LLCUtility(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		res := ctx.Table2LLCUtility()
		frac = res.FracUnder3MB
	}
	b.ReportMetric(frac*100, "%apps<=3MB")
}

func BenchmarkFig3Prefetchers(b *testing.B) {
	var gems float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		gems = ctx.PrefetchSensitivity(workload.MustByName("459.GemsFDTD"))
	}
	b.ReportMetric(gems, "GemsFDTD-on/off")
}

func BenchmarkFig4Bandwidth(b *testing.B) {
	var gems float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		gems = ctx.BandwidthSensitivity(workload.MustByName("459.GemsFDTD"))
	}
	b.ReportMetric(gems, "GemsFDTD-vs-hog")
}

func BenchmarkFig5Clustering(b *testing.B) {
	var clusters float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		clusters = float64(len(ctx.Fig5Clustering().Groups))
	}
	b.ReportMetric(clusters, "clusters")
}

func BenchmarkTable3Representatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		res := ctx.Fig5Clustering()
		if len(res.Reps) == 0 {
			b.Fatal("no representatives")
		}
	}
}

func BenchmarkFig6AllocationSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		ctx.Reps = ctx.Reps[:2]
		pts := ctx.AllocationSpace(ctx.Reps[0], ctx.ThreadPoints, ctx.WayPoints)
		if len(pts) == 0 {
			b.Fatal("no allocation points")
		}
	}
}

func BenchmarkFig7YieldableCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		ctx.Reps = ctx.Reps[:2]
		if len(ctx.Fig7YieldableCapacity().Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig8Heatmap(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		res := ctx.Fig8Heatmap(ctx.Reps, ctx.Reps)
		avg = res.AvgSlowdown
	}
	b.ReportMetric((avg-1)*100, "avg-slowdown-%")
}

func BenchmarkFig9Policies(b *testing.B) {
	var shared, biased float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		ctx.Reps = ctx.Reps[:3]
		res := ctx.Fig9StaticPolicies()
		shared = res.Avg["shared"]
		biased = res.Avg["biased"]
	}
	b.ReportMetric((shared-1)*100, "shared-avg-%")
	b.ReportMetric((biased-1)*100, "biased-avg-%")
}

func BenchmarkFig10Energy(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		ctx.Reps = ctx.Reps[:3]
		_, _, outcomes := ctx.Fig10and11Consolidation()
		var xs []float64
		for _, o := range outcomes {
			if o.Policy == "biased" {
				xs = append(xs, o.RelSocketEnergy)
			}
		}
		rel = stats.Mean(xs)
	}
	b.ReportMetric((1-rel)*100, "energy-saving-%")
}

func BenchmarkFig11WeightedSpeedup(b *testing.B) {
	var ws float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		ctx.Reps = ctx.Reps[:3]
		_, _, outcomes := ctx.Fig10and11Consolidation()
		var xs []float64
		for _, o := range outcomes {
			if o.Policy == "biased" {
				xs = append(xs, o.WeightedSpeedup)
			}
		}
		ws = stats.Mean(xs)
	}
	b.ReportMetric(ws, "weighted-speedup")
}

func BenchmarkFig12Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		if len(ctx.Fig12Phases().Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig13Dynamic(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		ctx.Reps = ctx.Reps[:2]
		res := ctx.Fig13DynamicThroughput()
		gain = stats.Mean(res.DynamicGain)
	}
	b.ReportMetric((gain-1)*100, "dyn-bg-gain-%")
}

func BenchmarkHeadline(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		ctx := quickCtx()
		ctx.Reps = ctx.Reps[:3]
		res := ctx.Headline()
		saving = res.EnergySavingBiased
	}
	b.ReportMetric(saving*100, "biased-energy-saving-%")
}

// BenchmarkEngineBatchSweep measures the concurrent experiment engine:
// a partition-search-shaped pair sweep submitted as one batch through
// the worker pool with memoization disabled, reporting simulations per
// host second. Compare -cpu=1 vs -cpu=N to see the worker-pool scaling.
func BenchmarkEngineBatchSweep(b *testing.B) {
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")
	r := sched.New(sched.Options{Scale: benchScale, DisableCache: true})
	var specs []sched.Spec
	for w := 1; w < 12; w++ {
		specs = append(specs, sched.PairSpec{Fg: fg, Bg: bg,
			FgWays: w, BgWays: 12 - w, Mode: sched.BackgroundLoop})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunBatch(specs)
	}
	b.ReportMetric(float64(len(specs)*b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkScenarioMix pushes an N-job mix through the full hierarchy:
// a latency-sensitive foreground plus three looping batch co-runners,
// compiled from the shipped scenario file and executed with
// memoization off — the multiprogram hot path future PRs must not
// regress. Reported as simulated instructions per host second.
func BenchmarkScenarioMix(b *testing.B) {
	s, err := scenario.ParseFile("examples/scenarios/latency-3batch.json")
	if err != nil {
		b.Fatal(err)
	}
	// The shipped file declares the biased search; the hot path under
	// measurement is one mix execution, so pin a static fair split.
	s.Partition.Policy = scenario.PolicyRef{Name: scenario.PartitionFair}
	r := sched.New(sched.Options{Scale: benchScale, DisableCache: true})
	mix, err := s.Compile(r.MachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	var instr float64
	for _, j := range mix.Jobs {
		instr += j.App.Instructions * benchScale
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.RunMix(mix)
		if len(res.Jobs) != 4 {
			b.Fatal("mix lost a job")
		}
	}
	b.ReportMetric(instr*float64(b.N)/b.Elapsed().Seconds(), "sim-instr/s")
}

// BenchmarkFleetRun measures the fleet layer end to end on a small
// pool: trace generation, the oracle's engine batch (alone baselines
// plus the protective way sweep), and the three-policy event loop.
// Each iteration uses a fresh runner, so the cost includes the
// simulations a cold fleet run must execute. Reported alongside
// requests placed per host second.
func BenchmarkFleetRun(b *testing.B) {
	def := &fleet.Def{
		Machines: 4,
		Duration: 0.05,
		Seed:     "bench",
		Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 400}},
		Backlog:  []loadgen.BatchDef{{App: "ferret", Count: 3, Iterations: 20}},
	}
	var requests int
	for i := 0; i < b.N; i++ {
		r := sched.New(sched.Options{Scale: benchScale})
		rep, err := fleet.Run(r, "bench", def)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) != 3 {
			b.Fatal("missing policy results")
		}
		requests = rep.Requests
	}
	b.ReportMetric(float64(requests*3*b.N)/b.Elapsed().Seconds(), "placements/s")
}

// BenchmarkFleetRunFast is BenchmarkFleetRun under the fast fidelity
// tier: the same cold fleet, but every co-location is predicted from
// MRC profiles instead of simulated — the per-application profiling
// runs are the only simulations left. The placements/s ratio against
// BenchmarkFleetRun is the speedup the analytic tier buys; the
// acceptance floor for this PR is 10x.
func BenchmarkFleetRunFast(b *testing.B) {
	def := &fleet.Def{
		Machines: 4,
		Duration: 0.05,
		Seed:     "bench",
		Fidelity: fleet.FidelityFast,
		Arrivals: []loadgen.RequestClass{{App: "xalan", Rate: 400}},
		Backlog:  []loadgen.BatchDef{{App: "ferret", Count: 3, Iterations: 20}},
	}
	var requests int
	for i := 0; i < b.N; i++ {
		r := sched.New(sched.Options{Scale: benchScale})
		rep, err := fleet.Run(r, "bench", def)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) != 3 {
			b.Fatal("missing policy results")
		}
		requests = rep.Requests
	}
	b.ReportMetric(float64(requests*3*b.N)/b.Elapsed().Seconds(), "placements/s")
}

// warmFleet parses a shipped fleet scenario and runs it once on a fresh
// quick-scale runner, so the memo holds every oracle simulation the
// definition needs. Timed iterations over the returned runner then
// measure the fleet layer itself — trace generation, oracle pricing
// from the memo, and the per-policy event loops — not engine sims.
func warmFleet(b *testing.B, path string) (*sched.Runner, *fleet.Def, string) {
	b.Helper()
	s, err := scenario.ParseFile(path)
	if err != nil {
		b.Fatal(err)
	}
	r := sched.New(sched.Options{Scale: sched.QuickScale})
	if _, err := fleet.Run(r, s.Name, s.Fleet); err != nil {
		b.Fatal(err)
	}
	return r, s.Fleet, s.Name
}

// BenchmarkFleetMultiPolicy replays the shipped 50-machine
// consolidation fleet across every registered policy over a warm memo:
// the work left is exactly the per-policy discrete-event episodes,
// which RunWith spreads over min(policies, GOMAXPROCS) goroutines.
// Compare -cpu=1 vs -cpu=4 to see the episode-level scaling the
// policy-parallel path buys.
func BenchmarkFleetMultiPolicy(b *testing.B) {
	r, def, name := warmFleet(b, "examples/scenarios/fleet-consolidation-50.json")
	npol := len(fleet.Policies())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.Run(r, name, def)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) != npol {
			b.Fatal("missing policy results")
		}
	}
	b.ReportMetric(float64(npol*b.N)/b.Elapsed().Seconds(), "episodes/s")
}

// BenchmarkFleetChurn replays the churn fleet — failure, drain, load
// spike, recovery — over a warm memo, pinning the cost of the event
// loop's re-placement machinery (eviction, the requeued FIFO, pending
// drains) that the allocation-free loop keeps off the heap.
func BenchmarkFleetChurn(b *testing.B) {
	r, def, name := warmFleet(b, "examples/scenarios/fleet-churn-50.json")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.Run(r, name, def)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) == 0 {
			b.Fatal("missing policy results")
		}
	}
	b.ReportMetric(float64(len(fleet.Policies())*b.N)/b.Elapsed().Seconds(), "episodes/s")
}

// probeMix is the canonical profiling mix BenchmarkModelBuild harvests
// from (the fleet fast tier's probeAloneMix shape).
func probeMix(r *sched.Runner, app *workload.Profile) sched.MixSpec {
	cfg := r.MachineConfig()
	threads := sched.CapThreads(app, cfg.Cores/2*cfg.ThreadsPerCore)
	slots := make([]int, threads)
	for i := range slots {
		slots[i] = i
	}
	return sched.MixSpec{
		Jobs:     []sched.MixJob{{App: app, Threads: threads, Slots: slots, Seed: "single"}},
		Setup:    model.ProbeSetup(),
		ProbeKey: model.ProbeKey(),
	}
}

// BenchmarkModelBuild isolates the analytic tier's own arithmetic: with
// the profiling simulations already run (outside the timer), one
// iteration harvests both MRC profiles and prices the full candidate
// sweep of one co-location — the work the fast tier does per pair.
func BenchmarkModelBuild(b *testing.B) {
	r := sched.New(sched.Options{Scale: benchScale})
	fg := workload.MustByName("xalan")
	bg := workload.MustByName("ferret")
	fgRes := r.RunMix(probeMix(r, fg))
	bgRes := r.RunMix(probeMix(r, bg))
	cfg := r.MachineConfig()
	var pred model.PairPrediction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf, err := model.NewProfile(fg.Name, fg.MLP, fgRes, 0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		pb, err := model.NewProfile(bg.Name, bg.MLP, bgRes, 0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		est := model.NewEstimator(cfg)
		for w := 1; w < est.Assoc(); w++ {
			pred = est.PredictPair(pf, pb, float64(w), float64(est.Assoc()-w))
		}
	}
	if pred.FgSlowdown < 1 {
		b.Fatal("degenerate prediction")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkCacheAccess isolates the innermost simulator operation: one
// demand access against an LLC-geometry cache (6 MB, 12-way, hashed
// index) over a conflict-heavy pre-generated address stream. Every
// simulated instruction's memory traffic bottoms out here, so this is
// the microbenchmark the data-oriented line layout must hold.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{
		Name: "bench-llc", SizeBytes: 6 << 20, Assoc: 12, LineBytes: 64, HashIndex: true,
	})
	mask := cache.FullMask(12)
	r := rng.NewNamed("bench.cache")
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		// ~4 lines per set beyond capacity: a steady mix of hits,
		// misses, and evictions.
		addrs[i] = r.Uint64n(1 << 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], i&7 == 0, mask)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkTraceGen measures batched reference generation — the other
// half of the per-instruction hot path — through the same FillBatch
// call runEpoch uses, with a buffer of one epoch's typical data refs.
func BenchmarkTraceGen(b *testing.B) {
	g := trace.NewGenerator(trace.Config{
		DataBase:     1 << 40,
		PrivateBytes: 4 << 20,
		SharedBase:   1 << 41,
		SharedBytes:  1 << 20,
		SharedFrac:   0.2,
		Mix:          trace.PatternMix{Seq: 0.3, Stride: 0.2, Random: 0.5},
		WriteFrac:    0.3,
		StreamFrac:   0.05,
		HotFrac:      0.6,
		RepeatFrac:   0.1,
	}, rng.NewNamed("bench.trace"))
	buf := make([]trace.Ref, 512)
	b.ResetTimer()
	refs := 0
	for n := 0; n < b.N; n += len(buf) {
		g.FillBatch(buf)
		refs += len(buf)
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkSimulatorThroughput measures raw engine speed: simulated
// instructions per host second for a representative mixed workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	r := sched.New(sched.Options{Scale: 2e-3, DisableCache: true})
	app := workload.MustByName("canneal")
	instr := app.Instructions * 2e-3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunSingle(sched.SingleSpec{App: app, Threads: 4})
	}
	b.ReportMetric(instr*float64(b.N)/b.Elapsed().Seconds(), "sim-instr/s")
}
