// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be
// committed and diffed and CI can publish them as artifacts:
//
//	go test -run '^$' -bench 'X|Y' -benchtime=1x . | benchjson > BENCH.json
//
// Each benchmark line becomes an object with its name (CPU suffix
// stripped), iteration count, ns/op, and any custom metrics
// (`b.ReportMetric` values like sim-instr/s). Non-benchmark lines are
// ignored, so the tool is safe on full `go test` output.
//
// The compare subcommand diffs two such documents and gates on
// regressions, so CI can hold the committed baseline:
//
//	benchjson compare old.json new.json -threshold 0.15
//
// It prints a per-benchmark delta table and exits 1 when any judged
// metric regressed past the threshold (fractional: 0.15 = 15%).
// ns/op regresses upward; rate metrics (units ending in "/s") regress
// downward; other custom metrics are shown but not judged — they are
// experiment aggregates, not speeds. A benchmark present in the old
// document but missing from the new one is a regression.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		code, err := runCompare(os.Args[2:], os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	doc := &Doc{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   1   123456 ns/op   42.5 things/s
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix; baselines compare across hosts.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}
