package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// metricDelta is one judged (or displayed) metric of one benchmark.
type metricDelta struct {
	bench, metric string
	old, new      float64
	delta         float64 // fractional change (new-old)/old
	judged        bool    // counted toward the regression verdict
	regressed     bool
}

// runCompare implements `benchjson compare old.json new.json
// [-threshold F]`. It returns the process exit code (0 ok, 1 regression)
// or an error for usage/IO problems.
func runCompare(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.15, "fractional regression threshold (0.15 = 15%)")
	var files, flagArgs []string
	// Accept flags before or after the two files (CI templates differ).
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") {
			files = append(files, a)
			continue
		}
		flagArgs = append(flagArgs, a)
		if (a == "-threshold" || a == "--threshold") && i+1 < len(args) {
			i++
			flagArgs = append(flagArgs, args[i])
		}
	}
	if err := fs.Parse(flagArgs); err != nil {
		return 0, err
	}
	if len(files) != 2 {
		return 0, fmt.Errorf("compare: want exactly two files (old.json new.json), got %d", len(files))
	}
	if *threshold <= 0 {
		return 0, fmt.Errorf("compare: -threshold must be positive, got %v", *threshold)
	}
	oldDoc, err := loadDoc(files[0])
	if err != nil {
		return 0, err
	}
	newDoc, err := loadDoc(files[1])
	if err != nil {
		return 0, err
	}
	deltas, missing := compareDocs(oldDoc, newDoc)
	code := 0
	if len(missing) > 0 {
		code = 1
	}
	for i := range deltas {
		deltas[i].regressed = deltas[i].judged && regressedPast(deltas[i], *threshold)
		if deltas[i].regressed {
			code = 1
		}
	}
	printDeltaTable(w, deltas, missing, *threshold)
	if code != 0 {
		fmt.Fprintf(w, "REGRESSION past %.0f%% threshold\n", *threshold*100)
	}
	return code, nil
}

func loadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// compareDocs pairs benchmarks by name and produces one delta row per
// metric of every benchmark present in both documents, plus what
// disappeared (regressions): benchmarks present only in old, and
// judged metrics a still-present benchmark no longer reports —
// dropping a rate metric must not slip past the gate the way an
// unchanged number would. Unjudged metrics may come and go freely.
func compareDocs(oldDoc, newDoc *Doc) (deltas []metricDelta, missing []string) {
	newBy := map[string]Benchmark{}
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}
	for _, ob := range oldDoc.Benchmarks {
		nb, ok := newBy[ob.Name]
		if !ok {
			missing = append(missing, ob.Name)
			continue
		}
		deltas = append(deltas, newDelta(ob.Name, "ns/op", ob.NsPerOp, nb.NsPerOp))
		names := make([]string, 0, len(ob.Metrics))
		for m := range ob.Metrics {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			nv, have := nb.Metrics[m]
			if !have {
				if newDelta(ob.Name, m, 0, 0).judged {
					missing = append(missing, ob.Name+" "+m)
				}
				continue
			}
			deltas = append(deltas, newDelta(ob.Name, m, ob.Metrics[m], nv))
		}
	}
	return deltas, missing
}

func newDelta(bench, metric string, old, new float64) metricDelta {
	d := metricDelta{bench: bench, metric: metric, old: old, new: new}
	if old != 0 {
		d.delta = (new - old) / old
	}
	// ns/op and rates are speeds with a known good direction; other
	// custom metrics (experiment aggregates like cluster counts or
	// percentages) are informational.
	d.judged = metric == "ns/op" || strings.HasSuffix(metric, "/s")
	return d
}

// regressedPast reports whether a judged metric moved the wrong way by
// more than the threshold: ns/op up, rates down.
func regressedPast(d metricDelta, threshold float64) bool {
	if d.metric == "ns/op" {
		return d.delta > threshold
	}
	return d.delta < -threshold
}

func printDeltaTable(w io.Writer, deltas []metricDelta, missing []string, threshold float64) {
	fmt.Fprintf(w, "%-28s %-14s %14s %14s %8s  %s\n",
		"benchmark", "metric", "old", "new", "delta", "verdict")
	for _, d := range deltas {
		verdict := "-"
		if d.judged {
			switch {
			case d.regressed:
				verdict = "REGRESSED"
			case d.metric == "ns/op" && d.delta < -threshold,
				d.metric != "ns/op" && d.delta > threshold:
				verdict = "improved"
			default:
				verdict = "ok"
			}
		}
		fmt.Fprintf(w, "%-28s %-14s %14s %14s %+7.1f%%  %s\n",
			d.bench, d.metric, fmtVal(d.old), fmtVal(d.new), d.delta*100, verdict)
	}
	for _, name := range missing {
		fmt.Fprintf(w, "%-28s %-14s %14s %14s %8s  REGRESSED (missing from new)\n",
			name, "-", "-", "-", "-")
	}
}

// fmtVal renders a value compactly: integers plain, large values with
// no fractional noise, small values with enough digits to compare.
func fmtVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
