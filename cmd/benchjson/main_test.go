package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: whatever
BenchmarkScenarioMix-8     	       1	  52034180 ns/op	 123456789 sim-instr/s
BenchmarkFleetRun     	       2	  41000000 ns/op	       120 placements/s
--- some noise ---
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.Package != "repro" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	mix := doc.Benchmarks[0]
	if mix.Name != "BenchmarkScenarioMix" {
		t.Errorf("CPU suffix not stripped: %q", mix.Name)
	}
	if mix.Iterations != 1 || mix.NsPerOp != 52034180 {
		t.Errorf("mix numbers: %+v", mix)
	}
	if mix.Metrics["sim-instr/s"] != 123456789 {
		t.Errorf("custom metric lost: %+v", mix.Metrics)
	}
	fleet := doc.Benchmarks[1]
	if fleet.Name != "BenchmarkFleetRun" || fleet.Iterations != 2 {
		t.Errorf("fleet entry: %+v", fleet)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 xyz 1 ns/op",
		"Benchmark 1 2",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted noise line %q", line)
		}
	}
}
