package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldDoc = `{"benchmarks":[
  {"name":"BenchmarkScenarioMix","iterations":1,"ns_per_op":300000000,"metrics":{"sim-instr/s":25000000}},
  {"name":"BenchmarkFleetRun","iterations":1,"ns_per_op":400000000,"metrics":{"placements/s":150}}
]}`

func TestCompareOK(t *testing.T) {
	// Faster on both axes: no regression, exit 0.
	newDoc := `{"benchmarks":[
	  {"name":"BenchmarkScenarioMix","iterations":1,"ns_per_op":150000000,"metrics":{"sim-instr/s":50000000}},
	  {"name":"BenchmarkFleetRun","iterations":1,"ns_per_op":200000000,"metrics":{"placements/s":320}}
	]}`
	var sb strings.Builder
	code, err := runCompare([]string{
		writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc),
	}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("code %d, err %v\n%s", code, err, sb.String())
	}
	if !strings.Contains(sb.String(), "improved") {
		t.Errorf("2x speedup not marked improved:\n%s", sb.String())
	}
}

func TestCompareRegression(t *testing.T) {
	// placements/s down 40%: past a 15% threshold, within a 50% one.
	newDoc := `{"benchmarks":[
	  {"name":"BenchmarkScenarioMix","iterations":1,"ns_per_op":300000000,"metrics":{"sim-instr/s":25000000}},
	  {"name":"BenchmarkFleetRun","iterations":1,"ns_per_op":400000000,"metrics":{"placements/s":90}}
	]}`
	oldPath := writeDoc(t, "old.json", oldDoc)
	newPath := writeDoc(t, "new.json", newDoc)

	var sb strings.Builder
	code, err := runCompare([]string{oldPath, newPath, "-threshold", "0.15"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("40%% rate drop not flagged at 15%%: code %d\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED verdict:\n%s", sb.String())
	}

	sb.Reset()
	code, err = runCompare([]string{"-threshold", "0.5", oldPath, newPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("40%% drop flagged at 50%% threshold: code %d\n%s", code, sb.String())
	}
}

func TestCompareNsPerOpRegression(t *testing.T) {
	// ns/op doubled with no custom-metric change visible.
	newDoc := `{"benchmarks":[
	  {"name":"BenchmarkScenarioMix","iterations":1,"ns_per_op":600000000,"metrics":{"sim-instr/s":25000000}},
	  {"name":"BenchmarkFleetRun","iterations":1,"ns_per_op":400000000,"metrics":{"placements/s":150}}
	]}`
	var sb strings.Builder
	code, err := runCompare([]string{
		writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc),
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("doubled ns/op not flagged: code %d\n%s", code, sb.String())
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	newDoc := `{"benchmarks":[
	  {"name":"BenchmarkScenarioMix","iterations":1,"ns_per_op":300000000,"metrics":{"sim-instr/s":25000000}}
	]}`
	var sb strings.Builder
	code, err := runCompare([]string{
		writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc),
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("dropped benchmark not flagged: code %d\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "missing from new") {
		t.Errorf("missing-benchmark row absent:\n%s", sb.String())
	}
}

func TestCompareMissingJudgedMetric(t *testing.T) {
	// The benchmark survives but its rate metric disappears: that is a
	// regression (an unchanged-looking gate would otherwise hide a
	// dropped ReportMetric call).
	newDoc := `{"benchmarks":[
	  {"name":"BenchmarkScenarioMix","iterations":1,"ns_per_op":300000000,"metrics":{"sim-instr/s":25000000}},
	  {"name":"BenchmarkFleetRun","iterations":1,"ns_per_op":400000000}
	]}`
	var sb strings.Builder
	code, err := runCompare([]string{
		writeDoc(t, "old.json", oldDoc), writeDoc(t, "new.json", newDoc),
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("dropped judged metric not flagged: code %d\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkFleetRun placements/s") {
		t.Errorf("missing-metric row absent:\n%s", sb.String())
	}
}

func TestCompareUnjudgedMetric(t *testing.T) {
	// A non-rate custom metric may move arbitrarily without failing.
	oldPct := `{"benchmarks":[{"name":"BenchmarkTable2","iterations":1,"ns_per_op":100,"metrics":{"%apps<=3MB":40}}]}`
	newPct := `{"benchmarks":[{"name":"BenchmarkTable2","iterations":1,"ns_per_op":100,"metrics":{"%apps<=3MB":80}}]}`
	var sb strings.Builder
	code, err := runCompare([]string{
		writeDoc(t, "old.json", oldPct), writeDoc(t, "new.json", newPct),
	}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("unjudged metric failed the gate: code %d err %v\n%s", code, err, sb.String())
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := runCompare([]string{"only-one.json"}, &sb); err == nil {
		t.Error("one file accepted")
	}
	if _, err := runCompare([]string{"a.json", "b.json", "-threshold", "0"}, &sb); err == nil {
		t.Error("zero threshold accepted")
	}
}
