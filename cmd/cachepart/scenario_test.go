package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeScenario drops a scenario file into a test dir and returns its
// path.
func writeScenario(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioRunErrorPaths pins the CLI contract for malformed
// scenario files: a descriptive error return (which main turns into a
// one-line message and exit 1), never a panic and never a silent
// success — for unknown workloads, invalid placements, bad policy
// overrides, and missing files.
func TestScenarioRunErrorPaths(t *testing.T) {
	cases := []struct {
		name, file, want string
		args             []string
	}{
		{
			name: "unknown workload",
			file: `{"name":"bad","jobs":[{"app":"no-such-app","role":"latency"}]}`,
			want: "unknown application",
		},
		{
			name: "invalid placement policy",
			file: `{"name":"bad","placement":{"policy":"zigzag"},"jobs":[{"app":"ferret","role":"latency"}]}`,
			want: "unknown placement policy",
		},
		{
			name: "out-of-range explicit slots",
			file: `{"name":"bad","placement":{"policy":"explicit"},"jobs":[{"app":"ferret","role":"latency","slots":[0,99]}]}`,
			want: "out of range",
		},
		{
			name: "invalid way range",
			file: `{"name":"bad","partition":{"policy":"explicit"},"jobs":[{"app":"ferret","role":"latency","ways":[5,99]}]}`,
			want: "invalid",
		},
		{
			name: "over-subscribed pool",
			file: `{"name":"bad","jobs":[{"app":"ferret","role":"latency","count":40}]}`,
			want: "jobs cannot share cores",
		},
		{
			name: "bad policy override",
			file: `{"name":"ok","jobs":[{"app":"ferret","role":"latency"}]}`,
			args: []string{"-policy", "warp"},
			want: "unknown partition policy",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := writeScenario(t, "s.json", c.file)
			args := append([]string{path, "-quick"}, c.args...)
			err := scenarioRun(args)
			if err == nil {
				t.Fatal("scenario run accepted a broken scenario")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err %q, want substring %q", err, c.want)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
	if err := scenarioRun([]string{"-quick"}); err == nil {
		t.Error("scenario run with no files accepted")
	}
	if err := scenarioRun([]string{filepath.Join(t.TempDir(), "missing.json"), "-quick"}); err == nil {
		t.Error("scenario run with a missing file accepted")
	}
}

// TestScenarioCommandsSkipFleetFiles: the scenario subcommands pass
// over fleet scenarios (so shell globs covering the whole example
// library keep working) but refuse to run on nothing.
func TestScenarioCommandsSkipFleetFiles(t *testing.T) {
	fleetFile := writeScenario(t, "f.json",
		`{"name":"f","fleet":{"machines":1,"duration":0.01,"arrivals":[{"app":"xalan","rate":100}]}}`)
	if err := scenarioCheck([]string{fleetFile}); err != nil {
		t.Errorf("scenario check did not skip a fleet file: %v", err)
	}
	if err := scenarioRun([]string{fleetFile, "-quick"}); err == nil ||
		!strings.Contains(err.Error(), "no single-machine scenarios") {
		t.Errorf("scenario run on only fleet files: err %v", err)
	}
}

// TestFleetCommandValidation covers the fleet subcommands' error and
// skip paths without running a full fleet.
func TestFleetCommandValidation(t *testing.T) {
	plain := writeScenario(t, "p.json", `{"name":"p","jobs":[{"app":"ferret","role":"latency"}]}`)
	if err := fleetRun([]string{plain, "-quick"}); err == nil ||
		!strings.Contains(err.Error(), "no fleet scenarios") {
		t.Errorf("fleet run on a plain scenario: err %v", err)
	}
	if err := fleetCheck([]string{plain}); err != nil {
		t.Errorf("fleet check did not skip a plain scenario: %v", err)
	}

	badFleet := writeScenario(t, "b.json",
		`{"name":"b","fleet":{"machines":2,"duration":0.01,"arrivals":[{"app":"nope","rate":10}]}}`)
	if err := fleetCheck([]string{badFleet}); err == nil ||
		!strings.Contains(err.Error(), "unknown application") {
		t.Errorf("fleet check on unknown app: err %v", err)
	}

	okFleet := writeScenario(t, "ok.json",
		`{"name":"ok","fleet":{"machines":2,"duration":0.01,"arrivals":[{"app":"xalan","rate":100}]}}`)
	if err := fleetCheck([]string{okFleet}); err != nil {
		t.Errorf("fleet check on a valid fleet: %v", err)
	}
	if err := fleetCheck([]string{okFleet, "-policy", "warp"}); err == nil ||
		!strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("fleet check with bad -policy override: err %v", err)
	}
	if err := fleetCheck([]string{okFleet, "-partition", "warp"}); err == nil ||
		!strings.Contains(err.Error(), "unknown partition mode") {
		t.Errorf("fleet check with bad -partition override: err %v", err)
	}
	if err := cmdFleet([]string{"teleport"}); err == nil {
		t.Error("unknown fleet subcommand accepted")
	}
	if err := cmdFleet(nil); err == nil {
		t.Error("bare fleet command accepted")
	}
}

// TestFleetCheckEventTimelines pins the CLI contract for event
// timelines: `fleet check` surfaces every malformed timeline as a
// one-line error (which main turns into exit 1) and accepts a valid
// one.
func TestFleetCheckEventTimelines(t *testing.T) {
	base := `{"name":"e","fleet":{"machines":2,"duration":0.01,"arrivals":[{"app":"xalan","rate":100}],"events":`
	cases := []struct{ name, events, want string }{
		{"unknown-kind",
			`[{"at":0.001,"kind":"quantum-leap"}]`,
			`unknown event kind "quantum-leap"`},
		{"undeclared-machine",
			`[{"at":0.001,"kind":"machine-down","machine":7}]`,
			"machine 7 not in the declared pool of 2"},
		{"out-of-order",
			`[{"at":0.005,"kind":"load-scale","factor":2},{"at":0.001,"kind":"load-scale","factor":3}]`,
			"timeline must be ordered"},
		{"negative-timestamp",
			`[{"at":-1,"kind":"load-scale","factor":2}]`,
			"negative timestamp"},
		{"double-down",
			`[{"at":0.001,"kind":"machine-down","machine":0},{"at":0.002,"kind":"machine-down","machine":0}]`,
			"machine 0 is already down"},
		{"last-machine-down",
			`[{"at":0.001,"kind":"machine-down","machine":0},{"at":0.002,"kind":"machine-down","machine":1}]`,
			"would leave no machine up"},
		{"up-without-down",
			`[{"at":0.001,"kind":"machine-up","machine":0}]`,
			"machine 0 is not down"},
		{"drain-misuse",
			`[{"at":0.001,"kind":"machine-up","machine":0,"drain":true}]`,
			"drain applies only to machine-down"},
		{"unknown-event-app",
			`[{"at":0.001,"kind":"batch-arrival","app":"nope"}]`,
			"unknown application"},
		{"bad-scale-factor",
			`[{"at":0.001,"kind":"load-scale","factor":0}]`,
			"load-scale needs a positive factor"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := writeScenario(t, "e.json", base+c.events+`}}`)
			err := fleetCheck([]string{path})
			if err == nil {
				t.Fatal("fleet check accepted a broken timeline")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err %q, want substring %q", err, c.want)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
	ok := writeScenario(t, "ok.json", base+
		`[{"at":0.002,"kind":"machine-down","machine":1,"drain":true},`+
		`{"at":0.004,"kind":"machine-up","machine":1},`+
		`{"at":0.005,"kind":"batch-arrival","app":"ferret"},`+
		`{"at":0.006,"kind":"load-scale","factor":2}],"hysteresis":0.002}}`)
	if err := fleetCheck([]string{ok}); err != nil {
		t.Errorf("fleet check on a valid timeline: %v", err)
	}
}

// TestFleetRunSmall runs a tiny fleet end to end through the CLI path.
func TestFleetRunSmall(t *testing.T) {
	okFleet := writeScenario(t, "ok.json", `{
  "name": "cli-small",
  "fleet": {
    "machines": 2, "duration": 0.02, "seed": "cli",
    "arrivals": [{"app": "xalan", "rate": 200}],
    "backlog": [{"app": "ferret", "count": 2, "iterations": 10}]
  }
}`)
	if err := fleetRun([]string{okFleet, "-quick", "-policy", "pack-partition"}); err != nil {
		t.Fatal(err)
	}
}
