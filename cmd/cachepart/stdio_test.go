package main

import (
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// captureStreams runs fn with stdout and stderr redirected and returns
// what each received.
func captureStreams(t *testing.T, fn func() error) (stdout, stderr string, err error) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, e := os.Pipe()
	if e != nil {
		t.Fatal(e)
	}
	re, we, e := os.Pipe()
	if e != nil {
		t.Fatal(e)
	}
	os.Stdout, os.Stderr = wo, we
	outC := make(chan string)
	errC := make(chan string)
	go func() { b, _ := io.ReadAll(ro); outC <- string(b) }()
	go func() { b, _ := io.ReadAll(re); errC <- string(b) }()
	err = fn()
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	return <-outC, <-errC, err
}

// TestSkipNoticesGoToStderr pins the piped-output contract: when a
// glob mixes fleet and single-machine scenarios, the skip notices land
// on stderr and the report stream on stdout stays clean.
func TestSkipNoticesGoToStderr(t *testing.T) {
	fleetFile := writeScenario(t, "f.json",
		`{"name":"f","fleet":{"machines":1,"duration":0.01,"arrivals":[{"app":"xalan","rate":100}]}}`)
	plainFile := writeScenario(t, "p.json",
		`{"name":"p","jobs":[{"app":"ferret","role":"latency","threads":2}]}`)

	stdout, stderr, err := captureStreams(t, func() error {
		return scenarioRun([]string{plainFile, fleetFile, "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout, "skipped") {
		t.Errorf("scenario run skip notice polluted stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "fleet scenario, skipped") {
		t.Errorf("scenario run skip notice missing from stderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "== scenario: p ") {
		t.Errorf("report missing from stdout:\n%s", stdout)
	}

	stdout, stderr, err = captureStreams(t, func() error {
		return scenarioCheck([]string{plainFile, fleetFile})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout, "skipped") || !strings.Contains(stderr, "skipped") {
		t.Errorf("scenario check notice on wrong stream\nstdout:\n%s\nstderr:\n%s", stdout, stderr)
	}

	stdout, stderr, err = captureStreams(t, func() error {
		return fleetCheck([]string{plainFile, fleetFile})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout, "skipped") || !strings.Contains(stderr, "skipped") {
		t.Errorf("fleet check notice on wrong stream\nstdout:\n%s\nstderr:\n%s", stdout, stderr)
	}
}

var diskHitsRe = regexp.MustCompile(`(\d+) disk hits`)

func sumDiskHits(t *testing.T, out string) int {
	t.Helper()
	total := 0
	for _, m := range diskHitsRe.FindAllStringSubmatch(out, -1) {
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	return total
}

// TestFleetDiskHitsCountUniqueKeys is the regression test for the
// footer's persistent-store accounting: replaying one fleet under
// several partition policies in one invocation shares the alone
// baselines across policies, and those shared memo keys must be
// counted (and read) once — total disk hits equal the unique records
// on disk, not the per-policy requests.
func TestFleetDiskHitsCountUniqueKeys(t *testing.T) {
	fleetFile := writeScenario(t, "f.json", `{
  "name": "disk-hits",
  "fleet": {
    "machines": 2, "duration": 0.02, "seed": "dh",
    "partition": "shared",
    "arrivals": [{"app": "xalan", "rate": 150}],
    "backlog": [{"app": "ferret", "count": 2, "iterations": 10}]
  }
}`)
	cacheDir := filepath.Join(t.TempDir(), "store")

	// Cold pass under both partition policies: everything simulates
	// and lands in the store; no disk hits yet.
	stdout, _, err := captureStreams(t, func() error {
		return fleetRun([]string{fleetFile, "-quick", "-partition", "shared,fair", "-cache-dir", cacheDir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sumDiskHits(t, stdout); got != 0 {
		t.Fatalf("cold run reported %d disk hits", got)
	}
	records, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("cold run persisted nothing")
	}

	// Warm pass, fresh process state (fleetRun builds a new runner):
	// every needed key loads from disk exactly once, even though the
	// alone baselines are requested by both policies' oracles.
	warmOut, _, err := captureStreams(t, func() error {
		return fleetRun([]string{fleetFile, "-quick", "-partition", "shared,fair", "-cache-dir", cacheDir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sumDiskHits(t, warmOut); got != len(records) {
		t.Errorf("warm run reported %d disk hits for %d unique records — shared keys double-counted",
			got, len(records))
	}
	if strings.Contains(warmOut, " 1 sims") || strings.Contains(warmOut, " 2 sims") {
		t.Errorf("warm run re-simulated:\n%s", warmOut)
	}

	// The reports themselves are byte-identical cold vs warm.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "host time") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(stdout) != strip(warmOut) {
		t.Errorf("cold and warm reports differ\n--- cold ---\n%s\n--- warm ---\n%s", stdout, warmOut)
	}
}

// TestFleetPartitionOverrideHygiene: a -partition override clears the
// file's partition_params (they belong to the file's policy), and
// empty entries in the comma list are rejected rather than silently
// replaying the file's own mode.
func TestFleetPartitionOverrideHygiene(t *testing.T) {
	fleetFile := writeScenario(t, "f.json", `{
  "name": "override",
  "fleet": {
    "machines": 2, "duration": 0.02, "seed": "ov",
    "partition": "utility", "partition_params": {"min_ways": 2, "sample_shift": 4},
    "arrivals": [{"app": "xalan", "rate": 150}],
    "backlog": [{"app": "ferret", "count": 1, "iterations": 10}]
  }
}`)
	// The utility params must not leak into the shared override.
	_, _, err := captureStreams(t, func() error {
		return fleetRun([]string{fleetFile, "-quick", "-partition", "shared"})
	})
	if err != nil {
		t.Fatalf("-partition shared over a utility file with params: %v", err)
	}
	if err := fleetRun([]string{fleetFile, "-quick", "-partition", "shared,"}); err == nil ||
		!strings.Contains(err.Error(), "empty partition mode") {
		t.Fatalf("trailing comma in -partition: err %v", err)
	}
}
