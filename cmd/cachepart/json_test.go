package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

const jsonScenario = `{
  "name": "json-mix",
  "jobs": [
    {"app": "429.mcf", "role": "latency", "threads": 2},
    {"app": "ferret", "role": "batch", "threads": 2}
  ]
}`

const jsonFleet = `{
  "name": "json-fleet",
  "description": "json fleet fixture",
  "fleet": {
    "machines": 2, "duration": 0.02, "seed": "json",
    "arrivals": [{"app": "xalan", "rate": 150}]
  }
}`

// TestScenarioRunJSON pins the -json contract: stdout is exactly one
// versioned envelope per file, and its report field carries the bytes
// text mode would print before the engine footer.
func TestScenarioRunJSON(t *testing.T) {
	file := writeScenario(t, "mix.json", jsonScenario)

	jsonOut, _, err := captureStreams(t, func() error {
		return scenarioRun([]string{file, "-quick", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var env core.Envelope
	if err := json.Unmarshal([]byte(jsonOut), &env); err != nil {
		t.Fatalf("-json output is not one envelope: %v\n%s", err, jsonOut)
	}
	if env.SchemaVersion != core.SchemaVersion || env.EngineVersion != sched.EngineVersion {
		t.Errorf("envelope header: %+v", env)
	}
	if env.Kind != core.KindScenario || env.Name != "json-mix" {
		t.Errorf("envelope identity: %+v", env)
	}
	if env.Stats.Simulations == 0 {
		t.Errorf("cold run envelope reports no simulations: %+v", env.Stats)
	}

	textOut, _, err := captureStreams(t, func() error {
		return scenarioRun([]string{file, "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(textOut, env.Report) {
		t.Errorf("text output does not start with the envelope report\n--- text ---\n%s\n--- report ---\n%s",
			textOut, env.Report)
	}
	footer := strings.TrimPrefix(textOut, env.Report)
	if !strings.HasPrefix(footer, "(host time ") {
		t.Errorf("text output after the report is not the engine footer: %q", footer)
	}
}

// TestFleetRunJSON: fleet envelopes carry kind "fleet" and lead the
// report with the description line, matching text-mode print order.
func TestFleetRunJSON(t *testing.T) {
	file := writeScenario(t, "fl.json", jsonFleet)

	jsonOut, _, err := captureStreams(t, func() error {
		return fleetRun([]string{file, "-quick", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var env core.Envelope
	if err := json.Unmarshal([]byte(jsonOut), &env); err != nil {
		t.Fatalf("-json output is not one envelope: %v\n%s", err, jsonOut)
	}
	if env.Kind != core.KindFleet || env.Name != "json-fleet" {
		t.Errorf("envelope identity: %+v", env)
	}
	if !strings.HasPrefix(env.Report, "json fleet fixture\n== fleet: json-fleet ") {
		t.Errorf("fleet report does not lead with the description:\n%s", env.Report)
	}

	textOut, _, err := captureStreams(t, func() error {
		return fleetRun([]string{file, "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(textOut, env.Report) {
		t.Errorf("text output does not start with the envelope report\n--- text ---\n%s\n--- report ---\n%s",
			textOut, env.Report)
	}
}

// TestScenarioRunJSONMultiFile: one envelope per input file, in
// argument order, concatenated on stdout.
func TestScenarioRunJSONMultiFile(t *testing.T) {
	a := writeScenario(t, "a.json", jsonScenario)
	b := writeScenario(t, "b.json",
		`{"name":"json-solo","jobs":[{"app":"ferret","role":"latency","threads":2}]}`)

	out, _, err := captureStreams(t, func() error {
		return scenarioRun([]string{a, b, "-quick", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var names []string
	for dec.More() {
		var env core.Envelope
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("decoding envelope stream: %v\n%s", err, out)
		}
		names = append(names, env.Name)
	}
	if len(names) != 2 || names[0] != "json-mix" || names[1] != "json-solo" {
		t.Errorf("envelope stream order: %v", names)
	}
}
