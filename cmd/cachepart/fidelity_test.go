package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFleetFidelityBadValue pins the CLI error contract: an unknown
// -fidelity value is a one-line error (main prints it and exits 1),
// from run and check alike.
func TestFleetFidelityBadValue(t *testing.T) {
	file := writeScenario(t, "fl.json", jsonFleet)
	for name, fn := range map[string]func() error{
		"run":   func() error { return fleetRun([]string{file, "-quick", "-fidelity", "bogus"}) },
		"check": func() error { return fleetCheck([]string{file, "-fidelity", "bogus"}) },
	} {
		_, _, err := captureStreams(t, fn)
		if err == nil {
			t.Fatalf("fleet %s accepted -fidelity bogus", name)
		}
		msg := err.Error()
		if !strings.Contains(msg, `unknown fidelity "bogus"`) {
			t.Errorf("fleet %s error does not name the bad value: %q", name, msg)
		}
		if strings.ContainsRune(msg, '\n') {
			t.Errorf("fleet %s error is not one line: %q", name, msg)
		}
	}
}

// TestFleetFidelityEnvelope: the -json envelope echoes the effective
// fleet fidelity — the file's default (exact) and a -fidelity override
// alike — and the fast report carries the fidelity accounting line.
func TestFleetFidelityEnvelope(t *testing.T) {
	file := writeScenario(t, "fl.json", jsonFleet)

	decode := func(args ...string) core.Envelope {
		t.Helper()
		out, _, err := captureStreams(t, func() error { return fleetRun(args) })
		if err != nil {
			t.Fatal(err)
		}
		var env core.Envelope
		if err := json.Unmarshal([]byte(out), &env); err != nil {
			t.Fatalf("-json output is not one envelope: %v\n%s", err, out)
		}
		return env
	}

	exact := decode(file, "-quick", "-json")
	if exact.Fidelity != "exact" {
		t.Errorf("default fleet envelope fidelity = %q, want exact", exact.Fidelity)
	}
	if strings.Contains(exact.Report, "fidelity:") {
		t.Errorf("exact report carries a fidelity line:\n%s", exact.Report)
	}

	fast := decode(file, "-quick", "-json", "-fidelity", "fast")
	if fast.Fidelity != "fast" {
		t.Errorf("-fidelity fast envelope fidelity = %q", fast.Fidelity)
	}
	if !strings.Contains(fast.Report, "fidelity: fast (model ") {
		t.Errorf("fast report carries no fidelity line:\n%s", fast.Report)
	}
}
