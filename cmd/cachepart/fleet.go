package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/scenario"
)

// cmdFleet dispatches the fleet subcommands:
//
//	cachepart fleet run   [flags] file.json...
//	cachepart fleet check [flags] file.json...
//
// Both accept the whole examples/scenarios/ glob: files without a
// fleet block are skipped with a note, so the fleet and single-machine
// scenario libraries can live side by side.
func cmdFleet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("fleet: want 'run' or 'check' (see 'cachepart help')")
	}
	switch args[0] {
	case "run":
		return fleetRun(args[1:])
	case "check":
		return fleetCheck(args[1:])
	default:
		return fmt.Errorf("fleet: unknown subcommand %q (want run or check)", args[0])
	}
}

var fleetValueFlags = map[string]bool{
	"scale": true, "parallel": true, "policy-parallel": true, "policy": true,
	"partition": true, "machines": true, "cache-dir": true, "fidelity": true,
	"fast-margin": true, "trace": true,
}

// splitPolicies turns the -policy comma list into the override list
// core applies to a fleet definition.
func splitPolicies(policy string) []string {
	if policy == "" {
		return nil
	}
	parts := strings.Split(policy, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fleetRun(args []string) error {
	fs := flag.NewFlagSet("fleet run", flag.ExitOnError)
	scale := fs.Float64("scale", 0, "instruction scale (0 = default)")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial)")
	policyParallel := fs.Int("policy-parallel", 0, "concurrent policy episodes per fleet run (0 = min(policies, GOMAXPROCS), 1 = serial)")
	quick := fs.Bool("quick", false, "reduced scale for smoke runs")
	policy := fs.String("policy", "", "comma-separated consolidation policies to evaluate (override the file)")
	part := fs.String("partition", "", "comma-separated partition policies to run the fleet under (override the file)")
	machines := fs.Int("machines", 0, "override the pool size")
	fidelity := fs.String("fidelity", "", "oracle tier: exact, fast, or auto (override the file)")
	fastMargin := fs.Float64("fast-margin", 0, "auto's exact re-simulation band around slowdown_limit (0 = file's, default 0.05)")
	cacheDir := fs.String("cache-dir", "", "persistent result store directory")
	jsonOut := fs.Bool("json", false, "emit the versioned report envelope as JSON (one object per run)")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the invocation to FILE")
	traceSummary := fs.Bool("trace-summary", false, "print a per-span wall time breakdown to stderr")
	flagArgs, files := splitFlags(args, fleetValueFlags)
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("fleet run: no scenario files given")
	}
	cfg := core.RunConfig{
		Scale: *scale, Quick: *quick, Parallelism: *parallel,
		PolicyParallel: *policyParallel, CacheDir: *cacheDir,
		Policies: splitPolicies(*policy), Machines: *machines,
		Fidelity: *fidelity, FastMargin: *fastMargin,
	}
	// One session across files AND partition modes: fleets sharing
	// applications — or modes sharing baselines — deduplicate in the
	// memo cache, and each persistent-store key is read from disk at
	// most once per invocation, so footer disk hits count unique keys
	// rather than per-mode requests.
	tr := newRunTracer(*tracePath, *traceSummary)
	sess, err := core.NewSessionWith(cfg, tr)
	if err != nil {
		return err
	}

	partitions := []string{""}
	if *part != "" {
		partitions = strings.Split(*part, ",")
		for i := range partitions {
			partitions[i] = strings.TrimSpace(partitions[i])
			if partitions[i] == "" {
				return fmt.Errorf("fleet run: empty partition mode in -partition %q", *part)
			}
		}
	}
	ran := 0
	for _, path := range files {
		for _, mode := range partitions {
			s, err := scenario.ParseFile(path)
			if err != nil {
				return err
			}
			if !s.IsFleet() {
				fmt.Fprintf(os.Stderr, "%s: not a fleet scenario, skipped (use 'cachepart scenario run')\n", path)
				break
			}
			runCfg := cfg
			runCfg.Partition = mode
			res, err := sess.RunScenario(s, runCfg)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			ran++
			emitRun(res, *jsonOut, cfg.CacheDir != "")
		}
	}
	if ran == 0 {
		return fmt.Errorf("fleet run: no fleet scenarios among the given files")
	}
	return finishTrace(tr, *tracePath, *traceSummary)
}

func fleetCheck(args []string) error {
	fs := flag.NewFlagSet("fleet check", flag.ExitOnError)
	policy := fs.String("policy", "", "override the policies before checking")
	part := fs.String("partition", "", "override the partition mode before checking")
	machines := fs.Int("machines", 0, "override the pool size before checking")
	fidelity := fs.String("fidelity", "", "override the oracle tier before checking")
	flagArgs, files := splitFlags(args, fleetValueFlags)
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("fleet check: no scenario files given")
	}
	cfg := core.RunConfig{
		Policies: splitPolicies(*policy), Partition: *part, Machines: *machines,
		Fidelity: *fidelity,
	}
	for _, path := range files {
		s, err := scenario.ParseFile(path)
		if err != nil {
			return err
		}
		if !s.IsFleet() {
			fmt.Fprintf(os.Stderr, "%s: not a fleet scenario, skipped\n", path)
			continue
		}
		if err := core.ApplyOverrides(s, cfg); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		out, err := fleet.Describe(s.Name, s.Fleet)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: %s", path, out)
	}
	return nil
}
