package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestVersionSubcommand pins the version contract: the engine version
// that namespaces persistent-store keys and the envelope schema
// version, both on stdout.
func TestVersionSubcommand(t *testing.T) {
	stdout, stderr, err := captureStreams(t, cmdVersion)
	if err != nil {
		t.Fatal(err)
	}
	if stderr != "" {
		t.Errorf("version wrote to stderr: %q", stderr)
	}
	if !strings.Contains(stdout, "engine_version  "+sched.EngineVersion+"\n") {
		t.Errorf("version output missing engine version:\n%s", stdout)
	}
	var schemaLine bool
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "schema_version") && strings.HasSuffix(line, " 4") {
			schemaLine = true
		}
	}
	if !schemaLine || core.SchemaVersion != 4 {
		t.Errorf("version output missing schema_version %d:\n%s", core.SchemaVersion, stdout)
	}
}

// TestFleetTraceFlags: -trace writes a Chrome trace_event file of the
// run, -trace-summary prints the span table to stderr, and neither
// touches the report on stdout.
func TestFleetTraceFlags(t *testing.T) {
	fleetFile := writeScenario(t, "f.json", `{
  "name": "traced",
  "fleet": {
    "machines": 2, "duration": 0.02, "seed": "tr",
    "arrivals": [{"app": "xalan", "rate": 150}],
    "backlog": [{"app": "ferret", "count": 2, "iterations": 10}]
  }
}`)
	tracePath := filepath.Join(t.TempDir(), "out.json")

	plain, _, err := captureStreams(t, func() error {
		return fleetRun([]string{fleetFile, "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := captureStreams(t, func() error {
		return fleetRun([]string{fleetFile, "-quick", "-trace", tracePath, "-trace-summary"})
	})
	if err != nil {
		t.Fatal(err)
	}

	// Tracing must not change a single report byte (the footer's host
	// time is the one wall-clock line).
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "host time") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(stdout) != strip(plain) {
		t.Errorf("tracing changed the report\n--- traced ---\n%s\n--- plain ---\n%s", stdout, plain)
	}
	if !strings.Contains(stderr, "trace: ") || !strings.Contains(stderr, "spans") {
		t.Errorf("-trace-summary wrote no summary to stderr:\n%s", stderr)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace file is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("trace document shape: %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"run", "compile", "oracle", "episode", "simulate"} {
		if !names[want] {
			t.Errorf("trace missing %q events: %v", want, names)
		}
	}
}

// TestScenarioTraceFlags: the same flags work on single-machine
// scenario runs, with the scenario batch label in the spans.
func TestScenarioTraceFlags(t *testing.T) {
	plainFile := writeScenario(t, "p.json",
		`{"name":"p","jobs":[{"app":"ferret","role":"latency","threads":2}]}`)
	tracePath := filepath.Join(t.TempDir(), "out.json")
	_, stderr, err := captureStreams(t, func() error {
		return scenarioRun([]string{plainFile, "-quick", "-trace", tracePath, "-trace-summary"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "trace: ") {
		t.Errorf("-trace-summary wrote no summary:\n%s", stderr)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"scenario-batch"`) {
		t.Errorf("scenario trace carries no scenario-batch span:\n%.400s", raw)
	}
}
