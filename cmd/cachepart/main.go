// Command cachepart drives the cache-partitioning study: it lists the
// workload catalog, runs individual applications or consolidated pairs
// on the simulated way-partitionable platform, and regenerates every
// table and figure of the paper's evaluation.
//
// Usage:
//
//	cachepart list
//	cachepart policies [-names]
//	cachepart run  -app 429.mcf [-threads 4] [-ways 0] [-scale 0.002]
//	cachepart pair -fg 429.mcf -bg ferret [-policy dynamic] [-scale 0.002] [-parallel N]
//	cachepart exp  -id fig9 [-scale 0.002] [-quick] [-parallel N]
//	cachepart exp  -id all  [-quick]
//	cachepart scenario run examples/scenarios/latency-3batch.json [-quick] [-policy dynamic]
//	cachepart scenario check examples/scenarios/*.json
//	cachepart fleet run examples/scenarios/fleet-consolidation-50.json [-quick]
//	cachepart fleet run examples/scenarios/fleet-utility-50.json [-quick] [-partition shared,utility]
//	cachepart fleet run examples/scenarios/fleet-mega-10k.json [-quick] [-fidelity auto]
//	cachepart fleet check examples/scenarios/*.json
//
// Partition policies (-policy, -partition, scenario "partition"
// blocks) come from the pluggable registry in internal/partition;
// `cachepart policies` lists them.
//
// Experiment ids: fig1..fig13, table1, table2, table3, headline, the
// abl-* ablation studies, and all.
//
// -parallel sets the experiment engine's worker count (0 = GOMAXPROCS,
// 1 = serial). Output is byte-identical at any setting; each
// experiment's footer reports the effective speedup the worker pool and
// memo cache delivered.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/workload"
)

// engineFooter renders the per-run engine stats line from a counter
// delta. Disk hits are reported only when a persistent store is active
// (-cache-dir), so footers stay byte-stable for runs without one.
func engineFooter(wall float64, before, after sched.Stats, diskEnabled bool) string {
	speedup := 0.0
	if wall > 0 {
		speedup = (after.BusySeconds - before.BusySeconds) / wall
	}
	disk := ""
	if diskEnabled {
		disk = fmt.Sprintf(", %d disk hits", after.DiskHits-before.DiskHits)
	}
	return fmt.Sprintf("(host time %.1fs; %d sims, %d memo hits%s; %.1fx speedup (sim-busy/wall) at parallelism %d)\n\n",
		wall, after.Simulations-before.Simulations, after.MemoHits-before.MemoHits,
		disk, speedup, after.Parallelism)
}

// validateCacheDir surfaces an unusable -cache-dir as a normal CLI
// error before any runner is built (sched.New panics on one).
func validateCacheDir(dir string) error {
	if dir == "" {
		return nil
	}
	return sched.ValidateCacheDir(dir)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "policies":
		err = cmdPolicies(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "pair":
		err = cmdPair(os.Args[2:])
	case "exp":
		err = cmdExp(os.Args[2:])
	case "scenario":
		err = cmdScenario(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "version":
		err = cmdVersion()
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachepart:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cachepart list
  cachepart policies [-names]
  cachepart run  -app NAME [-threads N] [-ways W] [-scale S] [-cache-dir DIR]
  cachepart pair -fg NAME -bg NAME [-policy P] [-scale S] [-parallel N] [-cache-dir DIR]
  cachepart exp  -id fig1..fig13|table1|table2|table3|headline|all [-scale S] [-quick] [-parallel N] [-cache-dir DIR]
  cachepart scenario run   [-scale S] [-quick] [-parallel N] [-policy P] [-cache-dir DIR] [-json] FILE.json...
  cachepart scenario check [-policy P] FILE.json...
  cachepart fleet run   [-scale S] [-quick] [-parallel N] [-policy-parallel N] [-policy P,P] [-partition M,M] [-machines N] [-fidelity F] [-fast-margin M] [-cache-dir DIR] [-json] FILE.json...
  cachepart fleet check [-policy P,P] [-partition M] [-machines N] [-fidelity F] FILE.json...
  cachepart serve [-addr HOST:PORT] [-scale S] [-quick] [-parallel N] [-policy-parallel N] [-cache-dir DIR] [-queue N] [-concurrency N] [-rate R] [-burst N] [-pprof]
  cachepart version

partition policies are pluggable: 'cachepart policies' lists the
registry (shared, fair, biased, explicit, dynamic, utility, ...), and
every -policy/-partition flag accepts any registered name. Scenario
files parameterize them with "policy": {"name": N, "params": {...}}.

scenario runs declarative JSON scenario files (N-job mixes with roles,
placement, and a partition policy; see examples/scenarios/ and
DESIGN.md). -policy overrides the file's partition policy. Skip
notices for mixed globs go to stderr, so piped output stays clean.

fleet runs scenario files with a fleet block: N machines under
open-loop load, compared across consolidation policies (spread-idle,
pack-partition, util-target) with p50/p95/p99 request slowdown,
machines used, utilization, and energy per policy. -partition accepts
a comma list to replay the same fleet under several partition policies
in one invocation (one engine: shared baselines simulate once).
-fidelity picks the oracle tier: exact simulates every co-location,
fast predicts them all analytically (MRC+CPI model) from one profiling
run per application, and auto screens with fast and re-simulates only
placements whose predicted slowdown lands within -fast-margin (default
0.05) of the slowdown limit — the tier for 10k-machine fleets.

-parallel sets the worker count (0 = GOMAXPROCS, 1 = serial); output is
byte-identical at any setting.

-cache-dir persists simulation results to DIR (content-addressed by
memo key and engine version): repeated invocations — across processes —
skip simulations they have already run and print identical reports. The
footer then also reports disk hits.

-json replaces the text report + footer with the versioned report
envelope (schema_version, engine version, kind, per-run engine stats,
report body) — the same object 'cachepart serve' returns from
GET /v1/runs/{id}/report.

serve runs the long-running simulation service: scenario/fleet JSON is
submitted via POST /v1/runs and executes on one warm engine, so
concurrent clients share the in-memory memo and the -cache-dir store.
See README "Serving" for the endpoint table and a curl walkthrough.
-pprof additionally exposes Go's profiler under /debug/pprof/.

scenario run and fleet run accept -trace FILE to write a Chrome
trace_event JSON of the invocation (load it in chrome://tracing or
https://ui.perfetto.dev) and -trace-summary to print a per-span wall
time breakdown to stderr. Tracing never changes report bytes.

version prints the engine version (the persistent store's content key
namespace) and the report envelope's schema version.`)
}

// cmdVersion prints the two version numbers a deployment cares about:
// the engine version that namespaces persistent-store keys, and the
// schema version of the report envelope the CLI and server emit.
func cmdVersion() error {
	fmt.Printf("engine_version  %s\n", sched.EngineVersion)
	fmt.Printf("schema_version  %d\n", core.SchemaVersion)
	return nil
}

// cmdPolicies lists the partition-policy registry. -names prints bare
// names only (one per line), the machine-readable form CI's
// policy-matrix smoke iterates.
func cmdPolicies(args []string) error {
	fs := flag.NewFlagSet("policies", flag.ExitOnError)
	names := fs.Bool("names", false, "print bare policy names only")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, name := range partition.Names() {
		if *names {
			fmt.Println(name)
			continue
		}
		fmt.Printf("%-10s %s\n", name, partition.About(name))
	}
	return nil
}

func cmdList() error {
	fmt.Printf("%-18s %-7s %-8s %-9s %-6s %s\n",
		"name", "suite", "threads", "maxWS", "APKI", "phases")
	for _, suite := range workload.Suites() {
		for _, p := range workload.BySuite(suite) {
			fmt.Printf("%-18s %-7s %-8d %-9s %-6.0f %d\n",
				p.Name, p.Suite, p.MaxThreads,
				fmt.Sprintf("%.1fMB", float64(p.MaxWorkingSet())/(1<<20)),
				p.MeanAPKI(), len(p.Phases))
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	app := fs.String("app", "", "application name (see 'cachepart list')")
	threads := fs.Int("threads", 4, "software threads (capped by the app)")
	ways := fs.Int("ways", core.AllWays, "LLC ways allocated (0 = all 12)")
	scale := fs.Float64("scale", 0, "instruction scale (0 = default)")
	cacheDir := fs.String("cache-dir", "", "persistent result store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("run: -app is required")
	}
	if err := validateCacheDir(*cacheDir); err != nil {
		return err
	}
	sys := core.NewSystem(core.Options{Scale: *scale, CacheDir: *cacheDir})
	t0 := time.Now()
	rep, err := sys.RunAlone(*app, *threads, *ways)
	if err != nil {
		return err
	}
	fmt.Printf("app=%s threads=%d ways=%d\n", rep.App, rep.Threads, rep.Ways)
	fmt.Printf("  time       %.4f s (simulated)\n", rep.Seconds)
	fmt.Printf("  IPC        %.2f (aggregate)\n", rep.IPC)
	fmt.Printf("  LLC MPKI   %.2f   LLC APKI %.2f\n", rep.LLCMPKI, rep.LLCAPKI)
	fmt.Printf("  energy     %.2f J socket, %.2f J wall\n", rep.SocketJoules, rep.WallJoules)
	printEngineLine(sys, *cacheDir)
	fmt.Printf("  (host time %.2fs)\n", time.Since(t0).Seconds())
	return nil
}

// printEngineLine reports cache activity for the single-run commands
// when a persistent store is active (run/pair have no batch footer, but
// -cache-dir users still need to see their disk hits).
func printEngineLine(sys *core.System, cacheDir string) {
	if cacheDir == "" {
		return
	}
	st := sys.Runner().Stats()
	fmt.Printf("  engine     %d sims, %d memo hits, %d disk hits\n",
		st.Simulations, st.MemoHits, st.DiskHits)
}

func cmdPair(args []string) error {
	fs := flag.NewFlagSet("pair", flag.ExitOnError)
	fg := fs.String("fg", "", "foreground application")
	bg := fs.String("bg", "", "background application")
	policy := fs.String("policy", "dynamic", "any registered partition policy (see 'cachepart policies')")
	scale := fs.Float64("scale", 0, "instruction scale (0 = default)")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial)")
	cacheDir := fs.String("cache-dir", "", "persistent result store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fg == "" || *bg == "" {
		return fmt.Errorf("pair: -fg and -bg are required")
	}
	if err := validateCacheDir(*cacheDir); err != nil {
		return err
	}
	sys := core.NewSystem(core.Options{Scale: *scale, Parallelism: *parallel, CacheDir: *cacheDir})
	t0 := time.Now()
	rep, err := sys.Consolidate(*fg, *bg, core.Policy(*policy))
	if err != nil {
		return err
	}
	fmt.Printf("fg=%s bg=%s policy=%s\n", rep.Fg, rep.Bg, rep.Policy)
	if rep.FgWays > 0 {
		fmt.Printf("  LLC split     fg %d ways / bg %d ways\n", rep.FgWays, rep.BgWays)
	} else {
		fmt.Printf("  LLC split     fully shared\n")
	}
	fmt.Printf("  fg time       %.4f s (slowdown %+.1f%% vs alone)\n",
		rep.FgSeconds, (rep.FgSlowdown-1)*100)
	fmt.Printf("  bg throughput %.2f iterations during the fg run\n", rep.BgThroughput)
	fmt.Printf("  energy        %.2f J socket, %.2f J wall\n", rep.SocketJoules, rep.WallJoules)
	if rep.Reallocations > 0 { // online policies (dynamic, utility, ...)
		fmt.Printf("  reallocations %d\n", rep.Reallocations)
	}
	printEngineLine(sys, *cacheDir)
	fmt.Printf("  (host time %.2fs)\n", time.Since(t0).Seconds())
	return nil
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	id := fs.String("id", "", "experiment id (fig1..fig13, table1..3, headline, all)")
	scale := fs.Float64("scale", 0, "instruction scale (0 = default)")
	quick := fs.Bool("quick", false, "representatives-only scope (fast)")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial)")
	cacheDir := fs.String("cache-dir", "", "persistent result store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("exp: -id is required")
	}
	if err := validateCacheDir(*cacheDir); err != nil {
		return err
	}
	opt := sched.Options{Scale: *scale, Parallelism: *parallel, CacheDir: *cacheDir}
	var ctx *experiments.Context
	if *quick {
		ctx = experiments.NewQuickContextWith(opt)
	} else {
		ctx = experiments.NewContextWith(opt)
	}
	// The footer reports engine deltas per experiment: simulations run,
	// memoized results reused, and the effective speedup (summed
	// executed-simulation time / wall time — the overlap the worker
	// pool achieved; memo hits cost ~nothing in both terms, so an
	// all-cached experiment reads ~0x). It is printed outside the table
	// text so tables stay byte-identical at any -parallel setting.
	runOne := func(name string) error {
		before := ctx.R.Stats()
		t0 := time.Now()
		out, err := runExperiment(ctx, name)
		if err != nil {
			return err
		}
		wall := time.Since(t0).Seconds()
		fmt.Print(out)
		fmt.Print(engineFooter(wall, before, ctx.R.Stats(), *cacheDir != ""))
		return nil
	}
	if *id == "all" {
		for _, name := range experimentIDs {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*id)
}

var experimentIDs = []string{
	"fig1", "table1", "fig2", "table2", "fig3", "fig4",
	"fig5", "table3", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "headline",
	"abl-small-llc", "abl-bwqos", "abl-indexing", "abl-replacement",
	"abl-inclusion", "abl-prefetchers", "abl-multibg",
}

func runExperiment(ctx *experiments.Context, id string) (string, error) {
	switch id {
	case "fig1":
		return ctx.Fig1ThreadScalability().String(), nil
	case "table1":
		t, _ := ctx.Table1Scalability()
		return t.String(), nil
	case "fig2":
		return ctx.Fig2LLCSensitivity().String(), nil
	case "table2":
		return ctx.Table2LLCUtility().Table.String(), nil
	case "fig3":
		return ctx.Fig3Prefetchers().String(), nil
	case "fig4":
		return ctx.Fig4Bandwidth().String(), nil
	case "fig5":
		res := ctx.Fig5Clustering()
		return res.Table.String() + "\ndendrogram:\n" + res.Dendrogram, nil
	case "table3":
		return ctx.Fig5Clustering().Table.String(), nil
	case "fig6":
		return ctx.Fig6AllocationSpace().String(), nil
	case "fig7":
		return ctx.Fig7YieldableCapacity().String(), nil
	case "fig8":
		return ctx.Fig8Heatmap(nil, nil).Table.String(), nil
	case "fig9":
		return ctx.Fig9StaticPolicies().Table.String(), nil
	case "fig10":
		e, _, _ := ctx.Fig10and11Consolidation()
		return e.String(), nil
	case "fig11":
		_, w, _ := ctx.Fig10and11Consolidation()
		return w.String(), nil
	case "fig12":
		return ctx.Fig12Phases().String(), nil
	case "fig13":
		return ctx.Fig13DynamicThroughput().Table.String(), nil
	case "headline":
		return ctx.Headline().Table.String(), nil
	case "abl-small-llc":
		return ctx.AblationSmallLLC().String(), nil
	case "abl-bwqos":
		return ctx.AblationBandwidthQoS().String(), nil
	case "abl-indexing":
		return ctx.AblationIndexing().String(), nil
	case "abl-replacement":
		return ctx.AblationReplacement().String(), nil
	case "abl-inclusion":
		return ctx.AblationInclusion().String(), nil
	case "abl-prefetchers":
		return ctx.AblationPrefetchers().String(), nil
	case "abl-multibg":
		return ctx.AblationMultiBackground().String(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}
