package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
)

// cmdServe runs the long-running simulation service: one warm
// core.Session behind the REST API in internal/server. SIGTERM/SIGINT
// trigger a graceful drain — stop accepting, finish in-flight runs
// (each persisting through -cache-dir's write-through store), then
// shut the listener down.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	scale := fs.Float64("scale", 0, "instruction scale (0 = default)")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial)")
	policyParallel := fs.Int("policy-parallel", 0, "concurrent policy episodes per fleet run (0 = min(policies, GOMAXPROCS), 1 = serial)")
	quick := fs.Bool("quick", false, "reduced scale for smoke runs")
	cacheDir := fs.String("cache-dir", "", "persistent result store directory")
	queue := fs.Int("queue", 16, "pending-run queue depth (full queue answers 503)")
	concurrency := fs.Int("concurrency", 2, "runs executed at once")
	rate := fs.Float64("rate", 2, "per-client run submissions per second (token refill)")
	burst := fs.Int("burst", 5, "per-client submission burst (token bucket depth)")
	runTimeout := fs.Duration("run-timeout", 0, "per-run wall-clock deadline (0 = none); exceeded runs report state timeout")
	pprofOn := fs.Bool("pprof", false, "expose Go's profiler under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected argument %q (scenarios are submitted over HTTP)", fs.Arg(0))
	}

	// The service always traces: GET /v1/runs/{id}/trace serves each
	// run's span subtree, and the bounded ring caps memory.
	sess, err := core.NewSessionWith(core.RunConfig{
		Scale: *scale, Quick: *quick, Parallelism: *parallel,
		PolicyParallel: *policyParallel, CacheDir: *cacheDir,
	}, obs.New(0))
	if err != nil {
		return err
	}
	srv := server.New(sess, server.Options{
		Queue: *queue, Concurrency: *concurrency,
		RatePerSec: *rate, Burst: *burst, RunTimeout: *runTimeout,
		Pprof: *pprofOn, AccessLog: os.Stderr,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// Request timeouts: slow or stalled clients must not pin
		// connections — runs are asynchronous, so no request needs long.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	store := ""
	if *cacheDir != "" {
		store = fmt.Sprintf(", store %s", *cacheDir)
	}
	fmt.Fprintf(os.Stderr, "cachepart serve: listening on http://%s (scale %g, parallelism %d%s)\n",
		ln.Addr(), sess.Runner().Scale(), sess.Runner().Parallelism(), store)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately rather than re-draining

	fmt.Fprintln(os.Stderr, "cachepart serve: draining (finishing queued and in-flight runs)")
	srv.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "cachepart serve: drained")
	return nil
}
