package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func quickCtx() *experiments.Context {
	return experiments.NewQuickContext(5e-4)
}

func TestRunExperimentDispatch(t *testing.T) {
	ctx := quickCtx()
	ctx.Reps = ctx.Reps[:2]
	for _, id := range []string{"table1", "fig3", "fig7", "abl-indexing"} {
		out, err := runExperiment(ctx, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "==") {
			t.Fatalf("%s produced no table:\n%s", id, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := runExperiment(quickCtx(), "fig99"); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestExperimentIDsAllDispatch(t *testing.T) {
	// Every advertised id must resolve (we don't run them all here —
	// the dispatcher must simply know them; unknown ids error out
	// before any simulation starts, so a cheap probe suffices for the
	// cheap ones and the long ones are covered by the bench harness).
	cheap := map[string]bool{
		"fig2": true, "table1": true, "fig3": true, "fig4": true,
		"fig7": true, "abl-indexing": true, "abl-inclusion": true,
	}
	ctx := quickCtx()
	ctx.Reps = ctx.Reps[:2]
	for _, id := range experimentIDs {
		if !cheap[id] {
			continue
		}
		if _, err := runExperiment(ctx, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestCmdListRuns(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRunValidation(t *testing.T) {
	if err := cmdRun([]string{}); err == nil {
		t.Fatal("missing -app accepted")
	}
	if err := cmdRun([]string{"-app", "nope"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := cmdRun([]string{"-app", "swaptions", "-scale", "0.0002"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPairValidation(t *testing.T) {
	if err := cmdPair([]string{"-fg", "fop"}); err == nil {
		t.Fatal("missing -bg accepted")
	}
	if err := cmdPair([]string{"-fg", "fop", "-bg", "dedup", "-policy", "warp"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := cmdPair([]string{"-fg", "fop", "-bg", "dedup", "-policy", "fair", "-scale", "0.0002"}); err != nil {
		t.Fatal(err)
	}
}
