package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// quickScale is the reduced instruction scale -quick runs at (the CI
// smoke step); shared with the golden tests through sched.QuickScale.
const quickScale = sched.QuickScale

// cmdScenario dispatches the scenario subcommands:
//
//	cachepart scenario run   [flags] file.json...
//	cachepart scenario check [flags] file.json...
func cmdScenario(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("scenario: want 'run' or 'check' (see 'cachepart help')")
	}
	switch args[0] {
	case "run":
		return scenarioRun(args[1:])
	case "check":
		return scenarioCheck(args[1:])
	default:
		return fmt.Errorf("scenario: unknown subcommand %q (want run or check)", args[0])
	}
}

// splitFlags separates flag arguments from positional file arguments so
// both "scenario run -quick a.json" and "scenario run a.json -quick"
// work (shell globs put the files first).
func splitFlags(args []string, valueFlags map[string]bool) (flags, files []string) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") {
			files = append(files, a)
			continue
		}
		flags = append(flags, a)
		name := strings.TrimLeft(a, "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			continue // -flag=value form carries its own value
		}
		if valueFlags[name] && i+1 < len(args) {
			i++
			flags = append(flags, args[i])
		}
	}
	return flags, files
}

var scenarioValueFlags = map[string]bool{
	"scale": true, "parallel": true, "policy": true, "cache-dir": true,
	"trace": true,
}

// newRunTracer builds the tracer a run command needs — nil unless
// -trace or -trace-summary asked for one, so untraced runs pay nothing.
func newRunTracer(tracePath string, traceSummary bool) *obs.Tracer {
	if tracePath == "" && !traceSummary {
		return nil
	}
	return obs.New(0)
}

// finishTrace emits a run command's tracing outputs: the per-span wall
// time summary to stderr (piped report output stays clean) and the
// Chrome trace_event JSON to -trace's file.
func finishTrace(tr *obs.Tracer, tracePath string, traceSummary bool) error {
	if tr == nil {
		return nil
	}
	if traceSummary {
		fmt.Fprint(os.Stderr, tr.Summary())
	}
	if tracePath != "" {
		if err := os.WriteFile(tracePath, tr.ChromeTrace(), 0o644); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// emitRun prints one run outcome: the versioned envelope as JSON, or
// the plain report followed by the engine footer. Both CLI run
// subcommands and the server share the envelope, so -json output is
// byte-identical to the server's report endpoint for the same spec.
func emitRun(res *core.RunResult, jsonOut, diskEnabled bool) {
	if jsonOut {
		os.Stdout.Write(res.Envelope.JSON())
		return
	}
	fmt.Print(res.Envelope.Report)
	fmt.Print(engineFooter(res.WallSeconds, res.Before, res.After, diskEnabled))
}

func scenarioRun(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	scale := fs.Float64("scale", 0, "instruction scale (0 = default)")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial)")
	quick := fs.Bool("quick", false, "reduced scale for smoke runs")
	policy := fs.String("policy", "", "override the scenario's partition policy (any registered policy; see 'cachepart policies')")
	cacheDir := fs.String("cache-dir", "", "persistent result store directory")
	jsonOut := fs.Bool("json", false, "emit the versioned report envelope as JSON (one object per scenario)")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the invocation to FILE")
	traceSummary := fs.Bool("trace-summary", false, "print a per-span wall time breakdown to stderr")
	flagArgs, files := splitFlags(args, scenarioValueFlags)
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("scenario run: no scenario files given")
	}
	cfg := core.RunConfig{
		Scale: *scale, Quick: *quick, Parallelism: *parallel,
		CacheDir: *cacheDir, Policy: *policy,
	}
	// One session for every file: scenarios sharing configurations (or
	// baselines) deduplicate through the engine's memo cache.
	tr := newRunTracer(*tracePath, *traceSummary)
	sess, err := core.NewSessionWith(cfg, tr)
	if err != nil {
		return err
	}

	ran := 0
	for _, path := range files {
		s, err := scenario.ParseFile(path)
		if err != nil {
			return err
		}
		if s.IsFleet() {
			// The notice goes to stderr: piped report output must stay
			// parseable when a glob mixes fleet and plain scenarios.
			fmt.Fprintf(os.Stderr, "%s: fleet scenario, skipped (use 'cachepart fleet run')\n\n", path)
			continue
		}
		ran++
		res, err := sess.RunScenario(s, cfg)
		if err != nil {
			return err
		}
		emitRun(res, *jsonOut, cfg.CacheDir != "")
	}
	if ran == 0 {
		return fmt.Errorf("scenario run: no single-machine scenarios among the given files")
	}
	return finishTrace(tr, *tracePath, *traceSummary)
}

func scenarioCheck(args []string) error {
	fs := flag.NewFlagSet("scenario check", flag.ExitOnError)
	policy := fs.String("policy", "", "override the scenario's partition policy before checking")
	flagArgs, files := splitFlags(args, scenarioValueFlags)
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("scenario check: no scenario files given")
	}
	for _, path := range files {
		s, err := scenario.ParseFile(path)
		if err != nil {
			return err
		}
		if s.IsFleet() {
			fmt.Fprintf(os.Stderr, "%s: fleet scenario, skipped (use 'cachepart fleet check')\n", path)
			continue
		}
		if err := core.ApplyOverrides(s, core.RunConfig{Policy: *policy}); err != nil {
			return err
		}
		p, err := s.Plan(machine.Default())
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok — %q, %d jobs on %d cores, policy %s\n",
			path, s.Name, len(p.Instances), p.Config.Cores, s.PartitionName())
		for _, inst := range p.Instances {
			fmt.Printf("  %-8s %-8s %-18s threads=%d slots=%v ways=%s\n",
				inst.Seed, inst.Role, inst.App.Name, inst.Threads, inst.Slots, inst.WaysLabel())
		}
	}
	return nil
}
