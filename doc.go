// Package repro reproduces "A Hardware Evaluation of Cache Partitioning
// to Improve Utilization and Energy-Efficiency while Preserving
// Responsiveness" (Cook et al., ISCA 2013) as a pure-Go simulation
// study. See README.md for the tour, DESIGN.md for the architecture and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package holds only the benchmark harness (bench_test.go),
// one benchmark per paper table and figure; the library lives under
// internal/ and the public entry point is internal/core.
//
// Experiments execute through the concurrent engine in internal/sched:
// drivers submit each figure's full sweep as one batch, a worker pool
// (sched.Options.Parallelism, default GOMAXPROCS; the CLI's -parallel
// flag) fans the independent simulations across CPUs, and singleflight
// memoization runs each distinct configuration exactly once. Because
// every simulation derives its randomness solely from its own spec,
// parallel runs render byte-identical tables to serial runs.
//
// Runs are described declaratively: internal/scenario compiles N-job
// scenario files (roles, placement, partitioning, metrics; see
// examples/scenarios/ and `cachepart scenario`) down to the engine's
// general MixSpec, of which the paper's single/pair/multi shapes are
// the canonical degenerate cases.
//
// LLC management is a pluggable policy layer: internal/partition owns
// a registry of partition.Policy implementations (shared, fair,
// biased, explicit, the §6 dynamic controller, and a UCP-style
// utility policy fed by shadow utility monitors), every layer
// dispatches through the interface, and online-policy runs are
// memoized under keys carrying the policy identity and parameters
// (`cachepart policies`, DESIGN.md §7).
//
// Above the run layer, internal/fleet simulates the paper's datacenter
// argument directly: N machines under seeded open-loop load
// (internal/loadgen), compared across consolidation policies with
// p50/p95/p99 request slowdown, machines used, utilization, and energy
// per policy (`cachepart fleet`, the fleet-*.json examples, DESIGN.md
// §5).
package repro
