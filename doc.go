// Package repro reproduces "A Hardware Evaluation of Cache Partitioning
// to Improve Utilization and Energy-Efficiency while Preserving
// Responsiveness" (Cook et al., ISCA 2013) as a pure-Go simulation
// study. See README.md for the tour, DESIGN.md for the architecture and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package holds only the benchmark harness (bench_test.go),
// one benchmark per paper table and figure; the library lives under
// internal/ and the public entry point is internal/core.
package repro
